// Benchmarks regenerating every table and figure of the paper's evaluation
// (§5). Each benchmark runs the corresponding experiment end to end and
// reports the headline quantities the paper reports as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the evaluation and prints the measured counterparts of the
// paper's numbers. See EXPERIMENTS.md for the paper-vs-measured table.
package multipass_test

import (
	"context"
	"testing"

	"multipass/internal/bench"
	"multipass/internal/mem"
	"multipass/internal/workload"
)

const benchScale = 1

// BenchmarkFigure6 regenerates Figure 6: normalized execution cycles for
// the in-order baseline, multipass, and ideal out-of-order machines on all
// twelve kernels. Reported metrics correspond to the paper's 49% mean stall
// reduction, 1.36x mean multipass speedup, and 1.14x ideal-OOO-over-MP.
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Figure6(context.Background(), benchScale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.MeanStallReduction, "stall-reduction-%")
		b.ReportMetric(r.MeanMPSpeedup, "MP-speedup-x")
		b.ReportMetric(r.MeanOOOOverMP, "OOO-over-MP-x")
	}
}

// BenchmarkFigure7 regenerates Figure 7: multipass and OOO speedups under
// the base, config1 (200-cycle memory) and config2 (smaller, slower caches)
// hierarchies. The paper's observation is that the MP/OOO gap narrows with
// the more restrictive hierarchies.
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Figure7(context.Background(), benchScale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MeanMP["base"], "MP-base-x")
		b.ReportMetric(r.MeanMP["config2"], "MP-config2-x")
		b.ReportMetric(r.MeanOOO["base"]/r.MeanMP["base"], "gap-base-x")
		b.ReportMetric(r.MeanOOO["config2"]/r.MeanMP["config2"], "gap-config2-x")
	}
}

// BenchmarkFigure8 regenerates Figure 8: the percent of the full multipass
// speedup retained without issue regrouping and without advance restart.
// The paper's shape: restart matters for mcf, gap and bzip2; regrouping
// matters nearly everywhere except mcf.
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Figure8(context.Background(), benchScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Benchmark == "mcf" {
				b.ReportMetric(row.PctWithoutRestart, "mcf-norestart-%")
				b.ReportMetric(row.PctWithoutRegroup, "mcf-noregroup-%")
			}
			if row.Benchmark == "twolf" {
				b.ReportMetric(row.PctWithoutRegroup, "twolf-noregroup-%")
			}
		}
	}
}

// BenchmarkTable1 regenerates Table 1: peak and average power ratios of the
// out-of-order structures to the multipass structures (paper: 0.99/1.20,
// 10.28/7.15, 3.21/9.79).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Table1(context.Background(), benchScale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[0].PeakRatio, "regs-peak-x")
		b.ReportMetric(r.Rows[0].AvgRatio, "regs-avg-x")
		b.ReportMetric(r.Rows[1].PeakRatio, "sched-peak-x")
		b.ReportMetric(r.Rows[1].AvgRatio, "sched-avg-x")
		b.ReportMetric(r.Rows[2].PeakRatio, "lsq-peak-x")
		b.ReportMetric(r.Rows[2].AvgRatio, "lsq-avg-x")
	}
}

// BenchmarkExtras regenerates the §5.2 realistic out-of-order comparison
// (paper: multipass 1.05x faster) and the §5.4 Dundas-Mudge runahead
// comparison (paper: runahead reduces about half as many cycles).
func BenchmarkExtras(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Extras(context.Background(), benchScale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MPOverRealOOO, "MP-over-realOOO-x")
		b.ReportMetric(r.RunaheadCycleFraction, "runahead-fraction")
	}
}

// BenchmarkModels measures raw simulator throughput (simulated cycles per
// second) for each machine model on the mcf kernel. The workload is compiled
// and pre-decoded once outside the measured region, so allocs/op is the
// models' own allocation behavior.
func BenchmarkModels(b *testing.B) {
	w, _ := workload.ByName("mcf")
	pr, err := bench.Prepare(w, benchScale)
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range []bench.ModelName{
		bench.MInorder, bench.MRunahead, bench.MMultipass, bench.MOOO, bench.MOOORealistc,
	} {
		name := name
		b.Run(string(name), func(b *testing.B) {
			b.ReportAllocs()
			var cycles uint64
			for i := 0; i < b.N; i++ {
				res, err := pr.Run(context.Background(), name, mem.BaseConfig())
				if err != nil {
					b.Fatal(err)
				}
				cycles += res.Stats.Cycles
			}
			b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "simcycles/s")
			b.ReportMetric(float64(b.N), "runs")
		})
	}
}

// BenchmarkWorkloads measures each kernel once on the multipass machine,
// reporting its simulated IPC, as a per-kernel smoke benchmark.
func BenchmarkWorkloads(b *testing.B) {
	for _, w := range workload.All() {
		w := w
		b.Run(w.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := bench.Run(context.Background(), bench.MMultipass, w, benchScale, mem.BaseConfig())
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Stats.IPC(), "IPC")
			}
		})
	}
}

// BenchmarkRestartStudy runs the §3.3 footnote-1 comparison of compiler-
// directed and hardware-heuristic advance restart on the restart-sensitive
// kernels.
func BenchmarkRestartStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.RestartStudy(context.Background(), benchScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Benchmark == "mcf" {
				b.ReportMetric(row.Compiler, "mcf-compiler-x")
				b.ReportMetric(row.Hardware, "mcf-hardware-x")
				b.ReportMetric(row.NoRestart, "mcf-none-x")
			}
		}
	}
}

// BenchmarkSweepIQ measures multipass sensitivity to the instruction-queue
// size around the paper's 256-entry choice.
func BenchmarkSweepIQ(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.SweepIQ(context.Background(), benchScale, []int{24, 256})
		if err != nil {
			b.Fatal(err)
		}
		for _, pt := range r.Points {
			if pt.Benchmark == "equake" {
				switch pt.Size {
				case 24:
					b.ReportMetric(pt.Speedup, "equake-iq24-x")
				case 256:
					b.ReportMetric(pt.Speedup, "equake-iq256-x")
				}
			}
		}
	}
}

// BenchmarkSweepASC measures multipass sensitivity to the advance store
// cache size around the paper's 64-entry choice.
func BenchmarkSweepASC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.SweepASC(context.Background(), benchScale, []int{8, 64})
		if err != nil {
			b.Fatal(err)
		}
		for _, pt := range r.Points {
			if pt.Benchmark == "mcf" && pt.Size == 64 {
				b.ReportMetric(pt.Speedup, "mcf-asc64-x")
			}
		}
	}
}
