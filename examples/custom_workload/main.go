// Custom-workload: shows how a downstream user defines a new benchmark
// kernel against the public builder API, compiles it with and without the
// compiler passes, and measures how much each pass contributes on the
// multipass machine.
//
//	go run ./examples/custom_workload
package main

import (
	"context"
	"fmt"
	"log"

	"multipass/internal/arch"
	"multipass/internal/bench"
	"multipass/internal/compile"
	"multipass/internal/isa"
	"multipass/internal/mem"
	"multipass/internal/prog"
)

// buildHistogram is the user's kernel: a histogram over random keys — a
// gather, an increment, and a scatter per element, with a multiply in the
// binning function.
func buildHistogram() (*prog.Unit, *arch.Memory) {
	const (
		keys     = 8192
		keysBase = 0x0100_0000
		binsBase = 0x0200_0000
	)
	image := arch.NewMemory()
	seed := uint32(12345)
	for i := 0; i < keys; i++ {
		seed = seed*1664525 + 1013904223
		image.Store(keysBase+uint32(4*i), 4, uint64(seed))
	}

	rKey, rBin, rVal, rIdx, rCnt := isa.IntReg(1), isa.IntReg(2), isa.IntReg(3), isa.IntReg(4), isa.IntReg(5)
	rKeys, rBins, rMul := isa.IntReg(6), isa.IntReg(7), isa.IntReg(8)
	u := prog.NewUnit()
	e := u.NewBlock("entry")
	e.MovI(rKeys, keysBase)
	e.MovI(rBins, binsBase)
	e.MovI(rCnt, keys)
	e.MovI(rIdx, 0)
	e.MovI(rMul, 0x45D9F3B)
	b := u.NewBlock("loop")
	b.Load(isa.OpLd4, rKey, rKeys, 0)
	b.Op3(isa.OpMul, rBin, rKey, rMul) // binning hash (multi-cycle)
	b.OpI(isa.OpShrI, rBin, rBin, 20)
	b.OpI(isa.OpShlI, rBin, rBin, 2)
	b.Op3(isa.OpAdd, rBin, rBin, rBins)
	b.Load(isa.OpLd4, rVal, rBin, 0) // gather
	b.OpI(isa.OpAddI, rVal, rVal, 1)
	b.Store(isa.OpSt4, rBin, 0, rVal) // scatter
	b.OpI(isa.OpAddI, rKeys, rKeys, 4)
	b.OpI(isa.OpSubI, rCnt, rCnt, 1)
	b.CmpI(isa.OpCmpNeI, isa.PredReg(1), isa.PredReg(2), rCnt, 0)
	b.Br(isa.PredReg(1), "loop")
	u.NewBlock("exit").Halt()
	return u, image
}

func main() {
	variants := []struct {
		name string
		opts compile.Options
	}{
		{"unscheduled", compile.Options{Caps: isa.DefaultFUCaps(), MinDownstream: 2, CriticalFactor: 2}},
		{"scheduled", func() compile.Options {
			o := compile.DefaultOptions()
			o.InsertRestarts = false
			return o
		}()},
		{"scheduled+restarts", compile.DefaultOptions()},
	}

	for _, v := range variants {
		u, image := buildHistogram()
		p, info, err := compile.Compile(u, v.opts)
		if err != nil {
			log.Fatal(err)
		}
		m, err := bench.NewMachine(bench.MMultipass, mem.BaseConfig())
		if err != nil {
			log.Fatal(err)
		}
		res, err := m.Run(context.Background(), p, image)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s %6d insts in %4d groups, %d RESTARTs -> %8d cycles (IPC %.2f)\n",
			v.name, info.Insts, info.Groups, info.Restarts, res.Stats.Cycles, res.Stats.IPC())
	}
	fmt.Println("\nThe scheduler packs issue groups; RESTART insertion only appears when the")
	fmt.Println("kernel has a load inside a dataflow SCC (the histogram pointer walk does not).")
}
