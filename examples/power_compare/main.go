// Power-compare: evaluates the Wattch-style structure power models (paper
// §4 / Table 1) with activity taken from real runs of a benchmark on the
// out-of-order and multipass machines, and prints per-structure peak and
// average watts plus the three Table 1 ratio groups.
//
//	go run ./examples/power_compare
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"multipass/internal/bench"
	"multipass/internal/mem"
	"multipass/internal/power"
	"multipass/internal/workload"
)

func main() {
	w, _ := workload.ByName("mcf")
	oooRes, err := bench.Run(context.Background(), bench.MOOO, w, 1, mem.BaseConfig())
	if err != nil {
		log.Fatal(err)
	}
	mpRes, err := bench.Run(context.Background(), bench.MMultipass, w, 1, mem.BaseConfig())
	if err != nil {
		log.Fatal(err)
	}

	oact := power.OOOActivities(&oooRes.Stats)
	mact := power.MPActivities(&mpRes.Stats)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "structure\tpeak (W)\tavg (W)")
	for _, s := range []power.ArraySpec{
		power.OOORegisterFile(), power.OOORegisterAliasTable(),
		power.OOOWakeup(), power.OOOIssue(),
		power.OOOLoadBuffer(), power.OOOStoreBuffer(),
	} {
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\n", s.Name, s.PeakPower(), s.AvgPower(oact[s.Name]))
	}
	for _, s := range []power.ArraySpec{
		power.MPArchRegisterFile(), power.MPSpecRegisterFile(),
		power.MPResultStore(), power.MPInstructionQueue(),
		power.MPSMAQ(), power.MPASC(),
	} {
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\n", s.Name, s.PeakPower(), s.AvgPower(mact[s.Name]))
	}
	tw.Flush()

	fmt.Println()
	for _, row := range power.Table1(&oooRes.Stats, &mpRes.Stats) {
		fmt.Printf("%-45s  peak OOO/MP = %5.2f   avg OOO/MP = %5.2f\n",
			row.Group, row.PeakRatio, row.AvgRatio)
	}
	fmt.Println("\n(paper Table 1: 0.99/1.20, 10.28/7.15, 3.21/9.79 — same directions, same regimes)")
}
