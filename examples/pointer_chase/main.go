// Pointer-chase: builds an mcf-style linked-structure workload with the
// prog/compile API and shows where each mechanism earns its keep — runahead
// prefetching, result-store persistence, and advance restart — by running
// every machine model plus the two ablations.
//
//	go run ./examples/pointer_chase
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"multipass/internal/arch"
	"multipass/internal/bench"
	"multipass/internal/compile"
	"multipass/internal/isa"
	"multipass/internal/mem"
	"multipass/internal/prog"
)

func main() {
	// A ring of list nodes small enough to live in L2/L3 (short chase
	// misses) where every node points at a record in a cold region (long
	// payload misses). The chase load is loop-carried, so the compiler's
	// SCC analysis inserts a RESTART after it — exactly the §3.3 pattern.
	const (
		nodes    = 2048
		nodeSize = 32
		listBase = 0x0100_0000
		coldBase = 0x0300_0000
	)
	rng := rand.New(rand.NewSource(42))
	image := arch.NewMemory()
	perm := rng.Perm(nodes)
	addr := func(i int) uint32 { return listBase + uint32(i*nodeSize) }
	for k := 0; k < nodes; k++ {
		a := addr(perm[k])
		image.Store(a, 4, uint64(addr(perm[(k+1)%nodes])))
		image.Store(a+4, 4, uint64(rng.Uint32()))
	}

	u := prog.NewUnit()
	rPtr, rNext, rSeed, rOff, rVal, rAcc, rCnt := isa.IntReg(1), isa.IntReg(2), isa.IntReg(3), isa.IntReg(4), isa.IntReg(5), isa.IntReg(6), isa.IntReg(7)
	e := u.NewBlock("entry")
	e.MovI(rPtr, int32(addr(perm[0])))
	e.MovI(rCnt, 6000)
	e.MovI(rOff, 0)
	e.MovI(rAcc, 0)
	b := u.NewBlock("loop")
	b.Load(isa.OpLd4, rNext, rPtr, 0) // the chase (SCC -> RESTART)
	b.Load(isa.OpLd4, rSeed, rPtr, 4)
	b.Op3(isa.OpAdd, rSeed, rSeed, rOff)
	b.OpI(isa.OpAndI, rSeed, rSeed, 0x7FFFFC)
	b.OpI(isa.OpAddI, rSeed, rSeed, coldBase)
	b.Load(isa.OpLd4, rVal, rSeed, 0) // cold payload
	b.Op3(isa.OpAdd, rAcc, rAcc, rVal)
	b.OpI(isa.OpAddI, rOff, rOff, 0x10040)
	b.Mov(rPtr, rNext)
	b.OpI(isa.OpSubI, rCnt, rCnt, 1)
	b.CmpI(isa.OpCmpNeI, isa.PredReg(1), isa.PredReg(2), rCnt, 0)
	b.Br(isa.PredReg(1), "loop")
	u.NewBlock("exit").Halt()

	p, info, err := compile.Compile(u, compile.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled: %d instructions, %d issue groups, %d critical loads, %d RESTARTs\n\n",
		info.Insts, info.Groups, info.CriticalLoads, info.Restarts)

	models := []bench.ModelName{
		bench.MInorder, bench.MRunahead,
		bench.MNoRestart, bench.MNoRegroup, bench.MMultipass,
		bench.MOOO,
	}
	var baseCycles uint64
	for _, name := range models {
		m, err := bench.NewMachine(name, mem.BaseConfig())
		if err != nil {
			log.Fatal(err)
		}
		res, err := m.Run(context.Background(), p, image)
		if err != nil {
			log.Fatal(err)
		}
		if name == bench.MInorder {
			baseCycles = res.Stats.Cycles
		}
		fmt.Printf("%-22s %8d cycles  speedup %.2fx", name, res.Stats.Cycles,
			float64(baseCycles)/float64(res.Stats.Cycles))
		mp := res.Stats.Multipass
		if mp.Restarts > 0 {
			fmt.Printf("  (passes %d, restarts %d)", mp.AdvancePasses, mp.Restarts)
		}
		fmt.Println()
	}
	fmt.Println("\nThe gap between multipass-norestart and multipass is the paper's §3.3 advance-restart mechanism.")
}
