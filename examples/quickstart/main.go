// Quickstart: assemble a small kernel, run it on the in-order baseline and
// the multipass pipeline, and compare cycle counts.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"multipass/internal/arch"
	"multipass/internal/bench"
	"multipass/internal/isa"
	"multipass/internal/mem"
	"multipass/internal/sim"
)

func main() {
	// A toy kernel with the paper's problem shape: a load misses the cache
	// and its consumer stalls the in-order machine, while plenty of
	// independent work (including two more missing loads) sits right behind
	// the stall.
	p := isa.MustAssemble(`
	movi r10 = 0x100000
	movi r2  = 0
loop:
	ld4  r1 = [r10]          # long cache miss
	add  r2 = r2, r1         # stall-on-use: in-order stops here
	ld4  r3 = [r10+8192]     # independent miss: multipass pre-executes it
	add  r4 = r3, r3
	ld4  r5 = [r10+16384]    # and this one too
	add  r6 = r5, r5
	addi r10 = r10, 65536
	cmpi.ltu p1, p2 = r10, 0x200000 ;;
	(p1) br loop
	halt
`)

	// Seed the memory so the sums are non-trivial.
	image := arch.NewMemory()
	for addr := uint32(0x100000); addr < 0x200000; addr += 4096 {
		image.Store(addr, 4, uint64(addr>>12))
	}

	var results []*sim.Result
	for _, name := range []bench.ModelName{bench.MInorder, bench.MMultipass} {
		m, err := bench.NewMachine(name, mem.BaseConfig())
		if err != nil {
			log.Fatal(err)
		}
		res, err := m.Run(context.Background(), p, image)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, res)
		s := &res.Stats
		fmt.Printf("%-10s %7d cycles  IPC %.2f  load stalls %5.1f%%\n",
			name, s.Cycles, s.IPC(),
			100*float64(s.Cat[sim.StallLoad])/float64(s.Cycles))
	}

	base, mp := results[0], results[1]
	fmt.Printf("\nmultipass speedup: %.2fx\n", float64(base.Stats.Cycles)/float64(mp.Stats.Cycles))
	fmt.Printf("advance episodes: %d, instructions pre-executed: %d, RS merges: %d\n",
		mp.Stats.Multipass.AdvanceEntries,
		mp.Stats.Multipass.AdvanceExecuted,
		mp.Stats.Multipass.Merged)

	// Both machines computed the same answer — the timing models really
	// execute the program.
	if !base.RF.Equal(mp.RF) {
		log.Fatal("models disagree on architectural state!")
	}
	fmt.Printf("final r2 (sum) = %d on both models\n", base.RF.Read(isa.IntReg(2)).Uint32())
}
