package fabric

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"

	"multipass/internal/obs"
	"multipass/internal/server"
	"multipass/internal/workload"
)

// memoEntry is one program bundle being (or already) built; done closes
// when data/sum/err are final.
type memoEntry struct {
	done chan struct{}
	data []byte // encoded bundle (server.EncodeProgramBundle)
	sum  string // hex SHA-256 of data
	err  error
}

// programMemo is the coordinator's shared program-build cache: each
// distinct program identity (workload, scale, compile options — see
// server.ProgramKey) compiles exactly once per fleet, no matter how many
// workers or sweep cells need it. Workers fetch the encoded bundle via
// GET /v1/fabric/program and verify it against the sum the coordinator
// advertises in each job's ProgramRef. With a persist dir, bundles
// survive coordinator restarts (restored, not rebuilt).
type programMemo struct {
	dir string // "" disables persistence
	log *slog.Logger

	mu      sync.Mutex
	entries map[string]*memoEntry

	builds   atomic.Uint64 // programs compiled by this coordinator
	restores atomic.Uint64 // bundles restored from the persist dir
	serves   atomic.Uint64 // bundle fetches served to workers
}

func newProgramMemo(persistDir string, log *slog.Logger) *programMemo {
	m := &programMemo{log: log, entries: make(map[string]*memoEntry)}
	if persistDir != "" {
		dir := filepath.Join(persistDir, "programs")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			log.Warn("program persist dir unavailable", "dir", dir, "err", err)
		} else {
			m.dir = dir
			m.restore()
		}
	}
	return m
}

// restore loads previously persisted bundles. Each is decode-checked so a
// torn or stale file is skipped (and will simply be rebuilt on demand).
func (m *programMemo) restore() {
	des, err := os.ReadDir(m.dir)
	if err != nil {
		return
	}
	for _, de := range des {
		key := de.Name()
		if de.IsDir() || len(key) != 64 {
			continue
		}
		data, err := os.ReadFile(filepath.Join(m.dir, key))
		if err != nil {
			continue
		}
		if _, _, err := server.DecodeProgramBundle(data); err != nil {
			m.log.Warn("discarding undecodable persisted program bundle", "key", key, "err", err)
			continue
		}
		sum := sha256.Sum256(data)
		e := &memoEntry{done: make(chan struct{}), data: data, sum: hex.EncodeToString(sum[:])}
		close(e.done)
		m.entries[key] = e
		m.restores.Add(1)
	}
	if n := m.restores.Load(); n > 0 {
		m.log.Info("restored persisted program bundles", "count", n)
	}
}

// ensure returns the (possibly still building) entry for spec's program,
// starting the build on first use.
func (m *programMemo) ensure(spec server.JobSpec) *memoEntry {
	key := server.ProgramKey(spec)
	m.mu.Lock()
	e := m.entries[key]
	if e == nil {
		e = &memoEntry{done: make(chan struct{})}
		m.entries[key] = e
		go m.build(e, key, spec)
	}
	m.mu.Unlock()
	return e
}

// build compiles one program, encodes the bundle, and persists it.
func (m *programMemo) build(e *memoEntry, key string, spec server.JobSpec) {
	defer close(e.done)
	w, ok := workload.ByName(spec.Workload)
	if !ok {
		e.err = fmt.Errorf("unknown workload %q", spec.Workload)
		return
	}
	p, image, err := workload.Program(w, spec.Scale, spec.CompileOptions())
	if err != nil {
		e.err = err
		return
	}
	data, err := server.EncodeProgramBundle(p, image)
	if err != nil {
		e.err = err
		return
	}
	sum := sha256.Sum256(data)
	e.data, e.sum = data, hex.EncodeToString(sum[:])
	m.builds.Add(1)
	if m.dir != "" {
		persistBundle(filepath.Join(m.dir, key), data)
	}
	m.log.Info("built shared program bundle",
		"workload", spec.Workload, "scale", spec.Scale, "bytes", len(data))
}

// persistBundle writes data atomically (tmp + rename), best-effort.
func persistBundle(path string, data []byte) {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil || os.Rename(name, path) != nil {
		os.Remove(name)
	}
}

// bundle returns a finished bundle by key, or ok=false if unknown or
// still building (a worker retrying its fetch will find it once built).
func (m *programMemo) bundle(key string) (data []byte, ok bool) {
	m.mu.Lock()
	e := m.entries[key]
	m.mu.Unlock()
	if e == nil {
		return nil, false
	}
	select {
	case <-e.done:
	default:
		return nil, false
	}
	if e.err != nil {
		return nil, false
	}
	return e.data, true
}

func (m *programMemo) families() []obs.TextFamily {
	counter := func(name, help string, v uint64) obs.TextFamily {
		return obs.TextFamily{Name: name, Help: help, Kind: "counter",
			Samples: []obs.TextSample{{Value: strconv.FormatUint(v, 10)}}}
	}
	return []obs.TextFamily{
		counter("mpsimd_fabric_program_builds_total",
			"Shared program bundles this coordinator compiled.", m.builds.Load()),
		counter("mpsimd_fabric_program_restores_total",
			"Shared program bundles restored from the persist directory.", m.restores.Load()),
		counter("mpsimd_fabric_program_serves_total",
			"Program-bundle fetches served to workers.", m.serves.Load()),
	}
}

// programRef resolves the shared-program pointer attached to dispatched
// jobs: it kicks off (or joins) the build for spec's program and waits for
// it under ctx. It returns nil — meaning "worker builds locally" — when
// bundle sharing is off (no SelfURL), the build failed, or ctx expired
// first; the memo protocol never fails a job.
func (d *Dispatcher) programRef(ctx context.Context, spec server.JobSpec) *server.ProgramRef {
	self := d.getSelfURL()
	if self == "" {
		return nil
	}
	e := d.memo.ensure(spec)
	select {
	case <-e.done:
	case <-ctx.Done():
		return nil
	}
	if e.err != nil {
		return nil
	}
	return &server.ProgramRef{Source: self, Key: server.ProgramKey(spec), Sum: e.sum}
}

// ProgramBundle serves one built bundle to a fetching worker; it
// implements the server's ProgramProvider optional interface.
func (d *Dispatcher) ProgramBundle(key string) ([]byte, bool) {
	data, ok := d.memo.bundle(key)
	if ok {
		d.memo.serves.Add(1)
	}
	return data, ok
}
