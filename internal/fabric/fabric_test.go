package fabric

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"multipass/internal/server"
)

// sweepGrid is the 60-cell equivalence grid: 4 workloads x 5 models x 3
// hierarchies, all cheap kernels so the full grid runs in seconds.
func sweepGrid() server.SweepRequest {
	return server.SweepRequest{
		Workloads: []string{"crafty", "gzip", "vpr", "parser"},
		Models:    []string{"inorder", "multipass", "runahead", "ooo", "ooo-realistic"},
		Hiers:     []string{"base", "config1", "config2"},
	}
}

func newWorker(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(server.New(server.Config{Workers: 2, Role: "worker"}).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// newCoordinator wires a Dispatcher over the worker URLs into a
// coordinator-mode server.
func newCoordinator(t *testing.T, urls []string) (*Dispatcher, *httptest.Server) {
	t.Helper()
	d, err := New(Options{
		Workers:      urls,
		RetryBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)
	ts := httptest.NewServer(server.New(server.Config{
		Workers: 4, Role: "coordinator", Dispatcher: d,
	}).Handler())
	t.Cleanup(ts.Close)
	return d, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readBody(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return buf.Bytes()
}

func runSweep(t *testing.T, base string, req server.SweepRequest) []byte {
	t.Helper()
	resp := postJSON(t, base+"/v1/sweep", req)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep against %s: status %d, body %.300s", base, resp.StatusCode, body)
	}
	return body
}

// TestShardedEquivalence is the fabric's correctness anchor: the same
// 60-cell sweep run on a single standalone node and sharded across three
// workers produces byte-identical buffered responses, and the
// coordinator's cache replays individual cells byte-identically to the
// standalone server's.
func TestShardedEquivalence(t *testing.T) {
	standalone := newWorker(t)

	urls := []string{newWorker(t).URL, newWorker(t).URL, newWorker(t).URL}
	d, coord := newCoordinator(t, urls)

	req := sweepGrid()
	single := runSweep(t, standalone.URL, req)
	sharded := runSweep(t, coord.URL, req)
	if !bytes.Equal(single, sharded) {
		t.Fatalf("sharded sweep diverges from single-node:\n single: %.400s\nsharded: %.400s", single, sharded)
	}

	var sr server.SweepResponse
	if err := json.Unmarshal(sharded, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Summary.Total != 60 || sr.Summary.Failed != 0 {
		t.Fatalf("summary = %+v, want 60 jobs, 0 failed", sr.Summary)
	}

	// Every worker took a share of the grid, and the accounting balances.
	disp := d.Dispositions()
	var dispatched, completed, retriedSuccess, failed uint64
	for url, w := range disp {
		if w.Dispatched == 0 {
			t.Errorf("worker %s dispatched 0 jobs: sharding is degenerate", url)
		}
		dispatched += w.Dispatched
		completed += w.Completed
		retriedSuccess += w.RetriedSuccess
		failed += w.Failed
	}
	if dispatched != 60 {
		t.Errorf("dispatched = %d, want 60", dispatched)
	}
	if dispatched != completed+retriedSuccess+failed {
		t.Errorf("disposition imbalance: dispatched %d != completed %d + retried_success %d + failed %d",
			dispatched, completed, retriedSuccess, failed)
	}

	// Per-cell replay: a cell from the sweep served via /v1/run hits the
	// coordinator's cache with the exact bytes the standalone node serves.
	cell := server.RunRequest{Workload: "gzip", Model: "multipass", Hier: "config1"}
	wantResp := postJSON(t, standalone.URL+"/v1/run", cell)
	want := readBody(t, wantResp)
	gotResp := postJSON(t, coord.URL+"/v1/run", cell)
	got := readBody(t, gotResp)
	if hdr := gotResp.Header.Get("X-Mpsimd-Cache"); hdr != "hit" {
		t.Errorf("coordinator replay cache header = %q, want hit", hdr)
	}
	if !bytes.Equal(want, got) {
		t.Errorf("replayed cell diverges:\nstandalone: %s\ncoordinator: %s", want, got)
	}
}

// mortalWorker proxies a real worker but aborts every connection once
// kill() is called — the coordinator sees mid-sweep worker death as
// transport errors.
type mortalWorker struct {
	ts    *httptest.Server
	runs  atomic.Int64
	dead  atomic.Bool
	after int64
}

// newMortalWorker builds a worker that dies after `after` /v1/run calls.
func newMortalWorker(t *testing.T, after int64) *mortalWorker {
	t.Helper()
	m := &mortalWorker{after: after}
	inner := server.New(server.Config{Workers: 2, Role: "worker"}).Handler()
	m.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/v1/run" {
			if m.runs.Add(1) > m.after {
				m.dead.Store(true)
			}
		}
		if m.dead.Load() {
			// Sever the connection without a response, as a crashed
			// process would.
			panic(http.ErrAbortHandler)
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(m.ts.Close)
	return m
}

// TestWorkerDeathMidSweep kills one of three workers partway through its
// slice of a 60-cell sweep and requires the coordinator to (a) finish the
// sweep with zero failed cells by retrying the dead worker's jobs
// elsewhere, and (b) still produce the byte-identical single-node result.
func TestWorkerDeathMidSweep(t *testing.T) {
	standalone := newWorker(t)

	// With three workers each slice is ~20 cells; dying after 5 run calls
	// kills the worker mid-slice.
	mortal := newMortalWorker(t, 5)
	urls := []string{newWorker(t).URL, newWorker(t).URL, mortal.ts.URL}
	d, coord := newCoordinator(t, urls)

	req := sweepGrid()
	single := runSweep(t, standalone.URL, req)
	sharded := runSweep(t, coord.URL, req)
	if !bytes.Equal(single, sharded) {
		t.Fatalf("sweep with mid-flight worker death diverges from single-node:\n single: %.400s\nsharded: %.400s",
			single, sharded)
	}
	if !mortal.dead.Load() {
		t.Fatal("mortal worker never died: the test exercised nothing")
	}

	disp := d.Dispositions()
	var retriedSuccess, failed uint64
	for _, w := range disp {
		retriedSuccess += w.RetriedSuccess
		failed += w.Failed
	}
	if retriedSuccess == 0 {
		t.Error("retried_success = 0, want the dead worker's jobs rescued elsewhere")
	}
	if failed != 0 {
		t.Errorf("failed = %d, want 0: every job has two live fallbacks", failed)
	}
	// A straggler success from the dying worker may have raced the health
	// bit back to true; the probe loop settles it. Two consecutive failed
	// probes (the default threshold) must mark it down.
	for i := 0; i < 2; i++ {
		if d.CheckHealth(mortal.ts.URL) {
			t.Fatal("health probe of a dead worker reported ok")
		}
	}
	if d.Dispositions()[mortal.ts.URL].Healthy {
		t.Error("dead worker still marked healthy after failed probes")
	}
}

// TestStreamingOverFabric: a streaming sweep through the coordinator emits
// one NDJSON record per cell plus a summary whose per-worker disposition
// counts cover the whole grid.
func TestStreamingOverFabric(t *testing.T) {
	urls := []string{newWorker(t).URL, newWorker(t).URL}
	_, coord := newCoordinator(t, urls)

	req := server.SweepRequest{
		Workloads: []string{"crafty", "twolf"},
		Models:    []string{"inorder", "multipass"},
		Hiers:     []string{"base", "config1", "config2"},
	}
	resp := postJSON(t, coord.URL+"/v1/sweep?stream=true", req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}

	const cells = 12
	var jobs, summaries int
	var last server.SweepStreamRecord
	seen := make(map[int]bool)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		if summaries > 0 {
			t.Fatalf("record after the summary terminator: %s", sc.Text())
		}
		var rec server.SweepStreamRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad NDJSON record %q: %v", sc.Text(), err)
		}
		switch rec.Type {
		case server.StreamRecordJob:
			jobs++
			if rec.Index == nil || *rec.Index < 0 || *rec.Index >= cells {
				t.Fatalf("job record with bad index: %s", sc.Text())
			}
			if seen[*rec.Index] {
				t.Fatalf("index %d emitted twice", *rec.Index)
			}
			seen[*rec.Index] = true
			if rec.SweepJob == nil || rec.Status != server.JobDone {
				t.Fatalf("job record not done: %s", sc.Text())
			}
		case server.StreamRecordSummary:
			summaries++
			last = rec
		default:
			t.Fatalf("unknown record type %q", rec.Type)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if jobs != cells || summaries != 1 {
		t.Fatalf("stream had %d job records and %d summaries, want %d and 1", jobs, summaries, cells)
	}
	if last.Summary == nil || last.Summary.Total != cells || last.Summary.Failed != 0 {
		t.Fatalf("summary = %+v", last.Summary)
	}
	var dispatched, resolved uint64
	for url, w := range last.Workers {
		if !strings.HasPrefix(url, "http://") {
			t.Errorf("summary worker key %q is not a worker URL", url)
		}
		dispatched += w.Dispatched
		resolved += w.Completed + w.RetriedSuccess
	}
	if len(last.Workers) != len(urls) || dispatched != cells || resolved != cells {
		t.Errorf("summary workers = %+v: want %d workers, %d dispatched, %d resolved",
			last.Workers, len(urls), cells, cells)
	}
}

// TestPermanentErrorPropagatesEnvelope: a deterministic job failure on a
// worker is not retried, and the worker's error envelope (status, code,
// message) passes through the coordinator unchanged.
func TestPermanentErrorPropagatesEnvelope(t *testing.T) {
	urls := []string{newWorker(t).URL, newWorker(t).URL}
	d, coord := newCoordinator(t, urls)

	// MaxInsts far below the kernel's dynamic length makes the simulation
	// itself fail, deterministically, on any worker.
	resp := postJSON(t, coord.URL+"/v1/run", server.RunRequest{
		Workload: "crafty", Model: "inorder", MaxInsts: 100,
	})
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, body %s, want 500", resp.StatusCode, body)
	}
	var er server.ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("body %s is not an ErrorResponse: %v", body, err)
	}
	if er.Error.Code != server.CodeJobFailed {
		t.Errorf("code = %q, want %q", er.Error.Code, server.CodeJobFailed)
	}

	var retried uint64
	for _, w := range d.Dispositions() {
		retried += w.Retried
	}
	if retried != 0 {
		t.Errorf("retried = %d, want 0: deterministic job errors must not be retried", retried)
	}
}

// TestCoordinatorMetricsFederation: the coordinator's /metrics carries its
// fabric accounting and the workers' families under mpsimd_worker_* with a
// worker label, and the fabric balance invariant holds.
func TestCoordinatorMetricsFederation(t *testing.T) {
	urls := []string{newWorker(t).URL, newWorker(t).URL}
	_, coord := newCoordinator(t, urls)

	runSweep(t, coord.URL, server.SweepRequest{
		Workloads: []string{"crafty"},
		Models:    []string{"inorder", "multipass"},
		Hiers:     []string{"base"},
	})

	resp, err := http.Get(coord.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text := string(readBody(t, resp))

	for _, want := range []string{
		"# TYPE mpsimd_fabric_dispatched_total counter",
		"# TYPE mpsimd_fabric_worker_healthy gauge",
		"# TYPE mpsimd_worker_jobs_total counter",
		`worker="` + urls[0] + `"`,
		`worker="` + urls[1] + `"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("coordinator /metrics missing %q", want)
		}
	}

	sum := func(metric string) (total float64) {
		for _, line := range strings.Split(text, "\n") {
			if strings.HasPrefix(line, metric+"{") {
				fields := strings.Fields(line)
				if v, err := strconv.ParseFloat(fields[len(fields)-1], 64); err == nil {
					total += v
				}
			}
		}
		return total
	}
	dispatched := sum("mpsimd_fabric_dispatched_total")
	completed := sum("mpsimd_fabric_completed_total")
	rescued := sum("mpsimd_fabric_retried_success_total")
	failed := sum("mpsimd_fabric_failed_total")
	if dispatched == 0 || dispatched != completed+rescued+failed {
		t.Errorf("fabric balance: dispatched %v != completed %v + retried_success %v + failed %v",
			dispatched, completed, rescued, failed)
	}
}
