package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"multipass/internal/compile"
	"multipass/internal/server"
)

// testSpec is one normalized job spec for unit tests that never execute a
// real simulation (canned workers answer anything).
func testSpec(workload, model, hier string) server.JobSpec {
	def := compile.DefaultOptions()
	return server.JobSpec{
		Workload: workload, Model: model, Hier: hier, Scale: 1,
		Schedule: def.Schedule, InsertRestarts: def.InsertRestarts, Unroll: def.Unroll,
	}
}

// newCannedWorker is a fake worker: health always ok, every /v1/run answers
// 200 with fixed bytes after delay. It lets dispatch-path tests control
// timing exactly without running simulations.
func newCannedWorker(t *testing.T, delay time.Duration) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/worker/health":
			w.Write([]byte(`{"status":"ok"}`))
		case "/v1/run":
			io.Copy(io.Discard, r.Body)
			if delay > 0 {
				time.Sleep(delay)
			}
			w.Write([]byte(`{"ok":true}`))
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestProbeSuccessDecaysPenalty is the regression test for the backoff
// decay fix: a worker that accumulated dispatch penalty through failures
// must have that penalty (and its failure count) fully cleared by a bare
// successful health probe — not only by serving a job. Before the fix the
// penalty survived probe-only recovery, so an idle recovered worker was
// still throttled on its next dispatch.
func TestProbeSuccessDecaysPenalty(t *testing.T) {
	ts := newCannedWorker(t, 0)
	d, err := New(Options{Workers: []string{ts.URL}, RetryBackoff: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)

	w := d.workers[ts.URL]
	d.markFailure(w)
	d.markFailure(w)
	if w.penaltyNS.Load() == 0 {
		t.Fatal("failures did not accumulate a dispatch penalty")
	}
	if w.healthy.Load() {
		t.Fatal("worker still healthy after reaching the failure threshold")
	}

	if !d.CheckHealth(ts.URL) {
		t.Fatal("health probe of a live worker failed")
	}
	if pen := w.penaltyNS.Load(); pen != 0 {
		t.Errorf("penalty = %dns after a successful probe, want 0: probe-only recovery must decay backoff", pen)
	}
	if n := w.consecFails.Load(); n != 0 {
		t.Errorf("consecFails = %d after a successful probe, want 0", n)
	}
	if !w.healthy.Load() {
		t.Error("worker not restored to healthy by a successful probe")
	}
}

// TestStealRebalance: 24 jobs that all hash to the same primary worker —
// the worst possible ring split — still level out across an equal-speed
// two-worker fleet, because the idle worker steals from the primary's
// backlog. Pinned: at least one steal happened, and the resolution split is
// near-even even though the dispatch split was 24/0.
func TestStealRebalance(t *testing.T) {
	a := newCannedWorker(t, 20*time.Millisecond)
	b := newCannedWorker(t, 20*time.Millisecond)
	d, err := New(Options{Workers: []string{a.URL, b.URL}, WorkerSlots: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)

	spec := testSpec("crafty", "inorder", "base")
	const jobs = 24
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := d.Dispatch(context.Background(), spec); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()

	disp := d.Dispositions()
	ra := disp[a.URL].Completed + disp[a.URL].RetriedSuccess
	rb := disp[b.URL].Completed + disp[b.URL].RetriedSuccess
	stolen := disp[a.URL].Stolen + disp[b.URL].Stolen
	if ra+rb != jobs {
		t.Fatalf("resolved %d+%d, want %d", ra, rb, jobs)
	}
	if stolen == 0 {
		t.Error("stolen = 0: the idle worker never drained the primary's backlog")
	}
	min := ra
	if rb < min {
		min = rb
	}
	if min < 8 {
		t.Errorf("resolution split %d/%d despite work stealing, want the smaller side >= 8", ra, rb)
	}
}

// TestDynamicMembershipDispatch drives the Join/Leave lifecycle directly:
// an empty fleet refuses jobs, a joined worker serves them, renewals are
// not re-joins, a departed worker keeps its (non-member) accounting row,
// and dispatch keeps working across the churn.
func TestDynamicMembershipDispatch(t *testing.T) {
	d, err := New(Options{AllowEmptyFleet: true, RetryBackoff: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)
	ctx := context.Background()
	spec := testSpec("crafty", "inorder", "base")

	if _, err := d.Dispatch(ctx, spec); err == nil {
		t.Fatal("dispatch on an empty fleet succeeded")
	}

	a := newCannedWorker(t, 0)
	ttl, members := d.Join(a.URL)
	if ttl <= 0 || len(members) != 1 || members[0] != a.URL {
		t.Fatalf("Join = (%v, %v)", ttl, members)
	}
	if _, err := d.Dispatch(ctx, spec); err != nil {
		t.Fatalf("dispatch after join: %v", err)
	}

	b := newCannedWorker(t, 0)
	d.Join(b.URL)
	d.Join(a.URL) // lease renewal, not a new join
	if got := d.joins.Load(); got != 2 {
		t.Errorf("joins = %d after two joins and one renewal, want 2", got)
	}

	if !d.Leave(a.URL) {
		t.Fatal("Leave of a member returned false")
	}
	if d.Leave(a.URL) {
		t.Fatal("second Leave of the same worker returned true, want idempotent false")
	}
	if m := d.Members(); len(m) != 1 || m[0] != b.URL {
		t.Fatalf("members after leave = %v, want [%s]", m, b.URL)
	}
	row, ok := d.Dispositions()[a.URL]
	if !ok {
		t.Fatal("departed worker lost its accounting row")
	}
	if row.Member {
		t.Error("departed worker still marked as a member")
	}
	if _, err := d.Dispatch(ctx, spec); err != nil {
		t.Fatalf("dispatch after leave: %v", err)
	}
}

// TestLeaseExpiry: a dynamic member that stops renewing is removed when its
// lease lapses; renewals keep it alive; static workers never expire.
func TestLeaseExpiry(t *testing.T) {
	static := newCannedWorker(t, 0)
	dyn := newCannedWorker(t, 0)
	d, err := New(Options{Workers: []string{static.URL}, LeaseTTL: 40 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)

	d.Join(dyn.URL)
	// Renewals inside the TTL keep the member alive.
	time.Sleep(25 * time.Millisecond)
	d.Join(dyn.URL)
	time.Sleep(25 * time.Millisecond)
	d.expireLeases()
	if m := d.Members(); len(m) != 2 {
		t.Fatalf("renewing member expired: members = %v", m)
	}

	time.Sleep(60 * time.Millisecond)
	d.expireLeases()
	m := d.Members()
	if len(m) != 1 || m[0] != static.URL {
		t.Fatalf("members after lease lapse = %v, want only the static worker", m)
	}
	if got := d.leaseExpiries.Load(); got != 1 {
		t.Errorf("leaseExpiries = %d, want 1", got)
	}
}

// TestLeaveReassignsBacklog: jobs queued on a worker that leaves mid-sweep
// are reassigned (or stolen) and every one of them completes — leaving
// never strands or fails queued work while another member remains.
func TestLeaveReassignsBacklog(t *testing.T) {
	a := newCannedWorker(t, 40*time.Millisecond)
	b := newCannedWorker(t, 40*time.Millisecond)
	d, err := New(Options{Workers: []string{a.URL, b.URL}, WorkerSlots: 1, RetryBackoff: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)

	spec := testSpec("gzip", "multipass", "config1")
	primary := d.assignee(spec.Key(), nil).url

	const jobs = 12
	errs := make(chan error, jobs)
	for i := 0; i < jobs; i++ {
		go func() {
			_, err := d.Dispatch(context.Background(), spec)
			errs <- err
		}()
	}
	// Let the backlog form on the primary, then yank it out of the fleet.
	time.Sleep(15 * time.Millisecond)
	d.Leave(primary)

	for i := 0; i < jobs; i++ {
		if err := <-errs; err != nil {
			t.Errorf("job failed across the leave: %v", err)
		}
	}
	var failed uint64
	for _, w := range d.Dispositions() {
		failed += w.Failed
	}
	if failed != 0 {
		t.Errorf("failed = %d, want 0: the remaining member covers the backlog", failed)
	}
	if m := d.Members(); len(m) != 1 || m[0] == primary {
		t.Fatalf("members after leave = %v", m)
	}
}

// TestSharedProgramMemo is the fleet-wide build-once guarantee: a sweep
// over two workloads compiles exactly two programs — both on the
// coordinator — and every worker fetches its pre-built bundle instead of
// compiling its own, without perturbing the byte-identical sweep result.
func TestSharedProgramMemo(t *testing.T) {
	standalone := newWorker(t)
	w1, w2 := newWorker(t), newWorker(t)
	d, coord := newCoordinator(t, []string{w1.URL, w2.URL})
	// The coordinator's advertised URL is only known once httptest picks a
	// port; setting it turns bundle sharing on.
	d.SetSelfURL(coord.URL)

	req := server.SweepRequest{
		Workloads: []string{"crafty", "gzip"},
		Models:    []string{"inorder", "multipass"},
		Hiers:     []string{"base", "config1", "config2"},
	}
	single := runSweep(t, standalone.URL, req)
	sharded := runSweep(t, coord.URL, req)
	if !bytes.Equal(single, sharded) {
		t.Fatal("memo-backed sweep diverges from single-node")
	}

	if got := d.memo.builds.Load(); got != 2 {
		t.Errorf("coordinator built %d programs, want exactly 1 per workload (2)", got)
	}
	if d.memo.serves.Load() == 0 {
		t.Error("coordinator served no bundles: workers built locally")
	}
	var fetched uint64
	for _, w := range []*httptest.Server{w1, w2} {
		resp, err := http.Get(w.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		var st server.StatsResponse
		if err := json.Unmarshal(readBody(t, resp), &st); err != nil {
			t.Fatal(err)
		}
		if st.ProgramsBuilt != 0 {
			t.Errorf("worker %s compiled %d programs itself, want 0 (fetch from coordinator)",
				w.URL, st.ProgramsBuilt)
		}
		fetched += st.ProgramsFetched
	}
	if fetched < 2 {
		t.Errorf("fleet fetched %d bundles, want >= 2 (each workload's program at least once)", fetched)
	}
}

// TestMemoPersistRestore: program bundles built under a persist dir are
// restored — decode-checked, not rebuilt — by the next coordinator process
// on the same dir.
func TestMemoPersistRestore(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec("crafty", "inorder", "base")
	key := server.ProgramKey(spec)

	d1, err := New(Options{AllowEmptyFleet: true, PersistDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	e := d1.memo.ensure(spec)
	<-e.done
	if e.err != nil {
		t.Fatal(e.err)
	}
	d1.Stop()

	d2, err := New(Options{AllowEmptyFleet: true, PersistDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d2.Stop)
	if got := d2.memo.restores.Load(); got != 1 {
		t.Fatalf("restores = %d, want 1", got)
	}
	data, ok := d2.memo.bundle(key)
	if !ok {
		t.Fatal("restored bundle not served by key")
	}
	if _, _, err := server.DecodeProgramBundle(data); err != nil {
		t.Fatalf("restored bundle does not decode: %v", err)
	}
	// ensure() on a restored program must not rebuild.
	e2 := d2.memo.ensure(spec)
	<-e2.done
	if e2.err != nil {
		t.Fatal(e2.err)
	}
	if got := d2.memo.builds.Load(); got != 0 {
		t.Errorf("restored coordinator rebuilt %d programs, want 0", got)
	}
}

// newDynamicCoordinator wires an empty-fleet Dispatcher into a
// coordinator-mode server, for tests that populate the fleet over HTTP.
func newDynamicCoordinator(t *testing.T) (*Dispatcher, *httptest.Server) {
	t.Helper()
	d, err := New(Options{AllowEmptyFleet: true, RetryBackoff: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)
	ts := httptest.NewServer(server.New(server.Config{
		Workers: 4, Role: "coordinator", Dispatcher: d,
	}).Handler())
	t.Cleanup(ts.Close)
	return d, ts
}

// TestFabricEndpointsHTTP covers the membership wire protocol: join grants
// a lease and lists the fleet, a joined fleet serves sweeps byte-identical
// to single-node, leave is idempotent, malformed URLs are rejected with
// bad_join, non-coordinators answer not_coordinator, and unknown program
// keys answer unknown_program.
func TestFabricEndpointsHTTP(t *testing.T) {
	standalone := newWorker(t)
	_, coord := newDynamicCoordinator(t)
	w1, w2 := newWorker(t), newWorker(t)

	join := func(url string) (*http.Response, server.JoinResponse) {
		resp := postJSON(t, coord.URL+"/v1/fabric/join", server.JoinRequest{URL: url})
		var jr server.JoinResponse
		body := readBody(t, resp)
		if resp.StatusCode == http.StatusOK {
			if err := json.Unmarshal(body, &jr); err != nil {
				t.Fatalf("join response %s: %v", body, err)
			}
		}
		return resp, jr
	}

	resp, jr := join(w1.URL)
	if resp.StatusCode != http.StatusOK || jr.TTLMS <= 0 || len(jr.Members) != 1 {
		t.Fatalf("join = status %d, %+v", resp.StatusCode, jr)
	}
	if _, jr = join(w2.URL); len(jr.Members) != 2 {
		t.Fatalf("second join members = %v", jr.Members)
	}

	req := server.SweepRequest{
		Workloads: []string{"crafty", "gzip"},
		Models:    []string{"inorder", "multipass"},
		Hiers:     []string{"base", "config1", "config2"},
	}
	single := runSweep(t, standalone.URL, req)
	sharded := runSweep(t, coord.URL, req)
	if !bytes.Equal(single, sharded) {
		t.Fatal("sweep over an HTTP-joined fleet diverges from single-node")
	}

	// Malformed worker URL: rejected before touching the fleet.
	resp = postJSON(t, coord.URL+"/v1/fabric/join", server.JoinRequest{URL: "not a url"})
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusBadRequest || !bytes.Contains(body, []byte(server.CodeBadJoin)) {
		t.Errorf("bad join = status %d, body %s", resp.StatusCode, body)
	}

	// Fabric endpoints on a plain worker: not a coordinator.
	resp = postJSON(t, w1.URL+"/v1/fabric/join", server.JoinRequest{URL: w2.URL})
	body = readBody(t, resp)
	if resp.StatusCode != http.StatusNotFound || !bytes.Contains(body, []byte(server.CodeNotCoordinator)) {
		t.Errorf("join on a worker = status %d, body %s", resp.StatusCode, body)
	}

	// Unknown program key.
	presp, err := http.Get(coord.URL + "/v1/fabric/program?key=feedfeed")
	if err != nil {
		t.Fatal(err)
	}
	body = readBody(t, presp)
	if presp.StatusCode != http.StatusNotFound || !bytes.Contains(body, []byte(server.CodeUnknownProgram)) {
		t.Errorf("unknown program = status %d, body %s", presp.StatusCode, body)
	}

	// Leave is idempotent: both posts answer 200, the fleet shrinks once.
	for i := 0; i < 2; i++ {
		resp = postJSON(t, coord.URL+"/v1/fabric/leave", server.JoinRequest{URL: w2.URL})
		var lr server.JoinResponse
		if err := json.Unmarshal(readBody(t, resp), &lr); err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("leave #%d = status %d, err %v", i, resp.StatusCode, err)
		}
		if len(lr.Members) != 1 || lr.Members[0] != w1.URL {
			t.Fatalf("leave #%d members = %v", i, lr.Members)
		}
	}
}
