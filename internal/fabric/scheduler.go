package fabric

import (
	"context"
	"sync"
	"sync/atomic"

	"multipass/internal/server"
)

// pendingJob is one job on the coordinator's pending set. It is owned by
// exactly one goroutine at a time — the Dispatch caller until it is
// enqueued, then whichever runner pops it from a queue — so its mutable
// fields (tried, attempts, lastErr) need no lock. Resolution is a CAS on
// resolved: the first of {runner finishing, waiter abandoning on context
// cancel} wins, which is what makes completion exactly-once even when a
// stolen job races its original assignee.
type pendingJob struct {
	spec server.JobSpec
	key  string
	ctx  context.Context
	ref  *server.ProgramRef // shared program memo pointer, nil if unavailable

	primary  *worker         // charged for dispatched/failed accounting
	tried    map[string]bool // workers that already failed this job
	attempts int             // failed attempts so far
	lastErr  error

	resolved atomic.Bool
	res      chan jobResult // buffered(1); exactly one send, guarded by resolved
}

type jobResult struct {
	data []byte
	err  error
}

// scheduler is the coordinator's pending set: one FIFO queue per worker
// URL, fed by Dispatch (jobs go to their ring primary) and drained by each
// worker's slot runners. An idle runner whose own queue is empty steals
// from the tail of the longest other backlog — owners drain from the head,
// thieves from the tail, so a skewed consistent-hash split self-levels
// without the owner and thief colliding on the same cells.
type scheduler struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues map[string][]*pendingJob
	closed bool
}

func newScheduler() *scheduler {
	s := &scheduler{queues: make(map[string][]*pendingJob)}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// enqueue appends j to url's queue and wakes runners. It returns false if
// the scheduler is closed (dispatcher stopping); the caller must fail the
// job itself.
func (s *scheduler) enqueue(url string, j *pendingJob) bool {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false
	}
	s.queues[url] = append(s.queues[url], j)
	s.mu.Unlock()
	s.cond.Broadcast()
	return true
}

// next blocks until a job is available for w's runner: its own queue's
// head first, otherwise — if w is healthy — the tail of the longest other
// queue (a steal, counted on w). It returns nil when stop closes or the
// scheduler shuts down. Stealing is deliberately not restricted to member
// queues: a queue orphaned by a racing leave is drained by whoever is
// idle.
func (s *scheduler) next(w *worker, stop <-chan struct{}) *pendingJob {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		select {
		case <-stop:
			return nil
		default:
		}
		if s.closed {
			return nil
		}
		if q := s.queues[w.url]; len(q) > 0 {
			j := q[0]
			q[0] = nil
			s.queues[w.url] = q[1:]
			return j
		}
		if w.healthy.Load() {
			var victim string
			max := 0
			for url, q := range s.queues {
				if url != w.url && len(q) > max {
					victim, max = url, len(q)
				}
			}
			if max > 0 {
				q := s.queues[victim]
				j := q[len(q)-1]
				q[len(q)-1] = nil
				s.queues[victim] = q[:len(q)-1]
				w.stolen.Add(1)
				return j
			}
		}
		s.cond.Wait()
	}
}

// take removes and returns url's whole queue (used when a member leaves,
// so its backlog can be reassigned by ring order).
func (s *scheduler) take(url string) []*pendingJob {
	s.mu.Lock()
	defer s.mu.Unlock()
	q := s.queues[url]
	delete(s.queues, url)
	return q
}

// close marks the scheduler closed, wakes every runner, and returns all
// still-queued jobs so the dispatcher can fail them instead of leaving
// their waiters blocked.
func (s *scheduler) close() []*pendingJob {
	s.mu.Lock()
	s.closed = true
	var orphans []*pendingJob
	for url, q := range s.queues {
		orphans = append(orphans, q...)
		delete(s.queues, url)
	}
	s.mu.Unlock()
	s.cond.Broadcast()
	return orphans
}
