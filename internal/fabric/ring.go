// Package fabric is the coordinator side of distributed mpsimd: it shards
// jobs across worker daemons by consistent hashing on the content-addressed
// job key, retries jobs away from dead or failing workers with bounded
// backoff, and federates the workers' /metrics into the coordinator's
// exposition. It implements server.Dispatcher; the server package never
// imports it.
package fabric

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// defaultVirtualNodes is the per-worker point count on the ring. High
// enough that a three-worker fabric shards a 60-cell grid roughly evenly;
// cheap enough that building the ring is negligible.
const defaultVirtualNodes = 64

// Ring is a consistent-hash ring over worker URLs. Jobs hash to the first
// point clockwise of their key, so each worker owns a stable slice of the
// key space and its result cache stays hot for that slice across sweeps —
// and adding or removing a worker only moves the keys adjacent to its
// points, not the whole assignment.
type Ring struct {
	points []ringPoint // sorted by hash
	urls   []string    // distinct workers, insertion order
}

type ringPoint struct {
	hash uint64
	url  string
}

// NewRing places vnodes points per worker URL. vnodes <= 0 uses the
// default. Duplicate URLs collapse to one worker.
func NewRing(urls []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = defaultVirtualNodes
	}
	r := &Ring{}
	seen := make(map[string]bool, len(urls))
	for _, url := range urls {
		if url == "" || seen[url] {
			continue
		}
		seen[url] = true
		r.urls = append(r.urls, url)
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{
				hash: ringHash(url + "#" + strconv.Itoa(i)),
				url:  url,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break on URL so the ring is deterministic even in the
		// astronomically unlikely event of a point-hash collision.
		return r.points[i].url < r.points[j].url
	})
	return r
}

// Workers returns the distinct worker URLs on the ring, insertion order.
func (r *Ring) Workers() []string {
	out := make([]string, len(r.urls))
	copy(out, r.urls)
	return out
}

// Owners returns every worker in preference order for key: the owner of
// the first point clockwise of the key's hash, then each subsequent
// distinct worker walking the ring. The first entry is the job's primary;
// the rest are its retry fallbacks.
func (r *Ring) Owners(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[string]bool, len(r.urls))
	out := make([]string, 0, len(r.urls))
	for n := 0; n < len(r.points) && len(out) < len(r.urls); n++ {
		p := r.points[(i+n)%len(r.points)]
		if seen[p.url] {
			continue
		}
		seen[p.url] = true
		out = append(out, p.url)
	}
	return out
}

// ringHash maps a string to a ring position: the first 8 bytes of its
// SHA-256. Job keys are themselves hex SHA-256 digests, but hashing again
// costs nothing and lets ring positions and virtual-node points share one
// function.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}
