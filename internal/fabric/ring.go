// Package fabric is the coordinator side of distributed mpsimd: it shards
// jobs across worker daemons by consistent hashing on the content-addressed
// job key, balances skewed shards with pull-based work stealing, retries
// jobs away from dead or failing workers with bounded backoff, lets workers
// join and leave a live fleet under a heartbeat lease, and federates the
// workers' /metrics into the coordinator's exposition. It implements
// server.Dispatcher; the server package never imports it.
package fabric

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// defaultVirtualNodes is the per-worker point count on the ring. Raised from
// 64 (which split the standard 24-cell grid 10/14 across two workers) to
// 128, which splits the same grid 12/12; the regression test in ring_test.go
// pins the split at >= 11/13. Building and mutating the ring stays
// negligible at this size.
const defaultVirtualNodes = 128

// Ring is a consistent-hash ring over worker URLs. Jobs hash to the first
// point clockwise of their key, so each worker owns a stable slice of the
// key space and its result cache stays hot for that slice across sweeps —
// and adding or removing a worker only moves the keys adjacent to its
// points, not the whole assignment. Add and Remove re-place exactly one
// worker's virtual nodes, so a fleet grown incrementally is point-for-point
// identical to one built in a single NewRing call.
//
// Ring is not goroutine-safe; the Dispatcher guards it.
type Ring struct {
	points []ringPoint // sorted by hash
	urls   []string    // distinct workers, insertion order
	vnodes int         // per-worker point count
}

type ringPoint struct {
	hash uint64
	url  string
}

// NewRing places vnodes points per worker URL. vnodes <= 0 uses the
// default. Duplicate URLs collapse to one worker.
func NewRing(urls []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = defaultVirtualNodes
	}
	r := &Ring{vnodes: vnodes}
	for _, url := range urls {
		r.Add(url)
	}
	return r
}

// Add places url's virtual nodes on the ring. It returns false (and changes
// nothing) if url is empty or already present. Only keys whose first
// clockwise point becomes one of the new nodes change primary, so the churn
// from one join is bounded by the new worker's fair share.
func (r *Ring) Add(url string) bool {
	if url == "" {
		return false
	}
	for _, u := range r.urls {
		if u == url {
			return false
		}
	}
	r.urls = append(r.urls, url)
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{
			hash: ringHash(url + "#" + strconv.Itoa(i)),
			url:  url,
		})
	}
	r.sortPoints()
	return true
}

// Remove deletes url's virtual nodes from the ring. It returns false if url
// was not a member. Keys the departed worker owned move to their next
// clockwise owner; every other key keeps its primary.
func (r *Ring) Remove(url string) bool {
	found := false
	for i, u := range r.urls {
		if u == url {
			r.urls = append(r.urls[:i], r.urls[i+1:]...)
			found = true
			break
		}
	}
	if !found {
		return false
	}
	kept := r.points[:0]
	for _, p := range r.points {
		if p.url != url {
			kept = append(kept, p)
		}
	}
	r.points = kept
	return true
}

func (r *Ring) sortPoints() {
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break on URL so the ring is deterministic even in the
		// astronomically unlikely event of a point-hash collision.
		return r.points[i].url < r.points[j].url
	})
}

// Workers returns the distinct worker URLs on the ring, insertion order.
func (r *Ring) Workers() []string {
	out := make([]string, len(r.urls))
	copy(out, r.urls)
	return out
}

// Len returns the number of distinct workers on the ring.
func (r *Ring) Len() int { return len(r.urls) }

// Owners returns every worker in preference order for key: the owner of
// the first point clockwise of the key's hash, then each subsequent
// distinct worker walking the ring. The first entry is the job's primary;
// the rest are its retry fallbacks.
func (r *Ring) Owners(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[string]bool, len(r.urls))
	out := make([]string, 0, len(r.urls))
	for n := 0; n < len(r.points) && len(out) < len(r.urls); n++ {
		p := r.points[(i+n)%len(r.points)]
		if seen[p.url] {
			continue
		}
		seen[p.url] = true
		out = append(out, p.url)
	}
	return out
}

// ringHash maps a string to a ring position: the first 8 bytes of its
// SHA-256. Job keys are themselves hex SHA-256 digests, but hashing again
// costs nothing and lets ring positions and virtual-node points share one
// function.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}
