package chaostest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"testing"
	"time"

	"multipass/internal/server"
)

// grid12 is the property-test sweep: small enough that one chaos run takes
// seconds, wide enough that every worker owns cells.
func grid12() server.SweepRequest {
	return server.SweepRequest{
		Workloads: []string{"crafty", "gzip"},
		Models:    []string{"inorder", "multipass"},
		Hiers:     []string{"base", "config1", "config2"},
	}
}

// grid60 is the acceptance sweep, matching the fabric equivalence anchor.
func grid60() server.SweepRequest {
	return server.SweepRequest{
		Workloads: []string{"crafty", "gzip", "vpr", "parser"},
		Models:    []string{"inorder", "multipass", "runahead", "ooo", "ooo-realistic"},
		Hiers:     []string{"base", "config1", "config2"},
	}
}

func postSweep(base string, req server.SweepRequest) ([]byte, int, error) {
	data, err := json.Marshal(req)
	if err != nil {
		return nil, 0, err
	}
	resp, err := http.Post(base+"/v1/sweep", "application/json", bytes.NewReader(data))
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return nil, resp.StatusCode, err
	}
	return buf.Bytes(), resp.StatusCode, nil
}

// steadyReference computes what any fleet must converge to: a standalone
// server's second sweep of the grid, i.e. the all-cached steady state (a
// resumed or re-issued sweep reports restored cells as "cached", so the
// first-run response — all "done" — is not the right reference).
func steadyReference(t *testing.T, req server.SweepRequest) []byte {
	t.Helper()
	ts := httptest.NewServer(server.New(server.Config{Workers: 4}).Handler())
	defer ts.Close()
	for i := 0; i < 2; i++ {
		body, code, err := postSweep(ts.URL, req)
		if err != nil || code != http.StatusOK {
			t.Fatalf("reference sweep: status %d, err %v", code, err)
		}
		if i == 1 {
			return body
		}
	}
	panic("unreachable")
}

// sweepUntilClean re-issues the sweep against the (possibly restarting)
// coordinator until one run completes with zero failed cells. Transport
// errors and failed cells are both expected mid-chaos — a severed
// connection or an exhausted retry budget during a kill window — and both
// must be recoverable by simply asking again.
func sweepUntilClean(t *testing.T, f *Fleet, req server.SweepRequest) []byte {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	attempt := 0
	for {
		attempt++
		body, code, err := postSweep(f.CoordinatorURL(), req)
		if err == nil && code == http.StatusOK {
			var sr server.SweepResponse
			if jerr := json.Unmarshal(body, &sr); jerr == nil && sr.Summary.Failed == 0 {
				return body
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no clean sweep after %d attempts (last: status %d, err %v)", attempt, code, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// saveFailingSchedule persists the schedule that broke the invariant so CI
// uploads it and a developer replays it by seed. It also logs the JSON
// inline: the artifact survives even when only logs do.
func saveFailingSchedule(t *testing.T, sched Schedule) {
	t.Helper()
	data, _ := json.Marshal(sched)
	t.Logf("failing chaos schedule: %s", data)
	dir := os.Getenv("MPSIMD_CHAOS_ARTIFACTS")
	if dir == "" {
		return
	}
	path, err := sched.Save(dir, fmt.Sprintf("failing-seed-%d.json", sched.Seed))
	if err != nil {
		t.Logf("could not save failing schedule: %v", err)
		return
	}
	t.Logf("failing schedule saved to %s", path)
}

// verifySteadyState quiesces the fleet and requires its next sweep to be
// byte-identical to the standalone reference — the chaos invariant.
func verifySteadyState(t *testing.T, f *Fleet, req server.SweepRequest, ref []byte, sched Schedule) {
	t.Helper()
	f.Quiesce()
	body, code, err := postSweep(f.CoordinatorURL(), req)
	if err != nil || code != http.StatusOK {
		saveFailingSchedule(t, sched)
		t.Fatalf("steady-state sweep: status %d, err %v", code, err)
	}
	if !bytes.Equal(ref, body) {
		saveFailingSchedule(t, sched)
		t.Fatalf("steady-state sweep diverges from single-node:\n  ref: %.400s\nfleet: %.400s", ref, body)
	}
}

// TestChaosSweepEquivalence is the property test: for every seeded random
// chaos schedule, a sweep driven through kills, delays, partitions,
// leaves, joins, and coordinator restarts still converges to the exact
// bytes a single node produces. Seed count and base are env-tunable
// (MPSIMD_CHAOS_SEEDS, MPSIMD_CHAOS_BASE_SEED) so CI can sweep more
// schedules than a local run.
func TestChaosSweepEquivalence(t *testing.T) {
	req := grid12()
	ref := steadyReference(t, req)

	seeds := 3
	if s := os.Getenv("MPSIMD_CHAOS_SEEDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("bad MPSIMD_CHAOS_SEEDS %q", s)
		}
		seeds = n
	}
	base := int64(1)
	if s := os.Getenv("MPSIMD_CHAOS_BASE_SEED"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad MPSIMD_CHAOS_BASE_SEED %q", s)
		}
		base = n
	}

	for i := 0; i < seeds; i++ {
		seed := base + int64(i)
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			sched := Generate(seed, 2, 12)
			f, err := NewFleet(2, t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()

			stop := make(chan struct{})
			driven := f.Drive(sched, stop)
			sweepUntilClean(t, f, req)
			close(stop)
			<-driven
			verifySteadyState(t, f, req, ref, sched)
		})
	}
}

// TestChaosAcceptance is the scripted end-to-end hardening scenario on the
// 60-cell grid: a worker is slowed (building a stealable backlog), a new
// worker joins mid-sweep, a worker dies mid-sweep, and the coordinator is
// restarted mid-sweep — and the fleet must still converge byte-identically
// to single-node, with at least one stolen job, exactly one program build
// per workload fleet-wide, and no worker ever compiling a program itself.
func TestChaosAcceptance(t *testing.T) {
	req := grid60()
	ref := steadyReference(t, req)

	f, err := NewFleet(2, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	sched := Schedule{Events: []Event{
		{AtRunCalls: 4, Action: DelayWorker, Worker: 1, Delay: 40 * time.Millisecond, Dur: 2500 * time.Millisecond},
		{AtRunCalls: 5, Action: JoinWorker},
		{AtRunCalls: 12, Action: KillWorker, Worker: 1, Dur: 1200 * time.Millisecond},
		{AtRunCalls: 26, Action: RestartCoordinator},
	}}

	stop := make(chan struct{})
	driven := f.Drive(sched, stop)
	body := sweepUntilClean(t, f, req)
	close(stop)
	<-driven

	var sr server.SweepResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Summary.Total != 60 || sr.Summary.Failed != 0 {
		t.Fatalf("clean sweep summary = %+v, want 60 total, 0 failed", sr.Summary)
	}

	verifySteadyState(t, f, req, ref, sched)

	if f.Restarts() < 1 {
		t.Error("coordinator restart never fired: the scenario exercised nothing")
	}
	if got := len(f.Workers()); got != 3 {
		t.Errorf("fleet has %d workers after the join, want 3", got)
	}
	if got := len(f.Dispatcher().Members()); got != 3 {
		t.Errorf("membership after restart lists %d workers, want all 3", got)
	}
	if stolen := f.StolenTotal(); stolen == 0 {
		t.Error("stolen = 0 across the whole scenario, want at least one steal")
	}
	builds, err := f.ProgramBuildsTotal()
	if err != nil {
		t.Fatal(err)
	}
	if builds != 4 {
		t.Errorf("fleet-wide program builds = %d, want exactly 1 per workload (4)", builds)
	}
	for i, p := range f.Workers() {
		resp, err := http.Get(p.InnerURL() + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		var st server.StatsResponse
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if err := json.Unmarshal(buf.Bytes(), &st); err != nil {
			t.Fatal(err)
		}
		if st.ProgramsBuilt != 0 {
			t.Errorf("worker %d compiled %d programs itself, want 0 (all fetched from the memo)",
				i, st.ProgramsBuilt)
		}
	}
}
