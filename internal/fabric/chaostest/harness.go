// Package chaostest is the fault-injection harness for the sweep fabric.
// It stands up a real coordinator/worker fleet (httptest servers end to
// end), fronts every worker with a scriptable chaos proxy, and fires a
// seeded Schedule of disturbances — worker kills, call delays, network
// partitions, voluntary leaves, new joins, coordinator restarts — at
// deterministic points in a sweep's run-call stream.
//
// The invariant the harness exists to check: no chaos schedule may change
// the bytes a sweep produces. Whatever is killed, delayed, partitioned, or
// restarted mid-flight, the fleet's steady-state sweep response must be
// byte-identical to a single node's, and no cell may be lost or doubled.
//
// Schedules keep worker 0 undisturbed, so at least one healthy member
// always remains and every job retains a live fallback.
package chaostest

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"multipass/internal/fabric"
	"multipass/internal/server"
)

// Chaos actions. All worker-targeted actions auto-heal after Event.Dur.
const (
	// KillWorker severs every connection through the worker's proxy, as a
	// crashed process would.
	KillWorker = "kill-worker"
	// DelayWorker adds Event.Delay to every proxied call.
	DelayWorker = "delay-worker"
	// PartitionWorker hangs proxied calls until heal (or the caller's
	// context dies), as a network partition would.
	PartitionWorker = "partition-worker"
	// LeaveWorker posts a voluntary leave for the worker, which rejoins on
	// heal.
	LeaveWorker = "leave-worker"
	// JoinWorker adds a brand-new worker to the fleet mid-sweep.
	JoinWorker = "join-worker"
	// RestartCoordinator stops the coordinator (dispatcher and HTTP server)
	// and starts a fresh one on the same persist directory; live workers
	// re-join the new instance.
	RestartCoordinator = "restart-coordinator"
)

// Event is one scripted disturbance, fired when the fleet-wide count of
// /v1/run calls (arrivals at the proxies, retries included) reaches
// AtRunCalls.
type Event struct {
	AtRunCalls int64         `json:"at_run_calls"`
	Action     string        `json:"action"`
	Worker     int           `json:"worker,omitempty"` // proxy index; ignored by join/restart
	Delay      time.Duration `json:"delay,omitempty"`  // DelayWorker only
	Dur        time.Duration `json:"dur,omitempty"`    // auto-heal after this long
}

// Schedule is a reproducible chaos script: the seed that generated it plus
// the events in firing order. Failing schedules are persisted as JSON
// artifacts so a CI failure replays locally by seed.
type Schedule struct {
	Seed   int64   `json:"seed"`
	Events []Event `json:"events"`
}

// Generate derives a random schedule from seed for a fleet of `workers`
// initial workers sweeping about totalCells cells. Thresholds are spread
// over the first sweep's call stream; targets never include worker 0, so
// one member is always left untouched.
func Generate(seed int64, workers, totalCells int) Schedule {
	r := rand.New(rand.NewSource(seed))
	actions := []string{
		KillWorker, DelayWorker, PartitionWorker,
		LeaveWorker, JoinWorker, RestartCoordinator,
	}
	n := 2 + r.Intn(3)
	s := Schedule{Seed: seed}
	at := int64(1 + r.Intn(3))
	for i := 0; i < n; i++ {
		ev := Event{
			AtRunCalls: at,
			Action:     actions[r.Intn(len(actions))],
			Dur:        time.Duration(100+r.Intn(400)) * time.Millisecond,
		}
		if workers > 1 {
			ev.Worker = 1 + r.Intn(workers-1)
		} else {
			ev.Action = JoinWorker
		}
		if ev.Action == DelayWorker {
			ev.Delay = time.Duration(20+r.Intn(60)) * time.Millisecond
		}
		s.Events = append(s.Events, ev)
		at += int64(1 + r.Intn(totalCells/2+1))
	}
	return s
}

// Save writes the schedule as JSON under dir, creating dir if needed.
func (s Schedule) Save(dir, name string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, name)
	return path, os.WriteFile(path, append(data, '\n'), 0o644)
}

// Proxy fronts one real worker with switchable fault injection.
type Proxy struct {
	inner *httptest.Server // the real worker daemon
	front *httptest.Server // what the coordinator dials
	rp    *httputil.ReverseProxy

	mu        sync.Mutex
	dead      bool
	delay     time.Duration
	partition chan struct{} // non-nil while partitioned; closed to heal
	left      bool          // voluntarily out of the fleet (fleet bookkeeping)
}

// URL is the address the coordinator dispatches to (the chaos front).
func (p *Proxy) URL() string { return p.front.URL }

// InnerURL is the real worker daemon, reachable regardless of chaos state
// (for /v1/stats assertions).
func (p *Proxy) InnerURL() string { return p.inner.URL }

func (p *Proxy) setDead(v bool) {
	p.mu.Lock()
	p.dead = v
	p.mu.Unlock()
}

func (p *Proxy) setDelay(d time.Duration) {
	p.mu.Lock()
	p.delay = d
	p.mu.Unlock()
}

func (p *Proxy) setPartitioned(v bool) {
	p.mu.Lock()
	if v && p.partition == nil {
		p.partition = make(chan struct{})
	} else if !v && p.partition != nil {
		close(p.partition)
		p.partition = nil
	}
	p.mu.Unlock()
}

// heal restores pass-through behavior whatever state the proxy is in.
func (p *Proxy) heal() {
	p.mu.Lock()
	p.dead = false
	p.delay = 0
	if p.partition != nil {
		close(p.partition)
		p.partition = nil
	}
	p.mu.Unlock()
}

func (p *Proxy) close() {
	p.heal()
	p.front.Close()
	p.inner.Close()
}

// Fleet is one coordinator plus N chaos-proxied workers sharing a persist
// directory, with cumulative accounting that survives coordinator
// restarts.
type Fleet struct {
	persistDir string
	runCalls   atomic.Int64 // fleet-wide /v1/run arrivals at the proxies

	mu       sync.Mutex
	workers  []*Proxy
	disp     *fabric.Dispatcher
	coord    *httptest.Server
	retired  []*fabric.Dispatcher // pre-restart dispatchers, kept for accounting
	restarts int

	heals sync.WaitGroup
}

// NewFleet starts `workers` proxied workers and a dynamic coordinator over
// persistDir, and joins every worker.
func NewFleet(workers int, persistDir string) (*Fleet, error) {
	f := &Fleet{persistDir: persistDir}
	for i := 0; i < workers; i++ {
		f.workers = append(f.workers, f.newProxy())
	}
	if err := f.startCoordinator(); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// newProxy builds one real worker plus its chaos front.
func (f *Fleet) newProxy() *Proxy {
	p := &Proxy{}
	p.inner = httptest.NewServer(server.New(server.Config{Workers: 2, Role: "worker"}).Handler())
	target, _ := url.Parse(p.inner.URL)
	p.rp = httputil.NewSingleHostReverseProxy(target)
	// A canceled or severed upstream call is an expected chaos outcome, not
	// something to spam test output with; the default handler's 502 answer
	// is kept (the dispatcher classifies it as retryable).
	p.rp.ErrorLog = log.New(io.Discard, "", 0)
	p.front = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/v1/run" {
			f.runCalls.Add(1)
		}
		p.mu.Lock()
		dead, delay, part := p.dead, p.delay, p.partition
		p.mu.Unlock()
		if dead {
			panic(http.ErrAbortHandler)
		}
		if part != nil {
			select {
			case <-part:
			case <-r.Context().Done():
				panic(http.ErrAbortHandler)
			}
		}
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-r.Context().Done():
				panic(http.ErrAbortHandler)
			}
		}
		p.rp.ServeHTTP(w, r)
	}))
	return p
}

// startCoordinator builds a dispatcher + coordinator server on the shared
// persist dir and joins every worker that is not voluntarily out.
// Callers hold no locks; the fleet lock is taken here.
func (f *Fleet) startCoordinator() error {
	d, err := fabric.New(fabric.Options{
		AllowEmptyFleet: true,
		RetryBackoff:    10 * time.Millisecond,
		HealthInterval:  300 * time.Millisecond,
		ProbeTimeout:    time.Second,
		LeaseTTL:        10 * time.Minute, // tests drive churn explicitly, not via expiry
		PersistDir:      f.persistDir,
		Logger:          slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		return err
	}
	ts := httptest.NewServer(server.New(server.Config{
		Workers:    4,
		Role:       "coordinator",
		Dispatcher: d,
		PersistDir: f.persistDir,
	}).Handler())
	d.SetSelfURL(ts.URL)
	d.Start()

	f.mu.Lock()
	f.disp, f.coord = d, ts
	workers := append([]*Proxy(nil), f.workers...)
	f.mu.Unlock()
	for _, p := range workers {
		p.mu.Lock()
		left := p.left
		p.mu.Unlock()
		if !left {
			d.Join(p.URL())
		}
	}
	return nil
}

// CoordinatorURL is the current coordinator's base URL (it changes on
// restart).
func (f *Fleet) CoordinatorURL() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.coord.URL
}

// Dispatcher is the current coordinator's dispatcher.
func (f *Fleet) Dispatcher() *fabric.Dispatcher {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.disp
}

// Workers snapshots the current proxies.
func (f *Fleet) Workers() []*Proxy {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]*Proxy(nil), f.workers...)
}

// Restarts is how many times the coordinator was restarted.
func (f *Fleet) Restarts() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.restarts
}

// AddWorker starts a fresh proxied worker and joins it, returning its
// index.
func (f *Fleet) AddWorker() int {
	p := f.newProxy()
	f.mu.Lock()
	f.workers = append(f.workers, p)
	idx := len(f.workers) - 1
	d := f.disp
	f.mu.Unlock()
	d.Join(p.URL())
	return idx
}

// RestartCoordinator kills the coordinator — client connections severed,
// dispatcher stopped — and brings up a fresh one on the same persist
// directory. In-flight sweeps against the old instance die with their
// connections; a re-issued sweep re-dispatches only cells missing from the
// persisted results.
func (f *Fleet) RestartCoordinator() error {
	f.mu.Lock()
	oldTS, oldD := f.coord, f.disp
	f.retired = append(f.retired, oldD)
	f.restarts++
	f.mu.Unlock()

	oldTS.CloseClientConnections()
	oldTS.Close()
	oldD.Stop()
	return f.startCoordinator()
}

// Drive fires sched's events in order as the run-call clock passes their
// thresholds, healing each disturbance after its Dur. The returned channel
// closes when every event fired (or stop closed first).
func (f *Fleet) Drive(sched Schedule, stop <-chan struct{}) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, ev := range sched.Events {
			for f.runCalls.Load() < ev.AtRunCalls {
				select {
				case <-stop:
					return
				case <-time.After(2 * time.Millisecond):
				}
			}
			f.fire(ev)
		}
	}()
	return done
}

// fire applies one event and schedules its heal.
func (f *Fleet) fire(ev Event) {
	workers := f.Workers()
	var p *Proxy
	if ev.Worker >= 0 && ev.Worker < len(workers) {
		p = workers[ev.Worker]
	}
	healAfter := func(fn func()) {
		if ev.Dur <= 0 {
			fn()
			return
		}
		f.heals.Add(1)
		time.AfterFunc(ev.Dur, func() {
			defer f.heals.Done()
			fn()
		})
	}
	switch ev.Action {
	case KillWorker:
		if p == nil {
			return
		}
		p.setDead(true)
		healAfter(func() { p.setDead(false) })
	case DelayWorker:
		if p == nil {
			return
		}
		p.setDelay(ev.Delay)
		healAfter(func() { p.setDelay(0) })
	case PartitionWorker:
		if p == nil {
			return
		}
		p.setPartitioned(true)
		healAfter(func() { p.setPartitioned(false) })
	case LeaveWorker:
		if p == nil {
			return
		}
		p.mu.Lock()
		p.left = true
		p.mu.Unlock()
		f.Dispatcher().Leave(p.URL())
		healAfter(func() {
			p.mu.Lock()
			p.left = false
			p.mu.Unlock()
			f.Dispatcher().Join(p.URL())
		})
	case JoinWorker:
		f.AddWorker()
	case RestartCoordinator:
		// Errors here surface as the sweep never succeeding; the harness
		// has no better channel mid-drive.
		f.RestartCoordinator() //nolint:errcheck
	}
}

// Quiesce waits for pending heals, then restores every proxy to
// pass-through and re-joins any worker that is out of the fleet, leaving a
// fully healthy fleet for steady-state verification.
func (f *Fleet) Quiesce() {
	f.heals.Wait()
	d := f.Dispatcher()
	members := make(map[string]bool)
	for _, url := range d.Members() {
		members[url] = true
	}
	for _, p := range f.Workers() {
		p.heal()
		p.mu.Lock()
		p.left = false
		p.mu.Unlock()
		if !members[p.URL()] {
			d.Join(p.URL())
		}
	}
}

// StolenTotal sums stolen-job counts across every coordinator generation.
func (f *Fleet) StolenTotal() uint64 {
	f.mu.Lock()
	disps := append(append([]*fabric.Dispatcher(nil), f.retired...), f.disp)
	f.mu.Unlock()
	var total uint64
	for _, d := range disps {
		for _, w := range d.Dispositions() {
			total += w.Stolen
		}
	}
	return total
}

// ProgramBuildsTotal sums shared-program compilations across every
// coordinator generation — the fleet-wide build count the memo is supposed
// to hold at one per program.
func (f *Fleet) ProgramBuildsTotal() (uint64, error) {
	f.mu.Lock()
	disps := append(append([]*fabric.Dispatcher(nil), f.retired...), f.disp)
	f.mu.Unlock()
	var total uint64
	for _, d := range disps {
		found := false
		for _, fam := range d.FleetFamilies() {
			if fam.Name != "mpsimd_fabric_program_builds_total" {
				continue
			}
			for _, s := range fam.Samples {
				v, err := strconv.ParseUint(s.Value, 10, 64)
				if err != nil {
					return 0, fmt.Errorf("bad %s sample %q: %w", fam.Name, s.Value, err)
				}
				total += v
			}
			found = true
		}
		if !found {
			return 0, fmt.Errorf("dispatcher exports no mpsimd_fabric_program_builds_total")
		}
	}
	return total, nil
}

// Close tears the whole fleet down.
func (f *Fleet) Close() {
	f.heals.Wait()
	f.mu.Lock()
	coord, disp := f.coord, f.disp
	workers := append([]*Proxy(nil), f.workers...)
	f.mu.Unlock()
	if coord != nil {
		coord.Close()
	}
	if disp != nil {
		disp.Stop()
	}
	for _, p := range workers {
		p.close()
	}
}
