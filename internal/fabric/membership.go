package fabric

import (
	"strings"
	"time"
)

// Join adds url to the fleet, or renews its lease if it is already a
// member. A joining worker gets its virtual nodes placed on the ring —
// moving only the keys those nodes now own — and its slot runners started,
// all without disturbing in-flight jobs. Rejoining after a leave revives
// the worker's existing accounting row. Join never fails; URL validation
// is the caller's job (the server's join handler rejects malformed URLs
// with bad_join before calling this).
//
// The returned TTL is the lease the worker must renew within (renewal is
// simply another Join); the member list is the fleet after the join.
func (d *Dispatcher) Join(url string) (time.Duration, []string) {
	url = strings.TrimRight(url, "/")
	d.mu.Lock()
	w := d.workers[url]
	if w == nil {
		w = &worker{url: url}
		d.workers[url] = w
	}
	renewal := w.member
	if !w.member {
		w.member = true
		// A joiner starts with a clean slate: whatever failure state it
		// accumulated before leaving says nothing about the new process.
		w.healthy.Store(true)
		w.consecFails.Store(0)
		w.penaltyNS.Store(0)
		d.ring.Add(url)
		w.stopRunners = make(chan struct{})
		d.startRunners(w)
		d.joins.Add(1)
	}
	w.leaseDeadline = time.Now().Add(d.opts.LeaseTTL)
	members := d.ring.Workers()
	d.mu.Unlock()
	if !renewal {
		d.log.Info("fabric worker joined", "worker", url, "members", len(members))
	}
	return d.opts.LeaseTTL, members
}

// Leave removes url from the fleet: its virtual nodes come off the ring
// (moving only the keys it owned), its runners stop after their current
// job, and its queued backlog is reassigned by ring order among the
// remaining members. The worker's accounting row survives so sweep
// disposition deltas stay consistent; a later Join revives it. Returns
// false if url was not a member.
func (d *Dispatcher) Leave(url string) bool {
	url = strings.TrimRight(url, "/")
	d.mu.Lock()
	w := d.workers[url]
	if w == nil || !w.member {
		d.mu.Unlock()
		return false
	}
	w.member = false
	w.leaseDeadline = time.Time{}
	d.ring.Remove(url)
	close(w.stopRunners)
	d.leaves.Add(1)
	members := d.ring.Len()
	d.mu.Unlock()

	// Reassign the departed worker's backlog. A job enqueued to the old
	// URL in the narrow window after this drain is still rescued: healthy
	// runners steal from any non-empty queue, member or not.
	for _, j := range d.sched.take(url) {
		if j == nil || j.resolved.Load() {
			continue
		}
		j.tried[url] = true
		if next := d.assignee(j.key, j.tried); next != nil {
			if !d.sched.enqueue(next.url, j) {
				d.fail(j)
			}
		} else {
			d.fail(j)
		}
	}
	d.log.Info("fabric worker left", "worker", url, "members", members)
	return true
}

// expireLeases removes dynamic members whose lease lapsed. Static workers
// (from the -coordinator flag) have no lease and never expire — for them
// the health loop alone governs dispatch preference.
func (d *Dispatcher) expireLeases() {
	now := time.Now()
	d.mu.RLock()
	var expired []string
	for url, w := range d.workers {
		if w.member && !w.static && !w.leaseDeadline.IsZero() && now.After(w.leaseDeadline) {
			expired = append(expired, url)
		}
	}
	d.mu.RUnlock()
	for _, url := range expired {
		// Re-check under Leave's write lock via its member test; a renewal
		// racing this loop wins by ordering (Join holds mu while extending
		// the deadline, but once chosen here the leave proceeds — the
		// worker simply rejoins on its next heartbeat).
		if d.Leave(url) {
			d.leaseExpiries.Add(1)
			d.log.Warn("fabric worker lease expired", "worker", url)
		}
	}
}

// Members returns the current fleet member URLs, insertion order.
func (d *Dispatcher) Members() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.ring.Workers()
}
