package fabric

import (
	"fmt"
	"testing"

	"multipass/internal/compile"
	"multipass/internal/server"
)

func TestRingOwnersDeterministicAndDistinct(t *testing.T) {
	urls := []string{"http://a:1", "http://b:1", "http://c:1"}
	r := NewRing(urls, 0)

	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("key-%d", i)
		owners := r.Owners(key)
		if len(owners) != len(urls) {
			t.Fatalf("key %s: %d owners, want %d", key, len(owners), len(urls))
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("key %s: duplicate owner %s", key, o)
			}
			seen[o] = true
		}
		again := r.Owners(key)
		for j := range owners {
			if owners[j] != again[j] {
				t.Fatalf("key %s: Owners not deterministic: %v vs %v", key, owners, again)
			}
		}
	}
}

// TestRingDistribution: with virtual nodes, every worker owns a
// non-trivial share of a key population. The bound is loose — the point is
// no worker is starved or hogging the ring.
func TestRingDistribution(t *testing.T) {
	urls := []string{"http://a:1", "http://b:1", "http://c:1"}
	r := NewRing(urls, 0)
	counts := map[string]int{}
	const n = 3000
	for i := 0; i < n; i++ {
		counts[r.Owners(fmt.Sprintf("job-%d", i))[0]]++
	}
	for _, url := range urls {
		if counts[url] < n/10 {
			t.Errorf("worker %s owns only %d/%d keys", url, counts[url], n)
		}
	}
}

// TestRingStability: removing one worker only reassigns the keys it owned;
// every other key keeps its primary. This is the property that keeps
// worker result caches hot across fleet changes.
func TestRingStability(t *testing.T) {
	full := NewRing([]string{"http://a:1", "http://b:1", "http://c:1"}, 0)
	reduced := NewRing([]string{"http://a:1", "http://b:1"}, 0)
	moved, kept := 0, 0
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("job-%d", i)
		before := full.Owners(key)[0]
		after := reduced.Owners(key)[0]
		if before == "http://c:1" {
			continue // had to move
		}
		if before == after {
			kept++
		} else {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d keys moved despite their owner surviving (kept %d)", moved, kept)
	}
}

func TestRingEmptyAndDuplicates(t *testing.T) {
	if owners := NewRing(nil, 0).Owners("k"); owners != nil {
		t.Errorf("empty ring Owners = %v, want nil", owners)
	}
	r := NewRing([]string{"http://a:1", "http://a:1", ""}, 0)
	if got := r.Workers(); len(got) != 1 || got[0] != "http://a:1" {
		t.Errorf("Workers() = %v, want one deduped entry", got)
	}
}

// TestRingIncrementalEqualsBatch: a ring grown one Add at a time assigns
// every key identically to a ring built in a single NewRing call, and
// removing a member restores the assignment of the smaller batch ring. This
// is what lets a coordinator re-ring a live fleet without restarting: the
// assignment after any join/leave sequence depends only on the surviving
// member set.
func TestRingIncrementalEqualsBatch(t *testing.T) {
	urls := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}

	grown := NewRing(nil, 0)
	for _, u := range urls {
		if !grown.Add(u) {
			t.Fatalf("Add(%s) = false, want true", u)
		}
	}
	batch := NewRing(urls, 0)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("job-%d", i)
		g, b := grown.Owners(key), batch.Owners(key)
		for j := range b {
			if g[j] != b[j] {
				t.Fatalf("key %s: grown owners %v != batch owners %v", key, g, b)
			}
		}
	}

	if !grown.Remove("http://c:1") {
		t.Fatal("Remove of a member returned false")
	}
	reduced := NewRing([]string{"http://a:1", "http://b:1", "http://d:1"}, 0)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("job-%d", i)
		if grown.Owners(key)[0] != reduced.Owners(key)[0] {
			t.Fatalf("key %s: post-Remove primary %s != batch primary %s",
				key, grown.Owners(key)[0], reduced.Owners(key)[0])
		}
	}
}

// TestRingAddRemoveChurn is the table-driven rebalance bound: across a
// series of membership changes, (a) a key only changes primary when the
// change forces it — on Add it may move only to the added worker, on Remove
// only keys owned by the departed worker move — and (b) the moved share is
// bounded by roughly the fair share of the re-placed vnodes, with slack for
// hash variance.
func TestRingAddRemoveChurn(t *testing.T) {
	const n = 4000
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("job-%d", i)
	}
	primaries := func(r *Ring) map[string]string {
		out := make(map[string]string, n)
		for _, k := range keys {
			out[k] = r.Owners(k)[0]
		}
		return out
	}

	tests := []struct {
		name    string
		start   []string
		op      func(*Ring) bool
		changed string  // the worker whose vnodes move
		add     bool    // Add (moved keys gain changed) vs Remove (moved keys lose it)
		share   float64 // expected moved fraction (fair share of the change)
	}{
		{
			name:    "add fourth worker",
			start:   []string{"http://a:1", "http://b:1", "http://c:1"},
			op:      func(r *Ring) bool { return r.Add("http://d:1") },
			changed: "http://d:1", add: true, share: 1.0 / 4,
		},
		{
			name:    "add second worker",
			start:   []string{"http://a:1"},
			op:      func(r *Ring) bool { return r.Add("http://b:1") },
			changed: "http://b:1", add: true, share: 1.0 / 2,
		},
		{
			name:    "remove one of four",
			start:   []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"},
			op:      func(r *Ring) bool { return r.Remove("http://d:1") },
			changed: "http://d:1", add: false, share: 1.0 / 4,
		},
		{
			name:    "remove one of two",
			start:   []string{"http://a:1", "http://b:1"},
			op:      func(r *Ring) bool { return r.Remove("http://b:1") },
			changed: "http://b:1", add: false, share: 1.0 / 2,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRing(tc.start, 0)
			before := primaries(r)
			if !tc.op(r) {
				t.Fatal("membership op reported no change")
			}
			after := primaries(r)

			moved := 0
			for _, k := range keys {
				if before[k] == after[k] {
					continue
				}
				moved++
				if tc.add && after[k] != tc.changed {
					t.Fatalf("key %s moved %s -> %s on Add(%s): collateral movement",
						k, before[k], after[k], tc.changed)
				}
				if !tc.add && before[k] != tc.changed {
					t.Fatalf("key %s moved %s -> %s on Remove(%s): collateral movement",
						k, before[k], after[k], tc.changed)
				}
			}
			// The moved share tracks the re-placed vnodes' fair share. 1.6x
			// slack absorbs hash variance at 128 vnodes without letting a
			// rebalance bug (e.g. a full re-sort moving everything) pass.
			frac := float64(moved) / float64(n)
			if frac > tc.share*1.6 {
				t.Errorf("moved %d/%d keys (%.3f), want <= %.3f (share %.3f * 1.6)",
					moved, n, frac, tc.share*1.6, tc.share)
			}
			if moved == 0 {
				t.Error("no keys moved at all: the membership change had no effect")
			}
		})
	}
}

// TestRingOwnersStabilityAcrossChange: for keys whose primary survives a
// membership change, the *relative order* of surviving fallback owners is
// also preserved — removing worker X from the fleet removes X from every
// preference list without reshuffling the rest.
func TestRingOwnersStabilityAcrossChange(t *testing.T) {
	r := NewRing([]string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}, 0)
	before := make(map[string][]string)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("job-%d", i)
		before[key] = r.Owners(key)
	}
	r.Remove("http://d:1")
	for key, owners := range before {
		want := owners[:0:0]
		for _, o := range owners {
			if o != "http://d:1" {
				want = append(want, o)
			}
		}
		got := r.Owners(key)
		if len(got) != len(want) {
			t.Fatalf("key %s: %d owners after Remove, want %d", key, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("key %s: owners after Remove = %v, want %v (order preserved)", key, got, want)
			}
		}
	}
}

// grid24Keys are the job keys of the standard 24-cell CI grid (2 workloads
// x 4 models x 3 hierarchies), exactly as planSweep normalizes them.
func grid24Keys(t *testing.T) []string {
	t.Helper()
	def := compile.DefaultOptions()
	var keys []string
	for _, wl := range []string{"crafty", "gzip"} {
		for _, hier := range []string{"base", "config1", "config2"} {
			for _, model := range []string{"inorder", "multipass", "runahead", "ooo"} {
				spec := server.JobSpec{
					Workload: wl, Model: model, Hier: hier, Scale: 1,
					Schedule: def.Schedule, InsertRestarts: def.InsertRestarts, Unroll: def.Unroll,
				}
				keys = append(keys, spec.Key())
			}
		}
	}
	if len(keys) != 24 {
		t.Fatalf("grid has %d keys, want 24", len(keys))
	}
	return keys
}

// TestRingSkewRegression24Cell pins the static shard split of the standard
// 24-cell grid across the two CI fabric workers. At 64 vnodes this split
// was 10/14 (the skew that motivated work stealing); the 128-vnode default
// must keep it at 11/13 or better, and this test fails if a ring change
// regresses it.
func TestRingSkewRegression24Cell(t *testing.T) {
	urls := []string{"http://localhost:9101", "http://localhost:9102"}
	r := NewRing(urls, 0)
	counts := map[string]int{}
	for _, k := range grid24Keys(t) {
		counts[r.Owners(k)[0]]++
	}
	min := counts[urls[0]]
	if counts[urls[1]] < min {
		min = counts[urls[1]]
	}
	if min < 11 {
		t.Errorf("24-cell static split = %d/%d, want >= 11/13 (was 10/14 at 64 vnodes)",
			counts[urls[0]], counts[urls[1]])
	}
}
