package fabric

import (
	"fmt"
	"testing"
)

func TestRingOwnersDeterministicAndDistinct(t *testing.T) {
	urls := []string{"http://a:1", "http://b:1", "http://c:1"}
	r := NewRing(urls, 0)

	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("key-%d", i)
		owners := r.Owners(key)
		if len(owners) != len(urls) {
			t.Fatalf("key %s: %d owners, want %d", key, len(owners), len(urls))
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("key %s: duplicate owner %s", key, o)
			}
			seen[o] = true
		}
		again := r.Owners(key)
		for j := range owners {
			if owners[j] != again[j] {
				t.Fatalf("key %s: Owners not deterministic: %v vs %v", key, owners, again)
			}
		}
	}
}

// TestRingDistribution: with virtual nodes, every worker owns a
// non-trivial share of a key population. The bound is loose — the point is
// no worker is starved or hogging the ring.
func TestRingDistribution(t *testing.T) {
	urls := []string{"http://a:1", "http://b:1", "http://c:1"}
	r := NewRing(urls, 0)
	counts := map[string]int{}
	const n = 3000
	for i := 0; i < n; i++ {
		counts[r.Owners(fmt.Sprintf("job-%d", i))[0]]++
	}
	for _, url := range urls {
		if counts[url] < n/10 {
			t.Errorf("worker %s owns only %d/%d keys", url, counts[url], n)
		}
	}
}

// TestRingStability: removing one worker only reassigns the keys it owned;
// every other key keeps its primary. This is the property that keeps
// worker result caches hot across fleet changes.
func TestRingStability(t *testing.T) {
	full := NewRing([]string{"http://a:1", "http://b:1", "http://c:1"}, 0)
	reduced := NewRing([]string{"http://a:1", "http://b:1"}, 0)
	moved, kept := 0, 0
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("job-%d", i)
		before := full.Owners(key)[0]
		after := reduced.Owners(key)[0]
		if before == "http://c:1" {
			continue // had to move
		}
		if before == after {
			kept++
		} else {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d keys moved despite their owner surviving (kept %d)", moved, kept)
	}
}

func TestRingEmptyAndDuplicates(t *testing.T) {
	if owners := NewRing(nil, 0).Owners("k"); owners != nil {
		t.Errorf("empty ring Owners = %v, want nil", owners)
	}
	r := NewRing([]string{"http://a:1", "http://a:1", ""}, 0)
	if got := r.Workers(); len(got) != 1 || got[0] != "http://a:1" {
		t.Errorf("Workers() = %v, want one deduped entry", got)
	}
}
