package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"multipass/internal/obs"
	"multipass/internal/server"
)

// Defaults for Options fields left zero.
const (
	defaultMaxAttempts    = 3
	defaultRetryBackoff   = 100 * time.Millisecond
	defaultFailThreshold  = 2
	defaultHealthInterval = 5 * time.Second
	defaultProbeTimeout   = 2 * time.Second
	defaultWorkerSlots    = 2
	defaultLeaseTTL       = 15 * time.Second

	// maxPenalty caps the per-worker dispatch penalty that doubles on each
	// failure; see markFailure.
	maxPenalty = 2 * time.Second
	// maxRetryBackoff caps the doubling re-dispatch delay of one job.
	maxRetryBackoff = 5 * time.Second
)

// Options shapes a Dispatcher.
type Options struct {
	// Workers are the static worker daemons' base URLs (e.g.
	// http://host:9190). Static workers are permanent members: they never
	// lease-expire. A fleet may start empty (AllowEmptyFleet) and be
	// populated entirely by Join.
	Workers []string
	// AllowEmptyFleet permits New with zero static workers, for fleets
	// built dynamically via /v1/fabric/join. Dispatching on an empty fleet
	// fails with worker_failed.
	AllowEmptyFleet bool
	// Client performs all worker HTTP calls; nil uses a dedicated client
	// with no overall timeout (job deadlines come from the request context).
	Client *http.Client
	// MaxAttempts bounds how many distinct workers one job may try
	// (primary + retries); 0 means 3.
	MaxAttempts int
	// RetryBackoff is the delay before a failed job is re-queued to its
	// next fallback worker, doubling per attempt; 0 means 100ms.
	RetryBackoff time.Duration
	// FailThreshold marks a worker unhealthy after this many consecutive
	// dispatch failures; 0 means 2. Unhealthy workers are deprioritized,
	// not abandoned: they still serve as last-resort fallbacks and are
	// restored by the health loop or by any successful call.
	FailThreshold int
	// HealthInterval paces the background /v1/worker/health probe loop
	// started by Start; 0 means 5s.
	HealthInterval time.Duration
	// ProbeTimeout bounds each health probe and /metrics scrape; 0 means 2s.
	ProbeTimeout time.Duration
	// VirtualNodes is the per-worker point count on the hash ring; 0 uses
	// the ring default.
	VirtualNodes int
	// WorkerSlots is how many jobs the coordinator keeps in flight per
	// worker (the runner count per member); 0 means 2. It should track the
	// workers' own -workers pool size.
	WorkerSlots int
	// LeaseTTL is how long a dynamic member stays in the fleet without a
	// join renewal; 0 means 15s. Static workers ignore it.
	LeaseTTL time.Duration
	// SelfURL is the coordinator's own externally reachable base URL,
	// advertised to workers as the source for shared program bundles. Empty
	// disables bundle sharing (workers build locally). Settable later via
	// SetSelfURL.
	SelfURL string
	// PersistDir, when non-empty, persists built program bundles under
	// PersistDir/programs so a restarted coordinator serves them without
	// rebuilding.
	PersistDir string
	// Logger receives dispatch retry, membership, and health-transition
	// logs; nil discards them.
	Logger *slog.Logger
}

// worker is the per-worker dispatch accounting plus membership state.
// Counters are atomics so the hot paths need no lock; membership fields
// (member, static, leaseDeadline, stopRunners) are guarded by Dispatcher.mu.
// A worker that leaves keeps its row (and its counters) so sweep
// disposition deltas stay consistent across churn, and a rejoin revives
// the same row.
type worker struct {
	url string

	dispatched     atomic.Uint64 // jobs whose first attempt went here
	completed      atomic.Uint64 // jobs resolved here on the first attempt
	retried        atomic.Uint64 // retry attempts sent here
	retriedSuccess atomic.Uint64 // jobs rescued here after another worker failed
	failed         atomic.Uint64 // jobs that exhausted every attempt (charged to the primary)
	stolen         atomic.Uint64 // jobs this worker's runners stole from another queue

	consecFails atomic.Int64
	healthy     atomic.Bool
	penaltyNS   atomic.Int64 // dispatch throttle, doubles on failure, zeroed on any success

	// Guarded by Dispatcher.mu.
	member        bool
	static        bool
	leaseDeadline time.Time
	stopRunners   chan struct{}
}

// Dispatcher shards jobs across the worker fleet. It satisfies
// server.Dispatcher, and via optional interfaces also the server's
// Membership, ProgramProvider, and FleetReporter extension points.
//
// Lock order: mu before sched.mu. The ring and the workers map's
// membership fields are guarded by mu; worker counters are atomics.
type Dispatcher struct {
	opts   Options
	client *http.Client
	log    *slog.Logger
	sched  *scheduler
	memo   *programMemo

	mu      sync.RWMutex
	ring    *Ring
	workers map[string]*worker
	selfURL string

	joins         atomic.Uint64
	leaves        atomic.Uint64
	leaseExpiries atomic.Uint64

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// New builds a Dispatcher over the given static workers. It does not probe
// them; call Start to run the background health and lease loops.
func New(opts Options) (*Dispatcher, error) {
	ring := NewRing(opts.Workers, opts.VirtualNodes)
	urls := ring.Workers()
	if len(urls) == 0 && !opts.AllowEmptyFleet {
		return nil, fmt.Errorf("fabric: no worker URLs")
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = defaultMaxAttempts
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = defaultRetryBackoff
	}
	if opts.FailThreshold <= 0 {
		opts.FailThreshold = defaultFailThreshold
	}
	if opts.HealthInterval <= 0 {
		opts.HealthInterval = defaultHealthInterval
	}
	if opts.ProbeTimeout <= 0 {
		opts.ProbeTimeout = defaultProbeTimeout
	}
	if opts.WorkerSlots <= 0 {
		opts.WorkerSlots = defaultWorkerSlots
	}
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = defaultLeaseTTL
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{}
	}
	log := opts.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	d := &Dispatcher{
		opts:    opts,
		client:  client,
		log:     log,
		sched:   newScheduler(),
		ring:    ring,
		workers: make(map[string]*worker, len(urls)),
		selfURL: opts.SelfURL,
		stop:    make(chan struct{}),
	}
	d.memo = newProgramMemo(opts.PersistDir, log)
	for _, url := range urls {
		w := &worker{url: url, member: true, static: true}
		w.healthy.Store(true)
		w.stopRunners = make(chan struct{})
		d.workers[url] = w
		d.startRunners(w)
	}
	return d, nil
}

// SetSelfURL sets the coordinator's advertised base URL after construction
// (tests learn their httptest URL only once the server exists).
func (d *Dispatcher) SetSelfURL(url string) {
	d.mu.Lock()
	d.selfURL = url
	d.mu.Unlock()
}

func (d *Dispatcher) getSelfURL() string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.selfURL
}

// startRunners launches w's slot runners. Callers hold d.mu or own w
// exclusively (New).
func (d *Dispatcher) startRunners(w *worker) {
	stop := w.stopRunners
	for i := 0; i < d.opts.WorkerSlots; i++ {
		d.wg.Add(1)
		go d.runWorker(w, stop)
	}
}

// Start launches the background health-probe and lease-expiry loops. Safe
// to skip in tests that drive CheckHealth directly.
func (d *Dispatcher) Start() {
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		t := time.NewTicker(d.opts.HealthInterval)
		defer t.Stop()
		for {
			select {
			case <-d.stop:
				return
			case <-t.C:
				d.probeAll()
			}
		}
	}()
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		t := time.NewTicker(d.opts.LeaseTTL / 4)
		defer t.Stop()
		for {
			select {
			case <-d.stop:
				return
			case <-t.C:
				d.expireLeases()
			}
		}
	}()
}

// Stop terminates the background loops and all runners, failing any jobs
// still queued so their waiters unblock, and waits for everything.
func (d *Dispatcher) Stop() {
	d.stopOnce.Do(func() {
		close(d.stop)
		for _, j := range d.sched.close() {
			d.fail(j)
		}
	})
	d.wg.Wait()
}

// probeAll health-checks every current member concurrently.
func (d *Dispatcher) probeAll() {
	d.mu.RLock()
	urls := d.ring.Workers()
	d.mu.RUnlock()
	var wg sync.WaitGroup
	for _, url := range urls {
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			d.CheckHealth(url)
		}(url)
	}
	wg.Wait()
}

// CheckHealth probes one worker's /v1/worker/health and updates its health
// bit. It returns whether the worker answered ok. A successful probe fully
// clears the worker's failure state — consecutive-failure count and
// dispatch penalty — so a worker that recovers between jobs is not
// throttled on its next dispatch.
func (d *Dispatcher) CheckHealth(url string) bool {
	d.mu.RLock()
	w := d.workers[url]
	d.mu.RUnlock()
	if w == nil {
		return false
	}
	ctx, cancel := context.WithTimeout(context.Background(), d.opts.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/v1/worker/health", nil)
	if err != nil {
		return false
	}
	resp, err := d.client.Do(req)
	if err != nil {
		d.markFailure(w)
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		d.markFailure(w)
		return false
	}
	d.markSuccess(w)
	return true
}

// markFailure records one failed call to w: the consecutive-failure count
// feeds the health bit, and the dispatch penalty doubles so a
// known-failing worker serves its backlog slowly — slow enough that
// healthy workers steal it — instead of burning every job's retry budget
// at full speed.
func (d *Dispatcher) markFailure(w *worker) {
	pen := time.Duration(w.penaltyNS.Load())
	if pen == 0 {
		pen = d.opts.RetryBackoff
	} else {
		pen *= 2
	}
	if pen > maxPenalty {
		pen = maxPenalty
	}
	w.penaltyNS.Store(int64(pen))
	if w.consecFails.Add(1) >= int64(d.opts.FailThreshold) && w.healthy.CompareAndSwap(true, false) {
		d.log.Warn("fabric worker unhealthy", "worker", w.url)
	}
}

// markSuccess clears w's failure state. Any success counts — a served job
// or a bare health probe — so backoff decays the moment the worker is
// observed alive, not only after it happens to serve a job.
func (d *Dispatcher) markSuccess(w *worker) {
	w.consecFails.Store(0)
	w.penaltyNS.Store(0)
	if w.healthy.CompareAndSwap(false, true) {
		d.log.Info("fabric worker recovered", "worker", w.url)
	}
}

// assignee picks the next worker for key among current members, skipping
// workers in tried: the first healthy owner in ring order, else the first
// untried member at all (with the whole fleet marked down, dispatching is
// still better than refusing). Returns nil if no untried member remains.
func (d *Dispatcher) assignee(key string, tried map[string]bool) *worker {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var fallback *worker
	for _, url := range d.ring.Owners(key) {
		if tried[url] {
			continue
		}
		w := d.workers[url]
		if w == nil || !w.member {
			continue
		}
		if w.healthy.Load() {
			return w
		}
		if fallback == nil {
			fallback = w
		}
	}
	return fallback
}

// Dispatch runs one job on the fabric. The job is queued to its primary
// worker (first healthy ring owner of its content-addressed key); the
// primary's runners drain their queue in order, and idle workers steal
// from the longest backlog, so a skewed ring split levels out. Failed
// attempts re-queue to the next ring owner with doubling backoff, up to
// MaxAttempts distinct workers. On success it returns the worker's
// canonical RunResponse bytes — byte-identical to a local execution, so
// the coordinator's cache replays exactly what a single node would have
// served.
func (d *Dispatcher) Dispatch(ctx context.Context, spec server.JobSpec) ([]byte, error) {
	key := spec.Key()
	j := &pendingJob{
		spec:  spec,
		key:   key,
		ctx:   ctx,
		ref:   d.programRef(ctx, spec),
		tried: make(map[string]bool),
		res:   make(chan jobResult, 1),
	}
	w := d.assignee(key, nil)
	if w == nil {
		return nil, server.NewAPIError(http.StatusBadGateway, server.CodeWorkerFailed,
			"no fabric workers available", "join workers via POST /v1/fabric/join")
	}
	j.primary = w
	w.dispatched.Add(1)
	if !d.sched.enqueue(w.url, j) {
		d.fail(j)
	}
	select {
	case r := <-j.res:
		return r.data, r.err
	case <-ctx.Done():
		if j.resolved.CompareAndSwap(false, true) {
			// Abandoned before any runner resolved it; a runner that later
			// pops the job drops it on the resolved check.
			w.failed.Add(1)
			return nil, ctx.Err()
		}
		// A runner resolved concurrently; its send is already in flight.
		r := <-j.res
		return r.data, r.err
	}
}

// runWorker is one worker slot: it pulls jobs assigned (or stolen) for w
// until the worker leaves or the dispatcher stops.
func (d *Dispatcher) runWorker(w *worker, stop <-chan struct{}) {
	defer d.wg.Done()
	for {
		j := d.sched.next(w, stop)
		if j == nil {
			return
		}
		d.runJob(w, j)
	}
}

// runJob executes one attempt of j on w and resolves or re-queues it.
func (d *Dispatcher) runJob(w *worker, j *pendingJob) {
	if j.resolved.Load() {
		return
	}
	if err := j.ctx.Err(); err != nil {
		d.finish(w, j, nil, err)
		return
	}
	if pen := time.Duration(w.penaltyNS.Load()); pen > 0 {
		// Known-failing worker: serve its queue slowly so idle healthy
		// workers steal the backlog instead.
		select {
		case <-time.After(pen):
		case <-j.ctx.Done():
			d.finish(w, j, nil, j.ctx.Err())
			return
		}
	}
	if j.attempts > 0 {
		w.retried.Add(1)
	}
	data, err := d.post(j.ctx, w, j.spec, j.ref)
	if err == nil {
		d.markSuccess(w)
		d.finish(w, j, data, nil)
		return
	}
	re, isRemote := err.(*remoteError)
	if isRemote && re.retryable {
		d.markFailure(w)
		j.tried[w.url] = true
		j.attempts++
		j.lastErr = err
		d.log.Warn("fabric dispatch failed, retrying",
			"worker", w.url, "attempt", j.attempts, "of", d.opts.MaxAttempts,
			"workload", j.spec.Workload, "model", j.spec.Model, "hier", j.spec.Hier,
			"err", err)
		d.requeue(j)
		return
	}
	// Permanent: the worker answered authoritatively (a 4xx, a
	// deterministic job failure) or our own context died. The job is
	// resolved — retrying elsewhere would reproduce the same answer.
	if isRemote {
		// The worker is alive and answering; only the job failed.
		d.markSuccess(w)
		err = re.err
	}
	d.finish(w, j, nil, err)
}

// finish resolves j on w, exactly once. The resolver worker is credited
// with completed (first attempt) or retriedSuccess (after retries),
// whether the result is success or a permanent error — either way the job
// is accounted as resolved by that worker.
func (d *Dispatcher) finish(w *worker, j *pendingJob, data []byte, err error) {
	if !j.resolved.CompareAndSwap(false, true) {
		return
	}
	if j.attempts == 0 {
		w.completed.Add(1)
	} else {
		w.retriedSuccess.Add(1)
	}
	j.res <- jobResult{data: data, err: err}
}

// requeue schedules j's next attempt on its next untried ring owner after
// a doubling backoff, or fails it when the attempt budget or the member
// list is exhausted.
func (d *Dispatcher) requeue(j *pendingJob) {
	if j.attempts >= d.opts.MaxAttempts {
		d.fail(j)
		return
	}
	next := d.assignee(j.key, j.tried)
	if next == nil {
		d.fail(j)
		return
	}
	backoff := d.opts.RetryBackoff << (j.attempts - 1)
	if backoff > maxRetryBackoff {
		backoff = maxRetryBackoff
	}
	url := next.url
	time.AfterFunc(backoff, func() {
		if j.resolved.Load() {
			return
		}
		if !d.sched.enqueue(url, j) {
			d.fail(j)
		}
	})
}

// fail resolves j as exhausted, charged to its primary.
func (d *Dispatcher) fail(j *pendingJob) {
	if !j.resolved.CompareAndSwap(false, true) {
		return
	}
	j.primary.failed.Add(1)
	msg := fmt.Sprintf("no fabric worker could run the job after %d attempts", j.attempts)
	if re, ok := j.lastErr.(*remoteError); ok && re.err != nil {
		msg = fmt.Sprintf("%s: last error: %v", msg, re.err)
	} else if j.lastErr != nil {
		msg = fmt.Sprintf("%s: last error: %v", msg, j.lastErr)
	}
	j.res <- jobResult{err: server.NewAPIError(http.StatusBadGateway, server.CodeWorkerFailed, msg,
		"check worker health at /v1/worker/health")}
}

// remoteError is one failed worker call, classified for the retry loop.
// retryable means the failure is attributable to the worker (unreachable,
// 502/503) rather than the job.
type remoteError struct {
	err       error
	retryable bool
}

func (e *remoteError) Error() string { return e.err.Error() }

// post runs spec on one worker via POST /v1/run and returns the raw
// response bytes. The request carries the coordinator's request ID so a
// job can be traced across daemons, and — when the memo has the bundle —
// a ProgramRef so the worker fetches the pre-built program instead of
// compiling its own copy.
func (d *Dispatcher) post(ctx context.Context, w *worker, spec server.JobSpec, ref *server.ProgramRef) ([]byte, error) {
	rr := spec.RunRequest()
	rr.ProgramRef = ref
	body, err := json.Marshal(&rr)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.url+"/v1/run", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if tr := obs.FromContext(ctx); tr != nil {
		req.Header.Set("X-Mpsimd-Request-Id", tr.ID)
	}
	resp, err := d.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			// Our deadline or the client going away, not the worker's
			// fault: permanent, mapped to 504/503 upstream.
			return nil, ctx.Err()
		}
		return nil, &remoteError{err: err, retryable: true}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, &remoteError{err: err, retryable: true}
	}
	if resp.StatusCode == http.StatusOK {
		return data, nil
	}

	retryable := resp.StatusCode == http.StatusBadGateway || resp.StatusCode == http.StatusServiceUnavailable
	var er server.ErrorResponse
	if jsonErr := json.Unmarshal(data, &er); jsonErr == nil && er.Error.Code != "" {
		// Re-wrap the worker's envelope so the coordinator propagates the
		// status, code, message, and hint unchanged.
		return nil, &remoteError{
			err:       server.NewAPIError(resp.StatusCode, er.Error.Code, er.Error.Message, er.Error.Hint),
			retryable: retryable,
		}
	}
	return nil, &remoteError{
		err: server.NewAPIError(resp.StatusCode, server.CodeWorkerFailed,
			fmt.Sprintf("worker %s: status %d: %s", w.url, resp.StatusCode, truncate(data, 200)), ""),
		retryable: retryable,
	}
}

func truncate(b []byte, n int) string {
	if len(b) <= n {
		return string(b)
	}
	return string(b[:n]) + "..."
}

// Dispositions snapshots cumulative per-worker accounting, keyed by worker
// URL. Departed workers keep their rows (Member false) so sweep deltas
// stay consistent across churn. Once a sweep settles, Dispatched ==
// Completed + RetriedSuccess + Failed summed over the fleet.
func (d *Dispatcher) Dispositions() map[string]server.WorkerDisposition {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make(map[string]server.WorkerDisposition, len(d.workers))
	for url, w := range d.workers {
		out[url] = server.WorkerDisposition{
			Healthy:        w.healthy.Load(),
			Member:         w.member,
			Dispatched:     w.dispatched.Load(),
			Completed:      w.completed.Load(),
			Retried:        w.retried.Load(),
			RetriedSuccess: w.retriedSuccess.Load(),
			Failed:         w.failed.Load(),
			Stolen:         w.stolen.Load(),
		}
	}
	return out
}

// WorkerFamilies scrapes every member's /metrics, relabels the mpsimd_*
// families to mpsimd_worker_* with a `worker` label, and merges the fleet
// into one family list. Scrapes run concurrently under the probe timeout;
// a worker that fails to answer is simply absent from this scrape (and its
// absence is visible via mpsimd_fabric_worker_healthy).
func (d *Dispatcher) WorkerFamilies() []obs.TextFamily {
	d.mu.RLock()
	urls := d.ring.Workers()
	d.mu.RUnlock()
	sort.Strings(urls)
	groups := make([][]obs.TextFamily, len(urls))
	var wg sync.WaitGroup
	for i, url := range urls {
		wg.Add(1)
		go func(i int, url string) {
			defer wg.Done()
			groups[i] = d.scrapeWorker(url)
		}(i, url)
	}
	wg.Wait()
	return obs.MergeFamilies(groups...)
}

// scrapeWorker fetches one worker's exposition and relabels it. Failures
// return nil: metrics federation is best-effort and must not fail the
// coordinator's own scrape.
func (d *Dispatcher) scrapeWorker(url string) []obs.TextFamily {
	ctx, cancel := context.WithTimeout(context.Background(), d.opts.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/metrics", nil)
	if err != nil {
		return nil
	}
	resp, err := d.client.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	fams, err := obs.ParseText(resp.Body)
	if err != nil {
		d.log.Warn("fabric metrics scrape unparseable", "worker", url, "err", err)
		return nil
	}
	// Only the service's own families federate; the workers' go_* runtime
	// families would collide with the coordinator's and say nothing about
	// the fleet.
	return obs.RelabelFamilies(fams, "mpsimd_", "mpsimd_worker_", "worker", url)
}

// FleetFamilies exposes the coordinator's own fleet-level metrics:
// membership churn, lease expiries, member count, and program-memo
// activity. The server package picks this up via its FleetReporter
// optional interface.
func (d *Dispatcher) FleetFamilies() []obs.TextFamily {
	d.mu.RLock()
	members := d.ring.Len()
	d.mu.RUnlock()
	gauge := func(name, help string, v uint64) obs.TextFamily {
		return obs.TextFamily{Name: name, Help: help, Kind: "gauge",
			Samples: []obs.TextSample{{Value: strconv.FormatUint(v, 10)}}}
	}
	counter := func(name, help string, v uint64) obs.TextFamily {
		return obs.TextFamily{Name: name, Help: help, Kind: "counter",
			Samples: []obs.TextSample{{Value: strconv.FormatUint(v, 10)}}}
	}
	fams := []obs.TextFamily{
		gauge("mpsimd_fabric_members",
			"Current worker-fleet member count.", uint64(members)),
		counter("mpsimd_fabric_joins_total",
			"Worker joins accepted (first joins, not lease renewals).", d.joins.Load()),
		counter("mpsimd_fabric_leaves_total",
			"Worker leaves, voluntary and lease-expired.", d.leaves.Load()),
		counter("mpsimd_fabric_lease_expiries_total",
			"Dynamic members removed because their lease expired.", d.leaseExpiries.Load()),
	}
	return append(fams, d.memo.families()...)
}
