package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"multipass/internal/obs"
	"multipass/internal/server"
)

// Defaults for Options fields left zero.
const (
	defaultMaxAttempts    = 3
	defaultRetryBackoff   = 100 * time.Millisecond
	defaultFailThreshold  = 2
	defaultHealthInterval = 5 * time.Second
	defaultProbeTimeout   = 2 * time.Second
)

// Options shapes a Dispatcher.
type Options struct {
	// Workers are the worker daemons' base URLs (e.g. http://host:9190).
	// At least one is required.
	Workers []string
	// Client performs all worker HTTP calls; nil uses a dedicated client
	// with no overall timeout (job deadlines come from the request context).
	Client *http.Client
	// MaxAttempts bounds how many distinct workers one job may try
	// (primary + retries); 0 means 3, capped at the worker count.
	MaxAttempts int
	// RetryBackoff is the sleep before the first retry, doubling per
	// attempt; 0 means 100ms.
	RetryBackoff time.Duration
	// FailThreshold marks a worker unhealthy after this many consecutive
	// dispatch failures; 0 means 2. Unhealthy workers are deprioritized,
	// not abandoned: they still serve as last-resort fallbacks and are
	// restored by the health loop or by any successful call.
	FailThreshold int
	// HealthInterval paces the background /v1/worker/health probe loop
	// started by Start; 0 means 5s.
	HealthInterval time.Duration
	// ProbeTimeout bounds each health probe and /metrics scrape; 0 means 2s.
	ProbeTimeout time.Duration
	// VirtualNodes is the per-worker point count on the hash ring; 0 uses
	// the ring default.
	VirtualNodes int
	// Logger receives dispatch retry and health-transition logs; nil
	// discards them.
	Logger *slog.Logger
}

// worker is the per-worker dispatch accounting, all atomics so Dispatch
// needs no lock.
type worker struct {
	url string

	dispatched     atomic.Uint64 // jobs whose first attempt went here
	completed      atomic.Uint64 // jobs resolved here on the first attempt
	retried        atomic.Uint64 // retry attempts sent here
	retriedSuccess atomic.Uint64 // jobs rescued here after another worker failed
	failed         atomic.Uint64 // jobs that exhausted every attempt (charged to the primary)

	consecFails atomic.Int64
	healthy     atomic.Bool
}

// Dispatcher shards jobs across the worker fleet. It satisfies
// server.Dispatcher.
type Dispatcher struct {
	opts    Options
	ring    *Ring
	client  *http.Client
	log     *slog.Logger
	workers map[string]*worker

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// New builds a Dispatcher over the given workers. It does not probe them;
// call Start to run the background health loop.
func New(opts Options) (*Dispatcher, error) {
	ring := NewRing(opts.Workers, opts.VirtualNodes)
	urls := ring.Workers()
	if len(urls) == 0 {
		return nil, fmt.Errorf("fabric: no worker URLs")
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = defaultMaxAttempts
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = defaultRetryBackoff
	}
	if opts.FailThreshold <= 0 {
		opts.FailThreshold = defaultFailThreshold
	}
	if opts.HealthInterval <= 0 {
		opts.HealthInterval = defaultHealthInterval
	}
	if opts.ProbeTimeout <= 0 {
		opts.ProbeTimeout = defaultProbeTimeout
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{}
	}
	log := opts.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	d := &Dispatcher{
		opts:    opts,
		ring:    ring,
		client:  client,
		log:     log,
		workers: make(map[string]*worker, len(urls)),
		stop:    make(chan struct{}),
	}
	for _, url := range urls {
		w := &worker{url: url}
		w.healthy.Store(true)
		d.workers[url] = w
	}
	return d, nil
}

// Start launches the background health loop. Safe to skip in tests that
// drive CheckHealth directly.
func (d *Dispatcher) Start() {
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		t := time.NewTicker(d.opts.HealthInterval)
		defer t.Stop()
		for {
			select {
			case <-d.stop:
				return
			case <-t.C:
				d.probeAll()
			}
		}
	}()
}

// Stop terminates the health loop and waits for it.
func (d *Dispatcher) Stop() {
	d.stopOnce.Do(func() { close(d.stop) })
	d.wg.Wait()
}

// probeAll health-checks every worker concurrently.
func (d *Dispatcher) probeAll() {
	var wg sync.WaitGroup
	for _, w := range d.workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			d.CheckHealth(w.url)
		}(w)
	}
	wg.Wait()
}

// CheckHealth probes one worker's /v1/worker/health and updates its health
// bit. It returns whether the worker answered ok.
func (d *Dispatcher) CheckHealth(url string) bool {
	w := d.workers[url]
	if w == nil {
		return false
	}
	ctx, cancel := context.WithTimeout(context.Background(), d.opts.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/v1/worker/health", nil)
	if err != nil {
		return false
	}
	resp, err := d.client.Do(req)
	if err != nil {
		d.markFailure(w)
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		d.markFailure(w)
		return false
	}
	d.markSuccess(w)
	return true
}

func (d *Dispatcher) markFailure(w *worker) {
	if w.consecFails.Add(1) >= int64(d.opts.FailThreshold) && w.healthy.CompareAndSwap(true, false) {
		d.log.Warn("fabric worker unhealthy", "worker", w.url)
	}
}

func (d *Dispatcher) markSuccess(w *worker) {
	w.consecFails.Store(0)
	if w.healthy.CompareAndSwap(false, true) {
		d.log.Info("fabric worker recovered", "worker", w.url)
	}
}

// attemptOrder is the ring's preference order for key, partitioned so
// healthy workers come first. Unhealthy workers stay in the list as last
// resorts — with the whole fleet marked down, dispatching is still better
// than refusing.
func (d *Dispatcher) attemptOrder(key string) []*worker {
	owners := d.ring.Owners(key)
	order := make([]*worker, 0, len(owners))
	var down []*worker
	for _, url := range owners {
		w := d.workers[url]
		if w.healthy.Load() {
			order = append(order, w)
		} else {
			down = append(down, w)
		}
	}
	return append(order, down...)
}

// Dispatch runs one job on the fabric: primary worker by consistent hash,
// then bounded retries on the remaining ring order with doubling backoff.
// On success it returns the worker's canonical RunResponse bytes —
// byte-identical to a local execution, so the coordinator's cache replays
// exactly what a single node would have served.
func (d *Dispatcher) Dispatch(ctx context.Context, spec server.JobSpec) ([]byte, error) {
	order := d.attemptOrder(spec.Key())
	attempts := d.opts.MaxAttempts
	if attempts > len(order) {
		attempts = len(order)
	}
	primary := order[0]
	primary.dispatched.Add(1)

	var lastErr error
	backoff := d.opts.RetryBackoff
	for i := 0; i < attempts; i++ {
		if i > 0 {
			select {
			case <-time.After(backoff):
				backoff *= 2
			case <-ctx.Done():
				primary.failed.Add(1)
				return nil, ctx.Err()
			}
		}
		w := order[i]
		if i > 0 {
			w.retried.Add(1)
		}
		data, err := d.post(ctx, w, spec)
		if err == nil {
			d.markSuccess(w)
			if i == 0 {
				w.completed.Add(1)
			} else {
				w.retriedSuccess.Add(1)
			}
			return data, nil
		}
		re, isRemote := err.(*remoteError)
		if isRemote && re.retryable {
			d.markFailure(w)
			lastErr = err
			d.log.Warn("fabric dispatch failed, retrying",
				"worker", w.url, "attempt", i+1, "of", attempts,
				"workload", spec.Workload, "model", spec.Model, "hier", spec.Hier,
				"err", err)
			continue
		}
		// Permanent: the worker answered authoritatively (a 4xx, a
		// deterministic job failure) or our own context died. The job is
		// resolved — retrying elsewhere would reproduce the same answer.
		if isRemote {
			// The worker is alive and answering; only the job failed.
			d.markSuccess(w)
			err = re.err
		}
		if i == 0 {
			w.completed.Add(1)
		} else {
			w.retriedSuccess.Add(1)
		}
		return nil, err
	}
	primary.failed.Add(1)
	msg := fmt.Sprintf("no fabric worker could run the job after %d attempts", attempts)
	if re, ok := lastErr.(*remoteError); ok && re.err != nil {
		msg = fmt.Sprintf("%s: last error: %v", msg, re.err)
	} else if lastErr != nil {
		msg = fmt.Sprintf("%s: last error: %v", msg, lastErr)
	}
	return nil, server.NewAPIError(http.StatusBadGateway, server.CodeWorkerFailed, msg,
		"check worker health at /v1/worker/health")
}

// remoteError is one failed worker call, classified for the retry loop.
// retryable means the failure is attributable to the worker (unreachable,
// 502/503) rather than the job.
type remoteError struct {
	err       error
	retryable bool
}

func (e *remoteError) Error() string { return e.err.Error() }

// post runs spec on one worker via POST /v1/run and returns the raw
// response bytes. The request carries the coordinator's request ID so a
// job can be traced across daemons.
func (d *Dispatcher) post(ctx context.Context, w *worker, spec server.JobSpec) ([]byte, error) {
	rr := spec.RunRequest()
	body, err := json.Marshal(&rr)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.url+"/v1/run", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if tr := obs.FromContext(ctx); tr != nil {
		req.Header.Set("X-Mpsimd-Request-Id", tr.ID)
	}
	resp, err := d.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			// Our deadline or the client going away, not the worker's
			// fault: permanent, mapped to 504/503 upstream.
			return nil, ctx.Err()
		}
		return nil, &remoteError{err: err, retryable: true}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, &remoteError{err: err, retryable: true}
	}
	if resp.StatusCode == http.StatusOK {
		return data, nil
	}

	retryable := resp.StatusCode == http.StatusBadGateway || resp.StatusCode == http.StatusServiceUnavailable
	var er server.ErrorResponse
	if jsonErr := json.Unmarshal(data, &er); jsonErr == nil && er.Error.Code != "" {
		// Re-wrap the worker's envelope so the coordinator propagates the
		// status, code, message, and hint unchanged.
		return nil, &remoteError{
			err:       server.NewAPIError(resp.StatusCode, er.Error.Code, er.Error.Message, er.Error.Hint),
			retryable: retryable,
		}
	}
	return nil, &remoteError{
		err: server.NewAPIError(resp.StatusCode, server.CodeWorkerFailed,
			fmt.Sprintf("worker %s: status %d: %s", w.url, resp.StatusCode, truncate(data, 200)), ""),
		retryable: retryable,
	}
}

func truncate(b []byte, n int) string {
	if len(b) <= n {
		return string(b)
	}
	return string(b[:n]) + "..."
}

// Dispositions snapshots cumulative per-worker accounting, keyed by worker
// URL. Once a sweep settles, Dispatched == Completed + RetriedSuccess +
// Failed summed over the fleet.
func (d *Dispatcher) Dispositions() map[string]server.WorkerDisposition {
	out := make(map[string]server.WorkerDisposition, len(d.workers))
	for url, w := range d.workers {
		out[url] = server.WorkerDisposition{
			Healthy:        w.healthy.Load(),
			Dispatched:     w.dispatched.Load(),
			Completed:      w.completed.Load(),
			Retried:        w.retried.Load(),
			RetriedSuccess: w.retriedSuccess.Load(),
			Failed:         w.failed.Load(),
		}
	}
	return out
}

// WorkerFamilies scrapes every healthy worker's /metrics, relabels the
// mpsimd_* families to mpsimd_worker_* with a `worker` label, and merges
// the fleet into one family list. Scrapes run concurrently under the probe
// timeout; a worker that fails to answer is simply absent from this
// scrape (and its absence is visible via mpsimd_fabric_worker_healthy).
func (d *Dispatcher) WorkerFamilies() []obs.TextFamily {
	urls := d.ring.Workers()
	sort.Strings(urls)
	groups := make([][]obs.TextFamily, len(urls))
	var wg sync.WaitGroup
	for i, url := range urls {
		wg.Add(1)
		go func(i int, url string) {
			defer wg.Done()
			groups[i] = d.scrapeWorker(url)
		}(i, url)
	}
	wg.Wait()
	return obs.MergeFamilies(groups...)
}

// scrapeWorker fetches one worker's exposition and relabels it. Failures
// return nil: metrics federation is best-effort and must not fail the
// coordinator's own scrape.
func (d *Dispatcher) scrapeWorker(url string) []obs.TextFamily {
	ctx, cancel := context.WithTimeout(context.Background(), d.opts.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/metrics", nil)
	if err != nil {
		return nil
	}
	resp, err := d.client.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	fams, err := obs.ParseText(resp.Body)
	if err != nil {
		d.log.Warn("fabric metrics scrape unparseable", "worker", url, "err", err)
		return nil
	}
	// Only the service's own families federate; the workers' go_* runtime
	// families would collide with the coordinator's and say nothing about
	// the fleet.
	return obs.RelabelFamilies(fams, "mpsimd_", "mpsimd_worker_", "worker", url)
}
