package mem

import "fmt"

// Warm-state capture for checkpointed sampling. A functional fast-forward
// replays the retired load/store/fetch sequence through WarmData/WarmInst to
// keep tags and LRU order realistic, then CaptureWarm snapshots the line
// arrays so a parallel interval worker can RestoreWarm them into a fresh
// hierarchy. Only content state (tags, valid/dirty bits, LRU order) is
// carried: statistics stay at zero on the restored hierarchy so they count
// only the interval's own activity, and the MSHR file is defined to be
// drained at a checkpoint — fills have no timing during a functional
// fast-forward, and the interval's warm-up window re-establishes in-flight
// misses before measurement begins.

// WarmData touches the hierarchy along AccessData's install path without any
// timing: LRU refresh on hits, install-through on misses. No MSHR is
// consumed and no completion time exists, so there is no miss merging — the
// functional stream has no notion of overlap. The receiver is a
// warming-dedicated hierarchy whose statistics are never read.
func (h *Hierarchy) WarmData(addr uint32, write bool) {
	if h.l1d.lookupW(addr, write, false) {
		return
	}
	switch {
	case h.l2.lookup(addr, false):
	case h.l3.lookup(addr, false):
	default:
		h.l3.install(addr, false)
	}
	h.l2.install(addr, false)
	h.l1d.install(addr, write)
}

// WarmInst is WarmData for the instruction side, mirroring AccessInst.
func (h *Hierarchy) WarmInst(addr uint32) {
	if h.l1i.lookup(addr, false) {
		return
	}
	switch {
	case h.l2.lookup(addr, false):
	case h.l3.lookup(addr, false):
	default:
		h.l3.install(addr, false)
	}
	h.l2.install(addr, false)
	h.l1i.install(addr, false)
}

// WarmCaches is a deep copy of the four caches' content state.
type WarmCaches struct {
	cfg HierConfig
	l1i warmLevel
	l1d warmLevel
	l2  warmLevel
	l3  warmLevel
}

type warmLevel struct {
	lines    []line
	useClock uint64
}

func captureLevel(c *cache) warmLevel {
	w := warmLevel{lines: make([]line, 0, len(c.sets)*c.cfg.Assoc), useClock: c.useClock}
	for _, set := range c.sets {
		w.lines = append(w.lines, set...)
	}
	return w
}

func restoreLevel(c *cache, w warmLevel) {
	for i, set := range c.sets {
		copy(set, w.lines[i*c.cfg.Assoc:(i+1)*c.cfg.Assoc])
	}
	c.useClock = w.useClock
}

// CaptureWarm snapshots tags, valid/dirty bits and LRU state of every level.
func (h *Hierarchy) CaptureWarm() *WarmCaches {
	return &WarmCaches{
		cfg: h.cfg,
		l1i: captureLevel(h.l1i),
		l1d: captureLevel(h.l1d),
		l2:  captureLevel(h.l2),
		l3:  captureLevel(h.l3),
	}
}

// RestoreWarm overwrites the hierarchy's cache contents from a capture taken
// on a hierarchy with identical geometry. Statistics, MSHRs and the
// instruction-side fill are untouched (a freshly built hierarchy has them
// zeroed, which is the checkpoint contract: MSHRs drain at checkpoints).
func (h *Hierarchy) RestoreWarm(w *WarmCaches) error {
	if w == nil {
		return fmt.Errorf("mem: nil warm capture")
	}
	if w.cfg != h.cfg {
		return fmt.Errorf("mem: warm capture geometry %+v does not match hierarchy %+v", w.cfg, h.cfg)
	}
	restoreLevel(h.l1i, w.l1i)
	restoreLevel(h.l1d, w.l1d)
	restoreLevel(h.l2, w.l2)
	restoreLevel(h.l3, w.l3)
	return nil
}
