package mem

import (
	"testing"
)

func TestLevelConfigValidate(t *testing.T) {
	good := BaseConfig().L1D
	if err := good.validate(); err != nil {
		t.Errorf("base L1D invalid: %v", err)
	}
	bad := []LevelConfig{
		{Name: "x", SizeBytes: 0, Assoc: 4, LineBytes: 64, Latency: 1},
		{Name: "x", SizeBytes: 16384, Assoc: 4, LineBytes: 60, Latency: 1}, // non-pow2 line
		{Name: "x", SizeBytes: 16384, Assoc: 5, LineBytes: 64, Latency: 1}, // non-pow2 sets
		{Name: "x", SizeBytes: 16384, Assoc: 4, LineBytes: 64, Latency: 0}, // zero latency
		{Name: "x", SizeBytes: 10000, Assoc: 4, LineBytes: 64, Latency: 1}, // indivisible
	}
	for i, c := range bad {
		if err := c.validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if got := good.Lines(); got != 256 {
		t.Errorf("L1D lines = %d, want 256", got)
	}
	if got := good.Sets(); got != 64 {
		t.Errorf("L1D sets = %d, want 64", got)
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := MustNewHierarchy(BaseConfig())

	// Cold access: main memory latency.
	if ready := h.AccessData(0x1000, 100, false, false); ready != 100+145 {
		t.Errorf("cold access ready at %d, want 245", ready)
	}
	// Same line after fill completes: L1 hit.
	if ready := h.AccessData(0x1004, 300, false, false); ready != 301 {
		t.Errorf("warm L1 access ready at %d, want 301", ready)
	}
	// Line still in flight: merged with outstanding fill.
	h.Reset()
	first := h.AccessData(0x2000, 0, false, false)
	if first != 145 {
		t.Fatalf("first = %d", first)
	}
	if merged := h.AccessData(0x2004, 10, false, false); merged != first {
		t.Errorf("merged access ready at %d, want %d", merged, first)
	}
}

func TestHierarchyL2L3Hits(t *testing.T) {
	cfg := BaseConfig()
	h := MustNewHierarchy(cfg)
	// Fill a line, then evict it from L1 by filling its whole L1 set (4-way,
	// 64 sets, 64B lines: same set every 64*64 = 4096 bytes).
	h.AccessData(0x0, 0, false, false)
	for i := 1; i <= 4; i++ {
		h.AccessData(uint32(i*4096), 1000*uint64(i), false, false)
	}
	// 0x0 now misses L1 but hits L2.
	ready := h.AccessData(0x0, 100000, false, false)
	if got := ready - 100000; got != uint64(cfg.L2.Latency) {
		t.Errorf("L2 hit latency = %d, want %d", got, cfg.L2.Latency)
	}
}

func TestMSHRLimit(t *testing.T) {
	cfg := BaseConfig()
	cfg.MaxMisses = 2
	h := MustNewHierarchy(cfg)
	// Three distinct-line misses at cycle 0; the third must wait for an MSHR.
	r1 := h.AccessData(0x10000, 0, false, false)
	r2 := h.AccessData(0x20000, 0, false, false)
	r3 := h.AccessData(0x30000, 0, false, false)
	if r1 != 145 || r2 != 145 {
		t.Fatalf("r1, r2 = %d, %d", r1, r2)
	}
	if r3 != 145+145 {
		t.Errorf("r3 = %d, want 290 (waits for MSHR)", r3)
	}
	if h.Stats().MSHRStalls == 0 {
		t.Error("MSHR stall not counted")
	}
}

func TestMissMergingDoesNotConsumeMSHR(t *testing.T) {
	cfg := BaseConfig()
	cfg.MaxMisses = 1
	h := MustNewHierarchy(cfg)
	r1 := h.AccessData(0x40000, 0, false, false)
	// Same L2 line (128B): merges, no MSHR wait.
	r2 := h.AccessData(0x40040, 5, false, false)
	if r2 != r1 {
		t.Errorf("merge: r2 = %d, want %d", r2, r1)
	}
}

func TestProbeLevels(t *testing.T) {
	h := MustNewHierarchy(BaseConfig())
	if lvl := h.Probe(0x5000); lvl != 4 {
		t.Errorf("cold probe = %d, want 4", lvl)
	}
	h.AccessData(0x5000, 0, false, false)
	if lvl := h.Probe(0x5000); lvl != 1 {
		t.Errorf("after access probe = %d, want 1", lvl)
	}
	// Probe must not perturb state (repeat).
	if lvl := h.Probe(0x5000); lvl != 1 {
		t.Errorf("second probe = %d", lvl)
	}
}

func TestInFlight(t *testing.T) {
	h := MustNewHierarchy(BaseConfig())
	h.AccessData(0x6000, 0, false, false)
	if !h.InFlight(0x6000, 10) {
		t.Error("line should be in flight at cycle 10")
	}
	if h.InFlight(0x6000, 200) {
		t.Error("line should have arrived by cycle 200")
	}
	if h.InFlight(0x7000, 10) {
		t.Error("untouched line in flight")
	}
}

func TestAdvanceStats(t *testing.T) {
	h := MustNewHierarchy(BaseConfig())
	h.AccessData(0x8000, 0, false, true)
	h.AccessData(0x9000, 0, false, false)
	s := h.Stats()
	if s.L1D.AdvanceAccesses != 1 || s.L1D.AdvanceMisses != 1 {
		t.Errorf("advance stats = %+v", s.L1D)
	}
	if s.L1D.Accesses != 2 || s.L1D.Misses != 2 {
		t.Errorf("total stats = %+v", s.L1D)
	}
	if got := s.L1D.MissRate(); got != 1.0 {
		t.Errorf("miss rate = %v", got)
	}
	if (CacheStats{}).MissRate() != 0 {
		t.Error("idle miss rate should be 0")
	}
}

func TestInstAccessSeparateFromData(t *testing.T) {
	h := MustNewHierarchy(BaseConfig())
	r := h.AccessInst(0x100, 0)
	if r != 145 {
		t.Errorf("cold inst fetch = %d, want 145", r)
	}
	if got := h.AccessInst(0x104, 200); got != 201 {
		t.Errorf("warm inst fetch = %d, want 201", got)
	}
	s := h.Stats()
	if s.L1I.Accesses != 2 || s.L1D.Accesses != 0 {
		t.Errorf("inst access counted wrong: %+v", s)
	}
	// Instruction line is resident in L2 too; a data access to the same
	// address hits L2, not memory.
	if got := h.AccessData(0x100, 300, false, false); got != 305 {
		t.Errorf("data access to inst line = %d, want 305 (L2 hit)", got)
	}
}

func TestLRUReplacement(t *testing.T) {
	h := MustNewHierarchy(BaseConfig())
	// Fill one L1 set (4 ways, stride 4096) then touch way 0 again to make
	// way 1 the LRU victim.
	addrs := []uint32{0, 4096, 8192, 12288}
	for i, a := range addrs {
		h.AccessData(a, uint64(1000*i), false, false)
	}
	h.AccessData(0, 50000, false, false)     // refresh way holding 0
	h.AccessData(16384, 60000, false, false) // evicts LRU: 4096
	if h.Probe(0) != 1 {
		t.Error("recently used line evicted")
	}
	if h.Probe(4096) == 1 {
		t.Error("LRU line not evicted")
	}
}

func TestResetClearsEverything(t *testing.T) {
	h := MustNewHierarchy(BaseConfig())
	h.AccessData(0x1234, 0, false, false)
	h.AccessInst(0x5678, 0)
	h.Reset()
	s := h.Stats()
	if s.L1D.Accesses != 0 || s.L1I.Accesses != 0 {
		t.Error("stats survived reset")
	}
	if h.Probe(0x1234) != 4 {
		t.Error("line survived reset")
	}
	if h.InFlight(0x1234, 1) {
		t.Error("in-flight state survived reset")
	}
}

func TestConfigVariants(t *testing.T) {
	if BaseConfig().MemLatency != 145 {
		t.Error("base mem latency")
	}
	c1 := Config1()
	if c1.MemLatency != 200 || c1.L1D.SizeBytes != 16<<10 {
		t.Error("config1 wrong")
	}
	c2 := Config2()
	if c2.L1D.SizeBytes != 8<<10 || c2.L2.Latency != 7 || c2.L3.SizeBytes != 1536<<10 || c2.MemLatency != 200 {
		t.Error("config2 wrong")
	}
	if _, err := NewHierarchy(c2); err != nil {
		t.Errorf("config2 rejected: %v", err)
	}
	bad := BaseConfig()
	bad.MaxMisses = 0
	if _, err := NewHierarchy(bad); err == nil {
		t.Error("zero MSHRs accepted")
	}
	bad2 := BaseConfig()
	bad2.MemLatency = 0
	if _, err := NewHierarchy(bad2); err == nil {
		t.Error("zero memory latency accepted")
	}
}

// TestConfigByName pins the name -> hierarchy lookup used by the HTTP layer
// and cmd tools: every advertised name resolves to the expected latency
// profile, and anything else (including case or whitespace variants) is
// rejected with a zero config rather than silently falling back to base.
func TestConfigByName(t *testing.T) {
	cases := []struct {
		name       string
		ok         bool
		memLatency int // checked only when ok
	}{
		{"base", true, 145},
		{"config1", true, 200},
		{"config2", true, 200},
		{"", false, 0},
		{"Base", false, 0},
		{"CONFIG1", false, 0},
		{"base ", false, 0},
		{"config3", false, 0},
		{"l2-only", false, 0},
	}
	for _, tc := range cases {
		cfg, ok := ConfigByName(tc.name)
		if ok != tc.ok {
			t.Errorf("ConfigByName(%q) ok = %v, want %v", tc.name, ok, tc.ok)
			continue
		}
		if tc.ok && cfg.MemLatency != tc.memLatency {
			t.Errorf("ConfigByName(%q).MemLatency = %d, want %d", tc.name, cfg.MemLatency, tc.memLatency)
		}
		if !tc.ok && cfg != (HierConfig{}) {
			t.Errorf("ConfigByName(%q) returned non-zero config %+v for unknown name", tc.name, cfg)
		}
	}
	// Every name ConfigNames advertises must resolve.
	for _, name := range ConfigNames() {
		if _, ok := ConfigByName(name); !ok {
			t.Errorf("advertised hierarchy %q does not resolve", name)
		}
	}
}

func TestWritebackCounting(t *testing.T) {
	h := MustNewHierarchy(BaseConfig())
	// Dirty a line, then evict it from L1 by filling its set (4-way, set
	// stride 4096).
	h.AccessData(0x0, 0, true, false) // store: write-allocate dirty
	for i := 1; i <= 4; i++ {
		h.AccessData(uint32(i*4096), uint64(1000*i), false, false)
	}
	if wb := h.Stats().L1D.Writebacks; wb != 1 {
		t.Errorf("writebacks = %d, want 1", wb)
	}
	// Clean evictions do not count.
	h2 := MustNewHierarchy(BaseConfig())
	for i := 0; i <= 4; i++ {
		h2.AccessData(uint32(i*4096), uint64(1000*i), false, false)
	}
	if wb := h2.Stats().L1D.Writebacks; wb != 0 {
		t.Errorf("clean evictions counted as writebacks: %d", wb)
	}
}
