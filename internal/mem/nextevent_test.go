package mem

import "testing"

func TestNextEventQuiescent(t *testing.T) {
	h := MustNewHierarchy(BaseConfig())
	if ev := h.NextEvent(0); ev != 0 {
		t.Errorf("fresh hierarchy NextEvent = %d, want 0", ev)
	}
}

func TestNextEventDataFill(t *testing.T) {
	h := MustNewHierarchy(BaseConfig())
	ready := h.AccessData(0x1000, 10, false, false)
	if ready <= 10 {
		t.Fatalf("cold miss ready at %d", ready)
	}
	if ev := h.NextEvent(10); ev != ready {
		t.Errorf("NextEvent(10) = %d, want %d", ev, ready)
	}
	// The completion is strictly-after semantics: still visible one cycle
	// before it lands, gone once now reaches it.
	if ev := h.NextEvent(ready - 1); ev != ready {
		t.Errorf("NextEvent(ready-1) = %d, want %d", ev, ready)
	}
	if ev := h.NextEvent(ready); ev != 0 {
		t.Errorf("NextEvent(ready) = %d, want 0 (event is in the past)", ev)
	}
}

func TestNextEventEarliestOfSeveral(t *testing.T) {
	h := MustNewHierarchy(BaseConfig())
	r1 := h.AccessData(0x10000, 0, false, false)
	r2 := h.AccessData(0x20000, 50, false, false)
	if r2 <= r1 {
		t.Fatalf("fills not staggered: r1=%d r2=%d", r1, r2)
	}
	if ev := h.NextEvent(50); ev != r1 {
		t.Errorf("NextEvent(50) = %d, want earliest fill %d", ev, r1)
	}
	// Once the first completes, the second becomes the next event.
	if ev := h.NextEvent(r1); ev != r2 {
		t.Errorf("NextEvent(%d) = %d, want %d", r1, ev, r2)
	}
}

func TestNextEventInstFill(t *testing.T) {
	h := MustNewHierarchy(BaseConfig())
	ready := h.AccessInst(0x9000, 5)
	if ready <= 5 {
		t.Fatalf("cold instruction fetch ready at %d", ready)
	}
	if ev := h.NextEvent(5); ev != ready {
		t.Errorf("NextEvent(5) = %d, want instruction fill %d", ev, ready)
	}
	if ev := h.NextEvent(ready); ev != 0 {
		t.Errorf("NextEvent(ready) = %d, want 0", ev)
	}
}

func TestNextEventReset(t *testing.T) {
	h := MustNewHierarchy(BaseConfig())
	h.AccessData(0x1000, 0, false, false)
	h.AccessInst(0x9000, 0)
	if ev := h.NextEvent(0); ev == 0 {
		t.Fatal("expected pending events before Reset")
	}
	h.Reset()
	if ev := h.NextEvent(0); ev != 0 {
		t.Errorf("NextEvent after Reset = %d, want 0", ev)
	}
}
