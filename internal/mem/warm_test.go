package mem

import "testing"

// TestWarmCaptureRestoreRoundTrip warms one hierarchy functionally, restores
// the capture into a fresh hierarchy, and checks the two agree on where every
// line resides — with the restored hierarchy's stats untouched (warm state
// carries placement, never accounting).
func TestWarmCaptureRestoreRoundTrip(t *testing.T) {
	src := MustNewHierarchy(BaseConfig())
	lineBytes := uint32(BaseConfig().L1D.LineBytes)
	var addrs []uint32
	for i := 0; i < 512; i++ {
		addrs = append(addrs, uint32(i)*lineBytes*3)
	}
	for _, a := range addrs {
		src.WarmData(a, a%5 == 0)
	}
	src.WarmInst(0x40)

	dst := MustNewHierarchy(BaseConfig())
	if err := dst.RestoreWarm(src.CaptureWarm()); err != nil {
		t.Fatal(err)
	}
	for _, a := range addrs {
		if got, want := dst.Probe(a), src.Probe(a); got != want {
			t.Fatalf("Probe(%#x) = %d after restore, want %d", a, got, want)
		}
	}
	if s := dst.Stats(); s.L1D.Accesses != 0 || s.L2.Accesses != 0 || s.L3.Accesses != 0 {
		t.Fatalf("restored hierarchy has nonzero stats: %+v", s)
	}

	// The restored LRU state must match too: an eviction-triggering access
	// sequence lands identically on both hierarchies. The warming hierarchy's
	// stats are polluted by WarmData itself, so compare deltas.
	base := src.Stats()
	for _, a := range addrs {
		src.AccessData(a, 0, false, false)
		dst.AccessData(a, 0, false, false)
	}
	ss, ds := src.Stats(), dst.Stats()
	if ss.L1D.Misses-base.L1D.Misses != ds.L1D.Misses ||
		ss.L2.Misses-base.L2.Misses != ds.L2.Misses ||
		ss.L3.Misses-base.L3.Misses != ds.L3.Misses {
		t.Fatalf("post-restore access pattern diverged: src delta %+v/%+v dst %+v", base, ss, ds)
	}
}

func TestRestoreWarmRejectsMismatchedGeometry(t *testing.T) {
	src := MustNewHierarchy(BaseConfig())
	other, ok := ConfigByName("config1")
	if !ok {
		t.Skip("config1 hierarchy not registered")
	}
	dst := MustNewHierarchy(other)
	if err := dst.RestoreWarm(src.CaptureWarm()); err == nil {
		t.Fatal("RestoreWarm accepted warm state from a different geometry")
	}
	if err := dst.RestoreWarm(nil); err == nil {
		t.Fatal("RestoreWarm accepted nil warm state")
	}
}

func TestHierStatsAddSub(t *testing.T) {
	h := MustNewHierarchy(BaseConfig())
	for i := 0; i < 64; i++ {
		h.AccessData(uint32(i)*4096, uint64(i)*100, i%2 == 0, false)
	}
	full := h.Stats()
	var zero HierStats
	sum := zero
	sum.Add(full)
	if sum != full {
		t.Fatalf("zero.Add(full) = %+v, want %+v", sum, full)
	}
	sum.Sub(full)
	if sum != zero {
		t.Fatalf("full.Sub(full) = %+v, want zero", sum)
	}
}
