package mem

import "fmt"

// HierConfig describes the whole hierarchy.
type HierConfig struct {
	L1I LevelConfig
	L1D LevelConfig
	L2  LevelConfig
	L3  LevelConfig
	// MemLatency is the total latency of an access satisfied by main memory.
	MemLatency int
	// MaxMisses is the number of MSHRs: the maximum number of data-side
	// misses outstanding at once (Table 2: 16).
	MaxMisses int
}

// BaseConfig returns the paper's Table 2 hierarchy: 16KB 4-way 64B 1-cycle
// L1s, 256KB 8-way 128B 5-cycle L2, 3MB 12-way 128B 12-cycle L3, 145-cycle
// main memory, 16 outstanding misses.
func BaseConfig() HierConfig {
	return HierConfig{
		L1I:        LevelConfig{Name: "L1I", SizeBytes: 16 << 10, Assoc: 4, LineBytes: 64, Latency: 1},
		L1D:        LevelConfig{Name: "L1D", SizeBytes: 16 << 10, Assoc: 4, LineBytes: 64, Latency: 1},
		L2:         LevelConfig{Name: "L2", SizeBytes: 256 << 10, Assoc: 8, LineBytes: 128, Latency: 5},
		L3:         LevelConfig{Name: "L3", SizeBytes: 3 << 20, Assoc: 12, LineBytes: 128, Latency: 12},
		MemLatency: 145,
		MaxMisses:  16,
	}
}

// Config1 returns Figure 7's "config1": the base hierarchy with 200-cycle
// main memory.
func Config1() HierConfig {
	c := BaseConfig()
	c.MemLatency = 200
	return c
}

// Config2 returns Figure 7's "config2": 8KB 1-cycle L1s, 128KB 7-cycle L2,
// 1.5MB 16-cycle L3, 200-cycle main memory.
func Config2() HierConfig {
	c := BaseConfig()
	c.L1I.SizeBytes = 8 << 10
	c.L1D.SizeBytes = 8 << 10
	c.L2.SizeBytes = 128 << 10
	c.L2.Latency = 7
	c.L3.SizeBytes = 1536 << 10
	c.L3.Latency = 16
	c.MemLatency = 200
	return c
}

// ConfigByName returns the evaluation's named hierarchy configurations
// ("base", "config1", "config2" — Table 2 and Figure 7).
func ConfigByName(name string) (HierConfig, bool) {
	switch name {
	case "base":
		return BaseConfig(), true
	case "config1":
		return Config1(), true
	case "config2":
		return Config2(), true
	}
	return HierConfig{}, false
}

// ConfigNames lists the named hierarchies in presentation order.
func ConfigNames() []string { return []string{"base", "config1", "config2"} }

// ConfigDescription returns a one-line description of a named hierarchy for
// API enumeration, or "" for unknown names.
func ConfigDescription(name string) string {
	switch name {
	case "base":
		return "Table 2: 16KB 1-cycle L1s, 256KB 5-cycle L2, 3MB 12-cycle L3, 145-cycle memory"
	case "config1":
		return "Figure 7 config1: base hierarchy with 200-cycle main memory"
	case "config2":
		return "Figure 7 config2: 8KB L1s, 128KB 7-cycle L2, 1.5MB 16-cycle L3, 200-cycle memory"
	}
	return ""
}

// mshr is one miss-status holding register: the L2-line-aligned address of
// an ongoing fill and the cycle it completes. A slot whose ready cycle has
// passed is free.
type mshr struct {
	addr  uint32
	ready uint64
}

// Hierarchy is the timing model of the full cache system.
type Hierarchy struct {
	cfg HierConfig
	l1i *cache
	l1d *cache
	l2  *cache
	l3  *cache
	// inflight is the MSHR file: exactly MaxMisses slots (Table 2: 16),
	// implementing both occupancy and miss merging. The architectural bound
	// makes a linear scan cheaper than any map, and the structure is
	// allocation-free across runs and Resets.
	inflight []mshr
	// instFill is the most recent instruction-side fill. The front end has
	// its own port (AccessInst consumes no data MSHR) and fetches lines
	// serially, so a single slot covers every in-flight inst fill; it exists
	// so NextEvent can see instruction misses as wake-up events too.
	instFill mshr
	// mshrStalls counts accesses that had to wait for a free MSHR.
	mshrStalls uint64
}

// NewHierarchy builds a hierarchy; it panics only on nil receivers, never on
// config errors, which are returned.
func NewHierarchy(cfg HierConfig) (*Hierarchy, error) {
	if cfg.MemLatency < 1 {
		return nil, fmt.Errorf("mem: main memory latency %d < 1", cfg.MemLatency)
	}
	if cfg.MaxMisses < 1 {
		return nil, fmt.Errorf("mem: MaxMisses %d < 1", cfg.MaxMisses)
	}
	h := &Hierarchy{cfg: cfg, inflight: make([]mshr, cfg.MaxMisses)}
	var err error
	if h.l1i, err = newCache(cfg.L1I); err != nil {
		return nil, err
	}
	if h.l1d, err = newCache(cfg.L1D); err != nil {
		return nil, err
	}
	if h.l2, err = newCache(cfg.L2); err != nil {
		return nil, err
	}
	if h.l3, err = newCache(cfg.L3); err != nil {
		return nil, err
	}
	return h, nil
}

// MustNewHierarchy is NewHierarchy for known-good configurations.
func MustNewHierarchy(cfg HierConfig) *Hierarchy {
	h, err := NewHierarchy(cfg)
	if err != nil {
		panic(err)
	}
	return h
}

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() HierConfig { return h.cfg }

// mergeAddr aligns addr to the largest line granularity for miss merging.
func (h *Hierarchy) mergeAddr(addr uint32) uint32 {
	return addr &^ uint32(h.cfg.L2.LineBytes-1)
}

// outstanding counts fills still in flight at cycle now. Slots whose fills
// have completed are implicitly free (no purge needed).
func (h *Hierarchy) outstanding(now uint64) int {
	n := 0
	for i := range h.inflight {
		if h.inflight[i].ready > now {
			n++
		}
	}
	return n
}

// earliestCompletion returns the soonest completion among in-flight fills;
// callers must ensure at least one is in flight.
func (h *Hierarchy) earliestCompletion(now uint64) uint64 {
	var best uint64
	first := true
	for i := range h.inflight {
		if ready := h.inflight[i].ready; ready > now && (first || ready < best) {
			best = ready
			first = false
		}
	}
	if first {
		return now
	}
	return best
}

// NextEvent returns the earliest cycle strictly after now at which any
// in-flight fill completes — data-side MSHR fills plus the instruction-side
// fill — or 0 when nothing is in flight. This is the wake-up target for
// event-driven stall skipping: a cycle loop that has proven no instruction
// can make progress before the next memory completion may jump its clock
// straight to this cycle instead of ticking through the stall. All fills in
// this hierarchy are fixed-latency (the completion cycle is decided when the
// miss issues and never moves), so the value returned for a given fill is
// stable until that fill completes.
func (h *Hierarchy) NextEvent(now uint64) uint64 {
	var best uint64
	for i := range h.inflight {
		if r := h.inflight[i].ready; r > now && (best == 0 || r < best) {
			best = r
		}
	}
	if r := h.instFill.ready; r > now && (best == 0 || r < best) {
		best = r
	}
	return best
}

// fillFor returns the completion cycle of an ongoing fill of addr's merge
// line, or 0 when none is in flight at cycle now.
func (h *Hierarchy) fillFor(addr uint32, now uint64) uint64 {
	for i := range h.inflight {
		if h.inflight[i].addr == addr && h.inflight[i].ready > now {
			return h.inflight[i].ready
		}
	}
	return 0
}

// startFill claims a free MSHR for a fill of line addr completing at ready.
// The caller has already bounded occupancy below MaxMisses, so a free slot
// always exists.
func (h *Hierarchy) startFill(addr uint32, now, ready uint64) {
	for i := range h.inflight {
		if h.inflight[i].ready <= now {
			h.inflight[i] = mshr{addr: addr, ready: ready}
			return
		}
	}
	panic("mem: no free MSHR despite occupancy bound")
}

// AccessData performs a data-side access at cycle now and returns the cycle
// the data is available. write distinguishes stores (which still allocate
// and consume MSHRs on miss but whose completion the pipeline does not wait
// for); advance marks speculative pre-execution for statistics.
func (h *Hierarchy) AccessData(addr uint32, now uint64, write, advance bool) uint64 {
	// A line already in flight merges with the ongoing fill regardless of
	// which level it would otherwise hit: the first requester pays the MSHR,
	// later ones share the completion.
	if ready := h.fillFor(h.mergeAddr(addr), now); ready != 0 {
		// Keep LRU state warm.
		h.l1d.lookupW(addr, write, advance)
		h.l1d.install(addr, write)
		return ready
	}

	if h.l1d.lookupW(addr, write, advance) {
		return now + uint64(h.cfg.L1D.Latency)
	}

	// L1 miss: an MSHR is required. If all are busy, the request waits for
	// the earliest completion.
	issueAt := now
	for h.outstanding(issueAt) >= h.cfg.MaxMisses {
		h.mshrStalls++
		issueAt = h.earliestCompletion(issueAt)
	}

	var ready uint64
	switch {
	case h.l2.lookup(addr, advance):
		ready = issueAt + uint64(h.cfg.L2.Latency)
	case h.l3.lookup(addr, advance):
		ready = issueAt + uint64(h.cfg.L3.Latency)
	default:
		h.l3.install(addr, false)
		ready = issueAt + uint64(h.cfg.MemLatency)
	}
	h.l2.install(addr, false)
	h.l1d.install(addr, write)
	h.startFill(h.mergeAddr(addr), issueAt, ready)
	return ready
}

// Probe reports the level at which addr currently hits (1, 2, 3) or 4 for
// main memory, without perturbing any state. Used by tests and by the
// multipass WAW rule of paper §3.5 (advance loads that miss L1 skip the SRF
// write-back).
func (h *Hierarchy) Probe(addr uint32) int {
	present := func(c *cache) bool {
		tag := c.tag(addr)
		for i := range c.set(addr) {
			l := &c.set(addr)[i]
			if l.valid && l.tag == tag {
				return true
			}
		}
		return false
	}
	switch {
	case present(h.l1d):
		return 1
	case present(h.l2):
		return 2
	case present(h.l3):
		return 3
	}
	return 4
}

// InFlight reports whether addr's line is still being filled at cycle now.
func (h *Hierarchy) InFlight(addr uint32, now uint64) bool {
	return h.fillFor(h.mergeAddr(addr), now) != 0
}

// AccessInst performs an instruction-side access at cycle now. Instruction
// fetches do not consume data MSHRs (the front end has its own port) but do
// share L2/L3 content.
func (h *Hierarchy) AccessInst(addr uint32, now uint64) uint64 {
	if h.l1i.lookup(addr, false) {
		return now + uint64(h.cfg.L1I.Latency)
	}
	var ready uint64
	switch {
	case h.l2.lookup(addr, false):
		ready = now + uint64(h.cfg.L2.Latency)
	case h.l3.lookup(addr, false):
		ready = now + uint64(h.cfg.L3.Latency)
	default:
		h.l3.install(addr, false)
		ready = now + uint64(h.cfg.MemLatency)
	}
	h.l2.install(addr, false)
	h.l1i.install(addr, false)
	h.instFill = mshr{addr: addr, ready: ready}
	return ready
}

// HierStats is a snapshot of all level statistics.
type HierStats struct {
	L1I        CacheStats `json:"l1i"`
	L1D        CacheStats `json:"l1d"`
	L2         CacheStats `json:"l2"`
	L3         CacheStats `json:"l3"`
	MSHRStalls uint64     `json:"mshr_stalls"`
}

// Add accumulates o into s fieldwise; Sub removes it.
func (s *HierStats) Add(o HierStats) {
	s.L1I.Add(o.L1I)
	s.L1D.Add(o.L1D)
	s.L2.Add(o.L2)
	s.L3.Add(o.L3)
	s.MSHRStalls += o.MSHRStalls
}

// Sub removes o from s fieldwise.
func (s *HierStats) Sub(o HierStats) {
	s.L1I.Sub(o.L1I)
	s.L1D.Sub(o.L1D)
	s.L2.Sub(o.L2)
	s.L3.Sub(o.L3)
	s.MSHRStalls -= o.MSHRStalls
}

// Stats returns a snapshot of the hierarchy's counters.
func (h *Hierarchy) Stats() HierStats {
	return HierStats{
		L1I:        h.l1i.stats,
		L1D:        h.l1d.stats,
		L2:         h.l2.stats,
		L3:         h.l3.stats,
		MSHRStalls: h.mshrStalls,
	}
}

// Reset invalidates all caches and clears counters and in-flight state. The
// MSHR file is cleared in place, not reallocated, so a hierarchy can be
// reused across runs without allocating.
func (h *Hierarchy) Reset() {
	h.l1i.reset()
	h.l1d.reset()
	h.l2.reset()
	h.l3.reset()
	for i := range h.inflight {
		h.inflight[i] = mshr{}
	}
	h.instFill = mshr{}
	h.mshrStalls = 0
}
