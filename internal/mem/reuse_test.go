package mem

import (
	"sync"
	"testing"
)

// driveHierarchy performs a deterministic access pattern and returns the
// final stats snapshot.
func driveHierarchy(h *Hierarchy) HierStats {
	now := uint64(0)
	for i := 0; i < 2000; i++ {
		addr := uint32(i%37) * 4096 // page-strided: misses, MSHR pressure
		now = h.AccessData(addr, now, i%5 == 0, false)
		h.AccessInst(uint32(i%13)*64, now)
	}
	return h.Stats()
}

// TestHierarchyResetReuse verifies that Reset restores a hierarchy to its
// just-constructed behavior — identical stats under an identical access
// sequence — and does so without allocating: the MSHR file and cache arrays
// are cleared in place, never reallocated.
func TestHierarchyResetReuse(t *testing.T) {
	h := MustNewHierarchy(BaseConfig())
	fresh := driveHierarchy(h)

	if allocs := testing.AllocsPerRun(10, h.Reset); allocs != 0 {
		t.Errorf("Reset allocates %.0f objects per call, want 0", allocs)
	}

	h.Reset()
	reused := driveHierarchy(h)
	if fresh != reused {
		t.Errorf("stats after Reset differ from a fresh hierarchy:\nfresh:  %+v\nreused: %+v", fresh, reused)
	}
}

// TestHierarchyReuseParallel exercises the reuse pattern under the race
// detector: distinct goroutines each own one hierarchy and Reset it between
// runs, the way the bench harness reuses per-worker state. Hierarchies are
// not shared, so this must be race-clean.
func TestHierarchyReuseParallel(t *testing.T) {
	var want HierStats
	{
		h := MustNewHierarchy(BaseConfig())
		want = driveHierarchy(h)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := MustNewHierarchy(BaseConfig())
			for run := 0; run < 3; run++ {
				if got := driveHierarchy(h); got != want {
					t.Errorf("run %d: stats diverged after Reset", run)
				}
				h.Reset()
			}
		}()
	}
	wg.Wait()
}
