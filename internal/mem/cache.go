// Package mem implements the simulated cache hierarchy of paper Table 2:
// split L1 instruction/data caches backed by unified L2 and L3 caches and
// main memory, with LRU replacement, non-blocking misses limited by a fixed
// number of MSHRs (outstanding misses), and miss merging.
//
// The timing model is timestamp-based: an access at cycle `now` returns the
// cycle at which its data is available. Lines are installed eagerly at every
// level while an in-flight table carries the true fill time, so a later
// access to a line still in flight observes the earlier miss's completion
// time — this is what gives pre-executed loads (runahead, multipass advance
// mode) their prefetching effect.
package mem

import "fmt"

// LevelConfig describes one cache level.
type LevelConfig struct {
	Name      string
	SizeBytes int
	Assoc     int
	LineBytes int
	// Latency is the total load-use latency in cycles when the access hits
	// at this level (Table 2 reports cumulative latencies).
	Latency int
}

// Lines returns the number of lines in the level.
func (c LevelConfig) Lines() int { return c.SizeBytes / c.LineBytes }

// Sets returns the number of sets in the level.
func (c LevelConfig) Sets() int { return c.Lines() / c.Assoc }

func (c LevelConfig) validate() error {
	if c.SizeBytes <= 0 || c.Assoc <= 0 || c.LineBytes <= 0 {
		return fmt.Errorf("mem: %s: non-positive geometry", c.Name)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("mem: %s: line size %d not a power of two", c.Name, c.LineBytes)
	}
	if c.SizeBytes%(c.LineBytes*c.Assoc) != 0 {
		return fmt.Errorf("mem: %s: size %d not divisible by assoc*line", c.Name, c.SizeBytes)
	}
	if s := c.Sets(); s&(s-1) != 0 {
		return fmt.Errorf("mem: %s: set count %d not a power of two", c.Name, s)
	}
	if c.Latency < 1 {
		return fmt.Errorf("mem: %s: latency %d < 1", c.Name, c.Latency)
	}
	return nil
}

// CacheStats counts per-level activity.
type CacheStats struct {
	Accesses uint64 `json:"accesses"`
	Misses   uint64 `json:"misses"`
	// AdvanceAccesses/AdvanceMisses count only accesses issued by
	// speculative pre-execution (advance mode, runahead).
	AdvanceAccesses uint64 `json:"advance_accesses"`
	AdvanceMisses   uint64 `json:"advance_misses"`
	// Writebacks counts dirty lines evicted from this level.
	Writebacks uint64 `json:"writebacks"`
}

// Add accumulates o into s fieldwise; Sub removes it. Interval stitching
// adds per-interval snapshots and subtracts warm-up baselines, so both
// operations must cover every counter.
func (s *CacheStats) Add(o CacheStats) {
	s.Accesses += o.Accesses
	s.Misses += o.Misses
	s.AdvanceAccesses += o.AdvanceAccesses
	s.AdvanceMisses += o.AdvanceMisses
	s.Writebacks += o.Writebacks
}

// Sub removes o from s fieldwise.
func (s *CacheStats) Sub(o CacheStats) {
	s.Accesses -= o.Accesses
	s.Misses -= o.Misses
	s.AdvanceAccesses -= o.AdvanceAccesses
	s.AdvanceMisses -= o.AdvanceMisses
	s.Writebacks -= o.Writebacks
}

// MissRate returns misses/accesses, or 0 for an idle cache.
func (s CacheStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

type line struct {
	tag   uint32
	valid bool
	dirty bool
	use   uint64 // LRU timestamp
}

// cache is one set-associative level.
type cache struct {
	cfg       LevelConfig
	lineShift uint
	setMask   uint32
	sets      [][]line
	useClock  uint64
	stats     CacheStats
}

func newCache(cfg LevelConfig) (*cache, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	c := &cache{cfg: cfg}
	for 1<<c.lineShift < cfg.LineBytes {
		c.lineShift++
	}
	c.setMask = uint32(cfg.Sets() - 1)
	c.sets = make([][]line, cfg.Sets())
	rows := make([]line, cfg.Sets()*cfg.Assoc)
	for i := range c.sets {
		c.sets[i] = rows[i*cfg.Assoc : (i+1)*cfg.Assoc]
	}
	return c, nil
}

func (c *cache) set(addr uint32) []line {
	return c.sets[(addr>>c.lineShift)&c.setMask]
}

func (c *cache) tag(addr uint32) uint32 {
	return addr >> c.lineShift
}

// lookup probes for addr's line, updating LRU on hit (and the dirty bit on
// write hits). advance marks speculative accesses for the statistics.
func (c *cache) lookup(addr uint32, advance bool) bool {
	return c.lookupW(addr, false, advance)
}

func (c *cache) lookupW(addr uint32, write, advance bool) bool {
	c.useClock++
	c.stats.Accesses++
	if advance {
		c.stats.AdvanceAccesses++
	}
	tag := c.tag(addr)
	for i := range c.set(addr) {
		l := &c.set(addr)[i]
		if l.valid && l.tag == tag {
			l.use = c.useClock
			if write {
				l.dirty = true
			}
			return true
		}
	}
	c.stats.Misses++
	if advance {
		c.stats.AdvanceMisses++
	}
	return false
}

// install fills addr's line, evicting the LRU way if needed; write marks
// the incoming line dirty (write-allocate). Evicting a dirty line counts a
// writeback.
func (c *cache) install(addr uint32, write bool) {
	c.useClock++
	tag := c.tag(addr)
	set := c.set(addr)
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].use = c.useClock
			if write {
				set[i].dirty = true
			}
			return
		}
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].use < set[victim].use {
			victim = i
		}
	}
	if set[victim].valid && set[victim].dirty {
		c.stats.Writebacks++
	}
	set[victim] = line{tag: tag, valid: true, dirty: write, use: c.useClock}
}

// reset invalidates all lines and clears statistics.
func (c *cache) reset() {
	for _, set := range c.sets {
		for i := range set {
			set[i] = line{}
		}
	}
	c.useClock = 0
	c.stats = CacheStats{}
}
