package arch

import (
	"encoding/binary"
	"fmt"

	"multipass/internal/isa"
)

// This file implements the direct-threaded superblock interpreter: the
// program is pre-decoded once into a flat micro-op array in program order,
// with register operands resolved to flat indices, immediate forms
// specialized, and the dominant back-edge pattern (compare feeding the very
// next branch) fused into a single micro-op. Execution is then a tight
// dispatch loop over dense codes — no per-step PC bounds check, no operand
// shape re-decode, no Reg.Flat() calls — which is what the step-wise
// State.Step pays on every instruction. The step-wise interpreter remains
// the semantic reference (RunStepwise); the differential tests in
// internal/xcheck prove the two byte-identical over the progen space.

// Flat register working-array layout. Two extra slots beyond the
// architectural registers make operand handling branch-free:
//
//   - zeroSlot reads as zero value / clear NaT and is never written; absent
//     source operands resolve to it (RegFile.Read(None) == 0).
//   - discardSlot is a write sink; absent and hardwired (r0, p0) destinations
//     resolve to it, which reproduces RegFile.Write discarding those writes.
const (
	zeroSlot    = isa.NumFlatRegs
	discardSlot = isa.NumFlatRegs + 1
	numSlots    = isa.NumFlatRegs + 2
)

// Dispatch codes. uBr and uCmpBr come first: every other code shares the
// generic qualifying-predicate squash prologue, while branches fold the
// predicate into the taken decision (an architecturally not-taken branch)
// and fused pairs require an always-true compare predicate by construction.
const (
	uBr uint8 = iota
	uCmpBr
	uNop // also restart and unknown opcodes: no architectural effect
	uHalt
	uLd
	uLdD2 // load with an (invalid-shape) real Dst2: complement write kept
	uSt
	uAdd
	uSub
	uAnd
	uOr
	uXor
	uShl
	uShr
	uSar
	uAddI
	uSubI
	uAndI
	uOrI
	uXorI
	uShlI
	uShrI
	uSarI
	uMov
	uMovI
	uCmp // all integer and FP compares; sub holds the isa.Op
	uMul
	uDiv
	uRem
	uFAdd
	uFSub
	uFMul
	uFDiv
	uFMov
	uFNeg
	uCvtIF
	uCvtFI
	uEvalGen // non-compare eval op with a real Dst2: fall back to isa.Eval
)

// sbOp flag bits.
const (
	// fBrOnDst2 marks a fused compare+branch whose branch predicate is the
	// compare's complement destination (Dst2).
	fBrOnDst2 uint8 = 1 << iota
)

// sbOp is one pre-decoded micro-op. Register fields are indices into the
// flat working arrays (including the zero/discard slots); dst2n is the NaT
// propagation target for Dst2, which differs from dst2 only for the
// irregular Dst==None case (Step's writeDst skips the complement value
// write, but NaT propagation still reaches Dst2).
type sbOp struct {
	code  uint8
	sub   uint8 // memory width for uLd/uSt; isa.Op for uCmp/uCmpBr/uEvalGen
	flags uint8
	qp    uint16
	dst   uint16
	dst2  uint16
	dst2n uint16
	src1  uint16
	src2  uint16
	imm   int32
	idx   int32  // instruction index of this op (the compare for fused pairs)
	fetch uint32 // isa.InstAddr(idx)
	// Branch fields (uBr, uCmpBr).
	target  int32  // architectural target instruction index
	tOp     int32  // resolved op index of target; -1 if out of program
	brFetch uint32 // fused pairs: fetch address of the swallowed branch
}

// SBProgram is a program pre-decoded into superblock micro-ops. It is
// immutable after construction and safe for concurrent Exec calls (each call
// carries its own architectural state).
type SBProgram struct {
	p    *isa.Program
	ops  []sbOp
	opAt []int32 // instruction index -> op index; -1 for the branch half of a fused pair
}

// ExecCounts classifies the instructions retired by one Exec call, with the
// same rules as Run: loads and stores count only when not squashed, every
// branch counts (a squashed branch is architecturally not taken).
type ExecCounts struct {
	Loads    uint64
	Stores   uint64
	Branches uint64
	Taken    uint64
}

// Event flag bits for ExecEvent.Flags.
const (
	EvLoad uint8 = 1 << iota
	EvStore
	EvBranch
	EvTaken
)

// ExecEvent is one retired instruction's footprint for microarchitectural
// warming: the fetch address, the effective address for non-squashed memory
// operations, and classification flags. Squashed instructions emit an event
// with no flags (they still occupy a fetch slot). The checkpoint builder in
// internal/sim replays these against its cache hierarchy and predictor,
// which keeps package arch free of mem/bpred imports.
type ExecEvent struct {
	Fetch   uint32
	MemAddr uint32
	Flags   uint8
}

// NewSBProgram pre-decodes p. Construction is a two-pass linear scan:
// discover block leaders (entry, branch targets, branch fall-throughs),
// decode each instruction into a micro-op fusing compare+branch pairs where
// legal, then resolve branch targets to op indices.
func NewSBProgram(p *isa.Program) *SBProgram {
	n := len(p.Insts)
	sb := &SBProgram{p: p, opAt: make([]int32, n), ops: make([]sbOp, 0, n)}

	// Leaders: a fused pair may not swallow a branch that is itself a branch
	// target, because a jump landing on the branch would have to re-enter the
	// middle of a micro-op.
	leader := make([]bool, n)
	if n > 0 {
		leader[0] = true
	}
	for i := range p.Insts {
		if p.Insts[i].Op.IsBranch() {
			if t := int(p.Insts[i].Target); t >= 0 && t < n {
				leader[t] = true
			}
			if i+1 < n {
				leader[i+1] = true
			}
		}
	}

	for i := 0; i < n; i++ {
		in := &p.Insts[i]
		sb.opAt[i] = int32(len(sb.ops))
		o := sbOp{
			qp:    mapSrc(in.QP),
			src1:  mapSrc(in.Src1),
			src2:  mapSrc(in.Src2),
			imm:   in.Imm,
			idx:   int32(i),
			fetch: isa.InstAddr(i),
			tOp:   -1,
		}
		o.dst, o.dst2, o.dst2n = mapDsts(in)

		// Compare+branch fusion. Legal when the compare is unconditional
		// (QP == p0, so it can never be squashed), the next instruction is a
		// branch predicated exactly on one of the compare's destinations
		// (value or complement, not hardwired), and that branch is not a
		// block leader (no control flow may enter between the pair). NaT
		// semantics survive fusion because Step's branch decision reads the
		// predicate *value* only — writeDst stores the computed value before
		// NaT propagation, and ReadNaT is never consulted by the branch.
		if isCompareOp(in.Op) && in.QP == isa.P0 && i+1 < n {
			br := &p.Insts[i+1]
			if br.Op.IsBranch() && !leader[i+1] && !br.QP.IsNone() && !br.QP.IsZeroReg() {
				onDst2, ok := false, false
				// Dst2 is checked first: if Dst == Dst2 the complement write
				// lands last and wins, exactly as in writeDst.
				switch {
				case br.QP == in.Dst2 && !in.Dst.IsNone():
					onDst2, ok = true, true
				case br.QP == in.Dst:
					ok = true
				}
				if ok {
					o.code = uCmpBr
					o.sub = uint8(in.Op)
					if onDst2 {
						o.flags |= fBrOnDst2
					}
					o.target = br.Target
					o.brFetch = isa.InstAddr(i + 1)
					sb.ops = append(sb.ops, o)
					i++
					sb.opAt[i] = -1 // interior of a fused pair
					continue
				}
			}
		}

		switch {
		case in.Op.IsBranch():
			o.code = uBr
			o.target = in.Target
		case int(in.Op) >= isa.NumOps:
			o.code = uNop
		default:
			switch in.Op.Kind() {
			case isa.KindNop, isa.KindRestart:
				o.code = uNop
			case isa.KindHalt:
				o.code = uHalt
			case isa.KindLoad:
				o.code = uLd
				if o.dst2 != discardSlot {
					o.code = uLdD2
				}
				o.sub = uint8(in.Op.MemBytes())
			case isa.KindStore:
				o.code = uSt
				o.sub = uint8(in.Op.MemBytes())
			default:
				o.code = evalCode(in.Op)
				o.sub = uint8(in.Op)
				if o.dst2 != discardSlot && o.code != uCmp {
					o.code = uEvalGen
				}
			}
		}
		sb.ops = append(sb.ops, o)
	}

	// Resolve branch targets to op indices. In-range targets are always
	// leaders, so they can never point at the swallowed half of a fused pair.
	for j := range sb.ops {
		o := &sb.ops[j]
		if o.code == uBr || o.code == uCmpBr {
			if t := int(o.target); t >= 0 && t < n {
				o.tOp = sb.opAt[t]
			}
		}
	}
	return sb
}

// Program returns the pre-decoded program.
func (sb *SBProgram) Program() *isa.Program { return sb.p }

func mapSrc(r isa.Reg) uint16 {
	if f := r.Flat(); f >= 0 {
		return uint16(f)
	}
	return zeroSlot
}

// mapDsts resolves an instruction's destination operands to working-array
// slots replicating writeDst plus NaT propagation exactly:
//
//   - dst receives the primary value and its NaT; None and hardwired
//     destinations discard.
//   - dst2 receives the complement value, written only when Dst is real
//     (writeDst returns before the complement if Dst is None).
//   - dst2n receives Dst2's propagated NaT, which Step applies regardless of
//     whether Dst was real.
func mapDsts(in *isa.Inst) (dst, dst2, dst2n uint16) {
	dst, dst2, dst2n = discardSlot, discardSlot, discardSlot
	d2real := !in.Dst2.IsNone() && !in.Dst2.IsZeroReg()
	if !in.Dst.IsNone() {
		if !in.Dst.IsZeroReg() {
			dst = uint16(in.Dst.Flat())
		}
		if d2real {
			dst2 = uint16(in.Dst2.Flat())
		}
	}
	if d2real {
		dst2n = uint16(in.Dst2.Flat())
	}
	return dst, dst2, dst2n
}

func isCompareOp(op isa.Op) bool {
	switch op {
	case isa.OpCmpEq, isa.OpCmpNe, isa.OpCmpLt, isa.OpCmpLe, isa.OpCmpLtU,
		isa.OpCmpLeU, isa.OpCmpEqI, isa.OpCmpNeI, isa.OpCmpLtI, isa.OpCmpLeI,
		isa.OpCmpLtUI, isa.OpFCmpEq, isa.OpFCmpLt, isa.OpFCmpLe:
		return true
	}
	return false
}

var evalCodes = [isa.NumOps]uint8{
	isa.OpAdd: uAdd, isa.OpSub: uSub, isa.OpAnd: uAnd, isa.OpOr: uOr,
	isa.OpXor: uXor, isa.OpShl: uShl, isa.OpShr: uShr, isa.OpSar: uSar,
	isa.OpAddI: uAddI, isa.OpSubI: uSubI, isa.OpAndI: uAndI, isa.OpOrI: uOrI,
	isa.OpXorI: uXorI, isa.OpShlI: uShlI, isa.OpShrI: uShrI, isa.OpSarI: uSarI,
	isa.OpMov: uMov, isa.OpMovI: uMovI,
	isa.OpCmpEq: uCmp, isa.OpCmpNe: uCmp, isa.OpCmpLt: uCmp, isa.OpCmpLe: uCmp,
	isa.OpCmpLtU: uCmp, isa.OpCmpLeU: uCmp, isa.OpCmpEqI: uCmp, isa.OpCmpNeI: uCmp,
	isa.OpCmpLtI: uCmp, isa.OpCmpLeI: uCmp, isa.OpCmpLtUI: uCmp,
	isa.OpMul: uMul, isa.OpDiv: uDiv, isa.OpRem: uRem,
	isa.OpFAdd: uFAdd, isa.OpFSub: uFSub, isa.OpFMul: uFMul, isa.OpFDiv: uFDiv,
	isa.OpFMov: uFMov, isa.OpFNeg: uFNeg, isa.OpCvtIF: uCvtIF, isa.OpCvtFI: uCvtFI,
	isa.OpFCmpEq: uCmp, isa.OpFCmpLt: uCmp, isa.OpFCmpLe: uCmp,
}

func evalCode(op isa.Op) uint8 { return evalCodes[op] }

// cmpTrue evaluates a compare operation's condition, mirroring isa.Eval's
// compare cases bit for bit.
func cmpTrue(op uint8, a, b isa.Word, imm int32) bool {
	ai, bi := a.Uint32(), b.Uint32()
	iu := uint32(imm)
	switch isa.Op(op) {
	case isa.OpCmpEq:
		return ai == bi
	case isa.OpCmpNe:
		return ai != bi
	case isa.OpCmpLt:
		return int32(ai) < int32(bi)
	case isa.OpCmpLe:
		return int32(ai) <= int32(bi)
	case isa.OpCmpLtU:
		return ai < bi
	case isa.OpCmpLeU:
		return ai <= bi
	case isa.OpCmpEqI:
		return ai == iu
	case isa.OpCmpNeI:
		return ai != iu
	case isa.OpCmpLtI:
		return int32(ai) < imm
	case isa.OpCmpLeI:
		return int32(ai) <= imm
	case isa.OpCmpLtUI:
		return ai < iu
	case isa.OpFCmpEq:
		return a.Float64() == b.Float64()
	case isa.OpFCmpLt:
		return a.Float64() < b.Float64()
	case isa.OpFCmpLe:
		return a.Float64() <= b.Float64()
	}
	return false
}

// Exec runs the superblock dispatch loop over st until the program halts or
// st.Retired reaches stopAt, whichever comes first. State is synchronized
// back into st on every exit path, including errors, so Exec composes with
// Step at any boundary.
func (sb *SBProgram) Exec(st *State, stopAt uint64) (ExecCounts, error) {
	c, _, err := sb.exec(st, stopAt, nil)
	return c, err
}

// ExecTrace is Exec recording one ExecEvent per retired instruction into
// evs. It additionally stops when fewer than two event slots remain (a fused
// pair needs two), returning the number of events written; the caller
// replays them and calls again.
func (sb *SBProgram) ExecTrace(st *State, stopAt uint64, evs []ExecEvent) (ExecCounts, int, error) {
	return sb.exec(st, stopAt, evs)
}

func (sb *SBProgram) exec(st *State, stopAt uint64, evs []ExecEvent) (ExecCounts, int, error) {
	var c ExecCounts
	if st.Halted {
		return c, 0, fmt.Errorf("arch: step after halt")
	}
	nInsts := len(sb.p.Insts)
	if st.PC < 0 || st.PC >= nInsts {
		if st.Retired >= stopAt {
			return c, 0, nil
		}
		return c, 0, fmt.Errorf("arch: PC %d outside program of %d instructions", st.PC, nInsts)
	}

	rec := evs != nil
	nev := 0
	retired := st.Retired
	mem := st.Mem
	ops := sb.ops

	// Local direct-mapped page translation cache for the inlined memory fast
	// paths below: kernels alternate between a handful of hot pages (input
	// buffer, output buffer, tables), which thrashes a one-entry cache. Page
	// pointers are stable for a Memory's lifetime, so entries stay valid
	// across the slow paths (which go through mem's own methods and keep its
	// internal cache coherent independently). A nil pg marks an empty entry;
	// unallocated pages are never cached.
	const tlbSize = 64
	var tlbPN [tlbSize]uint32
	var tlbPG [tlbSize]*[pageSize]byte

	// Working register arrays: architectural registers plus the zero and
	// discard slots. Copied in once per call and synchronized back on exit.
	var vals [numSlots]isa.Word
	var nat [numSlots]bool
	copy(vals[:isa.NumFlatRegs], st.RF.vals[:])
	copy(nat[:isa.NumFlatRegs], st.RF.nat[:])

	// NaT bits only propagate — nothing in architectural execution originates
	// one — so a state with no NaT set can never grow one. Functional runs
	// from reset are always in that regime, and skipping the per-op NaT
	// bookkeeping there removes two loads and a store from every ALU op.
	natLive := false
	for _, b := range st.RF.nat {
		if b {
			natLive = true
			break
		}
	}

	sync := func(pc int) {
		copy(st.RF.vals[:], vals[:isa.NumFlatRegs])
		copy(st.RF.nat[:], nat[:isa.NumFlatRegs])
		st.PC = pc
		st.Retired = retired
	}

	// stepOne runs a single instruction through the step-wise reference
	// interpreter, used when the dispatch loop cannot make exact progress:
	// resuming at the swallowed half of a fused pair, or a fused pair that
	// would overshoot stopAt (it retires two instructions at once).
	stepOne := func(pc int) (cont bool, err error) {
		sync(pc)
		info, err := st.Step(sb.p)
		if err != nil {
			return false, err
		}
		copy(vals[:isa.NumFlatRegs], st.RF.vals[:])
		copy(nat[:isa.NumFlatRegs], st.RF.nat[:])
		retired = st.Retired
		switch {
		case info.IsLoad:
			c.Loads++
		case info.IsStore:
			c.Stores++
		case info.IsBranch:
			c.Branches++
			if info.Taken {
				c.Taken++
			}
		}
		if rec {
			e := ExecEvent{Fetch: isa.InstAddr(info.Index)}
			switch {
			case info.IsLoad:
				e.Flags, e.MemAddr = EvLoad, info.MemAddr
			case info.IsStore:
				e.Flags, e.MemAddr = EvStore, info.MemAddr
			case info.IsBranch:
				e.Flags = EvBranch
				if info.Taken {
					e.Flags |= EvTaken
				}
			}
			evs[nev] = e
			nev++
		}
		return !st.Halted, nil
	}

	// Entry may land on the swallowed branch of a fused pair (a checkpoint
	// captured between the two): one reference step re-aligns to an op
	// boundary.
	oi := int(sb.opAt[st.PC])
	if oi < 0 {
		if retired >= stopAt || (rec && len(evs) == 0) {
			return c, 0, nil
		}
		cont, err := stepOne(st.PC)
		if err != nil || !cont {
			return c, nev, err
		}
		if st.PC < 0 || st.PC >= nInsts {
			// Mirror the step-wise loop: the branch retired, the error
			// surfaces at the next fetch.
			if retired >= stopAt {
				return c, nev, nil
			}
			return c, nev, fmt.Errorf("arch: PC %d outside program of %d instructions", st.PC, nInsts)
		}
		oi = int(sb.opAt[st.PC])
	}

	for {
		if retired >= stopAt {
			sync(opPC(ops, oi, nInsts))
			return c, nev, nil
		}
		if rec && len(evs)-nev < 2 {
			sync(opPC(ops, oi, nInsts))
			return c, nev, nil
		}
		if oi >= len(ops) {
			sync(nInsts)
			return c, nev, fmt.Errorf("arch: PC %d outside program of %d instructions", nInsts, nInsts)
		}
		o := &ops[oi]

		if o.code >= uNop {
			// Generic qualifying-predicate squash: retire with no effect.
			if vals[o.qp] == 0 {
				retired++
				if rec {
					evs[nev] = ExecEvent{Fetch: o.fetch}
					nev++
				}
				oi++
				continue
			}
		}

		evFlags := uint8(0)
		evAddr := uint32(0)

		switch o.code {
		case uBr:
			retired++
			c.Branches++
			taken := vals[o.qp] != 0
			if rec {
				f := EvBranch
				if taken {
					f |= EvTaken
				}
				evs[nev] = ExecEvent{Fetch: o.fetch, Flags: f}
				nev++
			}
			if taken {
				c.Taken++
				if o.tOp < 0 {
					sync(int(o.target))
					if retired >= stopAt {
						return c, nev, nil
					}
					return c, nev, fmt.Errorf("arch: PC %d outside program of %d instructions", int(o.target), nInsts)
				}
				oi = int(o.tOp)
			} else {
				oi++
			}
			continue

		case uCmpBr:
			if retired+2 > stopAt {
				// The pair would overshoot the boundary: execute the compare
				// alone through the reference interpreter.
				cont, err := stepOne(int(o.idx))
				if err != nil || !cont {
					return c, nev, err
				}
				oi = int(sb.opAt[st.PC]) // the swallowed branch: -1 handled at loop top via stop
				if oi < 0 {
					// retired == stopAt now by construction.
					return c, nev, nil
				}
				continue
			}
			t := cmpTrue(o.sub, vals[o.src1], vals[o.src2], o.imm)
			vals[o.dst] = isa.BoolWord(t)
			vals[o.dst2] = isa.BoolWord(!t)
			if natLive {
				nat[o.dst] = false
				nat[o.dst2] = false
				if nat[o.src1] || nat[o.src2] {
					nat[o.dst] = true
					nat[o.dst2n] = true
				}
			}
			retired += 2
			c.Branches++
			cond := t
			if o.flags&fBrOnDst2 != 0 {
				cond = !t
			}
			if rec {
				evs[nev] = ExecEvent{Fetch: o.fetch}
				f := EvBranch
				if cond {
					f |= EvTaken
				}
				evs[nev+1] = ExecEvent{Fetch: o.brFetch, Flags: f}
				nev += 2
			}
			if cond {
				c.Taken++
				if o.tOp < 0 {
					sync(int(o.target))
					if retired >= stopAt {
						return c, nev, nil
					}
					return c, nev, fmt.Errorf("arch: PC %d outside program of %d instructions", int(o.target), nInsts)
				}
				oi = int(o.tOp)
			} else {
				oi++
			}
			continue

		case uNop:
			// No architectural effect.

		case uHalt:
			retired++
			if rec {
				evs[nev] = ExecEvent{Fetch: o.fetch}
				nev++
			}
			st.Halted = true
			sync(int(o.idx) + 1)
			return c, nev, nil

		case uLd:
			addr := vals[o.src1].Uint32() + uint32(o.imm)
			var v isa.Word
			if off := addr & pageMask; off+uint32(o.sub) <= pageSize {
				pn := addr >> pageShift
				ti := pn & (tlbSize - 1)
				pg := tlbPG[ti]
				if pg == nil || tlbPN[ti] != pn {
					if pg = mem.page(addr, false); pg != nil {
						tlbPN[ti], tlbPG[ti] = pn, pg
					}
				}
				if pg != nil {
					switch o.sub {
					case 4:
						v = isa.Word(binary.LittleEndian.Uint32(pg[off:]))
					case 8:
						v = isa.Word(binary.LittleEndian.Uint64(pg[off:]))
					case 1:
						v = isa.Word(pg[off])
					default:
						v = isa.Word(binary.LittleEndian.Uint16(pg[off:]))
					}
				}
			} else {
				v = isa.Word(mem.Load(addr, int(o.sub)))
			}
			vals[o.dst] = v
			if natLive {
				nat[o.dst] = nat[o.src1]
			}
			c.Loads++
			evFlags, evAddr = EvLoad, addr

		case uLdD2:
			addr := vals[o.src1].Uint32() + uint32(o.imm)
			v := isa.Word(mem.Load(addr, int(o.sub)))
			vals[o.dst] = v
			vals[o.dst2] = isa.BoolWord(!v.Bool())
			if natLive {
				nat[o.dst] = nat[o.src1]
				nat[o.dst2] = false
			}
			c.Loads++
			evFlags, evAddr = EvLoad, addr

		case uSt:
			addr := vals[o.src1].Uint32() + uint32(o.imm)
			v := uint64(vals[o.src2])
			if off := addr & pageMask; off+uint32(o.sub) <= pageSize {
				pn := addr >> pageShift
				ti := pn & (tlbSize - 1)
				pg := tlbPG[ti]
				if pg == nil || tlbPN[ti] != pn {
					pg = mem.page(addr, true)
					tlbPN[ti], tlbPG[ti] = pn, pg
				}
				mem.markStore(addr)
				switch o.sub {
				case 4:
					binary.LittleEndian.PutUint32(pg[off:], uint32(v))
				case 8:
					binary.LittleEndian.PutUint64(pg[off:], v)
				case 1:
					pg[off] = byte(v)
				default:
					binary.LittleEndian.PutUint16(pg[off:], uint16(v))
				}
			} else {
				mem.Store(addr, int(o.sub), v)
			}
			c.Stores++
			evFlags, evAddr = EvStore, addr

		case uAdd:
			writeInt(&vals, &nat, natLive, o, isa.IntWord(vals[o.src1].Uint32()+vals[o.src2].Uint32()))
		case uSub:
			writeInt(&vals, &nat, natLive, o, isa.IntWord(vals[o.src1].Uint32()-vals[o.src2].Uint32()))
		case uAnd:
			writeInt(&vals, &nat, natLive, o, isa.IntWord(vals[o.src1].Uint32()&vals[o.src2].Uint32()))
		case uOr:
			writeInt(&vals, &nat, natLive, o, isa.IntWord(vals[o.src1].Uint32()|vals[o.src2].Uint32()))
		case uXor:
			writeInt(&vals, &nat, natLive, o, isa.IntWord(vals[o.src1].Uint32()^vals[o.src2].Uint32()))
		case uShl:
			writeInt(&vals, &nat, natLive, o, isa.IntWord(vals[o.src1].Uint32()<<(vals[o.src2].Uint32()&31)))
		case uShr:
			writeInt(&vals, &nat, natLive, o, isa.IntWord(vals[o.src1].Uint32()>>(vals[o.src2].Uint32()&31)))
		case uSar:
			writeInt(&vals, &nat, natLive, o, isa.IntWord(uint32(vals[o.src1].Int32()>>(vals[o.src2].Uint32()&31))))
		case uAddI:
			writeInt(&vals, &nat, natLive, o, isa.IntWord(vals[o.src1].Uint32()+uint32(o.imm)))
		case uSubI:
			writeInt(&vals, &nat, natLive, o, isa.IntWord(vals[o.src1].Uint32()-uint32(o.imm)))
		case uAndI:
			writeInt(&vals, &nat, natLive, o, isa.IntWord(vals[o.src1].Uint32()&uint32(o.imm)))
		case uOrI:
			writeInt(&vals, &nat, natLive, o, isa.IntWord(vals[o.src1].Uint32()|uint32(o.imm)))
		case uXorI:
			writeInt(&vals, &nat, natLive, o, isa.IntWord(vals[o.src1].Uint32()^uint32(o.imm)))
		case uShlI:
			writeInt(&vals, &nat, natLive, o, isa.IntWord(vals[o.src1].Uint32()<<(uint32(o.imm)&31)))
		case uShrI:
			writeInt(&vals, &nat, natLive, o, isa.IntWord(vals[o.src1].Uint32()>>(uint32(o.imm)&31)))
		case uSarI:
			writeInt(&vals, &nat, natLive, o, isa.IntWord(uint32(vals[o.src1].Int32()>>(uint32(o.imm)&31))))
		case uMov:
			writeInt(&vals, &nat, natLive, o, isa.IntWord(vals[o.src1].Uint32()))
		case uMovI:
			writeInt(&vals, &nat, natLive, o, isa.IntWord(uint32(o.imm)))

		case uCmp:
			t := cmpTrue(o.sub, vals[o.src1], vals[o.src2], o.imm)
			vals[o.dst] = isa.BoolWord(t)
			vals[o.dst2] = isa.BoolWord(!t)
			if natLive {
				nat[o.dst] = false
				nat[o.dst2] = false
				if nat[o.src1] || nat[o.src2] {
					nat[o.dst] = true
					nat[o.dst2n] = true
				}
			}

		case uMul:
			writeInt(&vals, &nat, natLive, o, isa.IntWord(vals[o.src1].Uint32()*vals[o.src2].Uint32()))
		case uDiv:
			a, b := vals[o.src1].Uint32(), vals[o.src2].Uint32()
			var v isa.Word
			if b == 0 {
				v = isa.IntWord(0)
			} else {
				v = isa.IntWord(uint32(int32(a) / int32(b)))
			}
			writeInt(&vals, &nat, natLive, o, v)
		case uRem:
			a, b := vals[o.src1].Uint32(), vals[o.src2].Uint32()
			var v isa.Word
			if b == 0 {
				v = isa.IntWord(a)
			} else {
				v = isa.IntWord(uint32(int32(a) % int32(b)))
			}
			writeInt(&vals, &nat, natLive, o, v)

		case uFAdd:
			writeInt(&vals, &nat, natLive, o, isa.FPWord(vals[o.src1].Float64()+vals[o.src2].Float64()))
		case uFSub:
			writeInt(&vals, &nat, natLive, o, isa.FPWord(vals[o.src1].Float64()-vals[o.src2].Float64()))
		case uFMul:
			writeInt(&vals, &nat, natLive, o, isa.FPWord(vals[o.src1].Float64()*vals[o.src2].Float64()))
		case uFDiv:
			writeInt(&vals, &nat, natLive, o, isa.FPWord(vals[o.src1].Float64()/vals[o.src2].Float64()))
		case uFMov:
			writeInt(&vals, &nat, natLive, o, vals[o.src1])
		case uFNeg:
			writeInt(&vals, &nat, natLive, o, isa.FPWord(-vals[o.src1].Float64()))
		case uCvtIF, uCvtFI, uEvalGen:
			// Rare conversions and irregular shapes go through isa.Eval so the
			// saturation corner cases live in exactly one place.
			v := isa.Eval(isa.Op(o.sub), vals[o.src1], vals[o.src2], o.imm)
			vals[o.dst] = v
			if o.code == uEvalGen {
				vals[o.dst2] = isa.BoolWord(!v.Bool())
			}
			if natLive {
				nat[o.dst] = false
				if o.code == uEvalGen {
					nat[o.dst2] = false
				}
				if nat[o.src1] || nat[o.src2] {
					nat[o.dst] = true
					nat[o.dst2n] = true
				}
			}
		}

		retired++
		if rec {
			evs[nev] = ExecEvent{Fetch: o.fetch, MemAddr: evAddr, Flags: evFlags}
			nev++
		}
		oi++
	}
}

// writeInt commits a single-destination result with NaT propagation from
// both sources, the common case for every ALU/FP op. NaT bookkeeping is
// skipped entirely when the state has no NaT bits live.
func writeInt(vals *[numSlots]isa.Word, nat *[numSlots]bool, natLive bool, o *sbOp, v isa.Word) {
	vals[o.dst] = v
	if natLive {
		nat[o.dst] = false
		if nat[o.src1] || nat[o.src2] {
			nat[o.dst] = true
			nat[o.dst2n] = true
		}
	}
}

// opPC returns the instruction index the op index corresponds to; one past
// the end of the op array maps to one past the program.
func opPC(ops []sbOp, oi, nInsts int) int {
	if oi >= len(ops) {
		return nInsts
	}
	return int(ops[oi].idx)
}

// Run interprets the pre-decoded program to completion on mem, with the
// same contract as the package-level Run.
func (sb *SBProgram) Run(mem *Memory, limit uint64) (*RunResult, error) {
	s := NewState(mem)
	res := &RunResult{State: s}
	for !s.Halted {
		if s.Retired >= limit {
			return res, fmt.Errorf("arch: instruction limit %d exceeded at PC %d", limit, s.PC)
		}
		c, err := sb.Exec(s, limit)
		res.Loads += c.Loads
		res.Stores += c.Stores
		res.Branches += c.Branches
		res.Taken += c.Taken
		if err != nil {
			return res, err
		}
	}
	return res, nil
}
