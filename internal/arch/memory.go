// Package arch holds the architectural (functional) machine state shared by
// every timing model: the register files, a sparse byte-addressable memory,
// and a reference interpreter. All pipelines commit through the same
// semantics, which is what makes the cross-model equivalence tests
// meaningful: any timing model that retires a different architectural result
// than the reference interpreter has a correctness bug.
package arch

import (
	"encoding/binary"
	"sort"

	"multipass/internal/isa"
)

const (
	pageShift = 12
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

// Memory is a sparse, little-endian, byte-addressable 32-bit memory.
// The zero value is an empty memory; unwritten bytes read as zero.
//
// A one-entry translation cache short-circuits the page-map lookup: the
// cycle loops touch memory with strong page locality (pointer chases stay in
// a record, streams walk lines), so most accesses hit the last page used.
type Memory struct {
	pages  map[uint32]*[pageSize]byte
	lastPN uint32
	lastPG *[pageSize]byte

	// Dirty-page tracking for delta checkpoint captures (TrackDirty /
	// CaptureDelta). dirty is nil unless tracking is enabled, so the only
	// cost on ordinary memories is one nil check per store. dirtyPN is a
	// one-entry mark cache: stores have strong page locality, so most marks
	// hit the page already recorded.
	dirty   map[uint32]struct{}
	dirtyPN uint32
	dirtyOK bool
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint32]*[pageSize]byte)}
}

// Clone returns a deep copy of the memory, used to give each timing model an
// identical initial image.
func (m *Memory) Clone() *Memory {
	c := NewMemory()
	for pn, pg := range m.pages {
		cp := *pg
		c.pages[pn] = &cp
	}
	return c
}

func (m *Memory) page(addr uint32, create bool) *[pageSize]byte {
	pn := addr >> pageShift
	if m.lastPG != nil && m.lastPN == pn {
		return m.lastPG
	}
	if m.pages == nil {
		if !create {
			return nil
		}
		m.pages = make(map[uint32]*[pageSize]byte)
	}
	pg := m.pages[pn]
	if pg == nil {
		if !create {
			return nil
		}
		pg = new([pageSize]byte)
		m.pages[pn] = pg
	}
	m.lastPN = pn
	m.lastPG = pg
	return pg
}

// TrackDirty enables dirty-page tracking: from now on every store records
// its page, and CaptureDelta can snapshot the memory at a cost proportional
// to the pages written since the previous capture rather than the full
// image. Tracking stays enabled for the memory's lifetime.
func (m *Memory) TrackDirty() {
	if m.dirty == nil {
		m.dirty = make(map[uint32]struct{})
	}
}

// markStore records addr's page as dirty. Every store entry point calls it;
// on memories without tracking it is a nil check.
func (m *Memory) markStore(addr uint32) {
	if m.dirty == nil {
		return
	}
	pn := addr >> pageShift
	if m.dirtyOK && m.dirtyPN == pn {
		return
	}
	m.dirty[pn] = struct{}{}
	m.dirtyPN, m.dirtyOK = pn, true
}

// CaptureDelta returns an immutable snapshot of the memory for checkpoint
// use. With prev == nil (or tracking disabled) it is a full deep copy.
// Otherwise prev must be the snapshot returned by the previous CaptureDelta
// on this memory: pages untouched since then are shared with prev by
// pointer, and only pages dirtied in between are copied fresh, so capture
// cost follows the store stream, not the image size. The dirty set resets on
// every capture.
//
// Snapshots are read-only by contract: every checkpoint consumer Clones the
// snapshot before executing on it. Writing through a snapshot would corrupt
// the pages it shares with its predecessors.
func (m *Memory) CaptureDelta(prev *Memory) *Memory {
	if m.dirty == nil || prev == nil {
		c := m.Clone()
		if m.dirty != nil {
			m.dirty = make(map[uint32]struct{})
			m.dirtyOK = false
		}
		return c
	}
	c := &Memory{pages: make(map[uint32]*[pageSize]byte, len(m.pages))}
	for pn, pg := range prev.pages {
		c.pages[pn] = pg
	}
	for pn := range m.dirty {
		if pg := m.pages[pn]; pg != nil {
			cp := *pg
			c.pages[pn] = &cp
		}
	}
	m.dirty = make(map[uint32]struct{})
	m.dirtyOK = false
	return c
}

// LoadByte reads one byte.
func (m *Memory) LoadByte(addr uint32) byte {
	pg := m.page(addr, false)
	if pg == nil {
		return 0
	}
	return pg[addr&pageMask]
}

// StoreByte writes one byte.
func (m *Memory) StoreByte(addr uint32, v byte) {
	m.markStore(addr)
	m.page(addr, true)[addr&pageMask] = v
}

// Load reads an n-byte little-endian value (n in 1..8). Accesses contained
// in one page decode straight out of the page; only page-straddling accesses
// fall back to the byte loop.
func (m *Memory) Load(addr uint32, n int) uint64 {
	if off := int(addr & pageMask); off+n <= pageSize {
		pg := m.page(addr, false)
		if pg == nil {
			return 0
		}
		switch n {
		case 4:
			return uint64(binary.LittleEndian.Uint32(pg[off:]))
		case 8:
			return binary.LittleEndian.Uint64(pg[off:])
		case 1:
			return uint64(pg[off])
		case 2:
			return uint64(binary.LittleEndian.Uint16(pg[off:]))
		}
		var v uint64
		for i := 0; i < n; i++ {
			v |= uint64(pg[off+i]) << (8 * i)
		}
		return v
	}
	var v uint64
	for i := 0; i < n; i++ {
		v |= uint64(m.LoadByte(addr+uint32(i))) << (8 * i)
	}
	return v
}

// Store writes an n-byte little-endian value (n in 1..8), with the same
// single-page fast path as Load.
func (m *Memory) Store(addr uint32, n int, v uint64) {
	if off := int(addr & pageMask); off+n <= pageSize {
		m.markStore(addr)
		pg := m.page(addr, true)
		switch n {
		case 4:
			binary.LittleEndian.PutUint32(pg[off:], uint32(v))
			return
		case 8:
			binary.LittleEndian.PutUint64(pg[off:], v)
			return
		case 1:
			pg[off] = byte(v)
			return
		case 2:
			binary.LittleEndian.PutUint16(pg[off:], uint16(v))
			return
		}
		for i := 0; i < n; i++ {
			pg[off+i] = byte(v >> (8 * i))
		}
		return
	}
	for i := 0; i < n; i++ {
		m.StoreByte(addr+uint32(i), byte(v>>(8*i)))
	}
}

// LoadWord performs the load operation op at addr and returns the
// register-file image of the result (zero-extended for integer loads, raw
// bits for FP loads).
func (m *Memory) LoadWord(op isa.Op, addr uint32) isa.Word {
	return isa.Word(m.Load(addr, op.MemBytes()))
}

// StoreWord performs the store operation op at addr with register value v.
func (m *Memory) StoreWord(op isa.Op, addr uint32, v isa.Word) {
	m.Store(addr, op.MemBytes(), uint64(v))
}

// Equal reports whether two memories have identical contents.
func (m *Memory) Equal(o *Memory) bool {
	return m.subsetOf(o) && o.subsetOf(m)
}

func (m *Memory) subsetOf(o *Memory) bool {
	for pn, pg := range m.pages {
		opg := o.pages[pn]
		for i := range pg {
			var ob byte
			if opg != nil {
				ob = opg[i]
			}
			if pg[i] != ob {
				return false
			}
		}
	}
	return true
}

// FootprintBytes returns the number of bytes in allocated pages, a coarse
// measure of a workload's data footprint.
func (m *Memory) FootprintBytes() int { return len(m.pages) * pageSize }

// WordDiff is one differing aligned 32-bit word between two memories, for
// divergence diagnostics.
type WordDiff struct {
	Addr uint32
	A, B uint32
}

// DiffWords returns up to limit aligned words that differ between m and o, in
// ascending address order. Unallocated pages compare as zero.
func (m *Memory) DiffWords(o *Memory, limit int) []WordDiff {
	pns := make(map[uint32]bool, len(m.pages)+len(o.pages))
	for pn := range m.pages {
		pns[pn] = true
	}
	for pn := range o.pages {
		pns[pn] = true
	}
	sorted := make([]uint32, 0, len(pns))
	for pn := range pns {
		sorted = append(sorted, pn)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	var out []WordDiff
	var zero [pageSize]byte
	for _, pn := range sorted {
		a, b := m.pages[pn], o.pages[pn]
		if a == nil {
			a = &zero
		}
		if b == nil {
			b = &zero
		}
		for off := 0; off < pageSize; off += 4 {
			wa := binary.LittleEndian.Uint32(a[off:])
			wb := binary.LittleEndian.Uint32(b[off:])
			if wa != wb {
				out = append(out, WordDiff{Addr: pn<<pageShift | uint32(off), A: wa, B: wb})
				if len(out) >= limit {
					return out
				}
			}
		}
	}
	return out
}
