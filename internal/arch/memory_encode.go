package arch

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

// Binary memory-image format: a fixed 8-byte magic, a page count, then per
// page a 4-byte page number followed by the raw 4096-byte page. Pages are
// written in ascending page-number order so the encoding of a given memory
// is deterministic — the fabric's program-bundle content hashes depend on
// that. All integers little-endian; versioned through the magic string.

var memoryMagic = [8]byte{'M', 'P', 'M', 'E', 'M', '0', '1', '\n'}

// MarshalBinary serializes the memory image deterministically.
func (m *Memory) MarshalBinary() ([]byte, error) {
	pns := make([]uint32, 0, len(m.pages))
	for pn := range m.pages {
		pns = append(pns, pn)
	}
	sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })

	var buf bytes.Buffer
	buf.Grow(len(memoryMagic) + 4 + len(pns)*(4+pageSize))
	buf.Write(memoryMagic[:])
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(pns)))
	buf.Write(u32[:])
	for _, pn := range pns {
		binary.LittleEndian.PutUint32(u32[:], pn)
		buf.Write(u32[:])
		buf.Write(m.pages[pn][:])
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary deserializes an image written by MarshalBinary,
// replacing the memory's contents.
func (m *Memory) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil || magic != memoryMagic {
		return fmt.Errorf("arch: bad memory magic")
	}
	var u32 [4]byte
	if _, err := io.ReadFull(r, u32[:]); err != nil {
		return fmt.Errorf("arch: truncated memory image: %w", err)
	}
	n := binary.LittleEndian.Uint32(u32[:])
	if n > 1<<20 {
		return fmt.Errorf("arch: unreasonable page count %d", n)
	}
	pages := make(map[uint32]*[pageSize]byte, n)
	for i := uint32(0); i < n; i++ {
		if _, err := io.ReadFull(r, u32[:]); err != nil {
			return fmt.Errorf("arch: truncated memory image: %w", err)
		}
		pn := binary.LittleEndian.Uint32(u32[:])
		if _, dup := pages[pn]; dup {
			return fmt.Errorf("arch: duplicate page %d in memory image", pn)
		}
		pg := new([pageSize]byte)
		if _, err := io.ReadFull(r, pg[:]); err != nil {
			return fmt.Errorf("arch: truncated memory image: %w", err)
		}
		pages[pn] = pg
	}
	if r.Len() != 0 {
		return fmt.Errorf("arch: %d trailing bytes in memory image", r.Len())
	}
	m.pages = pages
	m.lastPG = nil
	m.lastPN = 0
	return nil
}
