package arch

import (
	"testing"
	"testing/quick"

	"multipass/internal/isa"
)

func TestMemoryBasics(t *testing.T) {
	m := NewMemory()
	if m.LoadByte(0x1234) != 0 {
		t.Error("unwritten memory should read zero")
	}
	m.Store(0x100, 4, 0xdeadbeef)
	if got := m.Load(0x100, 4); got != 0xdeadbeef {
		t.Errorf("Load = %#x", got)
	}
	// Little-endian byte order.
	if m.LoadByte(0x100) != 0xef || m.LoadByte(0x103) != 0xde {
		t.Error("not little-endian")
	}
	// Sub-word loads.
	if m.Load(0x100, 2) != 0xbeef {
		t.Error("2-byte load")
	}
	if m.Load(0x102, 1) != 0xad {
		t.Error("1-byte load")
	}
}

func TestMemoryCrossPage(t *testing.T) {
	m := NewMemory()
	addr := uint32(pageSize - 2) // straddles page boundary
	m.Store(addr, 4, 0x11223344)
	if got := m.Load(addr, 4); got != 0x11223344 {
		t.Errorf("cross-page load = %#x", got)
	}
}

func TestMemoryCloneAndEqual(t *testing.T) {
	m := NewMemory()
	m.Store(0x40, 4, 42)
	c := m.Clone()
	if !m.Equal(c) {
		t.Fatal("clone should be equal")
	}
	c.Store(0x40, 4, 43)
	if m.Equal(c) {
		t.Fatal("diverged memories should not be equal")
	}
	if m.Load(0x40, 4) != 42 {
		t.Fatal("clone write leaked into original")
	}
	// A page of explicit zeroes equals an untouched page.
	a, b := NewMemory(), NewMemory()
	a.Store(0x9000, 4, 0)
	if !a.Equal(b) || !b.Equal(a) {
		t.Error("explicit zero page should equal absent page")
	}
}

func TestMemoryRoundTripQuick(t *testing.T) {
	m := NewMemory()
	f := func(addr uint32, v uint64, nRaw uint8) bool {
		n := int(nRaw%8) + 1
		mask := ^uint64(0)
		if n < 8 {
			mask = (1 << (8 * n)) - 1
		}
		m.Store(addr, n, v)
		return m.Load(addr, n) == v&mask
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegFileHardwired(t *testing.T) {
	rf := NewRegFile()
	if rf.Read(isa.R0) != 0 {
		t.Error("r0 should read zero")
	}
	if !rf.Read(isa.P0).Bool() {
		t.Error("p0 should read true")
	}
	rf.Write(isa.R0, 99)
	rf.Write(isa.P0, 0)
	if rf.Read(isa.R0) != 0 || !rf.Read(isa.P0).Bool() {
		t.Error("hardwired registers must ignore writes")
	}
	rf.WriteNaT(isa.R0)
	if rf.ReadNaT(isa.R0) {
		t.Error("hardwired register must ignore NaT writes")
	}
}

func TestRegFileNaT(t *testing.T) {
	rf := NewRegFile()
	r := isa.IntReg(5)
	rf.WriteNaT(r)
	if !rf.ReadNaT(r) {
		t.Error("NaT not set")
	}
	rf.Write(r, 1)
	if rf.ReadNaT(r) {
		t.Error("value write should clear NaT")
	}
}

func TestRegFileDiff(t *testing.T) {
	a, b := NewRegFile(), NewRegFile()
	if !a.Equal(b) {
		t.Fatal("fresh regfiles should be equal")
	}
	b.Write(isa.IntReg(3), 7)
	b.Write(isa.FPReg(2), isa.FPWord(1.5))
	d := a.Diff(b)
	if len(d) != 2 || d[0] != isa.IntReg(3) || d[1] != isa.FPReg(2) {
		t.Errorf("Diff = %v", d)
	}
	if a.Equal(b) {
		t.Error("Equal after divergence")
	}
}

// The reference interpreter runs the assembler's array-sum sample.
func TestInterpArraySum(t *testing.T) {
	p := isa.MustAssemble(`
	movi r1 = 0
	movi r2 = 0x100
	movi r3 = 8
loop:
	ld4 r4 = [r2]
	add r1 = r1, r4
	addi r2 = r2, 4
	subi r3 = r3, 1
	cmpi.ne p1, p2 = r3, 0 ;;
	(p1) br loop
	st4 [r2+100] = r1
	halt
`)
	mem := NewMemory()
	want := uint32(0)
	for i := 0; i < 8; i++ {
		mem.Store(uint32(0x100+4*i), 4, uint64(i*i+1))
		want += uint32(i*i + 1)
	}
	res, err := Run(p, mem, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.State.RF.Read(isa.IntReg(1)).Uint32(); got != want {
		t.Errorf("sum = %d, want %d", got, want)
	}
	// Final store lands at end-of-array base + 100.
	if got := uint32(mem.Load(0x100+32+100, 4)); got != want {
		t.Errorf("stored sum = %d, want %d", got, want)
	}
	if res.Loads != 8 || res.Stores != 1 {
		t.Errorf("loads/stores = %d/%d", res.Loads, res.Stores)
	}
	if res.Branches != 8 || res.Taken != 7 {
		t.Errorf("branches/taken = %d/%d", res.Branches, res.Taken)
	}
}

func TestInterpPredication(t *testing.T) {
	p := isa.MustAssemble(`
	movi r1 = 5
	movi r2 = 10
	cmp.lt p1, p2 = r1, r2 ;;
	(p1) movi r3 = 111
	(p2) movi r3 = 222
	halt
`)
	res, err := Run(p, NewMemory(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.State.RF.Read(isa.IntReg(3)).Uint32(); got != 111 {
		t.Errorf("r3 = %d, want 111 (p2 path must be squashed)", got)
	}
	if !res.State.RF.Read(isa.PredReg(1)).Bool() || res.State.RF.Read(isa.PredReg(2)).Bool() {
		t.Error("compare must write complementary predicates")
	}
}

func TestInterpLimit(t *testing.T) {
	p := isa.MustAssemble("loop: jmp loop\nhalt\n")
	if _, err := Run(p, NewMemory(), 100); err == nil {
		t.Error("infinite loop should exceed limit")
	}
}

func TestInterpFP(t *testing.T) {
	p := isa.MustAssemble(`
	movi r1 = 3
	movi r2 = 0x200
	cvt.if f1 = r1
	fadd f2 = f1, f1
	fmul f3 = f2, f1
	stf [r2] = f3
	ldf f4 = [r2]
	fcmp.lt p1, p2 = f1, f4
	halt
`)
	res, err := Run(p, NewMemory(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.State.RF.Read(isa.FPReg(3)).Float64(); got != 18.0 {
		t.Errorf("f3 = %v, want 18", got)
	}
	if got := res.State.RF.Read(isa.FPReg(4)).Float64(); got != 18.0 {
		t.Errorf("f4 = %v, want 18 (stf/ldf round trip)", got)
	}
	if !res.State.RF.Read(isa.PredReg(1)).Bool() {
		t.Error("3 < 18 should set p1")
	}
}

func TestStepErrors(t *testing.T) {
	p := isa.MustAssemble("halt")
	s := NewState(NewMemory())
	s.PC = 5
	if _, err := s.Step(p); err == nil {
		t.Error("out-of-range PC accepted")
	}
	s.PC = 0
	if _, err := s.Step(p); err != nil {
		t.Fatal(err)
	}
	if !s.Halted {
		t.Fatal("halt did not halt")
	}
	if _, err := s.Step(p); err == nil {
		t.Error("step after halt accepted")
	}
}
