package arch

import (
	"bytes"
	"testing"
)

// TestMemoryEncodeRoundTrip: a sparse memory image survives
// MarshalBinary/UnmarshalBinary byte-for-byte, including pages far apart in
// the address space, and the encoding itself is deterministic.
func TestMemoryEncodeRoundTrip(t *testing.T) {
	m := NewMemory()
	// Touch several pages, including non-adjacent ones and a page boundary
	// straddle, so the round trip exercises the sparse layout.
	m.Store(0x0000, 8, 0x0123456789abcdef)
	m.Store(0x0ffc, 8, 0xfeedface55aa33cc) // straddles pages 0 and 1
	m.Store(0x8000, 4, 0xdeadbeef)
	m.Store(0xfff000, 2, 0xbeef)

	data, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	again, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Error("MarshalBinary is not deterministic")
	}

	got := NewMemory()
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Error("decoded memory differs from the original")
	}
	for _, addr := range []uint32{0x0000, 0x0ffc, 0x8000, 0xfff000} {
		if got.Load(addr, 8) != m.Load(addr, 8) {
			t.Errorf("addr %#x: decoded %#x, want %#x", addr, got.Load(addr, 8), m.Load(addr, 8))
		}
	}
}

// TestMemoryEncodeEmpty: an untouched memory round-trips to an untouched
// memory.
func TestMemoryEncodeEmpty(t *testing.T) {
	data, err := NewMemory().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got := NewMemory()
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got.FootprintBytes() != 0 {
		t.Errorf("decoded empty memory has %d footprint bytes", got.FootprintBytes())
	}
}

// TestMemoryDecodeRejectsCorruption: the decoder refuses bad magic,
// truncation, and trailing garbage rather than building a wrong image.
func TestMemoryDecodeRejectsCorruption(t *testing.T) {
	m := NewMemory()
	m.Store(0x1000, 8, 0x1122334455667788)
	data, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		"bad magic":  append([]byte("XXXXXXXX"), data[8:]...),
		"truncated":  data[:len(data)-10],
		"trailing":   append(append([]byte{}, data...), 0xff),
		"empty blob": {},
	}
	for name, blob := range cases {
		if err := NewMemory().UnmarshalBinary(blob); err == nil {
			t.Errorf("%s: UnmarshalBinary accepted corrupt input", name)
		}
	}
}
