package arch

import (
	"fmt"
	"strings"
	"testing"

	"multipass/internal/isa"
	"multipass/internal/xcheck/progen"
)

// mustAssemble builds a program from assembler text.
func mustAssemble(t testing.TB, src string) *isa.Program {
	t.Helper()
	p, err := isa.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

// loopSrc is a small counted loop with the hot fused pattern (compare
// feeding the back-edge branch), a predicated store, and memory traffic.
const loopSrc = `
	movi r1 = 200
	movi r2 = 0
	movi r3 = 4096
loop:
	ld4 r4 = [r3+0]
	add r2 = r2, r4
	st4 [r3+4] = r2
	cmpi.ltu p1, p2 = r2, 1000
	(p2) st4 [r3+8] = r1
	subi r1 = r1, 1
	cmpi.ne p3, p4 = r1, 0
	(p3) br loop
	halt
`

// runBoth executes p on identical images through the step-wise reference
// and the superblock interpreter and requires byte-identical outcomes.
func runBoth(t *testing.T, p *isa.Program, image *Memory, limit uint64) (*RunResult, *RunResult) {
	t.Helper()
	ref, refErr := RunStepwise(p, image.Clone(), limit)
	got, gotErr := Run(p, image.Clone(), limit)
	if (refErr == nil) != (gotErr == nil) || (refErr != nil && refErr.Error() != gotErr.Error()) {
		t.Fatalf("error mismatch: stepwise=%v superblock=%v", refErr, gotErr)
	}
	compareRuns(t, ref, got)
	return ref, got
}

func compareRuns(t *testing.T, ref, got *RunResult) {
	t.Helper()
	if !ref.State.RF.Equal(got.State.RF) {
		t.Fatalf("register files differ: %v", ref.State.RF.Diff(got.State.RF))
	}
	if !ref.State.Mem.Equal(got.State.Mem) {
		t.Fatalf("memories differ: %v", ref.State.Mem.DiffWords(got.State.Mem, 4))
	}
	if ref.State.Retired != got.State.Retired || ref.State.PC != got.State.PC || ref.State.Halted != got.State.Halted {
		t.Fatalf("state differs: retired %d/%d pc %d/%d halted %v/%v",
			ref.State.Retired, got.State.Retired, ref.State.PC, got.State.PC, ref.State.Halted, got.State.Halted)
	}
	if ref.Loads != got.Loads || ref.Stores != got.Stores || ref.Branches != got.Branches || ref.Taken != got.Taken {
		t.Fatalf("counts differ: loads %d/%d stores %d/%d branches %d/%d taken %d/%d",
			ref.Loads, got.Loads, ref.Stores, got.Stores, ref.Branches, got.Branches, ref.Taken, got.Taken)
	}
}

func TestSuperblockLoopMatchesStepwise(t *testing.T) {
	p := mustAssemble(t, loopSrc)
	image := NewMemory()
	image.Store(4096, 4, 7)
	ref, _ := runBoth(t, p, image, 1<<20)
	if !ref.State.Halted || ref.Loads == 0 || ref.Stores == 0 || ref.Taken == 0 {
		t.Fatalf("loop did not exercise the interesting paths: %+v", ref)
	}
}

// TestSuperblockEveryStopBoundary splits the superblock run at every
// possible retired count — including boundaries landing between the two
// halves of a fused pair — and requires each prefix-and-resume execution to
// land exactly on the step-wise trajectory.
func TestSuperblockEveryStopBoundary(t *testing.T) {
	p := mustAssemble(t, loopSrc)
	image := NewMemory()
	image.Store(4096, 4, 7)
	ref, err := RunStepwise(p, image.Clone(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	n := ref.State.Retired
	sb := NewSBProgram(p)
	for cut := uint64(0); cut <= n; cut += 1 {
		st := NewState(image.Clone())
		var c1, c2 ExecCounts
		c1, err := sb.Exec(st, cut)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if st.Retired != cut && !st.Halted {
			t.Fatalf("cut %d: stopped at %d", cut, st.Retired)
		}
		// Cross-check the prefix state against a step-wise prefix.
		pst := NewState(image.Clone())
		for pst.Retired < cut && !pst.Halted {
			if _, err := pst.Step(p); err != nil {
				t.Fatalf("cut %d: %v", cut, err)
			}
		}
		if !pst.RF.Equal(st.RF) || pst.PC != st.PC || pst.Retired != st.Retired {
			t.Fatalf("cut %d: prefix state diverged (pc %d/%d retired %d/%d)",
				cut, pst.PC, st.PC, pst.Retired, st.Retired)
		}
		if !st.Halted {
			c2, err = sb.Exec(st, 1<<62)
			if err != nil {
				t.Fatalf("cut %d resume: %v", cut, err)
			}
		}
		got := &RunResult{State: st,
			Loads:    c1.Loads + c2.Loads,
			Stores:   c1.Stores + c2.Stores,
			Branches: c1.Branches + c2.Branches,
			Taken:    c1.Taken + c2.Taken,
		}
		compareRuns(t, ref, got)
	}
}

func TestSuperblockFusionOnComplement(t *testing.T) {
	// The branch predicated on the compare's complement (Dst2) must take the
	// inverted condition.
	src := `
	movi r1 = 5
loop:
	subi r1 = r1, 1
	cmpi.eq p1, p2 = r1, 0
	(p2) br loop
	halt
`
	p := mustAssemble(t, src)
	ref, _ := runBoth(t, p, NewMemory(), 1<<16)
	if got := ref.State.RF.Read(isa.IntReg(1)).Uint32(); got != 0 {
		t.Fatalf("r1 = %d, want 0", got)
	}
}

func TestSuperblockNoFusionAcrossLeader(t *testing.T) {
	// The branch at `back` is itself a branch target, so the preceding
	// compare must not swallow it; jumping to `back` re-evaluates only the
	// branch with whatever predicate value is live.
	src := `
	movi r1 = 3
	movi r2 = 0
loop:
	addi r2 = r2, 1
	cmpi.lt p1, p2 = r2, 10
back:
	(p1) br loop
	subi r1 = r1, 1
	cmpi.ne p3, p4 = r1, 0
	(p3) br back
	halt
`
	p := mustAssemble(t, src)
	sb := NewSBProgram(p)
	for i := range p.Insts {
		if sb.opAt[i] < 0 {
			in := &p.Insts[i-1]
			if !isCompareOp(in.Op) {
				t.Fatalf("inst %d swallowed by non-compare", i)
			}
		}
	}
	runBoth(t, p, NewMemory(), 1<<16)
}

func TestSuperblockSquashAndHardwired(t *testing.T) {
	// Predicated-false ops must retire with no effect; destinations r0/p0
	// must discard writes; compares targeting p0 keep the complement.
	src := `
	movi r1 = 1
	cmpi.eq p1, p2 = r1, 99
	(p1) movi r2 = 111
	(p2) movi r3 = 222
	cmpi.eq p0, p5 = r1, 1
	(p5) movi r4 = 333
	add r0 = r1, r1
	(p1) halt
	halt
`
	p := mustAssemble(t, src)
	ref, _ := runBoth(t, p, NewMemory(), 1<<16)
	rf := ref.State.RF
	if rf.Read(isa.IntReg(2)).Uint32() != 0 || rf.Read(isa.IntReg(3)).Uint32() != 222 {
		t.Fatal("squash semantics broken")
	}
	if rf.Read(isa.IntReg(4)).Uint32() != 0 {
		t.Fatal("complement of a p0-destination compare leaked")
	}
	if rf.Read(isa.R0) != 0 || !rf.Read(isa.P0).Bool() {
		t.Fatal("hardwired register clobbered")
	}
}

func TestSuperblockNaTPropagation(t *testing.T) {
	// NaT bits flow through ALU ops, compares (both destinations), and
	// loads (address register only), and are cleared by non-NaT writes.
	src := `
	add r2 = r1, r0
	cmp.eq p1, p2 = r2, r0
	ld4 r3 = [r2+4096]
	movi r2 = 7
	halt
`
	p := mustAssemble(t, src)
	run := func(step bool) *State {
		st := NewState(NewMemory())
		st.RF.WriteNaT(isa.IntReg(1))
		if step {
			for !st.Halted {
				if _, err := st.Step(p); err != nil {
					t.Fatal(err)
				}
			}
		} else {
			if _, err := NewSBProgram(p).Exec(st, 1<<20); err != nil {
				t.Fatal(err)
			}
		}
		return st
	}
	ref, got := run(true), run(false)
	if !ref.RF.Equal(got.RF) {
		t.Fatalf("NaT handling diverged: %v", ref.RF.Diff(got.RF))
	}
	if !ref.RF.ReadNaT(isa.PredReg(1)) || !ref.RF.ReadNaT(isa.PredReg(2)) || !ref.RF.ReadNaT(isa.IntReg(3)) {
		t.Fatal("expected NaT to propagate to p1, p2, r3")
	}
	if ref.RF.ReadNaT(isa.IntReg(2)) {
		t.Fatal("movi should have cleared r2's NaT")
	}
}

func TestSuperblockErrorParity(t *testing.T) {
	// Limit overrun and runaway PC must produce the same errors as the
	// step-wise loop, at the same state.
	p := mustAssemble(t, loopSrc)
	image := NewMemory()
	for _, limit := range []uint64{0, 1, 5, 17} {
		ref, refErr := RunStepwise(p, image.Clone(), limit)
		got, gotErr := Run(p, image.Clone(), limit)
		if refErr == nil || gotErr == nil || refErr.Error() != gotErr.Error() {
			t.Fatalf("limit %d: stepwise=%v superblock=%v", limit, refErr, gotErr)
		}
		compareRuns(t, ref, got)
	}
	// A program that falls off the end.
	off := &isa.Program{Insts: []isa.Inst{
		{Op: isa.OpAddI, QP: isa.P0, Dst: isa.IntReg(1), Src1: isa.IntReg(1), Imm: 1},
	}}
	ref, refErr := RunStepwise(off, NewMemory(), 10)
	got, gotErr := Run(off, NewMemory(), 10)
	if refErr == nil || gotErr == nil || refErr.Error() != gotErr.Error() {
		t.Fatalf("fall-off: stepwise=%v superblock=%v", refErr, gotErr)
	}
	compareRuns(t, ref, got)
}

// TestSuperblockExecTraceEvents replays the event stream against the
// step-wise StepInfo sequence: same fetch addresses, same classification,
// same effective addresses, in the same retire order.
func TestSuperblockExecTraceEvents(t *testing.T) {
	p := mustAssemble(t, loopSrc)
	image := NewMemory()
	image.Store(4096, 4, 7)

	var want []ExecEvent
	st := NewState(image.Clone())
	for !st.Halted {
		idx := st.PC
		info, err := st.Step(p)
		if err != nil {
			t.Fatal(err)
		}
		e := ExecEvent{Fetch: isa.InstAddr(idx)}
		switch {
		case info.IsLoad:
			e.Flags, e.MemAddr = EvLoad, info.MemAddr
		case info.IsStore:
			e.Flags, e.MemAddr = EvStore, info.MemAddr
		case info.IsBranch:
			e.Flags = EvBranch
			if info.Taken {
				e.Flags |= EvTaken
			}
		}
		want = append(want, e)
	}

	sb := NewSBProgram(p)
	// A deliberately awkward buffer size forces chunk boundaries at varying
	// positions relative to fused pairs.
	for _, bufSize := range []int{2, 3, 7, 64, len(want) + 8} {
		var got []ExecEvent
		gst := NewState(image.Clone())
		buf := make([]ExecEvent, bufSize)
		for !gst.Halted {
			_, n, err := sb.ExecTrace(gst, 1<<62, buf)
			if err != nil {
				t.Fatal(err)
			}
			if n == 0 && !gst.Halted {
				t.Fatalf("bufSize %d: no progress", bufSize)
			}
			got = append(got, buf[:n]...)
		}
		if len(got) != len(want) {
			t.Fatalf("bufSize %d: %d events, want %d", bufSize, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("bufSize %d: event %d = %+v, want %+v", bufSize, i, got[i], want[i])
			}
		}
		if gst.Retired != uint64(len(want)) {
			t.Fatalf("bufSize %d: retired %d", bufSize, gst.Retired)
		}
	}
}

// TestSuperblockProgenDifferential runs generated programs through both
// interpreters; the heavyweight version (every corpus seed, all models)
// lives in internal/xcheck.
func TestSuperblockProgenDifferential(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		opts := progen.ForSeed(seed)
		p := progen.MustGenerate(opts)
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runBoth(t, p, NewMemory(), 1<<22)
		})
	}
}

func TestSuperblockFusionHappens(t *testing.T) {
	// Sanity-check the optimization is actually firing on the hot pattern:
	// loopSrc has two fusible compare+branch pairs.
	p := mustAssemble(t, loopSrc)
	sb := NewSBProgram(p)
	fused := 0
	for i := range sb.ops {
		if sb.ops[i].code == uCmpBr {
			fused++
		}
	}
	if fused != 1 {
		// Only the back-edge pair fuses: the (p2) store after the first
		// compare blocks fusion there.
		t.Fatalf("fused %d pairs, want 1", fused)
	}
	if !strings.Contains(loopSrc, "(p3) br loop") {
		t.Fatal("test source changed; update expectations")
	}
}

func BenchmarkRunStepwise(b *testing.B) {
	p := mustAssemble(b, loopSrc)
	image := NewMemory()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunStepwise(p, image.Clone(), 1<<30); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunSuperblock(b *testing.B) {
	p := mustAssemble(b, loopSrc)
	image := NewMemory()
	sb := NewSBProgram(p)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sb.Run(image.Clone(), 1<<30); err != nil {
			b.Fatal(err)
		}
	}
}
