package arch

import (
	"testing"

	"multipass/internal/isa"
)

// NaT bits propagate from sources to destinations through computation and
// loads (deferred speculative exceptions, paper §4's "additional NaT bit").
func TestNaTPropagation(t *testing.T) {
	p := isa.MustAssemble(`
	movi r1 = 5
	add r2 = r1, r1
	add r3 = r2, r2
	ld4 r4 = [r2]
	halt
`)
	s := NewState(NewMemory())
	// Poison r1 before execution begins.
	if _, err := s.Step(p); err != nil { // movi r1: clears NaT
		t.Fatal(err)
	}
	s.RF.WriteNaT(isa.IntReg(1))
	for !s.Halted {
		if _, err := s.Step(p); err != nil {
			t.Fatal(err)
		}
	}
	if !s.RF.ReadNaT(isa.IntReg(2)) {
		t.Error("NaT did not propagate through add")
	}
	if !s.RF.ReadNaT(isa.IntReg(3)) {
		t.Error("NaT did not propagate transitively")
	}
	if !s.RF.ReadNaT(isa.IntReg(4)) {
		t.Error("NaT did not propagate through the load's address")
	}
}

func TestNaTClearedByCleanWrite(t *testing.T) {
	p := isa.MustAssemble(`
	movi r1 = 5
	movi r2 = 6
	add r3 = r1, r2
	halt
`)
	s := NewState(NewMemory())
	s.RF.WriteNaT(isa.IntReg(3)) // stale NaT from "before"
	for !s.Halted {
		if _, err := s.Step(p); err != nil {
			t.Fatal(err)
		}
	}
	if s.RF.ReadNaT(isa.IntReg(3)) {
		t.Error("clean write did not clear NaT")
	}
	if got := s.RF.Read(isa.IntReg(3)).Uint32(); got != 11 {
		t.Errorf("r3 = %d", got)
	}
}

// Squashed instructions do not propagate NaT (they have no effect at all).
func TestNaTNotPropagatedWhenSquashed(t *testing.T) {
	p := isa.MustAssemble(`
	movi r1 = 5
	movi r4 = 1
	cmpi.eq p1, p2 = r4, 0 ;;
	(p1) add r2 = r1, r1
	halt
`)
	s := NewState(NewMemory())
	// Step movi r1 then poison it.
	if _, err := s.Step(p); err != nil {
		t.Fatal(err)
	}
	s.RF.WriteNaT(isa.IntReg(1))
	for !s.Halted {
		if _, err := s.Step(p); err != nil {
			t.Fatal(err)
		}
	}
	if s.RF.ReadNaT(isa.IntReg(2)) {
		t.Error("squashed instruction propagated NaT")
	}
}
