package arch

import "multipass/internal/isa"

// RegFile is one architectural register file image covering all register
// classes, with a NaT ("not a thing") bit per register for speculation
// support. The hardwired registers (r0 = 0, p0 = true) are enforced on both
// read and write.
type RegFile struct {
	vals [isa.NumFlatRegs]isa.Word
	nat  [isa.NumFlatRegs]bool
}

// NewRegFile returns a register file with hardwired registers initialized.
func NewRegFile() *RegFile {
	rf := &RegFile{}
	rf.vals[isa.P0.Flat()] = 1
	return rf
}

// Read returns the value of r. Reading the absent register returns zero.
func (rf *RegFile) Read(r isa.Reg) isa.Word {
	f := r.Flat()
	if f < 0 {
		return 0
	}
	return rf.vals[f]
}

// ReadNaT returns the NaT bit of r.
func (rf *RegFile) ReadNaT(r isa.Reg) bool {
	f := r.Flat()
	return f >= 0 && rf.nat[f]
}

// Write sets r to v and clears its NaT bit. Writes to hardwired registers
// and to the absent register are discarded.
func (rf *RegFile) Write(r isa.Reg, v isa.Word) {
	f := r.Flat()
	if f < 0 || r.IsZeroReg() {
		return
	}
	rf.vals[f] = v
	rf.nat[f] = false
}

// WriteNaT sets r's NaT bit (deferred speculative exception).
func (rf *RegFile) WriteNaT(r isa.Reg) {
	f := r.Flat()
	if f < 0 || r.IsZeroReg() {
		return
	}
	rf.nat[f] = true
}

// Clone returns a deep copy.
func (rf *RegFile) Clone() *RegFile {
	c := *rf
	return &c
}

// Equal reports whether two register files hold identical values and NaT
// bits.
func (rf *RegFile) Equal(o *RegFile) bool {
	return rf.vals == o.vals && rf.nat == o.nat
}

// Diff returns the registers whose values or NaT bits differ, for test
// diagnostics.
func (rf *RegFile) Diff(o *RegFile) []isa.Reg {
	var out []isa.Reg
	for i := 0; i < isa.NumFlatRegs; i++ {
		if rf.vals[i] != o.vals[i] || rf.nat[i] != o.nat[i] {
			out = append(out, isa.FromFlat(i))
		}
	}
	return out
}
