package arch

import (
	"fmt"

	"multipass/internal/isa"
)

// State is the full architectural state of a running program.
type State struct {
	RF     *RegFile
	Mem    *Memory
	PC     int
	Halted bool
	// Retired counts every architecturally completed instruction, including
	// instructions squashed by a false qualifying predicate.
	Retired uint64
}

// NewState returns a reset state over the given memory image.
func NewState(mem *Memory) *State {
	return &State{RF: NewRegFile(), Mem: mem}
}

// StepInfo reports what one architectural step did, for tracing and for
// timing models that piggyback on the interpreter.
type StepInfo struct {
	Index     int  // instruction index executed
	Squashed  bool // qualifying predicate was false
	IsLoad    bool
	IsStore   bool
	MemAddr   uint32 // valid when IsLoad or IsStore and not squashed
	IsBranch  bool
	Taken     bool
	NextPC    int
	WroteDst  bool
	DstVal    isa.Word
	DstVal2   isa.Word // complement predicate for compares
	LoadedVal isa.Word
}

// EffAddr returns the effective address of a memory instruction given its
// base register value.
func EffAddr(in *isa.Inst, base isa.Word) uint32 {
	return base.Uint32() + uint32(in.Imm)
}

// Step architecturally executes the instruction at s.PC and advances the
// state. It returns an error if the PC is outside the program.
func (s *State) Step(p *isa.Program) (StepInfo, error) {
	if s.Halted {
		return StepInfo{}, fmt.Errorf("arch: step after halt")
	}
	if s.PC < 0 || s.PC >= len(p.Insts) {
		return StepInfo{}, fmt.Errorf("arch: PC %d outside program of %d instructions", s.PC, len(p.Insts))
	}
	in := &p.Insts[s.PC]
	info := StepInfo{Index: s.PC, NextPC: s.PC + 1}
	s.Retired++

	if in.Op.IsBranch() {
		// A branch with a false qualifying predicate is an architecturally
		// not-taken branch (it still trains the predictor).
		info.IsBranch = true
		info.Taken = s.RF.Read(in.QP).Bool()
		if info.Taken {
			info.NextPC = int(in.Target)
		}
		s.PC = info.NextPC
		return info, nil
	}

	if !s.RF.Read(in.QP).Bool() {
		// Squashed by qualifying predicate.
		info.Squashed = true
		s.PC = info.NextPC
		return info, nil
	}

	switch in.Op.Kind() {
	case isa.KindNop, isa.KindRestart:
		// No architectural effect.
	case isa.KindHalt:
		s.Halted = true
	case isa.KindLoad:
		info.IsLoad = true
		base := s.RF.Read(in.Src1)
		info.MemAddr = EffAddr(in, base)
		info.LoadedVal = s.Mem.LoadWord(in.Op, info.MemAddr)
		s.writeDst(in, info.LoadedVal, &info)
		if s.RF.ReadNaT(in.Src1) {
			s.RF.WriteNaT(in.Dst)
		}
	case isa.KindStore:
		info.IsStore = true
		base := s.RF.Read(in.Src1)
		info.MemAddr = EffAddr(in, base)
		s.Mem.StoreWord(in.Op, info.MemAddr, s.RF.Read(in.Src2))
	default:
		v := isa.Eval(in.Op, s.RF.Read(in.Src1), s.RF.Read(in.Src2), in.Imm)
		s.writeDst(in, v, &info)
		if s.RF.ReadNaT(in.Src1) || s.RF.ReadNaT(in.Src2) {
			s.RF.WriteNaT(in.Dst)
			s.RF.WriteNaT(in.Dst2)
		}
	}
	s.PC = info.NextPC
	return info, nil
}

// writeDst commits a computed value, including the complement predicate for
// compare operations.
func (s *State) writeDst(in *isa.Inst, v isa.Word, info *StepInfo) {
	if in.Dst.IsNone() {
		return
	}
	info.WroteDst = true
	info.DstVal = v
	s.RF.Write(in.Dst, v)
	if !in.Dst2.IsNone() {
		comp := isa.BoolWord(!v.Bool())
		info.DstVal2 = comp
		s.RF.Write(in.Dst2, comp)
	}
}

// RunResult summarizes a completed reference run.
type RunResult struct {
	State    *State
	Loads    uint64
	Stores   uint64
	Branches uint64
	Taken    uint64
}

// Run interprets the program to completion (or until limit instructions have
// retired, in which case it returns an error). The memory is mutated in
// place. Execution goes through the direct-threaded superblock interpreter
// (superblock.go), which is proven byte-identical to the step-wise reference
// by the differential tests in internal/xcheck; RunStepwise remains available
// as the independent semantic baseline.
func Run(p *isa.Program, mem *Memory, limit uint64) (*RunResult, error) {
	return NewSBProgram(p).Run(mem, limit)
}

// RunStepwise interprets the program one State.Step at a time. It is the
// semantic reference the superblock interpreter is validated against and is
// deliberately kept as the original, obviously-correct loop.
func RunStepwise(p *isa.Program, mem *Memory, limit uint64) (*RunResult, error) {
	s := NewState(mem)
	res := &RunResult{State: s}
	for !s.Halted {
		if s.Retired >= limit {
			return res, fmt.Errorf("arch: instruction limit %d exceeded at PC %d", limit, s.PC)
		}
		info, err := s.Step(p)
		if err != nil {
			return res, err
		}
		switch {
		case info.IsLoad:
			res.Loads++
		case info.IsStore:
			res.Stores++
		case info.IsBranch:
			res.Branches++
			if info.Taken {
				res.Taken++
			}
		}
	}
	return res, nil
}
