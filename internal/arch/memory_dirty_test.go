package arch

import "testing"

// TestCaptureDeltaChainMatchesClone drives a memory through several
// write/capture rounds and checks each delta snapshot is content-identical to
// a full Clone taken at the same instant.
func TestCaptureDeltaChainMatchesClone(t *testing.T) {
	m := NewMemory()
	m.TrackDirty()

	var snaps []*Memory
	var wants []*Memory
	var prev *Memory

	write := func(addrs ...uint32) {
		for i, a := range addrs {
			m.Store(a, 4, uint64(0xdead0000+uint32(i)))
		}
		s := m.CaptureDelta(prev)
		prev = s
		snaps = append(snaps, s)
		wants = append(wants, m.Clone())
	}

	write(0x1000, 0x2000)         // two fresh pages
	write(0x2004)                 // dirty one existing page
	write(0x7ff_f000, 0x10)       // high page + page 0
	write()                       // no stores at all: pure sharing
	write(0x1008, 0x1008, 0x1008) // repeated stores, one dirty page
	write(0x2ffe)                 // store straddling 0x2000/0x3000 pages

	for i := range snaps {
		if !snaps[i].Equal(wants[i]) {
			t.Fatalf("snapshot %d differs from full clone", i)
		}
	}

	// Deltas must be immune to later writes through the live memory.
	m.Store(0x1000, 4, 0xffffffff)
	m.Store(0x2004, 4, 0xffffffff)
	for i := range snaps {
		if !snaps[i].Equal(wants[i]) {
			t.Fatalf("snapshot %d changed after later writes to live memory", i)
		}
	}
}

// TestCaptureDeltaSharesCleanPages checks that pages untouched between
// captures are shared by pointer with the previous snapshot, and dirty pages
// are fresh copies.
func TestCaptureDeltaSharesCleanPages(t *testing.T) {
	m := NewMemory()
	m.TrackDirty()
	m.Store(0x1000, 8, 1)
	m.Store(0x2000, 8, 2)
	s1 := m.CaptureDelta(nil)

	m.Store(0x2008, 8, 3)
	s2 := m.CaptureDelta(s1)

	if s1.pages[1] != s2.pages[1] {
		t.Errorf("clean page 1 not shared between consecutive snapshots")
	}
	if s1.pages[2] == s2.pages[2] {
		t.Errorf("dirty page 2 aliased between snapshots")
	}
	if m.pages[1] == s2.pages[1] || m.pages[2] == s2.pages[2] {
		t.Errorf("live pages aliased into a snapshot")
	}
}

// TestCaptureDeltaStraddleMarksBothPages checks a store crossing a page
// boundary dirties both pages.
func TestCaptureDeltaStraddleMarksBothPages(t *testing.T) {
	m := NewMemory()
	m.TrackDirty()
	m.Store(0x1000, 4, 1)
	m.Store(0x2000, 4, 2)
	base := m.CaptureDelta(nil)

	m.Store(0x1ffe, 4, 0xaabbccdd) // straddles pages 1 and 2
	s := m.CaptureDelta(base)
	if !s.Equal(m.Clone()) {
		t.Fatalf("straddling store not fully captured")
	}
	if base.pages[1] == s.pages[1] || base.pages[2] == s.pages[2] {
		t.Errorf("straddled pages should both be fresh copies")
	}
}

// TestCaptureDeltaUntracked checks CaptureDelta degrades to a full clone when
// tracking was never enabled.
func TestCaptureDeltaUntracked(t *testing.T) {
	m := NewMemory()
	m.Store(0x40, 8, 7)
	s := m.CaptureDelta(nil)
	if !s.Equal(m) {
		t.Fatalf("untracked capture differs")
	}
	m.Store(0x40, 8, 9)
	if s.Load(0x40, 8) != 7 {
		t.Fatalf("untracked capture aliased live memory")
	}
}

// TestSuperblockStoresMarkDirty checks the superblock interpreter's inlined
// store fast path feeds dirty tracking: running a kernel between captures
// must produce deltas content-identical to full clones.
func TestSuperblockStoresMarkDirty(t *testing.T) {
	p := mustAssemble(t, loopSrc)
	sb := NewSBProgram(p)
	mem := NewMemory()
	mem.TrackDirty()
	base := mem.CaptureDelta(nil)

	st := NewState(mem)
	if _, err := sb.Exec(st, 40); err != nil {
		t.Fatal(err)
	}
	s1 := mem.CaptureDelta(base)
	want1 := mem.Clone()

	if _, err := sb.Exec(st, 1<<20); err != nil {
		t.Fatal(err)
	}
	s2 := mem.CaptureDelta(s1)

	if !s1.Equal(want1) {
		t.Fatalf("mid-run delta differs from clone")
	}
	if !s2.Equal(mem.Clone()) {
		t.Fatalf("final delta differs from clone")
	}
}
