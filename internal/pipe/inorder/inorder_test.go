package inorder

import (
	"context"
	"testing"

	"multipass/internal/arch"
	"multipass/internal/isa"
	"multipass/internal/sim"
)

func mustRun(t *testing.T, src string, setup func(*arch.Memory)) (*sim.Result, *arch.RunResult, *isa.Program) {
	t.Helper()
	p := isa.MustAssemble(src)
	image := arch.NewMemory()
	if setup != nil {
		setup(image)
	}
	m, err := New(sim.Default())
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(context.Background(), p, image)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := arch.Run(p, image.Clone(), 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.RF.Equal(ref.State.RF) {
		t.Fatalf("final registers diverged: %v", res.RF.Diff(ref.State.RF))
	}
	if !res.Mem.Equal(ref.State.Mem) {
		t.Fatal("final memory diverged from reference")
	}
	if res.Stats.Retired != ref.State.Retired {
		t.Fatalf("retired %d, reference %d", res.Stats.Retired, ref.State.Retired)
	}
	return res, ref, p
}

const sumLoop = `
	movi r1 = 0
	movi r2 = 0x1000
	movi r3 = 64
loop:
	ld4 r4 = [r2]
	add r1 = r1, r4
	addi r2 = r2, 4
	subi r3 = r3, 1
	cmpi.ne p1, p2 = r3, 0 ;;
	(p1) br loop
	halt
`

func TestSumLoopMatchesReference(t *testing.T) {
	res, _, _ := mustRun(t, sumLoop, func(m *arch.Memory) {
		for i := 0; i < 64; i++ {
			m.Store(uint32(0x1000+4*i), 4, uint64(i))
		}
	})
	if got := res.RF.Read(isa.IntReg(1)).Uint32(); got != 64*63/2 {
		t.Errorf("sum = %d", got)
	}
	if res.Stats.Cycles == 0 || res.Stats.IPC() <= 0 {
		t.Error("degenerate stats")
	}
}

func TestPointerChaseStallsOnLoads(t *testing.T) {
	// A dependent chain of loads spanning many lines: in-order stalls on
	// every consumer; the load category must dominate.
	res, _, _ := mustRun(t, `
	movi r1 = 0x1000
	movi r3 = 200
loop:
	ld4 r1 = [r1]
	subi r3 = r3, 1
	cmpi.ne p1, p2 = r3, 0 ;;
	(p1) br loop
	halt
`, func(m *arch.Memory) {
		// Chain across 4KB-spaced nodes (distinct cache lines and sets).
		addr := uint32(0x1000)
		for i := 0; i < 220; i++ {
			nxt := addr + 4096
			m.Store(addr, 4, uint64(nxt))
			addr = nxt
		}
	})
	s := &res.Stats
	if s.Cat[sim.StallLoad] < s.Cycles/3 {
		t.Errorf("load stalls = %d of %d cycles; expected dominant", s.Cat[sim.StallLoad], s.Cycles)
	}
	if s.Memory.L1D.Misses == 0 {
		t.Error("no L1D misses in pointer chase")
	}
}

func TestIndependentOpsReachWideIssue(t *testing.T) {
	// A hot loop of independent adds should issue wide once the I-cache is
	// warm (the first iteration pays cold instruction misses).
	src := "movi r1 = 1\nmovi r10 = 500\nloop:\n"
	for i := 0; i < 24; i++ {
		src += "addi r" + itoa(2+i%6) + " = r1, " + itoa(i) + "\n"
	}
	src += `
	subi r10 = r10, 1
	cmpi.ne p1, p2 = r10, 0 ;;
	(p1) br loop
	halt
`
	res, _, _ := mustRun(t, src, nil)
	if ipc := res.Stats.IPC(); ipc < 3 {
		t.Errorf("IPC = %.2f, expected wide issue on independent ops", ipc)
	}
}

func TestMulLatencyCountedAsOther(t *testing.T) {
	res, _, _ := mustRun(t, `
	movi r1 = 3
	movi r4 = 500
loop:
	mul r2 = r1, r1
	mul r3 = r2, r1
	add r1 = r3, r1
	subi r4 = r4, 1
	cmpi.ne p1, p2 = r4, 0 ;;
	(p1) br loop
	halt
`, nil)
	s := &res.Stats
	if s.Cat[sim.StallOther] == 0 {
		t.Error("dependent multiplies produced no 'other' stalls")
	}
	if s.Cat[sim.StallLoad] != 0 {
		t.Error("no loads, but load stalls recorded")
	}
}

func TestBranchyCodePaysFrontEnd(t *testing.T) {
	// Data-dependent unpredictable branches: front-end stalls appear.
	res, _, _ := mustRun(t, `
	movi r1 = 12345
	movi r3 = 0
	movi r4 = 2000
loop:
	# xorshift-ish PRNG to defeat the predictor
	shli r5 = r1, 13
	xor r1 = r1, r5
	shri r5 = r1, 17
	xor r1 = r1, r5
	shli r5 = r1, 5
	xor r1 = r1, r5
	andi r6 = r1, 1
	cmpi.eq p1, p2 = r6, 1 ;;
	(p1) br taken
	addi r3 = r3, 1
taken:
	subi r4 = r4, 1
	cmpi.ne p1, p2 = r4, 0 ;;
	(p1) br loop
	halt
`, nil)
	s := &res.Stats
	if s.Branch.Mispredicts == 0 {
		t.Error("PRNG branches never mispredicted")
	}
	if s.Cat[sim.StallFrontEnd] == 0 {
		t.Error("mispredictions produced no front-end stalls")
	}
}

func TestPredicatedOffDoesNotStall(t *testing.T) {
	// A predicated-off consumer of a missing load must not stall: the
	// machine nullifies it without reading sources. Compare against the
	// predicated-on version of the same program, which must stall for the
	// full miss.
	run := func(pred string) uint64 {
		res, _, _ := mustRun(t, `
	movi r1 = 0x8000
	movi r2 = `+pred+`
	cmpi.eq p1, p2 = r2, 1 ;;
	ld4 r3 = [r1]
	(p1) add r4 = r3, r3
	halt
`, nil)
		return res.Stats.Cycles
	}
	off := run("0") // p1 false: add nullified
	on := run("1")  // p1 true: add stalls on the miss
	if on < off+100 {
		t.Errorf("predicated-on %d cycles vs off %d; expected a full miss stall difference", on, off)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := sim.Default()
	bad.FetchWidth = 0
	if _, err := New(bad); err == nil {
		t.Error("invalid config accepted")
	}
	bad2 := sim.Default()
	bad2.Hier.L1D.LineBytes = 60
	if _, err := New(bad2); err == nil {
		t.Error("invalid hierarchy accepted")
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}
