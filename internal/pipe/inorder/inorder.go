// Package inorder implements the baseline machine of the paper's
// evaluation: a 6-issue, scoreboarded, in-order EPIC pipeline with
// stall-on-use semantics. Instructions issue in program order in dynamically
// dependence-checked groups under the FU capacities of Table 2; the first
// consumer of an unready value stalls the machine until the value arrives.
package inorder

import (
	"context"
	"fmt"

	"multipass/internal/arch"
	"multipass/internal/bpred"
	"multipass/internal/isa"
	"multipass/internal/mem"
	"multipass/internal/sim"
)

func init() {
	sim.Register("inorder", func(opts sim.ModelOptions) (sim.Machine, error) {
		cfg := sim.Default()
		cfg.Hier = opts.Hier
		if opts.MaxInsts != 0 {
			cfg.MaxInsts = opts.MaxInsts
		}
		cfg.DisableSkip = opts.DisableSkip
		return New(cfg)
	})
	sim.Describe("inorder", "stall-on-use in-order EPIC pipeline (paper baseline)")
}

// Machine is the baseline in-order model.
type Machine struct {
	cfg sim.Config
	tr  *sim.Trace
}

// UseTrace implements sim.TraceUser: subsequent runs of the traced program
// read the pre-decoded stream instead of re-interpreting it.
func (m *Machine) UseTrace(tr *sim.Trace) { m.tr = tr }

// New validates the configuration and returns the model.
func New(cfg sim.Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if _, err := mem.NewHierarchy(cfg.Hier); err != nil {
		return nil, err
	}
	return &Machine{cfg: cfg}, nil
}

// Name implements sim.Machine.
func (m *Machine) Name() string { return "inorder" }

// progressWindow bounds how many cycles the machine may go without issuing
// before the run is declared wedged (a model bug, not a program property).
const progressWindow = 1 << 20

// Run implements sim.Machine.
func (m *Machine) Run(ctx context.Context, p *isa.Program, image *arch.Memory) (*sim.Result, error) {
	return m.runFrom(ctx, p, image, nil)
}

// CheckpointSpec implements sim.IntervalRunner.
func (m *Machine) CheckpointSpec() sim.CheckpointSpec {
	return sim.CheckpointSpec{Hier: m.cfg.Hier, PredictorEntries: m.cfg.PredictorEntries, MaxInsts: m.cfg.MaxInsts}
}

// RunInterval implements sim.IntervalRunner: it simulates one checkpointed
// interval of the dynamic stream. The machine carries only read-only state
// (config, trace), so concurrent interval calls are safe.
func (m *Machine) RunInterval(ctx context.Context, p *isa.Program, image *arch.Memory, ck *sim.Checkpoint) (*sim.Result, error) {
	return m.runFrom(ctx, p, image, ck)
}

// runFrom is the cycle loop, generalized over a starting checkpoint. With a
// nil checkpoint (a monolithic Run) the window bounds degenerate to
// [0, ^uint64(0)) with measurement from zero, and every added check is a
// no-op: the golden stats stay byte-identical.
func (m *Machine) runFrom(ctx context.Context, p *isa.Program, image *arch.Memory, ck *sim.Checkpoint) (*sim.Result, error) {
	cfg := &m.cfg
	hier := mem.MustNewHierarchy(cfg.Hier)
	pred := bpred.New(cfg.PredictorEntries)
	start, measure, end := ck.Bounds()
	var stream *sim.Stream
	var own *arch.State
	if ck == nil {
		stream = sim.StreamFor(p, image, cfg.MaxInsts, m.tr)
		own = arch.NewState(image.Clone())
	} else {
		if err := hier.RestoreWarm(ck.Caches); err != nil {
			return nil, err
		}
		if err := pred.RestoreWarm(ck.Pred); err != nil {
			return nil, err
		}
		stream = sim.StreamFrom(p, ck, cfg.MaxInsts, m.tr)
		own = &arch.State{RF: ck.RF.Clone(), Mem: ck.Mem.Clone(), PC: ck.PC, Retired: ck.Seq}
	}
	fe := sim.NewFetchUnit(stream, hier, cfg.FetchWidth)
	fe.StartAt(start)

	var (
		wm       sim.WarmMark
		readyAt  [isa.NumFlatRegs]uint64
		prodKind [isa.NumFlatRegs]sim.ProducerKind
		st       sim.Stats
		now      uint64
		next     uint64 // next sequence to issue
		lastWork uint64 // last cycle that issued something
		halted   bool
		regBuf   [4]isa.Reg
		skip     sim.SkipState
	)
	skipOn := !cfg.DisableSkip
	next = start

	for !halted && next < end {
		if err := sim.PollContext(ctx, now); err != nil {
			return nil, fmt.Errorf("inorder: %w", err)
		}
		wm.Mark(next, measure, &st, pred, hier)
		skip.Begin()
		fe.SetLimit(next + uint64(cfg.BufferSize))
		var use isa.FUUse
		var groupWrites sim.RegSet
		issued := 0
		blocker := sim.StallFrontEnd

		cut := wm.Cut(measure, end)

	group:
		for issued < cfg.Caps.MaxIssue && !halted {
			if next >= cut {
				// Window boundary: no group spans the measurement mark or
				// the interval end. Unreachable with issued == 0 (the outer
				// loop and Mark run first), so no idle cycle arises here.
				break
			}
			d, err := stream.At(next)
			if err != nil {
				return nil, err
			}
			if d == nil {
				return nil, fmt.Errorf("inorder: stream ended before halt issued")
			}
			fready, ok, err := fe.ReadyAt(next)
			if err != nil {
				return nil, err
			}
			if !ok {
				return nil, fmt.Errorf("inorder: fetch ended before halt issued")
			}
			if fready > now {
				blocker = sim.StallFrontEnd
				skip.Note(fready)
				break
			}
			in := d.Inst

			// Qualifying predicate must be readable.
			if groupWrites.Has(in.QP) {
				break // written earlier in this group: issue next cycle
			}
			if qf := in.QP.Flat(); readyAt[qf] > now {
				blocker = prodKind[qf].StallFor()
				skip.Note(readyAt[qf])
				break
			}
			qpTrue := own.RF.Read(in.QP).Bool()

			// Source operands: needed only when the instruction will
			// actually execute (predicated-off instructions are nullified
			// without stalling; branches consume only their predicate).
			if qpTrue && !in.Op.IsBranch() {
				for _, r := range in.Reads(regBuf[:0]) {
					if r == in.QP {
						continue
					}
					if groupWrites.Has(r) {
						break group
					}
					if f := r.Flat(); readyAt[f] > now {
						blocker = prodKind[f].StallFor()
						skip.Note(readyAt[f])
						break group
					}
				}
			}
			// Destinations: intra-group WAW splits the group; a pending
			// longer-latency write to the same register scoreboards the
			// issue (out-of-order completion, paper §3.5).
			if qpTrue {
				lat := uint64(in.Op.Latency())
				for _, r := range in.Writes(regBuf[:0]) {
					if groupWrites.Has(r) {
						break group
					}
					if f := r.Flat(); readyAt[f] > now+lat {
						blocker = sim.StallOther
						skip.Note(readyAt[f] - lat)
						break group
					}
				}
			}
			if !use.Fits(in.Op, &cfg.Caps) {
				blocker = sim.StallOther
				break
			}

			// Issue: architecturally execute on the machine's own state.
			if own.PC != d.Index {
				return nil, fmt.Errorf("inorder: own PC %d diverged from stream index %d at seq %d", own.PC, d.Index, d.Seq)
			}
			info, err := own.Step(p)
			if err != nil {
				return nil, err
			}
			use.Add(in.Op)
			st.Retired++
			issued++
			lastWork = now

			completion := now + uint64(in.Op.Latency())
			kind := sim.ProducerOther
			switch {
			case info.IsLoad:
				completion = hier.AccessData(info.MemAddr, now, false, false)
				kind = sim.ProducerLoad
			case info.IsStore:
				// Stores retire into the machine's store path without
				// stalling the pipeline; the access still occupies the
				// hierarchy (allocation, MSHR).
				hier.AccessData(info.MemAddr, now, true, false)
			}
			if !info.Squashed {
				for _, r := range in.Writes(regBuf[:0]) {
					groupWrites.Add(r)
					if f := r.Flat(); !r.IsZeroReg() {
						readyAt[f] = completion
						prodKind[f] = kind
					}
				}
			}

			if in.Op.Kind() == isa.KindHalt {
				halted = true
			}
			next++

			if info.IsBranch {
				correct := pred.Update(d.Addr(), d.Taken)
				if !correct {
					fe.Flush(next, now+1+uint64(cfg.MispredictPenalty))
				}
				if d.Taken || !correct {
					break // no issue past a redirect in the same cycle
				}
			}
		}

		if issued > 0 {
			st.Cat[sim.StallExecution]++
		} else {
			st.Cat[blocker]++
		}
		st.Cycles++
		now++
		fe.Release(next)

		// Idle-cycle fast-forwarding: a cycle that issued nothing mutated no
		// machine state (the only visible effects above are guarded by the
		// issue path), and every future deadline it compared against was
		// Noted at its break site, so every cycle until the earliest noted
		// deadline replays identically. Credit them in bulk to the same
		// stall category the executed cycle charged.
		if skipOn && issued == 0 && !halted {
			if d := skip.Jump(hier, now); d > 0 {
				st.Cat[blocker] += d
				st.Cycles += d
				now += d
			}
		}

		if now-lastWork > progressWindow {
			return nil, fmt.Errorf("inorder: no issue for %d cycles at seq %d (model wedged)", progressWindow, next)
		}
	}

	st.Branch = pred.Stats()
	st.Memory = hier.Stats()
	wm.Discard(&st)
	if err := st.CheckConsistency(); err != nil {
		return nil, err
	}
	return &sim.Result{Stats: st, RF: own.RF, Mem: own.Mem}, nil
}
