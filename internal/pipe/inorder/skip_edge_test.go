package inorder

import (
	"context"
	"testing"

	"multipass/internal/arch"
	"multipass/internal/isa"
	"multipass/internal/sim"
)

// runBothWays runs src with idle-cycle skipping on and off and asserts the
// two runs are byte-identical in sim.Stats and final architectural state.
// It returns the skip-on result for further assertions.
func runBothWays(t *testing.T, src string, setup func(*arch.Memory)) *sim.Result {
	t.Helper()
	p := isa.MustAssemble(src)
	results := make([]*sim.Result, 2)
	for i, disable := range []bool{false, true} {
		image := arch.NewMemory()
		if setup != nil {
			setup(image)
		}
		cfg := sim.Default()
		cfg.DisableSkip = disable
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run(context.Background(), p, image)
		if err != nil {
			t.Fatal(err)
		}
		results[i] = res
	}
	on, off := results[0], results[1]
	if on.Stats != off.Stats {
		t.Errorf("stats diverged with skipping on:\n  on:  %+v\n  off: %+v", on.Stats, off.Stats)
	}
	if !on.RF.Equal(off.RF) {
		t.Errorf("final registers diverged: %v", on.RF.Diff(off.RF))
	}
	if !on.Mem.Equal(off.Mem) {
		t.Error("final memory diverged between skip modes")
	}
	return on
}

// TestSkipLandsOnRedirectCycle: each iteration stalls on a cold load, and the
// loaded value steers a branch whose direction alternates — so the cycle the
// skip jumps to (the fill completion) immediately issues a compare and then a
// mispredicting branch, i.e. the skip target lands on the cycle that triggers
// a fetch redirect. Skip-on and skip-off must agree exactly, including the
// predictor's counters.
func TestSkipLandsOnRedirectCycle(t *testing.T) {
	res := runBothWays(t, `
	movi r2 = 0x1000
	movi r3 = 40
	movi r1 = 0
loop:
	ld4 r4 = [r2] ;;
	cmpi.ne p1, p2 = r4, 0 ;;
	(p1) br odd
	addi r1 = r1, 100 ;;
	br next
odd:
	addi r1 = r1, 1 ;;
next:
	addi r2 = r2, 4096
	subi r3 = r3, 1
	cmpi.ne p3, p4 = r3, 0 ;;
	(p3) br loop
	halt
`, func(m *arch.Memory) {
		// Stride-4096 nodes (always a cold line) holding 0,1,0,1,... so the
		// data-dependent branch alternates and defeats the predictor.
		for i := 0; i < 40; i++ {
			m.Store(uint32(0x1000+4096*i), 4, uint64(i%2))
		}
	})
	if got := res.RF.Read(isa.IntReg(1)).Uint32(); got != 20*100+20*1 {
		t.Errorf("r1 = %d, want %d", got, 20*100+20*1)
	}
	if res.Stats.Branch.Mispredicts == 0 {
		t.Error("no mispredictions: the redirect path was not exercised")
	}
	if res.Stats.Cat[sim.StallLoad] == 0 {
		t.Error("no load-stall cycles: nothing for the skip to fast-forward")
	}
}

// TestSkipSingleCycleStall: back-to-back dependent single-cycle latencies and
// an L1-hitting load give wake targets of now+1 — the degenerate one-cycle
// jump — which must account identically to ticking.
func TestSkipSingleCycleStall(t *testing.T) {
	runBothWays(t, `
	movi r2 = 0x1000
	st4 [r2] = r2 ;;
	ld4 r1 = [r2] ;;
	add r3 = r1, r1 ;;
	add r4 = r3, r3 ;;
	mul r5 = r4, r4 ;;
	add r6 = r5, r5 ;;
	halt
`, nil)
}

// TestSkipLongQuiescentStall: a pointer chase across cold lines produces the
// longest stalls the in-order pipe can see; every one must be bulk-credited
// to the load category identically to the ticking path.
func TestSkipLongQuiescentStall(t *testing.T) {
	res := runBothWays(t, `
	movi r1 = 0x1000
	movi r3 = 100
loop:
	ld4 r1 = [r1]
	subi r3 = r3, 1
	cmpi.ne p1, p2 = r3, 0 ;;
	(p1) br loop
	halt
`, func(m *arch.Memory) {
		addr := uint32(0x1000)
		for i := 0; i < 110; i++ {
			nxt := addr + 4096
			m.Store(addr, 4, uint64(nxt))
			addr = nxt
		}
	})
	if ld := res.Stats.Cat[sim.StallLoad]; ld < res.Stats.Cycles/2 {
		t.Errorf("load stalls %d of %d cycles; chase should be load-dominated", ld, res.Stats.Cycles)
	}
}
