// Package cgooo implements a coarse-grain out-of-order timing model after
// CG-OoO (Mohammadi et al., "CG-OoO: Energy-Efficient Coarse-Grain
// Out-of-Order Execution"): the other major point in the paper's "alternative
// to the high-power out-of-order offense" design space. Instruction blocks —
// cut at every branch and at BlockSize instructions — dispatch in program
// order to a small set of block windows, each with its own energy-cheap
// scheduler; within a block, instructions issue out of order as their
// operands arrive (up to WindowIssue per block per cycle); blocks commit in
// dispatch order, and a mispredicted branch squashes at block granularity
// (every block younger than the branch's block — a branch always terminates
// its block, so the squash boundary is exactly a block boundary).
//
// The energy argument this geometry models: the unified 128-entry wakeup CAM
// and issue table of the baseline out-of-order machine are replaced by
// NumWindows schedulers of BlockSize entries each, so tag broadcast and
// select operate over windows an order of magnitude smaller (see
// internal/power). The performance cost is the per-block issue-width cap and
// in-order block dispatch.
//
// Idealizations match the ooo package, so cycle comparisons isolate the
// scheduling geometry: renaming is global and free of WAW/WAR hazards,
// scheduling and register read happen together, predicate renaming is ideal,
// and memory disambiguation is perfect. The front end keeps the baseline
// out-of-order depth (rename and block dispatch stages), so the misprediction
// penalty matches the ooo model's.
package cgooo

import (
	"context"
	"fmt"

	"multipass/internal/arch"
	"multipass/internal/bpred"
	"multipass/internal/isa"
	"multipass/internal/mem"
	"multipass/internal/sim"
)

func init() {
	sim.Register("cgooo", func(opts sim.ModelOptions) (sim.Machine, error) {
		cfg := DefaultConfig()
		cfg.Hier = opts.Hier
		if opts.MaxInsts != 0 {
			cfg.MaxInsts = opts.MaxInsts
		}
		cfg.DisableSkip = opts.DisableSkip
		return New(cfg)
	})
	sim.Describe("cgooo", "coarse-grain out-of-order: in-order block dispatch to small per-block schedulers (CG-OoO)")
}

// maxWindows bounds NumWindows so per-cycle bookkeeping fits fixed arrays.
const maxWindows = 64

// Config extends the common configuration with the block-window geometry.
type Config struct {
	sim.Config
	// NumWindows is the number of block windows (concurrently live blocks).
	NumWindows int
	// BlockSize is the maximum instructions per block; blocks also end at
	// every branch and at halt.
	BlockSize int
	// WindowIssue is each block window's issue width per cycle. The global
	// functional-unit capacities (Caps) still arbitrate across windows.
	WindowIssue int
	// RetireWidth is instructions retired per cycle (block-order commit).
	RetireWidth int
}

// DefaultConfig returns the CG-OoO machine: 8 block windows of 32 entries
// (256 instructions in flight, matching the ooo model's ROB), 2-wide issue
// per window, and the same +3 front-end stages in the misprediction penalty
// as the baseline out-of-order machine.
func DefaultConfig() Config {
	c := Config{Config: sim.Default()}
	c.BufferSize = 256
	c.MispredictPenalty = 11
	c.NumWindows = 8
	c.BlockSize = 32
	c.WindowIssue = 2
	c.RetireWidth = 6
	return c
}

// Validate checks the CG-OoO-specific parameters.
func (c *Config) Validate() error {
	if err := c.Config.Validate(); err != nil {
		return err
	}
	if c.NumWindows < 1 || c.NumWindows > maxWindows {
		return fmt.Errorf("cgooo: NumWindows %d outside [1, %d]", c.NumWindows, maxWindows)
	}
	if c.BlockSize < 1 || c.WindowIssue < 1 || c.RetireWidth < 1 {
		return fmt.Errorf("cgooo: invalid block geometry")
	}
	return nil
}

// Machine is the coarse-grain out-of-order model.
type Machine struct {
	cfg Config
	tr  *sim.Trace
}

// New validates the configuration and returns the model.
func New(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if _, err := mem.NewHierarchy(cfg.Hier); err != nil {
		return nil, err
	}
	return &Machine{cfg: cfg}, nil
}

// Name implements sim.Machine.
func (m *Machine) Name() string { return "cgooo" }

// UseTrace implements sim.TraceUser: subsequent runs of the traced program
// read the pre-decoded stream instead of re-interpreting it.
func (m *Machine) UseTrace(tr *sim.Trace) { m.tr = tr }

// Run implements sim.Machine.
func (m *Machine) Run(ctx context.Context, p *isa.Program, image *arch.Memory) (*sim.Result, error) {
	return m.runFrom(ctx, p, image, nil)
}

// CheckpointSpec implements sim.IntervalRunner.
func (m *Machine) CheckpointSpec() sim.CheckpointSpec {
	return sim.CheckpointSpec{Hier: m.cfg.Hier, PredictorEntries: m.cfg.PredictorEntries, MaxInsts: m.cfg.MaxInsts}
}

// RunInterval implements sim.IntervalRunner: it simulates one checkpointed
// interval of the dynamic stream. The machine carries only read-only state
// (config, trace), so concurrent interval calls are safe.
func (m *Machine) RunInterval(ctx context.Context, p *isa.Program, image *arch.Memory, ck *sim.Checkpoint) (*sim.Result, error) {
	return m.runFrom(ctx, p, image, ck)
}

type entryState uint8

const (
	stWaiting entryState = iota
	stIssued
	stDone
)

// entry is one in-flight instruction. Entries live in a ring indexed by
// seq&mask, and operands rename to at most four producer sequences (QP plus
// three sources), so the whole window set is a fixed-size value array.
type entry struct {
	d          *sim.DynInst
	state      entryState
	ndeps      uint8
	deps       [4]uint64
	blk        uint64 // owning block id
	completion uint64
}

// block is one block window's occupant: a contiguous run of the dynamic
// stream starting at start, n instructions long, closed once a branch, halt,
// or the BlockSize cap terminated it.
type block struct {
	start  uint64
	n      int
	closed bool
}

// noSeq marks an empty rename-table slot.
const noSeq = ^uint64(0)

const progressWindow = 1 << 20

func (m *Machine) runFrom(ctx context.Context, p *isa.Program, image *arch.Memory, ck *sim.Checkpoint) (*sim.Result, error) {
	cfg := m.cfg
	hier := mem.MustNewHierarchy(cfg.Hier)
	pred := bpred.New(cfg.PredictorEntries)
	start, measure, end := ck.Bounds()
	var stream *sim.Stream
	if ck == nil {
		stream = sim.StreamFor(p, image, cfg.MaxInsts, m.tr)
	} else {
		if err := hier.RestoreWarm(ck.Caches); err != nil {
			return nil, err
		}
		if err := pred.RestoreWarm(ck.Pred); err != nil {
			return nil, err
		}
		stream = sim.StreamFrom(p, ck, cfg.MaxInsts, m.tr)
	}
	fe := sim.NewFetchUnit(stream, hier, cfg.FetchWidth)
	fe.StartAt(start)

	// Entries live in a power-of-two ring indexed by seq&mask; capacity is
	// the whole block-window set (NumWindows x BlockSize). Blocks live in
	// their own power-of-two ring indexed by block id.
	ringCap := 1
	for ringCap < cfg.NumWindows*cfg.BlockSize {
		ringCap <<= 1
	}
	ring := make([]entry, ringCap)
	mask := uint64(ringCap - 1)
	blkCap := 1
	for blkCap < cfg.NumWindows {
		blkCap <<= 1
	}
	blkRing := make([]block, blkCap)
	blkMask := uint64(blkCap - 1)

	var (
		wm       sim.WarmMark
		st       sim.Stats
		now      uint64
		base     = start // seq of the oldest in-flight instruction
		count    int     // live entries
		blkBase  uint64  // id of the oldest live block
		blkCount int     // live blocks (occupied windows)
		open     bool    // youngest live block still accepts instructions
		lastProd [isa.NumFlatRegs]uint64
		haltSeq  = noSeq
		lastWork uint64
		regBuf   [4]isa.Reg
		// barrier is the sequence of an in-flight branch whose prediction
		// is wrong: real hardware fetches the wrong path beyond it, so no
		// younger instruction may enter the machine until it resolves.
		barrier = noSeq
		skip    sim.SkipState
	)
	skipOn := !cfg.DisableSkip
	for i := range lastProd {
		lastProd[i] = noSeq
	}
	entAt := func(seq uint64) *entry { return &ring[seq&mask] }
	blkAt := func(id uint64) *block { return &blkRing[id&blkMask] }

	rebuildRename := func() {
		for i := range lastProd {
			lastProd[i] = noSeq
		}
		for k := 0; k < count; k++ {
			seq := base + uint64(k)
			for _, reg := range entAt(seq).d.Inst.Writes(regBuf[:0]) {
				if !reg.IsZeroReg() {
					lastProd[reg.Flat()] = seq
				}
			}
		}
	}

	for {
		if err := sim.PollContext(ctx, now); err != nil {
			return nil, fmt.Errorf("cgooo: %w", err)
		}
		wm.Mark(base, measure, &st, pred, hier)
		if base >= end {
			// Non-final interval done: every measured sequence has retired
			// (the final interval instead exits through the halt below).
			break
		}
		skip.Begin()
		// Retire in block order from the oldest window; within a block,
		// commit is in program order, so retirement walks the seq order and
		// frees a window when its block's last instruction leaves.
		retired := 0
		for retired < cfg.RetireWidth && count > 0 {
			if !wm.Marked() && base >= measure {
				// No retire burst spans the measurement mark; the baseline
				// lands exactly on the boundary next cycle.
				break
			}
			e := entAt(base)
			if e.state != stDone || e.completion > now {
				if e.state == stDone {
					skip.Note(e.completion)
				}
				break
			}
			if e.d.Halt {
				haltSeq = e.d.Seq
			}
			hb := blkAt(blkBase)
			base++
			count--
			st.Retired++
			retired++
			if hb.closed && base >= hb.start+uint64(hb.n) {
				blkBase++
				blkCount--
			}
		}
		fe.Release(base)
		if haltSeq != noSeq {
			st.Cycles++ // the retire cycle of halt
			st.Cat[sim.StallExecution]++
			st.CGOOO.WindowOccCy += uint64(blkCount)
			break
		}

		// Dispatch up to FetchWidth instructions in order. A new block needs
		// a free window; the open block accepts until a branch, halt, or the
		// BlockSize cap closes it.
		fe.SetLimit(base + uint64(ringCap))
		inserted := 0
		winFullIdle := false
		for inserted < cfg.FetchWidth && barrier == noSeq {
			seq := base + uint64(count)
			if seq >= end {
				// Interval end: nothing past it enters the machine, so base
				// rises to exactly end as the windows drain.
				break
			}
			if !open && blkCount >= cfg.NumWindows {
				st.CGOOO.WindowFullCy++
				winFullIdle = inserted == 0
				break
			}
			d, err := stream.At(seq)
			if err != nil {
				return nil, err
			}
			if d == nil {
				break
			}
			fready, ok, err := fe.ReadyAt(seq)
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			if fready > now {
				skip.Note(fready)
				break
			}
			curBlk := blkBase + uint64(blkCount) - 1
			if !open {
				curBlk = blkBase + uint64(blkCount)
				*blkAt(curBlk) = block{start: seq}
				blkCount++
				open = true
				st.CGOOO.Blocks++
				if uint64(blkCount) > st.CGOOO.PeakLiveBlocks {
					st.CGOOO.PeakLiveBlocks = uint64(blkCount)
				}
			}
			b := blkAt(curBlk)
			e := entAt(seq)
			*e = entry{d: d, blk: curBlk}
			for _, reg := range d.Inst.Reads(regBuf[:0]) {
				if reg.IsZeroReg() {
					continue
				}
				// noSeq passes the >= base filter (it is the max uint64),
				// so an empty slot must be rejected explicitly.
				if prod := lastProd[reg.Flat()]; prod != noSeq && prod >= base {
					e.deps[e.ndeps] = prod
					e.ndeps++
				}
			}
			for _, reg := range d.Inst.Writes(regBuf[:0]) {
				if !reg.IsZeroReg() {
					lastProd[reg.Flat()] = seq
				}
			}
			b.n++
			count++
			inserted++
			if d.IsBranch || d.Halt || b.n >= cfg.BlockSize {
				b.closed = true
				open = false
				if uint64(b.n) > st.CGOOO.MaxBlockLen {
					st.CGOOO.MaxBlockLen = uint64(b.n)
				}
			}
			if d.Halt {
				break
			}
			if d.IsBranch && pred.Predict(d.Addr()) != d.Taken {
				// Everything fetched beyond this branch would be
				// wrong-path; stall the front end until it resolves.
				barrier = seq
			}
		}

		// Select and issue: each window picks ready instructions oldest-first
		// up to its own width; the shared functional units arbitrate across
		// windows, favoring older blocks (the scan is global seq order, so
		// per-window oldest-first and cross-window old-block-first coincide).
		var use isa.FUUse
		var blkIssued [maxWindows]uint8
		issued := 0
		for i := 0; i < count && issued < cfg.Caps.MaxIssue; i++ {
			e := entAt(base + uint64(i))
			if e.state != stWaiting {
				continue
			}
			if int(blkIssued[e.blk&blkMask]) >= cfg.WindowIssue {
				continue
			}
			ready := true
			for _, dep := range e.deps[:e.ndeps] {
				if dep < base {
					continue
				}
				de := entAt(dep)
				if de.state != stDone || de.completion > now {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			in := e.d.Inst
			if !use.Fits(in.Op, &cfg.Caps) {
				continue
			}
			use.Add(in.Op)
			e.state = stIssued
			blkIssued[e.blk&blkMask]++
			issued++
			lastWork = now

			e.completion = now + uint64(in.Op.Latency())
			switch {
			case e.d.IsLoad:
				e.completion = hier.AccessData(e.d.MemAddr, now, false, false)
			case e.d.IsStore:
				hier.AccessData(e.d.MemAddr, now, true, false)
			}
			if e.completion <= now {
				e.completion = now + 1
			}
			if e.completion <= now+1 {
				e.state = stDone
			}

			if e.d.IsBranch {
				if e.d.Seq == barrier {
					barrier = noSeq // resolved; fetch may resume
				}
				correct := pred.Update(e.d.Addr(), e.d.Taken)
				if !correct {
					// Block-granularity squash: the branch terminated its
					// block, so every younger in-flight instruction belongs
					// to a younger block; discard those blocks and refetch.
					cut := int(e.d.Seq - base + 1)
					squashed := count - cut
					count = cut
					removed := blkBase + uint64(blkCount) - (e.blk + 1)
					blkCount = int(e.blk - blkBase + 1)
					open = false
					st.CGOOO.BlockSquashes++
					st.CGOOO.SquashedBlocks += removed
					st.CGOOO.SquashedInsts += uint64(squashed)
					if barrier != noSeq && barrier >= base+uint64(cut) {
						barrier = noSeq
					}
					fe.Flush(e.d.Seq+1, now+1+uint64(cfg.MispredictPenalty))
					rebuildRename()
					break
				}
			}
		}
		// Promote issued entries whose completion has arrived.
		promoted := 0
		for k := 0; k < count; k++ {
			if e := entAt(base + uint64(k)); e.state == stIssued {
				if e.completion <= now+1 {
					e.state = stDone
					promoted++
				} else {
					// First cycle this entry can promote; every waiting
					// entry's time deadline bottoms out at an issued
					// producer's completion, so noting these covers the
					// whole dependence graph.
					skip.Note(e.completion - 1)
				}
			}
		}

		// Attribution (paper §5.2): a cycle with no issue is charged to the
		// oldest unfinished instruction's stall cause, or to the front end
		// when the machine is empty.
		cat := sim.StallExecution
		if issued == 0 {
			if count == 0 {
				cat = sim.StallFrontEnd
			} else {
				cause := sim.StallFrontEnd
				for k := 0; k < count; k++ {
					e := entAt(base + uint64(k))
					if e.state == stDone && e.completion <= now {
						continue
					}
					switch {
					case e.state != stWaiting:
						// Oldest unfinished is executing.
						if e.d.IsLoad {
							cause = sim.StallLoad
						} else {
							cause = sim.StallOther
						}
					default:
						// Waiting on producers: find the slowest unfinished one.
						cause = sim.StallOther
						for _, dep := range e.deps[:e.ndeps] {
							if dep < base {
								continue
							}
							de := entAt(dep)
							if de.state == stDone && de.completion <= now {
								continue
							}
							if de.d.IsLoad {
								cause = sim.StallLoad
								break
							}
						}
					}
					break
				}
				cat = cause
			}
		}
		st.Cat[cat]++
		st.Cycles++
		st.CGOOO.WindowOccCy += uint64(blkCount)
		now++
		// Idle-cycle fast-forwarding: when nothing retired, dispatched,
		// issued, or promoted, every structure (entries, blocks, rename,
		// barrier) holds its state and the attribution scan reads only
		// monotone comparisons, so cycles up to the earliest noted deadline
		// replay identically; block occupancy is constant across the jump.
		if skipOn && retired == 0 && inserted == 0 && issued == 0 && promoted == 0 {
			if d := skip.Jump(hier, now); d > 0 {
				st.Cat[cat] += d
				if winFullIdle {
					st.CGOOO.WindowFullCy += d
				}
				st.Cycles += d
				st.CGOOO.WindowOccCy += d * uint64(blkCount)
				now += d
			}
		}
		if now-lastWork > progressWindow {
			return nil, fmt.Errorf("cgooo: no issue for %d cycles at base %d", progressWindow, base)
		}
	}

	st.Branch = pred.Stats()
	st.Memory = hier.Stats()
	wm.Discard(&st)
	if err := st.CheckConsistency(); err != nil {
		return nil, err
	}
	// Like the other oracle-driven timing model (ooo), cgooo does not
	// simulate values; its architectural outcome is the oracle's final state
	// (wrong paths are never simulated, so nothing can leak). Only the final
	// interval — the one that retires the halt — reports a meaningful state;
	// the stitcher uses exactly that one.
	fin := stream.FinalState()
	return &sim.Result{Stats: st, RF: fin.RF, Mem: fin.Mem}, nil
}
