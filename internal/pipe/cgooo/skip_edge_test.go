package cgooo

import (
	"context"
	"testing"

	"multipass/internal/arch"
	"multipass/internal/isa"
	"multipass/internal/sim"
)

// runBothWays runs src with idle-cycle skipping on and off and asserts the
// two runs are byte-identical in sim.Stats and final architectural state.
// Full-struct Stats equality also pins the skip-exactness of the cgooo
// occupancy integral (WindowOccCy) and the window-full attribution.
// It returns the skip-on result for further assertions.
func runBothWays(t *testing.T, src string, setup func(*arch.Memory)) *sim.Result {
	t.Helper()
	p := isa.MustAssemble(src)
	results := make([]*sim.Result, 2)
	for i, disable := range []bool{false, true} {
		image := arch.NewMemory()
		if setup != nil {
			setup(image)
		}
		cfg := DefaultConfig()
		cfg.DisableSkip = disable
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run(context.Background(), p, image)
		if err != nil {
			t.Fatal(err)
		}
		results[i] = res
	}
	on, off := results[0], results[1]
	if on.Stats != off.Stats {
		t.Errorf("stats diverged with skipping on:\n  on:  %+v\n  off: %+v", on.Stats, off.Stats)
	}
	if !on.RF.Equal(off.RF) {
		t.Errorf("final registers diverged: %v", on.RF.Diff(off.RF))
	}
	if !on.Mem.Equal(off.Mem) {
		t.Error("final memory diverged between skip modes")
	}
	return on
}

// TestSkipLandsOnRedirectCycle: each iteration stalls on a cold load whose
// value steers an alternating branch, so the skip target is the fill cycle
// that immediately resolves a mispredicting branch — a block squash. The
// squash counters must be skip-exact.
func TestSkipLandsOnRedirectCycle(t *testing.T) {
	res := runBothWays(t, `
	movi r2 = 0x1000
	movi r3 = 40
	movi r1 = 0
loop:
	ld4 r4 = [r2] ;;
	cmpi.ne p1, p2 = r4, 0 ;;
	(p1) br odd
	addi r1 = r1, 100 ;;
	br next
odd:
	addi r1 = r1, 1 ;;
next:
	addi r2 = r2, 4096
	subi r3 = r3, 1
	cmpi.ne p3, p4 = r3, 0 ;;
	(p3) br loop
	halt
`, func(m *arch.Memory) {
		for i := 0; i < 40; i++ {
			m.Store(uint32(0x1000+4096*i), 4, uint64(i%2))
		}
	})
	if got := res.RF.Read(isa.IntReg(1)).Uint32(); got != 20*100+20*1 {
		t.Errorf("r1 = %d, want %d", got, 20*100+20*1)
	}
	if res.Stats.Branch.Mispredicts == 0 {
		t.Error("no mispredictions: the redirect path was not exercised")
	}
	if res.Stats.CGOOO.BlockSquashes == 0 {
		t.Error("no block squashes on an alternating branch")
	}
	if res.Stats.Cat[sim.StallLoad] == 0 {
		t.Error("no load-stall cycles: nothing for the skip to fast-forward")
	}
}

// TestSkipSingleCycleStall: dependent single-cycle latencies give wake targets
// of now+1 — the degenerate one-cycle jump — which must account identically
// to ticking, including the per-cycle occupancy integral.
func TestSkipSingleCycleStall(t *testing.T) {
	runBothWays(t, `
	movi r2 = 0x1000
	st4 [r2] = r2 ;;
	ld4 r1 = [r2] ;;
	add r3 = r1, r1 ;;
	add r4 = r3, r3 ;;
	mul r5 = r4, r4 ;;
	add r6 = r5, r5 ;;
	halt
`, nil)
}

// TestSkipLongQuiescentStall: a pointer chase across cold lines produces long
// idle stretches with a constant number of live blocks; the bulk jump must
// credit load stalls and WindowOccCy exactly as the ticking path does.
func TestSkipLongQuiescentStall(t *testing.T) {
	res := runBothWays(t, `
	movi r1 = 0x1000
	movi r3 = 100
loop:
	ld4 r1 = [r1]
	subi r3 = r3, 1
	cmpi.ne p1, p2 = r3, 0 ;;
	(p1) br loop
	halt
`, func(m *arch.Memory) {
		addr := uint32(0x1000)
		for i := 0; i < 110; i++ {
			nxt := addr + 4096
			m.Store(addr, 4, uint64(nxt))
			addr = nxt
		}
	})
	if ld := res.Stats.Cat[sim.StallLoad]; ld < res.Stats.Cycles/2 {
		t.Errorf("load stalls %d of %d cycles; chase should be load-dominated", ld, res.Stats.Cycles)
	}
}

// TestSkipWindowFullStall: with a tiny geometry the dispatch stage parks on
// window exhaustion while misses drain; those idle window-full cycles are
// exactly the ones the skip bulk-credits, so WindowFullCy must match between
// modes (covered by the full-Stats equality in runBothWays).
func TestSkipWindowFullStall(t *testing.T) {
	src := "	movi r10 = 0x100000\n"
	for i := 0; i < 40; i++ {
		src += "	ld4 r" + itoa(1+i%60) + " = [r10+" + itoa(8192*(i+1)) + "]\n"
	}
	src += "	halt\n"
	p := isa.MustAssemble(src)

	cfg := DefaultConfig()
	cfg.NumWindows = 2
	cfg.BlockSize = 4
	var got [2]*sim.Result
	for i, disable := range []bool{false, true} {
		c := cfg
		c.DisableSkip = disable
		m, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run(context.Background(), p, arch.NewMemory())
		if err != nil {
			t.Fatal(err)
		}
		got[i] = res
	}
	if got[0].Stats != got[1].Stats {
		t.Errorf("stats diverged with skipping on:\n  on:  %+v\n  off: %+v", got[0].Stats, got[1].Stats)
	}
	if got[0].Stats.CGOOO.WindowFullCy == 0 {
		t.Error("tiny geometry never hit window-full: the edge under test did not occur")
	}
}
