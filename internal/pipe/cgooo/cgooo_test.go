package cgooo

import (
	"context"
	"testing"

	"multipass/internal/arch"
	"multipass/internal/isa"
	"multipass/internal/pipe/inorder"
	"multipass/internal/pipe/ooo"
	"multipass/internal/sim"
)

func run(t *testing.T, cfg Config, src string, setup func(*arch.Memory)) *sim.Result {
	t.Helper()
	p := isa.MustAssemble(src)
	image := arch.NewMemory()
	if setup != nil {
		setup(image)
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(context.Background(), p, image)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := arch.Run(p, image.Clone(), 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Retired != ref.State.Retired {
		t.Fatalf("retired %d, reference %d", res.Stats.Retired, ref.State.Retired)
	}
	if !res.RF.Equal(ref.State.RF) || !res.Mem.Equal(ref.State.Mem) {
		t.Fatal("cgooo final state diverged from reference")
	}
	return res
}

func runOther(t *testing.T, m sim.Machine, src string, setup func(*arch.Memory)) *sim.Result {
	t.Helper()
	p := isa.MustAssemble(src)
	image := arch.NewMemory()
	if setup != nil {
		setup(image)
	}
	res, err := m.Run(context.Background(), p, image)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

const missOverlap = `
	movi r10 = 0x100000
	ld4 r1 = [r10]
	add r2 = r1, r1
	ld4 r3 = [r10+8192]
	add r4 = r3, r3
	ld4 r5 = [r10+16384]
	add r6 = r5, r5
	halt
`

// TestOverlapsIndependentMisses: the whole program is one block (no
// branches), so intra-block out-of-order issue overlaps all three misses
// where the in-order machine serializes them.
func TestOverlapsIndependentMisses(t *testing.T) {
	cg := run(t, DefaultConfig(), missOverlap, nil)
	im, err := inorder.New(sim.Default())
	if err != nil {
		t.Fatal(err)
	}
	base := runOther(t, im, missOverlap, nil)
	if cg.Stats.Cycles+200 > base.Stats.Cycles {
		t.Errorf("cgooo %d cycles vs inorder %d: expected overlap win", cg.Stats.Cycles, base.Stats.Cycles)
	}
}

func TestLoopMatchesReference(t *testing.T) {
	res := run(t, DefaultConfig(), `
	movi r1 = 0
	movi r2 = 0x1000
	movi r3 = 100
loop:
	ld4 r4 = [r2]
	add r1 = r1, r4
	addi r2 = r2, 4
	subi r3 = r3, 1
	cmpi.ne p1, p2 = r3, 0 ;;
	(p1) br loop
	halt
`, func(m *arch.Memory) {
		for i := 0; i < 100; i++ {
			m.Store(uint32(0x1000+4*i), 4, uint64(i))
		}
	})
	if res.Stats.IPC() <= 0.5 {
		t.Errorf("IPC = %.2f, unexpectedly low for a simple loop", res.Stats.IPC())
	}
	// Every loop iteration ends in a branch, so blocks are iteration-sized
	// and the model dispatched at least one block per iteration.
	if res.Stats.CGOOO.Blocks < 100 {
		t.Errorf("blocks dispatched = %d, want >= one per iteration", res.Stats.CGOOO.Blocks)
	}
	if res.Stats.CGOOO.MaxBlockLen == 0 || res.Stats.CGOOO.MaxBlockLen > uint64(DefaultConfig().BlockSize) {
		t.Errorf("MaxBlockLen = %d, outside (0, BlockSize]", res.Stats.CGOOO.MaxBlockLen)
	}
}

// TestBlockSquashAccounting: an unpredictable data-dependent branch must
// squash at block granularity — flush events, squashed blocks, and squashed
// instructions all counted, and the final state still byte-identical to the
// oracle (squash bookkeeping cannot corrupt rename state).
func TestBlockSquashAccounting(t *testing.T) {
	res := run(t, DefaultConfig(), `
	movi r1 = 12345
	movi r4 = 1000
loop:
	shli r5 = r1, 13
	xor r1 = r1, r5
	shri r5 = r1, 17
	xor r1 = r1, r5
	andi r6 = r1, 1
	cmpi.eq p1, p2 = r6, 1 ;;
	(p1) br skip
	addi r3 = r3, 1
skip:
	subi r4 = r4, 1
	cmpi.ne p1, p2 = r4, 0 ;;
	(p1) br loop
	halt
`, nil)
	cg := &res.Stats.CGOOO
	if cg.BlockSquashes == 0 {
		t.Error("unpredictable branches never squashed a block")
	}
	if res.Stats.Branch.Mispredicts == 0 {
		t.Error("no mispredictions recorded")
	}
	if cg.SquashedInsts == 0 {
		t.Error("squashes discarded no instructions")
	}
	if cg.SquashedBlocks > cg.SquashedInsts {
		t.Errorf("squashed blocks %d > squashed instructions %d", cg.SquashedBlocks, cg.SquashedInsts)
	}
}

// TestWindowPressure: a long run of branch-free independent loads splits into
// BlockSize-capped blocks; with only 2 windows the dispatch stage must stall
// on window exhaustion, and fewer windows must never be faster.
func TestWindowPressure(t *testing.T) {
	src := "	movi r10 = 0x100000\n"
	for i := 0; i < 80; i++ {
		src += "	ld4 r" + itoa(1+i%60) + " = [r10+" + itoa(8192*(i+1)) + "]\n"
	}
	src += "	halt\n"

	wide := run(t, DefaultConfig(), src, nil)
	narrow := DefaultConfig()
	narrow.NumWindows = 2
	narrow.BlockSize = 8
	res := run(t, narrow, src, nil)
	if res.Stats.CGOOO.WindowFullCy == 0 {
		t.Error("2 windows of 8 never filled on an 80-load run")
	}
	if res.Stats.Cycles < wide.Stats.Cycles {
		t.Errorf("narrow geometry (%d cycles) beat default (%d)", res.Stats.Cycles, wide.Stats.Cycles)
	}
	if p := res.Stats.CGOOO.PeakLiveBlocks; p != 2 {
		t.Errorf("PeakLiveBlocks = %d with 2 windows under pressure, want 2", p)
	}
}

// TestNeverFasterThanOOO: on a block-friendly straight-line miss program the
// unified-window machine is at least as fast — cgooo only constrains the
// schedule (per-window width, in-order dispatch), it never adds capability.
func TestNeverFasterThanOOO(t *testing.T) {
	om, err := ooo.New(ooo.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	o := runOther(t, om, missOverlap, nil)
	cg := run(t, DefaultConfig(), missOverlap, nil)
	if cg.Stats.Cycles < o.Stats.Cycles {
		t.Errorf("cgooo %d cycles beat ooo %d on a single-block program", cg.Stats.Cycles, o.Stats.Cycles)
	}
}

// TestWindowOccupancyIntegral: the occupancy integral is bounded by
// NumWindows per cycle and must be nonzero on any program that dispatches.
func TestWindowOccupancyIntegral(t *testing.T) {
	res := run(t, DefaultConfig(), missOverlap, nil)
	cg := &res.Stats.CGOOO
	if cg.WindowOccCy == 0 {
		t.Error("occupancy integral is zero")
	}
	if max := res.Stats.Cycles * uint64(DefaultConfig().NumWindows); cg.WindowOccCy > max {
		t.Errorf("WindowOccCy %d exceeds cycles x NumWindows %d", cg.WindowOccCy, max)
	}
	if cg.PeakLiveBlocks == 0 || cg.PeakLiveBlocks > uint64(DefaultConfig().NumWindows) {
		t.Errorf("PeakLiveBlocks = %d, outside (0, NumWindows]", cg.PeakLiveBlocks)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.NumWindows = 0
	if _, err := New(bad); err == nil {
		t.Error("zero windows accepted")
	}
	bad2 := DefaultConfig()
	bad2.NumWindows = maxWindows + 1
	if _, err := New(bad2); err == nil {
		t.Error("NumWindows above the fixed-array cap accepted")
	}
	bad3 := DefaultConfig()
	bad3.WindowIssue = 0
	if _, err := New(bad3); err == nil {
		t.Error("zero per-window issue width accepted")
	}
	bad4 := DefaultConfig()
	bad4.BlockSize = 0
	if _, err := New(bad4); err == nil {
		t.Error("zero block size accepted")
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}
