package ooo

import (
	"context"
	"testing"

	"multipass/internal/arch"
	"multipass/internal/isa"
)

// TestFetchBarrierOnUnresolvableMispredict: a branch whose condition
// depends on a missing load and whose prediction is wrong must stall the
// front end until it resolves — the machine must not profit from work it
// could only have fetched down the wrong path.
func TestFetchBarrierOnUnresolvableMispredict(t *testing.T) {
	// The branch direction alternates with the loaded value (PRNG-seeded
	// memory), so gshare stays near 50%; each wrong prediction must cost a
	// full miss-resolution delay, not just the flush penalty.
	src := `
	movi r10 = 0x100000
	movi r20 = 40
loop:
	ld4 r1 = [r10]       # fresh long miss each iteration
	andi r2 = r1, 1
	cmpi.eq p1, p2 = r2, 1 ;;
	(p1) br odd
	addi r3 = r3, 1
odd:
	addi r10 = r10, 8192
	subi r20 = r20, 1
	cmpi.ne p3, p4 = r20, 0 ;;
	(p3) br loop
	halt
`
	p := isa.MustAssemble(src)
	image := arch.NewMemory()
	for i := 0; i < 48; i++ {
		image.Store(uint32(0x100000+8192*i), 4, uint64(i*2654435761))
	}
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(context.Background(), p, image)
	if err != nil {
		t.Fatal(err)
	}
	// With the barrier, consecutive iterations' misses cannot overlap when
	// the intervening branch is mispredicted: the run must cost at least
	// (mispredicted branches) * memory latency.
	miss := res.Stats.Branch.Mispredicts
	if miss < 5 {
		t.Fatalf("only %d mispredicts; PRNG data not unpredictable enough", miss)
	}
	if res.Stats.Cycles < miss*145 {
		t.Errorf("cycles = %d < mispredicts(%d) * 145: machine profited from wrong-path work",
			res.Stats.Cycles, miss)
	}
}

// TestROBFillsOnLongMiss: a long-latency load at the ROB head must
// eventually fill the ROB and stall rename.
func TestROBFillsOnLongMiss(t *testing.T) {
	// Loop shape keeps the I-cache warm; each iteration has a fresh long
	// miss at the head with plenty of work behind it.
	src := "	movi r10 = 0x100000\n	movi r20 = 4\nloop:\n	ld4 r1 = [r10]\n	add r9 = r1, r1\n"
	for i := 0; i < 120; i++ {
		src += "	addi r3 = r3, 1\n"
	}
	src += `
	addi r10 = r10, 8192
	subi r20 = r20, 1
	cmpi.ne p1, p2 = r20, 0 ;;
	(p1) br loop
	halt
`
	cfg := DefaultConfig()
	cfg.ROBSize = 64
	cfg.WindowSize = 32
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(context.Background(), isa.MustAssemble(src), arch.NewMemory())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.OOO.ROBFullCy == 0 {
		t.Error("ROB never filled behind a 145-cycle miss")
	}
}

// TestRetireWidthBoundsIPC: with retire width 1 the machine cannot exceed
// IPC 1 no matter how parallel the code is.
func TestRetireWidthBoundsIPC(t *testing.T) {
	src := "	movi r1 = 1\n	movi r20 = 200\nloop:\n"
	for i := 0; i < 12; i++ {
		src += "	addi r" + itoa(2+i%6) + " = r1, " + itoa(i) + "\n"
	}
	src += `
	subi r20 = r20, 1
	cmpi.ne p1, p2 = r20, 0 ;;
	(p1) br loop
	halt
`
	cfg := DefaultConfig()
	cfg.RetireWidth = 1
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(context.Background(), isa.MustAssemble(src), arch.NewMemory())
	if err != nil {
		t.Fatal(err)
	}
	if ipc := res.Stats.IPC(); ipc > 1.0 {
		t.Errorf("IPC %.2f exceeds retire width 1", ipc)
	}
	wide, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	wres, err := wide.Run(context.Background(), isa.MustAssemble(src), arch.NewMemory())
	if err != nil {
		t.Fatal(err)
	}
	if wres.Stats.Cycles >= res.Stats.Cycles {
		t.Error("wider retire no faster")
	}
}

// TestDecentralizedQueuePressure: the memory queue (16 entries) binds when
// many loads wait on one producer; the unified window does not.
func TestDecentralizedQueuePressure(t *testing.T) {
	src := "	movi r10 = 0x100000\n	ld4 r1 = [r10]\n"
	// 30 loads all dependent on the missing r1: they occupy the mem queue.
	for i := 0; i < 30; i++ {
		src += "	ld4 r" + itoa(2+i%50) + " = [r1+" + itoa(4*i) + "]\n"
	}
	src += "	halt\n"
	m, err := New(RealisticConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(context.Background(), isa.MustAssemble(src), arch.NewMemory())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.OOO.WindowFullCy == 0 {
		t.Error("decentralized memory queue never filled")
	}
}

// TestConservativeMemOrderCosts: with conservative disambiguation a load
// behind a slow-addressed store must wait; the ideal model lets it issue.
func TestConservativeMemOrderCosts(t *testing.T) {
	src := `
	movi r10 = 0x100000
	movi r11 = 0x2000
	movi r12 = 0x3000
	ld4 r1 = [r10]       # long miss produces the store's address base
	st4 [r1] = r12       # store cannot issue until the miss returns
	ld4 r3 = [r11]       # independent load: ideal issues now, conservative waits
	ld4 r4 = [r11+8192]
	add r5 = r3, r4
	halt
`
	p := isa.MustAssemble(src)
	image := arch.NewMemory()
	image.Store(0x100000, 4, 0x4000)
	ideal, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	iRes, err := ideal.Run(context.Background(), p, image)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.ConservativeMemOrder = true
	cons, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cRes, err := cons.Run(context.Background(), p, image)
	if err != nil {
		t.Fatal(err)
	}
	if cRes.Stats.Cycles <= iRes.Stats.Cycles {
		t.Errorf("conservative ordering (%d cycles) not slower than ideal (%d)",
			cRes.Stats.Cycles, iRes.Stats.Cycles)
	}
	// Both must still match the reference architecturally.
	ref, err := arch.Run(p, image.Clone(), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !cRes.RF.Equal(ref.State.RF) {
		t.Error("conservative model diverged")
	}
}
