package ooo

import (
	"context"
	"testing"

	"multipass/internal/arch"
	"multipass/internal/isa"
	"multipass/internal/pipe/inorder"
	"multipass/internal/sim"
)

func run(t *testing.T, cfg Config, src string, setup func(*arch.Memory)) *sim.Result {
	t.Helper()
	p := isa.MustAssemble(src)
	image := arch.NewMemory()
	if setup != nil {
		setup(image)
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(context.Background(), p, image)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := arch.Run(p, image.Clone(), 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Retired != ref.State.Retired {
		t.Fatalf("retired %d, reference %d", res.Stats.Retired, ref.State.Retired)
	}
	if !res.RF.Equal(ref.State.RF) || !res.Mem.Equal(ref.State.Mem) {
		t.Fatal("OOO final state diverged from reference")
	}
	return res
}

func runInorder(t *testing.T, src string, setup func(*arch.Memory)) *sim.Result {
	t.Helper()
	p := isa.MustAssemble(src)
	image := arch.NewMemory()
	if setup != nil {
		setup(image)
	}
	m, err := inorder.New(sim.Default())
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(context.Background(), p, image)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

const missOverlap = `
	movi r10 = 0x100000
	ld4 r1 = [r10]
	add r2 = r1, r1
	ld4 r3 = [r10+8192]
	add r4 = r3, r3
	ld4 r5 = [r10+16384]
	add r6 = r5, r5
	halt
`

func TestOverlapsIndependentMisses(t *testing.T) {
	ooo := run(t, DefaultConfig(), missOverlap, nil)
	base := runInorder(t, missOverlap, nil)
	// Dynamic scheduling overlaps all three misses; in-order serializes
	// them (both pay the same cold I-cache startup).
	if ooo.Stats.Cycles+200 > base.Stats.Cycles {
		t.Errorf("ooo %d cycles vs inorder %d: expected overlap win", ooo.Stats.Cycles, base.Stats.Cycles)
	}
}

func TestLoopMatchesReference(t *testing.T) {
	res := run(t, DefaultConfig(), `
	movi r1 = 0
	movi r2 = 0x1000
	movi r3 = 100
loop:
	ld4 r4 = [r2]
	add r1 = r1, r4
	addi r2 = r2, 4
	subi r3 = r3, 1
	cmpi.ne p1, p2 = r3, 0 ;;
	(p1) br loop
	halt
`, func(m *arch.Memory) {
		for i := 0; i < 100; i++ {
			m.Store(uint32(0x1000+4*i), 4, uint64(i))
		}
	})
	if res.Stats.IPC() <= 0.5 {
		t.Errorf("IPC = %.2f, unexpectedly low for a simple loop", res.Stats.IPC())
	}
}

func TestMispredictionFlushes(t *testing.T) {
	res := run(t, DefaultConfig(), `
	movi r1 = 12345
	movi r4 = 1000
loop:
	shli r5 = r1, 13
	xor r1 = r1, r5
	shri r5 = r1, 17
	xor r1 = r1, r5
	andi r6 = r1, 1
	cmpi.eq p1, p2 = r6, 1 ;;
	(p1) br skip
	addi r3 = r3, 1
skip:
	subi r4 = r4, 1
	cmpi.ne p1, p2 = r4, 0 ;;
	(p1) br loop
	halt
`, nil)
	if res.Stats.OOO.Flushes == 0 {
		t.Error("unpredictable branches never flushed")
	}
	if res.Stats.Branch.Mispredicts == 0 {
		t.Error("no mispredictions recorded")
	}
}

func TestRealisticQueuesAreSlower(t *testing.T) {
	// Many independent long-latency loads: the 16-entry memory queue limits
	// how much parallelism the realistic variant can expose.
	src := "	movi r10 = 0x100000\n"
	for i := 0; i < 40; i++ {
		src += "	ld4 r" + itoa(1+i%60) + " = [r10+" + itoa(8192*(i+1)) + "]\n"
	}
	src += "	halt\n"
	ideal := run(t, DefaultConfig(), src, nil)
	realistic := run(t, RealisticConfig(), src, nil)
	if realistic.Stats.Cycles < ideal.Stats.Cycles {
		t.Errorf("realistic (%d cycles) beat ideal (%d)", realistic.Stats.Cycles, ideal.Stats.Cycles)
	}
	if realistic.Stats.OOO.WindowFullCy == 0 {
		t.Error("decentralized queues never filled")
	}
}

func TestStallAttributionLoadDominatedByPointerChase(t *testing.T) {
	res := run(t, DefaultConfig(), `
	movi r1 = 0x1000
	movi r3 = 100
loop:
	ld4 r1 = [r1]
	subi r3 = r3, 1
	cmpi.ne p1, p2 = r3, 0 ;;
	(p1) br loop
	halt
`, func(m *arch.Memory) {
		addr := uint32(0x1000)
		for i := 0; i < 120; i++ {
			nxt := addr + 8192
			m.Store(addr, 4, uint64(nxt))
			addr = nxt
		}
	})
	s := &res.Stats
	if s.Cat[sim.StallLoad] < s.Cycles/3 {
		t.Errorf("load stalls %d of %d cycles: dependent chase should dominate", s.Cat[sim.StallLoad], s.Cycles)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.ROBSize = 10 // smaller than window
	if _, err := New(bad); err == nil {
		t.Error("ROB smaller than window accepted")
	}
	bad2 := RealisticConfig()
	bad2.QueueSize = 0
	if _, err := New(bad2); err == nil {
		t.Error("zero queue size accepted")
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}
