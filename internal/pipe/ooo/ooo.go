// Package ooo implements the paper's out-of-order comparison models (§5.1):
// an idealized machine with register renaming free of WAW/WAR hazards, a
// 128-entry scheduling window, a 256-entry reorder buffer, oldest-first
// select, and three extra front-end stages reflected in the misprediction
// penalty; and the §5.2 "realistic" variant with decentralized 16-entry
// scheduling queues for memory, floating-point, and integer instructions.
//
// Idealizations, matching the paper's intent: scheduling and register read
// happen together (no speculative wakeup), predicate renaming is ideal, and
// memory disambiguation is perfect (loads issue as soon as their address
// register is ready and always receive correct values).
package ooo

import (
	"context"
	"fmt"

	"multipass/internal/arch"
	"multipass/internal/bpred"
	"multipass/internal/isa"
	"multipass/internal/mem"
	"multipass/internal/sim"
)

func init() {
	factory := func(realistic bool) sim.Factory {
		return func(opts sim.ModelOptions) (sim.Machine, error) {
			cfg := DefaultConfig()
			if realistic {
				cfg = RealisticConfig()
			}
			cfg.Hier = opts.Hier
			if opts.MaxInsts != 0 {
				cfg.MaxInsts = opts.MaxInsts
			}
			cfg.DisableSkip = opts.DisableSkip
			return New(cfg)
		}
	}
	sim.Register("ooo", factory(false))
	sim.Describe("ooo", "idealized large-window out-of-order (the paper's high-power offense)")
	sim.Register("ooo-realistic", factory(true))
	sim.Describe("ooo-realistic", "resource-constrained out-of-order (Table 2 window and ROB)")
}

// Config extends the common configuration with window geometry.
type Config struct {
	sim.Config
	// WindowSize is the unified scheduling window capacity (Table 2: 128).
	WindowSize int
	// ROBSize is the reorder buffer capacity (Table 2: 256).
	ROBSize int
	// RetireWidth is instructions retired per cycle.
	RetireWidth int
	// Decentralized selects the §5.2 realistic variant: per-class
	// scheduling queues of QueueSize entries each.
	Decentralized bool
	QueueSize     int
	// ConservativeMemOrder replaces the ideal memory disambiguation with
	// the conservative policy real load/store queues fall back on: a load
	// may not issue until every older store has issued (its address is
	// known). The paper's ideal model assumes perfect disambiguation; this
	// knob quantifies what that idealization is worth.
	ConservativeMemOrder bool
}

// DefaultConfig returns the idealized Table 2 out-of-order machine. The +3
// front-end (rename/schedule) stages raise the misprediction penalty.
func DefaultConfig() Config {
	c := Config{Config: sim.Default()}
	c.BufferSize = 256
	c.MispredictPenalty = 11
	c.WindowSize = 128
	c.ROBSize = 256
	c.RetireWidth = 6
	c.QueueSize = 16
	return c
}

// RealisticConfig returns the §5.2 variant with decentralized 16-entry
// scheduling queues.
func RealisticConfig() Config {
	c := DefaultConfig()
	c.Decentralized = true
	return c
}

// Validate checks the OOO-specific parameters.
func (c *Config) Validate() error {
	if err := c.Config.Validate(); err != nil {
		return err
	}
	if c.WindowSize < 1 || c.ROBSize < c.WindowSize || c.RetireWidth < 1 {
		return fmt.Errorf("ooo: invalid window/ROB geometry")
	}
	if c.Decentralized && c.QueueSize < 1 {
		return fmt.Errorf("ooo: invalid queue size")
	}
	return nil
}

// Machine is the out-of-order model.
type Machine struct {
	cfg Config
	tr  *sim.Trace
}

// UseTrace implements sim.TraceUser: subsequent runs of the traced program
// read the pre-decoded stream instead of re-interpreting it.
func (m *Machine) UseTrace(tr *sim.Trace) { m.tr = tr }

// New validates the configuration and returns the model.
func New(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if _, err := mem.NewHierarchy(cfg.Hier); err != nil {
		return nil, err
	}
	return &Machine{cfg: cfg}, nil
}

// Name implements sim.Machine.
func (m *Machine) Name() string {
	if m.cfg.Decentralized {
		return "ooo-realistic"
	}
	return "ooo"
}

type entryState uint8

const (
	stWaiting entryState = iota
	stIssued
	stDone
)

// entry is one in-flight instruction. Entries live in a ring indexed by
// seq&mask, and operands rename to at most four producer sequences (QP plus
// three sources), so the whole ROB is a fixed-size value array.
type entry struct {
	d          *sim.DynInst
	state      entryState
	ndeps      uint8
	queue      int8 // scheduling queue index (decentralized variant)
	deps       [4]uint64
	completion uint64
}

// noSeq marks an empty rename-table slot.
const noSeq = ^uint64(0)

// queueOf maps an opcode to its decentralized scheduling queue.
func queueOf(op isa.Op) int {
	switch op.FU() {
	case isa.FUMem:
		return 0
	case isa.FUFP:
		return 1
	default:
		return 2
	}
}

const progressWindow = 1 << 20

// Run implements sim.Machine.
func (m *Machine) Run(ctx context.Context, p *isa.Program, image *arch.Memory) (*sim.Result, error) {
	return m.runFrom(ctx, p, image, nil)
}

// CheckpointSpec implements sim.IntervalRunner.
func (m *Machine) CheckpointSpec() sim.CheckpointSpec {
	return sim.CheckpointSpec{Hier: m.cfg.Hier, PredictorEntries: m.cfg.PredictorEntries, MaxInsts: m.cfg.MaxInsts}
}

// RunInterval implements sim.IntervalRunner: it simulates one checkpointed
// interval of the dynamic stream. The machine carries only read-only state
// (config, trace), so concurrent interval calls are safe.
func (m *Machine) RunInterval(ctx context.Context, p *isa.Program, image *arch.Memory, ck *sim.Checkpoint) (*sim.Result, error) {
	return m.runFrom(ctx, p, image, ck)
}

func (m *Machine) runFrom(ctx context.Context, p *isa.Program, image *arch.Memory, ck *sim.Checkpoint) (*sim.Result, error) {
	cfg := m.cfg
	hier := mem.MustNewHierarchy(cfg.Hier)
	pred := bpred.New(cfg.PredictorEntries)
	start, measure, end := ck.Bounds()
	var stream *sim.Stream
	if ck == nil {
		stream = sim.StreamFor(p, image, cfg.MaxInsts, m.tr)
	} else {
		if err := hier.RestoreWarm(ck.Caches); err != nil {
			return nil, err
		}
		if err := pred.RestoreWarm(ck.Pred); err != nil {
			return nil, err
		}
		stream = sim.StreamFrom(p, ck, cfg.MaxInsts, m.tr)
	}
	fe := sim.NewFetchUnit(stream, hier, cfg.FetchWidth)
	fe.StartAt(start)

	// The ROB is a power-of-two ring of entry values indexed by seq&mask;
	// live entries are [base, base+count).
	robCap := 1
	for robCap < cfg.ROBSize {
		robCap <<= 1
	}
	ring := make([]entry, robCap)
	mask := uint64(robCap - 1)

	var (
		wm       sim.WarmMark
		st       sim.Stats
		now      uint64
		base     = start                 // seq of the ROB head
		count    int                     // live ROB entries
		lastProd [isa.NumFlatRegs]uint64 // flat reg -> producing seq
		inWindow int
		inQueue  [3]int
		haltSeq  = ^uint64(0)
		lastWork uint64
		regBuf   [4]isa.Reg
		// barrier is the sequence of an in-flight branch whose prediction
		// is wrong: real hardware fetches the wrong path beyond it, so no
		// younger instruction may enter the machine until it resolves.
		barrier = ^uint64(0)
		skip    sim.SkipState
	)
	skipOn := !cfg.DisableSkip
	for i := range lastProd {
		lastProd[i] = noSeq
	}
	entAt := func(seq uint64) *entry { return &ring[seq&mask] }

	rebuildRename := func() {
		for i := range lastProd {
			lastProd[i] = noSeq
		}
		for k := 0; k < count; k++ {
			seq := base + uint64(k)
			for _, reg := range entAt(seq).d.Inst.Writes(regBuf[:0]) {
				if !reg.IsZeroReg() {
					lastProd[reg.Flat()] = seq
				}
			}
		}
	}

	for {
		if err := sim.PollContext(ctx, now); err != nil {
			return nil, fmt.Errorf("ooo: %w", err)
		}
		wm.Mark(base, measure, &st, pred, hier)
		if base >= end {
			// Non-final interval done: every measured sequence has retired
			// (the final interval instead exits through the halt below).
			break
		}
		skip.Begin()
		// Retire in order from the ROB head.
		retired := 0
		for retired < cfg.RetireWidth && count > 0 {
			if !wm.Marked() && base >= measure {
				// No retire burst spans the measurement mark; the baseline
				// lands exactly on the boundary next cycle.
				break
			}
			e := entAt(base)
			if e.state != stDone || e.completion > now {
				if e.state == stDone {
					skip.Note(e.completion)
				}
				break
			}
			if e.d.Halt {
				haltSeq = e.d.Seq
			}
			base++
			count--
			st.Retired++
			retired++
		}
		fe.Release(base)
		if haltSeq != ^uint64(0) {
			st.Cycles++ // the retire cycle of halt
			st.Cat[sim.StallExecution]++
			break
		}

		// Rename/insert up to FetchWidth instructions.
		fe.SetLimit(base + uint64(cfg.ROBSize))
		inserted := 0
		robFullIdle, winFullIdle := false, false
		for inserted < cfg.FetchWidth && barrier == ^uint64(0) {
			seq := base + uint64(count)
			if seq >= end {
				// Interval end: nothing past it enters the machine, so base
				// rises to exactly end as the ROB drains.
				break
			}
			if count >= cfg.ROBSize {
				st.OOO.ROBFullCy++
				robFullIdle = inserted == 0
				break
			}
			if cfg.Decentralized {
				// Peek class before committing to insert.
				d, err := stream.At(seq)
				if err != nil {
					return nil, err
				}
				if d == nil {
					break
				}
				if inQueue[queueOf(d.Inst.Op)] >= cfg.QueueSize {
					st.OOO.WindowFullCy++
					winFullIdle = inserted == 0
					break
				}
			} else if inWindow >= cfg.WindowSize {
				st.OOO.WindowFullCy++
				winFullIdle = inserted == 0
				break
			}
			d, err := stream.At(seq)
			if err != nil {
				return nil, err
			}
			if d == nil {
				break
			}
			fready, ok, err := fe.ReadyAt(seq)
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			if fready > now {
				skip.Note(fready)
				break
			}
			e := entAt(seq)
			*e = entry{d: d, queue: int8(queueOf(d.Inst.Op))}
			for _, reg := range d.Inst.Reads(regBuf[:0]) {
				if reg.IsZeroReg() {
					continue
				}
				// noSeq passes the >= base filter (it is the max uint64),
				// so an empty slot must be rejected explicitly.
				if prod := lastProd[reg.Flat()]; prod != noSeq && prod >= base {
					e.deps[e.ndeps] = prod
					e.ndeps++
				}
			}
			for _, reg := range d.Inst.Writes(regBuf[:0]) {
				if !reg.IsZeroReg() {
					lastProd[reg.Flat()] = seq
				}
			}
			count++
			inWindow++
			inQueue[e.queue]++
			inserted++
			if d.Halt {
				break
			}
			if d.IsBranch && pred.Predict(d.Addr()) != d.Taken {
				// Everything fetched beyond this branch would be
				// wrong-path; stall the front end until it resolves.
				barrier = seq
			}
		}

		// Select and issue: oldest-first among ready waiting entries.
		var use isa.FUUse
		issued := 0
		for i := 0; i < count && issued < cfg.Caps.MaxIssue; i++ {
			e := entAt(base + uint64(i))
			if e.state != stWaiting {
				continue
			}
			ready := true
			for _, dep := range e.deps[:e.ndeps] {
				if dep < base {
					continue
				}
				de := entAt(dep)
				if de.state != stDone || de.completion > now {
					ready = false
					break
				}
			}
			if ready && cfg.ConservativeMemOrder && e.d.IsLoad {
				// Conservative disambiguation: all older stores must have
				// issued before a load may.
				for j := 0; j < i; j++ {
					if ej := entAt(base + uint64(j)); ej.d.IsStore && ej.state == stWaiting {
						ready = false
						break
					}
				}
			}
			if !ready {
				continue
			}
			in := e.d.Inst
			if !use.Fits(in.Op, &cfg.Caps) {
				continue
			}
			use.Add(in.Op)
			e.state = stIssued
			inWindow--
			inQueue[e.queue]--
			issued++
			lastWork = now

			e.completion = now + uint64(in.Op.Latency())
			switch {
			case e.d.IsLoad:
				e.completion = hier.AccessData(e.d.MemAddr, now, false, false)
			case e.d.IsStore:
				hier.AccessData(e.d.MemAddr, now, true, false)
			}
			if e.completion <= now {
				e.completion = now + 1
			}
			if e.completion <= now+1 {
				e.state = stDone
			}

			if e.d.IsBranch {
				if e.d.Seq == barrier {
					barrier = ^uint64(0) // resolved; fetch may resume
				}
				correct := pred.Update(e.d.Addr(), e.d.Taken)
				if !correct {
					// Squash younger in-flight instructions and refetch.
					cut := int(e.d.Seq - base + 1)
					squashed := count - cut
					for j := cut; j < count; j++ {
						if y := entAt(base + uint64(j)); y.state == stWaiting {
							inWindow--
							inQueue[y.queue]--
						}
					}
					count = cut
					if barrier != ^uint64(0) && barrier >= base+uint64(cut) {
						barrier = ^uint64(0)
					}
					st.OOO.Flushes++
					st.OOO.Squashed += uint64(squashed)
					fe.Flush(e.d.Seq+1, now+1+uint64(cfg.MispredictPenalty))
					rebuildRename()
					break
				}
			}
		}
		// Promote issued entries whose completion has arrived.
		promoted := 0
		for k := 0; k < count; k++ {
			if e := entAt(base + uint64(k)); e.state == stIssued {
				if e.completion <= now+1 {
					e.state = stDone
					promoted++
				} else {
					// First cycle this entry can promote; every waiting
					// entry's time deadline bottoms out at an issued
					// producer's completion, so noting these covers the
					// whole dependence graph.
					skip.Note(e.completion - 1)
				}
			}
		}

		// Attribution (paper §5.2): a cycle with no issue is charged to the
		// oldest unfinished instruction's stall cause, or to the front end
		// when the machine is empty.
		cat := sim.StallExecution
		if issued == 0 {
			if count == 0 {
				cat = sim.StallFrontEnd
			} else {
				cause := sim.StallFrontEnd
				for k := 0; k < count; k++ {
					e := entAt(base + uint64(k))
					if e.state == stDone && e.completion <= now {
						continue
					}
					switch {
					case e.state != stWaiting:
						// Oldest unfinished is executing.
						if e.d.IsLoad {
							cause = sim.StallLoad
						} else {
							cause = sim.StallOther
						}
					default:
						// Waiting on producers: find the slowest unfinished one.
						cause = sim.StallOther
						for _, dep := range e.deps[:e.ndeps] {
							if dep < base {
								continue
							}
							de := entAt(dep)
							if de.state == stDone && de.completion <= now {
								continue
							}
							if de.d.IsLoad {
								cause = sim.StallLoad
								break
							}
						}
					}
					break
				}
				cat = cause
			}
		}
		st.Cat[cat]++
		st.Cycles++
		now++
		// Idle-cycle fast-forwarding: when nothing retired, inserted, issued,
		// or promoted, every structure holds its state and the attribution
		// scan reads only monotone comparisons (stDone entries always have
		// completion <= now, issued ones were noted above), so cycles up to
		// the earliest noted deadline replay identically.
		if skipOn && retired == 0 && inserted == 0 && issued == 0 && promoted == 0 {
			if d := skip.Jump(hier, now); d > 0 {
				st.Cat[cat] += d
				if robFullIdle {
					st.OOO.ROBFullCy += d
				}
				if winFullIdle {
					st.OOO.WindowFullCy += d
				}
				st.Cycles += d
				now += d
			}
		}
		if now-lastWork > progressWindow {
			return nil, fmt.Errorf("ooo: no issue for %d cycles at base %d", progressWindow, base)
		}
	}

	st.Branch = pred.Stats()
	st.Memory = hier.Stats()
	wm.Discard(&st)
	if err := st.CheckConsistency(); err != nil {
		return nil, err
	}
	// The OOO model does not simulate values; its architectural outcome is
	// the oracle's final state (no wrong-path values can leak because
	// wrong paths are never simulated). Only the final interval — the one
	// that retires the halt — reports a meaningful state; the stitcher uses
	// exactly that one.
	fin := stream.FinalState()
	return &sim.Result{Stats: st, RF: fin.RF, Mem: fin.Mem}, nil
}
