// Package runahead implements the Dundas-Mudge runahead model the paper
// compares against (§2, §5.4): an in-order pipeline that, on a stall-on-use
// of a load value, continues executing speculatively past the stall purely
// for its prefetching effect. No results are preserved: when the blocking
// load returns, the pipeline flushes all speculative state and re-executes
// every instruction from the stalled consumer onward. There is no advance
// restart and no issue regrouping.
package runahead

import (
	"context"
	"fmt"

	"multipass/internal/arch"
	"multipass/internal/bpred"
	"multipass/internal/isa"
	"multipass/internal/mem"
	"multipass/internal/sim"
)

func init() {
	sim.Register("runahead", func(opts sim.ModelOptions) (sim.Machine, error) {
		cfg := DefaultConfig()
		cfg.Hier = opts.Hier
		if opts.MaxInsts != 0 {
			cfg.MaxInsts = opts.MaxInsts
		}
		cfg.DisableSkip = opts.DisableSkip
		return New(cfg)
	})
	sim.Describe("runahead", "checkpoint-and-runahead execution under long-latency misses")
}

// Config extends the common configuration with the runahead exit penalty.
type Config struct {
	sim.Config
	// ExitPenalty is the pipeline-restore cost in cycles when leaving a
	// runahead episode.
	ExitPenalty int
}

// DefaultConfig returns the runahead configuration used for the §5.4
// comparison: the baseline in-order machine plus runahead.
func DefaultConfig() Config {
	return Config{Config: sim.Default(), ExitPenalty: 2}
}

// Machine is the runahead model.
type Machine struct {
	cfg Config
	tr  *sim.Trace
}

// UseTrace implements sim.TraceUser: subsequent runs of the traced program
// read the pre-decoded stream instead of re-interpreting it.
func (m *Machine) UseTrace(tr *sim.Trace) { m.tr = tr }

// New validates the configuration and returns the model.
func New(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.ExitPenalty < 0 {
		return nil, fmt.Errorf("runahead: negative exit penalty")
	}
	if _, err := mem.NewHierarchy(cfg.Hier); err != nil {
		return nil, err
	}
	return &Machine{cfg: cfg}, nil
}

// Name implements sim.Machine.
func (m *Machine) Name() string { return "runahead" }

const progressWindow = 1 << 20

type runState struct {
	cfg    *Config
	p      *isa.Program
	hier   *mem.Hierarchy
	pred   *bpred.Gshare
	stream *sim.Stream
	fe     *sim.FetchUnit
	own    *arch.State

	readyAt  [isa.NumFlatRegs]uint64
	prodKind [isa.NumFlatRegs]sim.ProducerKind

	// Runahead episode state (discarded at exit).
	inEpisode  bool
	stallUntil uint64
	peek       uint64
	blocked    bool
	raBit      [isa.NumFlatRegs]bool
	raInvalid  [isa.NumFlatRegs]bool
	raVal      [isa.NumFlatRegs]isa.Word
	raReady    [isa.NumFlatRegs]uint64
	// Episode store buffer: exact (addr,size) keyed forwarding. The buffer
	// is append-only within an episode and resliced to zero on entry, and
	// the bucket heads chain entries newest-first, so a lookup that stops at
	// the first key match sees exactly the map-overwrite semantics the
	// episode needs — without a per-episode map allocation.
	raStoreBuf []raStoreEnt
	raStoreIdx [raStoreBuckets]int32

	st       sim.Stats
	now      uint64
	next     uint64
	resumeAt uint64 // no architectural issue before this (exit penalty)
	halted   bool
	lastWork uint64
	regBuf   [4]isa.Reg

	// Interval window (sim.Checkpoint.Bounds); wm tracks the warm-up
	// baseline. For a monolithic run the bounds degenerate to [0, ^uint64(0))
	// and every window check is a no-op.
	measure uint64
	end     uint64
	wm      sim.WarmMark

	// Idle-cycle fast-forwarding (see sim.SkipState). The cycle functions
	// report whether the cycle they just simulated was provably idle and
	// which counters its repeats must be credited to.
	skip    sim.SkipState
	skipOn  bool
	idle    bool          // cycle mutated nothing; repeats replay identically
	idleRA  bool          // repeats also count as runahead cycles
	idleCat sim.StallKind // stall category repeats are charged to
}

const raStoreBuckets = 512

type raStoreEnt struct {
	key     uint64
	val     isa.Word
	invalid bool
	prev    int32 // next-older entry in this bucket, -1 at chain end
}

func storeKey(addr uint32, size int) uint64 {
	return uint64(addr)<<8 | uint64(size)
}

func storeBucket(key uint64) int {
	return int(key * 0x9E3779B97F4A7C15 >> 55) // top 9 bits of a Fibonacci hash
}

// putStore records a runahead store, shadowing any older entry with the key.
func (r *runState) putStore(key uint64, val isa.Word, invalid bool) {
	b := storeBucket(key)
	r.raStoreBuf = append(r.raStoreBuf, raStoreEnt{key: key, val: val, invalid: invalid, prev: r.raStoreIdx[b]})
	r.raStoreIdx[b] = int32(len(r.raStoreBuf) - 1)
}

// getStore returns the newest runahead store with the key, if any.
func (r *runState) getStore(key uint64) (raStoreEnt, bool) {
	for i := r.raStoreIdx[storeBucket(key)]; i >= 0; i = r.raStoreBuf[i].prev {
		if r.raStoreBuf[i].key == key {
			return r.raStoreBuf[i], true
		}
	}
	return raStoreEnt{}, false
}

// Run implements sim.Machine.
func (m *Machine) Run(ctx context.Context, p *isa.Program, image *arch.Memory) (*sim.Result, error) {
	return m.runFrom(ctx, p, image, nil)
}

// CheckpointSpec implements sim.IntervalRunner.
func (m *Machine) CheckpointSpec() sim.CheckpointSpec {
	return sim.CheckpointSpec{Hier: m.cfg.Hier, PredictorEntries: m.cfg.PredictorEntries, MaxInsts: m.cfg.MaxInsts}
}

// RunInterval implements sim.IntervalRunner: it simulates one checkpointed
// interval of the dynamic stream. The machine carries only read-only state
// (config, trace), so concurrent interval calls are safe.
func (m *Machine) RunInterval(ctx context.Context, p *isa.Program, image *arch.Memory, ck *sim.Checkpoint) (*sim.Result, error) {
	return m.runFrom(ctx, p, image, ck)
}

func (m *Machine) runFrom(ctx context.Context, p *isa.Program, image *arch.Memory, ck *sim.Checkpoint) (*sim.Result, error) {
	cfg := m.cfg
	r := &runState{
		cfg:  &cfg,
		p:    p,
		hier: mem.MustNewHierarchy(cfg.Hier),
		pred: bpred.New(cfg.PredictorEntries),
	}
	var start uint64
	start, r.measure, r.end = ck.Bounds()
	if ck == nil {
		r.own = arch.NewState(image.Clone())
		r.stream = sim.StreamFor(p, image, cfg.MaxInsts, m.tr)
	} else {
		if err := r.hier.RestoreWarm(ck.Caches); err != nil {
			return nil, err
		}
		if err := r.pred.RestoreWarm(ck.Pred); err != nil {
			return nil, err
		}
		r.own = &arch.State{RF: ck.RF.Clone(), Mem: ck.Mem.Clone(), PC: ck.PC, Retired: ck.Seq}
		r.stream = sim.StreamFrom(p, ck, cfg.MaxInsts, m.tr)
	}
	r.fe = sim.NewFetchUnit(r.stream, r.hier, cfg.FetchWidth)
	r.fe.StartAt(start)
	r.next = start
	r.skipOn = !cfg.DisableSkip

	for !r.halted && r.next < r.end {
		if err := sim.PollContext(ctx, r.now); err != nil {
			return nil, fmt.Errorf("runahead: %w", err)
		}
		r.wm.Mark(r.next, r.measure, &r.st, r.pred, r.hier)
		if r.inEpisode && r.now >= r.stallUntil {
			r.exitEpisode()
		}
		r.skip.Begin()
		r.idle, r.idleRA = false, false
		var err error
		if r.inEpisode {
			err = r.runaheadCycle()
		} else {
			err = r.archCycle()
		}
		if err != nil {
			return nil, err
		}
		r.st.Cycles++
		r.now++
		r.fe.Release(r.next)
		if r.skipOn && r.idle {
			if d := r.skip.Jump(r.hier, r.now); d > 0 {
				r.st.Cat[r.idleCat] += d
				if r.idleRA {
					r.st.Runahead.Cycles += d
				}
				r.st.Cycles += d
				r.now += d
			}
		}
		if r.now-r.lastWork > progressWindow {
			return nil, fmt.Errorf("runahead: no progress for %d cycles at seq %d", progressWindow, r.next)
		}
	}
	r.st.Branch = r.pred.Stats()
	r.st.Memory = r.hier.Stats()
	r.wm.Discard(&r.st)
	if err := r.st.CheckConsistency(); err != nil {
		return nil, err
	}
	return &sim.Result{Stats: r.st, RF: r.own.RF, Mem: r.own.Mem}, nil
}

func (r *runState) enterEpisode(until uint64) {
	r.skip.MarkDirty() // mode change: the next cycle is a runahead cycle
	r.inEpisode = true
	r.stallUntil = until
	r.peek = r.next
	r.blocked = false
	for i := range r.raBit {
		r.raBit[i] = false
		r.raInvalid[i] = false
	}
	r.raStoreBuf = r.raStoreBuf[:0]
	for i := range r.raStoreIdx {
		r.raStoreIdx[i] = -1
	}
	r.st.Runahead.Episodes++
}

func (r *runState) exitEpisode() {
	// All speculative work is discarded; the pipeline restores and
	// re-executes from the stalled instruction.
	r.inEpisode = false
	r.resumeAt = r.stallUntil + uint64(r.cfg.ExitPenalty)
}

// archCycle is the baseline in-order issue cycle with runahead entry on
// load stall-on-use.
func (r *runState) archCycle() error {
	r.fe.SetLimit(r.next + uint64(r.cfg.BufferSize))
	var use isa.FUUse
	var groupWrites sim.RegSet
	issued := 0
	blocker := sim.StallFrontEnd
	now := r.now

	if now < r.resumeAt {
		// Pipeline restore after a runahead episode.
		r.st.Cat[sim.StallLoad]++
		r.idle, r.idleCat = true, sim.StallLoad
		r.skip.Note(r.resumeAt)
		return nil
	}

	cut := r.wm.Cut(r.measure, r.end)

group:
	for issued < r.cfg.Caps.MaxIssue && !r.halted {
		if r.next >= cut {
			// Window boundary: no group spans the measurement mark or the
			// interval end (unreachable with issued == 0; the outer loop and
			// Mark run first).
			break
		}
		d, err := r.stream.At(r.next)
		if err != nil {
			return err
		}
		if d == nil {
			return fmt.Errorf("runahead: stream ended before halt")
		}
		fready, ok, err := r.fe.ReadyAt(r.next)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("runahead: fetch ended before halt")
		}
		if fready > now {
			blocker = sim.StallFrontEnd
			r.skip.Note(fready)
			break
		}
		in := d.Inst

		if groupWrites.Has(in.QP) {
			break
		}
		if qf := in.QP.Flat(); r.readyAt[qf] > now {
			if r.prodKind[qf] == sim.ProducerLoad {
				r.enterEpisode(r.readyAt[qf])
				blocker = sim.StallLoad
				break
			}
			blocker = r.prodKind[qf].StallFor()
			r.skip.Note(r.readyAt[qf])
			break
		}
		qpTrue := r.own.RF.Read(in.QP).Bool()

		if qpTrue && !in.Op.IsBranch() {
			for _, reg := range in.Reads(r.regBuf[:0]) {
				if reg == in.QP {
					continue
				}
				if groupWrites.Has(reg) {
					break group
				}
				if f := reg.Flat(); r.readyAt[f] > now {
					if r.prodKind[f] == sim.ProducerLoad {
						r.enterEpisode(r.readyAt[f])
						blocker = sim.StallLoad
						break group
					}
					blocker = r.prodKind[f].StallFor()
					r.skip.Note(r.readyAt[f])
					break group
				}
			}
		}
		if qpTrue {
			lat := uint64(in.Op.Latency())
			for _, reg := range in.Writes(r.regBuf[:0]) {
				if groupWrites.Has(reg) {
					break group
				}
				if f := reg.Flat(); r.readyAt[f] > now+lat {
					blocker = sim.StallOther
					r.skip.Note(r.readyAt[f] - lat)
					break group
				}
			}
		}
		if !use.Fits(in.Op, &r.cfg.Caps) {
			blocker = sim.StallOther
			break
		}

		if r.own.PC != d.Index {
			return fmt.Errorf("runahead: own PC %d diverged from stream %d", r.own.PC, d.Index)
		}
		info, err := r.own.Step(r.p)
		if err != nil {
			return err
		}
		use.Add(in.Op)
		r.st.Retired++
		issued++
		r.lastWork = now

		completion := now + uint64(in.Op.Latency())
		kind := sim.ProducerOther
		switch {
		case info.IsLoad:
			completion = r.hier.AccessData(info.MemAddr, now, false, false)
			kind = sim.ProducerLoad
		case info.IsStore:
			r.hier.AccessData(info.MemAddr, now, true, false)
		}
		if !info.Squashed {
			for _, reg := range in.Writes(r.regBuf[:0]) {
				groupWrites.Add(reg)
				if f := reg.Flat(); !reg.IsZeroReg() {
					r.readyAt[f] = completion
					r.prodKind[f] = kind
				}
			}
		}
		if in.Op.Kind() == isa.KindHalt {
			r.halted = true
		}
		r.next++
		if info.IsBranch {
			correct := r.pred.Update(d.Addr(), d.Taken)
			if !correct {
				r.fe.Flush(r.next, now+1+uint64(r.cfg.MispredictPenalty))
			}
			if d.Taken || !correct {
				break
			}
		}
	}

	if issued > 0 {
		r.st.Cat[sim.StallExecution]++
	} else {
		r.st.Cat[blocker]++
		// An issue-free cycle mutated nothing (episode entry marks the skip
		// state dirty, so Jump refuses after enterEpisode).
		r.idle, r.idleCat = true, blocker
	}
	return nil
}

// readRA reads an operand for the runahead stream.
func (r *runState) readRA(reg isa.Reg) (valid bool, ready uint64, val isa.Word) {
	if reg.IsNone() {
		return true, 0, 0
	}
	f := reg.Flat()
	if r.raBit[f] {
		if r.raInvalid[f] {
			return false, 0, 0
		}
		return true, r.raReady[f], r.raVal[f]
	}
	if r.readyAt[f] > r.now {
		if r.prodKind[f] == sim.ProducerLoad {
			return false, 0, 0
		}
		return true, r.readyAt[f], r.own.RF.Read(reg)
	}
	return true, 0, r.own.RF.Read(reg)
}

func (r *runState) writeRA(reg isa.Reg, v isa.Word, ready uint64) {
	if reg.IsNone() || reg.IsZeroReg() {
		return
	}
	f := reg.Flat()
	r.raBit[f] = true
	r.raInvalid[f] = false
	r.raVal[f] = v
	r.raReady[f] = ready
}

func (r *runState) poisonRA(in *isa.Inst) {
	for _, reg := range in.Writes(r.regBuf[:0]) {
		if reg.IsZeroReg() {
			continue
		}
		f := reg.Flat()
		r.raBit[f] = true
		r.raInvalid[f] = true
	}
}

// runaheadLookahead bounds how far an episode may fetch ahead. Runahead
// instructions flow through the pipeline and are re-fetched after the
// episode, so lookahead is fetch-limited rather than buffer-limited; the
// bound is a safety valve only.
const runaheadLookahead = 4096

// runaheadCycle pre-executes speculatively for prefetching only.
func (r *runState) runaheadCycle() error {
	r.st.Runahead.Cycles++
	r.fe.SetLimit(r.next + runaheadLookahead)

	var use isa.FUUse
	slots := 0
	now := r.now
	wasBlocked := r.blocked
	// The main loop exits the episode once now reaches stallUntil, so that
	// is the latest cycle an idle runahead cycle may replay to.
	r.skip.Note(r.stallUntil)

	for slots < r.cfg.Caps.MaxIssue && !r.blocked {
		if r.peek >= r.next+runaheadLookahead {
			break
		}
		d, err := r.stream.At(r.peek)
		if err != nil {
			return err
		}
		if d == nil || d.Inst.Op.Kind() == isa.KindHalt {
			r.blocked = true
			break
		}
		fready, ok, err := r.fe.ReadyAt(r.peek)
		if err != nil {
			return err
		}
		if !ok {
			r.blocked = true
			break
		}
		if fready > now {
			r.skip.Note(fready)
			break
		}
		in := d.Inst

		qpValid, qpReady, qpVal := r.readRA(in.QP)
		if !qpValid {
			if in.Op.IsBranch() {
				if r.pred.Predict(d.Addr()) != d.Taken {
					r.blocked = true // wrong path beyond here
					break
				}
				slots++
				r.peek++
				continue
			}
			r.poisonRA(in)
			r.st.Runahead.Deferred++
			slots++
			r.peek++
			continue
		}
		if qpReady > now {
			r.skip.Note(qpReady)
			break
		}
		qpTrue := qpVal.Bool()

		if in.Op.IsBranch() {
			if qpTrue != d.Taken {
				r.blocked = true // speculative divergence from the true path
				break
			}
			slots++
			r.peek++
			if d.Taken {
				break
			}
			continue
		}
		if !qpTrue {
			slots++
			r.peek++
			continue
		}
		if in.Op == isa.OpRestart {
			// No advance restart in Dundas-Mudge runahead: plain nop.
			slots++
			r.peek++
			continue
		}

		if in.Op.IsStore() {
			av, ar, abase := r.readRA(in.Src1)
			if !av {
				slots++
				r.peek++
				continue
			}
			if ar > now {
				r.skip.Note(ar)
				break
			}
			dv, dr, dval := r.readRA(in.Src2)
			if dv && dr > now {
				r.skip.Note(dr)
				break
			}
			if !use.Fits(in.Op, &r.cfg.Caps) {
				break
			}
			use.Add(in.Op)
			addr := abase.Uint32() + uint32(in.Imm)
			r.putStore(storeKey(addr, in.Op.MemBytes()), dval, !dv)
			r.st.Runahead.PreExecuted++
			slots++
			r.peek++
			continue
		}

		sv, sr, sval := r.readRA(in.Src1)
		var s2v bool
		var s2r uint64
		var s2val isa.Word
		if in.Op.IsLoad() {
			s2v = true
		} else {
			s2v, s2r, s2val = r.readRA(in.Src2)
		}
		if !sv || !s2v {
			r.poisonRA(in)
			r.st.Runahead.Deferred++
			slots++
			r.peek++
			continue
		}
		if sr > now || s2r > now {
			if sr > now {
				r.skip.Note(sr)
			}
			if s2r > now {
				r.skip.Note(s2r)
			}
			break
		}
		if !use.Fits(in.Op, &r.cfg.Caps) {
			break
		}
		use.Add(in.Op)

		if in.Op.IsLoad() {
			addr := sval.Uint32() + uint32(in.Imm)
			if st, hit := r.getStore(storeKey(addr, in.Op.MemBytes())); hit {
				if st.invalid {
					r.poisonRA(in)
				} else {
					r.writeRA(in.Dst, st.val, now+uint64(in.Op.Latency()))
				}
			} else {
				ready := r.hier.AccessData(addr, now, false, true)
				if ready <= now+uint64(r.cfg.Hier.L1D.Latency) {
					r.writeRA(in.Dst, r.own.Mem.LoadWord(in.Op, addr), ready)
				} else {
					r.poisonRA(in) // missing loads yield no value
				}
			}
		} else {
			v := isa.Eval(in.Op, sval, s2val, in.Imm)
			ready := now + uint64(in.Op.Latency())
			r.writeRA(in.Dst, v, ready)
			if !in.Dst2.IsNone() {
				r.writeRA(in.Dst2, isa.BoolWord(!v.Bool()), ready)
			}
		}
		r.st.Runahead.PreExecuted++
		r.lastWork = now
		slots++
		r.peek++
	}

	// Runahead cycles are stall cycles hidden under the blocking load.
	r.st.Cat[sim.StallLoad]++
	if slots == 0 && r.blocked == wasBlocked {
		// Nothing pre-executed and the blocked flag did not flip: every
		// mutation path in the loop above passes through slots++ or sets
		// blocked, so this cycle replays identically until the earliest
		// noted deadline (at the latest, the episode exit at stallUntil).
		r.idle, r.idleRA, r.idleCat = true, true, sim.StallLoad
	}
	return nil
}
