package runahead

import (
	"context"
	"testing"

	"multipass/internal/arch"
	"multipass/internal/isa"
)

// TestEpisodeStoreForwarding: within one episode, a runahead store's value
// must forward to a later runahead load of the same location so address
// chains keep pre-executing (prefetch accuracy).
func TestEpisodeStoreForwarding(t *testing.T) {
	image := arch.NewMemory()
	image.Store(0x100000, 4, 1)
	image.Store(0x2000, 4, 0x5000) // stale pointer: would prefetch 0x5000
	res := run(t, `
	movi r10 = 0x100000
	movi r11 = 0x2000
	movi r12 = 0x300000
	movi r5 = 0x310000
	ld4 r1 = [r10]       # trigger
	add r2 = r1, r1
	st4 [r11] = r5       # runahead store: new pointer 0x310000
	ld4 r6 = [r11]       # must forward 0x310000, not stale 0x5000
	ld4 r7 = [r6]        # prefetches the RIGHT line during runahead
	add r8 = r7, r7
	halt
`, func(m *arch.Memory) {
		m.Store(0x100000, 4, 1)
		m.Store(0x2000, 4, 0x5000)
		m.Store(0x310000, 4, 77)
	})
	if res.Stats.Runahead.Episodes == 0 {
		t.Fatal("no episode")
	}
	// Architectural result must be from the real store.
	if got := res.RF.Read(isa.IntReg(8)).Uint32(); got != 154 {
		t.Errorf("r8 = %d, want 154", got)
	}
	// The forwarded pointer's target was prefetched: the re-execution after
	// the episode should find 0x310000's line warm, so total cycles stay
	// well below two serialized misses after the trigger resolves.
	s := res.Stats
	if s.Memory.L1D.AdvanceAccesses == 0 {
		t.Error("runahead performed no speculative accesses")
	}
}

// TestPoisonedLoadDoesNotPrefetchGarbage: a runahead load whose address
// depends on a missing load is skipped, not issued with a garbage address.
func TestPoisonedLoadDoesNotPrefetchGarbage(t *testing.T) {
	res := run(t, `
	movi r10 = 0x100000
	ld4 r1 = [r10]       # miss; r1 unknown during runahead
	add r2 = r1, r1      # trigger
	ld4 r3 = [r1]        # address poisoned: must be deferred
	add r4 = r3, r3
	halt
`, func(m *arch.Memory) { m.Store(0x100000, 4, 0x4000) })
	if res.Stats.Runahead.Deferred == 0 {
		t.Error("dependent load was not deferred")
	}
}

// TestExitPenaltyCharged: a larger exit penalty must cost cycles.
func TestExitPenaltyCharged(t *testing.T) {
	src := `
	movi r10 = 0x100000
	movi r20 = 6
loop:
	ld4 r1 = [r10]
	add r2 = r1, r1
	addi r10 = r10, 8192
	subi r20 = r20, 1
	cmpi.ne p1, p2 = r20, 0 ;;
	(p1) br loop
	halt
`
	p := isa.MustAssemble(src)
	runWith := func(penalty int) uint64 {
		cfg := DefaultConfig()
		cfg.ExitPenalty = penalty
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run(context.Background(), p, arch.NewMemory())
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.Cycles
	}
	cheap := runWith(0)
	costly := runWith(40)
	if costly <= cheap {
		t.Errorf("exit penalty free: %d vs %d cycles", costly, cheap)
	}
}

// TestRunaheadStatsConsistent checks attribution and counters.
func TestRunaheadStatsConsistent(t *testing.T) {
	res := run(t, missOverlap, nil)
	if err := res.Stats.CheckConsistency(); err != nil {
		t.Error(err)
	}
	ra := res.Stats.Runahead
	if ra.Cycles == 0 || ra.Episodes == 0 {
		t.Error("no runahead activity recorded")
	}
	if ra.Cycles >= res.Stats.Cycles {
		t.Error("runahead cycles exceed total")
	}
}

func TestName(t *testing.T) {
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "runahead" {
		t.Errorf("Name() = %q", m.Name())
	}
}
