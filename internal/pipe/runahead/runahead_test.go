package runahead

import (
	"context"
	"testing"

	"multipass/internal/arch"
	"multipass/internal/core"
	"multipass/internal/isa"
	"multipass/internal/pipe/inorder"
	"multipass/internal/sim"
)

func run(t *testing.T, src string, setup func(*arch.Memory)) *sim.Result {
	t.Helper()
	p := isa.MustAssemble(src)
	image := arch.NewMemory()
	if setup != nil {
		setup(image)
	}
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(context.Background(), p, image)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := arch.Run(p, image.Clone(), 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.RF.Equal(ref.State.RF) || !res.Mem.Equal(ref.State.Mem) {
		t.Fatal("runahead final state diverged from reference")
	}
	if res.Stats.Retired != ref.State.Retired {
		t.Fatalf("retired %d, reference %d", res.Stats.Retired, ref.State.Retired)
	}
	return res
}

const missOverlap = `
	movi r10 = 0x100000
	ld4 r1 = [r10]
	add r2 = r1, r1
	ld4 r3 = [r10+8192]
	add r4 = r3, r3
	ld4 r5 = [r10+16384]
	add r6 = r5, r5
	halt
`

func otherModels(t *testing.T, src string, setup func(*arch.Memory)) (inorderCy, mpCy uint64) {
	t.Helper()
	p := isa.MustAssemble(src)
	mk := func() *arch.Memory {
		image := arch.NewMemory()
		if setup != nil {
			setup(image)
		}
		return image
	}
	im, err := inorder.New(sim.Default())
	if err != nil {
		t.Fatal(err)
	}
	ir, err := im.Run(context.Background(), p, mk())
	if err != nil {
		t.Fatal(err)
	}
	mm, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	mr, err := mm.Run(context.Background(), p, mk())
	if err != nil {
		t.Fatal(err)
	}
	return ir.Stats.Cycles, mr.Stats.Cycles
}

func TestPrefetchingOverlapsMisses(t *testing.T) {
	res := run(t, missOverlap, nil)
	baseCy, _ := otherModels(t, missOverlap, nil)
	if res.Stats.Runahead.Episodes == 0 {
		t.Fatal("no runahead episodes")
	}
	if res.Stats.Runahead.PreExecuted == 0 {
		t.Fatal("nothing pre-executed")
	}
	if res.Stats.Cycles+100 > baseCy {
		t.Errorf("runahead %d cycles vs inorder %d: expected prefetch win", res.Stats.Cycles, baseCy)
	}
}

func TestRunaheadSlowerThanMultipassOnReusableWork(t *testing.T) {
	// Long miss with a big block of independent compute behind it: runahead
	// throws the compute away and re-executes it; multipass preserves it.
	src := `
	movi r10 = 0x100000
	ld4 r1 = [r10]
	add r2 = r1, r1
	movi r3 = 1
`
	for i := 4; i < 60; i++ {
		src += "	mul r" + itoa(i) + " = r" + itoa(i-1) + ", r3\n"
	}
	src += "	halt\n"
	res := run(t, src, nil)
	_, mpCy := otherModels(t, src, nil)
	if mpCy >= res.Stats.Cycles {
		t.Errorf("multipass %d cycles not faster than runahead %d on reusable work", mpCy, res.Stats.Cycles)
	}
}

func TestEpisodeStateDiscarded(t *testing.T) {
	// The speculative store must never leak to architectural memory.
	res := run(t, `
	movi r10 = 0x100000
	movi r11 = 0x2000
	movi r5 = 42
	ld4 r1 = [r10]
	add r2 = r1, r1      # trigger
	st4 [r11] = r5       # runahead store: buffered, then re-executed
	ld4 r6 = [r11]
	add r7 = r6, r6
	halt
`, func(m *arch.Memory) { m.Store(0x100000, 4, 1) })
	if got := res.RF.Read(isa.IntReg(7)).Uint32(); got != 84 {
		t.Errorf("r7 = %d, want 84", got)
	}
	// The equivalence check in run() already proves memory correctness.
	if res.Stats.Runahead.Episodes == 0 {
		t.Error("expected an episode")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.ExitPenalty = -1
	if _, err := New(bad); err == nil {
		t.Error("negative exit penalty accepted")
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}
