package bpred

import "testing"

func TestNewValidation(t *testing.T) {
	for _, n := range []int{0, -1, 3, 1000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) should panic", n)
				}
			}()
			New(n)
		}()
	}
	if g := Default(); len(g.table) != 1024 {
		t.Error("Default() is not 1024 entries")
	}
}

func TestLearnsAlwaysTaken(t *testing.T) {
	g := Default()
	pc := uint32(0x40)
	for i := 0; i < 100; i++ {
		g.Update(pc, true)
	}
	if !g.Predict(pc) {
		t.Error("always-taken branch predicted not-taken after training")
	}
	s := g.Stats()
	if s.Lookups != 100 {
		t.Errorf("lookups = %d", s.Lookups)
	}
	// gshare retrains once per new history pattern: for an always-taken
	// branch the history saturates after histBits updates, so mispredicts
	// are bounded by the warmup.
	if s.Mispredicts > 15 {
		t.Errorf("mispredicts = %d, want <= 15", s.Mispredicts)
	}
}

func TestLearnsAlternatingWithHistory(t *testing.T) {
	// gshare resolves perfectly alternating branches through global history
	// after warmup.
	g := Default()
	miss := 0
	for i := 0; i < 2000; i++ {
		taken := i%2 == 0
		if !g.Update(0x80, taken) {
			miss++
		}
	}
	late := g.Stats()
	if late.Mispredicts > 100 {
		t.Errorf("alternating pattern mispredicts = %d, want small", late.Mispredicts)
	}
	_ = miss
}

func TestAccuracyStat(t *testing.T) {
	g := Default()
	if g.Stats().Accuracy() != 1 {
		t.Error("idle accuracy should be 1")
	}
	for i := 0; i < 1000; i++ {
		g.Update(0x10, true)
	}
	if acc := g.Stats().Accuracy(); acc < 0.95 {
		t.Errorf("accuracy = %v", acc)
	}
}

func TestResetClears(t *testing.T) {
	g := Default()
	for i := 0; i < 50; i++ {
		g.Update(0x20, true)
	}
	g.Reset()
	if g.Stats().Lookups != 0 {
		t.Error("stats survived reset")
	}
	if g.Predict(0x20) {
		t.Error("training survived reset (counters should be weakly not-taken)")
	}
}

func TestDistinctBranchesIndependent(t *testing.T) {
	g := New(4096) // large table to avoid aliasing in this test
	// Train two branches with opposite biases under stable history.
	for i := 0; i < 200; i++ {
		g.Update(0x100, true)
		g.Update(0x200, false)
	}
	s := g.Stats()
	if s.Accuracy() < 0.9 {
		t.Errorf("biased branches accuracy = %v", s.Accuracy())
	}
}

func TestWarmCaptureRestoreRoundTrip(t *testing.T) {
	src := Default()
	for i := 0; i < 500; i++ {
		src.Update(uint32(0x40+8*(i%13)), i%3 != 0)
	}
	dst := Default()
	if err := dst.RestoreWarm(src.CaptureWarm()); err != nil {
		t.Fatal(err)
	}
	if dst.Stats().Lookups != 0 {
		t.Error("RestoreWarm must not carry statistics")
	}
	// Identical table and history: the two predictors agree on every future
	// prediction.
	for i := 0; i < 200; i++ {
		pc := uint32(0x40 + 8*(i%17))
		if src.Predict(pc) != dst.Predict(pc) {
			t.Fatalf("prediction diverged at pc %#x after restore", pc)
		}
		taken := i%2 == 0
		src.Update(pc, taken)
		dst.Update(pc, taken)
	}
}

func TestRestoreWarmRejectsMismatchedTable(t *testing.T) {
	src := New(4096)
	dst := Default()
	if err := dst.RestoreWarm(src.CaptureWarm()); err == nil {
		t.Fatal("RestoreWarm accepted a warm table of the wrong size")
	}
}

func TestUpdateReturnsCorrectness(t *testing.T) {
	g := Default()
	// First prediction from a weakly-not-taken counter: not taken.
	if got := g.Update(0x300, false); !got {
		t.Error("correct not-taken prediction reported as wrong")
	}
	g.Reset()
	if got := g.Update(0x300, true); got {
		t.Error("wrong prediction reported as correct")
	}
}
