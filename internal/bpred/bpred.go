// Package bpred implements the branch direction predictor of paper Table 2:
// a 1024-entry gshare predictor (global history XOR branch address indexing
// a table of 2-bit saturating counters).
package bpred

import "fmt"

// Gshare is the direction predictor. The zero value is not usable; call New.
type Gshare struct {
	table    []uint8
	mask     uint32
	history  uint32
	histBits uint
	stats    Stats
}

// Stats counts predictor activity.
type Stats struct {
	Lookups     uint64 `json:"lookups"`
	Mispredicts uint64 `json:"mispredicts"`
}

// Add accumulates o into s fieldwise; Sub removes it. Interval stitching
// adds per-interval snapshots and subtracts warm-up baselines, so both
// operations must cover every counter.
func (s *Stats) Add(o Stats) {
	s.Lookups += o.Lookups
	s.Mispredicts += o.Mispredicts
}

// Sub removes o from s fieldwise.
func (s *Stats) Sub(o Stats) {
	s.Lookups -= o.Lookups
	s.Mispredicts -= o.Mispredicts
}

// Accuracy returns the fraction of correct predictions, or 1 for an idle
// predictor.
func (s Stats) Accuracy() float64 {
	if s.Lookups == 0 {
		return 1
	}
	return 1 - float64(s.Mispredicts)/float64(s.Lookups)
}

// New returns a gshare predictor with the given number of 2-bit counters
// (must be a power of two). Counters initialize to weakly not-taken.
func New(entries int) *Gshare {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("bpred: entries must be a positive power of two")
	}
	g := &Gshare{table: make([]uint8, entries), mask: uint32(entries - 1)}
	for 1<<g.histBits < entries {
		g.histBits++
	}
	for i := range g.table {
		g.table[i] = 1 // weakly not-taken
	}
	return g
}

// Default returns the paper's 1024-entry configuration.
func Default() *Gshare { return New(1024) }

func (g *Gshare) index(pc uint32) uint32 {
	return (pc ^ g.history) & g.mask
}

// Predict returns the predicted direction for the branch at pc without
// updating any state.
func (g *Gshare) Predict(pc uint32) bool {
	return g.table[g.index(pc)] >= 2
}

// Update trains the predictor with the resolved direction and records
// whether the prediction (made with the pre-update state) was correct.
// It returns true when the prediction was correct.
func (g *Gshare) Update(pc uint32, taken bool) bool {
	idx := g.index(pc)
	predicted := g.table[idx] >= 2
	g.stats.Lookups++
	if predicted != taken {
		g.stats.Mispredicts++
	}
	if taken {
		if g.table[idx] < 3 {
			g.table[idx]++
		}
	} else if g.table[idx] > 0 {
		g.table[idx]--
	}
	g.history = ((g.history << 1) | boolBit(taken)) & ((1 << g.histBits) - 1)
	return predicted == taken
}

// Stats returns a snapshot of the predictor's counters.
func (g *Gshare) Stats() Stats { return g.stats }

// Reset clears history, counters and statistics.
func (g *Gshare) Reset() {
	for i := range g.table {
		g.table[i] = 1
	}
	g.history = 0
	g.stats = Stats{}
}

// WarmState is a snapshot of the predictor's trainable state — the counter
// table and global history — without its statistics. Checkpoints carry it so
// an interval simulation starts with a trained predictor whose stats still
// count only that interval's activity.
type WarmState struct {
	Table   []uint8
	History uint32
}

// CaptureWarm deep-copies the counter table and history.
func (g *Gshare) CaptureWarm() WarmState {
	t := make([]uint8, len(g.table))
	copy(t, g.table)
	return WarmState{Table: t, History: g.history}
}

// RestoreWarm overwrites the table and history from a capture taken on a
// predictor of the same geometry. Statistics are left untouched: restored
// state is warm-up context, not activity this predictor performed.
func (g *Gshare) RestoreWarm(w WarmState) error {
	if len(w.Table) != len(g.table) {
		return fmt.Errorf("bpred: warm table has %d entries, predictor has %d", len(w.Table), len(g.table))
	}
	copy(g.table, w.Table)
	g.history = w.History
	return nil
}

func boolBit(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
