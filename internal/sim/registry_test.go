package sim

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"multipass/internal/arch"
	"multipass/internal/isa"
	"multipass/internal/mem"
)

type fakeMachine struct{ name string }

func (m *fakeMachine) Name() string { return m.name }
func (m *fakeMachine) Run(ctx context.Context, p *isa.Program, image *arch.Memory) (*Result, error) {
	return &Result{}, nil
}

func TestRegistryBasics(t *testing.T) {
	r := NewRegistry()
	if names := r.Names(); len(names) != 0 {
		t.Fatalf("empty registry lists %v", names)
	}
	r.Register("beta", func(opts ModelOptions) (Machine, error) {
		return &fakeMachine{"beta"}, nil
	})
	r.Register("alpha", func(opts ModelOptions) (Machine, error) {
		return &fakeMachine{"alpha"}, nil
	})

	if _, ok := r.Lookup("alpha"); !ok {
		t.Error("alpha not found")
	}
	if _, ok := r.Lookup("gamma"); ok {
		t.Error("gamma unexpectedly found")
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "beta" {
		t.Errorf("Names() = %v, want sorted [alpha beta]", names)
	}

	m, err := r.New("beta", ModelOptions{Hier: mem.BaseConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "beta" {
		t.Errorf("constructed %q", m.Name())
	}
	if _, err := r.New("gamma", ModelOptions{}); err == nil {
		t.Error("unknown model accepted")
	}
}

// TestRegistryUnknownModelErrors pins the error contract of Registry.New for
// every flavor of bad name: the error must quote the requested name and list
// the registered models, so callers (the HTTP layer, cmd/mpsim, xcheck) can
// surface an actionable message without re-querying the registry.
func TestRegistryUnknownModelErrors(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"alpha", "beta"} {
		name := name
		r.Register(name, func(opts ModelOptions) (Machine, error) {
			return &fakeMachine{name}, nil
		})
	}
	cases := []struct {
		name  string
		model string
	}{
		{"misspelled", "alhpa"},
		{"case mismatch", "Alpha"},
		{"empty", ""},
		{"whitespace", " alpha"},
		{"near miss suffix", "alpha2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := r.New(tc.model, ModelOptions{Hier: mem.BaseConfig()})
			if err == nil {
				t.Fatalf("New(%q) succeeded with %v", tc.model, m.Name())
			}
			msg := err.Error()
			if !strings.Contains(msg, fmt.Sprintf("%q", tc.model)) {
				t.Errorf("error %q does not quote the requested name", msg)
			}
			if !strings.Contains(msg, "alpha") || !strings.Contains(msg, "beta") {
				t.Errorf("error %q does not list registered models", msg)
			}
			if _, ok := r.Lookup(tc.model); ok {
				t.Errorf("Lookup(%q) = ok for unregistered name", tc.model)
			}
		})
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	f := func(opts ModelOptions) (Machine, error) { return &fakeMachine{"x"}, nil }
	r.Register("x", f)
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.Register("x", f)
}
