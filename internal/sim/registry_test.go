package sim

import (
	"context"
	"testing"

	"multipass/internal/arch"
	"multipass/internal/isa"
	"multipass/internal/mem"
)

type fakeMachine struct{ name string }

func (m *fakeMachine) Name() string { return m.name }
func (m *fakeMachine) Run(ctx context.Context, p *isa.Program, image *arch.Memory) (*Result, error) {
	return &Result{}, nil
}

func TestRegistryBasics(t *testing.T) {
	r := NewRegistry()
	if names := r.Names(); len(names) != 0 {
		t.Fatalf("empty registry lists %v", names)
	}
	r.Register("beta", func(opts ModelOptions) (Machine, error) {
		return &fakeMachine{"beta"}, nil
	})
	r.Register("alpha", func(opts ModelOptions) (Machine, error) {
		return &fakeMachine{"alpha"}, nil
	})

	if _, ok := r.Lookup("alpha"); !ok {
		t.Error("alpha not found")
	}
	if _, ok := r.Lookup("gamma"); ok {
		t.Error("gamma unexpectedly found")
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "beta" {
		t.Errorf("Names() = %v, want sorted [alpha beta]", names)
	}

	m, err := r.New("beta", ModelOptions{Hier: mem.BaseConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "beta" {
		t.Errorf("constructed %q", m.Name())
	}
	if _, err := r.New("gamma", ModelOptions{}); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	f := func(opts ModelOptions) (Machine, error) { return &fakeMachine{"x"}, nil }
	r.Register("x", f)
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.Register("x", f)
}
