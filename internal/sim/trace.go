package sim

import (
	"fmt"

	"multipass/internal/arch"
	"multipass/internal/isa"
)

// Trace is a fully pre-decoded dynamic instruction stream: the oracle
// interpreter's output for one (program, image) pair, flattened into a
// contiguous slice, plus the final architectural state. A Trace is immutable
// after construction and safe for concurrent use, so a sweep can decode each
// workload once and share the result read-only across every model and
// hierarchy instead of re-interpreting the program per run.
type Trace struct {
	prog  *isa.Program
	insts []DynInst
	final *arch.State
}

// BuildTrace interprets the program over a clone of image to completion and
// returns the flattened stream. It fails if the program does not halt within
// limit dynamic instructions. The image itself is not mutated.
func BuildTrace(p *isa.Program, image *arch.Memory, limit uint64) (*Trace, error) {
	st := arch.NewState(image.Clone())
	tr := &Trace{prog: p}
	for !st.Halted {
		if st.Retired >= limit {
			return nil, fmt.Errorf("sim: trace exceeds %d dynamic instructions", limit)
		}
		idx := st.PC
		info, err := st.Step(p)
		if err != nil {
			return nil, err
		}
		tr.insts = append(tr.insts, DynInst{
			Seq:      uint64(len(tr.insts)),
			Index:    idx,
			Inst:     &p.Insts[idx],
			Squashed: info.Squashed,
			IsLoad:   info.IsLoad,
			IsStore:  info.IsStore,
			MemAddr:  info.MemAddr,
			IsBranch: info.IsBranch,
			Taken:    info.Taken,
			NextIdx:  info.NextPC,
			Halt:     st.Halted,
		})
	}
	tr.final = st
	return tr, nil
}

// Prog returns the program the trace was decoded from.
func (t *Trace) Prog() *isa.Program { return t.prog }

// Len returns the dynamic instruction count, including the halt.
func (t *Trace) Len() uint64 { return uint64(len(t.insts)) }

// FinalState returns the architectural state at the halt. Callers must treat
// it as read-only.
func (t *Trace) FinalState() *arch.State { return t.final }

// TraceUser is implemented by machines that can run from a pre-decoded
// trace. UseTrace supplies a trace the machine may (but need not) consult on
// subsequent Run calls; a trace built from a different program than the one
// passed to Run is ignored.
type TraceUser interface {
	UseTrace(*Trace)
}

// StreamFor returns the stream for one run: a zero-allocation view over tr
// when tr was decoded from p and fits within limit, otherwise a fresh lazy
// interpreter over a clone of image.
func StreamFor(p *isa.Program, image *arch.Memory, limit uint64, tr *Trace) *Stream {
	if tr != nil && tr.prog == p && tr.Len() <= limit {
		return &Stream{prog: p, tr: tr, ended: true}
	}
	return NewStream(p, image.Clone(), limit)
}
