package sim

import (
	"testing"

	"multipass/internal/arch"
	"multipass/internal/isa"
	"multipass/internal/mem"
)

// takenBranchProgram: a tight loop whose body spans one fetch group.
func takenBranchProgram() *isa.Program {
	return isa.MustAssemble(`
	movi r1 = 50
loop:
	addi r2 = r2, 1
	addi r3 = r3, 1
	subi r1 = r1, 1
	cmpi.ne p1, p2 = r1, 0 ;;
	(p1) br loop
	halt
`)
}

// TestTakenBranchEndsFetchGroup: instructions after a taken branch are
// fetched in a later front-end cycle (the redirect consumes the rest of the
// group), while a not-taken branch lets the group continue.
func TestTakenBranchEndsFetchGroup(t *testing.T) {
	h := mem.MustNewHierarchy(mem.BaseConfig())
	s := NewStream(takenBranchProgram(), arch.NewMemory(), 100000)
	f := NewFetchUnit(s, h, 6)
	f.SetLimit(1 << 30)

	// Locate the first taken loop-back branch (seq 5: movi + 4 body insts).
	d, err := s.At(5)
	if err != nil {
		t.Fatal(err)
	}
	if !d.IsBranch || !d.Taken {
		t.Fatalf("seq 5 is not the taken branch: %+v", d)
	}
	rBr, _, err := f.ReadyAt(5)
	if err != nil {
		t.Fatal(err)
	}
	rNext, _, err := f.ReadyAt(6)
	if err != nil {
		t.Fatal(err)
	}
	if rNext <= rBr {
		t.Errorf("instruction after taken branch ready at %d, branch at %d: redirect had no cost", rNext, rBr)
	}
	// The last dynamic branch is not taken; the following halt may share
	// its fetch group.
	endSeq := uint64(1 + 50*5) // movi + 50 iterations x (4 body + branch), halt last
	dl, err := s.At(endSeq)
	if err != nil {
		t.Fatal(err)
	}
	if dl == nil || !dl.Halt {
		t.Fatalf("end sequence wrong: %+v", dl)
	}
}

// TestFetchHotLoopThroughput: once warm, a 5-instruction loop body should
// be delivered at roughly one group per cycle, not be I-cache limited.
func TestFetchHotLoopThroughput(t *testing.T) {
	h := mem.MustNewHierarchy(mem.BaseConfig())
	s := NewStream(takenBranchProgram(), arch.NewMemory(), 100000)
	f := NewFetchUnit(s, h, 6)
	f.SetLimit(1 << 30)
	// Warm through the first iterations, then measure the spacing of ten
	// later iterations.
	r40, _, err := f.ReadyAt(40)
	if err != nil {
		t.Fatal(err)
	}
	r80, _, err := f.ReadyAt(80)
	if err != nil {
		t.Fatal(err)
	}
	perInst := float64(r80-r40) / 40
	if perInst > 0.6 {
		t.Errorf("warm fetch delivers %.2f cycles/inst; too slow for a hot loop", perInst)
	}
}
