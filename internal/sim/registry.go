package sim

import (
	"fmt"
	"sort"
	"sync"

	"multipass/internal/mem"
)

// ModelOptions carries the per-run knobs a caller may vary without knowing a
// model's concrete configuration type. Factories overlay these on their
// package defaults (paper Table 2).
type ModelOptions struct {
	// Hier is the cache hierarchy configuration.
	Hier mem.HierConfig
	// MaxInsts, when nonzero, overrides the model's default dynamic
	// instruction limit.
	MaxInsts uint64
	// DisableSkip turns off idle-cycle fast-forwarding for the run. The
	// zero value (skipping on) is the production configuration; see
	// Config.DisableSkip.
	DisableSkip bool
}

// Factory constructs a machine from the shared options.
type Factory func(opts ModelOptions) (Machine, error)

// Registry maps model names to factories. Model packages self-register their
// variants in init(); consumers (the bench harness, the mpsim CLI, the mpsimd
// service) enumerate and construct models without a hard-coded switch.
type Registry struct {
	mu        sync.RWMutex
	factories map[string]Factory
	descs     map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{factories: make(map[string]Factory), descs: make(map[string]string)}
}

// Register adds a factory under name. Registering a duplicate name panics:
// it is a package wiring bug, not a runtime condition.
func (r *Registry) Register(name string, f Factory) {
	if name == "" || f == nil {
		panic("sim: Register with empty name or nil factory")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.factories[name]; dup {
		panic(fmt.Sprintf("sim: model %q registered twice", name))
	}
	r.factories[name] = f
}

// Describe attaches a one-line human-readable description to a registered
// model; API surfaces (GET /v1/models) report it alongside the name.
// Describing an unregistered model panics: like a duplicate Register, it is
// a package wiring bug.
func (r *Registry) Describe(name, desc string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.factories[name]; !ok {
		panic(fmt.Sprintf("sim: Describe of unregistered model %q", name))
	}
	r.descs[name] = desc
}

// Description returns the model's registered description, or "" when the
// model is unknown or was registered without one.
func (r *Registry) Description(name string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.descs[name]
}

// Lookup returns the factory registered under name.
func (r *Registry) Lookup(name string) (Factory, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	f, ok := r.factories[name]
	return f, ok
}

// Names returns the registered model names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.factories))
	for n := range r.factories {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// New constructs the named model, with a did-you-mean error listing the
// registered names on failure.
func (r *Registry) New(name string, opts ModelOptions) (Machine, error) {
	f, ok := r.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("sim: unknown model %q (registered: %v)", name, r.Names())
	}
	return f(opts)
}

// DefaultRegistry is the process-wide registry model packages register into.
var DefaultRegistry = NewRegistry()

// Register adds a factory to the default registry.
func Register(name string, f Factory) { DefaultRegistry.Register(name, f) }

// Describe attaches a description to a model in the default registry.
func Describe(name, desc string) { DefaultRegistry.Describe(name, desc) }

// Description reads a model's description from the default registry.
func Description(name string) string { return DefaultRegistry.Description(name) }

// Lookup consults the default registry.
func Lookup(name string) (Factory, bool) { return DefaultRegistry.Lookup(name) }

// Names lists the default registry's model names, sorted.
func Names() []string { return DefaultRegistry.Names() }

// NewMachine constructs a model from the default registry.
func NewMachine(name string, opts ModelOptions) (Machine, error) {
	return DefaultRegistry.New(name, opts)
}
