package sim

import (
	"context"
	"time"

	"multipass/internal/arch"
	"multipass/internal/isa"
)

// Result is the outcome of one timing run: the statistics plus the final
// architectural state the machine produced, for cross-model equivalence
// checks.
type Result struct {
	Stats Stats
	RF    *arch.RegFile
	Mem   *arch.Memory
	// Phases are named wall-clock segments of producing this result
	// (simulate, plus anything a model or harness records via AddPhase).
	// They describe the run that produced the Result, not the simulated
	// machine, so they are excluded from Stats and from cached JSON.
	Phases []Phase
}

// Phase is one named wall-clock segment recorded against a Result.
type Phase struct {
	Name string
	Dur  time.Duration
}

// AddPhase appends a timing phase. Callers own the Result; the method is
// not concurrency-safe.
func (r *Result) AddPhase(name string, d time.Duration) {
	r.Phases = append(r.Phases, Phase{Name: name, Dur: d})
}

// Machine is one timing model.
type Machine interface {
	// Name identifies the model in experiment output.
	Name() string
	// Run simulates the program starting from the given memory image. The
	// image is not mutated; the returned Result holds the machine's own
	// final state. Run honors ctx: cancellation or deadline expiry aborts
	// the simulation within at most one context-poll interval of cycles
	// and returns ctx.Err() (possibly wrapped).
	Run(ctx context.Context, p *isa.Program, image *arch.Memory) (*Result, error)
}

// ctxPollMask throttles context polling in cycle loops: the poll fires when
// now&ctxPollMask == 0, every 1024 simulated cycles — frequent enough that a
// canceled run stops well within one progress window, rare enough to cost
// nothing against the work of a simulated cycle.
const ctxPollMask = 1<<10 - 1

// PollContext returns ctx's error once per poll interval of simulated
// cycles (and always on cycle 0, so a pre-canceled context stops a run
// before any work). Cycle loops call it with their current cycle counter.
func PollContext(ctx context.Context, now uint64) error {
	if now&ctxPollMask != 0 {
		return nil
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

// RegSet is a dense bit set over all architectural registers, used for
// intra-group dependence checks.
type RegSet [(isa.NumFlatRegs + 63) / 64]uint64

// Add inserts r; hardwired registers are ignored (they carry no dependence).
func (s *RegSet) Add(r isa.Reg) {
	if r.IsZeroReg() {
		return
	}
	if f := r.Flat(); f >= 0 {
		s[f/64] |= 1 << (f % 64)
	}
}

// Has reports whether r is in the set; hardwired registers never are.
func (s *RegSet) Has(r isa.Reg) bool {
	if r.IsZeroReg() {
		return false
	}
	f := r.Flat()
	return f >= 0 && s[f/64]&(1<<(f%64)) != 0
}

// Clear empties the set.
func (s *RegSet) Clear() { *s = RegSet{} }

// ProducerKind distinguishes what kind of instruction last wrote a register,
// for stall attribution (load stalls vs other stalls).
type ProducerKind uint8

const (
	// ProducerNone: no tracked producer (value long ready).
	ProducerNone ProducerKind = iota
	// ProducerLoad: a load wrote the register.
	ProducerLoad
	// ProducerOther: a multi-cycle or single-cycle non-load op wrote it.
	ProducerOther
)

// StallFor maps a producer kind to the stall category charged while waiting
// for it.
func (k ProducerKind) StallFor() StallKind {
	if k == ProducerLoad {
		return StallLoad
	}
	return StallOther
}
