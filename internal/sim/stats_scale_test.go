package sim

import "testing"

// TestScaleTo pins the sparse-sampling extrapolation: counters scale by the
// stream-length ratio, Retired lands exactly on the target, and the stall
// categories still sum to Cycles (the CheckConsistency invariant survives
// rounding because Cycles is recomputed from the scaled categories).
func TestScaleTo(t *testing.T) {
	s := Stats{Retired: 1000}
	s.Cat[StallExecution] = 600
	s.Cat[StallLoad] = 333 // odd count: forces rounding
	s.Cycles = 933
	s.Branch.Lookups = 200
	s.Branch.Mispredicts = 13
	s.Memory.L1D.Accesses = 500
	s.Memory.L1D.Misses = 77
	s.Multipass.AdvancePasses = 9
	s.Runahead.Cycles = 41
	s.OOO.Flushes = 5

	s.ScaleTo(4000)
	if s.Retired != 4000 {
		t.Fatalf("Retired = %d, want exactly 4000", s.Retired)
	}
	if s.Cat[StallExecution] != 2400 || s.Cat[StallLoad] != 1332 {
		t.Errorf("categories scaled to %v, want 4x", s.Cat)
	}
	if err := s.CheckConsistency(); err != nil {
		t.Errorf("scaled stats inconsistent: %v", err)
	}
	if s.Branch.Lookups != 800 || s.Branch.Mispredicts != 52 {
		t.Errorf("branch stats = %+v, want 4x", s.Branch)
	}
	if s.Memory.L1D.Accesses != 2000 || s.Memory.L1D.Misses != 308 {
		t.Errorf("L1D stats = %+v, want 4x", s.Memory.L1D)
	}
	if s.Multipass.AdvancePasses != 36 || s.Runahead.Cycles != 164 || s.OOO.Flushes != 20 {
		t.Errorf("model counters not scaled: mp %d ra %d ooo %d",
			s.Multipass.AdvancePasses, s.Runahead.Cycles, s.OOO.Flushes)
	}

	// Degenerate inputs: zero measured retires anything to the target,
	// same-length scaling is the identity.
	var zero Stats
	zero.ScaleTo(100)
	if zero.Retired != 100 || zero.Cycles != 0 {
		t.Errorf("zero.ScaleTo(100) = %+v", zero)
	}
	same := Stats{Retired: 50, Cycles: 70}
	same.Cat[StallExecution] = 70
	same.ScaleTo(50)
	if same.Cycles != 70 {
		t.Errorf("identity scale changed cycles to %d", same.Cycles)
	}
}
