package sim

import (
	"reflect"
	"testing"
)

// TestScaleTo pins the sparse-sampling extrapolation: counters scale by the
// stream-length ratio, Retired lands exactly on the target, and the stall
// categories still sum to Cycles (the CheckConsistency invariant survives
// rounding because Cycles is recomputed from the scaled categories).
func TestScaleTo(t *testing.T) {
	s := Stats{Retired: 1000}
	s.Cat[StallExecution] = 600
	s.Cat[StallLoad] = 333 // odd count: forces rounding
	s.Cycles = 933
	s.Branch.Lookups = 200
	s.Branch.Mispredicts = 13
	s.Memory.L1D.Accesses = 500
	s.Memory.L1D.Misses = 77
	s.Multipass.AdvancePasses = 9
	s.Runahead.Cycles = 41
	s.OOO.Flushes = 5

	s.ScaleTo(4000)
	if s.Retired != 4000 {
		t.Fatalf("Retired = %d, want exactly 4000", s.Retired)
	}
	if s.Cat[StallExecution] != 2400 || s.Cat[StallLoad] != 1332 {
		t.Errorf("categories scaled to %v, want 4x", s.Cat)
	}
	if err := s.CheckConsistency(); err != nil {
		t.Errorf("scaled stats inconsistent: %v", err)
	}
	if s.Branch.Lookups != 800 || s.Branch.Mispredicts != 52 {
		t.Errorf("branch stats = %+v, want 4x", s.Branch)
	}
	if s.Memory.L1D.Accesses != 2000 || s.Memory.L1D.Misses != 308 {
		t.Errorf("L1D stats = %+v, want 4x", s.Memory.L1D)
	}
	if s.Multipass.AdvancePasses != 36 || s.Runahead.Cycles != 164 || s.OOO.Flushes != 20 {
		t.Errorf("model counters not scaled: mp %d ra %d ooo %d",
			s.Multipass.AdvancePasses, s.Runahead.Cycles, s.OOO.Flushes)
	}

	// Degenerate inputs: zero measured retires anything to the target,
	// same-length scaling is the identity.
	var zero Stats
	zero.ScaleTo(100)
	if zero.Retired != 100 || zero.Cycles != 0 {
		t.Errorf("zero.ScaleTo(100) = %+v", zero)
	}
	same := Stats{Retired: 50, Cycles: 70}
	same.Cat[StallExecution] = 70
	same.ScaleTo(50)
	if same.Cycles != 70 {
		t.Errorf("identity scale changed cycles to %d", same.Cycles)
	}
}

// TestScaleToKeepsGauges: non-extensive fields (peak occupancies, widths)
// must survive extrapolation unchanged — a 4x longer stream of the same
// program does not have 4x the peak live block windows.
func TestScaleToKeepsGauges(t *testing.T) {
	s := Stats{Retired: 1000, Cycles: 1000}
	s.Cat[StallExecution] = 1000
	s.CGOOO.Blocks = 120
	s.CGOOO.WindowOccCy = 6400
	s.CGOOO.PeakLiveBlocks = 7
	s.CGOOO.MaxBlockLen = 13

	s.ScaleTo(4000)
	if s.CGOOO.Blocks != 480 || s.CGOOO.WindowOccCy != 25600 {
		t.Errorf("extensive cgooo counters not scaled: %+v", s.CGOOO)
	}
	if s.CGOOO.PeakLiveBlocks != 7 || s.CGOOO.MaxBlockLen != 13 {
		t.Errorf("gauges scaled: PeakLiveBlocks=%d MaxBlockLen=%d, want 7 and 13",
			s.CGOOO.PeakLiveBlocks, s.CGOOO.MaxBlockLen)
	}
}

// TestScaleRulesExhaustive walks every numeric leaf field of Stats by
// reflection and requires a declared scaleRules entry for each, and no stale
// entries for fields that no longer exist. Adding a field to Stats (or any
// nested stats struct) without deciding whether it is an extensive counter
// (scaleLinear) or a gauge (scaleKeep) fails here before any sparse-sampled
// run can extrapolate it wrongly.
func TestScaleRulesExhaustive(t *testing.T) {
	paths := statsFieldPaths(reflect.TypeOf(Stats{}), "")
	seen := make(map[string]bool, len(paths))
	for _, p := range paths {
		seen[p] = true
		if _, ok := scaleRules[p]; !ok {
			t.Errorf("Stats field %s has no scaleRules entry; declare scaleLinear (extensive counter), scaleKeep (gauge), or scaleDerived", p)
		}
	}
	for p := range scaleRules {
		if !seen[p] {
			t.Errorf("scaleRules entry %s matches no Stats field (stale after a rename?)", p)
		}
	}
	// The derived set is closed: exactly the two fields ScaleTo recomputes.
	for p, r := range scaleRules {
		if r == scaleDerived && p != "Cycles" && p != "Retired" {
			t.Errorf("scaleRules marks %s derived, but ScaleTo only recomputes Cycles and Retired", p)
		}
	}
}

// TestScaleToGaugeMerge pins the stitching semantics of gauges: Add takes the
// maximum and Sub (warm-up discard) leaves the observed peak in place.
func TestScaleToGaugeMerge(t *testing.T) {
	var a, b Stats
	a.CGOOO.PeakLiveBlocks, b.CGOOO.PeakLiveBlocks = 3, 5
	a.CGOOO.MaxBlockLen, b.CGOOO.MaxBlockLen = 20, 10
	a.Add(&b)
	if a.CGOOO.PeakLiveBlocks != 5 || a.CGOOO.MaxBlockLen != 20 {
		t.Errorf("gauge Add = %+v, want max-merge (5, 20)", a.CGOOO)
	}
	a.Sub(&b)
	if a.CGOOO.PeakLiveBlocks != 5 || a.CGOOO.MaxBlockLen != 20 {
		t.Errorf("gauge Sub = %+v, want unchanged (5, 20)", a.CGOOO)
	}
}
