package sim

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"multipass/internal/arch"
	"multipass/internal/bpred"
	"multipass/internal/isa"
	"multipass/internal/mem"
)

// IntervalRunner is implemented by timing models that can simulate one
// checkpointed interval of the dynamic stream. RunInterval with a nil
// checkpoint is exactly Run; with a checkpoint it starts the pipeline at
// ck.Seq from the checkpoint's architectural and warm state, discards stats
// accumulated before ck.Measure, and stops issuing at ck.End. RunInterval
// must be safe for concurrent calls on the same machine value: interval
// workers share the machine (its config and pre-decoded trace are read-only)
// but nothing else.
type IntervalRunner interface {
	Machine
	CheckpointSpec() CheckpointSpec
	RunInterval(ctx context.Context, p *isa.Program, image *arch.Memory, ck *Checkpoint) (*Result, error)
}

// WarmMark tracks the warm-up/measurement boundary inside a cycle loop. The
// loop calls Mark at the top of every cycle with its next-to-retire sequence;
// the first cycle at or past the measure boundary snapshots the running stats
// plus the live predictor and hierarchy counters (the Stats.Branch/Memory
// fields are only assigned at the end of a run, so the baseline must read the
// devices directly). Discard then subtracts that baseline from the final
// stats, leaving only the measured region. For a monolithic run (measure 0)
// the baseline is captured on cycle zero with all counters zero, so Discard
// is an exact no-op and the generalized loops stay byte-identical to the
// originals.
type WarmMark struct {
	marked bool
	warm   Stats
}

// Mark captures the warm-up baseline once seq reaches the measure boundary.
func (m *WarmMark) Mark(seq, measure uint64, st *Stats, pred *bpred.Gshare, hier *mem.Hierarchy) {
	if m.marked || seq < measure {
		return
	}
	m.marked = true
	m.warm = *st
	m.warm.Branch = pred.Stats()
	m.warm.Memory = hier.Stats()
}

// Marked reports whether the baseline has been captured.
func (m *WarmMark) Marked() bool { return m.marked }

// Cut returns the sequence before which the issue stage must stop: the
// measure boundary until the baseline is captured (so no issue group spans
// it and the baseline lands exactly on the boundary), the end bound after.
func (m *WarmMark) Cut(measure, end uint64) uint64 {
	if !m.marked {
		return measure
	}
	return end
}

// Discard subtracts the warm-up baseline from the final stats. Call after
// st.Branch/st.Memory have been assigned.
func (m *WarmMark) Discard(st *Stats) { st.Sub(&m.warm) }

// RunSampled simulates p in parallel across checkpointed intervals and
// stitches the per-interval stats into one result. The stitched result has
// the exact retired count and byte-identical final architectural state of a
// monolithic run (interval boundaries are positions in the deterministic
// dynamic stream; the last interval ends at the same halt); cycle counts and
// stall attribution carry a small warm-up approximation error, measured in
// EXPERIMENTS.md. With cfg.Period > 1 only every Period-th interval is
// simulated and the stats are extrapolated to the full stream (Stats.ScaleTo);
// retired count and final state remain exact because both come from the
// functional pass. The model must implement IntervalRunner.
func RunSampled(ctx context.Context, m Machine, p *isa.Program, image *arch.Memory, cfg SampleConfig) (*Result, error) {
	ir, ok := m.(IntervalRunner)
	if !ok {
		return nil, fmt.Errorf("sim: model %q does not support interval sampling", m.Name())
	}
	if cfg.Interval == 0 {
		return nil, fmt.Errorf("sim: sample interval must be positive")
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = cfg.Interval / 4
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// The functional pass streams checkpoints as it discovers them, so
	// interval workers start detailed simulation while the fast-forward is
	// still running; its wall clock overlaps the simulation instead of
	// preceding it. The slices are pre-sized at the stream's hard interval
	// cap so worker goroutines can write their slot without synchronization
	// (cks never reallocates: its capacity is fixed and only this loop
	// appends).
	src, err := StreamCheckpoints(runCtx, p, image, cfg, ir.CheckpointSpec())
	if err != nil {
		return nil, err
	}
	cks := make([]*Checkpoint, 0, maxIntervals)
	results := make([]*Result, maxIntervals)
	errs := make([]error, maxIntervals)
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for ck := range src.C {
		i := len(cks)
		cks = append(cks, ck)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			// A panicking interval must not kill the process: interval
			// workers run on bare goroutines, outside any server-side
			// recovery, so convert the panic to an error here.
			defer func() {
				if r := recover(); r != nil {
					errs[i] = fmt.Errorf("sim: interval %d panicked: %v", i, r)
					cancel()
				}
			}()
			if err := runCtx.Err(); err != nil {
				errs[i] = err
				return
			}
			res, err := ir.RunInterval(runCtx, p, image, cks[i])
			if err != nil {
				errs[i] = err
				cancel()
				return
			}
			results[i] = res
		}(i)
	}
	n, finalSnap, ffDur, ferr := src.Wait()
	if ferr != nil {
		// The pass failed (or was cancelled): the run cannot produce a
		// result, so stop the in-flight workers rather than finish them.
		cancel()
	}
	wg.Wait()
	results, errs = results[:len(cks)], errs[:len(cks)]
	// Prefer a real failure over the cancellations it caused; the producer's
	// error is the root cause when both it and workers failed.
	var firstErr error
	for _, err := range append([]error{ferr}, errs...) {
		if err == nil {
			continue
		}
		if !errors.Is(err, context.Canceled) {
			return nil, err
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}

	stitchStart := time.Now()
	final := &Result{}
	for _, r := range results {
		final.Stats.Add(&r.Stats)
	}
	if cfg.period() == 1 {
		// Full coverage: the measured windows tile the stream, so the sum is
		// exact and the last interval retired the same halt as a monolithic
		// run would.
		last := results[len(results)-1]
		final.RF, final.Mem = last.RF, last.Mem
		if final.Stats.Retired != n {
			return nil, fmt.Errorf("sim: stitched retired %d != stream length %d (interval accounting bug)", final.Stats.Retired, n)
		}
	} else {
		// Sparse: the simulated intervals cover only part of the stream.
		// Verify their accounting (streamed checkpoints carry an optimistic
		// End, clamped here by the now-known stream length), then
		// extrapolate to the full length and take the exact final state from
		// the functional pass.
		var measured uint64
		for _, ck := range cks {
			end := ck.End
			if end > n {
				end = n
			}
			measured += end - ck.Measure
		}
		if final.Stats.Retired != measured {
			return nil, fmt.Errorf("sim: stitched retired %d != measured span %d (interval accounting bug)", final.Stats.Retired, measured)
		}
		final.Stats.ScaleTo(n)
		final.RF, final.Mem = finalSnap.RF, finalSnap.Mem
	}
	final.AddPhase("func_ffwd", ffDur)
	final.AddPhase("stitch", time.Since(stitchStart))
	return final, nil
}
