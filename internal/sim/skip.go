package sim

import "multipass/internal/mem"

// SkipState is the per-cycle idleness tracker behind event-driven stall
// skipping. A cycle loop that simulates one cycle at a time spends most of
// its wall time ticking through fully-stalled cycles while a memory fill is
// in flight; SkipState lets a loop prove that a cycle it just simulated will
// repeat unchanged and jump its clock straight to the first cycle at which
// anything can differ, bulk-crediting the skipped cycles into the same stall
// counters the per-cycle path would have produced.
//
// The proof obligation (see DESIGN.md "Idle-cycle fast-forwarding") is:
//
//  1. The cycle mutated no model state — no instruction issued, merged,
//     retired, pre-executed or was deferred; no mode/episode transition; no
//     predictor update, fetch flush, or hierarchy access. Every loop marks
//     such events with MarkDirty (directly or via its per-cycle work
//     counters), and a dirty cycle never skips.
//  2. Every comparison of a future deadline against the current cycle that
//     the loop evaluated on its path — operand-ready times, fetch-ready
//     times, scoreboard entries, pipeline-restore cycles, episode ends —
//     was reported with Note. The earliest noted deadline is then the first
//     cycle at which the loop could take a different path: deadlines already
//     in the past stay in the past, and deadlines noted in the future stay
//     in the future until the earliest of them arrives.
//
// Under those two conditions every cycle in [now, wake) replays identically,
// so charging them in bulk is byte-identical to ticking through them.
//
// Jump additionally clamps the target so that the enclosing loop's
// PollContext cadence is preserved (a jump never crosses a context-poll
// boundary) and, defensively, so that a jump never crosses the memory
// hierarchy's next fill completion (Hierarchy.NextEvent): landing on an
// intermediate completion merely re-proves idleness and skips again, so the
// clamp cannot change the accounting, only bound how far a single jump
// trusts the idleness proof.
type SkipState struct {
	wake  uint64
	dirty bool
}

// Begin resets the tracker at the top of a simulated cycle.
func (s *SkipState) Begin() {
	s.wake = 0
	s.dirty = false
}

// Note records a deadline the cycle observed in its future. Zero (no
// deadline) is ignored; the earliest noted deadline wins.
func (s *SkipState) Note(at uint64) {
	if at != 0 && (s.wake == 0 || at < s.wake) {
		s.wake = at
	}
}

// MarkDirty records that the cycle mutated model state, making it
// non-repeatable; Jump then refuses to skip.
func (s *SkipState) MarkDirty() { s.dirty = true }

// Dirty reports whether the cycle was marked dirty.
func (s *SkipState) Dirty() bool { return s.dirty }

// Jump returns how many cycles beyond now may be fast-forwarded, where now is
// the first not-yet-simulated cycle (the loop has already charged the cycle
// it just simulated and advanced its clock). It returns 0 when the cycle was
// dirty, when no deadline was noted, or when the earliest deadline is not in
// the future. The returned delta never crosses a context-poll boundary
// (PollContext fires on exactly the cycles it would have without skipping)
// and never crosses h's next fill completion.
func (s *SkipState) Jump(h *mem.Hierarchy, now uint64) uint64 {
	if s.dirty || s.wake <= now {
		return 0
	}
	wake := s.wake
	// Clamp to the next poll boundary: the last permissible landing cycle is
	// the next multiple of the poll interval, so the enclosing loop polls its
	// context exactly as often as the per-cycle path. Guard the +1 against
	// uint64 wraparound near the end of the cycle space.
	boundary := now | uint64(ctxPollMask)
	if boundary == ^uint64(0) {
		return 0
	}
	if cap := boundary + 1; wake > cap {
		wake = cap
	}
	// Defense in depth: never jump past a memory completion.
	if h != nil {
		if ev := h.NextEvent(now); ev != 0 && ev < wake {
			wake = ev
		}
	}
	if wake <= now {
		return 0
	}
	return wake - now
}
