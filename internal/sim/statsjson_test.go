package sim

import (
	"encoding/json"
	"strings"
	"testing"
)

func sampleStats() Stats {
	s := Stats{Cycles: 1000, Retired: 900}
	s.Cat[StallExecution] = 400
	s.Cat[StallFrontEnd] = 100
	s.Cat[StallOther] = 200
	s.Cat[StallLoad] = 300
	s.Branch.Lookups = 50
	s.Branch.Mispredicts = 5
	s.Memory.L1D.Accesses = 700
	s.Memory.L1D.Misses = 70
	s.Memory.MSHRStalls = 3
	return s
}

func TestStatsJSONRoundTrip(t *testing.T) {
	in := sampleStats()
	in.Multipass.AdvanceEntries = 7
	in.Multipass.AdvancePasses = 9

	data, err := json.Marshal(&in)
	if err != nil {
		t.Fatal(err)
	}
	var out Stats
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if in != out {
		t.Errorf("round trip diverged:\n in: %+v\nout: %+v", in, out)
	}

	// The canonical encoding is identical whether marshaled from a value,
	// a pointer, or an embedding struct field.
	fromValue, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if string(fromValue) != string(data) {
		t.Error("value and pointer marshals differ")
	}
	embedded, err := json.Marshal(struct{ S Stats }{in})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(embedded), string(data)) {
		t.Error("embedded marshal differs from canonical encoding")
	}
}

func TestStatsJSONShape(t *testing.T) {
	s := sampleStats()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if v, ok := m["schema_version"].(float64); !ok || int(v) != StatsSchemaVersion {
		t.Errorf("schema_version = %v", m["schema_version"])
	}
	for _, k := range []string{"cycles", "retired", "cycle_breakdown", "branch", "memory"} {
		if _, ok := m[k]; !ok {
			t.Errorf("missing key %q", k)
		}
	}
	// No model ran: the model-specific sections must be omitted entirely.
	for _, k := range []string{"multipass", "runahead", "ooo"} {
		if _, ok := m[k]; ok {
			t.Errorf("zero-valued section %q not omitted", k)
		}
	}

	s.Runahead.Episodes = 2
	data, err = json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	m = nil
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if _, ok := m["runahead"]; !ok {
		t.Error("runahead section missing after runahead activity")
	}
	if _, ok := m["multipass"]; ok {
		t.Error("multipass section present without multipass activity")
	}
}

func TestStatsJSONRejectsUnknownVersion(t *testing.T) {
	var s Stats
	err := json.Unmarshal([]byte(`{"schema_version": 999}`), &s)
	if err == nil || !strings.Contains(err.Error(), "schema version") {
		t.Errorf("err = %v, want schema version rejection", err)
	}
}
