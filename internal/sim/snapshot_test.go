package sim

import (
	"strings"
	"testing"

	"multipass/internal/arch"
	"multipass/internal/isa"
)

func snap() *Snapshot {
	return &Snapshot{RF: arch.NewRegFile(), Mem: arch.NewMemory(), Retired: 100}
}

func TestSnapshotEqualAndEmptyDiff(t *testing.T) {
	a, b := snap(), snap()
	a.RF.Write(isa.IntReg(5), 42)
	b.RF.Write(isa.IntReg(5), 42)
	a.Mem.Store(0x1000, 4, 7)
	b.Mem.Store(0x1000, 4, 7)
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatalf("identical snapshots not Equal: %v", a.Diff(b, 10))
	}
	if d := a.Diff(b, 10); len(d) != 0 {
		t.Fatalf("Diff of equal snapshots = %v, want empty", d)
	}
}

// A register whose value matches but whose NaT bit differs must break
// equality: NaT is architectural state (deferred speculative exceptions), and
// a model that loses it silently corrupts speculation semantics.
func TestSnapshotEqualNaTOnlyDivergence(t *testing.T) {
	a, b := snap(), snap()
	a.RF.Write(isa.IntReg(7), 99)
	b.RF.Write(isa.IntReg(7), 99)
	b.RF.WriteNaT(isa.IntReg(7))
	if a.RF.Read(isa.IntReg(7)) != b.RF.Read(isa.IntReg(7)) {
		t.Fatal("test setup: values should match")
	}
	if a.Equal(b) {
		t.Fatal("snapshots Equal despite NaT-only divergence on r7")
	}
	d := a.Diff(b, 10)
	if len(d) != 1 {
		t.Fatalf("Diff = %v, want exactly the r7 line", d)
	}
	if !strings.Contains(d[0], "r7") || !strings.Contains(d[0], "nat false vs true") {
		t.Fatalf("Diff line %q does not name r7's NaT divergence", d[0])
	}
}

func TestSnapshotDiffLimit(t *testing.T) {
	a, b := snap(), snap()
	b.Retired = 200
	for i := 1; i <= 8; i++ {
		a.RF.Write(isa.IntReg(i), isa.Word(i))
	}
	for i := 0; i < 8; i++ {
		a.Mem.Store(uint32(0x2000+4*i), 4, uint64(i+1))
	}

	// 17 total divergences (retired + 8 registers + 8 words): every limit at
	// or below that must be honored exactly, and the retired line comes
	// first so truncated reports still show the headline divergence.
	for _, limit := range []int{1, 2, 5, 9, 16, 17} {
		d := a.Diff(b, limit)
		if len(d) != limit {
			t.Fatalf("Diff(limit=%d) returned %d lines: %v", limit, len(d), d)
		}
		if !strings.HasPrefix(d[0], "retired:") {
			t.Fatalf("Diff(limit=%d) first line %q, want retired", limit, d[0])
		}
	}
	if d := a.Diff(b, 100); len(d) != 17 {
		t.Fatalf("Diff(limit=100) = %d lines, want all 17: %v", len(d), d)
	}
}
