package sim

import (
	"multipass/internal/mem"
)

// FetchUnit models the front end: it fetches the dynamic instruction stream
// at FetchWidth per cycle through the L1 instruction cache and records when
// each dynamic instruction becomes available to the issue stage. Correctly
// predicted branches redirect fetch without a bubble (decoupling buffer);
// mispredictions are modeled by Flush, which restarts fetch at a later
// cycle.
//
// The unit tracks availability with a sliding window aligned to the
// pipeline's consumption, mirroring Stream.
type FetchUnit struct {
	stream *Stream
	hier   *mem.Hierarchy
	width  int

	cycle    uint64 // front-end clock: when the next fetch group completes
	nextSeq  uint64 // next sequence to fetch
	lineAddr uint32 // current I-cache line address (line-aligned)
	haveLine bool
	lineMask uint32

	base  uint64 // seq of ready[0]
	ready []uint64

	limit uint64 // fetch-ahead bound set by the consumer (buffer capacity)
}

// NewFetchUnit builds a front end over the stream and hierarchy.
func NewFetchUnit(s *Stream, h *mem.Hierarchy, width int) *FetchUnit {
	return &FetchUnit{
		stream:   s,
		hier:     h,
		width:    width,
		lineMask: ^uint32(h.Config().L1I.LineBytes - 1),
		limit:    ^uint64(0),
	}
}

// StartAt positions the front end at sequence seq for an interval run whose
// stream starts mid-trace. It must be called before any fetch activity.
func (f *FetchUnit) StartAt(seq uint64) {
	if f.base != 0 || f.nextSeq != 0 || len(f.ready) != 0 {
		panic("sim: StartAt after fetch began")
	}
	f.base, f.nextSeq = seq, seq
}

// SetLimit bounds fetch-ahead to sequences below seq, modeling the
// instruction buffer's capacity backpressure. The limit may move in either
// direction as the consumer advances or flushes.
func (f *FetchUnit) SetLimit(seq uint64) { f.limit = seq }

// ReadyAt returns the cycle at which dynamic instruction seq is available to
// issue, fetching forward as needed. Returns (0, false, nil) when seq is past
// the end of the program. Querying at or beyond the fetch limit is a caller
// bug and panics.
func (f *FetchUnit) ReadyAt(seq uint64) (uint64, bool, error) {
	if seq < f.base {
		panic("sim: fetch query below released window")
	}
	if seq >= f.limit {
		panic("sim: fetch query beyond buffer limit")
	}
	for seq >= f.base+uint64(len(f.ready)) {
		ok, err := f.fetchGroup()
		if err != nil {
			return 0, false, err
		}
		if !ok {
			return 0, false, nil
		}
	}
	return f.ready[seq-f.base], true, nil
}

// fetchGroup fetches up to width instructions in one front-end cycle.
func (f *FetchUnit) fetchGroup() (bool, error) {
	fetched := 0
	groupCycle := f.cycle
	for fetched < f.width && f.nextSeq < f.limit {
		d, err := f.stream.At(f.nextSeq)
		if err != nil {
			return false, err
		}
		if d == nil {
			break
		}
		line := d.Addr() & f.lineMask
		if !f.haveLine || line != f.lineAddr {
			// New line: access the I-cache. A miss stalls the whole group.
			readyAt := f.hier.AccessInst(line, groupCycle)
			if readyAt > groupCycle+1 {
				// Charge the I-miss to the front-end clock: this group
				// completes when the line arrives.
				groupCycle = readyAt - 1
			}
			f.lineAddr = line
			f.haveLine = true
		}
		f.ready = append(f.ready, groupCycle+1)
		f.nextSeq++
		fetched++
		if d.Halt {
			break
		}
		// A taken branch ends the fetch group (redirect consumes the rest
		// of the group's slots), without a bubble when predicted.
		if d.IsBranch && d.Taken {
			f.haveLine = false
			break
		}
	}
	f.cycle = groupCycle + 1
	return fetched > 0, nil
}

// Flush discards fetched-but-unissued instructions from restartSeq onward
// and resumes fetch there no earlier than resumeCycle (misprediction
// recovery or pipeline flush).
func (f *FetchUnit) Flush(restartSeq, resumeCycle uint64) {
	if restartSeq < f.base {
		panic("sim: flush below released window")
	}
	if restartSeq < f.nextSeq {
		f.ready = f.ready[:restartSeq-f.base]
		f.nextSeq = restartSeq
	}
	if resumeCycle > f.cycle {
		f.cycle = resumeCycle
	}
	f.haveLine = false
}

// Release discards availability records below seq and lets the stream free
// its window.
func (f *FetchUnit) Release(seq uint64) {
	if seq <= f.base {
		return
	}
	drop := seq - f.base
	if drop > uint64(len(f.ready)) {
		drop = uint64(len(f.ready))
	}
	f.base += drop
	n := copy(f.ready, f.ready[drop:])
	f.ready = f.ready[:n]
	f.stream.Release(seq)
}
