package sim

import (
	"fmt"

	"multipass/internal/arch"
	"multipass/internal/isa"
)

// DynInst is one instruction of the dynamic (correct-path) instruction
// stream, as produced by the oracle interpreter. Timing models use its
// resolved address and branch outcome; the value-simulating models
// (multipass, runahead, in-order) recompute results from their own state.
type DynInst struct {
	Seq      uint64
	Index    int // static instruction index
	Inst     *isa.Inst
	Squashed bool // qualifying predicate was false
	IsLoad   bool
	IsStore  bool
	MemAddr  uint32
	IsBranch bool
	Taken    bool
	NextIdx  int
	Halt     bool
}

// Addr returns the simulated fetch address of the instruction.
func (d *DynInst) Addr() uint32 { return isa.InstAddr(d.Index) }

// Stream lazily interprets the program along its architectural path,
// retaining a sliding window of dynamic instructions. Pipelines index it by
// sequence number; Release discards entries below a given sequence.
//
// A stream built over a pre-decoded Trace (StreamFor) serves the same
// interface straight out of the trace's flat slice: At is a bounds check and
// an index, Release is a no-op, and nothing allocates.
type Stream struct {
	prog  *isa.Program
	state *arch.State
	base  uint64 // seq of window[0]
	win   []*DynInst
	ended bool
	limit uint64
	// free recycles DynInst records released from the window, making the
	// steady-state interpret loop allocation-free. A pointer returned by At
	// is therefore valid only until its sequence is released.
	free []*DynInst
	// tr, when non-nil, backs the stream with a pre-decoded trace and the
	// lazy fields above are unused.
	tr *Trace
}

// NewStream starts interpretation over mem (which the stream owns and
// mutates; clone the image if the caller needs it pristine). limit bounds
// the dynamic instruction count.
func NewStream(p *isa.Program, m *arch.Memory, limit uint64) *Stream {
	return &Stream{prog: p, state: arch.NewState(m), limit: limit}
}

// StreamFrom returns the stream for an interval run starting at checkpoint
// ck. A pre-decoded trace (which is random access and shared read-only)
// serves any starting point directly; otherwise interpretation starts from a
// clone of the checkpoint's architectural state, positioned so that the
// first instruction produced carries sequence ck.Seq. limit bounds the
// absolute dynamic instruction count, as in NewStream.
func StreamFrom(p *isa.Program, ck *Checkpoint, limit uint64, tr *Trace) *Stream {
	if tr != nil && tr.prog == p && uint64(len(tr.insts)) <= limit {
		return &Stream{prog: p, tr: tr, ended: true}
	}
	st := &arch.State{RF: ck.RF.Clone(), Mem: ck.Mem.Clone(), PC: ck.PC, Retired: ck.Seq}
	return &Stream{prog: p, state: st, base: ck.Seq, limit: limit}
}

// At returns the dynamic instruction at seq, interpreting forward as needed.
// Requesting a sequence below the released window start panics (model bug).
// Requesting at or beyond the halt returns nil. The returned pointer stays
// valid until the sequence is released (consumers may hold it across cycles
// while the sequence remains in flight).
func (s *Stream) At(seq uint64) (*DynInst, error) {
	if s.tr != nil {
		if seq >= uint64(len(s.tr.insts)) {
			return nil, nil
		}
		return &s.tr.insts[seq], nil
	}
	if seq < s.base {
		panic(fmt.Sprintf("sim: stream access to released seq %d (base %d)", seq, s.base))
	}
	for seq >= s.base+uint64(len(s.win)) {
		if s.ended {
			return nil, nil
		}
		if err := s.fetchOne(); err != nil {
			return nil, err
		}
	}
	return s.win[seq-s.base], nil
}

func (s *Stream) fetchOne() error {
	if s.state.Retired >= s.limit {
		return fmt.Errorf("sim: dynamic instruction limit %d exceeded", s.limit)
	}
	idx := s.state.PC
	info, err := s.state.Step(s.prog)
	if err != nil {
		return err
	}
	var d *DynInst
	if n := len(s.free); n > 0 {
		d = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		d = new(DynInst)
	}
	*d = DynInst{
		Seq:      s.base + uint64(len(s.win)),
		Index:    idx,
		Inst:     &s.prog.Insts[idx],
		Squashed: info.Squashed,
		IsLoad:   info.IsLoad,
		IsStore:  info.IsStore,
		MemAddr:  info.MemAddr,
		IsBranch: info.IsBranch,
		Taken:    info.Taken,
		NextIdx:  info.NextPC,
		Halt:     s.state.Halted,
	}
	s.win = append(s.win, d)
	if s.state.Halted {
		s.ended = true
	}
	return nil
}

// Release discards window entries with sequence below seq, recycling their
// records.
func (s *Stream) Release(seq uint64) {
	if s.tr != nil || seq <= s.base {
		return
	}
	drop := seq - s.base
	if drop > uint64(len(s.win)) {
		drop = uint64(len(s.win))
	}
	s.base += drop
	s.free = append(s.free, s.win[:drop]...)
	// Copy down rather than reslicing so the window's backing array does
	// not grow without bound.
	n := copy(s.win, s.win[drop:])
	s.win = s.win[:n]
}

// Ended reports whether the halt instruction has been produced.
func (s *Stream) Ended() bool { return s.ended }

// EndSeq returns the sequence of the halt instruction; valid once a request
// has reached it.
func (s *Stream) EndSeq() uint64 {
	if s.tr != nil {
		return uint64(len(s.tr.insts)) - 1
	}
	return s.base + uint64(len(s.win)) - 1
}

// Retired returns how many instructions the oracle has interpreted.
func (s *Stream) Retired() uint64 {
	if s.tr != nil {
		return uint64(len(s.tr.insts))
	}
	return s.state.Retired
}

// FinalState exposes the oracle's architectural state; meaningful once the
// stream has ended. Timing models that do not simulate values (the
// out-of-order models) report this as their final state.
func (s *Stream) FinalState() *arch.State {
	if s.tr != nil {
		return s.tr.final
	}
	return s.state
}
