package sim

import (
	"fmt"

	"multipass/internal/arch"
	"multipass/internal/bpred"
	"multipass/internal/isa"
	"multipass/internal/mem"
)

// SampleConfig configures SMARTS-style parallel interval simulation: the
// dynamic instruction stream is divided into intervals of Interval retired
// instructions, each simulated independently by a detailed timing model
// starting from a checkpoint taken Warmup instructions before the interval
// (the warm-up window's stats are discarded), and the per-interval stats are
// stitched into one run result.
type SampleConfig struct {
	// Interval is K, the number of retired instructions per measured
	// interval. Must be positive.
	Interval uint64
	// Warmup is W, the number of instructions simulated in detail before
	// each interval to re-establish pipeline and in-flight-miss state on top
	// of the checkpoint's warm caches and predictor. Stats from the warm-up
	// window are discarded. Zero selects the default, Interval/4.
	Warmup uint64
	// Workers bounds how many intervals simulate concurrently; <= 0 selects
	// GOMAXPROCS. Worker count affects wall clock only, never the stitched
	// statistics: interval boundaries are positions in the deterministic
	// dynamic stream.
	Workers int
	// Period selects sparse SMARTS measurement: only every Period-th interval
	// (0, P, 2P, ...) is simulated in detail and the stitched statistics are
	// extrapolated to the full stream length. 0 and 1 both mean full coverage
	// (every interval simulated, no extrapolation). Sparse mode trades the
	// full-coverage cycle guarantee for wall-clock: retired count and final
	// architectural state stay exact (both come from the functional pass),
	// but total cycles become an estimate whose error grows with program
	// phase heterogeneity.
	Period uint64
}

// period returns the canonical sampling period (>= 1).
func (c *SampleConfig) period() uint64 {
	if c.Period <= 1 {
		return 1
	}
	return c.Period
}

// CheckpointSpec reports the knobs a checkpoint builder needs to warm
// microarchitectural state compatibly with a timing model.
type CheckpointSpec struct {
	Hier             mem.HierConfig
	PredictorEntries int
	// MaxInsts bounds the functional fast-forward like the model's own
	// dynamic instruction limit; 0 means unbounded.
	MaxInsts uint64
}

// Checkpoint is the starting state for one interval simulation: the
// architectural state (registers, memory, PC) at sequence Seq of the dynamic
// stream, plus warm microarchitectural state — cache tags and LRU order,
// branch predictor table and history — accumulated by the functional
// fast-forward up to that point. MSHRs are defined to be drained at a
// checkpoint: a functional fast-forward has no timing, so in-flight misses
// cannot be represented; the warm-up window re-establishes them before
// measurement begins.
type Checkpoint struct {
	// Seq is where detailed simulation starts (the warm-up window start).
	Seq uint64
	// Measure is where measurement starts: stats accumulated on sequences in
	// [Seq, Measure) are discarded as warm-up.
	Measure uint64
	// End is one past the last sequence this interval measures. The final
	// interval's End is the dynamic stream length, which it reaches by
	// retiring the halt instruction.
	End uint64

	PC     int
	RF     *arch.RegFile
	Mem    *arch.Memory
	Caches *mem.WarmCaches
	Pred   bpred.WarmState
}

// Snapshot returns the checkpoint's architectural state in the equivalence-
// check form. It aliases the checkpoint's state.
func (c *Checkpoint) Snapshot() *Snapshot {
	return &Snapshot{RF: c.RF, Mem: c.Mem, Retired: c.Seq}
}

// Bounds returns the stream region the interval covers. A nil checkpoint
// means a monolithic run: start at zero, measure everything, no end bound.
func (c *Checkpoint) Bounds() (start, measure, end uint64) {
	if c == nil {
		return 0, 0, ^uint64(0)
	}
	return c.Seq, c.Measure, c.End
}

// CheckpointSet is the output of one fast-forward pass: one checkpoint per
// selected interval, in stream order, plus the total dynamic instruction
// count and the exact final architectural state.
type CheckpointSet struct {
	Checkpoints []*Checkpoint
	// N is the dynamic stream length (retired instructions including halt).
	N uint64
	// Final is the architectural state after the whole stream has executed
	// functionally — identical to any timing model's final state (the xcheck
	// invariant). Sparse stitching uses it when the last interval is not
	// among the simulated ones.
	Final *Snapshot
}

// maxIntervals bounds how many checkpoints one run may materialize; each
// carries a full memory image clone, so an accidentally tiny K on a long
// stream would otherwise exhaust memory before any simulation starts.
const maxIntervals = 4096

// BuildCheckpoints runs the functional fast-forward: the arch interpreter
// (the same oracle xcheck validates against) executes the whole program,
// warming a dedicated cache hierarchy and branch predictor along the retired
// path, and captures a checkpoint at each interval's warm-up start,
// max(0, i*K-W). Interval 0's checkpoint is the cold initial state, so its
// simulation is exactly a monolithic run truncated at K.
func BuildCheckpoints(p *isa.Program, image *arch.Memory, cfg SampleConfig, spec CheckpointSpec) (*CheckpointSet, error) {
	if cfg.Interval == 0 {
		return nil, fmt.Errorf("sim: sample interval must be positive")
	}
	k, w := cfg.Interval, cfg.Warmup
	hier, err := mem.NewHierarchy(spec.Hier)
	if err != nil {
		return nil, err
	}
	pred := bpred.New(spec.PredictorEntries)
	limit := spec.MaxInsts
	if limit == 0 {
		limit = ^uint64(0)
	}

	st := arch.NewState(image.Clone())
	lineMask := ^uint32(spec.Hier.L1I.LineBytes - 1)
	var lineAddr uint32
	haveLine := false

	warmStart := func(i uint64) uint64 {
		if s := i * k; s > w {
			return s - w
		}
		return 0
	}

	set := &CheckpointSet{}
	period := cfg.period()
	next := uint64(0) // next interval index to capture for
	for !st.Halted {
		for warmStart(next) == st.Retired {
			if next%period == 0 {
				if len(set.Checkpoints) >= maxIntervals {
					return nil, fmt.Errorf("sim: sample interval %d yields more than %d intervals; use a larger interval", k, maxIntervals)
				}
				set.Checkpoints = append(set.Checkpoints, &Checkpoint{
					Seq:     st.Retired,
					Measure: next * k,
					PC:      st.PC,
					RF:      st.RF.Clone(),
					Mem:     st.Mem.Clone(),
					Caches:  hier.CaptureWarm(),
					Pred:    pred.CaptureWarm(),
				})
			}
			next++
		}
		if st.Retired >= limit {
			return nil, fmt.Errorf("sim: dynamic instruction limit %d exceeded", limit)
		}
		idx := st.PC
		info, err := st.Step(p)
		if err != nil {
			return nil, err
		}
		// Warm the instruction side per fetched line, mirroring the fetch
		// unit: a taken branch ends the current line (redirect).
		addr := isa.InstAddr(idx)
		if line := addr & lineMask; !haveLine || line != lineAddr {
			hier.WarmInst(line)
			lineAddr, haveLine = line, true
		}
		if info.IsBranch {
			pred.Update(addr, info.Taken)
			if info.Taken {
				haveLine = false
			}
		}
		if !info.Squashed {
			if info.IsLoad {
				hier.WarmData(info.MemAddr, false)
			}
			if info.IsStore {
				hier.WarmData(info.MemAddr, true)
			}
		}
	}
	set.N = st.Retired
	set.Final = &Snapshot{RF: st.RF.Clone(), Mem: st.Mem.Clone(), Retired: st.Retired}

	// Drop checkpoints whose measured region starts at or past the halt:
	// they were captured before the stream length was known and have nothing
	// to measure.
	cks := set.Checkpoints
	for len(cks) > 0 && cks[len(cks)-1].Measure >= set.N {
		cks = cks[:len(cks)-1]
	}
	if len(cks) == 0 {
		return nil, fmt.Errorf("sim: empty dynamic stream")
	}
	for _, ck := range cks {
		ck.End = ck.Measure + k
		if ck.End > set.N {
			ck.End = set.N
		}
	}
	set.Checkpoints = cks
	return set, nil
}
