package sim

import (
	"context"
	"fmt"
	"runtime/pprof"
	"time"

	"multipass/internal/arch"
	"multipass/internal/bpred"
	"multipass/internal/isa"
	"multipass/internal/mem"
)

// SampleConfig configures SMARTS-style parallel interval simulation: the
// dynamic instruction stream is divided into intervals of Interval retired
// instructions, each simulated independently by a detailed timing model
// starting from a checkpoint taken Warmup instructions before the interval
// (the warm-up window's stats are discarded), and the per-interval stats are
// stitched into one run result.
type SampleConfig struct {
	// Interval is K, the number of retired instructions per measured
	// interval. Must be positive.
	Interval uint64
	// Warmup is W, the number of instructions simulated in detail before
	// each interval to re-establish pipeline and in-flight-miss state on top
	// of the checkpoint's warm caches and predictor. Stats from the warm-up
	// window are discarded. Zero selects the default, Interval/4.
	Warmup uint64
	// Workers bounds how many intervals simulate concurrently; <= 0 selects
	// GOMAXPROCS. Worker count affects wall clock only, never the stitched
	// statistics: interval boundaries are positions in the deterministic
	// dynamic stream.
	Workers int
	// Period selects sparse SMARTS measurement: only every Period-th interval
	// (0, P, 2P, ...) is simulated in detail and the stitched statistics are
	// extrapolated to the full stream length. 0 and 1 both mean full coverage
	// (every interval simulated, no extrapolation). Sparse mode trades the
	// full-coverage cycle guarantee for wall-clock: retired count and final
	// architectural state stay exact (both come from the functional pass),
	// but total cycles become an estimate whose error grows with program
	// phase heterogeneity.
	Period uint64
}

// period returns the canonical sampling period (>= 1).
func (c *SampleConfig) period() uint64 {
	if c.Period <= 1 {
		return 1
	}
	return c.Period
}

// CheckpointSpec reports the knobs a checkpoint builder needs to warm
// microarchitectural state compatibly with a timing model.
type CheckpointSpec struct {
	Hier             mem.HierConfig
	PredictorEntries int
	// MaxInsts bounds the functional fast-forward like the model's own
	// dynamic instruction limit; 0 means unbounded.
	MaxInsts uint64
}

// Checkpoint is the starting state for one interval simulation: the
// architectural state (registers, memory, PC) at sequence Seq of the dynamic
// stream, plus warm microarchitectural state — cache tags and LRU order,
// branch predictor table and history — accumulated by the functional
// fast-forward up to that point. MSHRs are defined to be drained at a
// checkpoint: a functional fast-forward has no timing, so in-flight misses
// cannot be represented; the warm-up window re-establishes them before
// measurement begins.
type Checkpoint struct {
	// Seq is where detailed simulation starts (the warm-up window start).
	Seq uint64
	// Measure is where measurement starts: stats accumulated on sequences in
	// [Seq, Measure) are discarded as warm-up.
	Measure uint64
	// End is one past the last sequence this interval measures. A streamed
	// checkpoint's End is the optimistic Measure+K — the stream length is not
	// known yet when the checkpoint is handed out — and the final interval
	// simply reaches the halt first. Consumers that need the exact measured
	// span clamp End by the stream length N once the functional pass
	// finishes (BuildCheckpoints does this for its collected set).
	End uint64

	PC     int
	RF     *arch.RegFile
	Mem    *arch.Memory
	Caches *mem.WarmCaches
	Pred   bpred.WarmState
}

// Snapshot returns the checkpoint's architectural state in the equivalence-
// check form. It aliases the checkpoint's state.
func (c *Checkpoint) Snapshot() *Snapshot {
	return &Snapshot{RF: c.RF, Mem: c.Mem, Retired: c.Seq}
}

// Bounds returns the stream region the interval covers. A nil checkpoint
// means a monolithic run: start at zero, measure everything, no end bound.
func (c *Checkpoint) Bounds() (start, measure, end uint64) {
	if c == nil {
		return 0, 0, ^uint64(0)
	}
	return c.Seq, c.Measure, c.End
}

// CheckpointSet is the output of one fast-forward pass: one checkpoint per
// selected interval, in stream order, plus the total dynamic instruction
// count and the exact final architectural state.
type CheckpointSet struct {
	Checkpoints []*Checkpoint
	// N is the dynamic stream length (retired instructions including halt).
	N uint64
	// Final is the architectural state after the whole stream has executed
	// functionally — identical to any timing model's final state (the xcheck
	// invariant). Sparse stitching uses it when the last interval is not
	// among the simulated ones.
	Final *Snapshot
}

// maxIntervals bounds how many checkpoints one run may materialize; each
// carries a memory snapshot, so an accidentally tiny K on a long stream
// would otherwise exhaust memory before any simulation starts.
const maxIntervals = 4096

// ffEventChunk is how many retired-instruction events the fast-forward
// executes per superblock dispatch call before replaying them into the warm
// cache hierarchy and predictor. Each chunk boundary is also a cancellation
// poll point, so it bounds both the replay working set and the cancel
// latency (tens of microseconds of execution per chunk).
const ffEventChunk = 32768

// CheckpointSource is a functional fast-forward in flight. Checkpoints
// arrive on C in stream order as the pass discovers them, so interval
// workers can start detailed simulation while the fast-forward is still
// running. After C closes, Wait reports the stream length, the exact final
// architectural state, the fast-forward duration, and the pass's error, if
// any. A checkpoint is only sent once the pass has retired past its Measure
// boundary, which guarantees every delivered checkpoint has a non-empty
// measured region; its End, however, is the optimistic Measure+K (see
// Checkpoint.End).
type CheckpointSource struct {
	C <-chan *Checkpoint

	done  chan struct{}
	n     uint64
	final *Snapshot
	ffDur time.Duration
	err   error
}

// Wait blocks until the fast-forward finishes and returns the dynamic stream
// length, the final architectural state, the fast-forward duration, and the
// first error. Callers must drain C (or cancel the context) or the producer
// may block forever on a full channel.
func (s *CheckpointSource) Wait() (n uint64, final *Snapshot, ffDur time.Duration, err error) {
	<-s.done
	return s.n, s.final, s.ffDur, s.err
}

// StreamCheckpoints starts the functional fast-forward as a streaming
// producer: the superblock interpreter (the same oracle xcheck validates
// against) executes the whole program in event chunks, warming a dedicated
// cache hierarchy and branch predictor along the retired path, and captures
// a checkpoint at each selected interval's warm-up start, max(0, i*K-W).
// Interval 0's checkpoint is the cold initial state, so its simulation is
// exactly a monolithic run truncated at K.
//
// Memory snapshots are delta captures: the fast-forward image tracks dirty
// pages, and consecutive checkpoints share the pages untouched between them,
// so capture cost follows the store stream rather than the image size.
// Checkpoint memories are read-only by contract (every consumer clones them
// before executing).
//
// The producer polls ctx between event chunks and shuts down promptly on
// cancellation; Wait then returns the context's error. The producer's CPU
// time is pprof-labeled phase=func_ffwd.
func StreamCheckpoints(ctx context.Context, p *isa.Program, image *arch.Memory, cfg SampleConfig, spec CheckpointSpec) (*CheckpointSource, error) {
	if cfg.Interval == 0 {
		return nil, fmt.Errorf("sim: sample interval must be positive")
	}
	hier, err := mem.NewHierarchy(spec.Hier)
	if err != nil {
		return nil, err
	}
	buf := cfg.Workers
	if buf < 4 {
		buf = 4
	}
	ch := make(chan *Checkpoint, buf)
	src := &CheckpointSource{C: ch, done: make(chan struct{})}
	start := time.Now()
	go pprof.Do(ctx, pprof.Labels("phase", "func_ffwd"), func(ctx context.Context) {
		defer close(src.done)
		defer close(ch)
		src.err = runFastForward(ctx, p, image, cfg, spec, hier, ch, src)
		src.ffDur = time.Since(start)
	})
	return src, nil
}

// runFastForward is the producer body: execute, warm, capture, send.
func runFastForward(ctx context.Context, p *isa.Program, image *arch.Memory, cfg SampleConfig, spec CheckpointSpec, hier *mem.Hierarchy, ch chan<- *Checkpoint, src *CheckpointSource) error {
	k, w := cfg.Interval, cfg.Warmup
	pred := bpred.New(spec.PredictorEntries)
	limit := spec.MaxInsts
	if limit == 0 {
		limit = ^uint64(0)
	}

	sb := arch.NewSBProgram(p)
	st := arch.NewState(image.Clone())
	st.Mem.TrackDirty()
	var prevSnap *arch.Memory

	lineMask := ^uint32(spec.Hier.L1I.LineBytes - 1)
	var lineAddr uint32
	haveLine := false

	warmStart := func(i uint64) uint64 {
		if s := i * k; s > w {
			return s - w
		}
		return 0
	}

	period := cfg.period()
	next := uint64(0) // next interval index to capture for
	captured := 0
	sent := 0

	// pending holds captured checkpoints not yet known to have a non-empty
	// measured region. The pass retires monotonically, so pending drains in
	// order: a checkpoint is sent as soon as retirement passes its Measure
	// boundary, and whatever is still pending at halt (Measure >= N) is
	// dropped, matching the non-streaming trailing-checkpoint rule.
	var pending []*Checkpoint
	flush := func() error {
		for len(pending) > 0 && st.Retired > pending[0].Measure {
			select {
			case ch <- pending[0]:
			case <-ctx.Done():
				return ctx.Err()
			}
			pending = pending[1:]
			sent++
		}
		return nil
	}

	evs := make([]arch.ExecEvent, ffEventChunk)
	for !st.Halted {
		for warmStart(next) == st.Retired {
			if next%period == 0 {
				if captured >= maxIntervals {
					return fmt.Errorf("sim: sample interval %d yields more than %d intervals; use a larger interval", k, maxIntervals)
				}
				captured++
				memSnap := st.Mem.CaptureDelta(prevSnap)
				prevSnap = memSnap
				pending = append(pending, &Checkpoint{
					Seq:     st.Retired,
					Measure: next * k,
					End:     next*k + k,
					PC:      st.PC,
					RF:      st.RF.Clone(),
					Mem:     memSnap,
					Caches:  hier.CaptureWarm(),
					Pred:    pred.CaptureWarm(),
				})
			}
			next++
		}
		if st.Retired >= limit {
			return fmt.Errorf("sim: dynamic instruction limit %d exceeded", limit)
		}
		if err := ctx.Err(); err != nil {
			return err
		}

		stopAt := warmStart(next)
		if stopAt > limit {
			stopAt = limit
		}
		_, nev, err := sb.ExecTrace(st, stopAt, evs)
		// Replay the chunk's events into the warm state before surfacing any
		// error: the instructions retired either way. The instruction side
		// warms per fetched line, mirroring the fetch unit — a taken branch
		// ends the current line (redirect) — and every branch trains the
		// predictor (a squashed branch is architecturally not taken).
		for i := 0; i < nev; i++ {
			e := &evs[i]
			if line := e.Fetch & lineMask; !haveLine || line != lineAddr {
				hier.WarmInst(line)
				lineAddr, haveLine = line, true
			}
			if e.Flags&arch.EvBranch != 0 {
				taken := e.Flags&arch.EvTaken != 0
				pred.Update(e.Fetch, taken)
				if taken {
					haveLine = false
				}
			} else if e.Flags&arch.EvLoad != 0 {
				hier.WarmData(e.MemAddr, false)
			} else if e.Flags&arch.EvStore != 0 {
				hier.WarmData(e.MemAddr, true)
			}
		}
		if err != nil {
			return err
		}
		if err := flush(); err != nil {
			return err
		}
	}

	src.n = st.Retired
	src.final = &Snapshot{RF: st.RF.Clone(), Mem: st.Mem.Clone(), Retired: st.Retired}
	if err := flush(); err != nil {
		return err
	}
	if sent == 0 {
		return fmt.Errorf("sim: empty dynamic stream")
	}
	return nil
}

// BuildCheckpoints runs the functional fast-forward to completion and
// collects the streamed checkpoints into a CheckpointSet, with each
// checkpoint's End clamped to the now-known stream length. It is the
// non-streaming convenience form of StreamCheckpoints.
func BuildCheckpoints(ctx context.Context, p *isa.Program, image *arch.Memory, cfg SampleConfig, spec CheckpointSpec) (*CheckpointSet, error) {
	src, err := StreamCheckpoints(ctx, p, image, cfg, spec)
	if err != nil {
		return nil, err
	}
	var cks []*Checkpoint
	for ck := range src.C {
		cks = append(cks, ck)
	}
	n, final, _, err := src.Wait()
	if err != nil {
		return nil, err
	}
	for _, ck := range cks {
		if ck.End > n {
			ck.End = n
		}
	}
	return &CheckpointSet{Checkpoints: cks, N: n, Final: final}, nil
}
