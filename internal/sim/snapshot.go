package sim

import (
	"fmt"

	"multipass/internal/arch"
)

// Snapshot is the model-independent architectural outcome of a run: the
// final register file (values and NaT bits), the final memory image, and the
// retired-instruction count. Two machines simulating the same program are
// functionally equivalent exactly when their snapshots are Equal; timing is
// deliberately excluded.
type Snapshot struct {
	RF      *arch.RegFile
	Mem     *arch.Memory
	Retired uint64
}

// Snapshot returns the architectural outcome of the run. The snapshot
// aliases the result's state; callers that mutate it should Clone first.
func (r *Result) Snapshot() *Snapshot {
	return &Snapshot{RF: r.RF, Mem: r.Mem, Retired: r.Stats.Retired}
}

// Equal reports whether two runs produced byte-identical architectural
// outcomes: every register value and NaT bit, every touched memory page, and
// the retired-instruction count.
func (s *Snapshot) Equal(o *Snapshot) bool {
	return s.Retired == o.Retired && s.RF.Equal(o.RF) && s.Mem.Equal(o.Mem)
}

// Diff describes how s differs from o in at most limit lines, for divergence
// reports. Lines are of the form "r5: 0x1 vs 0x2", "mem[0x1000]: ...", or
// "retired: 10 vs 12". An empty slice means the snapshots are Equal.
func (s *Snapshot) Diff(o *Snapshot, limit int) []string {
	var out []string
	if s.Retired != o.Retired {
		out = append(out, fmt.Sprintf("retired: %d vs %d", s.Retired, o.Retired))
	}
	for _, r := range s.RF.Diff(o.RF) {
		if len(out) >= limit {
			return out
		}
		out = append(out, fmt.Sprintf("%s: %#x vs %#x (nat %v vs %v)",
			r, uint64(s.RF.Read(r)), uint64(o.RF.Read(r)), s.RF.ReadNaT(r), o.RF.ReadNaT(r)))
	}
	if len(out) >= limit {
		return out
	}
	for _, d := range s.Mem.DiffWords(o.Mem, limit-len(out)) {
		out = append(out, fmt.Sprintf("mem[%#x]: %#x vs %#x", d.Addr, d.A, d.B))
	}
	return out
}
