package sim

import (
	"encoding/json"
	"fmt"

	"multipass/internal/bpred"
	"multipass/internal/mem"
)

// StatsSchemaVersion is the version stamped into every marshaled Stats. Bump
// it on any change to field names, meanings, or structure; consumers reject
// versions they do not understand instead of silently misreading counters.
const StatsSchemaVersion = 1

// stallBreakdown is the named form of the Cat array: the four Figure 6
// cycle-attribution categories. Using names instead of array positions keeps
// the wire format stable if the internal category order ever changes.
type stallBreakdown struct {
	Execution uint64 `json:"execution"`
	FrontEnd  uint64 `json:"front_end"`
	Other     uint64 `json:"other"`
	Load      uint64 `json:"load"`
}

// statsJSON is the canonical wire form of Stats. Model-specific sections are
// pointers with omitempty so a run only carries the counters of its own
// machine; field order here is the field order of the encoding.
type statsJSON struct {
	SchemaVersion  int             `json:"schema_version"`
	Cycles         uint64          `json:"cycles"`
	Retired        uint64          `json:"retired"`
	CycleBreakdown stallBreakdown  `json:"cycle_breakdown"`
	Branch         bpred.Stats     `json:"branch"`
	Memory         mem.HierStats   `json:"memory"`
	Multipass      *MultipassStats `json:"multipass,omitempty"`
	Runahead       *RunaheadStats  `json:"runahead,omitempty"`
	OOO            *OOOStats       `json:"ooo,omitempty"`
	CGOOO          *CGOOOStats     `json:"cgooo,omitempty"`
}

// MarshalJSON implements the canonical versioned encoding. The receiver is a
// value so embedded and non-addressable Stats (experiment result rows, map
// values) encode identically to pointers.
func (s Stats) MarshalJSON() ([]byte, error) {
	out := statsJSON{
		SchemaVersion: StatsSchemaVersion,
		Cycles:        s.Cycles,
		Retired:       s.Retired,
		CycleBreakdown: stallBreakdown{
			Execution: s.Cat[StallExecution],
			FrontEnd:  s.Cat[StallFrontEnd],
			Other:     s.Cat[StallOther],
			Load:      s.Cat[StallLoad],
		},
		Branch: s.Branch,
		Memory: s.Memory,
	}
	if s.Multipass != (MultipassStats{}) {
		mp := s.Multipass
		out.Multipass = &mp
	}
	if s.Runahead != (RunaheadStats{}) {
		ra := s.Runahead
		out.Runahead = &ra
	}
	if s.OOO != (OOOStats{}) {
		oo := s.OOO
		out.OOO = &oo
	}
	if s.CGOOO != (CGOOOStats{}) {
		cg := s.CGOOO
		out.CGOOO = &cg
	}
	return json.Marshal(&out)
}

// UnmarshalJSON decodes the canonical encoding, rejecting schema versions
// this build does not know.
func (s *Stats) UnmarshalJSON(data []byte) error {
	var in statsJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	if in.SchemaVersion != StatsSchemaVersion {
		return fmt.Errorf("sim: stats schema version %d, this build reads %d", in.SchemaVersion, StatsSchemaVersion)
	}
	*s = Stats{
		Cycles:  in.Cycles,
		Retired: in.Retired,
		Branch:  in.Branch,
		Memory:  in.Memory,
	}
	s.Cat[StallExecution] = in.CycleBreakdown.Execution
	s.Cat[StallFrontEnd] = in.CycleBreakdown.FrontEnd
	s.Cat[StallOther] = in.CycleBreakdown.Other
	s.Cat[StallLoad] = in.CycleBreakdown.Load
	if in.Multipass != nil {
		s.Multipass = *in.Multipass
	}
	if in.Runahead != nil {
		s.Runahead = *in.Runahead
	}
	if in.OOO != nil {
		s.OOO = *in.OOO
	}
	if in.CGOOO != nil {
		s.CGOOO = *in.CGOOO
	}
	return nil
}
