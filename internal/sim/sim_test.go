package sim

import (
	"testing"

	"multipass/internal/arch"
	"multipass/internal/isa"
	"multipass/internal/mem"
)

func testProgram() *isa.Program {
	return isa.MustAssemble(`
	movi r1 = 3
	movi r2 = 0
loop:
	addi r2 = r2, 1
	subi r1 = r1, 1
	cmpi.ne p1, p2 = r1, 0 ;;
	(p1) br loop
	halt
`)
}

func TestStreamProducesDynamicSequence(t *testing.T) {
	s := NewStream(testProgram(), arch.NewMemory(), 1000)
	// 2 setup + 3 iterations of 4 + halt = 15 dynamic instructions.
	var last *DynInst
	for seq := uint64(0); ; seq++ {
		d, err := s.At(seq)
		if err != nil {
			t.Fatal(err)
		}
		if d == nil {
			break
		}
		if d.Seq != seq {
			t.Fatalf("seq mismatch: %d vs %d", d.Seq, seq)
		}
		last = d
	}
	if last == nil || !last.Halt {
		t.Fatal("stream did not end with halt")
	}
	if last.Seq != 14 {
		t.Errorf("dynamic length = %d, want 15", last.Seq+1)
	}
	if !s.Ended() || s.EndSeq() != 14 {
		t.Errorf("EndSeq = %d", s.EndSeq())
	}
}

func TestStreamBranchMetadata(t *testing.T) {
	s := NewStream(testProgram(), arch.NewMemory(), 1000)
	// Seq 5 is the first (p1) br loop, taken twice then not taken.
	d, err := s.At(5)
	if err != nil {
		t.Fatal(err)
	}
	if !d.IsBranch || !d.Taken || d.NextIdx != 2 {
		t.Errorf("first branch: %+v", d)
	}
	d, _ = s.At(13)
	if !d.IsBranch || d.Taken {
		t.Errorf("last branch should be not taken: %+v", d)
	}
}

func TestStreamReleaseAndPointerStability(t *testing.T) {
	s := NewStream(testProgram(), arch.NewMemory(), 1000)
	d3, _ := s.At(3)
	d9, _ := s.At(9)
	idx3, idx9 := d3.Index, d9.Index
	s.Release(8)
	// Held pointers stay valid after release.
	if d3.Index != idx3 || d9.Index != idx9 {
		t.Fatal("DynInst pointers invalidated by Release")
	}
	// Window access below the base panics.
	defer func() {
		if recover() == nil {
			t.Error("released access did not panic")
		}
	}()
	s.At(3)
}

func TestStreamLimit(t *testing.T) {
	p := isa.MustAssemble("loop: jmp loop\nhalt")
	s := NewStream(p, arch.NewMemory(), 50)
	var err error
	for seq := uint64(0); err == nil; seq++ {
		_, err = s.At(seq)
	}
	if err == nil {
		t.Fatal("instruction limit not enforced")
	}
}

func TestFetchUnitBasics(t *testing.T) {
	h := mem.MustNewHierarchy(mem.BaseConfig())
	s := NewStream(testProgram(), arch.NewMemory(), 1000)
	f := NewFetchUnit(s, h, 6)
	f.SetLimit(1000)
	r0, ok, err := f.ReadyAt(0)
	if err != nil || !ok {
		t.Fatal(err, ok)
	}
	// Cold I-cache: the first group waits for the line.
	if r0 < 100 {
		t.Errorf("first fetch ready at %d; expected cold I-miss delay", r0)
	}
	// Later instructions on the same line are at most a few groups later.
	r6, _, _ := f.ReadyAt(6)
	if r6 < r0 || r6 > r0+10 {
		t.Errorf("seq 6 ready at %d (first at %d)", r6, r0)
	}
}

func TestFetchFlushDelaysRefetch(t *testing.T) {
	h := mem.MustNewHierarchy(mem.BaseConfig())
	s := NewStream(testProgram(), arch.NewMemory(), 1000)
	f := NewFetchUnit(s, h, 6)
	f.SetLimit(1000)
	before, _, _ := f.ReadyAt(6)
	f.Flush(5, before+500)
	after, _, _ := f.ReadyAt(6)
	if after < before+500 {
		t.Errorf("post-flush ready %d, want >= %d", after, before+500)
	}
	// Sequences before the restart point keep their old times.
	r4, _, _ := f.ReadyAt(4)
	if r4 >= before+500 {
		t.Errorf("pre-flush seq delayed: %d", r4)
	}
}

func TestFetchLimitPanic(t *testing.T) {
	h := mem.MustNewHierarchy(mem.BaseConfig())
	s := NewStream(testProgram(), arch.NewMemory(), 1000)
	f := NewFetchUnit(s, h, 6)
	f.SetLimit(4)
	defer func() {
		if recover() == nil {
			t.Error("query beyond limit did not panic")
		}
	}()
	f.ReadyAt(4)
}

func TestStatsConsistency(t *testing.T) {
	var s Stats
	s.Cycles = 10
	s.Cat[StallExecution] = 4
	s.Cat[StallLoad] = 6
	if err := s.CheckConsistency(); err != nil {
		t.Error(err)
	}
	s.Cycles = 11
	if err := s.CheckConsistency(); err == nil {
		t.Error("inconsistent stats accepted")
	}
}

func TestStatsDerived(t *testing.T) {
	var base, fast Stats
	base.Cycles = 200
	fast.Cycles = 100
	fast.Retired = 300
	if got := fast.Speedup(&base); got != 2 {
		t.Errorf("speedup = %v", got)
	}
	if got := fast.IPC(); got != 3 {
		t.Errorf("IPC = %v", got)
	}
	fast.Cat[StallFrontEnd] = 10
	fast.Cat[StallLoad] = 20
	if got := fast.TotalStalls(); got != 30 {
		t.Errorf("total stalls = %d", got)
	}
}

func TestRegSet(t *testing.T) {
	var s RegSet
	s.Add(isa.IntReg(5))
	s.Add(isa.FPReg(5))
	s.Add(isa.PredReg(5))
	if !s.Has(isa.IntReg(5)) || !s.Has(isa.FPReg(5)) || !s.Has(isa.PredReg(5)) {
		t.Error("added registers missing")
	}
	if s.Has(isa.IntReg(6)) {
		t.Error("phantom member")
	}
	// Hardwired registers never join the set.
	s.Add(isa.R0)
	s.Add(isa.P0)
	if s.Has(isa.R0) || s.Has(isa.P0) {
		t.Error("hardwired registers must not carry dependences")
	}
	s.Clear()
	if s.Has(isa.IntReg(5)) {
		t.Error("clear did not clear")
	}
}

func TestConfigValidate(t *testing.T) {
	good := Default()
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Caps.MaxIssue = 0 },
		func(c *Config) { c.FetchWidth = 0 },
		func(c *Config) { c.BufferSize = 0 },
		func(c *Config) { c.MispredictPenalty = -1 },
		func(c *Config) { c.MaxInsts = 0 },
		func(c *Config) { c.PredictorEntries = 3 },
	}
	for i, mutate := range cases {
		c := Default()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestProducerKindStallMapping(t *testing.T) {
	if ProducerLoad.StallFor() != StallLoad {
		t.Error("load producer should map to load stall")
	}
	if ProducerOther.StallFor() != StallOther || ProducerNone.StallFor() != StallOther {
		t.Error("non-load producers should map to other")
	}
}

func TestStreamAccessors(t *testing.T) {
	s := NewStream(testProgram(), arch.NewMemory(), 1000)
	for seq := uint64(0); ; seq++ {
		d, err := s.At(seq)
		if err != nil {
			t.Fatal(err)
		}
		if d == nil {
			break
		}
	}
	if s.Retired() == 0 {
		t.Error("Retired() = 0 after full interpretation")
	}
	fin := s.FinalState()
	if fin == nil || !fin.Halted {
		t.Error("FinalState not halted after the stream ended")
	}
	if got := fin.RF.Read(isa.IntReg(2)).Uint32(); got != 3 {
		t.Errorf("final r2 = %d, want 3", got)
	}
}

func TestFetchRelease(t *testing.T) {
	h := mem.MustNewHierarchy(mem.BaseConfig())
	s := NewStream(testProgram(), arch.NewMemory(), 1000)
	f := NewFetchUnit(s, h, 6)
	f.SetLimit(1 << 20)
	if _, _, err := f.ReadyAt(10); err != nil {
		t.Fatal(err)
	}
	f.Release(8)
	// Access above the release point still works.
	if _, _, err := f.ReadyAt(9); err != nil {
		t.Fatal(err)
	}
	// Releasing twice (and backwards) is harmless.
	f.Release(8)
	f.Release(4)
	defer func() {
		if recover() == nil {
			t.Error("query below released window did not panic")
		}
	}()
	f.ReadyAt(5)
}

func TestStallKindString(t *testing.T) {
	want := map[StallKind]string{
		StallExecution: "execution",
		StallFrontEnd:  "front-end",
		StallOther:     "other",
		StallLoad:      "load",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
	if StallKind(99).String() == "" {
		t.Error("out-of-range stall kind renders empty")
	}
}

func TestStatsZeroDivision(t *testing.T) {
	var s Stats
	if s.IPC() != 0 {
		t.Error("IPC of empty stats")
	}
	var base Stats
	base.Cycles = 100
	if s.Speedup(&base) != 0 {
		t.Error("speedup of zero-cycle stats")
	}
}

func TestConfigErrorMessage(t *testing.T) {
	c := Default()
	c.MaxInsts = 0
	err := c.Validate()
	if err == nil || err.Error() == "" {
		t.Error("config error has no message")
	}
}
