package sim

import (
	"fmt"
	"reflect"

	"multipass/internal/bpred"
	"multipass/internal/mem"
)

// StallKind is the Figure 6 cycle attribution category.
type StallKind int

const (
	// StallExecution: at least one instruction issued this cycle.
	StallExecution StallKind = iota
	// StallFrontEnd: the issue stage starved (branch flush, I-cache miss,
	// empty buffer).
	StallFrontEnd
	// StallOther: waiting on a multi-cycle non-load result or a resource
	// conflict.
	StallOther
	// StallLoad: waiting on consumption of an unready load result.
	StallLoad
	numStallKinds
)

// NumStallKinds is the number of attribution categories.
const NumStallKinds = int(numStallKinds)

func (k StallKind) String() string {
	switch k {
	case StallExecution:
		return "execution"
	case StallFrontEnd:
		return "front-end"
	case StallOther:
		return "other"
	case StallLoad:
		return "load"
	}
	return fmt.Sprintf("StallKind(%d)", int(k))
}

// Stats is the outcome of one timing run.
type Stats struct {
	Cycles  uint64
	Retired uint64
	// Cat attributes every cycle to one category; the entries sum to Cycles.
	Cat [NumStallKinds]uint64

	Branch bpred.Stats
	Memory mem.HierStats

	// Model-specific counters; zero where not applicable.
	Multipass MultipassStats
	Runahead  RunaheadStats
	OOO       OOOStats
	CGOOO     CGOOOStats
}

// MultipassStats counts multipass-specific activity (paper §3).
type MultipassStats struct {
	AdvanceEntries   uint64 `json:"advance_entries"`    // architectural->advance transitions
	AdvancePasses    uint64 `json:"advance_passes"`     // total passes (>= entries; restarts add passes)
	Restarts         uint64 `json:"restarts"`           // advance restarts triggered by RESTART
	HWRestarts       uint64 `json:"hw_restarts"`        // advance restarts triggered by the hardware heuristic
	AdvanceExecuted  uint64 `json:"advance_executed"`   // instructions executed in advance mode
	AdvanceDeferred  uint64 `json:"advance_deferred"`   // instructions suppressed in advance mode
	Merged           uint64 `json:"merged"`             // result-store merges in rally/architectural mode
	Reexecuted       uint64 `json:"reexecuted"`         // E-bit results recomputed due to flush
	SpecLoads        uint64 `json:"spec_loads"`         // data-speculative loads (S-bit)
	SpecFlushes      uint64 `json:"spec_flushes"`       // value-mismatch pipeline flushes (§3.6)
	AdvanceCycles    uint64 `json:"advance_cycles"`     // cycles spent in advance mode
	RallyCycles      uint64 `json:"rally_cycles"`       // cycles spent in rally mode
	ArchCycles       uint64 `json:"arch_cycles"`        // cycles spent in architectural mode
	EarlyResolved    uint64 `json:"early_resolved"`     // branches resolved during advance execution
	ASCHits          uint64 `json:"asc_hits"`           // advance loads forwarded from the ASC
	ASCReplacements  uint64 `json:"asc_replacements"`   // ASC evictions making later loads speculative
	DeferredStores   uint64 `json:"deferred_stores"`    // advance stores deferred on unknown address
	IQFullCycles     uint64 `json:"iq_full_cycles"`     // advance stalled on instruction queue limit
	RestartInstsSeen uint64 `json:"restart_insts_seen"` // RESTART instructions processed in advance mode
}

// RunaheadStats counts Dundas-Mudge runahead activity.
type RunaheadStats struct {
	Episodes    uint64 `json:"episodes"`     // runahead entries
	PreExecuted uint64 `json:"pre_executed"` // instructions pre-executed during runahead
	Deferred    uint64 `json:"deferred"`     // instructions suppressed during runahead
	Cycles      uint64 `json:"cycles"`       // cycles spent in runahead mode
}

// OOOStats counts out-of-order model activity.
type OOOStats struct {
	Flushes      uint64 `json:"flushes"`        // branch misprediction flushes
	Squashed     uint64 `json:"squashed"`       // in-flight instructions squashed by flushes
	WindowFullCy uint64 `json:"window_full_cy"` // cycles rename stalled on a full window
	ROBFullCy    uint64 `json:"rob_full_cy"`    // cycles rename stalled on a full ROB
}

// CGOOOStats counts coarse-grain out-of-order model activity (block windows,
// block-granularity dispatch/commit/squash).
type CGOOOStats struct {
	Blocks         uint64 `json:"blocks"`          // blocks dispatched to block windows
	BlockSquashes  uint64 `json:"block_squashes"`  // branch misprediction flushes (block granularity)
	SquashedBlocks uint64 `json:"squashed_blocks"` // younger blocks discarded by flushes
	SquashedInsts  uint64 `json:"squashed_insts"`  // in-flight instructions discarded by flushes
	WindowFullCy   uint64 `json:"window_full_cy"`  // cycles dispatch stalled with every block window live
	WindowOccCy    uint64 `json:"window_occ_cy"`   // occupancy integral: sum over cycles of live block windows
	// Gauges, not counts: a longer run of the same program does not grow
	// them, so sparse-sampling extrapolation (ScaleTo) keeps them as-is.
	PeakLiveBlocks uint64 `json:"peak_live_blocks"` // max simultaneously live block windows
	MaxBlockLen    uint64 `json:"max_block_len"`    // longest block formed (bounded by BlockSize)
}

// Add accumulates o into s fieldwise; Sub removes it. Counters are pure
// uint64 counts, so both operations are exact on them; they exist for
// interval sampling, where per-interval stats are stitched by addition and
// warm-up baselines removed by subtraction. Because the stall categories and
// Cycles are always incremented together, both operations preserve the
// CheckConsistency invariant. Gauges (peaks and widths, e.g.
// CGOOOStats.PeakLiveBlocks) are not counts: Add merges them by maximum and
// Sub leaves them in place — a peak observed during a warm-up window cannot
// be un-observed, so a stitched gauge covers warm-up and measurement alike.
func (s *Stats) Add(o *Stats) {
	s.Cycles += o.Cycles
	s.Retired += o.Retired
	for i := range s.Cat {
		s.Cat[i] += o.Cat[i]
	}
	s.Branch.Add(o.Branch)
	s.Memory.Add(o.Memory)
	s.Multipass.add(&o.Multipass)
	s.Runahead.add(&o.Runahead)
	s.OOO.add(&o.OOO)
	s.CGOOO.add(&o.CGOOO)
}

// Sub removes o from s fieldwise.
func (s *Stats) Sub(o *Stats) {
	s.Cycles -= o.Cycles
	s.Retired -= o.Retired
	for i := range s.Cat {
		s.Cat[i] -= o.Cat[i]
	}
	s.Branch.Sub(o.Branch)
	s.Memory.Sub(o.Memory)
	s.Multipass.sub(&o.Multipass)
	s.Runahead.sub(&o.Runahead)
	s.OOO.sub(&o.OOO)
	s.CGOOO.sub(&o.CGOOO)
}

func (s *MultipassStats) add(o *MultipassStats) {
	s.AdvanceEntries += o.AdvanceEntries
	s.AdvancePasses += o.AdvancePasses
	s.Restarts += o.Restarts
	s.HWRestarts += o.HWRestarts
	s.AdvanceExecuted += o.AdvanceExecuted
	s.AdvanceDeferred += o.AdvanceDeferred
	s.Merged += o.Merged
	s.Reexecuted += o.Reexecuted
	s.SpecLoads += o.SpecLoads
	s.SpecFlushes += o.SpecFlushes
	s.AdvanceCycles += o.AdvanceCycles
	s.RallyCycles += o.RallyCycles
	s.ArchCycles += o.ArchCycles
	s.EarlyResolved += o.EarlyResolved
	s.ASCHits += o.ASCHits
	s.ASCReplacements += o.ASCReplacements
	s.DeferredStores += o.DeferredStores
	s.IQFullCycles += o.IQFullCycles
	s.RestartInstsSeen += o.RestartInstsSeen
}

func (s *MultipassStats) sub(o *MultipassStats) {
	s.AdvanceEntries -= o.AdvanceEntries
	s.AdvancePasses -= o.AdvancePasses
	s.Restarts -= o.Restarts
	s.HWRestarts -= o.HWRestarts
	s.AdvanceExecuted -= o.AdvanceExecuted
	s.AdvanceDeferred -= o.AdvanceDeferred
	s.Merged -= o.Merged
	s.Reexecuted -= o.Reexecuted
	s.SpecLoads -= o.SpecLoads
	s.SpecFlushes -= o.SpecFlushes
	s.AdvanceCycles -= o.AdvanceCycles
	s.RallyCycles -= o.RallyCycles
	s.ArchCycles -= o.ArchCycles
	s.EarlyResolved -= o.EarlyResolved
	s.ASCHits -= o.ASCHits
	s.ASCReplacements -= o.ASCReplacements
	s.DeferredStores -= o.DeferredStores
	s.IQFullCycles -= o.IQFullCycles
	s.RestartInstsSeen -= o.RestartInstsSeen
}

func (s *RunaheadStats) add(o *RunaheadStats) {
	s.Episodes += o.Episodes
	s.PreExecuted += o.PreExecuted
	s.Deferred += o.Deferred
	s.Cycles += o.Cycles
}

func (s *RunaheadStats) sub(o *RunaheadStats) {
	s.Episodes -= o.Episodes
	s.PreExecuted -= o.PreExecuted
	s.Deferred -= o.Deferred
	s.Cycles -= o.Cycles
}

func (s *OOOStats) add(o *OOOStats) {
	s.Flushes += o.Flushes
	s.Squashed += o.Squashed
	s.WindowFullCy += o.WindowFullCy
	s.ROBFullCy += o.ROBFullCy
}

func (s *OOOStats) sub(o *OOOStats) {
	s.Flushes -= o.Flushes
	s.Squashed -= o.Squashed
	s.WindowFullCy -= o.WindowFullCy
	s.ROBFullCy -= o.ROBFullCy
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func (s *CGOOOStats) add(o *CGOOOStats) {
	s.Blocks += o.Blocks
	s.BlockSquashes += o.BlockSquashes
	s.SquashedBlocks += o.SquashedBlocks
	s.SquashedInsts += o.SquashedInsts
	s.WindowFullCy += o.WindowFullCy
	s.WindowOccCy += o.WindowOccCy
	s.PeakLiveBlocks = maxU64(s.PeakLiveBlocks, o.PeakLiveBlocks)
	s.MaxBlockLen = maxU64(s.MaxBlockLen, o.MaxBlockLen)
}

func (s *CGOOOStats) sub(o *CGOOOStats) {
	s.Blocks -= o.Blocks
	s.BlockSquashes -= o.BlockSquashes
	s.SquashedBlocks -= o.SquashedBlocks
	s.SquashedInsts -= o.SquashedInsts
	s.WindowFullCy -= o.WindowFullCy
	s.WindowOccCy -= o.WindowOccCy
	// PeakLiveBlocks and MaxBlockLen are gauges: subtraction is undefined
	// for a maximum, so the observed peak stands.
}

// scaleRule is the declared sparse-sampling extrapolation treatment of one
// numeric field of Stats.
type scaleRule int

const (
	// scaleLinear marks an extensive counter (events, cycles): it grows with
	// stream length and is multiplied by the extrapolation ratio.
	scaleLinear scaleRule = iota
	// scaleKeep marks a non-extensive gauge (a peak, width, or level): its
	// value does not grow with stream length, so extrapolation keeps it.
	scaleKeep
	// scaleDerived marks a field ScaleTo recomputes itself after the
	// per-field pass: Retired lands exactly on the target, and Cycles is
	// re-summed from the scaled stall categories so CheckConsistency holds.
	scaleDerived
)

// scaleRules declares, for every numeric leaf field of Stats (paths as
// enumerated by statsFieldPaths), how ScaleTo treats it. There is no default:
// ScaleTo panics on a field missing here, and TestScaleRulesExhaustive fails
// on missing or stale entries, so a new counter must pick extensive vs gauge
// explicitly rather than silently scaling either way.
var scaleRules = map[string]scaleRule{
	"Cycles":  scaleDerived,
	"Retired": scaleDerived,
	"Cat":     scaleLinear,

	"Branch.Lookups":     scaleLinear,
	"Branch.Mispredicts": scaleLinear,

	"Memory.L1I.Accesses":        scaleLinear,
	"Memory.L1I.Misses":          scaleLinear,
	"Memory.L1I.AdvanceAccesses": scaleLinear,
	"Memory.L1I.AdvanceMisses":   scaleLinear,
	"Memory.L1I.Writebacks":      scaleLinear,
	"Memory.L1D.Accesses":        scaleLinear,
	"Memory.L1D.Misses":          scaleLinear,
	"Memory.L1D.AdvanceAccesses": scaleLinear,
	"Memory.L1D.AdvanceMisses":   scaleLinear,
	"Memory.L1D.Writebacks":      scaleLinear,
	"Memory.L2.Accesses":         scaleLinear,
	"Memory.L2.Misses":           scaleLinear,
	"Memory.L2.AdvanceAccesses":  scaleLinear,
	"Memory.L2.AdvanceMisses":    scaleLinear,
	"Memory.L2.Writebacks":       scaleLinear,
	"Memory.L3.Accesses":         scaleLinear,
	"Memory.L3.Misses":           scaleLinear,
	"Memory.L3.AdvanceAccesses":  scaleLinear,
	"Memory.L3.AdvanceMisses":    scaleLinear,
	"Memory.L3.Writebacks":       scaleLinear,
	"Memory.MSHRStalls":          scaleLinear,

	"Multipass.AdvanceEntries":   scaleLinear,
	"Multipass.AdvancePasses":    scaleLinear,
	"Multipass.Restarts":         scaleLinear,
	"Multipass.HWRestarts":       scaleLinear,
	"Multipass.AdvanceExecuted":  scaleLinear,
	"Multipass.AdvanceDeferred":  scaleLinear,
	"Multipass.Merged":           scaleLinear,
	"Multipass.Reexecuted":       scaleLinear,
	"Multipass.SpecLoads":        scaleLinear,
	"Multipass.SpecFlushes":      scaleLinear,
	"Multipass.AdvanceCycles":    scaleLinear,
	"Multipass.RallyCycles":      scaleLinear,
	"Multipass.ArchCycles":       scaleLinear,
	"Multipass.EarlyResolved":    scaleLinear,
	"Multipass.ASCHits":          scaleLinear,
	"Multipass.ASCReplacements":  scaleLinear,
	"Multipass.DeferredStores":   scaleLinear,
	"Multipass.IQFullCycles":     scaleLinear,
	"Multipass.RestartInstsSeen": scaleLinear,

	"Runahead.Episodes":    scaleLinear,
	"Runahead.PreExecuted": scaleLinear,
	"Runahead.Deferred":    scaleLinear,
	"Runahead.Cycles":      scaleLinear,

	"OOO.Flushes":      scaleLinear,
	"OOO.Squashed":     scaleLinear,
	"OOO.WindowFullCy": scaleLinear,
	"OOO.ROBFullCy":    scaleLinear,

	"CGOOO.Blocks":         scaleLinear,
	"CGOOO.BlockSquashes":  scaleLinear,
	"CGOOO.SquashedBlocks": scaleLinear,
	"CGOOO.SquashedInsts":  scaleLinear,
	"CGOOO.WindowFullCy":   scaleLinear,
	"CGOOO.WindowOccCy":    scaleLinear,
	"CGOOO.PeakLiveBlocks": scaleKeep,
	"CGOOO.MaxBlockLen":    scaleKeep,
}

// statsFieldPaths enumerates the dot-joined paths of every numeric leaf field
// reachable from t (a struct type). A fixed-size numeric array such as Cat is
// a single leaf: its elements necessarily share one scaling decision.
func statsFieldPaths(t reflect.Type, prefix string) []string {
	var paths []string
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		path := f.Name
		if prefix != "" {
			path = prefix + "." + f.Name
		}
		switch f.Type.Kind() {
		case reflect.Struct:
			paths = append(paths, statsFieldPaths(f.Type, path)...)
		default:
			paths = append(paths, path)
		}
	}
	return paths
}

// ScaleTo extrapolates the stats to describe a stream of n retired
// instructions instead of the s.Retired actually measured. Used by sparse
// interval sampling, where only every Period-th interval is simulated in
// detail. Each field follows its declared scaleRules entry: extensive
// counters scale by n/Retired (rounded to nearest), gauges keep their
// measured value, then Retired is set to n exactly and Cycles is recomputed
// as the sum of the scaled stall categories so CheckConsistency still holds.
func (s *Stats) ScaleTo(n uint64) {
	if s.Retired == 0 || s.Retired == n {
		s.Retired = n
		return
	}
	r := float64(n) / float64(s.Retired)
	scaleStruct(reflect.ValueOf(s).Elem(), "", r)
	s.Retired = n
	s.Cycles = 0
	for _, c := range s.Cat {
		s.Cycles += c
	}
}

func scaleStruct(v reflect.Value, prefix string, r float64) {
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		path := f.Name
		if prefix != "" {
			path = prefix + "." + f.Name
		}
		fv := v.Field(i)
		if f.Type.Kind() == reflect.Struct {
			scaleStruct(fv, path, r)
			continue
		}
		rule, ok := scaleRules[path]
		if !ok {
			// A wiring bug, like a duplicate registry name: the exhaustive
			// test catches it before any sparse run can.
			panic(fmt.Sprintf("sim: Stats field %s has no declared ScaleTo rule", path))
		}
		if rule != scaleLinear {
			continue
		}
		switch f.Type.Kind() {
		case reflect.Uint64:
			fv.SetUint(uint64(float64(fv.Uint())*r + 0.5))
		case reflect.Array:
			for j := 0; j < fv.Len(); j++ {
				e := fv.Index(j)
				e.SetUint(uint64(float64(e.Uint())*r + 0.5))
			}
		default:
			panic(fmt.Sprintf("sim: Stats field %s has unsupported kind %s", path, f.Type.Kind()))
		}
	}
}

// TotalStalls returns the cycles not attributed to execution.
func (s *Stats) TotalStalls() uint64 {
	return s.Cat[StallFrontEnd] + s.Cat[StallOther] + s.Cat[StallLoad]
}

// IPC returns retired instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Retired) / float64(s.Cycles)
}

// Speedup returns base cycles divided by s cycles: how much faster s is than
// base.
func (s *Stats) Speedup(base *Stats) float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(base.Cycles) / float64(s.Cycles)
}

// CheckConsistency verifies internal invariants (cycle attribution sums to
// the cycle count).
func (s *Stats) CheckConsistency() error {
	var sum uint64
	for _, c := range s.Cat {
		sum += c
	}
	if sum != s.Cycles {
		return fmt.Errorf("sim: stall categories sum to %d, cycles = %d", sum, s.Cycles)
	}
	return nil
}
