package sim

import (
	"fmt"

	"multipass/internal/bpred"
	"multipass/internal/mem"
)

// StallKind is the Figure 6 cycle attribution category.
type StallKind int

const (
	// StallExecution: at least one instruction issued this cycle.
	StallExecution StallKind = iota
	// StallFrontEnd: the issue stage starved (branch flush, I-cache miss,
	// empty buffer).
	StallFrontEnd
	// StallOther: waiting on a multi-cycle non-load result or a resource
	// conflict.
	StallOther
	// StallLoad: waiting on consumption of an unready load result.
	StallLoad
	numStallKinds
)

// NumStallKinds is the number of attribution categories.
const NumStallKinds = int(numStallKinds)

func (k StallKind) String() string {
	switch k {
	case StallExecution:
		return "execution"
	case StallFrontEnd:
		return "front-end"
	case StallOther:
		return "other"
	case StallLoad:
		return "load"
	}
	return fmt.Sprintf("StallKind(%d)", int(k))
}

// Stats is the outcome of one timing run.
type Stats struct {
	Cycles  uint64
	Retired uint64
	// Cat attributes every cycle to one category; the entries sum to Cycles.
	Cat [NumStallKinds]uint64

	Branch bpred.Stats
	Memory mem.HierStats

	// Model-specific counters; zero where not applicable.
	Multipass MultipassStats
	Runahead  RunaheadStats
	OOO       OOOStats
}

// MultipassStats counts multipass-specific activity (paper §3).
type MultipassStats struct {
	AdvanceEntries   uint64 `json:"advance_entries"`    // architectural->advance transitions
	AdvancePasses    uint64 `json:"advance_passes"`     // total passes (>= entries; restarts add passes)
	Restarts         uint64 `json:"restarts"`           // advance restarts triggered by RESTART
	HWRestarts       uint64 `json:"hw_restarts"`        // advance restarts triggered by the hardware heuristic
	AdvanceExecuted  uint64 `json:"advance_executed"`   // instructions executed in advance mode
	AdvanceDeferred  uint64 `json:"advance_deferred"`   // instructions suppressed in advance mode
	Merged           uint64 `json:"merged"`             // result-store merges in rally/architectural mode
	Reexecuted       uint64 `json:"reexecuted"`         // E-bit results recomputed due to flush
	SpecLoads        uint64 `json:"spec_loads"`         // data-speculative loads (S-bit)
	SpecFlushes      uint64 `json:"spec_flushes"`       // value-mismatch pipeline flushes (§3.6)
	AdvanceCycles    uint64 `json:"advance_cycles"`     // cycles spent in advance mode
	RallyCycles      uint64 `json:"rally_cycles"`       // cycles spent in rally mode
	ArchCycles       uint64 `json:"arch_cycles"`        // cycles spent in architectural mode
	EarlyResolved    uint64 `json:"early_resolved"`     // branches resolved during advance execution
	ASCHits          uint64 `json:"asc_hits"`           // advance loads forwarded from the ASC
	ASCReplacements  uint64 `json:"asc_replacements"`   // ASC evictions making later loads speculative
	DeferredStores   uint64 `json:"deferred_stores"`    // advance stores deferred on unknown address
	IQFullCycles     uint64 `json:"iq_full_cycles"`     // advance stalled on instruction queue limit
	RestartInstsSeen uint64 `json:"restart_insts_seen"` // RESTART instructions processed in advance mode
}

// RunaheadStats counts Dundas-Mudge runahead activity.
type RunaheadStats struct {
	Episodes    uint64 `json:"episodes"`     // runahead entries
	PreExecuted uint64 `json:"pre_executed"` // instructions pre-executed during runahead
	Deferred    uint64 `json:"deferred"`     // instructions suppressed during runahead
	Cycles      uint64 `json:"cycles"`       // cycles spent in runahead mode
}

// OOOStats counts out-of-order model activity.
type OOOStats struct {
	Flushes      uint64 `json:"flushes"`        // branch misprediction flushes
	Squashed     uint64 `json:"squashed"`       // in-flight instructions squashed by flushes
	WindowFullCy uint64 `json:"window_full_cy"` // cycles rename stalled on a full window
	ROBFullCy    uint64 `json:"rob_full_cy"`    // cycles rename stalled on a full ROB
}

// TotalStalls returns the cycles not attributed to execution.
func (s *Stats) TotalStalls() uint64 {
	return s.Cat[StallFrontEnd] + s.Cat[StallOther] + s.Cat[StallLoad]
}

// IPC returns retired instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Retired) / float64(s.Cycles)
}

// Speedup returns base cycles divided by s cycles: how much faster s is than
// base.
func (s *Stats) Speedup(base *Stats) float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(base.Cycles) / float64(s.Cycles)
}

// CheckConsistency verifies internal invariants (cycle attribution sums to
// the cycle count).
func (s *Stats) CheckConsistency() error {
	var sum uint64
	for _, c := range s.Cat {
		sum += c
	}
	if sum != s.Cycles {
		return fmt.Errorf("sim: stall categories sum to %d, cycles = %d", sum, s.Cycles)
	}
	return nil
}
