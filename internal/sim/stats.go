package sim

import (
	"fmt"

	"multipass/internal/bpred"
	"multipass/internal/mem"
)

// StallKind is the Figure 6 cycle attribution category.
type StallKind int

const (
	// StallExecution: at least one instruction issued this cycle.
	StallExecution StallKind = iota
	// StallFrontEnd: the issue stage starved (branch flush, I-cache miss,
	// empty buffer).
	StallFrontEnd
	// StallOther: waiting on a multi-cycle non-load result or a resource
	// conflict.
	StallOther
	// StallLoad: waiting on consumption of an unready load result.
	StallLoad
	numStallKinds
)

// NumStallKinds is the number of attribution categories.
const NumStallKinds = int(numStallKinds)

func (k StallKind) String() string {
	switch k {
	case StallExecution:
		return "execution"
	case StallFrontEnd:
		return "front-end"
	case StallOther:
		return "other"
	case StallLoad:
		return "load"
	}
	return fmt.Sprintf("StallKind(%d)", int(k))
}

// Stats is the outcome of one timing run.
type Stats struct {
	Cycles  uint64
	Retired uint64
	// Cat attributes every cycle to one category; the entries sum to Cycles.
	Cat [NumStallKinds]uint64

	Branch bpred.Stats
	Memory mem.HierStats

	// Model-specific counters; zero where not applicable.
	Multipass MultipassStats
	Runahead  RunaheadStats
	OOO       OOOStats
}

// MultipassStats counts multipass-specific activity (paper §3).
type MultipassStats struct {
	AdvanceEntries   uint64 `json:"advance_entries"`    // architectural->advance transitions
	AdvancePasses    uint64 `json:"advance_passes"`     // total passes (>= entries; restarts add passes)
	Restarts         uint64 `json:"restarts"`           // advance restarts triggered by RESTART
	HWRestarts       uint64 `json:"hw_restarts"`        // advance restarts triggered by the hardware heuristic
	AdvanceExecuted  uint64 `json:"advance_executed"`   // instructions executed in advance mode
	AdvanceDeferred  uint64 `json:"advance_deferred"`   // instructions suppressed in advance mode
	Merged           uint64 `json:"merged"`             // result-store merges in rally/architectural mode
	Reexecuted       uint64 `json:"reexecuted"`         // E-bit results recomputed due to flush
	SpecLoads        uint64 `json:"spec_loads"`         // data-speculative loads (S-bit)
	SpecFlushes      uint64 `json:"spec_flushes"`       // value-mismatch pipeline flushes (§3.6)
	AdvanceCycles    uint64 `json:"advance_cycles"`     // cycles spent in advance mode
	RallyCycles      uint64 `json:"rally_cycles"`       // cycles spent in rally mode
	ArchCycles       uint64 `json:"arch_cycles"`        // cycles spent in architectural mode
	EarlyResolved    uint64 `json:"early_resolved"`     // branches resolved during advance execution
	ASCHits          uint64 `json:"asc_hits"`           // advance loads forwarded from the ASC
	ASCReplacements  uint64 `json:"asc_replacements"`   // ASC evictions making later loads speculative
	DeferredStores   uint64 `json:"deferred_stores"`    // advance stores deferred on unknown address
	IQFullCycles     uint64 `json:"iq_full_cycles"`     // advance stalled on instruction queue limit
	RestartInstsSeen uint64 `json:"restart_insts_seen"` // RESTART instructions processed in advance mode
}

// RunaheadStats counts Dundas-Mudge runahead activity.
type RunaheadStats struct {
	Episodes    uint64 `json:"episodes"`     // runahead entries
	PreExecuted uint64 `json:"pre_executed"` // instructions pre-executed during runahead
	Deferred    uint64 `json:"deferred"`     // instructions suppressed during runahead
	Cycles      uint64 `json:"cycles"`       // cycles spent in runahead mode
}

// OOOStats counts out-of-order model activity.
type OOOStats struct {
	Flushes      uint64 `json:"flushes"`        // branch misprediction flushes
	Squashed     uint64 `json:"squashed"`       // in-flight instructions squashed by flushes
	WindowFullCy uint64 `json:"window_full_cy"` // cycles rename stalled on a full window
	ROBFullCy    uint64 `json:"rob_full_cy"`    // cycles rename stalled on a full ROB
}

// Add accumulates o into s fieldwise; Sub removes it. Every counter in Stats
// is a pure uint64 count, so both operations are exact; they exist for
// interval sampling, where per-interval stats are stitched by addition and
// warm-up baselines removed by subtraction. Because the stall categories and
// Cycles are always incremented together, both operations preserve the
// CheckConsistency invariant.
func (s *Stats) Add(o *Stats) {
	s.Cycles += o.Cycles
	s.Retired += o.Retired
	for i := range s.Cat {
		s.Cat[i] += o.Cat[i]
	}
	s.Branch.Add(o.Branch)
	s.Memory.Add(o.Memory)
	s.Multipass.add(&o.Multipass)
	s.Runahead.add(&o.Runahead)
	s.OOO.add(&o.OOO)
}

// Sub removes o from s fieldwise.
func (s *Stats) Sub(o *Stats) {
	s.Cycles -= o.Cycles
	s.Retired -= o.Retired
	for i := range s.Cat {
		s.Cat[i] -= o.Cat[i]
	}
	s.Branch.Sub(o.Branch)
	s.Memory.Sub(o.Memory)
	s.Multipass.sub(&o.Multipass)
	s.Runahead.sub(&o.Runahead)
	s.OOO.sub(&o.OOO)
}

func (s *MultipassStats) add(o *MultipassStats) {
	s.AdvanceEntries += o.AdvanceEntries
	s.AdvancePasses += o.AdvancePasses
	s.Restarts += o.Restarts
	s.HWRestarts += o.HWRestarts
	s.AdvanceExecuted += o.AdvanceExecuted
	s.AdvanceDeferred += o.AdvanceDeferred
	s.Merged += o.Merged
	s.Reexecuted += o.Reexecuted
	s.SpecLoads += o.SpecLoads
	s.SpecFlushes += o.SpecFlushes
	s.AdvanceCycles += o.AdvanceCycles
	s.RallyCycles += o.RallyCycles
	s.ArchCycles += o.ArchCycles
	s.EarlyResolved += o.EarlyResolved
	s.ASCHits += o.ASCHits
	s.ASCReplacements += o.ASCReplacements
	s.DeferredStores += o.DeferredStores
	s.IQFullCycles += o.IQFullCycles
	s.RestartInstsSeen += o.RestartInstsSeen
}

func (s *MultipassStats) sub(o *MultipassStats) {
	s.AdvanceEntries -= o.AdvanceEntries
	s.AdvancePasses -= o.AdvancePasses
	s.Restarts -= o.Restarts
	s.HWRestarts -= o.HWRestarts
	s.AdvanceExecuted -= o.AdvanceExecuted
	s.AdvanceDeferred -= o.AdvanceDeferred
	s.Merged -= o.Merged
	s.Reexecuted -= o.Reexecuted
	s.SpecLoads -= o.SpecLoads
	s.SpecFlushes -= o.SpecFlushes
	s.AdvanceCycles -= o.AdvanceCycles
	s.RallyCycles -= o.RallyCycles
	s.ArchCycles -= o.ArchCycles
	s.EarlyResolved -= o.EarlyResolved
	s.ASCHits -= o.ASCHits
	s.ASCReplacements -= o.ASCReplacements
	s.DeferredStores -= o.DeferredStores
	s.IQFullCycles -= o.IQFullCycles
	s.RestartInstsSeen -= o.RestartInstsSeen
}

func (s *RunaheadStats) add(o *RunaheadStats) {
	s.Episodes += o.Episodes
	s.PreExecuted += o.PreExecuted
	s.Deferred += o.Deferred
	s.Cycles += o.Cycles
}

func (s *RunaheadStats) sub(o *RunaheadStats) {
	s.Episodes -= o.Episodes
	s.PreExecuted -= o.PreExecuted
	s.Deferred -= o.Deferred
	s.Cycles -= o.Cycles
}

func (s *OOOStats) add(o *OOOStats) {
	s.Flushes += o.Flushes
	s.Squashed += o.Squashed
	s.WindowFullCy += o.WindowFullCy
	s.ROBFullCy += o.ROBFullCy
}

func (s *OOOStats) sub(o *OOOStats) {
	s.Flushes -= o.Flushes
	s.Squashed -= o.Squashed
	s.WindowFullCy -= o.WindowFullCy
	s.ROBFullCy -= o.ROBFullCy
}

// ScaleTo linearly extrapolates every counter so the stats describe a stream
// of n retired instructions instead of the s.Retired actually measured. Used
// by sparse interval sampling, where only every Period-th interval is
// simulated in detail: counts scale by n/Retired (rounded to nearest), then
// Retired is set to n exactly and Cycles is recomputed as the sum of the
// scaled stall categories so CheckConsistency still holds.
func (s *Stats) ScaleTo(n uint64) {
	if s.Retired == 0 || s.Retired == n {
		s.Retired = n
		return
	}
	r := float64(n) / float64(s.Retired)
	sc := func(v *uint64) { *v = uint64(float64(*v)*r + 0.5) }
	for i := range s.Cat {
		sc(&s.Cat[i])
	}
	sc(&s.Branch.Lookups)
	sc(&s.Branch.Mispredicts)
	for _, c := range []*mem.CacheStats{&s.Memory.L1I, &s.Memory.L1D, &s.Memory.L2, &s.Memory.L3} {
		sc(&c.Accesses)
		sc(&c.Misses)
		sc(&c.AdvanceAccesses)
		sc(&c.AdvanceMisses)
		sc(&c.Writebacks)
	}
	sc(&s.Memory.MSHRStalls)
	mp := &s.Multipass
	for _, v := range []*uint64{
		&mp.AdvanceEntries, &mp.AdvancePasses, &mp.Restarts, &mp.HWRestarts,
		&mp.AdvanceExecuted, &mp.AdvanceDeferred, &mp.Merged, &mp.Reexecuted,
		&mp.SpecLoads, &mp.SpecFlushes, &mp.AdvanceCycles, &mp.RallyCycles,
		&mp.ArchCycles, &mp.EarlyResolved, &mp.ASCHits, &mp.ASCReplacements,
		&mp.DeferredStores, &mp.IQFullCycles, &mp.RestartInstsSeen,
	} {
		sc(v)
	}
	sc(&s.Runahead.Episodes)
	sc(&s.Runahead.PreExecuted)
	sc(&s.Runahead.Deferred)
	sc(&s.Runahead.Cycles)
	sc(&s.OOO.Flushes)
	sc(&s.OOO.Squashed)
	sc(&s.OOO.WindowFullCy)
	sc(&s.OOO.ROBFullCy)
	s.Retired = n
	s.Cycles = 0
	for _, c := range s.Cat {
		s.Cycles += c
	}
}

// TotalStalls returns the cycles not attributed to execution.
func (s *Stats) TotalStalls() uint64 {
	return s.Cat[StallFrontEnd] + s.Cat[StallOther] + s.Cat[StallLoad]
}

// IPC returns retired instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Retired) / float64(s.Cycles)
}

// Speedup returns base cycles divided by s cycles: how much faster s is than
// base.
func (s *Stats) Speedup(base *Stats) float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(base.Cycles) / float64(s.Cycles)
}

// CheckConsistency verifies internal invariants (cycle attribution sums to
// the cycle count).
func (s *Stats) CheckConsistency() error {
	var sum uint64
	for _, c := range s.Cat {
		sum += c
	}
	if sum != s.Cycles {
		return fmt.Errorf("sim: stall categories sum to %d, cycles = %d", sum, s.Cycles)
	}
	return nil
}
