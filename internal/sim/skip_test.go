package sim

import (
	"testing"

	"multipass/internal/mem"
)

func TestSkipNoteKeepsEarliestDeadline(t *testing.T) {
	var s SkipState
	s.Begin()
	if d := s.Jump(nil, 10); d != 0 {
		t.Errorf("jump with no noted deadline = %d, want 0", d)
	}
	s.Note(500)
	s.Note(0) // zero means "no deadline" and must be ignored
	s.Note(300)
	s.Note(400)
	if d := s.Jump(nil, 10); d != 290 {
		t.Errorf("jump = %d, want 290 (earliest deadline 300 wins)", d)
	}
	s.Begin()
	if d := s.Jump(nil, 10); d != 0 {
		t.Errorf("jump after Begin = %d, want 0 (deadlines reset)", d)
	}
}

func TestSkipJumpRefusals(t *testing.T) {
	var s SkipState

	// Deadline at or before now: nothing to skip.
	s.Begin()
	s.Note(100)
	if d := s.Jump(nil, 100); d != 0 {
		t.Errorf("deadline == now: jump = %d, want 0", d)
	}
	if d := s.Jump(nil, 150); d != 0 {
		t.Errorf("deadline < now: jump = %d, want 0", d)
	}

	// A dirty cycle never skips, however far away the deadline is.
	s.Begin()
	s.Note(1 << 40)
	s.MarkDirty()
	if !s.Dirty() {
		t.Fatal("MarkDirty did not stick")
	}
	if d := s.Jump(nil, 10); d != 0 {
		t.Errorf("dirty cycle: jump = %d, want 0", d)
	}
}

// TestSkipJumpPollBoundary: a jump never crosses a context-poll boundary, so
// PollContext fires on exactly the cycles it would have without skipping.
func TestSkipJumpPollBoundary(t *testing.T) {
	const poll = uint64(ctxPollMask) + 1 // 1024
	var s SkipState

	s.Begin()
	s.Note(5000)
	if d := s.Jump(nil, 100); d != 924 {
		t.Errorf("jump from 100 toward 5000 = %d, want 924 (land on %d)", d, poll)
	}

	// From a poll cycle itself the clamp is the *next* boundary.
	s.Begin()
	s.Note(5000)
	if d := s.Jump(nil, poll); d != poll {
		t.Errorf("jump from %d toward 5000 = %d, want %d (land on %d)", poll, d, poll, 2*poll)
	}

	// Sweep: for any now, the skipped range (now, now+d) contains no poll
	// cycle — the landing cycle is the only place a poll may become due.
	for _, now := range []uint64{1, 1023, 1024, 1025, 4096, 123_456, 1<<32 + 7} {
		s.Begin()
		s.Note(now + 10*poll)
		d := s.Jump(nil, now)
		if d == 0 {
			t.Errorf("now=%d: jump = 0, want > 0", now)
			continue
		}
		for c := now + 1; c < now+d; c++ {
			if c&uint64(ctxPollMask) == 0 {
				t.Errorf("now=%d d=%d: skipped over poll cycle %d", now, d, c)
				break
			}
		}
	}
}

// TestSkipJumpMinimal: a fill completing at now+1 yields the minimal jump of
// one cycle — the degenerate "skip of zero stalled cycles beyond the next".
func TestSkipJumpMinimal(t *testing.T) {
	var s SkipState
	s.Begin()
	s.Note(43)
	if d := s.Jump(nil, 42); d != 1 {
		t.Errorf("deadline at now+1: jump = %d, want 1", d)
	}
}

// TestSkipJumpLargeCycles: arithmetic near the top of the uint64 cycle space
// must not wrap. When the poll-boundary clamp itself would overflow, Jump
// gives up rather than computing a wrapped target.
func TestSkipJumpLargeCycles(t *testing.T) {
	max := ^uint64(0)
	var s SkipState

	// now | ctxPollMask == MaxUint64: boundary+1 would wrap.
	s.Begin()
	s.Note(max)
	if d := s.Jump(nil, max-5); d != 0 {
		t.Errorf("near-overflow jump = %d, want 0", d)
	}

	// Just below the last poll window: jumps still work and stay in range.
	now := max - 5000
	s.Begin()
	s.Note(max - 10)
	d := s.Jump(nil, now)
	if d == 0 {
		t.Fatal("jump below the last poll window = 0, want > 0")
	}
	if now+d < now || now+d > max-10 {
		t.Errorf("jump target %d out of range (now %d, deadline %d)", now+d, now, max-10)
	}
}

// TestSkipJumpNextEventClamp: a jump never crosses the hierarchy's next fill
// completion, even when the noted deadline lies beyond it.
func TestSkipJumpNextEventClamp(t *testing.T) {
	h := mem.MustNewHierarchy(mem.BaseConfig())
	ready := h.AccessData(0x4000, 0, false, false) // cold miss; fill in flight
	if ready <= 1 {
		t.Fatalf("cold miss ready at %d, want a real memory latency", ready)
	}

	var s SkipState
	s.Begin()
	s.Note(5000)
	if d := s.Jump(h, 10); d != ready-10 {
		t.Errorf("jump = %d, want %d (clamped to fill completion %d)", d, ready-10, ready)
	}

	// A fill already completed is not an event; the deadline (then the poll
	// clamp) governs again.
	s.Begin()
	s.Note(ready + 100)
	if d := s.Jump(h, ready); d != 100 {
		t.Errorf("jump after fill completion = %d, want 100", d)
	}
}
