// Package sim holds the simulation kernel shared by every timing model: the
// machine configuration (paper Table 2), the statistics structure with the
// four stall categories of Figure 6, the lazy oracle instruction stream that
// pipelines fetch from, and the front-end fetch unit.
//
// # Modeling approach
//
// The simulators are execution-driven at the architectural level and
// timing-driven at the microarchitectural level. A Stream interprets the
// program along its correct path, producing the dynamic instruction sequence
// with addresses and branch outcomes; pipelines consume this stream for
// fetch and apply their own issue, dependence, and memory timing. Branch
// prediction is modeled as oracle-path fetch plus a misprediction penalty
// charged when a branch executes with a wrong prediction (wrong-path
// instructions are not simulated; speculative pre-execution past an
// actually-mispredicted unresolvable branch is terminated, which slightly
// understates wrong-path cache pollution and prefetching alike).
//
// The multipass and runahead models additionally simulate their speculative
// values for real (speculative register file, advance store cache, result
// store), and the multipass and in-order models maintain their own
// architectural register file and memory, so the cross-model equivalence
// tests verify functional correctness of the speculation machinery rather
// than assuming it.
package sim

import (
	"multipass/internal/isa"
	"multipass/internal/mem"
)

// Config is the machine configuration shared by the timing models.
type Config struct {
	// Caps is the issue width and FU distribution.
	Caps isa.FUCaps
	// Hier is the cache hierarchy configuration.
	Hier mem.HierConfig
	// PredictorEntries sizes the gshare table (Table 2: 1024).
	PredictorEntries int
	// FetchWidth is instructions fetched per cycle into the buffer.
	FetchWidth int
	// BufferSize is the instruction buffer capacity in instructions. The
	// baseline in-order machine uses a small decoupling buffer; the
	// multipass instruction queue is 256 entries (Table 2).
	BufferSize int
	// MispredictPenalty is the front-end refill penalty in cycles charged
	// for a mispredicted branch.
	MispredictPenalty int
	// MaxInsts bounds the dynamic instruction count of a run.
	MaxInsts uint64
	// DisableSkip turns off idle-cycle fast-forwarding (event-driven stall
	// skipping), forcing the cycle loop to tick through every stalled cycle.
	// Skipping is a pure simulator-speed optimization — sim.Stats and the
	// final architectural state are byte-identical either way (enforced by
	// the golden stats, the paired bench tests, and xcheck's skip
	// differential) — so the switch exists as an escape hatch and for those
	// paired runs, not as a modeling knob.
	DisableSkip bool
}

// Default returns the Table 2 baseline configuration for in-order machines.
func Default() Config {
	return Config{
		Caps:              isa.DefaultFUCaps(),
		Hier:              mem.BaseConfig(),
		PredictorEntries:  1024,
		FetchWidth:        6,
		BufferSize:        24,
		MispredictPenalty: 8,
		MaxInsts:          100_000_000,
	}
}

// Validate checks the configuration for usability.
func (c *Config) Validate() error {
	if c.Caps.MaxIssue < 1 {
		return errConfig("MaxIssue < 1")
	}
	if c.FetchWidth < 1 {
		return errConfig("FetchWidth < 1")
	}
	if c.BufferSize < 1 {
		return errConfig("BufferSize < 1")
	}
	if c.MispredictPenalty < 0 {
		return errConfig("negative MispredictPenalty")
	}
	if c.MaxInsts == 0 {
		return errConfig("MaxInsts = 0")
	}
	if c.PredictorEntries <= 0 || c.PredictorEntries&(c.PredictorEntries-1) != 0 {
		return errConfig("PredictorEntries not a positive power of two")
	}
	return nil
}

type configError string

func errConfig(msg string) error { return configError(msg) }

func (e configError) Error() string { return "sim: invalid config: " + string(e) }
