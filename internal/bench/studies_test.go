package bench

import (
	"context"
	"strings"
	"testing"

	"multipass/internal/mem"
	"multipass/internal/workload"
)

func TestRestartStudyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run study")
	}
	r, err := RestartStudy(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	byName := map[string]RestartStudyRow{}
	for _, row := range r.Rows {
		byName[row.Benchmark] = row
	}
	mcf := byName["mcf"]
	if mcf.Compiler <= mcf.NoRestart {
		t.Errorf("mcf: compiler restart (%.2f) no better than none (%.2f)", mcf.Compiler, mcf.NoRestart)
	}
	if mcf.Hardware <= mcf.NoRestart {
		t.Errorf("mcf: hardware restart (%.2f) no better than none (%.2f)", mcf.Hardware, mcf.NoRestart)
	}
	if mcf.HWRestarts == 0 {
		t.Error("mcf: hardware heuristic never fired")
	}
	// art is restart-insensitive: all variants within a few percent.
	art := byName["art"]
	if art.Compiler > 1.1*art.NoRestart {
		t.Errorf("art: restart mattered (%.2f vs %.2f) on a streaming kernel", art.Compiler, art.NoRestart)
	}
	out := r.Render()
	if !strings.Contains(out, "hardware heuristic") {
		t.Error("render missing content")
	}
}

func TestSweepIQMonotoneOnStreaming(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep")
	}
	r, err := SweepIQ(context.Background(), 1, []int{24, 256})
	if err != nil {
		t.Fatal(err)
	}
	// For the streaming equake kernel a bigger IQ must help.
	var small, big uint64
	for _, pt := range r.Points {
		if pt.Benchmark == "equake" && pt.Size == 24 {
			small = pt.Cycles
		}
		if pt.Benchmark == "equake" && pt.Size == 256 {
			big = pt.Cycles
		}
	}
	if small == 0 || big == 0 {
		t.Fatal("missing sweep points")
	}
	if big >= small {
		t.Errorf("equake: IQ 256 (%d cycles) no faster than IQ 24 (%d)", big, small)
	}
	if !strings.Contains(r.Render(), "IQ size") {
		t.Error("render missing header")
	}
}

func TestSweepASCRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep")
	}
	r, err := SweepASC(context.Background(), 1, []int{8, 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 6 {
		t.Fatalf("points = %d", len(r.Points))
	}
	for _, pt := range r.Points {
		if pt.Cycles == 0 || pt.Speedup <= 0 {
			t.Errorf("degenerate point %+v", pt)
		}
	}
}

func TestFigure7Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("3-hierarchy sweep")
	}
	r, err := Figure7(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 36 {
		t.Fatalf("rows = %d, want 12 benchmarks x 3 hierarchies", len(r.Rows))
	}
	for _, h := range []string{"base", "config1", "config2"} {
		if r.MeanMP[h] <= 1.0 {
			t.Errorf("%s: mean MP speedup %.2f <= 1", h, r.MeanMP[h])
		}
		if r.MeanOOO[h] < r.MeanMP[h] {
			t.Errorf("%s: ideal OOO (%.2f) below MP (%.2f)", h, r.MeanOOO[h], r.MeanMP[h])
		}
	}
	// The paper's observation: the MP/OOO gap must not widen under the
	// more restrictive hierarchies.
	gapBase := r.MeanOOO["base"] / r.MeanMP["base"]
	gapC2 := r.MeanOOO["config2"] / r.MeanMP["config2"]
	if gapC2 > gapBase*1.1 {
		t.Errorf("MP/OOO gap widened: base %.2f -> config2 %.2f", gapBase, gapC2)
	}
	if !strings.Contains(r.Render(), "config2") {
		t.Error("render missing content")
	}
}

func TestExtrasShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-model sweep")
	}
	r, err := Extras(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PerBench) != 12 {
		t.Fatalf("rows = %d", len(r.PerBench))
	}
	// Multipass competes with the realistic OOO (paper: 1.05x).
	if r.MPOverRealOOO < 0.8 || r.MPOverRealOOO > 1.6 {
		t.Errorf("MP over realistic OOO = %.2f, out of plausible band", r.MPOverRealOOO)
	}
	// Runahead captures only part of multipass's savings on the
	// restart-dominated kernels.
	for _, row := range r.PerBench {
		if row.Benchmark == "mcf" && row.RAFraction > 0.8 {
			t.Errorf("mcf: runahead fraction %.2f, expected well below 1", row.RAFraction)
		}
	}
	if !strings.Contains(r.Render(), "runahead") {
		t.Error("render missing content")
	}
}

func TestChartsRender(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-model sweep")
	}
	f6, err := Figure6(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	c := f6.Chart()
	if !strings.Contains(c, "mcf") || !strings.Contains(c, "#") {
		t.Error("figure 6 chart missing content")
	}
	f8, err := Figure8(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f8.Chart(), "w/o restart") {
		t.Error("figure 8 chart missing content")
	}
	f7, err := Figure7(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f7.Chart(), "config2") {
		t.Error("figure 7 chart missing content")
	}
}

// TestDeterministicTiming: the simulators must be fully deterministic —
// two runs of the same workload on the same model produce identical cycle
// counts and stall breakdowns.
func TestDeterministicTiming(t *testing.T) {
	w, _ := workload.ByName("twolf")
	for _, name := range []ModelName{MInorder, MMultipass, MRunahead, MOOO} {
		a, err := Run(context.Background(), name, w, 1, mem.BaseConfig())
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(context.Background(), name, w, 1, mem.BaseConfig())
		if err != nil {
			t.Fatal(err)
		}
		if a.Stats.Cycles != b.Stats.Cycles || a.Stats.Cat != b.Stats.Cat {
			t.Errorf("%s: nondeterministic timing: %d vs %d cycles", name, a.Stats.Cycles, b.Stats.Cycles)
		}
	}
}
