package bench

import (
	"context"
	"fmt"
	"strings"
	"text/tabwriter"

	"multipass/internal/mem"
	"multipass/internal/power"
	"multipass/internal/sim"
	"multipass/internal/workload"
)

// FiveWayRow is one machine's aggregate performance and structure power over
// the full workload suite.
type FiveWayRow struct {
	Model ModelName
	// MeanSpeedup is the arithmetic-mean speedup over the in-order baseline
	// across the 12 kernels (1.0 for the baseline itself).
	MeanSpeedup float64
	// IPC is retired instructions per cycle, aggregated over the suite.
	IPC float64
	// PeakW and AvgW evaluate the machine's scheduling/bookkeeping
	// structures (power.ModelStructures) at peak and observed activity.
	PeakW float64
	AvgW  float64
	// EnergyPJPerInst is the average structure energy spent per retired
	// instruction, in picojoules.
	EnergyPJPerInst float64
	// RelEnergy is EnergyPJPerInst normalized to the ideal out-of-order
	// machine (ooo = 1.0).
	RelEnergy float64
}

// FiveWayResult is the Table-1-style comparison extended across the five
// latency-tolerant machines (multipass, runahead, ooo, ooo-realistic,
// cgooo), with the in-order baseline as the reference row.
type FiveWayResult struct {
	Rows []FiveWayRow
}

// fiveWayModels orders the comparison; inorder first as the baseline.
var fiveWayModels = []ModelName{MInorder, MMultipass, MRunahead, MOOO, MOOORealistc, MCGOoO}

// FiveWay runs the full suite on every machine and evaluates each machine's
// structure power against its own activity, producing the energy/performance
// comparison the CG-OoO design point exists for: how much of the unified
// machine's performance each alternative keeps, at what structure cost.
func FiveWay(ctx context.Context, scale int) (*FiveWayResult, error) {
	ws := workload.All()
	hiers := map[string]mem.HierConfig{"base": mem.BaseConfig()}
	res, err := runMatrix(ctx, ws, fiveWayModels, hiers, scale)
	if err != nil {
		return nil, err
	}

	out := &FiveWayResult{}
	var oooEnergy float64
	for _, model := range fiveWayModels {
		var agg sim.Stats
		var speeds []float64
		for _, w := range ws {
			r := res[key(w.Name, model, "base")]
			agg.Add(&r.Stats)
			speeds = append(speeds, speedup(res[key(w.Name, MInorder, "base")], r))
		}
		peak, avg := power.ModelPower(string(model), &agg)
		row := FiveWayRow{
			Model:       model,
			MeanSpeedup: mean(speeds),
			IPC:         agg.IPC(),
			PeakW:       peak,
			AvgW:        avg,
		}
		if agg.Retired > 0 {
			joules := avg * float64(agg.Cycles) / power.Freq
			row.EnergyPJPerInst = 1e12 * joules / float64(agg.Retired)
		}
		if model == MOOO {
			oooEnergy = row.EnergyPJPerInst
		}
		out.Rows = append(out.Rows, row)
	}
	for i := range out.Rows {
		if oooEnergy > 0 {
			out.Rows[i].RelEnergy = out.Rows[i].EnergyPJPerInst / oooEnergy
		}
	}
	return out, nil
}

// Render formats the comparison.
func (r *FiveWayResult) Render() string {
	var b strings.Builder
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "model\tspeedup\tIPC\tpeak W\tavg W\tpJ/inst\trel energy (ooo=1)")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%.2fx\t%.2f\t%.2f\t%.2f\t%.1f\t%.2f\n",
			row.Model, row.MeanSpeedup, row.IPC, row.PeakW, row.AvgW,
			row.EnergyPJPerInst, row.RelEnergy)
	}
	tw.Flush()
	b.WriteString("(structure power only: the scheduling/bookkeeping arrays each machine adds; datapath and caches excluded)\n")
	return b.String()
}
