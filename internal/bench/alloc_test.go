package bench

import (
	"context"
	"testing"

	"multipass/internal/mem"
	"multipass/internal/workload"
)

// Per-model allocation budgets for one mcf run at scale 1 over a shared
// pre-decoded trace. The budgets are per-RUN setup costs — machine
// construction, the model's own-memory image clone (one object per touched
// page), the cache hierarchy — with headroom; the cycle loops themselves must
// be allocation-free in steady state, which the allocs/cycle bound below
// enforces directly for the value-simulating models. Measured values at the
// time of writing: inorder 2151, runahead 2164, multipass 2163, ooo 42,
// ooo-realistic 40 allocs/run.
var allocBudgets = []struct {
	model  ModelName
	budget float64 // max allocations per run
}{
	{MInorder, 4000},
	{MRunahead, 4500},
	{MMultipass, 4500},
	{MOOO, 200},
	{MOOORealistc, 200},
	{MCGOoO, 200},
}

// maxAllocsPerCycle is the steady-state bound: a model that allocates on its
// cycle path would show orders of magnitude more than this (mcf at scale 1
// runs >1M cycles, so even one allocation per 100 cycles trips it).
const maxAllocsPerCycle = 0.01

// TestAllocationBudgets pins the per-run allocation count of every model and
// requires an effectively zero allocs/cycle rate, so an allocation slipped
// into a cycle loop fails loudly rather than silently costing throughput.
func TestAllocationBudgets(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-model simulation in -short mode")
	}
	w, ok := workload.ByName("mcf")
	if !ok {
		t.Fatal("mcf workload missing")
	}
	pr, err := Prepare(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Tr == nil {
		t.Fatal("mcf at scale 1 should pre-decode within the trace limit")
	}
	for _, tc := range allocBudgets {
		tc := tc
		t.Run(string(tc.model), func(t *testing.T) {
			var cycles uint64
			allocs := testing.AllocsPerRun(1, func() {
				res, err := pr.Run(context.Background(), tc.model, mem.BaseConfig())
				if err != nil {
					t.Fatal(err)
				}
				cycles = res.Stats.Cycles
			})
			if allocs > tc.budget {
				t.Errorf("%s: %.0f allocs/run, budget %.0f", tc.model, allocs, tc.budget)
			}
			if cycles == 0 {
				t.Fatal("no cycles simulated")
			}
			if perCycle := allocs / float64(cycles); perCycle > maxAllocsPerCycle {
				t.Errorf("%s: %.4f allocs/cycle over %d cycles, want < %.2f (steady-state zero)",
					tc.model, perCycle, cycles, maxAllocsPerCycle)
			}
		})
	}
}
