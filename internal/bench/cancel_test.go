package bench

import (
	"context"
	"errors"
	"testing"
	"time"

	"multipass/internal/compile"
	"multipass/internal/mem"
	"multipass/internal/sim"
	"multipass/internal/workload"
)

// TestRegistryListsEvaluationModels: every model the harness names must be
// registered, and the registry must not have lost the bogus-name error.
func TestRegistryListsEvaluationModels(t *testing.T) {
	want := []string{
		"inorder", "multipass", "multipass-noregroup", "multipass-norestart",
		"ooo", "ooo-realistic", "runahead",
	}
	have := map[string]bool{}
	for _, n := range sim.Names() {
		have[n] = true
	}
	for _, n := range want {
		if !have[n] {
			t.Errorf("model %q not registered (have %v)", n, sim.Names())
		}
	}
}

// TestCancellationAllModels: a pre-canceled context stops every registered
// model before it simulates anything, and the returned error reports the
// cancellation.
func TestCancellationAllModels(t *testing.T) {
	w, _ := workload.ByName("mcf")
	p, image, err := workload.Program(w, 1, compile.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range sim.Names() {
		m, err := sim.NewMachine(name, sim.ModelOptions{Hier: mem.BaseConfig()})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		start := time.Now()
		res, err := m.Run(ctx, p, image)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", name, err)
		}
		if res != nil {
			t.Errorf("%s: returned a result after cancellation", name)
		}
		if el := time.Since(start); el > 2*time.Second {
			t.Errorf("%s: took %v to notice a pre-canceled context", name, el)
		}
	}
}

// TestDeadlineMidRun: a deadline expiring mid-simulation aborts the run
// promptly (well within one progress window) with DeadlineExceeded.
func TestDeadlineMidRun(t *testing.T) {
	w, _ := workload.ByName("mcf")
	p, image, err := workload.Program(w, 8, compile.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"inorder", "multipass", "runahead", "ooo"} {
		m, err := sim.NewMachine(name, sim.ModelOptions{Hier: mem.BaseConfig()})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
		start := time.Now()
		_, err = m.Run(ctx, p, image)
		cancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("%s: err = %v, want context.DeadlineExceeded", name, err)
		}
		if el := time.Since(start); el > 5*time.Second {
			t.Errorf("%s: took %v to honor the deadline", name, el)
		}
	}
}

// TestMaxInstsOverride: the registry's ModelOptions.MaxInsts override
// truncates a run instead of using the model default.
func TestMaxInstsOverride(t *testing.T) {
	w, _ := workload.ByName("crafty")
	p, image, err := workload.Program(w, 1, compile.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.NewMachine("inorder", sim.ModelOptions{Hier: mem.BaseConfig(), MaxInsts: 100})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(context.Background(), p, image); err == nil {
		t.Error("run with a 100-instruction cap completed; expected a truncation error")
	}
}
