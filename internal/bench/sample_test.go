package bench

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"multipass/internal/mem"
	"multipass/internal/sim"
	"multipass/internal/workload"
)

// sampleTestInterval is deliberately small so every kernel splits into many
// intervals at test scale; the error bound below is calibrated for it (short
// intervals maximize the relative weight of boundary drain and warm-up
// imperfection, so production runs with larger intervals do better — see
// EXPERIMENTS.md for the measured curve).
const (
	sampleTestInterval = 20000
	sampleTestScale    = 2
	// sampleMaxCycleError bounds |stitched - monolithic| / monolithic total
	// cycles for the test configuration above.
	sampleMaxCycleError = 0.10
)

var sampleModels = []ModelName{MInorder, MRunahead, MMultipass, MOOO, MOOORealistc, MCGOoO}

// TestSampledEquivalence is the sampling contract, pinned per model: stitched
// interval simulation reproduces the monolithic run's retired count and final
// architectural state exactly, and its total cycles within the documented
// bound. Run with -race this also exercises the concurrent interval workers.
func TestSampledEquivalence(t *testing.T) {
	for _, kernel := range []string{"mcf", "art"} {
		pr := mustPrepare(t, kernel, sampleTestScale)
		for _, model := range sampleModels {
			model := model
			t.Run(kernel+"/"+string(model), func(t *testing.T) {
				t.Parallel()
				ctx := context.Background()
				opts := sim.ModelOptions{Hier: mem.BaseConfig()}
				mono, err := pr.RunOpts(ctx, model, opts)
				if err != nil {
					t.Fatal(err)
				}
				scfg := sim.SampleConfig{Interval: sampleTestInterval}
				sampled, err := pr.RunSampled(ctx, model, opts, scfg)
				if err != nil {
					t.Fatal(err)
				}

				if sampled.Stats.Retired != mono.Stats.Retired {
					t.Errorf("retired %d sampled vs %d monolithic", sampled.Stats.Retired, mono.Stats.Retired)
				}
				if !sampled.Snapshot().Equal(mono.Snapshot()) {
					t.Errorf("final architectural state diverged:\n  %s",
						strings.Join(sampled.Snapshot().Diff(mono.Snapshot(), 8), "\n  "))
				}
				errFrac := math.Abs(float64(sampled.Stats.Cycles)-float64(mono.Stats.Cycles)) / float64(mono.Stats.Cycles)
				if errFrac > sampleMaxCycleError {
					t.Errorf("cycle error %.2f%% (sampled %d vs monolithic %d) exceeds %.0f%%",
						100*errFrac, sampled.Stats.Cycles, mono.Stats.Cycles, 100*sampleMaxCycleError)
				}
				if err := sampled.Stats.CheckConsistency(); err != nil {
					t.Errorf("stitched stats inconsistent: %v", err)
				}
			})
		}
	}
}

// TestSampledSparseEquivalence pins the sparse (period > 1) contract: the
// exact properties survive — retired count and final architectural state come
// from the functional pass — while cycles become an extrapolation whose error
// at this deliberately tiny configuration (7 measured units) is only coarsely
// bounded. Production operating points use many more units; EXPERIMENTS.md
// records the measured errors.
func TestSampledSparseEquivalence(t *testing.T) {
	pr := mustPrepare(t, "mcf", sampleTestScale)
	for _, model := range sampleModels {
		model := model
		t.Run(string(model), func(t *testing.T) {
			t.Parallel()
			ctx := context.Background()
			opts := sim.ModelOptions{Hier: mem.BaseConfig()}
			mono, err := pr.RunOpts(ctx, model, opts)
			if err != nil {
				t.Fatal(err)
			}
			scfg := sim.SampleConfig{Interval: sampleTestInterval, Period: 4}
			sampled, err := pr.RunSampled(ctx, model, opts, scfg)
			if err != nil {
				t.Fatal(err)
			}
			if sampled.Stats.Retired != mono.Stats.Retired {
				t.Errorf("retired %d sparse vs %d monolithic", sampled.Stats.Retired, mono.Stats.Retired)
			}
			if !sampled.Snapshot().Equal(mono.Snapshot()) {
				t.Errorf("final architectural state diverged:\n  %s",
					strings.Join(sampled.Snapshot().Diff(mono.Snapshot(), 8), "\n  "))
			}
			errFrac := math.Abs(float64(sampled.Stats.Cycles)-float64(mono.Stats.Cycles)) / float64(mono.Stats.Cycles)
			if errFrac > 0.20 {
				t.Errorf("sparse cycle error %.2f%% (sampled %d vs monolithic %d) exceeds 20%%",
					100*errFrac, sampled.Stats.Cycles, mono.Stats.Cycles)
			}
			if err := sampled.Stats.CheckConsistency(); err != nil {
				t.Errorf("extrapolated stats inconsistent: %v", err)
			}
		})
	}
}

func mustPrepare(t *testing.T, kernel string, scale int) *Prepared {
	t.Helper()
	w, ok := workload.ByName(kernel)
	if !ok {
		t.Fatalf("unknown kernel %q", kernel)
	}
	pr, err := Prepare(w, scale)
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

// TestCheckpointRoundTrip pins the checkpoint capture/restore cycle directly:
// the final checkpoint's interval, resimulated in isolation, must land on the
// same architectural state as the monolithic run — byte-identical registers
// (values and NaT bits), memory, and retired count.
func TestCheckpointRoundTrip(t *testing.T) {
	pr := mustPrepare(t, "mcf", 1)
	ctx := context.Background()
	m, err := NewMachineOpts(MInorder, sim.ModelOptions{Hier: mem.BaseConfig()})
	if err != nil {
		t.Fatal(err)
	}
	ir, ok := m.(sim.IntervalRunner)
	if !ok {
		t.Fatal("inorder does not implement sim.IntervalRunner")
	}
	set, err := sim.BuildCheckpoints(ctx, pr.P, pr.Image, sim.SampleConfig{Interval: 10000, Warmup: 2500}, ir.CheckpointSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Checkpoints) < 2 {
		t.Fatalf("mcf split into %d intervals, want >= 2", len(set.Checkpoints))
	}

	mono, err := pr.Run(ctx, MInorder, mem.BaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	last := set.Checkpoints[len(set.Checkpoints)-1]
	res, err := ir.RunInterval(ctx, pr.P, pr.Image, last)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Snapshot()
	want := mono.Snapshot()
	// The interval's own Retired counts only measured instructions; the
	// architectural identity check is registers and memory.
	if !got.RF.Equal(want.RF) || !got.Mem.Equal(want.Mem) {
		got.Retired = want.Retired
		t.Fatalf("resimulated final interval diverged from monolithic:\n  %s",
			strings.Join(got.Diff(want, 8), "\n  "))
	}
	if res.Stats.Retired != set.N-last.Measure {
		t.Fatalf("final interval retired %d, want %d (N %d - measure %d)",
			res.Stats.Retired, set.N-last.Measure, set.N, last.Measure)
	}

	// Interval accounting: measured windows tile [0, N) exactly.
	var total uint64
	for i, ck := range set.Checkpoints {
		start, measure, end := ck.Bounds()
		if start > measure || measure >= end {
			t.Fatalf("checkpoint %d has degenerate bounds (%d, %d, %d)", i, start, measure, end)
		}
		total += end - measure
	}
	if total != set.N {
		t.Fatalf("measured windows cover %d instructions, stream has %d", total, set.N)
	}
}

// TestRunSampledValidation pins the error paths: a zero interval is a
// configuration error, not a fallback to monolithic.
func TestRunSampledValidation(t *testing.T) {
	pr := mustPrepare(t, "gzip", 1)
	_, err := pr.RunSampled(context.Background(), MInorder, sim.ModelOptions{Hier: mem.BaseConfig()}, sim.SampleConfig{})
	if err == nil {
		t.Fatal("RunSampled accepted a zero interval")
	}
}

// TestBuildCheckpointsCancel pins the fast-forward's cancellation contract:
// a cancelled context must surface promptly as the pass's error, both from
// the chunk-boundary poll and from a producer blocked sending to a consumer
// that stopped draining.
func TestBuildCheckpointsCancel(t *testing.T) {
	pr := mustPrepare(t, "mcf", 1)
	m, err := NewMachineOpts(MInorder, sim.ModelOptions{Hier: mem.BaseConfig()})
	if err != nil {
		t.Fatal(err)
	}
	spec := m.(sim.IntervalRunner).CheckpointSpec()
	cfg := sim.SampleConfig{Interval: 5000, Warmup: 1000}

	t.Run("poll", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		start := time.Now()
		_, err := sim.BuildCheckpoints(ctx, pr.P, pr.Image, cfg, spec)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if d := time.Since(start); d > 5*time.Second {
			t.Fatalf("cancelled fast-forward took %s to return", d)
		}
	})

	t.Run("blocked-send", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		src, err := sim.StreamCheckpoints(ctx, pr.P, pr.Image, cfg, spec)
		if err != nil {
			t.Fatal(err)
		}
		// Take one checkpoint, then stop draining: the producer fills the
		// channel buffer and blocks in its send. Cancellation must unblock it.
		select {
		case <-src.C:
		case <-time.After(30 * time.Second):
			t.Fatal("no checkpoint arrived")
		}
		cancel()
		done := make(chan struct{})
		go func() {
			src.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("producer did not stop after cancellation")
		}
		// The pass may have finished before the cancel landed (tiny stream);
		// either a clean finish or context.Canceled is acceptable, anything
		// else is a bug.
		if _, _, _, err := src.Wait(); err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want nil or context.Canceled", err)
		}
	})
}

// TestSampledPhaseFuncFFwd checks the fast-forward wall clock is reported as
// the func_ffwd phase span on sampled results (the ?debug=true trace and
// pprof label share the name).
func TestSampledPhaseFuncFFwd(t *testing.T) {
	pr := mustPrepare(t, "gzip", 1)
	res, err := pr.RunSampled(context.Background(), MInorder,
		sim.ModelOptions{Hier: mem.BaseConfig()}, sim.SampleConfig{Interval: sampleTestInterval})
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, ph := range res.Phases {
		if ph.Name == "func_ffwd" {
			found = ph.Dur > 0
		}
	}
	if !found {
		t.Fatalf("no func_ffwd phase with positive duration in %+v", res.Phases)
	}
}
