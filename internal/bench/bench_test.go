package bench

import (
	"context"
	"strings"
	"testing"

	"multipass/internal/mem"
	"multipass/internal/sim"
	"multipass/internal/workload"
)

func TestNewMachineAllModels(t *testing.T) {
	for _, n := range []ModelName{MInorder, MMultipass, MNoRegroup, MNoRestart, MRunahead, MOOO, MOOORealistc} {
		m, err := NewMachine(n, mem.BaseConfig())
		if err != nil {
			t.Errorf("%s: %v", n, err)
			continue
		}
		if m.Name() == "" {
			t.Errorf("%s: empty name", n)
		}
	}
	if _, err := NewMachine("bogus", mem.BaseConfig()); err == nil {
		t.Error("bogus model accepted")
	}
}

func TestRunSingle(t *testing.T) {
	w, _ := workload.ByName("crafty")
	res, err := Run(context.Background(), MInorder, w, 1, mem.BaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Cycles == 0 || res.Stats.Retired == 0 {
		t.Error("degenerate run")
	}
}

// TestModelOrderingOnMCF is the repository's headline shape check at unit
// scale: on the worst-cache-behaviour kernel, cycles must order
// OOO <= multipass <= runahead <= inorder, and every model must retire the
// same instruction count.
func TestModelOrderingOnMCF(t *testing.T) {
	w, _ := workload.ByName("mcf")
	results := map[ModelName]*sim.Result{}
	for _, n := range []ModelName{MInorder, MMultipass, MRunahead, MOOO} {
		res, err := Run(context.Background(), n, w, 1, mem.BaseConfig())
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		results[n] = res
	}
	retired := results[MInorder].Stats.Retired
	for n, r := range results {
		if r.Stats.Retired != retired {
			t.Errorf("%s retired %d, inorder retired %d", n, r.Stats.Retired, retired)
		}
	}
	in := results[MInorder].Stats.Cycles
	mp := results[MMultipass].Stats.Cycles
	ra := results[MRunahead].Stats.Cycles
	oo := results[MOOO].Stats.Cycles
	if !(oo <= mp && mp <= ra && ra <= in) {
		t.Errorf("cycle ordering violated: ooo=%d mp=%d runahead=%d inorder=%d", oo, mp, ra, in)
	}
	if mp >= in {
		t.Error("multipass did not beat in-order on mcf")
	}
}

// All models agree on final architectural state for every workload (the
// whole-suite equivalence check).
func TestAllModelsEquivalentOnAllWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("long equivalence sweep")
	}
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			var ref *sim.Result
			for _, n := range []ModelName{MInorder, MMultipass, MRunahead, MOOO} {
				res, err := Run(context.Background(), n, w, 1, mem.BaseConfig())
				if err != nil {
					t.Fatalf("%s: %v", n, err)
				}
				if ref == nil {
					ref = res
					continue
				}
				if res.Stats.Retired != ref.Stats.Retired {
					t.Errorf("%s retired %d, want %d", n, res.Stats.Retired, ref.Stats.Retired)
				}
				if !res.RF.Equal(ref.RF) {
					t.Errorf("%s register state diverged: %v", n, res.RF.Diff(ref.RF))
				}
				if !res.Mem.Equal(ref.Mem) {
					t.Errorf("%s memory state diverged", n)
				}
			}
		})
	}
}

func TestFigure6SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-model sweep")
	}
	r, err := Figure6(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 12 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if r.MeanMPSpeedup <= 1.0 {
		t.Errorf("mean MP speedup = %.2f, must exceed 1", r.MeanMPSpeedup)
	}
	if r.MeanOOOOverMP < 1.0 {
		t.Errorf("ideal OOO (%.2f) should be at least as fast as MP on average", r.MeanOOOOverMP)
	}
	if r.MeanStallReduction <= 0 {
		t.Errorf("mean stall reduction = %.2f", r.MeanStallReduction)
	}
	out := r.Render()
	if !strings.Contains(out, "mcf") || !strings.Contains(out, "paper") {
		t.Error("render missing content")
	}
}

func TestFigure8SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-model sweep")
	}
	r, err := Figure8(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 12 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	var mcfRow *Fig8Row
	for i := range r.Rows {
		if r.Rows[i].Benchmark == "mcf" {
			mcfRow = &r.Rows[i]
		}
	}
	if mcfRow == nil {
		t.Fatal("no mcf row")
	}
	// mcf is restart-dominated: removing restart must cost it noticeably.
	if mcfRow.PctWithoutRestart > 95 {
		t.Errorf("mcf keeps %.0f%% of its speedup without restart; expected a visible loss", mcfRow.PctWithoutRestart)
	}
	_ = r.Render()
}

func TestTable1SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-model sweep")
	}
	r, err := Table1(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if r.Rows[1].PeakRatio < 4 {
		t.Errorf("scheduling peak ratio = %.2f, want >> 1", r.Rows[1].PeakRatio)
	}
	if r.Rows[2].PeakRatio <= 1 {
		t.Errorf("memory-ordering peak ratio = %.2f, want > 1", r.Rows[2].PeakRatio)
	}
	_ = r.Render()
}
