package bench

import (
	"math"
	"runtime"
	"testing"
	"time"

	"multipass/internal/arch"
	"multipass/internal/workload"
)

// TestFuncInterpSpeedupSuite measures the superblock interpreter against the
// step-wise reference across the whole kernel suite and requires the
// geometric-mean speedup to clear 3x (the ISSUE 10 acceptance bar, also
// reported per kernel by `benchsnap` as the funcinterp row). It doubles as a
// differential check on real kernels: final state and counts must match.
//
// Methodology: the SBProgram is decoded once per kernel (the design point —
// sim builds it once and reuses it across every checkpoint interval), the
// image clone happens outside the timed window, and a forced GC between clone
// and run keeps scaffolding garbage from being collected on either
// interpreter's clock. Each side takes the min of three reps.
func TestFuncInterpSpeedupSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	logGM := 0.0
	n := 0
	for _, w := range workload.All() {
		pr, err := Prepare(w, 1)
		if err != nil {
			t.Fatal(err)
		}
		sb := arch.NewSBProgram(pr.P)
		var ref, got *arch.RunResult
		swDur, sbDur := time.Duration(1<<62), time.Duration(1<<62)
		for rep := 0; rep < 3; rep++ {
			img := pr.Image.Clone()
			runtime.GC()
			start := time.Now()
			ref, err = arch.RunStepwise(pr.P, img, traceLimit)
			if d := time.Since(start); d < swDur {
				swDur = d
			}
			if err != nil {
				t.Fatalf("%s: %v", w.Name, err)
			}
			img = pr.Image.Clone()
			runtime.GC()
			start = time.Now()
			got, err = sb.Run(img, traceLimit)
			if d := time.Since(start); d < sbDur {
				sbDur = d
			}
			if err != nil {
				t.Fatalf("%s: %v", w.Name, err)
			}
		}
		if !ref.State.RF.Equal(got.State.RF) || !ref.State.Mem.Equal(got.State.Mem) ||
			ref.State.Retired != got.State.Retired || ref.Loads != got.Loads ||
			ref.Stores != got.Stores || ref.Branches != got.Branches || ref.Taken != got.Taken {
			t.Fatalf("%s: superblock diverged from stepwise", w.Name)
		}
		speedup := float64(swDur) / float64(sbDur)
		t.Logf("%-8s %9d insts  stepwise %8s  superblock %8s  %.2fx",
			w.Name, ref.State.Retired, swDur.Round(time.Microsecond), sbDur.Round(time.Microsecond), speedup)
		logGM += math.Log(speedup)
		n++
	}
	gm := math.Exp(logGM / float64(n))
	t.Logf("geomean speedup: %.2fx", gm)
	if gm < 3.0 {
		t.Errorf("geomean funcinterp speedup %.2fx < 3x target", gm)
	}
}
