package bench

import (
	"context"
	"fmt"
	"strings"
	"text/tabwriter"

	"multipass/internal/arch"
	"multipass/internal/compile"
	"multipass/internal/core"
	"multipass/internal/isa"
	"multipass/internal/mem"
	"multipass/internal/sim"
	"multipass/internal/workload"
)

// RestartStudyRow compares advance-restart mechanisms on one benchmark.
type RestartStudyRow struct {
	Benchmark string
	// Speedups over the in-order baseline.
	Compiler  float64 // compiler-inserted RESTART (the paper's §3.3 default)
	Hardware  float64 // footnote-1 hardware deferral heuristic, no RESTARTs
	Both      float64 // RESTART instructions plus the hardware heuristic
	NoRestart float64
	// HWRestarts fired by the heuristic in the hardware-only run.
	HWRestarts uint64
}

// RestartStudyResult is the paper's footnote-1 question quantified: how
// much of the compiler-directed restart benefit does a hardware-only
// deferral heuristic recover?
type RestartStudyResult struct {
	Rows []RestartStudyRow
}

// RestartStudy runs the study on the restart-sensitive kernels plus one
// insensitive control.
func RestartStudy(ctx context.Context, scale int) (*RestartStudyResult, error) {
	names := []string{"mcf", "gap", "bzip2", "art"}
	out := &RestartStudyResult{}
	for _, name := range names {
		w, ok := workload.ByName(name)
		if !ok {
			return nil, fmt.Errorf("bench: unknown workload %q", name)
		}
		// Two binaries: with and without RESTART instructions.
		withR, imageA, err := workload.Program(w, scale, compile.DefaultOptions())
		if err != nil {
			return nil, err
		}
		noROpts := compile.DefaultOptions()
		noROpts.InsertRestarts = false
		withoutR, imageB, err := workload.Program(w, scale, noROpts)
		if err != nil {
			return nil, err
		}

		base, err := runProgram(ctx, MInorder, withR, imageA, decodeTrace(withR, imageA), sim.ModelOptions{Hier: mem.BaseConfig()})
		if err != nil {
			return nil, err
		}
		runMP := func(cfg core.Config, p *isa.Program, image *arch.Memory) (uint64, uint64, error) {
			m, err := core.New(cfg)
			if err != nil {
				return 0, 0, err
			}
			res, err := m.Run(ctx, p, image)
			if err != nil {
				return 0, 0, err
			}
			return res.Stats.Cycles, res.Stats.Multipass.HWRestarts, nil
		}
		speedup := func(cy uint64) float64 { return float64(base.Stats.Cycles) / float64(cy) }

		row := RestartStudyRow{Benchmark: name}

		cfg := core.DefaultConfig() // compiler restart (standard)
		cy, _, err := runMP(cfg, withR, imageA)
		if err != nil {
			return nil, err
		}
		row.Compiler = speedup(cy)

		cfg = core.DefaultConfig() // hardware-only on the RESTART-free binary
		cfg.HardwareRestart = true
		cy, hw, err := runMP(cfg, withoutR, imageB)
		if err != nil {
			return nil, err
		}
		row.Hardware = speedup(cy)
		row.HWRestarts = hw

		cfg = core.DefaultConfig() // both mechanisms
		cfg.HardwareRestart = true
		cy, _, err = runMP(cfg, withR, imageA)
		if err != nil {
			return nil, err
		}
		row.Both = speedup(cy)

		cfg = core.DefaultConfig() // neither
		cfg.DisableRestart = true
		cy, _, err = runMP(cfg, withoutR, imageB)
		if err != nil {
			return nil, err
		}
		row.NoRestart = speedup(cy)

		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render formats the study.
func (r *RestartStudyResult) Render() string {
	var b strings.Builder
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\tcompiler RESTART\thardware heuristic\tboth\tno restart\tHW restarts fired")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%.2fx\t%.2fx\t%.2fx\t%.2fx\t%d\n",
			row.Benchmark, row.Compiler, row.Hardware, row.Both, row.NoRestart, row.HWRestarts)
	}
	tw.Flush()
	b.WriteString("(paper footnote 1, §3.3: \"A hardware mechanism could also have been used\" — the\nheuristic restarts a pass after a run of consecutive deferrals)\n")
	return b.String()
}

// SweepPoint is one (size, cycles) measurement of a design-choice sweep.
type SweepPoint struct {
	Benchmark string
	Size      int
	Cycles    uint64
	Speedup   float64 // over the in-order baseline
}

// SweepResult is one parameter sweep.
type SweepResult struct {
	Param  string
	Points []SweepPoint
}

// SweepIQ measures multipass sensitivity to the instruction-queue size
// (the paper's Table 2 picks 256): the IQ bounds how far PEEK can run
// ahead of DEQ.
func SweepIQ(ctx context.Context, scale int, sizes []int) (*SweepResult, error) {
	return sweep(ctx, "IQ", scale, sizes, func(cfg *core.Config, size int) {
		cfg.IQSize = size
		cfg.BufferSize = size
	})
}

// SweepASC measures multipass sensitivity to the advance store cache size
// (§4 picks 64 entries, 2-way): too small an ASC loses forwarding and
// makes more loads data-speculative.
func SweepASC(ctx context.Context, scale int, sizes []int) (*SweepResult, error) {
	return sweep(ctx, "ASC", scale, sizes, func(cfg *core.Config, size int) {
		cfg.ASCEntries = size
	})
}

func sweep(ctx context.Context, param string, scale int, sizes []int, apply func(*core.Config, int)) (*SweepResult, error) {
	names := []string{"mcf", "gzip", "equake"}
	out := &SweepResult{Param: param}
	for _, name := range names {
		w, ok := workload.ByName(name)
		if !ok {
			return nil, fmt.Errorf("bench: unknown workload %q", name)
		}
		p, image, err := workload.Program(w, scale, compile.DefaultOptions())
		if err != nil {
			return nil, err
		}
		base, err := runProgram(ctx, MInorder, p, image, decodeTrace(p, image), sim.ModelOptions{Hier: mem.BaseConfig()})
		if err != nil {
			return nil, err
		}
		for _, size := range sizes {
			cfg := core.DefaultConfig()
			apply(&cfg, size)
			m, err := core.New(cfg)
			if err != nil {
				return nil, fmt.Errorf("%s size %d: %w", param, size, err)
			}
			res, err := m.Run(ctx, p, image)
			if err != nil {
				return nil, err
			}
			out.Points = append(out.Points, SweepPoint{
				Benchmark: name,
				Size:      size,
				Cycles:    res.Stats.Cycles,
				Speedup:   float64(base.Stats.Cycles) / float64(res.Stats.Cycles),
			})
		}
	}
	return out, nil
}

// Render formats the sweep.
func (r *SweepResult) Render() string {
	var b strings.Builder
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "benchmark\t%s size\tcycles\tspeedup over inorder\n", r.Param)
	for _, pt := range r.Points {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.2fx\n", pt.Benchmark, pt.Size, pt.Cycles, pt.Speedup)
	}
	tw.Flush()
	return b.String()
}
