// Package bench is the experiment harness: it reproduces every table and
// figure of the paper's evaluation (§5) on the synthetic workload suite.
//
//	Figure6  normalized execution cycles and stall breakdown for the
//	         in-order baseline, multipass, and ideal out-of-order machines
//	Figure7  multipass and out-of-order speedups under three cache
//	         hierarchies (base, config1, config2)
//	Figure8  percent of the full multipass speedup retained without issue
//	         regrouping and without advance restart
//	Table1   peak and average power ratios of out-of-order vs multipass
//	         structures, using activity from the Figure 6 runs
//	Extras   the §5.2 realistic out-of-order comparison and the §5.4
//	         Dundas-Mudge runahead comparison
package bench

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"multipass/internal/arch"
	"multipass/internal/compile"
	"multipass/internal/isa"
	"multipass/internal/mem"
	"multipass/internal/sim"
	"multipass/internal/workload"

	// Link the evaluation's timing models into the sim registry. The
	// harness constructs them by name; nothing here references the
	// packages directly (studies.go uses core's config types).
	_ "multipass/internal/pipe/cgooo"
	_ "multipass/internal/pipe/inorder"
	_ "multipass/internal/pipe/ooo"
	_ "multipass/internal/pipe/runahead"
)

// ModelName identifies one timing model in experiment output.
type ModelName string

// The machine models of the evaluation.
const (
	MInorder     ModelName = "inorder"
	MMultipass   ModelName = "multipass"
	MNoRegroup   ModelName = "multipass-noregroup"
	MNoRestart   ModelName = "multipass-norestart"
	MRunahead    ModelName = "runahead"
	MOOO         ModelName = "ooo"
	MOOORealistc ModelName = "ooo-realistic"
	MCGOoO       ModelName = "cgooo"
)

// NewMachine constructs the named model over the given hierarchy, via the
// sim registry the model packages register themselves into.
func NewMachine(name ModelName, hier mem.HierConfig) (sim.Machine, error) {
	return NewMachineOpts(name, sim.ModelOptions{Hier: hier})
}

// NewMachineOpts constructs the named model with full per-run options, for
// callers that vary more than the hierarchy (e.g. DisableSkip).
func NewMachineOpts(name ModelName, opts sim.ModelOptions) (sim.Machine, error) {
	return sim.NewMachine(string(name), opts)
}

// Run compiles one workload (paper-standard compiler options: scheduling and
// RESTART insertion on) and runs it on one model. The same binary is used
// for every model, as in the paper.
func Run(ctx context.Context, name ModelName, w workload.Workload, scale int, hier mem.HierConfig) (*sim.Result, error) {
	p, image, err := workload.Program(w, scale, compile.DefaultOptions())
	if err != nil {
		return nil, err
	}
	return runProgram(ctx, name, p, image, decodeTrace(p, image), sim.ModelOptions{Hier: hier})
}

// traceLimit caps pre-decoded traces; a workload longer than this falls back
// to the lazy per-run interpreter rather than holding a huge flat trace.
const traceLimit = 1 << 22

// decodeTrace pre-decodes a program once for read-only sharing across models.
// Any failure (too long, interpreter fault) degrades to the lazy path, where
// the run will produce the real error if there is one.
func decodeTrace(p *isa.Program, image *arch.Memory) *sim.Trace {
	tr, err := sim.BuildTrace(p, image, traceLimit)
	if err != nil {
		return nil
	}
	return tr
}

// Prepared is one compiled workload plus its pre-decoded oracle trace, for
// callers (throughput benchmarks, benchsnap) that run many models or many
// repetitions over the same binary without paying compilation or decoding
// inside the measured region.
type Prepared struct {
	P     *isa.Program
	Image *arch.Memory
	Tr    *sim.Trace
}

// Prepare compiles the workload with the paper-standard options and
// pre-decodes its trace.
func Prepare(w workload.Workload, scale int) (*Prepared, error) {
	p, image, err := workload.Program(w, scale, compile.DefaultOptions())
	if err != nil {
		return nil, err
	}
	return &Prepared{P: p, Image: image, Tr: decodeTrace(p, image)}, nil
}

// Run executes one model over the prepared binary.
func (pr *Prepared) Run(ctx context.Context, name ModelName, hier mem.HierConfig) (*sim.Result, error) {
	return runProgram(ctx, name, pr.P, pr.Image, pr.Tr, sim.ModelOptions{Hier: hier})
}

// RunOpts executes one model over the prepared binary with full per-run
// options (hierarchy, instruction limit, DisableSkip).
func (pr *Prepared) RunOpts(ctx context.Context, name ModelName, opts sim.ModelOptions) (*sim.Result, error) {
	return runProgram(ctx, name, pr.P, pr.Image, pr.Tr, opts)
}

// RunSampled executes one model over the prepared binary with SMARTS-style
// interval sampling: checkpointed intervals simulated in parallel and
// stitched into one result (see sim.RunSampled).
func (pr *Prepared) RunSampled(ctx context.Context, name ModelName, opts sim.ModelOptions, scfg sim.SampleConfig) (*sim.Result, error) {
	m, err := NewMachineOpts(name, opts)
	if err != nil {
		return nil, err
	}
	if tu, ok := m.(sim.TraceUser); ok {
		tu.UseTrace(pr.Tr)
	}
	res, err := sim.RunSampled(ctx, m, pr.P, pr.Image, scfg)
	if err != nil {
		return nil, fmt.Errorf("bench: %s: %w", name, err)
	}
	return res, nil
}

func runProgram(ctx context.Context, name ModelName, p *isa.Program, image *arch.Memory, tr *sim.Trace, opts sim.ModelOptions) (*sim.Result, error) {
	m, err := NewMachineOpts(name, opts)
	if err != nil {
		return nil, err
	}
	if tu, ok := m.(sim.TraceUser); ok {
		tu.UseTrace(tr)
	}
	res, err := m.Run(ctx, p, image)
	if err != nil {
		return nil, fmt.Errorf("bench: %s: %w", name, err)
	}
	return res, nil
}

// cell is one (workload, model) measurement.
type cell struct {
	Workload string
	Model    ModelName
	Hier     string
	Result   *sim.Result
	Err      error
}

// runMatrix executes every (workload, model, hierarchy) combination
// concurrently, compiling each workload once per hierarchy.
func runMatrix(ctx context.Context, ws []workload.Workload, models []ModelName, hiers map[string]mem.HierConfig, scale int) (map[string]*sim.Result, error) {
	type job struct {
		w     workload.Workload
		model ModelName
		hname string
	}
	var jobs []job
	for _, w := range ws {
		for hname := range hiers {
			for _, m := range models {
				jobs = append(jobs, job{w, m, hname})
			}
		}
	}

	// Share one compiled program+image per workload (images are cloned by
	// the machines, so reuse is safe), plus one pre-decoded trace consulted
	// read-only by every model.
	type built struct {
		p     *isa.Program
		image *arch.Memory
		tr    *sim.Trace
	}
	programs := make(map[string]built, len(ws))
	for _, w := range ws {
		p, image, err := workload.Program(w, scale, compile.DefaultOptions())
		if err != nil {
			return nil, err
		}
		programs[w.Name] = built{p, image, decodeTrace(p, image)}
	}

	results := make(map[string]*sim.Result, len(jobs))
	var mu sync.Mutex
	var firstErr error
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			b := programs[j.w.Name]
			res, err := runProgram(ctx, j.model, b.p, b.image, b.tr, sim.ModelOptions{Hier: hiers[j.hname]})
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("%s/%s/%s: %w", j.w.Name, j.model, j.hname, err)
				}
				return
			}
			results[key(j.w.Name, j.model, j.hname)] = res
		}(j)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

func key(w string, m ModelName, h string) string { return w + "/" + string(m) + "/" + h }

// speedup returns base cycles / other cycles.
func speedup(base, other *sim.Result) float64 {
	if other.Stats.Cycles == 0 {
		return 0
	}
	return float64(base.Stats.Cycles) / float64(other.Stats.Cycles)
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
