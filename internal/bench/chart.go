package bench

import (
	"fmt"
	"strings"

	"multipass/internal/sim"
)

// barScale is the character width of a full-length (1.0 normalized) bar.
const barScale = 48

// stallGlyphs maps each Figure 6 category to its bar glyph.
var stallGlyphs = [sim.NumStallKinds]byte{'#', 'f', 'o', '.'}

// bar renders one stacked horizontal bar of normalized cycle categories:
// '#' execution, 'f' front-end, 'o' other, '.' load.
func bar(s *sim.Stats, base float64) string {
	var b strings.Builder
	total := 0
	for k := 0; k < sim.NumStallKinds; k++ {
		n := int(float64(s.Cat[k]) / base * barScale)
		total += n
		b.WriteString(strings.Repeat(string(stallGlyphs[k]), n))
	}
	return b.String()
}

// Chart renders Figure 6 as stacked ASCII bars, one triplet per benchmark,
// normalized to each benchmark's in-order cycles.
func (r *Fig6Result) Chart() string {
	var b strings.Builder
	b.WriteString("Figure 6: normalized execution cycles (" +
		"'#' execution, 'f' front-end, 'o' other, '.' load stalls)\n\n")
	for _, row := range r.Rows {
		base := float64(row.Base.Cycles)
		fmt.Fprintf(&b, "%-8s base |%s\n", row.Benchmark, bar(&row.Base, base))
		fmt.Fprintf(&b, "%-8s MP   |%s\n", "", bar(&row.MP, base))
		fmt.Fprintf(&b, "%-8s OOO  |%s\n\n", "", bar(&row.OOO, base))
	}
	return b.String()
}

// Chart renders Figure 8 as paired ASCII bars (percent of full multipass
// speedup retained without each mechanism).
func (r *Fig8Result) Chart() string {
	var b strings.Builder
	b.WriteString("Figure 8: % of full multipass speedup without each mechanism\n\n")
	pct := func(v float64) string {
		n := int(v / 100 * barScale)
		if n < 0 {
			n = 0
		}
		if n > barScale {
			n = barScale
		}
		return strings.Repeat("=", n)
	}
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8s w/o regroup |%-*s %3.0f%%\n", row.Benchmark, barScale, pct(row.PctWithoutRegroup), row.PctWithoutRegroup)
		fmt.Fprintf(&b, "%-8s w/o restart |%-*s %3.0f%%\n\n", "", barScale, pct(row.PctWithoutRestart), row.PctWithoutRestart)
	}
	return b.String()
}

// Chart renders Figure 7 speedups as grouped bars per hierarchy.
func (r *Fig7Result) Chart() string {
	var b strings.Builder
	b.WriteString("Figure 7: speedup over in-order ('M' multipass, 'O' out-of-order)\n\n")
	perHier := map[string][]Fig7Row{}
	for _, row := range r.Rows {
		perHier[row.Hier] = append(perHier[row.Hier], row)
	}
	speedBar := func(glyph byte, v float64) string {
		n := int(v / 4 * barScale)
		if n > barScale*2 {
			n = barScale * 2
		}
		if n < 1 {
			n = 1
		}
		return strings.Repeat(string(glyph), n)
	}
	for _, h := range []string{"base", "config1", "config2"} {
		fmt.Fprintf(&b, "--- %s ---\n", h)
		for _, row := range perHier[h] {
			fmt.Fprintf(&b, "%-8s |%s %.2fx\n", row.Benchmark, speedBar('M', row.MPSpeedup), row.MPSpeedup)
			fmt.Fprintf(&b, "%-8s |%s %.2fx\n", "", speedBar('O', row.OOOSpeed), row.OOOSpeed)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
