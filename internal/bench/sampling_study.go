package bench

import (
	"context"
	"fmt"
	"math"
	"strings"
	"text/tabwriter"
	"time"

	"multipass/internal/mem"
	"multipass/internal/sim"
	"multipass/internal/workload"
)

// Sampling-study configuration. The error table runs full-coverage stitching
// at the recommended operating point (interval >= 100k, warm-up K/4) on every
// kernel and model; the speedup curve measures wall clock on one long kernel,
// both full-coverage (parallel-in-time) and sparse (SMARTS measurement,
// every studyPeriod-th interval).
const (
	studyInterval = 100000
	studyWarmup   = 25000
	studyPeriod   = 12
	// curveScale is fixed independently of the table scale: the wall-clock
	// claim needs a stream long enough (~32M instructions for mcf) that the
	// sampled fraction and fast-forward amortize.
	curveScale  = 128
	curveKernel = "mcf"
	// Full coverage materializes a checkpoint per interval (each holding a
	// memory-image clone), so its sensible operating point on a long stream
	// is a much larger interval than sparse measurement needs.
	fullCurveInterval = 1000000
	fullCurveWarmup   = 250000
)

// SamplingErrorRow is one kernel x model cell of the stitched-vs-monolithic
// comparison.
type SamplingErrorRow struct {
	Kernel        string    `json:"kernel"`
	Model         ModelName `json:"model"`
	Intervals     int       `json:"intervals"`
	MonoCycles    uint64    `json:"mono_cycles"`
	SampledCycles uint64    `json:"sampled_cycles"`
	// ErrPct is signed: positive means the stitched run overestimates.
	ErrPct       float64 `json:"err_pct"`
	RetiredExact bool    `json:"retired_exact"`
	StateEqual   bool    `json:"state_equal"`
}

// SamplingSpeedupRow is one point of the wall-clock curve.
type SamplingSpeedupRow struct {
	Mode     string        `json:"mode"` // "full" | "sparse"
	Interval uint64        `json:"interval"`
	Period   uint64        `json:"period,omitempty"`
	Workers  int           `json:"workers"`
	Wall     time.Duration `json:"wall"`
	FFWall   time.Duration `json:"ff_wall"`
	Speedup  float64       `json:"speedup"`
	ErrPct   float64       `json:"err_pct"`
}

// SamplingStudyResult is the EXPERIMENTS.md sampling section: the error
// table over every kernel and model, and the speedup curve on one long run.
type SamplingStudyResult struct {
	Scale    int                `json:"scale"`
	Interval uint64             `json:"interval"`
	Warmup   uint64             `json:"warmup"`
	Rows     []SamplingErrorRow `json:"rows"`
	// MaxAbsErrPct is the worst |error| in Rows: the documented bound.
	MaxAbsErrPct float64 `json:"max_abs_err_pct"`

	CurveKernel string               `json:"curve_kernel"`
	CurveScale  int                  `json:"curve_scale"`
	CurveModel  ModelName            `json:"curve_model"`
	Period      uint64               `json:"period"`
	MonoWall    time.Duration        `json:"mono_wall"`
	Curve       []SamplingSpeedupRow `json:"curve"`
}

// SamplingStudy measures interval sampling against monolithic simulation:
// cycle error, retired-count and final-state exactness per kernel and model
// at the given scale, plus the wall-clock curve on a long run. Wall-clock
// rows time the simulation phase only — workload compilation and trace
// pre-decode are shared by both modes.
func SamplingStudy(ctx context.Context, scale int) (*SamplingStudyResult, error) {
	out := &SamplingStudyResult{
		Scale: scale, Interval: studyInterval, Warmup: studyWarmup,
		CurveKernel: curveKernel, CurveScale: curveScale,
		CurveModel: MMultipass, Period: studyPeriod,
	}
	opts := sim.ModelOptions{Hier: mem.BaseConfig()}
	scfg := sim.SampleConfig{Interval: studyInterval, Warmup: studyWarmup}
	for _, w := range workload.All() {
		pr, err := Prepare(w, scale)
		if err != nil {
			return nil, err
		}
		for _, model := range []ModelName{MInorder, MRunahead, MMultipass, MOOO, MOOORealistc} {
			mono, err := pr.RunOpts(ctx, model, opts)
			if err != nil {
				return nil, err
			}
			sampled, err := pr.RunSampled(ctx, model, opts, scfg)
			if err != nil {
				return nil, err
			}
			row := SamplingErrorRow{
				Kernel:        w.Name,
				Model:         model,
				Intervals:     int((mono.Stats.Retired + studyInterval - 1) / studyInterval),
				MonoCycles:    mono.Stats.Cycles,
				SampledCycles: sampled.Stats.Cycles,
				ErrPct:        100 * (float64(sampled.Stats.Cycles) - float64(mono.Stats.Cycles)) / float64(mono.Stats.Cycles),
				RetiredExact:  sampled.Stats.Retired == mono.Stats.Retired,
				StateEqual:    sampled.Snapshot().Equal(mono.Snapshot()),
			}
			out.Rows = append(out.Rows, row)
			if a := math.Abs(row.ErrPct); a > out.MaxAbsErrPct {
				out.MaxAbsErrPct = a
			}
		}
	}

	// Speedup curve: one long kernel, simulation-phase wall clock.
	w, ok := workload.ByName(curveKernel)
	if !ok {
		return nil, fmt.Errorf("bench: unknown curve kernel %q", curveKernel)
	}
	pr, err := Prepare(w, curveScale)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	mono, err := pr.RunOpts(ctx, MMultipass, opts)
	if err != nil {
		return nil, err
	}
	out.MonoWall = time.Since(start)

	point := func(mode string, cfg sim.SampleConfig) error {
		start := time.Now()
		res, err := pr.RunSampled(ctx, MMultipass, opts, cfg)
		if err != nil {
			return err
		}
		wall := time.Since(start)
		var ff time.Duration
		for _, ph := range res.Phases {
			if ph.Name == "func_ffwd" {
				ff = ph.Dur
			}
		}
		out.Curve = append(out.Curve, SamplingSpeedupRow{
			Mode:     mode,
			Interval: cfg.Interval,
			Period:   cfg.Period,
			Workers:  cfg.Workers,
			Wall:     wall,
			FFWall:   ff,
			Speedup:  out.MonoWall.Seconds() / wall.Seconds(),
			ErrPct:   100 * (float64(res.Stats.Cycles) - float64(mono.Stats.Cycles)) / float64(mono.Stats.Cycles),
		})
		return nil
	}
	for _, workers := range []int{1, 8} {
		cfg := sim.SampleConfig{Interval: fullCurveInterval, Warmup: fullCurveWarmup, Workers: workers}
		if err := point("full", cfg); err != nil {
			return nil, err
		}
	}
	for _, workers := range []int{1, 2, 4, 8} {
		cfg := scfg
		cfg.Workers = workers
		cfg.Period = studyPeriod
		if err := point("sparse", cfg); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Render formats the study as text tables.
func (r *SamplingStudyResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "stitched vs monolithic, interval %d, warmup %d, full coverage, scale %d\n\n", r.Interval, r.Warmup, r.Scale)
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "kernel\tmodel\tintervals\tmono cycles\tstitched\terr%\tretired\tfinal state")
	for _, row := range r.Rows {
		exact := func(ok bool) string {
			if ok {
				return "exact"
			}
			return "DIVERGED"
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%+.2f\t%s\t%s\n",
			row.Kernel, row.Model, row.Intervals, row.MonoCycles, row.SampledCycles,
			row.ErrPct, exact(row.RetiredExact), exact(row.StateEqual))
	}
	tw.Flush()
	fmt.Fprintf(&b, "\nmax |cycle error|: %.2f%%\n", r.MaxAbsErrPct)

	fmt.Fprintf(&b, "\nwall-clock curve: %s scale %d, %s (simulation phase only; compile/pre-decode shared)\n",
		r.CurveKernel, r.CurveScale, r.CurveModel)
	fmt.Fprintf(&b, "monolithic simulation wall: %.2fs\n\n", r.MonoWall.Seconds())
	tw = tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "mode\tinterval\tperiod\tworkers\twall\tfast-forward\tspeedup\terr%")
	for _, p := range r.Curve {
		period := "-"
		if p.Period > 1 {
			period = fmt.Sprint(p.Period)
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%d\t%.2fs\t%.2fs\t%.2fx\t%+.2f\n",
			p.Mode, p.Interval, period, p.Workers, p.Wall.Seconds(), p.FFWall.Seconds(), p.Speedup, p.ErrPct)
	}
	tw.Flush()
	return b.String()
}
