package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"multipass/internal/mem"
	"multipass/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite golden stats files")

// goldenModels x goldenKernels is the determinism matrix: every timing model
// on every kernel of the suite, so cycle-exactness is pinned suite-wide.
var goldenModels = []ModelName{MInorder, MRunahead, MMultipass, MOOO, MOOORealistc, MCGOoO}

var goldenKernels = allKernelNames()

func allKernelNames() []string {
	var names []string
	for _, w := range workload.All() {
		names = append(names, w.Name)
	}
	return names
}

// goldenScale matches the repo-root benchScale so the goldens pin exactly the
// runs the benchmarks measure.
const goldenScale = 1

// TestGoldenStats pins the full marshaled sim.Stats (schema_version 1) of
// every model x kernel pair against checked-in goldens. The goldens were
// generated before the allocation-free hot-loop rewrite (ring-buffer result
// store, page-cached memory, bounded MSHR/rename/store-buffer structures,
// pre-decoded traces), so a byte-level diff here means a timing or
// architectural change, not just a perf regression: the optimizations must be
// cycle-exact. Regenerate deliberately with:
//
//	go test ./internal/bench -run TestGoldenStats -update
func TestGoldenStats(t *testing.T) {
	for _, model := range goldenModels {
		for _, kernel := range goldenKernels {
			model, kernel := model, kernel
			t.Run(string(model)+"/"+kernel, func(t *testing.T) {
				t.Parallel()
				w, ok := workload.ByName(kernel)
				if !ok {
					t.Fatalf("unknown kernel %q", kernel)
				}
				res, err := Run(context.Background(), model, w, goldenScale, mem.BaseConfig())
				if err != nil {
					t.Fatal(err)
				}
				got, err := json.MarshalIndent(res.Stats, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				got = append(got, '\n')

				path := filepath.Join("testdata", "golden", string(model)+"__"+kernel+".json")
				if *updateGolden {
					if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, got, 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden (run with -update to generate): %v", err)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("stats diverged from golden %s\n got: %s\nwant: %s", path, got, want)
				}
			})
		}
	}
}
