package bench

import (
	"context"
	"fmt"
	"strings"
	"text/tabwriter"

	"multipass/internal/mem"
	"multipass/internal/power"
	"multipass/internal/sim"
	"multipass/internal/workload"
)

// Fig6Row is one benchmark's result in Figure 6.
type Fig6Row struct {
	Benchmark string
	Base      sim.Stats
	MP        sim.Stats
	OOO       sim.Stats
}

// Fig6Result reproduces Figure 6: normalized execution cycles with the
// execution / front-end / other / load breakdown, for base, multipass and
// ideal out-of-order.
type Fig6Result struct {
	Rows []Fig6Row
	// Aggregates reported in §5.2.
	MeanStallReduction float64 // multipass vs base, all stall categories
	MeanMPSpeedup      float64 // multipass over base
	MeanOOOOverMP      float64 // ideal OOO over multipass
}

// Figure6 runs the experiment at the given workload scale.
func Figure6(ctx context.Context, scale int) (*Fig6Result, error) {
	ws := workload.All()
	hiers := map[string]mem.HierConfig{"base": mem.BaseConfig()}
	res, err := runMatrix(ctx, ws, []ModelName{MInorder, MMultipass, MOOO}, hiers, scale)
	if err != nil {
		return nil, err
	}
	out := &Fig6Result{}
	var reductions, mpSpeed, oooOverMP []float64
	for _, w := range ws {
		base := res[key(w.Name, MInorder, "base")]
		mp := res[key(w.Name, MMultipass, "base")]
		o := res[key(w.Name, MOOO, "base")]
		out.Rows = append(out.Rows, Fig6Row{w.Name, base.Stats, mp.Stats, o.Stats})
		bStall := float64(base.Stats.TotalStalls())
		mStall := float64(mp.Stats.TotalStalls())
		if bStall > 0 {
			reductions = append(reductions, 1-mStall/bStall)
		}
		mpSpeed = append(mpSpeed, speedup(base, mp))
		oooOverMP = append(oooOverMP, float64(mp.Stats.Cycles)/float64(o.Stats.Cycles))
	}
	out.MeanStallReduction = mean(reductions)
	out.MeanMPSpeedup = mean(mpSpeed)
	out.MeanOOOOverMP = mean(oooOverMP)
	return out, nil
}

// Render formats the figure as a text table of normalized cycles.
func (r *Fig6Result) Render() string {
	var b strings.Builder
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\tmodel\tnorm.cycles\texec\tfront-end\tother\tload\tIPC")
	for _, row := range r.Rows {
		base := float64(row.Base.Cycles)
		emit := func(name string, s *sim.Stats) {
			fmt.Fprintf(tw, "%s\t%s\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.2f\n",
				row.Benchmark, name,
				float64(s.Cycles)/base,
				float64(s.Cat[sim.StallExecution])/base,
				float64(s.Cat[sim.StallFrontEnd])/base,
				float64(s.Cat[sim.StallOther])/base,
				float64(s.Cat[sim.StallLoad])/base,
				s.IPC())
		}
		emit("base", &row.Base)
		emit("MP", &row.MP)
		emit("OOO", &row.OOO)
	}
	tw.Flush()
	fmt.Fprintf(&b, "\nmean stall-cycle reduction (MP vs base): %.0f%%   (paper: 49%%)\n", 100*r.MeanStallReduction)
	fmt.Fprintf(&b, "mean MP speedup over base:               %.2fx  (paper: 1.36x)\n", r.MeanMPSpeedup)
	fmt.Fprintf(&b, "mean ideal-OOO speedup over MP:          %.2fx  (paper: 1.14x)\n", r.MeanOOOOverMP)
	return b.String()
}

// Fig7Row is one benchmark's speedups under one hierarchy.
type Fig7Row struct {
	Benchmark string
	Hier      string
	MPSpeedup float64
	OOOSpeed  float64
}

// Fig7Result reproduces Figure 7: speedup over in-order for multipass and
// out-of-order under the base, config1 and config2 hierarchies.
type Fig7Result struct {
	Rows []Fig7Row
	// MeanMP and MeanOOO are per-hierarchy averages keyed by config name.
	MeanMP  map[string]float64
	MeanOOO map[string]float64
}

// Figure7 runs the experiment at the given workload scale.
func Figure7(ctx context.Context, scale int) (*Fig7Result, error) {
	ws := workload.All()
	hiers := map[string]mem.HierConfig{
		"base":    mem.BaseConfig(),
		"config1": mem.Config1(),
		"config2": mem.Config2(),
	}
	res, err := runMatrix(ctx, ws, []ModelName{MInorder, MMultipass, MOOO}, hiers, scale)
	if err != nil {
		return nil, err
	}
	out := &Fig7Result{MeanMP: map[string]float64{}, MeanOOO: map[string]float64{}}
	for _, hname := range []string{"base", "config1", "config2"} {
		var mps, ooos []float64
		for _, w := range ws {
			base := res[key(w.Name, MInorder, hname)]
			mp := speedup(base, res[key(w.Name, MMultipass, hname)])
			oo := speedup(base, res[key(w.Name, MOOO, hname)])
			out.Rows = append(out.Rows, Fig7Row{w.Name, hname, mp, oo})
			mps = append(mps, mp)
			ooos = append(ooos, oo)
		}
		out.MeanMP[hname] = mean(mps)
		out.MeanOOO[hname] = mean(ooos)
	}
	return out, nil
}

// Render formats the figure.
func (r *Fig7Result) Render() string {
	var b strings.Builder
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\thierarchy\tMP speedup\tOOO speedup")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%s\t%.2f\t%.2f\n", row.Benchmark, row.Hier, row.MPSpeedup, row.OOOSpeed)
	}
	tw.Flush()
	for _, h := range []string{"base", "config1", "config2"} {
		fmt.Fprintf(&b, "\n%s: mean MP %.2fx, mean OOO %.2fx, gap %.2fx",
			h, r.MeanMP[h], r.MeanOOO[h], r.MeanOOO[h]/r.MeanMP[h])
	}
	b.WriteString("\n(paper: average speedups stay roughly flat across hierarchies; the MP/OOO gap narrows with the more restrictive ones)\n")
	return b.String()
}

// Fig8Row is one benchmark's ablation result.
type Fig8Row struct {
	Benchmark string
	// Percent of the full multipass speedup retained without the feature.
	PctWithoutRegroup float64
	PctWithoutRestart float64
}

// Fig8Result reproduces Figure 8.
type Fig8Result struct {
	Rows []Fig8Row
}

// Figure8 runs the ablations at the given workload scale.
func Figure8(ctx context.Context, scale int) (*Fig8Result, error) {
	ws := workload.All()
	hiers := map[string]mem.HierConfig{"base": mem.BaseConfig()}
	res, err := runMatrix(ctx, ws, []ModelName{MInorder, MMultipass, MNoRegroup, MNoRestart}, hiers, scale)
	if err != nil {
		return nil, err
	}
	out := &Fig8Result{}
	for _, w := range ws {
		base := res[key(w.Name, MInorder, "base")]
		full := speedup(base, res[key(w.Name, MMultipass, "base")])
		noRegroup := speedup(base, res[key(w.Name, MNoRegroup, "base")])
		noRestart := speedup(base, res[key(w.Name, MNoRestart, "base")])
		pct := func(abl float64) float64 {
			if full <= 1 {
				return 100
			}
			return 100 * (abl - 1) / (full - 1)
		}
		out.Rows = append(out.Rows, Fig8Row{w.Name, pct(noRegroup), pct(noRestart)})
	}
	return out, nil
}

// Render formats the figure.
func (r *Fig8Result) Render() string {
	var b strings.Builder
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\t% speedup w/o regrouping\t% speedup w/o restart")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%.0f%%\t%.0f%%\n", row.Benchmark, row.PctWithoutRegroup, row.PctWithoutRestart)
	}
	tw.Flush()
	b.WriteString("(paper: regrouping matters nearly everywhere except mcf; restart matters for bzip2, gap and mcf)\n")
	return b.String()
}

// Table1Result reproduces Table 1 using activity from full-suite runs.
type Table1Result struct {
	Rows []power.Table1Row
}

// Table1 aggregates statistics across the suite on the OOO and multipass
// machines and evaluates the power models.
func Table1(ctx context.Context, scale int) (*Table1Result, error) {
	ws := workload.All()
	hiers := map[string]mem.HierConfig{"base": mem.BaseConfig()}
	res, err := runMatrix(ctx, ws, []ModelName{MMultipass, MOOO}, hiers, scale)
	if err != nil {
		return nil, err
	}
	var oooAgg, mpAgg sim.Stats
	for _, w := range ws {
		addStats(&oooAgg, &res[key(w.Name, MOOO, "base")].Stats)
		addStats(&mpAgg, &res[key(w.Name, MMultipass, "base")].Stats)
	}
	return &Table1Result{Rows: power.Table1(&oooAgg, &mpAgg)}, nil
}

// addStats accumulates the counters the power model consumes.
func addStats(dst, src *sim.Stats) {
	dst.Cycles += src.Cycles
	dst.Retired += src.Retired
	for i := range dst.Cat {
		dst.Cat[i] += src.Cat[i]
	}
	dst.Memory.L1D.Accesses += src.Memory.L1D.Accesses
	dst.Memory.L1D.Misses += src.Memory.L1D.Misses
	dst.Memory.L1D.AdvanceAccesses += src.Memory.L1D.AdvanceAccesses
	dst.Memory.L1D.AdvanceMisses += src.Memory.L1D.AdvanceMisses
	dst.Multipass.Merged += src.Multipass.Merged
	dst.Multipass.AdvanceExecuted += src.Multipass.AdvanceExecuted
	dst.Multipass.AdvanceCycles += src.Multipass.AdvanceCycles
	dst.Multipass.RallyCycles += src.Multipass.RallyCycles
	dst.Multipass.SpecLoads += src.Multipass.SpecLoads
}

// Render formats the table.
func (r *Table1Result) Render() string {
	var b strings.Builder
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "structure group\tpeak ratio (OOO/MP)\tavg ratio (OOO/MP)")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\n", row.Group, row.PeakRatio, row.AvgRatio)
	}
	tw.Flush()
	b.WriteString("(paper: 0.99/1.20, 10.28/7.15, 3.21/9.79)\n")
	return b.String()
}

// ExtrasResult holds the §5.2 and §5.4 comparisons.
type ExtrasResult struct {
	// MPOverRealOOO is the mean multipass speedup over the realistic
	// (decentralized 16-entry queue) out-of-order model (paper: 1.05x).
	MPOverRealOOO float64
	// RunaheadCycleFraction is how many of the cycles multipass removes
	// (relative to in-order) runahead removes (paper: about half).
	RunaheadCycleFraction float64
	PerBench              []ExtraRow
}

// ExtraRow is one benchmark's extra-comparison data.
type ExtraRow struct {
	Benchmark     string
	MPOverRealOOO float64
	RAFraction    float64
}

// Extras runs the additional comparisons.
func Extras(ctx context.Context, scale int) (*ExtrasResult, error) {
	ws := workload.All()
	hiers := map[string]mem.HierConfig{"base": mem.BaseConfig()}
	res, err := runMatrix(ctx, ws, []ModelName{MInorder, MMultipass, MRunahead, MOOORealistc}, hiers, scale)
	if err != nil {
		return nil, err
	}
	out := &ExtrasResult{}
	var ratios, fracs []float64
	for _, w := range ws {
		base := res[key(w.Name, MInorder, "base")]
		mp := res[key(w.Name, MMultipass, "base")]
		ra := res[key(w.Name, MRunahead, "base")]
		ro := res[key(w.Name, MOOORealistc, "base")]
		ratio := float64(ro.Stats.Cycles) / float64(mp.Stats.Cycles)
		mpSaved := float64(base.Stats.Cycles) - float64(mp.Stats.Cycles)
		raSaved := float64(base.Stats.Cycles) - float64(ra.Stats.Cycles)
		frac := 0.0
		if mpSaved > 0 {
			frac = raSaved / mpSaved
		}
		out.PerBench = append(out.PerBench, ExtraRow{w.Name, ratio, frac})
		ratios = append(ratios, ratio)
		fracs = append(fracs, frac)
	}
	out.MPOverRealOOO = mean(ratios)
	out.RunaheadCycleFraction = mean(fracs)
	return out, nil
}

// Render formats the comparisons.
func (r *ExtrasResult) Render() string {
	var b strings.Builder
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\tMP speedup over realistic OOO\trunahead fraction of MP cycle savings")
	for _, row := range r.PerBench {
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\n", row.Benchmark, row.MPOverRealOOO, row.RAFraction)
	}
	tw.Flush()
	fmt.Fprintf(&b, "\nmean MP speedup over realistic OOO: %.2fx (paper: 1.05x)\n", r.MPOverRealOOO)
	fmt.Fprintf(&b, "mean runahead fraction of MP savings: %.2f (paper: ~0.5)\n", r.RunaheadCycleFraction)
	return b.String()
}
