package bench

import (
	"context"
	"errors"
	"testing"
	"time"

	"multipass/internal/compile"
	"multipass/internal/mem"
	"multipass/internal/sim"
	"multipass/internal/workload"
)

// TestSkipOffEquivalence runs every timing model on every kernel twice — idle-
// cycle fast-forwarding on (the default) and off (DisableSkip) — and asserts
// the two runs are indistinguishable: identical sim.Stats (cycle counts, stall
// breakdown, model counters, cache stats) and identical architectural
// snapshots. This is the escape-hatch contract: -skip=off must be purely a
// performance knob, never a semantics knob.
func TestSkipOffEquivalence(t *testing.T) {
	for _, model := range goldenModels {
		for _, kernel := range goldenKernels {
			model, kernel := model, kernel
			t.Run(string(model)+"/"+kernel, func(t *testing.T) {
				t.Parallel()
				w, ok := workload.ByName(kernel)
				if !ok {
					t.Fatalf("unknown kernel %q", kernel)
				}
				pr, err := Prepare(w, goldenScale)
				if err != nil {
					t.Fatal(err)
				}
				ctx := context.Background()
				on, err := pr.RunOpts(ctx, model, sim.ModelOptions{Hier: mem.BaseConfig()})
				if err != nil {
					t.Fatal(err)
				}
				off, err := pr.RunOpts(ctx, model, sim.ModelOptions{Hier: mem.BaseConfig(), DisableSkip: true})
				if err != nil {
					t.Fatal(err)
				}
				if on.Stats != off.Stats {
					t.Errorf("stats differ between skip on and off:\n  on: %+v\n off: %+v", on.Stats, off.Stats)
				}
				sOn, sOff := on.Snapshot(), off.Snapshot()
				if !sOn.Equal(sOff) {
					t.Errorf("snapshots differ between skip on and off: %v", sOn.Diff(sOff, 8))
				}
			})
		}
	}
}

// TestCancellationDuringSkip: a deadline expiring mid-run is honored promptly
// with fast-forwarding enabled on a stall-dominated workload — the worst case
// for cancellation latency, since most simulated time passes inside jumps. A
// jump never crosses a context-poll boundary, so the wall-clock bound is the
// same as the ticking path's.
func TestCancellationDuringSkip(t *testing.T) {
	w, _ := workload.ByName("mcf")
	p, image, err := workload.Program(w, 8, compile.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, disable := range []bool{false, true} {
		for _, name := range []string{"inorder", "multipass", "runahead", "ooo", "cgooo"} {
			m, err := sim.NewMachine(name, sim.ModelOptions{Hier: mem.BaseConfig(), DisableSkip: disable})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
			start := time.Now()
			_, err = m.Run(ctx, p, image)
			cancel()
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Errorf("%s (DisableSkip=%v): err = %v, want context.DeadlineExceeded", name, disable, err)
			}
			if el := time.Since(start); el > 5*time.Second {
				t.Errorf("%s (DisableSkip=%v): took %v to honor the deadline", name, disable, el)
			}
		}
	}
}
