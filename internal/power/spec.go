// Package power provides microarchitectural power models adapted from
// Wattch (Brooks et al., ISCA 2000) at the level of detail the paper's §4
// uses them: parameterized array and CAM energy models whose power scales
// with entries, width, and port count, evaluated for a 100nm process at
// Vdd = 1.2V and f = 2GHz, and combined with simulator activity counts
// through Wattch's linear clock-gating model to produce the peak and
// average power ratios of Table 1.
//
// As in the paper, the absolute watt values are "only meant to illustrate
// the degree of disparity between out-of-order and multipass structures,
// and not to represent the power consumption of any physical
// implementation" — the reproduced quantities are the ratios.
package power

import "math"

// Technology parameters (100nm-class, paper §4).
const (
	Vdd  = 1.2   // volts
	Freq = 2.0e9 // hertz

	// Per-unit capacitances in farads; calibrated so that structure
	// energies land in the right relative regime. The model is linear in
	// these constants, so ratios depend only on geometry.
	cDecode    = 0.4e-15  // decoder cap per row-address bit, per row driven
	cWordline  = 1.0e-15  // wordline cap per cell passed, per unit cell width
	cBitline   = 1.0e-15  // bitline cap per cell on the column, per unit cell height
	cSenseAmp  = 4.0e-15  // sense amplifier cap per bit read
	cCAMDrive  = 5.0e-15  // taglines driven across all entries, per tag bit
	cCAMMatch  = 10.0e-15 // matchline evaluation, per entry per tag bit
	cPortPitch = 0.30     // cell width/height growth per extra port
)

// ClockGateIdleFraction is Wattch's linear clock-gating floor: an idle
// structure still burns this fraction of its peak power.
const ClockGateIdleFraction = 0.10

// ArraySpec describes one storage structure.
type ArraySpec struct {
	Name    string
	Entries int
	Bits    int // payload width per entry
	// Narrow (single-entry) ports.
	ReadPorts  int
	WritePorts int
	// Wide ports move WideWidth entries per access (e.g. an issue-width
	// read of the instruction queue).
	WideReadPorts  int
	WideWritePorts int
	WideWidth      int
	// Banks splits the rows into independently accessed banks, shortening
	// bitlines.
	Banks int
	// CAM structures match TagBits across every entry on each search
	// (read); their reads are searches.
	CAM     bool
	TagBits int
	// Count replicates the structure: Count identical copies, as in the
	// per-window schedulers of a clustered machine. Energies stay per copy;
	// PeakPower and AvgPower return totals across all copies, with Activity
	// rates interpreted per copy. Zero means one copy.
	Count int
}

func (s ArraySpec) copies() float64 {
	if s.Count < 1 {
		return 1
	}
	return float64(s.Count)
}

func (s ArraySpec) banks() int {
	if s.Banks < 1 {
		return 1
	}
	return s.Banks
}

func (s ArraySpec) totalPorts() int {
	return s.ReadPorts + s.WritePorts + s.WideReadPorts + s.WideWritePorts
}

// cellScale returns the cell area growth factor from multi-porting.
func (s ArraySpec) cellScale() float64 {
	p := s.totalPorts()
	if p < 1 {
		p = 1
	}
	return 1 + cPortPitch*float64(p-1)
}

// rowsPerBank is the bitline length in cells.
func (s ArraySpec) rowsPerBank() float64 {
	return float64(s.Entries) / float64(s.banks())
}

// ReadEnergy returns the energy in joules of one narrow read access.
func (s ArraySpec) ReadEnergy() float64 {
	if s.CAM {
		return s.searchEnergy()
	}
	return s.accessEnergy(float64(s.Bits), true)
}

// WriteEnergy returns the energy in joules of one narrow write access.
func (s ArraySpec) WriteEnergy() float64 {
	if s.CAM {
		// CAM writes behave like RAM writes of tag+payload.
		return s.accessEnergy(float64(s.Bits+s.TagBits), false)
	}
	return s.accessEnergy(float64(s.Bits), false)
}

// WideReadEnergy returns the energy of one wide read (WideWidth entries).
func (s ArraySpec) WideReadEnergy() float64 {
	return s.accessEnergy(float64(s.Bits*s.wideWidth()), true)
}

// WideWriteEnergy returns the energy of one wide write.
func (s ArraySpec) WideWriteEnergy() float64 {
	return s.accessEnergy(float64(s.Bits*s.wideWidth()), false)
}

func (s ArraySpec) wideWidth() int {
	if s.WideWidth < 1 {
		return 1
	}
	return s.WideWidth
}

// accessEnergy models one RAM port access moving `bits` bits:
// decode + wordline + bitline (+ senseamps on reads).
func (s ArraySpec) accessEnergy(bits float64, read bool) float64 {
	v2 := Vdd * Vdd
	rows := s.rowsPerBank()
	addrBits := math.Log2(math.Max(rows, 2))
	scale := s.cellScale()
	e := cDecode * addrBits * rows * v2 // predecode + row drivers
	e += cWordline * bits * scale * v2  // wordline across the row
	e += cBitline * rows * scale * bits * v2
	if read {
		e += cSenseAmp * bits * v2
	}
	return e
}

// searchEnergy models one CAM search: tag broadcast to every entry plus
// matchline evaluation, then a read of the matching entry.
func (s ArraySpec) searchEnergy() float64 {
	v2 := Vdd * Vdd
	n := float64(s.Entries)
	tb := float64(s.TagBits)
	scale := s.cellScale()
	e := cCAMDrive * tb * n * scale * v2
	e += cCAMMatch * n * tb * v2
	e += cSenseAmp * float64(s.Bits) * v2
	return e
}

// PeakPower returns the structure's power in watts with every port of every
// copy active every cycle.
func (s ArraySpec) PeakPower() float64 {
	perCycle := float64(s.ReadPorts)*s.ReadEnergy() +
		float64(s.WritePorts)*s.WriteEnergy() +
		float64(s.WideReadPorts)*s.WideReadEnergy() +
		float64(s.WideWritePorts)*s.WideWriteEnergy()
	return perCycle * Freq * s.copies()
}

// Activity is the observed per-cycle access rates of a structure.
type Activity struct {
	Reads      float64 // narrow reads (or CAM searches) per cycle
	Writes     float64
	WideReads  float64
	WideWrites float64
	// GatedOffFraction is the fraction of cycles the structure is clock
	// gated off entirely and pays no idle floor (paper §3.1.1: the
	// multipass structures are unused and gated during architectural
	// mode). Zero (the default) keeps the structure's clock running.
	GatedOffFraction float64
}

// clamp limits a rate to the available port count.
func clamp(rate float64, ports int) float64 {
	if rate < 0 {
		return 0
	}
	if rate > float64(ports) {
		return float64(ports)
	}
	return rate
}

// AvgPower returns the average power under Wattch's linear clock-gating
// model: the used fraction of each port's peak plus the idle floor, with
// the floor suppressed for the fraction of time the structure's clock is
// gated off entirely. Activity rates are per copy; the result sums over all
// Count copies (PeakPower already includes the multiplier).
func (s ArraySpec) AvgPower(a Activity) float64 {
	dynamic := clamp(a.Reads, s.ReadPorts)*s.ReadEnergy() +
		clamp(a.Writes, s.WritePorts)*s.WriteEnergy() +
		clamp(a.WideReads, s.WideReadPorts)*s.WideReadEnergy() +
		clamp(a.WideWrites, s.WideWritePorts)*s.WideWriteEnergy()
	gate := a.GatedOffFraction
	if gate < 0 {
		gate = 0
	}
	if gate > 1 {
		gate = 1
	}
	floor := ClockGateIdleFraction * s.PeakPower() * (1 - gate)
	return floor + (1-ClockGateIdleFraction)*dynamic*Freq*s.copies()
}
