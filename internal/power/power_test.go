package power

import (
	"testing"

	"multipass/internal/mem"
	"multipass/internal/sim"
)

func TestEnergyScalesWithGeometry(t *testing.T) {
	small := ArraySpec{Entries: 64, Bits: 32, ReadPorts: 2, WritePorts: 2}
	big := small
	big.Entries = 256
	if big.ReadEnergy() <= small.ReadEnergy() {
		t.Error("more entries should cost more energy")
	}
	wide := small
	wide.Bits = 64
	if wide.ReadEnergy() <= small.ReadEnergy() {
		t.Error("wider entries should cost more energy")
	}
	ported := small
	ported.ReadPorts = 8
	if ported.ReadEnergy() <= small.ReadEnergy() {
		t.Error("more ports should grow the cell and cost more per access")
	}
	if ported.PeakPower() <= small.PeakPower() {
		t.Error("more ports should raise peak power")
	}
}

func TestBankingReducesEnergy(t *testing.T) {
	flat := ArraySpec{Entries: 256, Bits: 32, ReadPorts: 2, WritePorts: 2}
	banked := flat
	banked.Banks = 2
	if banked.ReadEnergy() >= flat.ReadEnergy() {
		t.Error("banking should shorten bitlines and cut access energy")
	}
}

func TestCAMMoreExpensiveThanRAM(t *testing.T) {
	ram := ArraySpec{Entries: 48, Bits: 33, ReadPorts: 2, WritePorts: 2}
	cam := ram
	cam.CAM = true
	cam.TagBits = 32
	if cam.ReadEnergy() <= 2.5*ram.ReadEnergy() {
		t.Errorf("CAM search (%.3g J) should cost several times a RAM read (%.3g J)",
			cam.ReadEnergy(), ram.ReadEnergy())
	}
}

func TestAvgPowerBounds(t *testing.T) {
	s := OOOIssue()
	idle := s.AvgPower(Activity{})
	peak := s.PeakPower()
	if idle <= 0 || idle >= peak {
		t.Errorf("idle power %.3g out of (0, peak=%.3g)", idle, peak)
	}
	// Clock-gating floor.
	if idle < 0.99*ClockGateIdleFraction*peak || idle > 1.01*ClockGateIdleFraction*peak {
		t.Errorf("idle power %.3g, want ~%.3g", idle, ClockGateIdleFraction*peak)
	}
	// Saturating activity approaches peak.
	full := s.AvgPower(Activity{Reads: 100, Writes: 100, WideReads: 100, WideWrites: 100})
	if full > peak*1.001 || full < peak*0.99 {
		t.Errorf("saturated avg %.3g, want ~peak %.3g", full, peak)
	}
}

// fakeStats builds plausible run statistics for the activity mappings.
func fakeStats(mp bool) *sim.Stats {
	st := &sim.Stats{}
	st.Cycles = 1_000_000
	st.Retired = 1_500_000
	st.Cat[sim.StallExecution] = 500_000
	st.Cat[sim.StallLoad] = 400_000
	st.Cat[sim.StallFrontEnd] = 50_000
	st.Cat[sim.StallOther] = 50_000
	st.Memory = mem.HierStats{}
	st.Memory.L1D.Accesses = 400_000
	st.Memory.L1D.Misses = 40_000
	if mp {
		st.Memory.L1D.AdvanceAccesses = 120_000
		st.Memory.L1D.AdvanceMisses = 30_000
		st.Multipass.Merged = 300_000
		st.Multipass.AdvanceExecuted = 350_000
		st.Multipass.AdvanceCycles = 300_000
		st.Multipass.RallyCycles = 200_000
		st.Multipass.SpecLoads = 5_000
	}
	return st
}

func TestTable1Shape(t *testing.T) {
	rows := Table1(fakeStats(false), fakeStats(true))
	if len(rows) != 3 {
		t.Fatalf("Table1 rows = %d", len(rows))
	}
	// Row 1 (register storage): peak near parity (paper: 0.99), average
	// above 1 (paper: 1.20) because the SRF/RS are mostly clock-gated.
	r1 := rows[0]
	if r1.PeakRatio < 0.5 || r1.PeakRatio > 2.2 {
		t.Errorf("register peak ratio = %.2f, want near parity", r1.PeakRatio)
	}
	if r1.AvgRatio <= r1.PeakRatio*0.8 {
		t.Errorf("register avg ratio (%.2f) should exceed peak (%.2f) under clock gating",
			r1.AvgRatio, r1.PeakRatio)
	}
	// Row 2 (scheduling): large OOO advantage cost (paper: 10.28 / 7.15).
	r2 := rows[1]
	if r2.PeakRatio < 4 {
		t.Errorf("scheduling peak ratio = %.2f, want >> 1", r2.PeakRatio)
	}
	if r2.AvgRatio < 3 {
		t.Errorf("scheduling avg ratio = %.2f, want >> 1", r2.AvgRatio)
	}
	// Row 3 (memory ordering): OOO CAMs cost more despite fewer entries
	// (paper: 3.21 / 9.79).
	r3 := rows[2]
	if r3.PeakRatio <= 1 {
		t.Errorf("memory-ordering peak ratio = %.2f, want > 1", r3.PeakRatio)
	}
	if r3.AvgRatio <= 1 {
		t.Errorf("memory-ordering avg ratio = %.2f, want > 1", r3.AvgRatio)
	}
	// All powers positive.
	for _, r := range rows {
		if r.PeakOOO <= 0 || r.PeakMP <= 0 || r.AvgOOO <= 0 || r.AvgMP <= 0 {
			t.Errorf("non-positive power in row %q: %+v", r.Group, r)
		}
	}
}

func TestActivitiesCoverAllStructures(t *testing.T) {
	oact := OOOActivities(fakeStats(false))
	for _, s := range []ArraySpec{OOORegisterFile(), OOORegisterAliasTable(), OOOWakeup(), OOOIssue(), OOOLoadBuffer(), OOOStoreBuffer()} {
		if _, ok := oact[s.Name]; !ok {
			t.Errorf("no activity mapping for %s", s.Name)
		}
	}
	mact := MPActivities(fakeStats(true))
	for _, s := range []ArraySpec{MPArchRegisterFile(), MPSpecRegisterFile(), MPResultStore(), MPInstructionQueue(), MPSMAQ(), MPASC()} {
		if _, ok := mact[s.Name]; !ok {
			t.Errorf("no activity mapping for %s", s.Name)
		}
	}
}

func TestZeroCycleStatsSafe(t *testing.T) {
	rows := Table1(&sim.Stats{}, &sim.Stats{})
	for _, r := range rows {
		if r.PeakRatio <= 0 {
			t.Errorf("peak ratio must come from geometry even with no activity: %+v", r.Group)
		}
	}
}

func TestGatedOffSuppressesIdleFloor(t *testing.T) {
	s := MPASC()
	idle := s.AvgPower(Activity{})
	gated := s.AvgPower(Activity{GatedOffFraction: 1})
	if gated >= idle {
		t.Errorf("fully gated structure (%.3g W) not below idle floor (%.3g W)", gated, idle)
	}
	if gated != 0 {
		t.Errorf("fully gated idle structure burns %.3g W, want 0", gated)
	}
	half := s.AvgPower(Activity{GatedOffFraction: 0.5})
	if half <= gated || half >= idle {
		t.Errorf("half-gated power %.3g outside (0, %.3g)", half, idle)
	}
	// Out-of-range fractions clamp.
	if s.AvgPower(Activity{GatedOffFraction: 5}) != 0 {
		t.Error("over-range gate fraction not clamped")
	}
	if s.AvgPower(Activity{GatedOffFraction: -3}) != idle {
		t.Error("negative gate fraction not clamped")
	}
}
