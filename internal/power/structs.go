package power

// Structure geometries from paper §4 / Table 1. Data values are 32 bits
// plus a NaT bit; register identifiers after renaming are 9 bits; decoded
// instructions are 41 bits; the machine is 6-issue.
const (
	dataBits  = 33
	renameBit = 9
	instBits  = 41
	issueWide = 6
	addrBits  = 32
)

// OOO structures (left column of Table 1).

// OOORegisterFile is the combined architectural & renamed register file:
// 512 registers, 12R/8W ports.
func OOORegisterFile() ArraySpec {
	return ArraySpec{Name: "ooo-regfile", Entries: 512, Bits: dataBits, ReadPorts: 12, WritePorts: 8}
}

// OOORegisterAliasTable is the RAT: 256 entries, 9 bits, 12R/6W ports.
func OOORegisterAliasTable() ArraySpec {
	return ArraySpec{Name: "ooo-rat", Entries: 256, Bits: renameBit, ReadPorts: 12, WritePorts: 6}
}

// OOOWakeup is the wired-OR resource dependence matrix: 128 entries, 329
// bits. Each completing instruction broadcasts its renamed tag across every
// entry (a CAM-style search of the 9-bit tag over 128 entries); each
// renamed instruction writes its 329-bit dependence row.
func OOOWakeup() ArraySpec {
	return ArraySpec{Name: "ooo-wakeup", Entries: 128, Bits: 329, CAM: true, TagBits: renameBit,
		ReadPorts: issueWide, WritePorts: issueWide}
}

// OOOIssue is the issue table: 128 entries, 19 bits, 6R/6W ports.
func OOOIssue() ArraySpec {
	return ArraySpec{Name: "ooo-issue", Entries: 128, Bits: 19, ReadPorts: 6, WritePorts: 6}
}

// OOOLoadBuffer is the load-ordering CAM: 48 entries, 2R/2W ports.
func OOOLoadBuffer() ArraySpec {
	return ArraySpec{Name: "ooo-loadbuf", Entries: 48, Bits: dataBits, CAM: true, TagBits: addrBits,
		ReadPorts: 2, WritePorts: 2}
}

// OOOStoreBuffer is the store-ordering CAM: 32 entries, 2R/2W ports.
func OOOStoreBuffer() ArraySpec {
	return ArraySpec{Name: "ooo-storebuf", Entries: 32, Bits: dataBits, CAM: true, TagBits: addrBits,
		ReadPorts: 2, WritePorts: 2}
}

// Multipass structures (right column of Table 1).

// MPArchRegisterFile is the ARF: 256 registers, 12R/8W ports.
func MPArchRegisterFile() ArraySpec {
	return ArraySpec{Name: "mp-arf", Entries: 256, Bits: dataBits, ReadPorts: 12, WritePorts: 8}
}

// MPSpecRegisterFile is the SRF: 256 registers, 12R/8W ports (conservative:
// the paper notes the ports could be shared with the ARF).
func MPSpecRegisterFile() ArraySpec {
	return ArraySpec{Name: "mp-srf", Entries: 256, Bits: dataBits, ReadPorts: 12, WritePorts: 8}
}

// MPResultStore is the RS: 2-banked array, 256 entries, one wide-read, one
// wide-write, and two single-write ports.
func MPResultStore() ArraySpec {
	return ArraySpec{Name: "mp-rs", Entries: 256, Bits: dataBits, Banks: 2,
		WideReadPorts: 1, WideWritePorts: 1, WideWidth: issueWide, WritePorts: 2}
}

// MPInstructionQueue is the IQ: 2-banked array, 256 entries, one wide-read
// and one wide-write port.
func MPInstructionQueue() ArraySpec {
	return ArraySpec{Name: "mp-iq", Entries: 256, Bits: instBits, Banks: 2,
		WideReadPorts: 1, WideWritePorts: 1, WideWidth: issueWide}
}

// MPSMAQ is the speculative memory address queue: 2-banked array, 128
// entries, 2R/2W ports.
func MPSMAQ() ArraySpec {
	return ArraySpec{Name: "mp-smaq", Entries: 128, Bits: addrBits, Banks: 2,
		ReadPorts: 2, WritePorts: 2}
}

// MPASC is the advance store cache: a 2-way set-associative cache of 64
// entries with 2R/2W ports; an access reads one set (two ways of tag +
// data), far cheaper than a full CAM search.
func MPASC() ArraySpec {
	// Model: payload = 2 ways x (tag + data) read per access; the "entries"
	// seen by a port are the 32 sets.
	return ArraySpec{Name: "mp-asc", Entries: 32, Bits: 2 * (addrBits + dataBits),
		ReadPorts: 2, WritePorts: 2}
}
