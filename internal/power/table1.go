package power

import "multipass/internal/sim"

// Table1Row is one row block of paper Table 1: a group of out-of-order
// structures compared against the multipass structures serving the same
// purpose.
type Table1Row struct {
	Group string
	OOO   []ArraySpec
	MP    []ArraySpec

	PeakOOO, PeakMP float64 // watts
	AvgOOO, AvgMP   float64 // watts

	PeakRatio float64 // OOO/MP
	AvgRatio  float64
}

// rate converts an event count over a run into per-cycle activity.
func rate(events, cycles uint64) float64 {
	if cycles == 0 {
		return 0
	}
	return float64(events) / float64(cycles)
}

// OOOActivities derives per-structure access rates from an out-of-order
// run. The mappings are documented approximations: every retired
// instruction was renamed (RAT read/write, RF reads), issued (issue-table
// read/write, wakeup broadcast at completion), and wrote back with
// probability ~0.7 (the fraction of operations with destinations); every
// memory operation searches both ordering CAMs.
func OOOActivities(st *sim.Stats) map[string]Activity {
	c := st.Cycles
	ipc := rate(st.Retired, c)
	memRate := rate(st.Memory.L1D.Accesses, c)
	return map[string]Activity{
		"ooo-regfile":  {Reads: 2 * ipc, Writes: 0.7 * ipc},
		"ooo-rat":      {Reads: 2 * ipc, Writes: 0.7 * ipc},
		"ooo-wakeup":   {Reads: ipc, Writes: ipc},
		"ooo-issue":    {Reads: ipc, Writes: ipc},
		"ooo-loadbuf":  {Reads: memRate, Writes: memRate / 2},
		"ooo-storebuf": {Reads: memRate, Writes: memRate / 2},
	}
}

// MPActivities derives per-structure access rates from a multipass run.
// Architectural/rally instructions that execute read the ARF; merges write
// it without reading; advance instructions read and write the SRF; the RS
// is read wide once per rally/advance cycle and written by advance
// execution; the IQ is written at fetch and read wide when issuing; the
// SMAQ and ASC serve advance memory traffic.
func MPActivities(st *sim.Stats) map[string]Activity {
	c := st.Cycles
	mp := &st.Multipass
	executedArch := st.Retired - mp.Merged
	advExec := mp.AdvanceExecuted
	advMem := st.Memory.L1D.AdvanceAccesses
	activeCycles := st.Cat[sim.StallExecution]
	specCycles := mp.AdvanceCycles + mp.RallyCycles
	// The multipass-specific structures are clock gated off during
	// architectural mode (paper §3.1.1); only advance/rally cycles keep
	// their clocks running.
	gatedOff := 1 - rate(specCycles, c)
	advOnly := 1 - rate(mp.AdvanceCycles, c)
	return map[string]Activity{
		"mp-arf": {
			Reads:  2*rate(executedArch, c) + rate(advExec, c), // advance reads split ARF/SRF
			Writes: 0.7 * rate(st.Retired, c),
		},
		"mp-srf": {
			Reads:            rate(advExec, c),
			Writes:           0.7 * rate(advExec, c),
			GatedOffFraction: advOnly,
		},
		"mp-rs": {
			WideReads:        rate(specCycles, c),
			WideWrites:       rate(mp.AdvanceCycles, c),
			Writes:           rate(st.Memory.L1D.AdvanceMisses, c), // late-arriving fills
			GatedOffFraction: gatedOff,
		},
		"mp-iq": {
			WideReads:  rate(activeCycles, c),
			WideWrites: rate(st.Retired/uint64(issueWide)+1, c),
		},
		"mp-smaq": {
			Reads:            rate(mp.SpecLoads+mp.Merged/8, c),
			Writes:           rate(advMem, c),
			GatedOffFraction: gatedOff,
		},
		"mp-asc": {
			Reads:            rate(advMem, c),
			Writes:           rate(advMem/4, c),
			GatedOffFraction: advOnly,
		},
	}
}

// groupPower sums peak and average power over a structure group.
func groupPower(specs []ArraySpec, acts map[string]Activity) (peak, avg float64) {
	for _, s := range specs {
		peak += s.PeakPower()
		avg += s.AvgPower(acts[s.Name])
	}
	return peak, avg
}

// Table1 computes the paper's Table 1 from an out-of-order run and a
// multipass run of the same workload set.
func Table1(ooo, mp *sim.Stats) []Table1Row {
	oact := OOOActivities(ooo)
	mact := MPActivities(mp)

	rows := []Table1Row{
		{
			Group: "Register files & result store vs. rename",
			OOO:   []ArraySpec{OOORegisterFile(), OOORegisterAliasTable()},
			MP:    []ArraySpec{MPArchRegisterFile(), MPSpecRegisterFile(), MPResultStore()},
		},
		{
			Group: "Wakeup & issue vs. instruction queue",
			OOO:   []ArraySpec{OOOWakeup(), OOOIssue()},
			MP:    []ArraySpec{MPInstructionQueue()},
		},
		{
			Group: "Load/store buffers vs. SMAQ & ASC",
			OOO:   []ArraySpec{OOOLoadBuffer(), OOOStoreBuffer()},
			MP:    []ArraySpec{MPSMAQ(), MPASC()},
		},
	}
	for i := range rows {
		r := &rows[i]
		r.PeakOOO, r.AvgOOO = groupPower(r.OOO, oact)
		r.PeakMP, r.AvgMP = groupPower(r.MP, mact)
		if r.PeakMP > 0 {
			r.PeakRatio = r.PeakOOO / r.PeakMP
		}
		if r.AvgMP > 0 {
			r.AvgRatio = r.AvgOOO / r.AvgMP
		}
	}
	return rows
}
