package power

import (
	"testing"
	"testing/quick"
)

// Property: peak power is monotone in entries, width, and port count.
func TestPeakPowerMonotone(t *testing.T) {
	f := func(entriesRaw, bitsRaw, portsRaw uint8) bool {
		entries := 16 + int(entriesRaw)%512
		bits := 8 + int(bitsRaw)%64
		ports := 1 + int(portsRaw)%8
		base := ArraySpec{Entries: entries, Bits: bits, ReadPorts: ports, WritePorts: ports}
		more := base
		more.Entries *= 2
		wider := base
		wider.Bits *= 2
		ported := base
		ported.ReadPorts++
		return more.PeakPower() > base.PeakPower() &&
			wider.PeakPower() > base.PeakPower() &&
			ported.PeakPower() > base.PeakPower()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: average power is bounded by [idle floor, peak] for any activity.
func TestAvgPowerBounded(t *testing.T) {
	f := func(r, w float64, entriesRaw uint8) bool {
		if r < 0 {
			r = -r
		}
		if w < 0 {
			w = -w
		}
		s := ArraySpec{Entries: 32 + int(entriesRaw), Bits: 33, ReadPorts: 4, WritePorts: 4}
		avg := s.AvgPower(Activity{Reads: r, Writes: w})
		peak := s.PeakPower()
		floor := ClockGateIdleFraction * peak
		return avg >= floor*0.999 && avg <= peak*1.001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a CAM is always at least as expensive to search as the
// equivalent RAM is to read, for any geometry.
func TestCAMAlwaysAtLeastRAM(t *testing.T) {
	f := func(entriesRaw, bitsRaw uint8) bool {
		entries := 8 + int(entriesRaw)%256
		bits := 8 + int(bitsRaw)%64
		ram := ArraySpec{Entries: entries, Bits: bits, ReadPorts: 2, WritePorts: 2}
		cam := ram
		cam.CAM = true
		cam.TagBits = 32
		return cam.ReadEnergy() > ram.ReadEnergy()*0.8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
