package power

import "multipass/internal/sim"

// Five-way structure sets: the scheduling and bookkeeping storage each
// machine adds on top of the shared datapath (front end, FUs, caches), so
// the comparison isolates exactly the structures the models disagree about.
// The out-of-order and multipass sets reuse the Table 1 geometries; the
// additions below cover runahead and the CG-OoO block-window machine.

// cgWindows and cgWindowEntries mirror the cgooo model's default geometry:
// 8 block windows of 32 entries (internal/pipe/cgooo DefaultConfig).
const (
	cgWindows       = 8
	cgWindowEntries = 32
	cgWindowIssue   = 2
	// oooRealQueues mirrors ooo RealisticConfig: the 128-entry unified
	// window is replaced by 8 decentralized 16-entry scheduling queues.
	oooRealQueues    = 8
	oooRealQueueSize = 16
)

// CGRegisterFile is the shared physical register file of the block-window
// machine. Rename is still global, but issue is capped at 2 per window with
// 6-wide retire, so the read/write porting is cheaper than the unified
// machine's 12R/8W.
func CGRegisterFile() ArraySpec {
	return ArraySpec{Name: "cg-regfile", Entries: 512, Bits: dataBits, ReadPorts: 8, WritePorts: 6}
}

// CGRegisterAliasTable is the RAT; identical to the unified machine's, since
// blocks rename at the same per-instruction rate.
func CGRegisterAliasTable() ArraySpec {
	return ArraySpec{Name: "cg-rat", Entries: 256, Bits: renameBit, ReadPorts: 12, WritePorts: 6}
}

// CGWakeup is the per-window wakeup CAM: 8 copies of 32 entries instead of
// one 128-entry matrix. Each copy's dependence row spans only its own window
// (CG-OoO's energy argument: tag broadcast and matchlines scale with window
// entries, so 8 small CAMs searched at 2-wide beat one large CAM at 6-wide).
func CGWakeup() ArraySpec {
	return ArraySpec{Name: "cg-wakeup", Entries: cgWindowEntries, Bits: 83, CAM: true, TagBits: renameBit,
		ReadPorts: cgWindowIssue, WritePorts: cgWindowIssue, Count: cgWindows}
}

// CGIssue is the per-window select table: 8 copies of 32 entries, 2R/2W.
func CGIssue() ArraySpec {
	return ArraySpec{Name: "cg-issue", Entries: cgWindowEntries, Bits: 19,
		ReadPorts: cgWindowIssue, WritePorts: cgWindowIssue, Count: cgWindows}
}

// CGLoadBuffer and CGStoreBuffer are global (memory ordering crosses
// blocks), identical to the unified machine's.
func CGLoadBuffer() ArraySpec {
	s := OOOLoadBuffer()
	s.Name = "cg-loadbuf"
	return s
}

// CGStoreBuffer is the store-ordering CAM.
func CGStoreBuffer() ArraySpec {
	s := OOOStoreBuffer()
	s.Name = "cg-storebuf"
	return s
}

// OOORealWakeup is the decentralized wakeup of the §5.2 realistic machine:
// 8 queues of 16 entries replacing the 128-entry unified matrix.
func OOORealWakeup() ArraySpec {
	return ArraySpec{Name: "ooo-wakeup", Entries: oooRealQueueSize, Bits: 83, CAM: true, TagBits: renameBit,
		ReadPorts: issueWide, WritePorts: issueWide, Count: oooRealQueues}
}

// RACheckpointRF is runahead's architectural-state checkpoint: a shadow
// register file bulk-copied on episode entry and restored on exit, idle (and
// gated) the rest of the time.
func RACheckpointRF() ArraySpec {
	return ArraySpec{Name: "ra-ckpt", Entries: 256, Bits: dataBits, ReadPorts: 2, WritePorts: 2}
}

// RARunaheadCache holds speculative stores during an episode so runahead
// loads see them without touching memory: same small set-associative
// geometry as the multipass ASC.
func RARunaheadCache() ArraySpec {
	s := MPASC()
	s.Name = "ra-cache"
	return s
}

// RAInvalidBits tracks poisoned (invalid) registers during an episode: one
// bit per architectural register.
func RAInvalidBits() ArraySpec {
	return ArraySpec{Name: "ra-inv", Entries: 256, Bits: 1, ReadPorts: 4, WritePorts: 2}
}

// ModelStructures returns the comparison structure set for a registry model
// name, or nil for models outside the five-way comparison. The in-order
// baseline contributes its ARF so every machine's set includes the register
// storage its schedule reads.
func ModelStructures(model string) []ArraySpec {
	switch model {
	case "inorder":
		return []ArraySpec{MPArchRegisterFile()}
	case "multipass":
		return []ArraySpec{MPArchRegisterFile(), MPSpecRegisterFile(), MPResultStore(),
			MPInstructionQueue(), MPSMAQ(), MPASC()}
	case "runahead":
		return []ArraySpec{MPArchRegisterFile(), RACheckpointRF(), RARunaheadCache(), RAInvalidBits()}
	case "ooo":
		return []ArraySpec{OOORegisterFile(), OOORegisterAliasTable(), OOOWakeup(), OOOIssue(),
			OOOLoadBuffer(), OOOStoreBuffer()}
	case "ooo-realistic":
		return []ArraySpec{OOORegisterFile(), OOORegisterAliasTable(), OOORealWakeup(), OOOIssue(),
			OOOLoadBuffer(), OOOStoreBuffer()}
	case "cgooo":
		return []ArraySpec{CGRegisterFile(), CGRegisterAliasTable(), CGWakeup(), CGIssue(),
			CGLoadBuffer(), CGStoreBuffer()}
	}
	return nil
}

// ModelActivities derives per-structure access rates for a model run. The
// out-of-order and multipass mappings follow OOOActivities/MPActivities; the
// runahead and cgooo mappings are documented in place.
func ModelActivities(model string, st *sim.Stats) map[string]Activity {
	c := st.Cycles
	ipc := rate(st.Retired, c)
	memRate := rate(st.Memory.L1D.Accesses, c)
	switch model {
	case "inorder":
		return map[string]Activity{
			"mp-arf": {Reads: 2 * ipc, Writes: 0.7 * ipc},
		}
	case "multipass":
		return MPActivities(st)
	case "runahead":
		ra := &st.Runahead
		// Episode entry/exit bulk-copies the checkpoint; invalid bits are
		// consulted by every pre-executed instruction; the runahead cache
		// serves episode memory traffic (AdvanceAccesses counts it).
		raOff := 1 - rate(ra.Cycles, c)
		advMem := st.Memory.L1D.AdvanceAccesses
		return map[string]Activity{
			"mp-arf":   {Reads: 2 * ipc, Writes: 0.7 * ipc},
			"ra-ckpt":  {Reads: rate(ra.Episodes, c), Writes: rate(ra.Episodes, c), GatedOffFraction: raOff},
			"ra-cache": {Reads: rate(advMem, c), Writes: rate(advMem/4, c), GatedOffFraction: raOff},
			"ra-inv":   {Reads: 2 * rate(ra.PreExecuted, c), Writes: rate(ra.PreExecuted, c), GatedOffFraction: raOff},
		}
	case "ooo", "ooo-realistic":
		return OOOActivities(st)
	case "cgooo":
		// Per-copy rates: dispatch, issue and completion traffic spreads
		// across the live windows; empty windows are clock gated, so the
		// per-copy gated fraction is one minus the mean occupancy.
		perWin := func(r float64) float64 { return r / cgWindows }
		occ := rate(st.CGOOO.WindowOccCy, c) / cgWindows // mean fraction of windows live
		winOff := 1 - occ
		return map[string]Activity{
			"cg-regfile":  {Reads: 2 * ipc, Writes: 0.7 * ipc},
			"cg-rat":      {Reads: 2 * ipc, Writes: 0.7 * ipc},
			"cg-wakeup":   {Reads: perWin(ipc), Writes: perWin(ipc), GatedOffFraction: winOff},
			"cg-issue":    {Reads: perWin(ipc), Writes: perWin(ipc), GatedOffFraction: winOff},
			"cg-loadbuf":  {Reads: memRate, Writes: memRate / 2},
			"cg-storebuf": {Reads: memRate, Writes: memRate / 2},
		}
	}
	return nil
}

// ModelPower evaluates one model's comparison structure set against the
// activity of a run: total peak watts and Wattch-average watts.
func ModelPower(model string, st *sim.Stats) (peak, avg float64) {
	return groupPower(ModelStructures(model), ModelActivities(model, st))
}
