package power

import (
	"math"
	"testing"

	"multipass/internal/sim"
)

// TestCountMultiplier pins the replication semantics: N copies cost N times
// one copy at peak, and N times one copy on average when every copy sees the
// same per-copy activity.
func TestCountMultiplier(t *testing.T) {
	one := CGWakeup()
	one.Count = 1
	eight := CGWakeup()
	eight.Count = 8
	if got, want := eight.PeakPower(), 8*one.PeakPower(); math.Abs(got-want) > 1e-12 {
		t.Errorf("8-copy peak %.4g W, want 8x one copy = %.4g W", got, want)
	}
	act := Activity{Reads: 0.5, Writes: 0.5}
	if got, want := eight.AvgPower(act), 8*one.AvgPower(act); math.Abs(got-want) > 1e-12 {
		t.Errorf("8-copy avg %.4g W, want 8x one copy = %.4g W", got, want)
	}
	// Zero Count means one copy, so existing specs are unchanged.
	zero := CGWakeup()
	zero.Count = 0
	if zero.PeakPower() != one.PeakPower() {
		t.Error("Count 0 must behave as a single copy")
	}
	// Per-copy energies do not include the multiplier.
	if one.ReadEnergy() != eight.ReadEnergy() {
		t.Error("ReadEnergy must be per copy, independent of Count")
	}
}

// TestCGWakeupCheaperThanUnified is the CG-OoO energy argument in model
// form: 8 small per-window CAMs at 2-wide cost less — peak and per-search —
// than one 128-entry unified CAM at 6-wide.
func TestCGWakeupCheaperThanUnified(t *testing.T) {
	cg, unified := CGWakeup(), OOOWakeup()
	if cg.PeakPower() >= unified.PeakPower() {
		t.Errorf("clustered wakeup peak %.3g W not below unified %.3g W", cg.PeakPower(), unified.PeakPower())
	}
	if cg.ReadEnergy() >= unified.ReadEnergy() {
		t.Errorf("32-entry CAM search %.3g J not below 128-entry %.3g J", cg.ReadEnergy(), unified.ReadEnergy())
	}
}

// fiveWayModels are the registry names ModelStructures/ModelActivities serve.
var fiveWayModels = []string{"inorder", "multipass", "runahead", "ooo", "ooo-realistic", "cgooo"}

// TestModelActivitiesCoverModelStructures: for every five-way model, each
// structure has an activity mapping under its exact name, so no structure
// silently idles at the clock-gate floor because of a key typo.
func TestModelActivitiesCoverModelStructures(t *testing.T) {
	st := &sim.Stats{Cycles: 1000, Retired: 2500}
	st.Memory.L1D.Accesses = 700
	st.Memory.L1D.AdvanceAccesses = 120
	st.Runahead = sim.RunaheadStats{Episodes: 4, PreExecuted: 300, Cycles: 250}
	st.CGOOO = sim.CGOOOStats{Blocks: 200, WindowOccCy: 4000}
	for _, model := range fiveWayModels {
		specs := ModelStructures(model)
		if len(specs) == 0 {
			t.Errorf("%s: no structures", model)
			continue
		}
		acts := ModelActivities(model, st)
		for _, s := range specs {
			if _, ok := acts[s.Name]; !ok {
				t.Errorf("%s: no activity mapping for %s", model, s.Name)
			}
		}
		peak, avg := ModelPower(model, st)
		if peak <= 0 || avg <= 0 || avg > peak {
			t.Errorf("%s: implausible power peak %.3g avg %.3g", model, peak, avg)
		}
	}
	if ModelStructures("bogus") != nil || ModelActivities("bogus", st) != nil {
		t.Error("unknown model must return nil, not a partial set")
	}
}

// TestFiveWayPeakOrdering pins the headline structure-power relationships:
// the unified out-of-order machine has the highest peak, the block-window
// machine sits strictly below it, and the in-order baseline is lowest.
func TestFiveWayPeakOrdering(t *testing.T) {
	peak := func(m string) float64 {
		p, _ := ModelPower(m, &sim.Stats{Cycles: 1, Retired: 1})
		return p
	}
	if !(peak("cgooo") < peak("ooo")) {
		t.Errorf("cgooo peak %.3g W not below ooo %.3g W", peak("cgooo"), peak("ooo"))
	}
	for _, m := range []string{"multipass", "runahead", "ooo", "ooo-realistic", "cgooo"} {
		if !(peak("inorder") < peak(m)) {
			t.Errorf("inorder peak %.3g W not below %s %.3g W", peak("inorder"), m, peak(m))
		}
	}
}
