package xcheck

import (
	"context"
	"testing"

	"multipass/internal/xcheck/progen"
)

// FuzzCrossModel drives the differential checker from the native fuzzer:
// each input is a generator seed, and any architectural divergence or
// invariant violation between the oracle and the five models fails the run
// with an assemblable repro. Without -fuzz this replays the seed corpus
// below, keeping `go test` fast; with -fuzz it explores seeds indefinitely:
//
//	go test ./internal/xcheck -fuzz=FuzzCrossModel -fuzztime=2m
func FuzzCrossModel(f *testing.F) {
	for _, seed := range []uint64{1, 7, 42, 1337, 99991} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		// Smaller programs than the default template: fuzzing throughput
		// matters more than per-program coverage here.
		opts := Options{Gen: progen.Options{
			Segments:   5,
			MaxTrip:    6,
			ChainNodes: 24,
			Compile:    seed%3 == 2,
		}}
		rep, err := CheckSeed(context.Background(), seed, opts)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Failed() {
			rep = ShrinkReport(context.Background(), rep, opts)
			t.Fatalf("seed %d diverged:\n%s", seed, ReproText(rep))
		}
	})
}
