package xcheck

import (
	"context"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"multipass/internal/isa"
	"multipass/internal/sim"
)

// testRegistry returns a private registry holding the canonical models plus
// the deliberately broken one, so tests never mutate sim.DefaultRegistry.
func testRegistry(t *testing.T) *sim.Registry {
	t.Helper()
	r := sim.NewRegistry()
	for _, name := range CanonicalModels {
		f, ok := sim.Lookup(name)
		if !ok {
			t.Fatalf("model %q not registered", name)
		}
		r.Register(name, f)
	}
	RegisterBuggy(r)
	return r
}

// TestCrossModelSeeds is the deterministic slice of the differential check
// that runs in every `go test ./...`: a few dozen seeds, all canonical models.
func TestCrossModelSeeds(t *testing.T) {
	n := 40
	if testing.Short() {
		n = 10
	}
	sum, err := Run(context.Background(), n, 1, Options{}, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range sum.Failed {
		for _, f := range rep.Failures {
			t.Errorf("seed %d: %s", rep.Seed, f)
		}
	}
	if sum.Checked != n {
		t.Errorf("checked %d seeds, want %d", sum.Checked, n)
	}
}

// TestSeededBugCaughtAndShrunk injects the deliberately broken model
// (predicated stores dropped) and asserts the checker catches it and the
// shrinker reduces some repro to at most 3 issue groups.
func TestSeededBugCaughtAndShrunk(t *testing.T) {
	opts := Options{
		Registry: testRegistry(t),
		Models:   append(append([]string(nil), CanonicalModels...), BuggyModelName),
	}
	// Shrinking re-checks candidates on every deletion attempt; doing that
	// against the buggy model alone keeps the test fast without weakening
	// it (the failure being preserved is buggy-vs-oracle state).
	shrinkOpts := Options{Registry: opts.Registry, Models: []string{BuggyModelName}}
	ctx := context.Background()
	caught, best := 0, 1<<30
	for seed := uint64(1); seed <= 20 && caught < 2; seed++ {
		rep, err := CheckSeed(ctx, seed, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Failed() {
			continue
		}
		caught++
		for _, f := range rep.Failures {
			if f.Model != BuggyModelName {
				t.Fatalf("seed %d: unexpected failure in real model: %s", seed, f)
			}
			if f.Kind != FailState {
				t.Fatalf("seed %d: want state divergence, got %s", seed, f)
			}
		}
		small := ShrinkReport(ctx, rep, shrinkOpts)
		if !small.Failed() {
			t.Fatalf("seed %d: shrinking lost the failure", seed)
		}
		if g := len(Groups(small.Program)); g < best {
			best = g
		}
		// The repro must reassemble.
		if _, err := isa.Assemble(ReproText(small)); err != nil {
			t.Fatalf("seed %d: repro does not reassemble: %v", seed, err)
		}
	}
	if caught == 0 {
		t.Fatal("buggy model never caught over 20 seeds")
	}
	if best > 3 {
		t.Errorf("best shrunk repro has %d issue groups, want <= 3", best)
	}
}

// TestCorpusReplay reruns every committed corpus program through the full
// check: the corpus pins previously-interesting programs (and, when a model
// bug is found and fixed, its shrunken repro) as deterministic regressions.
func TestCorpusReplay(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "corpus", "*.asm"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("empty corpus: testdata/corpus should hold committed .asm programs")
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			p, err := isa.Assemble(string(src))
			if err != nil {
				t.Fatalf("assemble: %v", err)
			}
			rep, err := CheckProgram(context.Background(), p, Options{})
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range rep.Failures {
				t.Errorf("%s", f)
			}
		})
	}
}

// TestShrinkPreservesOracleBehavior checks the shrinker's candidate filter:
// whatever it returns still assembles, validates, and halts.
func TestShrinkKeepsValidPrograms(t *testing.T) {
	opts := Options{
		Registry: testRegistry(t),
		Models:   []string{BuggyModelName},
	}
	ctx := context.Background()
	for seed := uint64(1); seed <= 12; seed++ {
		rep, err := CheckSeed(ctx, seed, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Failed() {
			continue
		}
		small := ShrinkReport(ctx, rep, opts)
		if err := small.Program.Validate(); err != nil {
			t.Fatalf("seed %d: shrunk program invalid: %v", seed, err)
		}
		if len(small.Program.Insts) > len(rep.Program.Insts) {
			t.Fatalf("seed %d: shrinking grew the program", seed)
		}
		if !halts(small.Program, 4_000_000) {
			t.Fatalf("seed %d: shrunk program does not halt", seed)
		}
		return
	}
	t.Skip("no failing seed in range (generator changed?)")
}

// TestUnknownModelRejected pins the fail-fast contract for bad -models input:
// every unknown name is rejected up front — before any program is generated
// or the oracle runs — with an error naming the offender and listing the
// registered models as the hint. A typo like "cgoo" must not start a
// 500-seed run that dies at seed 1.
func TestUnknownModelRejected(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		name    string
		models  []string
		wantBad string // "" means the list must be accepted
	}{
		{"typo", []string{"cgoo"}, "cgoo"},
		{"typo after valid names", []string{"inorder", "ooo", "oooo"}, "oooo"},
		{"whitespace not trimmed upstream", []string{" ooo"}, " ooo"},
		{"empty name", []string{""}, ""},
		{"all canonical", CanonicalModels, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Run(ctx, 1, 1, Options{Models: tc.models}, false, nil)
			if tc.wantBad == "" && tc.name != "empty name" {
				if err != nil {
					t.Fatalf("valid models rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Run accepted unknown model in %v", tc.models)
			}
			if !strings.Contains(err.Error(), strconv.Quote(tc.wantBad)) {
				t.Errorf("error %q does not name the offending model %q", err, tc.wantBad)
			}
			if !strings.Contains(err.Error(), "registered:") {
				t.Errorf("error %q lacks the registered-models hint", err)
			}
			// CheckProgram must enforce the same contract for direct callers.
			p, perr := isa.Assemble("\thalt\n")
			if perr != nil {
				t.Fatal(perr)
			}
			if _, err := CheckProgram(ctx, p, Options{Models: tc.models}); err == nil {
				t.Errorf("CheckProgram accepted unknown model in %v", tc.models)
			}
		})
	}
}

// TestFailureString pins the human-readable failure format used in repro
// headers and cmd/xcheck output.
func TestFailureString(t *testing.T) {
	f := Failure{Model: "ooo", Kind: FailState, Detail: "r5: 0x1 vs 0x2"}
	if got := f.String(); !strings.Contains(got, "ooo") || !strings.Contains(got, "state") {
		t.Errorf("unexpected failure format %q", got)
	}
}
