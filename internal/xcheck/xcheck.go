// Package xcheck is the cross-model differential checker: it machine-
// generates adversarial EPIC programs (progen), runs each through the
// architectural interpreter as oracle plus every timing model under test,
// and asserts that the models are functionally equivalent to the oracle —
// byte-identical final register file (values and NaT bits), touched memory,
// and retired-instruction count — and that their timing obeys the paper's
// ordering invariants. Failing programs are minimized by a greedy
// issue-group shrinker (shrink.go) into assemblable repros.
//
// The paper's evaluation (§5) compares machines purely on cycle counts; that
// comparison is meaningful only if all machines compute the same result.
// xcheck turns that premise into an enforced invariant.
package xcheck

import (
	"context"
	"fmt"
	"strings"

	"multipass/internal/arch"
	"multipass/internal/isa"
	"multipass/internal/mem"
	"multipass/internal/sim"
	"multipass/internal/xcheck/progen"

	// Link the timing models into the default registry.
	_ "multipass/internal/core"
	_ "multipass/internal/pipe/cgooo"
	_ "multipass/internal/pipe/inorder"
	_ "multipass/internal/pipe/ooo"
	_ "multipass/internal/pipe/runahead"
)

// CanonicalModels are the machines of the evaluation — the paper's five plus
// the CG-OoO block-granularity point — checked by default.
var CanonicalModels = []string{"inorder", "multipass", "runahead", "ooo", "ooo-realistic", "cgooo"}

// orderPairs are the cycle-count orderings asserted (within orderSlack) when
// both models of a pair ran: a more aggressive machine does not need
// meaningfully more cycles than a less aggressive one on the same program.
//
//	ooo ≤ ooo-realistic, multipass, runahead, inorder, cgooo
//	ooo-realistic, multipass, runahead ≤ inorder
//	ooo-realistic ≤ cgooo
//
// Multipass vs runahead is NOT asserted: the paper's claim (§5.4) is about
// averages, and on individual programs either can win depending on how much
// pre-executed work survives the episode (measured both ways on generated
// programs). cgooo vs multipass, runahead and inorder is likewise not
// asserted: cgooo hides memory latency those machines cannot, but its deeper
// front end (11-cycle redirect vs the in-order pipes' 8) loses more per
// mispredict, and the branchy generated programs run the pairs both ways by
// up to ~31% (measured over 160 seeds in both directions). ooo ≤ cgooo and
// ooo-realistic ≤ cgooo hold because cgooo only constrains the unified-window
// schedule (in-order block dispatch, 2-wide per-window issue); worst measured
// legitimate inversions are 1 cycle and 80 cycles (3.0%) respectively.
var orderPairs = [][2]string{
	{"ooo", "ooo-realistic"},
	{"ooo", "multipass"},
	{"ooo", "runahead"},
	{"ooo", "inorder"},
	{"ooo", "cgooo"},
	{"ooo-realistic", "inorder"},
	{"ooo-realistic", "cgooo"},
	{"multipass", "inorder"},
	{"runahead", "inorder"},
}

// orderSlack is the tolerance for a cycle-ordering pair: the "faster" model
// may exceed the "slower" one by up to max(orderSlackAbs, slow/8) cycles
// before it counts as a violation. Cycle ordering between these machines is
// an asymptotic property; on generated programs of a few thousand cycles,
// constant front-end effects (pipeline fill and drain, the 8-cycle
// misprediction penalty, compulsory L1I misses at 145-cycle memory latency)
// dominate and legitimately run either way. Measured worst legitimate
// margins over the first 120 seeds are 7.4% relative and 206 cycles
// absolute; real ordering bugs (a model losing its latency-hiding machinery)
// show up as 2x and larger. See EXPERIMENTS.md "Cross-model validation".
func orderSlack(slow uint64) uint64 {
	const orderSlackAbs = 512
	if rel := slow / 8; rel > orderSlackAbs {
		return rel
	}
	return orderSlackAbs
}

// zeroAdvanceSlack is the tolerance for the "multipass that never entered
// advance mode behaves like the in-order baseline" invariant. The two
// machines share issue semantics but not configuration (the multipass
// instruction queue is 256 entries vs the baseline's 24-entry buffer, and
// the multipass front end regroups at stop bits), which measures at up to
// 2.5% cycle difference on generated programs with zero advance entries.
func zeroAdvanceSlack(inorder uint64) uint64 {
	const abs = 64
	if rel := inorder / 16; rel > abs {
		return rel
	}
	return abs
}

func absDiff(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return b - a
}

// Options configures a check run.
type Options struct {
	// Models are the registry names to check. Nil means CanonicalModels.
	Models []string
	// Hier is the cache hierarchy. The zero value means mem.BaseConfig().
	Hier mem.HierConfig
	// Registry resolves model names. Nil means sim.DefaultRegistry.
	Registry *sim.Registry
	// MaxInsts bounds the oracle run and each model run. Zero means 4M,
	// far above any generated program's dynamic length.
	MaxInsts uint64
	// Gen is the generation template; the per-program seed overrides
	// Gen.Seed. The zero value means progen.ForSeed defaults.
	Gen progen.Options
	// DisableSkip turns off idle-cycle fast-forwarding in every model run.
	DisableSkip bool
	// SkipDiff additionally runs every model a second time with
	// fast-forwarding disabled and reports any divergence in stats or final
	// architectural state as a FailSkip failure. It validates the skip
	// machinery itself, so the primary run is always skip-on regardless of
	// DisableSkip.
	SkipDiff bool
	// StepwiseOracle selects the step-wise reference interpreter as the
	// oracle instead of the default superblock interpreter. The two are
	// proven byte-identical by TestInterpDifferential; this switch exists so
	// a suspected interpreter bug can be bisected against the independent
	// baseline without rebuilding.
	StepwiseOracle bool
}

func (o Options) withDefaults() Options {
	if o.Models == nil {
		o.Models = CanonicalModels
	}
	if o.Hier == (mem.HierConfig{}) {
		o.Hier = mem.BaseConfig()
	}
	if o.Registry == nil {
		o.Registry = sim.DefaultRegistry
	}
	if o.MaxInsts == 0 {
		o.MaxInsts = 4_000_000
	}
	return o
}

// validateModels rejects unknown model names before any program generation or
// simulation happens, so a typo in -models fails immediately with the
// registry's did-you-mean hint instead of surfacing mid-run after the oracle
// has already executed the first seed. Call only after withDefaults.
func (o Options) validateModels() error {
	for _, name := range o.Models {
		if _, ok := o.Registry.Lookup(name); !ok {
			return fmt.Errorf("xcheck: unknown model %q (registered: %v)", name, o.Registry.Names())
		}
	}
	return nil
}

func (o Options) genFor(seed uint64) progen.Options {
	if o.Gen == (progen.Options{}) {
		return progen.ForSeed(seed)
	}
	g := o.Gen
	g.Seed = seed
	return g
}

// FailureKind classifies one detected disagreement.
type FailureKind string

const (
	// FailError: the model returned an error the oracle did not.
	FailError FailureKind = "error"
	// FailState: the model's final architectural snapshot (registers, NaT
	// bits, memory, retired count) differs from the oracle's.
	FailState FailureKind = "state"
	// FailInvariant: a timing invariant was violated (cycle ordering,
	// cycles vs retired/width, stats consistency, zero-advance equality).
	FailInvariant FailureKind = "invariant"
	// FailSkip: the skip-on and skip-off runs of the same model diverged in
	// stats or final state (idle-cycle fast-forwarding is not cycle-exact).
	FailSkip FailureKind = "skip-differential"
)

// Failure is one disagreement between a model and the oracle (or between
// models, for ordering invariants).
type Failure struct {
	Model  string
	Kind   FailureKind
	Detail string
}

func (f Failure) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Model, f.Kind, f.Detail)
}

// Report is the outcome of checking one program.
type Report struct {
	Seed     uint64
	Program  *isa.Program
	Failures []Failure
	// Cycles maps each model that completed to its cycle count.
	Cycles map[string]uint64
}

// Failed reports whether any check failed.
func (r *Report) Failed() bool { return len(r.Failures) > 0 }

// CheckProgram runs p through the oracle and every configured model and
// returns the detected failures. The returned error reports harness
// problems only (the oracle itself could not run the program); model
// misbehavior is a Failure, not an error.
func CheckProgram(ctx context.Context, p *isa.Program, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	if err := opts.validateModels(); err != nil {
		return nil, err
	}
	rep := &Report{Program: p, Cycles: make(map[string]uint64)}

	oracleMem := arch.NewMemory()
	oracle := arch.Run
	if opts.StepwiseOracle {
		oracle = arch.RunStepwise
	}
	ores, err := oracle(p, oracleMem, opts.MaxInsts)
	if err != nil {
		return nil, fmt.Errorf("xcheck: oracle: %w", err)
	}
	want := &sim.Snapshot{RF: ores.State.RF, Mem: oracleMem, Retired: ores.State.Retired}

	width := uint64(sim.Default().FetchWidth)
	image := arch.NewMemory()
	mp := make(map[string]*sim.Stats)
	for _, name := range opts.Models {
		mo := sim.ModelOptions{Hier: opts.Hier, MaxInsts: opts.MaxInsts, DisableSkip: opts.DisableSkip}
		if opts.SkipDiff {
			mo.DisableSkip = false
		}
		m, err := opts.Registry.New(name, mo)
		if err != nil {
			return nil, fmt.Errorf("xcheck: %w", err)
		}
		res, err := m.Run(ctx, p, image)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			rep.Failures = append(rep.Failures, Failure{name, FailError, err.Error()})
			continue
		}
		st := res.Stats
		rep.Cycles[name] = st.Cycles
		mp[name] = &st

		if opts.SkipDiff {
			mo.DisableSkip = true
			m2, err := opts.Registry.New(name, mo)
			if err != nil {
				return nil, fmt.Errorf("xcheck: %w", err)
			}
			res2, err := m2.Run(ctx, p, image)
			switch {
			case err != nil:
				if ctx.Err() != nil {
					return nil, ctx.Err()
				}
				rep.Failures = append(rep.Failures, Failure{
					name, FailSkip, "skip-off run errored: " + err.Error(),
				})
			case res2.Stats != st:
				rep.Failures = append(rep.Failures, Failure{
					name, FailSkip,
					fmt.Sprintf("stats diverged: skip-on cycles %d cat %v, skip-off cycles %d cat %v",
						st.Cycles, st.Cat, res2.Stats.Cycles, res2.Stats.Cat),
				})
			default:
				if s2 := res2.Snapshot(); !s2.Equal(res.Snapshot()) {
					rep.Failures = append(rep.Failures, Failure{
						name, FailSkip,
						"final state diverged: " + strings.Join(res.Snapshot().Diff(s2, 8), "; "),
					})
				}
			}
		}

		if got := res.Snapshot(); !got.Equal(want) {
			rep.Failures = append(rep.Failures, Failure{
				name, FailState,
				"model vs oracle: " + strings.Join(got.Diff(want, 8), "; "),
			})
		}
		if err := st.CheckConsistency(); err != nil {
			rep.Failures = append(rep.Failures, Failure{name, FailInvariant, err.Error()})
		}
		if st.Cycles*width < st.Retired {
			rep.Failures = append(rep.Failures, Failure{
				name, FailInvariant,
				fmt.Sprintf("cycles %d < retired %d / width %d", st.Cycles, st.Retired, width),
			})
		}
	}

	for _, pair := range orderPairs {
		fast, ok1 := rep.Cycles[pair[0]]
		slow, ok2 := rep.Cycles[pair[1]]
		if ok1 && ok2 && fast > slow+orderSlack(slow) {
			rep.Failures = append(rep.Failures, Failure{
				pair[0], FailInvariant,
				fmt.Sprintf("cycle ordering: %s %d > %s %d (+slack %d)",
					pair[0], fast, pair[1], slow, orderSlack(slow)),
			})
		}
	}
	// A multipass run that never entered advance mode did the same work as
	// the in-order baseline, so its cycle count must match up to the
	// configuration differences (queue size, stop-bit regrouping).
	if ms, ok := mp["multipass"]; ok {
		if io, ok2 := rep.Cycles["inorder"]; ok2 && ms.Multipass.AdvanceEntries == 0 &&
			absDiff(ms.Cycles, io) > zeroAdvanceSlack(io) {
			rep.Failures = append(rep.Failures, Failure{
				"multipass", FailInvariant,
				fmt.Sprintf("zero advance entries but cycles %d vs inorder %d (slack %d)",
					ms.Cycles, io, zeroAdvanceSlack(io)),
			})
		}
	}
	return rep, nil
}

// CheckSeed generates the program for one seed and checks it.
func CheckSeed(ctx context.Context, seed uint64, opts Options) (*Report, error) {
	p, err := progen.Generate(opts.genFor(seed))
	if err != nil {
		return nil, err
	}
	rep, err := CheckProgram(ctx, p, opts)
	if err != nil {
		return nil, fmt.Errorf("seed %d: %w", seed, err)
	}
	rep.Seed = seed
	return rep, nil
}

// Summary is the outcome of a multi-seed run.
type Summary struct {
	Checked int
	// Failed holds the reports of failing seeds, shrunk if requested.
	Failed []*Report
}

// maxFailures caps how many failing seeds a Run keeps (and shrinks); beyond
// this the run stops early, since more repros of the same bug add nothing.
const maxFailures = 5

// Run checks n consecutive seeds starting at seed0. If shrink is true,
// failing programs are minimized before being reported. progress, when
// non-nil, is called after every seed.
func Run(ctx context.Context, n int, seed0 uint64, opts Options, shrink bool, progress func(done int, rep *Report)) (*Summary, error) {
	opts = opts.withDefaults()
	if err := opts.validateModels(); err != nil {
		return nil, err
	}
	sum := &Summary{}
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rep, err := CheckSeed(ctx, seed0+uint64(i), opts)
		if err != nil {
			return nil, err
		}
		sum.Checked++
		if rep.Failed() {
			if shrink {
				rep = ShrinkReport(ctx, rep, opts)
			}
			sum.Failed = append(sum.Failed, rep)
		}
		if progress != nil {
			progress(i+1, rep)
		}
		if len(sum.Failed) >= maxFailures {
			break
		}
	}
	return sum, nil
}

// ReproText renders a failing report as an assemblable corpus entry: the
// failure summary as comments, then the program source.
func ReproText(rep *Report) string {
	var hdr strings.Builder
	fmt.Fprintf(&hdr, "xcheck repro, seed %d, %d issue groups\n", rep.Seed, len(Groups(rep.Program)))
	for _, f := range rep.Failures {
		fmt.Fprintf(&hdr, "failure: %s\n", f)
	}
	return progen.Format(rep.Program, hdr.String())
}
