package progen

import (
	"testing"

	"multipass/internal/arch"
	"multipass/internal/isa"
)

// budget bounds the oracle run of any generated program; termination by
// construction should land far below it.
const budget = 2_000_000

func TestDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		a := MustGenerate(ForSeed(seed))
		b := MustGenerate(ForSeed(seed))
		if len(a.Insts) != len(b.Insts) {
			t.Fatalf("seed %d: lengths differ: %d vs %d", seed, len(a.Insts), len(b.Insts))
		}
		for i := range a.Insts {
			if a.Insts[i] != b.Insts[i] {
				t.Fatalf("seed %d: inst %d differs: %v vs %v", seed, i, a.Insts[i], b.Insts[i])
			}
		}
	}
}

func TestTerminatesAndValid(t *testing.T) {
	for seed := uint64(0); seed < 40; seed++ {
		p, err := Generate(ForSeed(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: invalid program: %v", seed, err)
		}
		res, err := arch.Run(p, arch.NewMemory(), budget)
		if err != nil {
			t.Fatalf("seed %d: oracle run: %v", seed, err)
		}
		if !res.State.Halted {
			t.Fatalf("seed %d: did not halt", seed)
		}
	}
}

// TestFormatRoundTrip checks Format's output reassembles to an equivalent
// program: same final architectural state under the oracle.
func TestFormatRoundTrip(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		p := MustGenerate(ForSeed(seed))
		src := Format(p, "progen round-trip test\nseed test")
		q, err := isa.Assemble(src)
		if err != nil {
			t.Fatalf("seed %d: reassemble: %v\n%s", seed, err, src)
		}
		if len(q.Insts) != len(p.Insts) {
			t.Fatalf("seed %d: length changed: %d vs %d", seed, len(p.Insts), len(q.Insts))
		}
		rp, err := arch.Run(p, arch.NewMemory(), budget)
		if err != nil {
			t.Fatalf("seed %d: original run: %v", seed, err)
		}
		rq, err := arch.Run(q, arch.NewMemory(), budget)
		if err != nil {
			t.Fatalf("seed %d: round-trip run: %v", seed, err)
		}
		if !rp.State.RF.Equal(rq.State.RF) {
			t.Fatalf("seed %d: register state diverged after round-trip", seed)
		}
		if !rp.State.Mem.Equal(rq.State.Mem) {
			t.Fatalf("seed %d: memory state diverged after round-trip", seed)
		}
		if rp.State.Retired != rq.State.Retired {
			t.Fatalf("seed %d: retired %d vs %d", seed, rp.State.Retired, rq.State.Retired)
		}
	}
}

// TestHazardCoverage checks the generator actually emits the hazard shapes
// the checker exists for, over a modest seed range.
func TestHazardCoverage(t *testing.T) {
	var loads, stores, restarts, predicated, backward int
	for seed := uint64(0); seed < 20; seed++ {
		p := MustGenerate(Options{Seed: seed})
		for i := range p.Insts {
			in := &p.Insts[i]
			switch {
			case in.Op.IsLoad():
				loads++
			case in.Op.IsStore():
				stores++
			case in.Op == isa.OpRestart:
				restarts++
			}
			if in.QP != isa.P0 && in.Op != isa.OpBr {
				predicated++
			}
			if in.Op.IsBranch() && int(in.Target) <= i {
				backward++
			}
		}
	}
	for name, n := range map[string]int{
		"loads": loads, "stores": stores, "restarts": restarts,
		"predicated": predicated, "backward branches": backward,
	} {
		if n == 0 {
			t.Errorf("no %s generated across 20 seeds", name)
		}
	}
}
