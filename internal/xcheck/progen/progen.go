// Package progen generates random, valid, terminating EPIC programs for
// cross-model differential checking.
//
// Every generated program is self-contained: it starts from an empty memory
// image and a reset register file, initializes its own data (including a
// shuffled pointer chain whose hops miss the caches), runs a random body of
// stop-bit issue groups, and halts. Termination is guaranteed by
// construction — the only backward branches are counted loops over dedicated
// counter registers, and every other branch is forward — so the architectural
// oracle always reaches the halt within a bounded dynamic instruction count.
//
// The generator is biased toward the hazards the timing models historically
// disagree on: chained cache misses (pointer chases), store-to-load
// forwarding over a small set of hot addresses, predicate-squashed memory
// operations, long independent tails after a missing load (advance-window
// wraparound), and RESTART consumers of chase loads.
package progen

import (
	"fmt"
	"math/rand"
	"strings"

	"multipass/internal/compile"
	"multipass/internal/isa"
	"multipass/internal/prog"
)

// Register conventions. The generator partitions the register files so the
// random body can never corrupt loop control or region bases:
//
//	r1..r15    general integer pool (random destinations and sources)
//	r20..r23   region base registers, written only in the prologue
//	r24..r27   loop counters, written only by loop control
//	r28        pointer-chase cursor
//	r29, r30   scratch (prologue and masked wild addresses)
//	f1..f8     general FP pool
//	p1..p4     random compare results (also used as qualifying predicates)
//	p5, p6     loop-control predicates
var (
	genInts  = poolInts(1, 15)
	genFPs   = poolFPs(1, 8)
	genPreds = []isa.Reg{isa.PredReg(1), isa.PredReg(2), isa.PredReg(3), isa.PredReg(4)}

	baseRegs = []isa.Reg{isa.IntReg(20), isa.IntReg(21), isa.IntReg(22), isa.IntReg(23)}
	loopRegs = []isa.Reg{isa.IntReg(24), isa.IntReg(25), isa.IntReg(26), isa.IntReg(27)}
	chasePtr = isa.IntReg(28)
	scratchA = isa.IntReg(29)
	scratchB = isa.IntReg(30)
	loopPT   = isa.PredReg(5)
	loopPF   = isa.PredReg(6)
)

func poolInts(lo, hi int) []isa.Reg {
	var out []isa.Reg
	for i := lo; i <= hi; i++ {
		out = append(out, isa.IntReg(i))
	}
	return out
}

func poolFPs(lo, hi int) []isa.Reg {
	var out []isa.Reg
	for i := lo; i <= hi; i++ {
		out = append(out, isa.FPReg(i))
	}
	return out
}

// Memory layout: four disjoint regions, 64 KiB each. Region 0 holds the
// pointer chain; regions 1..3 are scratch data the body loads and stores.
const (
	regionBytes = 1 << 16
	region0     = 0x0100_0000
)

var regionBases = []int32{region0, 0x0200_0000, 0x0300_0000, 0x0400_0000}

// Options shapes one generated program.
type Options struct {
	// Segments is the number of body segments (straight-line runs, forward
	// skips, counted loops). Zero means a default of 8.
	Segments int
	// MaxTrip bounds counted-loop trip counts. Zero means 10.
	MaxTrip int
	// ChainNodes is the pointer-chain length built in the prologue. Zero
	// means 40. The chain is shuffled across region 0 so hops miss.
	ChainNodes int
	// Compile, when true, runs the generated unit through the paper-standard
	// compiler (list scheduling, RESTART insertion) instead of emitting raw
	// random stop bits. Both paths produce valid scheduled programs; the
	// compiled path additionally exercises the scheduler's regrouping.
	Compile bool
	// Seed selects the program. Equal Options generate identical programs.
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.Segments == 0 {
		o.Segments = 8
	}
	if o.MaxTrip == 0 {
		o.MaxTrip = 10
	}
	if o.ChainNodes == 0 {
		o.ChainNodes = 40
	}
	return o
}

// ForSeed returns the standard checking options for one seed: moderate size,
// and every third program additionally list-scheduled by the compiler.
func ForSeed(seed uint64) Options {
	return Options{Seed: seed, Compile: seed%3 == 2}
}

// Generate builds a random program from the options. The program runs over an
// empty memory image (it initializes its own data) and always halts.
func Generate(opts Options) (*isa.Program, error) {
	opts = opts.withDefaults()
	g := &gen{
		rng:         rand.New(rand.NewSource(int64(opts.Seed))),
		opts:        opts,
		unit:        prog.NewUnit(),
		predReady:   make(map[isa.Reg]bool),
		counterBusy: make(map[isa.Reg]bool),
	}
	g.emit()
	if opts.Compile {
		copts := compile.DefaultOptions()
		copts.Unroll = 0 // keep every register's final value comparable
		p, _, err := compile.Compile(g.unit, copts)
		if err != nil {
			return nil, fmt.Errorf("progen: seed %d: %w", opts.Seed, err)
		}
		return p, nil
	}
	g.scatterStops()
	p, err := g.unit.Link()
	if err != nil {
		return nil, fmt.Errorf("progen: seed %d: %w", opts.Seed, err)
	}
	return p, nil
}

// MustGenerate is Generate for known-good options; it panics on error.
func MustGenerate(opts Options) *isa.Program {
	p, err := Generate(opts)
	if err != nil {
		panic(err)
	}
	return p
}

type gen struct {
	rng    *rand.Rand
	opts   Options
	unit   *prog.Unit
	labels int
	// hotOffs are per-region offsets shared by stores and loads so
	// store-to-load forwarding and memory aliasing actually happen.
	hotOffs [4][]int32
	// predReady marks predicate registers written at least once; qualifying
	// predicates are only drawn from these (an unwritten predicate reads
	// zero and squashes everything, which is legal but boring).
	predReady map[isa.Reg]bool
	loopDepth int
	loopNext  int
	// counterBusy marks loop counters owned by an enclosing (still-open)
	// loop; a nested loop must not reuse one, or it would reset the outer
	// trip count every iteration and spin forever.
	counterBusy map[isa.Reg]bool
}

// allocCounter hands out a loop counter register no enclosing loop is using,
// cycling through the pool for variety. Loop nesting is bounded well below
// the pool size, so a free counter always exists.
func (g *gen) allocCounter() isa.Reg {
	for i := 0; i < len(loopRegs); i++ {
		r := loopRegs[(g.loopNext+i)%len(loopRegs)]
		if !g.counterBusy[r] {
			g.loopNext = (g.loopNext + i + 1) % len(loopRegs)
			g.counterBusy[r] = true
			return r
		}
	}
	panic("progen: loop counters exhausted")
}

func (g *gen) label(prefix string) string {
	g.labels++
	return fmt.Sprintf("%s%d", prefix, g.labels)
}

func (g *gen) emit() {
	for r := range g.hotOffs {
		n := 3 + g.rng.Intn(4)
		for i := 0; i < n; i++ {
			g.hotOffs[r] = append(g.hotOffs[r], int32(4*g.rng.Intn(regionBytes/8)))
		}
	}

	b := g.unit.NewBlock("entry")
	g.prologue(b)
	for i := 0; i < g.opts.Segments; i++ {
		b = g.segment(b)
	}
	fin := g.unit.NewBlock("fin")
	// Fold an FP value through the integer file so FP-only divergence also
	// perturbs integer state (and cvt.fi sees arbitrary values).
	fin.Emit(isa.Inst{Op: isa.OpCvtFI, Dst: scratchA, Src1: g.pick(genFPs)}, "")
	fin.Halt()
}

// prologue seeds registers and memory. Everything is done with architectural
// instructions, so a program is reproducible from its assembly text alone.
func (g *gen) prologue(b *prog.Block) {
	for i, r := range baseRegs {
		b.MovI(r, regionBases[i])
	}
	for _, r := range genInts {
		b.MovI(r, int32(g.rng.Uint32()))
	}
	// FP pool: converted from random ints, then divided pairwise so the
	// values are not all integral.
	for i, f := range genFPs {
		b.MovI(scratchA, int32(g.rng.Intn(2048)-1024))
		b.Emit(isa.Inst{Op: isa.OpCvtIF, Dst: f, Src1: scratchA}, "")
		if i > 0 {
			b.Op3(isa.OpFDiv, f, f, genFPs[i-1])
		}
	}
	// Give every random predicate a defined value.
	for i, p := range genPreds {
		alt := genPreds[(i+1)%len(genPreds)]
		b.CmpI(isa.OpCmpLtI, p, alt, g.pick(genInts), g.rng.Int31())
		g.predReady[p] = true
		g.predReady[alt] = true
	}

	// Shuffled pointer chain across region 0: node k at region0 + perm[k]*64,
	// payload word at +4. The shuffle makes successive hops jump across the
	// whole region, so chase loads miss all the way out.
	nodes := g.opts.ChainNodes
	const stride = 64
	perm := g.rng.Perm(nodes)
	addrOf := func(k int) int32 { return region0 + int32(perm[k])*stride }
	for k := 0; k < nodes; k++ {
		b.MovI(scratchA, addrOf(k))
		b.MovI(scratchB, addrOf((k+1)%nodes))
		b.Store(isa.OpSt4, scratchA, 0, scratchB)
		b.MovI(scratchB, int32(g.rng.Uint32()))
		b.Store(isa.OpSt4, scratchA, 4, scratchB)
	}
	b.MovI(chasePtr, addrOf(0))

	// Seed the hot offsets of the scratch regions.
	for r := 1; r < len(baseRegs); r++ {
		for _, off := range g.hotOffs[r] {
			b.MovI(scratchA, int32(g.rng.Uint32()))
			b.Store(isa.OpSt4, baseRegs[r], off, scratchA)
		}
	}
}

// segment appends one random body segment and returns the block new code
// should continue in.
func (g *gen) segment(b *prog.Block) *prog.Block {
	switch k := g.rng.Intn(10); {
	case k < 4:
		g.straight(b, 4+g.rng.Intn(10))
		return b
	case k < 7:
		return g.skip(b)
	default:
		return g.loop(b)
	}
}

// straight emits n random instructions into the current block.
func (g *gen) straight(b *prog.Block, n int) {
	for i := 0; i < n; i++ {
		g.randomInst(b)
	}
}

// skip emits a data-dependent forward branch over a short run of
// instructions — biased toward memory operations, some predicate-squashed —
// and returns the join block. Both arms rejoin, so the branch direction is
// free to depend on loaded data without threatening termination.
func (g *gen) skip(b *prog.Block) *prog.Block {
	join := g.label("join")
	p := g.pick(genPreds)
	alt := g.altPred(p)
	b.Cmp(g.pickCmp(), p, alt, g.pick(genInts), g.pick(genInts))
	b.Br(p, join)

	skipped := g.unit.NewBlock(g.label("skip"))
	for i, n := 0, 2+g.rng.Intn(6); i < n; i++ {
		if g.rng.Intn(2) == 0 {
			g.memInst(skipped)
		} else {
			g.randomInst(skipped)
		}
	}
	jb := g.unit.NewBlock(join)
	return jb
}

// loop emits a counted loop. The trip count is a program constant and the
// counter register is dedicated, so the loop terminates no matter what the
// random body computes. At most two loops nest (outer x inner trip counts
// bound the dynamic length).
func (g *gen) loop(b *prog.Block) *prog.Block {
	counter := g.allocCounter()
	trip := 2 + g.rng.Intn(g.opts.MaxTrip-1)
	head := g.label("loop")

	b.MovI(counter, int32(trip))
	if g.rng.Intn(3) == 0 {
		// Re-aim the chase cursor at the chain head so a chase inside the
		// loop re-walks the (now cached or evicted) chain.
		b.MovI(chasePtr, region0+int32(g.rng.Intn(g.opts.ChainNodes))*64)
	}

	body := g.unit.NewBlock(head)
	g.loopDepth++
	n := 3 + g.rng.Intn(8)
	for i := 0; i < n; i++ {
		switch {
		case g.loopDepth < 2 && g.rng.Intn(12) == 0:
			// Nested counted loop; continue the outer body afterwards.
			body = g.loop(body)
		case g.rng.Intn(4) == 0:
			g.chaseStep(body)
		default:
			g.randomInst(body)
		}
	}
	g.loopDepth--

	body.OpI(isa.OpSubI, counter, counter, 1)
	body.CmpI(isa.OpCmpNeI, loopPT, loopPF, counter, 0)
	body.Br(loopPT, head)
	g.counterBusy[counter] = false
	return g.unit.NewBlock(g.label("after"))
}

// chaseStep advances the pointer chase: a dependent load feeding its own next
// address, the paper's worst-case miss chain. Sometimes a RESTART consumer
// and a payload load ride along, as the compiler would emit for a load in a
// dataflow SCC.
func (g *gen) chaseStep(b *prog.Block) {
	b.Load(isa.OpLd4, chasePtr, chasePtr, 0)
	if g.rng.Intn(2) == 0 {
		b.Restart(chasePtr)
	}
	if g.rng.Intn(2) == 0 {
		b.Load(isa.OpLd4, g.pick(genInts), chasePtr, 4)
	}
}

// memInst emits one memory operation, usually on a hot offset so stores and
// loads alias, and sometimes predicate-squashed.
func (g *gen) memInst(b *prog.Block) {
	region := g.rng.Intn(len(baseRegs))
	base := baseRegs[region]
	var off int32
	if g.rng.Intn(4) != 0 {
		off = g.hotOffs[region][g.rng.Intn(len(g.hotOffs[region]))]
	} else {
		off = int32(g.rng.Intn(regionBytes - 8))
	}
	qp := g.qualPred()

	var in *isa.Inst
	switch g.rng.Intn(8) {
	case 0:
		in = b.Load(isa.OpLd1, g.pick(genInts), base, off)
	case 1:
		in = b.Load(isa.OpLd2, g.pick(genInts), base, off)
	case 2, 3:
		in = b.Load(isa.OpLd4, g.pick(genInts), base, off)
	case 4:
		in = b.Emit(isa.Inst{Op: isa.OpLdF, Dst: g.pick(genFPs), Src1: base, Imm: off}, "")
	case 5:
		in = b.Store(isa.OpSt1, base, off, g.pick(genInts))
	case 6:
		in = b.Store(isa.OpSt4, base, off, g.pick(genInts))
	default:
		in = b.Emit(isa.Inst{Op: isa.OpStF, Src1: base, Src2: g.pick(genFPs), Imm: off}, "")
	}
	in.QP = qp
}

// randomInst emits one random instruction of any category.
func (g *gen) randomInst(b *prog.Block) {
	qp := g.qualPred()
	var in *isa.Inst
	switch g.rng.Intn(20) {
	case 0, 1, 2, 3:
		ops := []isa.Op{isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpShl, isa.OpShr, isa.OpSar}
		in = b.Op3(ops[g.rng.Intn(len(ops))], g.pick(genInts), g.pickIntSrc(), g.pickIntSrc())
	case 4, 5, 6:
		ops := []isa.Op{isa.OpAddI, isa.OpSubI, isa.OpAndI, isa.OpOrI, isa.OpXorI, isa.OpShlI, isa.OpShrI, isa.OpSarI}
		in = b.OpI(ops[g.rng.Intn(len(ops))], g.pick(genInts), g.pickIntSrc(), int32(g.rng.Uint32()))
	case 7:
		in = b.MovI(g.pick(genInts), int32(g.rng.Uint32()))
	case 8:
		p := g.pick(genPreds)
		in = b.Cmp(g.pickCmp(), p, g.altPred(p), g.pickIntSrc(), g.pickIntSrc())
	case 9:
		ops := []isa.Op{isa.OpMul, isa.OpDiv, isa.OpRem}
		in = b.Op3(ops[g.rng.Intn(len(ops))], g.pick(genInts), g.pickIntSrc(), g.pickIntSrc())
	case 10, 11:
		ops := []isa.Op{isa.OpFAdd, isa.OpFSub, isa.OpFMul, isa.OpFDiv}
		in = b.Op3(ops[g.rng.Intn(len(ops))], g.pick(genFPs), g.pick(genFPs), g.pick(genFPs))
	case 12:
		if g.rng.Intn(2) == 0 {
			in = b.Emit(isa.Inst{Op: isa.OpCvtIF, Dst: g.pick(genFPs), Src1: g.pickIntSrc()}, "")
		} else {
			in = b.Emit(isa.Inst{Op: isa.OpCvtFI, Dst: g.pick(genInts), Src1: g.pick(genFPs)}, "")
		}
	case 13:
		p := g.pick(genPreds)
		fops := []isa.Op{isa.OpFCmpEq, isa.OpFCmpLt, isa.OpFCmpLe}
		in = b.Emit(isa.Inst{
			Op: fops[g.rng.Intn(len(fops))], Dst: p, Dst2: g.altPred(p),
			Src1: g.pick(genFPs), Src2: g.pick(genFPs),
		}, "")
	case 14:
		// Masked wild store: bound an arbitrary register value into a 1 MiB
		// window so random addresses stay cheap to clone and compare.
		b.OpI(isa.OpAndI, scratchB, g.pick(genInts), 0x000F_FFFC)
		in = b.Store(isa.OpSt4, scratchB, int32(4*g.rng.Intn(16)), g.pick(genInts))
	case 15:
		g.chaseStep(b)
		return
	case 16:
		in = b.Restart(g.pick(genInts))
	case 17:
		in = b.Nop()
	default:
		g.memInst(b)
		return
	}
	in.QP = qp
}

// qualPred picks a qualifying predicate: p0 usually, a data-dependent
// predicate often enough that squashed instructions are common.
func (g *gen) qualPred() isa.Reg {
	if g.rng.Intn(10) < 7 {
		return isa.P0
	}
	return g.pick(genPreds)
}

// pickIntSrc picks an integer source: the general pool usually, occasionally
// a region base or the chase cursor so address values flow into computation.
func (g *gen) pickIntSrc() isa.Reg {
	switch g.rng.Intn(12) {
	case 0:
		return g.pick(baseRegs)
	case 1:
		return chasePtr
	default:
		return g.pick(genInts)
	}
}

func (g *gen) pick(pool []isa.Reg) isa.Reg {
	return pool[g.rng.Intn(len(pool))]
}

func (g *gen) altPred(p isa.Reg) isa.Reg {
	for {
		if q := g.pick(genPreds); q != p {
			return q
		}
	}
}

func (g *gen) pickCmp() isa.Op {
	ops := []isa.Op{isa.OpCmpEq, isa.OpCmpNe, isa.OpCmpLt, isa.OpCmpLe, isa.OpCmpLtU, isa.OpCmpLeU}
	return ops[g.rng.Intn(len(ops))]
}

// scatterStops assigns random stop bits: every branch and block end closes an
// issue group, and interior instructions close one with probability ~1/3.
// Any placement is architecturally valid — groups execute sequentially — but
// placement shapes how the models form issue groups.
func (g *gen) scatterStops() {
	for _, b := range g.unit.Blocks {
		for i := range b.Insts {
			last := i == len(b.Insts)-1
			if last || b.Insts[i].Op.IsBranch() || g.rng.Intn(3) == 0 {
				b.Insts[i].Stop = true
			}
		}
	}
}

// Format renders p as assemblable source, the inverse of isa.Assemble for
// generated programs: branch targets become labels, everything else reuses
// the canonical instruction syntax. header lines are emitted as comments.
func Format(p *isa.Program, header string) string {
	targets := make(map[int32]bool)
	for i := range p.Insts {
		if p.Insts[i].Op.Info().Shape.Branch {
			targets[p.Insts[i].Target] = true
		}
	}
	var sb strings.Builder
	for _, line := range strings.Split(strings.TrimRight(header, "\n"), "\n") {
		if line != "" {
			fmt.Fprintf(&sb, "# %s\n", line)
		}
	}
	for i := range p.Insts {
		if targets[int32(i)] {
			fmt.Fprintf(&sb, "L%d:\n", i)
		}
		in := &p.Insts[i]
		if in.Op.Info().Shape.Branch {
			if in.QP != isa.P0 {
				fmt.Fprintf(&sb, "  (%s) ", in.QP)
			} else {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%s L%d", in.Op.Info().Name, in.Target)
			if in.Stop {
				sb.WriteString(" ;;")
			}
			sb.WriteByte('\n')
			continue
		}
		fmt.Fprintf(&sb, "  %s\n", in.String())
	}
	return sb.String()
}
