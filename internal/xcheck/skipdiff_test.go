package xcheck

import (
	"context"
	"testing"
)

// TestSkipDifferentialSeeds runs the skip-on-vs-skip-off differential over a
// deterministic slice of generated programs: every model runs twice per seed
// and any divergence in sim.Stats or final architectural state is a FailSkip
// failure. CI runs the same check over 500 seeds via `xcheck -skipdiff`.
func TestSkipDifferentialSeeds(t *testing.T) {
	n := 40
	if testing.Short() {
		n = 10
	}
	sum, err := Run(context.Background(), n, 1, Options{SkipDiff: true}, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range sum.Failed {
		for _, f := range rep.Failures {
			t.Errorf("seed %d: %s", rep.Seed, f)
		}
	}
	if sum.Checked != n {
		t.Errorf("checked %d seeds, want %d", sum.Checked, n)
	}
}
