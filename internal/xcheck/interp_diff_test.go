package xcheck

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"multipass/internal/arch"
	"multipass/internal/isa"
	"multipass/internal/sim"
	"multipass/internal/xcheck/progen"
)

// diffInterps runs p through both the superblock and the step-wise
// interpreter and fails the test on any divergence: final architectural
// state (registers including NaT bits, memory, retired count) and the
// retired-class counters must be byte-identical.
func diffInterps(t *testing.T, label string, p *isa.Program, limit uint64) {
	t.Helper()
	swMem, sbMem := arch.NewMemory(), arch.NewMemory()
	sw, swErr := arch.RunStepwise(p, swMem, limit)
	sb, sbErr := arch.Run(p, sbMem, limit)
	switch {
	case (swErr == nil) != (sbErr == nil):
		t.Fatalf("%s: error divergence: stepwise=%v superblock=%v", label, swErr, sbErr)
	case swErr != nil && swErr.Error() != sbErr.Error():
		t.Fatalf("%s: error text divergence:\n  stepwise:   %v\n  superblock: %v", label, swErr, sbErr)
	}
	want := &sim.Snapshot{RF: sw.State.RF, Mem: swMem, Retired: sw.State.Retired}
	got := &sim.Snapshot{RF: sb.State.RF, Mem: sbMem, Retired: sb.State.Retired}
	if d := got.Diff(want, 8); len(d) != 0 {
		t.Fatalf("%s: architectural state diverged:\n  %s", label, strings.Join(d, "\n  "))
	}
	if sw.Loads != sb.Loads || sw.Stores != sb.Stores ||
		sw.Branches != sb.Branches || sw.Taken != sb.Taken {
		t.Fatalf("%s: counters diverged: stepwise {ld %d st %d br %d tk %d} superblock {ld %d st %d br %d tk %d}",
			label, sw.Loads, sw.Stores, sw.Branches, sw.Taken,
			sb.Loads, sb.Stores, sb.Branches, sb.Taken)
	}
}

// TestInterpDifferential proves the superblock interpreter byte-identical to
// the step-wise reference over the whole progen space the checker explores:
// every committed corpus program plus a progen sweep across the generator's
// option surface (default templates, small fuzz-shaped programs, compiled
// programs).
func TestInterpDifferential(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "corpus", "*.asm"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("empty corpus")
	}
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		p, err := isa.Assemble(string(src))
		if err != nil {
			t.Fatalf("%s: assemble: %v", file, err)
		}
		diffInterps(t, filepath.Base(file), p, 4_000_000)
	}

	seeds := 50
	if testing.Short() {
		seeds = 10
	}
	for seed := uint64(1); seed <= uint64(seeds); seed++ {
		p := progen.MustGenerate(progen.ForSeed(seed))
		diffInterps(t, fmt.Sprintf("seed%d", seed), p, 4_000_000)

		small := progen.Options{Seed: seed, Segments: 5, MaxTrip: 6, ChainNodes: 24, Compile: seed%3 == 2}
		diffInterps(t, fmt.Sprintf("seed%d-small", seed), progen.MustGenerate(small), 4_000_000)
	}
}

// FuzzInterpEquivalence explores generator seeds for any divergence between
// the two interpreters. Without -fuzz it replays the seed corpus, keeping
// `go test` fast; with -fuzz it searches indefinitely:
//
//	go test ./internal/xcheck -fuzz=FuzzInterpEquivalence -fuzztime=2m
func FuzzInterpEquivalence(f *testing.F) {
	for _, seed := range []uint64{1, 7, 42, 1337, 99991} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		opts := progen.Options{
			Segments:   5,
			MaxTrip:    6,
			ChainNodes: 24,
			Compile:    seed%3 == 2,
			Seed:       seed,
		}
		p, err := progen.Generate(opts)
		if err != nil {
			t.Skip("unbuildable seed")
		}
		diffInterps(t, fmt.Sprintf("fuzz-seed%d", seed), p, 4_000_000)
	})
}
