package xcheck

import (
	"context"
	"fmt"

	"multipass/internal/arch"
	"multipass/internal/isa"
	"multipass/internal/sim"
)

// BuggyModelName is the registry name of the deliberately broken model used
// to demonstrate (in tests and via cmd/xcheck -inject) that the checker
// catches real model bugs and shrinks them to small repros.
const BuggyModelName = "buggy-predstore"

// RegisterBuggy adds the deliberately broken model to r. The bug is the
// classic predication mistake: the machine treats every predicated store as
// squashed, dropping its memory effect whenever the qualifying predicate is
// actually true — exactly the class of bug a rally-pass or store-buffer
// defect would produce.
func RegisterBuggy(r *sim.Registry) {
	r.Register(BuggyModelName, func(opts sim.ModelOptions) (sim.Machine, error) {
		maxInsts := opts.MaxInsts
		if maxInsts == 0 {
			maxInsts = sim.Default().MaxInsts
		}
		return &buggyMachine{maxInsts: maxInsts}, nil
	})
}

// buggyMachine executes architecturally (no timing) but first rewrites every
// predicated store into a nop, so its final memory image is wrong whenever a
// predicated store should have retired.
type buggyMachine struct {
	maxInsts uint64
}

func (m *buggyMachine) Name() string { return BuggyModelName }

func (m *buggyMachine) Run(ctx context.Context, p *isa.Program, image *arch.Memory) (*sim.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	q := &isa.Program{Insts: append([]isa.Inst(nil), p.Insts...), Symbols: p.Symbols}
	for i := range q.Insts {
		in := &q.Insts[i]
		if in.Op.IsStore() && in.QP != isa.P0 {
			*in = isa.Inst{Op: isa.OpNop, QP: in.QP, Stop: in.Stop, Target: -1}
		}
	}
	res, err := arch.Run(q, image.Clone(), m.maxInsts)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", BuggyModelName, err)
	}
	var st sim.Stats
	st.Retired = res.State.Retired
	st.Cycles = res.State.Retired // 1 IPC placeholder; timing is not the point
	st.Cat[sim.StallExecution] = st.Cycles
	return &sim.Result{Stats: st, RF: res.State.RF, Mem: res.State.Mem}, nil
}
