package xcheck

import (
	"context"

	"multipass/internal/arch"
	"multipass/internal/isa"
)

// Group is one stop-bit issue group: a half-open instruction index range.
type Group struct{ Start, End int }

// Groups splits p at its stop bits. The final instruction closes the last
// group whether or not its stop bit is set.
func Groups(p *isa.Program) []Group {
	var gs []Group
	start := 0
	for i := range p.Insts {
		if p.Insts[i].Stop || i == len(p.Insts)-1 {
			gs = append(gs, Group{start, i + 1})
			start = i + 1
		}
	}
	return gs
}

// deleteRange returns a copy of p with instruction range [lo, hi) removed and
// branch targets remapped: targets inside the range land on the instruction
// that follows it, targets past it shift down. Returns nil if the result is
// not a valid program.
func deleteRange(p *isa.Program, lo, hi int) *isa.Program {
	if lo >= hi || hi-lo >= len(p.Insts) {
		return nil
	}
	q := &isa.Program{Insts: make([]isa.Inst, 0, len(p.Insts)-(hi-lo))}
	q.Insts = append(q.Insts, p.Insts[:lo]...)
	q.Insts = append(q.Insts, p.Insts[hi:]...)
	for i := range q.Insts {
		in := &q.Insts[i]
		if !in.Op.IsBranch() {
			continue
		}
		switch t := int(in.Target); {
		case t >= hi:
			in.Target = int32(t - (hi - lo))
		case t >= lo:
			in.Target = int32(lo)
		}
	}
	if err := q.Validate(); err != nil {
		return nil
	}
	return q
}

// halts reports whether the oracle runs p to completion within budget. The
// shrinker only considers candidates that still terminate: deleting a loop's
// counter update must not produce a spinning repro.
func halts(p *isa.Program, budget uint64) bool {
	res, err := arch.Run(p, arch.NewMemory(), budget)
	return err == nil && res.State.Halted
}

// Shrink greedily minimizes p while keep(p) stays true: first stop-bit issue
// groups in ddmin fashion (large contiguous chunks, halving down to single
// groups), then single instructions (deleting an instruction whose stop bit
// closed a group also merges groups), repeating both until a fixpoint. keep
// must be deterministic. Every candidate is validated and oracle-terminated
// before keep sees it.
func Shrink(ctx context.Context, p *isa.Program, budget uint64, keep func(*isa.Program) bool) *isa.Program {
	cur := p
	accept := func(cand *isa.Program) bool {
		return cand != nil && halts(cand, budget) && keep(cand)
	}
	for {
		improvedPass := false
		for chunk := len(Groups(cur)) / 2; chunk >= 1; chunk /= 2 {
			for i := 0; ctx.Err() == nil; {
				gs := Groups(cur)
				if i+chunk > len(gs) {
					break
				}
				if cand := deleteRange(cur, gs[i].Start, gs[i+chunk-1].End); accept(cand) {
					cur = cand
					improvedPass = true
					continue // same i, groups shifted down
				}
				i++
			}
		}
		for i := 0; ctx.Err() == nil && i < len(cur.Insts); {
			if cand := deleteRange(cur, i, i+1); accept(cand) {
				cur = cand
				improvedPass = true
				continue
			}
			i++
		}
		if !improvedPass || ctx.Err() != nil {
			return cur
		}
	}
}

// ShrinkReport minimizes a failing report's program while it keeps failing
// (any failure, not necessarily the original one — shrinking may surface a
// simpler bug, which is fine) and re-checks the minimized program so the
// reported failures match it.
func ShrinkReport(ctx context.Context, rep *Report, opts Options) *Report {
	opts = opts.withDefaults()
	small := Shrink(ctx, rep.Program, opts.MaxInsts, func(cand *isa.Program) bool {
		r, err := CheckProgram(ctx, cand, opts)
		return err == nil && r.Failed()
	})
	out, err := CheckProgram(ctx, small, opts)
	if err != nil || !out.Failed() {
		return rep // should not happen; keep the unshrunk evidence
	}
	out.Seed = rep.Seed
	return out
}
