package isa

import (
	"testing"
	"testing/quick"
)

func TestRegConstructors(t *testing.T) {
	if r := IntReg(5); r.Class != RegClassInt || r.Index != 5 {
		t.Errorf("IntReg(5) = %v", r)
	}
	if r := FPReg(127); r.Class != RegClassFP || r.Index != 127 {
		t.Errorf("FPReg(127) = %v", r)
	}
	if r := PredReg(63); r.Class != RegClassPred || r.Index != 63 {
		t.Errorf("PredReg(63) = %v", r)
	}
}

func TestRegConstructorsPanicOutOfRange(t *testing.T) {
	for _, f := range []func(){
		func() { IntReg(NumIntRegs) },
		func() { IntReg(-1) },
		func() { FPReg(NumFPRegs) },
		func() { PredReg(NumPredRegs) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for out-of-range register")
				}
			}()
			f()
		}()
	}
}

func TestHardwiredRegs(t *testing.T) {
	if !R0.IsZeroReg() {
		t.Error("r0 should be hardwired")
	}
	if !P0.IsZeroReg() {
		t.Error("p0 should be hardwired")
	}
	if IntReg(1).IsZeroReg() || PredReg(1).IsZeroReg() || FPReg(0).IsZeroReg() {
		t.Error("only r0 and p0 are hardwired")
	}
	if !None.IsNone() || R0.IsNone() {
		t.Error("IsNone misclassifies")
	}
}

func TestFlatRoundTrip(t *testing.T) {
	for i := 0; i < NumFlatRegs; i++ {
		r := FromFlat(i)
		if r.IsNone() {
			t.Fatalf("FromFlat(%d) = None", i)
		}
		if got := r.Flat(); got != i {
			t.Fatalf("Flat(FromFlat(%d)) = %d", i, got)
		}
	}
	if !FromFlat(-1).IsNone() || !FromFlat(NumFlatRegs).IsNone() {
		t.Error("FromFlat out of range should return None")
	}
	if None.Flat() != -1 {
		t.Error("None.Flat() != -1")
	}
}

func TestFlatDense(t *testing.T) {
	seen := make(map[int]Reg)
	add := func(r Reg) {
		f := r.Flat()
		if f < 0 || f >= NumFlatRegs {
			t.Fatalf("%v.Flat() = %d out of range", r, f)
		}
		if prev, dup := seen[f]; dup {
			t.Fatalf("flat index %d shared by %v and %v", f, prev, r)
		}
		seen[f] = r
	}
	for i := 0; i < NumIntRegs; i++ {
		add(IntReg(i))
	}
	for i := 0; i < NumFPRegs; i++ {
		add(FPReg(i))
	}
	for i := 0; i < NumPredRegs; i++ {
		add(PredReg(i))
	}
	if len(seen) != NumFlatRegs {
		t.Fatalf("flat mapping not dense: %d of %d", len(seen), NumFlatRegs)
	}
}

func TestRegString(t *testing.T) {
	cases := map[Reg]string{
		None:        "-",
		IntReg(7):   "r7",
		FPReg(12):   "f12",
		PredReg(63): "p63",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("%#v.String() = %q, want %q", r, got, want)
		}
	}
}

func TestFlatQuick(t *testing.T) {
	f := func(i uint16) bool {
		idx := int(i) % NumFlatRegs
		return FromFlat(idx).Flat() == idx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
