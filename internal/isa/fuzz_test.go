package isa

import (
	"strings"
	"testing"
)

// FuzzAssemble: the assembler must never panic, and anything it accepts
// must validate, disassemble, and survive a binary round trip.
func FuzzAssemble(f *testing.F) {
	f.Add(sampleAsm)
	f.Add("halt")
	f.Add("(p1) add r1 = r2, r3 ;;")
	f.Add("loop: ld4 r5 = [r6+8]\n(p1) br loop\nhalt")
	f.Add("st4 [r1-4] = r2\nhalt")
	f.Add("x: y: z: jmp x")
	f.Add("movi r1 = -0x80000000\nhalt")
	f.Add("cmp.ltu p63, p62 = r127, r0\nhalt")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble(src)
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("accepted program fails validation: %v", err)
		}
		if s := p.String(); s == "" && len(p.Insts) > 0 {
			t.Fatal("non-empty program disassembles to nothing")
		}
		data, err := p.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted program fails to marshal: %v", err)
		}
		var q Program
		if err := q.UnmarshalBinary(data); err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(q.Insts) != len(p.Insts) {
			t.Fatal("round trip changed length")
		}
		for i := range p.Insts {
			if p.Insts[i] != q.Insts[i] {
				t.Fatalf("round trip changed instruction %d", i)
			}
		}
	})
}

// FuzzUnmarshalBinary: the decoder must never panic and must reject any
// bytes that do not validate.
func FuzzUnmarshalBinary(f *testing.F) {
	good, _ := MustAssemble(sampleAsm).MarshalBinary()
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte("MPASM01\n"))
	f.Add(append(append([]byte{}, good...), 0xff, 0xfe))
	f.Fuzz(func(t *testing.T, data []byte) {
		var p Program
		if err := p.UnmarshalBinary(data); err != nil {
			return
		}
		// Anything accepted must be a valid program.
		if err := p.Validate(); err != nil {
			t.Fatalf("decoder accepted invalid program: %v", err)
		}
	})
}

// FuzzEval: evaluation must be total over valid value-producing opcodes.
func FuzzEval(f *testing.F) {
	f.Add(uint8(OpAdd), uint64(1), uint64(2), int32(3))
	f.Add(uint8(OpDiv), uint64(5), uint64(0), int32(0))
	f.Add(uint8(OpFDiv), uint64(0x7ff0000000000000), uint64(0), int32(0))
	f.Add(uint8(OpCvtFI), uint64(0xfff8000000000000), uint64(0), int32(0))
	f.Fuzz(func(t *testing.T, opRaw uint8, a, b uint64, imm int32) {
		op := Op(opRaw % uint8(NumOps))
		switch op.Kind() {
		case KindLoad, KindStore, KindBranch, KindHalt:
			return // no data result; Eval panics by contract
		case KindNop:
			if op != OpNop && op != OpRestart {
				return
			}
		}
		_ = Eval(op, Word(a), Word(b), imm)
	})
}

// The fuzz seed inputs double as regression anchors; this test pins one
// tricky case: whitespace-only and comment-only sources are empty programs
// and must be rejected (a program must contain at least one instruction).
func TestAssembleRejectsEmpty(t *testing.T) {
	for _, src := range []string{"", "\n\n", "# nothing", "label:"} {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) accepted an empty program", src)
		}
	}
	_ = strings.TrimSpace
}
