package isa

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

// Binary program format: a fixed 8-byte magic, an instruction count, 20
// bytes per instruction, then a symbol table. All integers little-endian.
// The format is versioned through the magic string.

var programMagic = [8]byte{'M', 'P', 'A', 'S', 'M', '0', '1', '\n'}

const instEncBytes = 20

// MarshalBinary serializes the program.
func (p *Program) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	buf.Write(programMagic[:])
	var u32 [4]byte
	putU32 := func(v uint32) {
		binary.LittleEndian.PutUint32(u32[:], v)
		buf.Write(u32[:])
	}
	putU32(uint32(len(p.Insts)))
	for i := range p.Insts {
		in := &p.Insts[i]
		var rec [instEncBytes]byte
		rec[0] = byte(in.Op)
		rec[1] = in.QP.Index
		rec[2], rec[3] = byte(in.Dst.Class), in.Dst.Index
		rec[4], rec[5] = byte(in.Dst2.Class), in.Dst2.Index
		rec[6], rec[7] = byte(in.Src1.Class), in.Src1.Index
		rec[8], rec[9] = byte(in.Src2.Class), in.Src2.Index
		binary.LittleEndian.PutUint32(rec[10:14], uint32(in.Imm))
		binary.LittleEndian.PutUint32(rec[14:18], uint32(in.Target))
		if in.Stop {
			rec[18] = 1
		}
		buf.Write(rec[:])
	}
	// Deterministic symbol order.
	names := make([]string, 0, len(p.Symbols))
	for name := range p.Symbols {
		names = append(names, name)
	}
	sort.Strings(names)
	putU32(uint32(len(names)))
	for _, name := range names {
		putU32(uint32(len(name)))
		buf.WriteString(name)
		putU32(uint32(p.Symbols[name]))
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary deserializes a program written by MarshalBinary and
// validates it.
func (p *Program) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil || magic != programMagic {
		return fmt.Errorf("isa: bad program magic")
	}
	readU32 := func() (uint32, error) {
		var b [4]byte
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return 0, fmt.Errorf("isa: truncated program: %w", err)
		}
		return binary.LittleEndian.Uint32(b[:]), nil
	}
	n, err := readU32()
	if err != nil {
		return err
	}
	if n > 1<<24 {
		return fmt.Errorf("isa: unreasonable instruction count %d", n)
	}
	p.Insts = make([]Inst, n)
	for i := range p.Insts {
		var rec [instEncBytes]byte
		if _, err := io.ReadFull(r, rec[:]); err != nil {
			return fmt.Errorf("isa: truncated instruction %d: %w", i, err)
		}
		in := &p.Insts[i]
		in.Op = Op(rec[0])
		in.QP = Reg{RegClassPred, rec[1]}
		in.Dst = Reg{RegClass(rec[2]), rec[3]}
		in.Dst2 = Reg{RegClass(rec[4]), rec[5]}
		in.Src1 = Reg{RegClass(rec[6]), rec[7]}
		in.Src2 = Reg{RegClass(rec[8]), rec[9]}
		in.Imm = int32(binary.LittleEndian.Uint32(rec[10:14]))
		in.Target = int32(binary.LittleEndian.Uint32(rec[14:18]))
		in.Stop = rec[18] != 0
	}
	nsym, err := readU32()
	if err != nil {
		return err
	}
	if nsym > 1<<20 {
		return fmt.Errorf("isa: unreasonable symbol count %d", nsym)
	}
	p.Symbols = make(map[string]int, nsym)
	for i := uint32(0); i < nsym; i++ {
		l, err := readU32()
		if err != nil {
			return err
		}
		if l > 1<<16 {
			return fmt.Errorf("isa: unreasonable symbol length %d", l)
		}
		name := make([]byte, l)
		if _, err := io.ReadFull(r, name); err != nil {
			return fmt.Errorf("isa: truncated symbol table: %w", err)
		}
		idx, err := readU32()
		if err != nil {
			return err
		}
		p.Symbols[string(name)] = int(idx)
	}
	return p.Validate()
}
