package isa

// FUCaps describes the per-cycle issue capacity of the machine: the total
// issue width and the number of each functional-unit class, with separate
// load/store port limits within the memory class. It is shared by the
// compile-time scheduler and the hardware grouping logic so that compiler
// and machine agree on what fits in one cycle.
type FUCaps struct {
	MaxIssue  int
	PerClass  [NumFUClasses]int
	MaxLoads  int
	MaxStores int
}

// DefaultFUCaps returns the Itanium-2-like distribution used by the paper's
// Table 2 configuration: 6-issue, 6 integer ALUs (I- and M-units combined),
// 4 memory ports (at most 2 loads and 2 stores), 2 FP units, 3 branches.
func DefaultFUCaps() FUCaps {
	var c FUCaps
	c.MaxIssue = 6
	c.PerClass[FUInt] = 6
	c.PerClass[FUMem] = 4
	c.PerClass[FUFP] = 2
	c.PerClass[FUBr] = 3
	c.MaxLoads = 2
	c.MaxStores = 2
	return c
}

// FUUse tracks resource consumption within one issue cycle.
type FUUse struct {
	Issued   int
	PerClass [NumFUClasses]int
	Loads    int
	Stores   int
}

// Fits reports whether one more instruction with the given opcode fits in
// the cycle under caps.
func (u *FUUse) Fits(op Op, caps *FUCaps) bool {
	if u.Issued >= caps.MaxIssue {
		return false
	}
	fu := op.FU()
	if fu != FUNone && u.PerClass[fu] >= caps.PerClass[fu] {
		return false
	}
	if op.IsLoad() && u.Loads >= caps.MaxLoads {
		return false
	}
	if op.IsStore() && u.Stores >= caps.MaxStores {
		return false
	}
	return true
}

// Add records the issue of an instruction with the given opcode.
func (u *FUUse) Add(op Op) {
	u.Issued++
	if fu := op.FU(); fu != FUNone {
		u.PerClass[fu]++
	}
	if op.IsLoad() {
		u.Loads++
	}
	if op.IsStore() {
		u.Stores++
	}
}

// Reset clears the cycle's usage.
func (u *FUUse) Reset() { *u = FUUse{} }
