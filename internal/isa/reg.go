// Package isa defines the EPIC-style instruction set architecture used by the
// multipass simulator suite: registers, opcodes and their semantics,
// functional-unit classes, instruction encodings, and a text assembly format.
//
// The ISA is modeled loosely on the Itanium 2 target of the paper: 128
// integer registers, 128 floating-point registers, 64 predicate registers,
// qualifying predicates on every instruction, compiler-visible issue groups
// (stop bits), and an explicit RESTART operation used by multipass advance
// restart (paper §3.3). Data is 32 bits wide (ILP32); each register value
// carries a NaT ("not a thing") bit for speculation support.
package isa

import "fmt"

// Register file sizes visible to the instruction set (paper §4).
const (
	NumIntRegs  = 128
	NumFPRegs   = 128
	NumPredRegs = 64
)

// RegClass identifies which architectural register file a Reg names.
type RegClass uint8

const (
	RegClassNone RegClass = iota
	RegClassInt
	RegClassFP
	RegClassPred
)

func (c RegClass) String() string {
	switch c {
	case RegClassNone:
		return "none"
	case RegClassInt:
		return "int"
	case RegClassFP:
		return "fp"
	case RegClassPred:
		return "pred"
	}
	return fmt.Sprintf("RegClass(%d)", uint8(c))
}

// Reg names one architectural register: a class plus an index within the
// class. The zero value is "no register".
//
// Two registers are hardwired, as on Itanium: integer register r0 always
// reads zero, and predicate register p0 always reads true. Writes to either
// are ignored by the register files.
type Reg struct {
	Class RegClass
	Index uint8
}

// None is the absent register operand.
var None = Reg{}

// IntReg returns the integer register r<i>.
func IntReg(i int) Reg {
	if i < 0 || i >= NumIntRegs {
		panic(fmt.Sprintf("isa: integer register r%d out of range", i))
	}
	return Reg{RegClassInt, uint8(i)}
}

// FPReg returns the floating-point register f<i>.
func FPReg(i int) Reg {
	if i < 0 || i >= NumFPRegs {
		panic(fmt.Sprintf("isa: fp register f%d out of range", i))
	}
	return Reg{RegClassFP, uint8(i)}
}

// PredReg returns the predicate register p<i>.
func PredReg(i int) Reg {
	if i < 0 || i >= NumPredRegs {
		panic(fmt.Sprintf("isa: predicate register p%d out of range", i))
	}
	return Reg{RegClassPred, uint8(i)}
}

// P0 is the always-true qualifying predicate.
var P0 = PredReg(0)

// R0 is the always-zero integer register.
var R0 = IntReg(0)

// IsNone reports whether r is the absent operand.
func (r Reg) IsNone() bool { return r.Class == RegClassNone }

// IsZeroReg reports whether r is a hardwired register (r0 or p0) whose writes
// are discarded.
func (r Reg) IsZeroReg() bool {
	return (r.Class == RegClassInt || r.Class == RegClassPred) && r.Index == 0
}

func (r Reg) String() string {
	switch r.Class {
	case RegClassNone:
		return "-"
	case RegClassInt:
		return fmt.Sprintf("r%d", r.Index)
	case RegClassFP:
		return fmt.Sprintf("f%d", r.Index)
	case RegClassPred:
		return fmt.Sprintf("p%d", r.Index)
	}
	return fmt.Sprintf("?%d.%d", r.Class, r.Index)
}

// Flat maps a register to a dense index across all classes, suitable for
// indexing unified scoreboards and A-bit vectors. The absent register maps to
// -1. Layout: [0,128) int, [128,256) fp, [256,320) pred.
func (r Reg) Flat() int {
	switch r.Class {
	case RegClassInt:
		return int(r.Index)
	case RegClassFP:
		return NumIntRegs + int(r.Index)
	case RegClassPred:
		return NumIntRegs + NumFPRegs + int(r.Index)
	}
	return -1
}

// NumFlatRegs is the size of a dense per-register vector covering all classes.
const NumFlatRegs = NumIntRegs + NumFPRegs + NumPredRegs

// FromFlat is the inverse of Reg.Flat for valid indices.
func FromFlat(i int) Reg {
	switch {
	case i < 0 || i >= NumFlatRegs:
		return None
	case i < NumIntRegs:
		return Reg{RegClassInt, uint8(i)}
	case i < NumIntRegs+NumFPRegs:
		return Reg{RegClassFP, uint8(i - NumIntRegs)}
	default:
		return Reg{RegClassPred, uint8(i - NumIntRegs - NumFPRegs)}
	}
}
