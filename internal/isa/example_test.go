package isa_test

import (
	"fmt"

	"multipass/internal/arch"
	"multipass/internal/isa"
)

// Assemble a small program, run it on the reference interpreter, and read
// the result out of the architectural register file.
func Example() {
	p := isa.MustAssemble(`
	movi r1 = 6
	movi r2 = 7
	mul  r3 = r1, r2
	halt
`)
	res, err := arch.Run(p, arch.NewMemory(), 1000)
	if err != nil {
		panic(err)
	}
	fmt.Println("r3 =", res.State.RF.Read(isa.IntReg(3)).Uint32())
	// Output: r3 = 42
}

// Instructions disassemble to the same syntax the assembler accepts.
func ExampleInst_String() {
	in := isa.Inst{
		Op:   isa.OpCmpLt,
		QP:   isa.P0,
		Dst:  isa.PredReg(1),
		Dst2: isa.PredReg(2),
		Src1: isa.IntReg(4),
		Src2: isa.IntReg(7),
		Stop: true,
	}
	fmt.Println(in.String())
	// Output: cmp.lt p1, p2 = r4, r7 ;;
}

// Programs round-trip through the binary object format.
func ExampleProgram_MarshalBinary() {
	p := isa.MustAssemble("movi r1 = 5\nhalt")
	data, _ := p.MarshalBinary()
	var q isa.Program
	if err := q.UnmarshalBinary(data); err != nil {
		panic(err)
	}
	fmt.Println(len(q.Insts), "instructions")
	// Output: 2 instructions
}
