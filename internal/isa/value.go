package isa

import "math"

// Word is the contents of one architectural register. Integer registers use
// the low 32 bits (the simulated machine is ILP32, per paper §4);
// floating-point registers hold an IEEE-754 double encoded with
// math.Float64bits. Predicates are represented as 0 or 1.
type Word uint64

// IntWord packs a 32-bit integer value.
func IntWord(v uint32) Word { return Word(v) }

// FPWord packs a floating-point value.
func FPWord(f float64) Word { return Word(math.Float64bits(f)) }

// BoolWord packs a predicate value.
func BoolWord(b bool) Word {
	if b {
		return 1
	}
	return 0
}

// Uint32 unpacks an integer value.
func (w Word) Uint32() uint32 { return uint32(w) }

// Int32 unpacks a signed integer value.
func (w Word) Int32() int32 { return int32(uint32(w)) }

// Float64 unpacks a floating-point value.
func (w Word) Float64() float64 { return math.Float64frombits(uint64(w)) }

// Bool unpacks a predicate value.
func (w Word) Bool() bool { return w != 0 }

// Eval computes the result of a non-memory, non-branch operation given its
// source operand values and immediate. Compare results are BoolWord-encoded.
// Division by zero is defined (not trapping): quotient 0, remainder a.
// Eval panics for operations with no data result (stores, branches, nop).
func Eval(op Op, a, b Word, imm int32) Word {
	ai, bi := a.Uint32(), b.Uint32()
	iu := uint32(imm)
	switch op {
	case OpAdd:
		return IntWord(ai + bi)
	case OpSub:
		return IntWord(ai - bi)
	case OpAnd:
		return IntWord(ai & bi)
	case OpOr:
		return IntWord(ai | bi)
	case OpXor:
		return IntWord(ai ^ bi)
	case OpShl:
		return IntWord(ai << (bi & 31))
	case OpShr:
		return IntWord(ai >> (bi & 31))
	case OpSar:
		return IntWord(uint32(int32(ai) >> (bi & 31)))
	case OpAddI:
		return IntWord(ai + iu)
	case OpSubI:
		return IntWord(ai - iu)
	case OpAndI:
		return IntWord(ai & iu)
	case OpOrI:
		return IntWord(ai | iu)
	case OpXorI:
		return IntWord(ai ^ iu)
	case OpShlI:
		return IntWord(ai << (iu & 31))
	case OpShrI:
		return IntWord(ai >> (iu & 31))
	case OpSarI:
		return IntWord(uint32(int32(ai) >> (iu & 31)))
	case OpMov:
		return IntWord(ai)
	case OpMovI:
		return IntWord(iu)

	case OpCmpEq:
		return BoolWord(ai == bi)
	case OpCmpNe:
		return BoolWord(ai != bi)
	case OpCmpLt:
		return BoolWord(int32(ai) < int32(bi))
	case OpCmpLe:
		return BoolWord(int32(ai) <= int32(bi))
	case OpCmpLtU:
		return BoolWord(ai < bi)
	case OpCmpLeU:
		return BoolWord(ai <= bi)
	case OpCmpEqI:
		return BoolWord(ai == iu)
	case OpCmpNeI:
		return BoolWord(ai != iu)
	case OpCmpLtI:
		return BoolWord(int32(ai) < imm)
	case OpCmpLeI:
		return BoolWord(int32(ai) <= imm)
	case OpCmpLtUI:
		return BoolWord(ai < iu)

	case OpMul:
		return IntWord(ai * bi)
	case OpDiv:
		if bi == 0 {
			return IntWord(0)
		}
		return IntWord(uint32(int32(ai) / int32(bi)))
	case OpRem:
		if bi == 0 {
			return IntWord(ai)
		}
		return IntWord(uint32(int32(ai) % int32(bi)))

	case OpFAdd:
		return FPWord(a.Float64() + b.Float64())
	case OpFSub:
		return FPWord(a.Float64() - b.Float64())
	case OpFMul:
		return FPWord(a.Float64() * b.Float64())
	case OpFDiv:
		return FPWord(a.Float64() / b.Float64())
	case OpFMov:
		return a
	case OpFNeg:
		return FPWord(-a.Float64())
	case OpCvtIF:
		return FPWord(float64(int32(ai)))
	case OpCvtFI:
		f := a.Float64()
		switch {
		case math.IsNaN(f):
			return IntWord(0)
		case f >= math.MaxInt32:
			return IntWord(uint32(math.MaxInt32))
		case f <= math.MinInt32:
			return IntWord(uint32(0x80000000))
		}
		return IntWord(uint32(int32(f)))
	case OpFCmpEq:
		return BoolWord(a.Float64() == b.Float64())
	case OpFCmpLt:
		return BoolWord(a.Float64() < b.Float64())
	case OpFCmpLe:
		return BoolWord(a.Float64() <= b.Float64())

	case OpRestart, OpNop:
		return 0
	}
	panic("isa: Eval called for op with no data result: " + op.String())
}
