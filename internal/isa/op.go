package isa

import "fmt"

// Op is an operation code.
type Op uint8

// Operation codes. Immediate variants take their second operand from the
// instruction's Imm field instead of Src2.
const (
	OpNop Op = iota

	// Integer ALU, single-cycle.
	OpAdd
	OpSub
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr // logical right shift
	OpSar // arithmetic right shift
	OpAddI
	OpSubI
	OpAndI
	OpOrI
	OpXorI
	OpShlI
	OpShrI
	OpSarI
	OpMov  // integer register move
	OpMovI // load immediate

	// Integer compares: write a predicate and its complement (Dst, Dst2).
	OpCmpEq
	OpCmpNe
	OpCmpLt  // signed
	OpCmpLe  // signed
	OpCmpLtU // unsigned
	OpCmpLeU // unsigned
	OpCmpEqI
	OpCmpNeI
	OpCmpLtI
	OpCmpLeI
	OpCmpLtUI

	// Integer multiply/divide, multi-cycle (issued to the FP units, as on
	// Itanium where fixed-point multiply executes in the FP pipeline).
	OpMul
	OpDiv
	OpRem

	// Floating point, multi-cycle.
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpFMov
	OpFNeg
	OpCvtIF // int -> fp
	OpCvtFI // fp -> int (truncating)
	OpFCmpEq
	OpFCmpLt
	OpFCmpLe

	// Memory. Address is Src1 + Imm. Loads zero-extend into a 32-bit value
	// except OpLdF/OpStF which move a full 8-byte float.
	OpLd1
	OpLd2
	OpLd4
	OpLdF
	OpSt1
	OpSt2
	OpSt4
	OpStF

	// Control flow. OpBr is taken when its qualifying predicate is true (the
	// QP field doubles as the branch condition, as with Itanium br.cond).
	OpBr
	OpJmp

	// OpRestart is the compiler-inserted multipass advance-restart hint
	// (paper §3.3). It consumes the destination of a critical load (Src1);
	// when that operand is unready during advance execution the pipeline
	// restarts the advance pass. In every other mode it is an effective nop.
	OpRestart

	// OpHalt terminates the program.
	OpHalt

	numOps // sentinel
)

// NumOps is the number of defined opcodes.
const NumOps = int(numOps)

// Kind is a coarse classification of operations used by the timing models
// and by stall-cycle attribution (paper Figure 6 categories).
type Kind uint8

const (
	KindNop Kind = iota
	KindALU
	KindMulDiv
	KindFP
	KindLoad
	KindStore
	KindBranch
	KindRestart
	KindHalt
)

func (k Kind) String() string {
	switch k {
	case KindNop:
		return "nop"
	case KindALU:
		return "alu"
	case KindMulDiv:
		return "muldiv"
	case KindFP:
		return "fp"
	case KindLoad:
		return "load"
	case KindStore:
		return "store"
	case KindBranch:
		return "branch"
	case KindRestart:
		return "restart"
	case KindHalt:
		return "halt"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// FUClass identifies the functional-unit class an operation issues to.
type FUClass uint8

const (
	FUNone FUClass = iota
	FUInt          // integer ALUs (I- and M-unit ALUs combined)
	FUMem          // memory ports
	FUFP           // floating-point units (also integer mul/div)
	FUBr           // branch units
	numFUClasses
)

// NumFUClasses is the number of functional-unit classes, including FUNone.
const NumFUClasses = int(numFUClasses)

func (c FUClass) String() string {
	switch c {
	case FUNone:
		return "none"
	case FUInt:
		return "int"
	case FUMem:
		return "mem"
	case FUFP:
		return "fp"
	case FUBr:
		return "br"
	}
	return fmt.Sprintf("FUClass(%d)", uint8(c))
}

// OperandShape describes which instruction fields an opcode uses and the
// register classes it expects, for validation and for the assembler.
type OperandShape struct {
	Dst     RegClass // RegClassNone if no destination
	Dst2    RegClass // second destination (compare complements)
	Src1    RegClass
	Src2    RegClass
	UsesImm bool
	Branch  bool // uses Target
}

// OpInfo describes the static properties of one opcode.
type OpInfo struct {
	Name    string
	Kind    Kind
	FU      FUClass
	Latency int // execution latency in cycles (loads: L1-hit latency)
	Shape   OperandShape
}

// Latencies for multi-cycle operations (paper "other" stall category).
const (
	LatALU  = 1
	LatMul  = 4
	LatDiv  = 12
	LatFP   = 4
	LatFDiv = 16
	LatLoad = 1 // L1D hit (Table 2); misses add hierarchy latency
)

var opInfos = [NumOps]OpInfo{
	OpNop:  {"nop", KindNop, FUInt, 1, OperandShape{}},
	OpHalt: {"halt", KindHalt, FUBr, 1, OperandShape{}},

	OpAdd:  {"add", KindALU, FUInt, LatALU, shapeRRR},
	OpSub:  {"sub", KindALU, FUInt, LatALU, shapeRRR},
	OpAnd:  {"and", KindALU, FUInt, LatALU, shapeRRR},
	OpOr:   {"or", KindALU, FUInt, LatALU, shapeRRR},
	OpXor:  {"xor", KindALU, FUInt, LatALU, shapeRRR},
	OpShl:  {"shl", KindALU, FUInt, LatALU, shapeRRR},
	OpShr:  {"shr", KindALU, FUInt, LatALU, shapeRRR},
	OpSar:  {"sar", KindALU, FUInt, LatALU, shapeRRR},
	OpAddI: {"addi", KindALU, FUInt, LatALU, shapeRRI},
	OpSubI: {"subi", KindALU, FUInt, LatALU, shapeRRI},
	OpAndI: {"andi", KindALU, FUInt, LatALU, shapeRRI},
	OpOrI:  {"ori", KindALU, FUInt, LatALU, shapeRRI},
	OpXorI: {"xori", KindALU, FUInt, LatALU, shapeRRI},
	OpShlI: {"shli", KindALU, FUInt, LatALU, shapeRRI},
	OpShrI: {"shri", KindALU, FUInt, LatALU, shapeRRI},
	OpSarI: {"sari", KindALU, FUInt, LatALU, shapeRRI},
	OpMov:  {"mov", KindALU, FUInt, LatALU, OperandShape{Dst: RegClassInt, Src1: RegClassInt}},
	OpMovI: {"movi", KindALU, FUInt, LatALU, OperandShape{Dst: RegClassInt, UsesImm: true}},

	OpCmpEq:   {"cmp.eq", KindALU, FUInt, LatALU, shapeCmpRR},
	OpCmpNe:   {"cmp.ne", KindALU, FUInt, LatALU, shapeCmpRR},
	OpCmpLt:   {"cmp.lt", KindALU, FUInt, LatALU, shapeCmpRR},
	OpCmpLe:   {"cmp.le", KindALU, FUInt, LatALU, shapeCmpRR},
	OpCmpLtU:  {"cmp.ltu", KindALU, FUInt, LatALU, shapeCmpRR},
	OpCmpLeU:  {"cmp.leu", KindALU, FUInt, LatALU, shapeCmpRR},
	OpCmpEqI:  {"cmpi.eq", KindALU, FUInt, LatALU, shapeCmpRI},
	OpCmpNeI:  {"cmpi.ne", KindALU, FUInt, LatALU, shapeCmpRI},
	OpCmpLtI:  {"cmpi.lt", KindALU, FUInt, LatALU, shapeCmpRI},
	OpCmpLeI:  {"cmpi.le", KindALU, FUInt, LatALU, shapeCmpRI},
	OpCmpLtUI: {"cmpi.ltu", KindALU, FUInt, LatALU, shapeCmpRI},

	OpMul: {"mul", KindMulDiv, FUFP, LatMul, shapeRRR},
	OpDiv: {"div", KindMulDiv, FUFP, LatDiv, shapeRRR},
	OpRem: {"rem", KindMulDiv, FUFP, LatDiv, shapeRRR},

	OpFAdd:  {"fadd", KindFP, FUFP, LatFP, shapeFFF},
	OpFSub:  {"fsub", KindFP, FUFP, LatFP, shapeFFF},
	OpFMul:  {"fmul", KindFP, FUFP, LatFP, shapeFFF},
	OpFDiv:  {"fdiv", KindFP, FUFP, LatFDiv, shapeFFF},
	OpFMov:  {"fmov", KindFP, FUFP, LatALU, OperandShape{Dst: RegClassFP, Src1: RegClassFP}},
	OpFNeg:  {"fneg", KindFP, FUFP, LatALU, OperandShape{Dst: RegClassFP, Src1: RegClassFP}},
	OpCvtIF: {"cvt.if", KindFP, FUFP, LatFP, OperandShape{Dst: RegClassFP, Src1: RegClassInt}},
	OpCvtFI: {"cvt.fi", KindFP, FUFP, LatFP, OperandShape{Dst: RegClassInt, Src1: RegClassFP}},
	OpFCmpEq: {"fcmp.eq", KindFP, FUFP, LatFP,
		OperandShape{Dst: RegClassPred, Dst2: RegClassPred, Src1: RegClassFP, Src2: RegClassFP}},
	OpFCmpLt: {"fcmp.lt", KindFP, FUFP, LatFP,
		OperandShape{Dst: RegClassPred, Dst2: RegClassPred, Src1: RegClassFP, Src2: RegClassFP}},
	OpFCmpLe: {"fcmp.le", KindFP, FUFP, LatFP,
		OperandShape{Dst: RegClassPred, Dst2: RegClassPred, Src1: RegClassFP, Src2: RegClassFP}},

	OpLd1: {"ld1", KindLoad, FUMem, LatLoad, shapeLoad},
	OpLd2: {"ld2", KindLoad, FUMem, LatLoad, shapeLoad},
	OpLd4: {"ld4", KindLoad, FUMem, LatLoad, shapeLoad},
	OpLdF: {"ldf", KindLoad, FUMem, LatLoad, OperandShape{Dst: RegClassFP, Src1: RegClassInt, UsesImm: true}},
	OpSt1: {"st1", KindStore, FUMem, 1, shapeStore},
	OpSt2: {"st2", KindStore, FUMem, 1, shapeStore},
	OpSt4: {"st4", KindStore, FUMem, 1, shapeStore},
	OpStF: {"stf", KindStore, FUMem, 1, OperandShape{Src1: RegClassInt, Src2: RegClassFP, UsesImm: true}},

	OpBr:  {"br", KindBranch, FUBr, 1, OperandShape{Branch: true}},
	OpJmp: {"jmp", KindBranch, FUBr, 1, OperandShape{Branch: true}},

	OpRestart: {"restart", KindRestart, FUInt, 1, OperandShape{Src1: RegClassInt}},
}

var (
	shapeRRR   = OperandShape{Dst: RegClassInt, Src1: RegClassInt, Src2: RegClassInt}
	shapeFFF   = OperandShape{Dst: RegClassFP, Src1: RegClassFP, Src2: RegClassFP}
	shapeRRI   = OperandShape{Dst: RegClassInt, Src1: RegClassInt, UsesImm: true}
	shapeCmpRR = OperandShape{Dst: RegClassPred, Dst2: RegClassPred, Src1: RegClassInt, Src2: RegClassInt}
	shapeCmpRI = OperandShape{Dst: RegClassPred, Dst2: RegClassPred, Src1: RegClassInt, UsesImm: true}
	shapeLoad  = OperandShape{Dst: RegClassInt, Src1: RegClassInt, UsesImm: true}
	shapeStore = OperandShape{Src1: RegClassInt, Src2: RegClassInt, UsesImm: true}
)

// Packed per-opcode property tables, derived from opInfos at package
// initialization. The cycle loops query Kind/FU/Latency/MemBytes several
// times per instruction per simulated cycle; indexing a small table avoids
// copying the whole OpInfo (name string, operand shape) on every query.
var (
	opKinds     [NumOps]Kind
	opFUs       [NumOps]FUClass
	opLatencies [NumOps]uint8
	opMemBytes  [NumOps]uint8
)

func init() {
	for op := Op(0); int(op) < NumOps; op++ {
		info := opInfos[op]
		opKinds[op] = info.Kind
		opFUs[op] = info.FU
		opLatencies[op] = uint8(info.Latency)
		switch op {
		case OpLd1, OpSt1:
			opMemBytes[op] = 1
		case OpLd2, OpSt2:
			opMemBytes[op] = 2
		case OpLd4, OpSt4:
			opMemBytes[op] = 4
		case OpLdF, OpStF:
			opMemBytes[op] = 8
		}
	}
}

// Info returns the static description of op.
func (op Op) Info() OpInfo {
	if int(op) >= NumOps {
		return OpInfo{Name: fmt.Sprintf("op%d", op), Kind: KindNop, FU: FUInt, Latency: 1}
	}
	return opInfos[op]
}

// Kind returns the coarse classification of op.
func (op Op) Kind() Kind {
	if int(op) >= NumOps {
		return KindNop
	}
	return opKinds[op]
}

// FU returns the functional-unit class op issues to.
func (op Op) FU() FUClass {
	if int(op) >= NumOps {
		return FUInt
	}
	return opFUs[op]
}

// Latency returns the execution latency of op in cycles (L1-hit latency for
// loads).
func (op Op) Latency() int {
	if int(op) >= NumOps {
		return 1
	}
	return int(opLatencies[op])
}

func (op Op) String() string { return op.Info().Name }

// IsLoad reports whether op reads memory.
func (op Op) IsLoad() bool { return op.Kind() == KindLoad }

// IsStore reports whether op writes memory.
func (op Op) IsStore() bool { return op.Kind() == KindStore }

// IsMem reports whether op accesses memory.
func (op Op) IsMem() bool { return op.IsLoad() || op.IsStore() }

// IsBranch reports whether op is a control-flow operation.
func (op Op) IsBranch() bool { return op.Kind() == KindBranch }

// MemBytes returns the access width in bytes for memory operations, or 0.
func (op Op) MemBytes() int {
	if int(op) >= NumOps {
		return 0
	}
	return int(opMemBytes[op])
}

// OpByName resolves an assembler mnemonic to its opcode.
func OpByName(name string) (Op, bool) {
	op, ok := opsByName[name]
	return op, ok
}

var opsByName = func() map[string]Op {
	m := make(map[string]Op, NumOps)
	for op := Op(0); int(op) < NumOps; op++ {
		m[op.Info().Name] = op
	}
	return m
}()
