package isa

import (
	"strings"
	"testing"
)

func TestOpInfoComplete(t *testing.T) {
	names := make(map[string]Op)
	for op := Op(0); int(op) < NumOps; op++ {
		info := op.Info()
		if info.Name == "" || strings.HasPrefix(info.Name, "op") {
			t.Errorf("op %d has no name", op)
		}
		if prev, dup := names[info.Name]; dup {
			t.Errorf("ops %d and %d share name %q", prev, op, info.Name)
		}
		names[info.Name] = op
		if info.Latency < 1 {
			t.Errorf("op %s has latency %d", info.Name, info.Latency)
		}
		if info.FU == FUNone && op != OpNop {
			t.Errorf("op %s has no FU class", info.Name)
		}
		got, ok := OpByName(info.Name)
		if !ok || got != op {
			t.Errorf("OpByName(%q) = %v, %v", info.Name, got, ok)
		}
	}
}

func TestOpClassPredicates(t *testing.T) {
	if !OpLd4.IsLoad() || OpLd4.IsStore() || !OpLd4.IsMem() {
		t.Error("ld4 classification")
	}
	if !OpSt4.IsStore() || OpSt4.IsLoad() || !OpSt4.IsMem() {
		t.Error("st4 classification")
	}
	if !OpBr.IsBranch() || OpAdd.IsBranch() {
		t.Error("branch classification")
	}
	if OpAdd.IsMem() {
		t.Error("add is not memory")
	}
}

func TestMemBytes(t *testing.T) {
	want := map[Op]int{
		OpLd1: 1, OpLd2: 2, OpLd4: 4, OpLdF: 8,
		OpSt1: 1, OpSt2: 2, OpSt4: 4, OpStF: 8,
		OpAdd: 0, OpBr: 0,
	}
	for op, n := range want {
		if got := op.MemBytes(); got != n {
			t.Errorf("%s.MemBytes() = %d, want %d", op, got, n)
		}
	}
}

func TestInstReadsWrites(t *testing.T) {
	add := Inst{Op: OpAdd, QP: P0, Dst: IntReg(4), Src1: IntReg(2), Src2: IntReg(3)}
	reads := add.Reads(nil)
	if len(reads) != 3 || reads[0] != P0 || reads[1] != IntReg(2) || reads[2] != IntReg(3) {
		t.Errorf("add reads = %v", reads)
	}
	writes := add.Writes(nil)
	if len(writes) != 1 || writes[0] != IntReg(4) {
		t.Errorf("add writes = %v", writes)
	}

	cmp := Inst{Op: OpCmpLt, QP: P0, Dst: PredReg(1), Dst2: PredReg(2), Src1: IntReg(2), Src2: IntReg(3)}
	if w := cmp.Writes(nil); len(w) != 2 {
		t.Errorf("cmp writes = %v", w)
	}

	st := Inst{Op: OpSt4, QP: PredReg(3), Src1: IntReg(6), Src2: IntReg(5)}
	r := st.Reads(nil)
	if len(r) != 3 || r[0] != PredReg(3) {
		t.Errorf("st reads = %v", r)
	}
	if w := st.Writes(nil); len(w) != 0 {
		t.Errorf("st writes = %v", w)
	}

	movi := Inst{Op: OpMovI, QP: P0, Dst: IntReg(1), Imm: 42}
	if r := movi.Reads(nil); len(r) != 1 {
		t.Errorf("movi reads = %v", r)
	}
}

func TestInstValidate(t *testing.T) {
	good := Inst{Op: OpAdd, QP: P0, Dst: IntReg(4), Src1: IntReg(2), Src2: IntReg(3)}
	if err := good.Validate(); err != nil {
		t.Errorf("valid add rejected: %v", err)
	}
	bad := []Inst{
		{Op: OpAdd, QP: IntReg(1), Dst: IntReg(4), Src1: IntReg(2), Src2: IntReg(3)}, // bad QP
		{Op: OpAdd, QP: P0, Dst: FPReg(4), Src1: IntReg(2), Src2: IntReg(3)},         // wrong dst class
		{Op: OpAdd, QP: P0, Dst: IntReg(4), Src1: PredReg(2), Src2: IntReg(3)},       // wrong src class
		{Op: OpBr, QP: P0, Target: -1},                                               // unresolved branch
		{Op: OpMovI, QP: P0, Dst: IntReg(1), Src1: IntReg(2)},                        // extra src operand
	}
	for i, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("bad inst %d accepted: %v", i, in)
		}
	}
}

func TestInstString(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: OpAdd, QP: P0, Dst: IntReg(4), Src1: IntReg(2), Src2: IntReg(3)}, "add r4 = r2, r3"},
		{Inst{Op: OpAdd, QP: PredReg(1), Dst: IntReg(4), Src1: IntReg(2), Src2: IntReg(3)}, "(p1) add r4 = r2, r3"},
		{Inst{Op: OpLd4, QP: P0, Dst: IntReg(5), Src1: IntReg(6), Imm: 8}, "ld4 r5 = [r6+8]"},
		{Inst{Op: OpSt4, QP: P0, Src1: IntReg(6), Src2: IntReg(5)}, "st4 [r6+0] = r5"},
		{Inst{Op: OpMovI, QP: P0, Dst: IntReg(1), Imm: 42, Stop: true}, "movi r1 = 42 ;;"},
		{Inst{Op: OpBr, QP: PredReg(2), Target: 7}, "(p2) br @7"},
		{Inst{Op: OpHalt, QP: P0}, "halt"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestProgramValidate(t *testing.T) {
	p := &Program{Insts: []Inst{
		{Op: OpMovI, QP: P0, Dst: IntReg(1), Imm: 1},
		{Op: OpHalt, QP: P0},
	}}
	if err := p.Validate(); err != nil {
		t.Errorf("valid program rejected: %v", err)
	}
	empty := &Program{}
	if err := empty.Validate(); err == nil {
		t.Error("empty program accepted")
	}
	outOfRange := &Program{Insts: []Inst{{Op: OpJmp, QP: P0, Target: 5}}}
	if err := outOfRange.Validate(); err == nil {
		t.Error("out-of-range branch target accepted")
	}
}

func TestInstAddr(t *testing.T) {
	// Three instructions per 16-byte bundle.
	if InstAddr(0) != 0 || InstAddr(2) != 0 {
		t.Error("first bundle addresses wrong")
	}
	if InstAddr(3) != 16 || InstAddr(5) != 16 {
		t.Error("second bundle addresses wrong")
	}
	if InstAddr(12) != 64 {
		t.Error("line-crossing address wrong")
	}
}
