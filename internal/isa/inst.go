package isa

import (
	"fmt"
	"strings"
)

// Inst is one decoded instruction. All instructions are predicated by QP
// (use P0 for unconditional execution); a false qualifying predicate squashes
// the instruction's side effects. For OpBr the qualifying predicate is the
// branch condition.
type Inst struct {
	Op   Op
	QP   Reg // qualifying predicate; must be a predicate register
	Dst  Reg // primary destination, None if the op has none
	Dst2 Reg // complement predicate for compares, else None
	Src1 Reg
	Src2 Reg
	Imm  int32
	// Target is the destination instruction index for branches, resolved at
	// link time. -1 marks an unresolved target.
	Target int32
	// Stop marks the end of a compiler-specified issue group after this
	// instruction (the EPIC stop bit).
	Stop bool
}

// Reads returns the registers the instruction reads, including the
// qualifying predicate. The result is appended to buf to allow reuse.
func (in *Inst) Reads(buf []Reg) []Reg {
	if !in.QP.IsNone() {
		buf = append(buf, in.QP)
	}
	sh := in.Op.Info().Shape
	if sh.Src1 != RegClassNone && !in.Src1.IsNone() {
		buf = append(buf, in.Src1)
	}
	if sh.Src2 != RegClassNone && !in.Src2.IsNone() {
		buf = append(buf, in.Src2)
	}
	return buf
}

// Writes returns the registers the instruction writes. The result is
// appended to buf to allow reuse. Hardwired registers (r0, p0) are included;
// callers that care must check Reg.IsZeroReg.
func (in *Inst) Writes(buf []Reg) []Reg {
	sh := in.Op.Info().Shape
	if sh.Dst != RegClassNone && !in.Dst.IsNone() {
		buf = append(buf, in.Dst)
	}
	if sh.Dst2 != RegClassNone && !in.Dst2.IsNone() {
		buf = append(buf, in.Dst2)
	}
	return buf
}

// Validate checks that the instruction's operands match its opcode's shape.
func (in *Inst) Validate() error {
	info := in.Op.Info()
	if int(in.Op) >= NumOps {
		return fmt.Errorf("isa: invalid opcode %d", in.Op)
	}
	if in.QP.Class != RegClassPred {
		return fmt.Errorf("isa: %s: qualifying predicate %s is not a predicate register", info.Name, in.QP)
	}
	sh := info.Shape
	check := func(what string, r Reg, want RegClass) error {
		if want == RegClassNone {
			if !r.IsNone() {
				return fmt.Errorf("isa: %s: unexpected %s operand %s", info.Name, what, r)
			}
			return nil
		}
		if r.Class != want {
			return fmt.Errorf("isa: %s: %s operand %s, want %s register", info.Name, what, r, want)
		}
		return nil
	}
	if err := check("dst", in.Dst, sh.Dst); err != nil {
		return err
	}
	if err := check("dst2", in.Dst2, sh.Dst2); err != nil {
		return err
	}
	if err := check("src1", in.Src1, sh.Src1); err != nil {
		return err
	}
	if err := check("src2", in.Src2, sh.Src2); err != nil {
		return err
	}
	if sh.Branch && in.Target < 0 {
		return fmt.Errorf("isa: %s: unresolved branch target", info.Name)
	}
	return nil
}

// String renders the instruction in assembler syntax.
func (in *Inst) String() string {
	var b strings.Builder
	if in.QP != P0 && !in.QP.IsNone() {
		fmt.Fprintf(&b, "(%s) ", in.QP)
	}
	b.WriteString(in.Op.Info().Name)
	sh := in.Op.Info().Shape
	var dsts, srcs []string
	if sh.Dst != RegClassNone {
		dsts = append(dsts, in.Dst.String())
	}
	if sh.Dst2 != RegClassNone {
		dsts = append(dsts, in.Dst2.String())
	}
	switch {
	case in.Op.IsLoad():
		srcs = append(srcs, fmt.Sprintf("[%s+%d]", in.Src1, in.Imm))
	case in.Op.IsStore():
		dsts = append(dsts, fmt.Sprintf("[%s+%d]", in.Src1, in.Imm))
		srcs = append(srcs, in.Src2.String())
	default:
		if sh.Src1 != RegClassNone {
			srcs = append(srcs, in.Src1.String())
		}
		if sh.Src2 != RegClassNone {
			srcs = append(srcs, in.Src2.String())
		}
		if sh.UsesImm {
			srcs = append(srcs, fmt.Sprintf("%d", in.Imm))
		}
	}
	if sh.Branch {
		srcs = append(srcs, fmt.Sprintf("@%d", in.Target))
	}
	if len(dsts) > 0 {
		b.WriteByte(' ')
		b.WriteString(strings.Join(dsts, ", "))
	}
	if len(srcs) > 0 {
		if len(dsts) > 0 {
			b.WriteString(" = ")
		} else {
			b.WriteByte(' ')
		}
		b.WriteString(strings.Join(srcs, ", "))
	}
	if in.Stop {
		b.WriteString(" ;;")
	}
	return b.String()
}

// Program is a linked, flat instruction sequence with resolved branch
// targets. Instruction i notionally occupies the 16-byte-aligned fetch
// address returned by InstAddr, three instructions per bundle as on Itanium.
type Program struct {
	Insts []Inst
	// Symbols maps label names to instruction indices, for diagnostics.
	Symbols map[string]int
}

// BundleBytes is the fetch footprint of one 3-instruction bundle.
const BundleBytes = 16

// InstAddr returns the simulated fetch address of instruction index i, used
// for instruction-cache indexing.
func InstAddr(i int) uint32 { return uint32(i/3) * BundleBytes }

// Validate checks every instruction and every branch target.
func (p *Program) Validate() error {
	if len(p.Insts) == 0 {
		return fmt.Errorf("isa: empty program")
	}
	for i := range p.Insts {
		in := &p.Insts[i]
		if err := in.Validate(); err != nil {
			return fmt.Errorf("inst %d: %w", i, err)
		}
		if in.Op.Info().Shape.Branch {
			if int(in.Target) >= len(p.Insts) {
				return fmt.Errorf("inst %d: branch target %d out of range", i, in.Target)
			}
		}
	}
	return nil
}

// String disassembles the whole program with instruction indices and labels.
func (p *Program) String() string {
	labelAt := make(map[int][]string)
	for name, idx := range p.Symbols {
		labelAt[idx] = append(labelAt[idx], name)
	}
	var b strings.Builder
	for i := range p.Insts {
		for _, l := range labelAt[i] {
			fmt.Fprintf(&b, "%s:\n", l)
		}
		fmt.Fprintf(&b, "%5d  %s\n", i, p.Insts[i].String())
	}
	return b.String()
}
