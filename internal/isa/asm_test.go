package isa

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"
)

const sampleAsm = `
# sum an array of 8 words
	movi r1 = 0        # acc
	movi r2 = 0x100    # base
	movi r3 = 8        # count
loop:
	ld4 r4 = [r2]
	add r1 = r1, r4
	addi r2 = r2, 4
	subi r3 = r3, 1
	cmpi.ne p1, p2 = r3, 0 ;;
	(p1) br loop
	st4 [r2+100] = r1
	halt
`

func TestAssembleSample(t *testing.T) {
	p, err := Assemble(sampleAsm)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Insts) != 11 {
		t.Fatalf("got %d instructions, want 11", len(p.Insts))
	}
	if idx, ok := p.Symbols["loop"]; !ok || idx != 3 {
		t.Errorf("label loop = %d, %v", idx, ok)
	}
	br := p.Insts[8]
	if br.Op != OpBr || br.QP != PredReg(1) || br.Target != 3 {
		t.Errorf("branch mis-assembled: %+v", br)
	}
	if !p.Insts[7].Stop {
		t.Error("stop bit not parsed")
	}
	if p.Insts[1].Imm != 0x100 {
		t.Error("hex immediate not parsed")
	}
	st := p.Insts[9]
	if st.Op != OpSt4 || st.Src1 != IntReg(2) || st.Imm != 100 || st.Src2 != IntReg(1) {
		t.Errorf("store mis-assembled: %+v", st)
	}
}

func TestAssembleErrors(t *testing.T) {
	bad := []string{
		"bogus r1 = r2",            // unknown mnemonic
		"add r1 = r2",              // missing operand
		"add r1 = r2, r3, r4",      // extra operand
		"br nowhere",               // undefined label
		"ld4 r1 = r2",              // not a memory operand
		"ld4 r1 = [p3]",            // non-int base
		"(r1) add r1 = r2, r3",     // non-pred QP
		"movi r1 = zzz",            // bad immediate
		"add r999 = r1, r2",        // register out of range
		"x: x: halt",               // duplicate label
		"(p1 add r1 = r2, r3",      // unterminated QP
		"movi r1 = 99999999999999", // immediate out of range
	}
	for _, src := range bad {
		if _, err := Assemble(src + "\nhalt\n"); err == nil {
			t.Errorf("Assemble(%q) succeeded, want error", src)
		}
	}
}

func TestAssembleCommentsAndBlank(t *testing.T) {
	p, err := Assemble("\n\n# only a comment\n// other comment\nhalt\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Insts) != 1 || p.Insts[0].Op != OpHalt {
		t.Errorf("got %v", p.Insts)
	}
}

// Assembling the disassembly of a program (modulo labels) reproduces it.
func TestAsmDisasmRoundTrip(t *testing.T) {
	p := MustAssemble(sampleAsm)
	var b strings.Builder
	for i, in := range p.Insts {
		// Emit "@N" branch targets as labels at N.
		_ = i
		line := in.String()
		if at := strings.Index(line, "@"); at >= 0 {
			line = line[:at] + "t" + line[at+1:]
		}
		b.WriteString(line + "\n")
	}
	// Insert labels for each referenced target.
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	var out []string
	for i, line := range lines {
		for j := range p.Insts {
			if p.Insts[j].Op.Info().Shape.Branch && int(p.Insts[j].Target) == i {
				out = append(out, "t"+itoa(i)+":")
				break
			}
		}
		out = append(out, line)
	}
	p2, err := Assemble(strings.Join(out, "\n"))
	if err != nil {
		t.Fatalf("reassembly failed: %v\nsource:\n%s", err, strings.Join(out, "\n"))
	}
	if len(p2.Insts) != len(p.Insts) {
		t.Fatalf("reassembly length %d != %d", len(p2.Insts), len(p.Insts))
	}
	for i := range p.Insts {
		if p.Insts[i] != p2.Insts[i] {
			t.Errorf("inst %d: %v != %v", i, p.Insts[i], p2.Insts[i])
		}
	}
}

func itoa(i int) string { return strconv.Itoa(i) }

func TestMarshalRoundTrip(t *testing.T) {
	p := MustAssemble(sampleAsm)
	data, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var q Program
	if err := q.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if len(q.Insts) != len(p.Insts) {
		t.Fatalf("lengths differ: %d != %d", len(q.Insts), len(p.Insts))
	}
	for i := range p.Insts {
		if p.Insts[i] != q.Insts[i] {
			t.Errorf("inst %d differs: %v != %v", i, p.Insts[i], q.Insts[i])
		}
	}
	if len(q.Symbols) != len(p.Symbols) {
		t.Errorf("symbols differ: %v != %v", q.Symbols, p.Symbols)
	}
	for name, idx := range p.Symbols {
		if q.Symbols[name] != idx {
			t.Errorf("symbol %q: %d != %d", name, q.Symbols[name], idx)
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	var p Program
	if err := p.UnmarshalBinary([]byte("not a program at all")); err == nil {
		t.Error("garbage accepted")
	}
	good, _ := MustAssemble("halt").MarshalBinary()
	if err := p.UnmarshalBinary(good[:len(good)-3]); err == nil {
		t.Error("truncated program accepted")
	}
}

// Randomized round trip over random (valid) instructions.
func TestMarshalRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var insts []Inst
	for len(insts) < 200 {
		op := Op(rng.Intn(NumOps))
		sh := op.Info().Shape
		in := Inst{Op: op, QP: PredReg(rng.Intn(NumPredRegs)), Target: -1}
		pick := func(c RegClass) Reg {
			switch c {
			case RegClassInt:
				return IntReg(rng.Intn(NumIntRegs))
			case RegClassFP:
				return FPReg(rng.Intn(NumFPRegs))
			case RegClassPred:
				return PredReg(rng.Intn(NumPredRegs))
			}
			return None
		}
		in.Dst, in.Dst2, in.Src1, in.Src2 = pick(sh.Dst), pick(sh.Dst2), pick(sh.Src1), pick(sh.Src2)
		if sh.UsesImm {
			in.Imm = int32(rng.Uint32())
		}
		if sh.Branch {
			in.Target = 0
		}
		in.Stop = rng.Intn(4) == 0
		insts = append(insts, in)
	}
	insts = append(insts, Inst{Op: OpHalt, QP: P0, Target: -1})
	p := &Program{Insts: insts, Symbols: map[string]int{"start": 0}}
	if err := p.Validate(); err != nil {
		t.Fatalf("generated program invalid: %v", err)
	}
	data, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var q Program
	if err := q.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	for i := range p.Insts {
		if p.Insts[i] != q.Insts[i] {
			t.Fatalf("inst %d differs after round trip", i)
		}
	}
}
