package isa

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWordPacking(t *testing.T) {
	if IntWord(0xdeadbeef).Uint32() != 0xdeadbeef {
		t.Error("IntWord round trip failed")
	}
	if IntWord(0xffffffff).Int32() != -1 {
		t.Error("Int32 sign extension failed")
	}
	if FPWord(3.5).Float64() != 3.5 {
		t.Error("FPWord round trip failed")
	}
	if !BoolWord(true).Bool() || BoolWord(false).Bool() {
		t.Error("BoolWord round trip failed")
	}
}

func TestEvalIntALU(t *testing.T) {
	cases := []struct {
		op   Op
		a, b uint32
		imm  int32
		want uint32
	}{
		{OpAdd, 3, 4, 0, 7},
		{OpAdd, 0xffffffff, 1, 0, 0}, // 32-bit wraparound
		{OpSub, 3, 4, 0, 0xffffffff},
		{OpAnd, 0b1100, 0b1010, 0, 0b1000},
		{OpOr, 0b1100, 0b1010, 0, 0b1110},
		{OpXor, 0b1100, 0b1010, 0, 0b0110},
		{OpShl, 1, 4, 0, 16},
		{OpShl, 1, 36, 0, 16}, // shift amount mod 32
		{OpShr, 0x80000000, 31, 0, 1},
		{OpSar, 0x80000000, 31, 0, 0xffffffff},
		{OpAddI, 10, 0, -3, 7},
		{OpSubI, 10, 0, 3, 7},
		{OpAndI, 0xff, 0, 0x0f, 0x0f},
		{OpOrI, 0xf0, 0, 0x0f, 0xff},
		{OpXorI, 0xff, 0, 0x0f, 0xf0},
		{OpShlI, 3, 0, 2, 12},
		{OpShrI, 12, 0, 2, 3},
		{OpSarI, 0xfffffff4, 0, 2, 0xfffffffd},
		{OpMov, 99, 0, 0, 99},
		{OpMovI, 0, 0, -7, 0xfffffff9},
		{OpMul, 7, 6, 0, 42},
		{OpMul, 0x10000, 0x10000, 0, 0}, // wraps
		{OpDiv, 42, 6, 0, 7},
		{OpDiv, 42, 0, 0, 0},                           // defined: 0
		{OpDiv, 0x80000000, 0xffffffff, 0, 0x80000000}, // MinInt32 / -1 wraps
		{OpRem, 43, 6, 0, 1},
		{OpRem, 43, 0, 0, 43}, // defined: a
	}
	for _, c := range cases {
		got := Eval(c.op, IntWord(c.a), IntWord(c.b), c.imm)
		if got.Uint32() != c.want {
			t.Errorf("Eval(%s, %#x, %#x, %d) = %#x, want %#x", c.op, c.a, c.b, c.imm, got.Uint32(), c.want)
		}
	}
}

func TestEvalCompares(t *testing.T) {
	cases := []struct {
		op   Op
		a, b uint32
		imm  int32
		want bool
	}{
		{OpCmpEq, 5, 5, 0, true},
		{OpCmpEq, 5, 6, 0, false},
		{OpCmpNe, 5, 6, 0, true},
		{OpCmpLt, 0xffffffff, 0, 0, true},   // -1 < 0 signed
		{OpCmpLtU, 0xffffffff, 0, 0, false}, // unsigned
		{OpCmpLe, 5, 5, 0, true},
		{OpCmpLeU, 6, 5, 0, false},
		{OpCmpEqI, 5, 0, 5, true},
		{OpCmpNeI, 5, 0, 5, false},
		{OpCmpLtI, 0xffffffff, 0, 0, true},
		{OpCmpLeI, 5, 0, 5, true},
		{OpCmpLtUI, 1, 0, 2, true},
	}
	for _, c := range cases {
		got := Eval(c.op, IntWord(c.a), IntWord(c.b), c.imm)
		if got.Bool() != c.want {
			t.Errorf("Eval(%s, %#x, %#x, %d) = %v, want %v", c.op, c.a, c.b, c.imm, got.Bool(), c.want)
		}
	}
}

func TestEvalFP(t *testing.T) {
	a, b := FPWord(3.0), FPWord(2.0)
	if Eval(OpFAdd, a, b, 0).Float64() != 5.0 {
		t.Error("fadd")
	}
	if Eval(OpFSub, a, b, 0).Float64() != 1.0 {
		t.Error("fsub")
	}
	if Eval(OpFMul, a, b, 0).Float64() != 6.0 {
		t.Error("fmul")
	}
	if Eval(OpFDiv, a, b, 0).Float64() != 1.5 {
		t.Error("fdiv")
	}
	if !math.IsInf(Eval(OpFDiv, a, FPWord(0), 0).Float64(), 1) {
		t.Error("fdiv by zero should be +inf")
	}
	if Eval(OpFNeg, a, 0, 0).Float64() != -3.0 {
		t.Error("fneg")
	}
	if Eval(OpFMov, a, 0, 0) != a {
		t.Error("fmov")
	}
	if Eval(OpCvtIF, IntWord(uint32(0xfffffff9)), 0, 0).Float64() != -7.0 {
		t.Error("cvt.if should sign extend")
	}
	if Eval(OpCvtFI, FPWord(-7.9), 0, 0).Int32() != -7 {
		t.Error("cvt.fi should truncate")
	}
	if Eval(OpCvtFI, FPWord(math.NaN()), 0, 0).Uint32() != 0 {
		t.Error("cvt.fi(NaN) should be 0")
	}
	if Eval(OpCvtFI, FPWord(1e30), 0, 0).Int32() != math.MaxInt32 {
		t.Error("cvt.fi should saturate high")
	}
	if Eval(OpCvtFI, FPWord(-1e30), 0, 0).Int32() != math.MinInt32 {
		t.Error("cvt.fi should saturate low")
	}
	if !Eval(OpFCmpLt, b, a, 0).Bool() || Eval(OpFCmpLt, a, b, 0).Bool() {
		t.Error("fcmp.lt")
	}
	if !Eval(OpFCmpEq, a, a, 0).Bool() {
		t.Error("fcmp.eq")
	}
	if !Eval(OpFCmpLe, a, a, 0).Bool() {
		t.Error("fcmp.le")
	}
}

func TestEvalPanicsOnNonValueOps(t *testing.T) {
	for _, op := range []Op{OpSt4, OpBr, OpJmp, OpHalt, OpLd4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Eval(%s) should panic", op)
				}
			}()
			Eval(op, 0, 0, 0)
		}()
	}
}

// Property: compare ops and their immediate forms agree when imm == b.
func TestCompareImmediateAgreement(t *testing.T) {
	pairs := [][2]Op{
		{OpCmpEq, OpCmpEqI},
		{OpCmpNe, OpCmpNeI},
		{OpCmpLt, OpCmpLtI},
		{OpCmpLe, OpCmpLeI},
		{OpCmpLtU, OpCmpLtUI},
	}
	f := func(a, b uint32) bool {
		for _, p := range pairs {
			reg := Eval(p[0], IntWord(a), IntWord(b), 0)
			imm := Eval(p[1], IntWord(a), 0, int32(b))
			if reg != imm {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: x + y - y == x under 32-bit wraparound.
func TestAddSubInverse(t *testing.T) {
	f := func(x, y uint32) bool {
		sum := Eval(OpAdd, IntWord(x), IntWord(y), 0)
		back := Eval(OpSub, sum, IntWord(y), 0)
		return back.Uint32() == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: signed and unsigned compares agree when both operands are
// non-negative.
func TestSignedUnsignedAgreement(t *testing.T) {
	f := func(x, y uint32) bool {
		x &= 0x7fffffff
		y &= 0x7fffffff
		s := Eval(OpCmpLt, IntWord(x), IntWord(y), 0)
		u := Eval(OpCmpLtU, IntWord(x), IntWord(y), 0)
		return s == u
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
