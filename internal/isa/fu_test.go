package isa

import "testing"

func TestDefaultFUCaps(t *testing.T) {
	c := DefaultFUCaps()
	if c.MaxIssue != 6 {
		t.Errorf("MaxIssue = %d", c.MaxIssue)
	}
	if c.PerClass[FUInt] != 6 || c.PerClass[FUMem] != 4 || c.PerClass[FUFP] != 2 || c.PerClass[FUBr] != 3 {
		t.Errorf("per-class caps = %v", c.PerClass)
	}
	if c.MaxLoads != 2 || c.MaxStores != 2 {
		t.Errorf("mem port split = %d/%d", c.MaxLoads, c.MaxStores)
	}
}

func TestFUUseIssueWidth(t *testing.T) {
	caps := DefaultFUCaps()
	var u FUUse
	for i := 0; i < caps.MaxIssue; i++ {
		if !u.Fits(OpAdd, &caps) {
			t.Fatalf("add %d rejected before the issue width", i)
		}
		u.Add(OpAdd)
	}
	if u.Fits(OpAdd, &caps) {
		t.Error("seventh instruction fit in a 6-wide cycle")
	}
	u.Reset()
	if !u.Fits(OpAdd, &caps) {
		t.Error("reset did not clear usage")
	}
}

func TestFUUseClassLimits(t *testing.T) {
	caps := DefaultFUCaps()
	var u FUUse
	// FP units: 2 per cycle, multiplies share them.
	u.Add(OpFAdd)
	u.Add(OpMul)
	if u.Fits(OpFMul, &caps) {
		t.Error("third FP op fit with 2 FP units")
	}
	if !u.Fits(OpAdd, &caps) {
		t.Error("integer op blocked by FP saturation")
	}

	// Memory ports: at most 2 loads and 2 stores.
	u.Reset()
	u.Add(OpLd4)
	u.Add(OpLd1)
	if u.Fits(OpLd2, &caps) {
		t.Error("third load fit with 2 load ports")
	}
	if !u.Fits(OpSt4, &caps) {
		t.Error("store blocked by load port saturation")
	}
	u.Add(OpSt4)
	u.Add(OpSt1)
	if u.Fits(OpSt2, &caps) {
		t.Error("third store fit with 2 store ports")
	}
	// Four memory ops total also saturates FUMem.
	if u.Fits(OpLd4, &caps) || u.Fits(OpLdF, &caps) {
		t.Error("fifth memory op fit with 4 memory ports")
	}

	// Branch units: 3.
	u.Reset()
	u.Add(OpBr)
	u.Add(OpBr)
	u.Add(OpJmp)
	if u.Fits(OpBr, &caps) {
		t.Error("fourth branch fit with 3 branch units")
	}
}

func TestEnumStrings(t *testing.T) {
	if FUInt.String() != "int" || FUMem.String() != "mem" || FUFP.String() != "fp" || FUBr.String() != "br" || FUNone.String() != "none" {
		t.Error("FUClass strings wrong")
	}
	if KindLoad.String() != "load" || KindStore.String() != "store" || KindBranch.String() != "branch" ||
		KindALU.String() != "alu" || KindMulDiv.String() != "muldiv" || KindFP.String() != "fp" ||
		KindNop.String() != "nop" || KindRestart.String() != "restart" || KindHalt.String() != "halt" {
		t.Error("Kind strings wrong")
	}
	if RegClassInt.String() != "int" || RegClassFP.String() != "fp" || RegClassPred.String() != "pred" || RegClassNone.String() != "none" {
		t.Error("RegClass strings wrong")
	}
	// Out-of-range enum values still render.
	if Kind(200).String() == "" || FUClass(200).String() == "" || RegClass(200).String() == "" {
		t.Error("out-of-range enum String empty")
	}
	if (Reg{RegClass(200), 3}).String() == "" {
		t.Error("invalid reg String empty")
	}
}

func TestOpInfoOutOfRange(t *testing.T) {
	bad := Op(250)
	if bad.Info().Name == "" {
		t.Error("out-of-range op has empty info")
	}
	if bad.FU() != FUInt || bad.Latency() != 1 {
		t.Error("out-of-range op defaults wrong")
	}
}
