package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses the textual assembly format into a linked Program.
//
// Syntax, one instruction per line:
//
//	# comment (also //)
//	label:
//	  (p1) add r4 = r2, r3
//	  movi r1 = 42
//	  ld4 r5 = [r6+8]
//	  st4 [r6] = r5
//	  cmp.lt p1, p2 = r4, r7
//	  br loop ;;
//	  restart r5
//	  halt
//
// A trailing ";;" sets the stop bit (end of issue group). Branch operands
// are label names. Numeric immediates may be decimal or 0x-hex, optionally
// negative.
func Assemble(src string) (*Program, error) {
	p := &Program{Symbols: make(map[string]int)}
	type fixup struct {
		inst  int
		label string
		line  int
	}
	var fixups []fixup

	for lineNo, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels, possibly several on one line before an instruction.
		for {
			colon := strings.Index(line, ":")
			if colon < 0 || strings.ContainsAny(line[:colon], " \t=[(") {
				break
			}
			label := strings.TrimSpace(line[:colon])
			if label == "" {
				return nil, fmt.Errorf("asm line %d: empty label", lineNo+1)
			}
			if _, dup := p.Symbols[label]; dup {
				return nil, fmt.Errorf("asm line %d: duplicate label %q", lineNo+1, label)
			}
			p.Symbols[label] = len(p.Insts)
			line = strings.TrimSpace(line[colon+1:])
		}
		if line == "" {
			continue
		}
		in, targetLabel, err := parseInst(line)
		if err != nil {
			return nil, fmt.Errorf("asm line %d: %w", lineNo+1, err)
		}
		if targetLabel != "" {
			fixups = append(fixups, fixup{len(p.Insts), targetLabel, lineNo + 1})
		}
		p.Insts = append(p.Insts, in)
	}

	for _, f := range fixups {
		idx, ok := p.Symbols[f.label]
		if !ok {
			return nil, fmt.Errorf("asm line %d: undefined label %q", f.line, f.label)
		}
		p.Insts[f.inst].Target = int32(idx)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustAssemble is Assemble for known-good sources; it panics on error.
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

func stripComment(line string) string {
	if i := strings.Index(line, "#"); i >= 0 {
		line = line[:i]
	}
	if i := strings.Index(line, "//"); i >= 0 {
		line = line[:i]
	}
	return line
}

func parseInst(line string) (Inst, string, error) {
	in := Inst{QP: P0, Target: -1}

	// Stop bit.
	if rest, ok := strings.CutSuffix(strings.TrimSpace(line), ";;"); ok {
		in.Stop = true
		line = rest
	}
	line = strings.TrimSpace(line)

	// Qualifying predicate prefix "(pN)".
	if strings.HasPrefix(line, "(") {
		end := strings.Index(line, ")")
		if end < 0 {
			return in, "", fmt.Errorf("unterminated qualifying predicate")
		}
		qp, err := parseReg(strings.TrimSpace(line[1:end]))
		if err != nil {
			return in, "", err
		}
		if qp.Class != RegClassPred {
			return in, "", fmt.Errorf("qualifying predicate %s is not a predicate register", qp)
		}
		in.QP = qp
		line = strings.TrimSpace(line[end+1:])
	}

	// Mnemonic.
	mnEnd := strings.IndexAny(line, " \t")
	mn := line
	rest := ""
	if mnEnd >= 0 {
		mn, rest = line[:mnEnd], strings.TrimSpace(line[mnEnd+1:])
	}
	op, ok := OpByName(mn)
	if !ok {
		return in, "", fmt.Errorf("unknown mnemonic %q", mn)
	}
	in.Op = op
	sh := op.Info().Shape

	var dstPart, srcPart string
	if eq := strings.Index(rest, "="); eq >= 0 {
		dstPart, srcPart = strings.TrimSpace(rest[:eq]), strings.TrimSpace(rest[eq+1:])
	} else {
		srcPart = rest
	}
	dsts := splitOperands(dstPart)
	srcs := splitOperands(srcPart)

	take := func(list *[]string, what string) (string, error) {
		if len(*list) == 0 {
			return "", fmt.Errorf("%s: missing %s operand", mn, what)
		}
		s := (*list)[0]
		*list = (*list)[1:]
		return s, nil
	}

	var err error
	switch {
	case op.IsLoad():
		var d, m string
		if d, err = take(&dsts, "destination"); err != nil {
			return in, "", err
		}
		if in.Dst, err = parseReg(d); err != nil {
			return in, "", err
		}
		if m, err = take(&srcs, "memory"); err != nil {
			return in, "", err
		}
		if in.Src1, in.Imm, err = parseMem(m); err != nil {
			return in, "", err
		}
	case op.IsStore():
		var m, s string
		if m, err = take(&dsts, "memory"); err != nil {
			return in, "", err
		}
		if in.Src1, in.Imm, err = parseMem(m); err != nil {
			return in, "", err
		}
		if s, err = take(&srcs, "source"); err != nil {
			return in, "", err
		}
		if in.Src2, err = parseReg(s); err != nil {
			return in, "", err
		}
	case sh.Branch:
		label, err := take(&srcs, "target")
		if err != nil {
			return in, "", err
		}
		return in, label, trailing(mn, dsts, srcs)
	default:
		if sh.Dst != RegClassNone {
			d, err := take(&dsts, "destination")
			if err != nil {
				return in, "", err
			}
			if in.Dst, err = parseReg(d); err != nil {
				return in, "", err
			}
		}
		if sh.Dst2 != RegClassNone {
			d, err := take(&dsts, "second destination")
			if err != nil {
				return in, "", err
			}
			if in.Dst2, err = parseReg(d); err != nil {
				return in, "", err
			}
		}
		if sh.Src1 != RegClassNone {
			s, err := take(&srcs, "source")
			if err != nil {
				return in, "", err
			}
			if in.Src1, err = parseReg(s); err != nil {
				return in, "", err
			}
		}
		if sh.Src2 != RegClassNone {
			s, err := take(&srcs, "second source")
			if err != nil {
				return in, "", err
			}
			if in.Src2, err = parseReg(s); err != nil {
				return in, "", err
			}
		}
		if sh.UsesImm {
			s, err := take(&srcs, "immediate")
			if err != nil {
				return in, "", err
			}
			imm, err := parseImm(s)
			if err != nil {
				return in, "", err
			}
			in.Imm = imm
		}
	}
	return in, "", trailing(mn, dsts, srcs)
}

func trailing(mn string, dsts, srcs []string) error {
	if len(dsts) > 0 || len(srcs) > 0 {
		return fmt.Errorf("%s: extra operands %v %v", mn, dsts, srcs)
	}
	return nil
}

func splitOperands(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseReg(s string) (Reg, error) {
	if len(s) < 2 {
		return None, fmt.Errorf("invalid register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil {
		return None, fmt.Errorf("invalid register %q", s)
	}
	switch s[0] {
	case 'r':
		if n < 0 || n >= NumIntRegs {
			return None, fmt.Errorf("register %q out of range", s)
		}
		return IntReg(n), nil
	case 'f':
		if n < 0 || n >= NumFPRegs {
			return None, fmt.Errorf("register %q out of range", s)
		}
		return FPReg(n), nil
	case 'p':
		if n < 0 || n >= NumPredRegs {
			return None, fmt.Errorf("register %q out of range", s)
		}
		return PredReg(n), nil
	}
	return None, fmt.Errorf("invalid register %q", s)
}

// parseMem parses "[rN]", "[rN+imm]" or "[rN-imm]".
func parseMem(s string) (Reg, int32, error) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return None, 0, fmt.Errorf("invalid memory operand %q", s)
	}
	inner := s[1 : len(s)-1]
	sep := strings.IndexAny(inner, "+-")
	regPart, immPart := inner, ""
	if sep > 0 {
		regPart, immPart = inner[:sep], inner[sep:]
	}
	base, err := parseReg(strings.TrimSpace(regPart))
	if err != nil {
		return None, 0, err
	}
	if base.Class != RegClassInt {
		return None, 0, fmt.Errorf("memory base %s is not an integer register", base)
	}
	var imm int32
	if immPart != "" {
		imm, err = parseImm(strings.TrimSpace(immPart))
		if err != nil {
			return None, 0, err
		}
	}
	return base, imm, nil
}

func parseImm(s string) (int32, error) {
	v, err := strconv.ParseInt(strings.TrimPrefix(s, "+"), 0, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid immediate %q", s)
	}
	if v < -1<<31 || v > 1<<32-1 {
		return 0, fmt.Errorf("immediate %q out of 32-bit range", s)
	}
	return int32(uint32(v)), nil
}
