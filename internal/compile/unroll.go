package compile

import (
	"multipass/internal/isa"
	"multipass/internal/prog"
)

// unrollLoops unrolls eligible single-block self-loops by the given factor,
// standing in for the cross-iteration static ILP OpenIMPACT's unrolling and
// modulo scheduling expose (paper §5.1). It returns the number of loops
// unrolled.
//
// A block is eligible when:
//
//   - its final instruction is a conditional branch to the block itself,
//   - the branch's qualifying predicate is produced, together with its
//     complement, by a compare earlier in the block (our canonical loop
//     tail: `cmp pT, pF = ...; (pT) br self`), with no later redefinition,
//   - the block contains no other branches, and
//   - the block is not the last in the unit (the fallthrough successor
//     provides the early-exit target).
//
// The transformation emits factor copies of the body. Copies 1..factor-1
// end with `(pF) br fallthrough` (exit as soon as the continue condition
// fails); the final copy keeps `(pT) br self`. This preserves semantics for
// every trip count. Block-local temporaries (registers defined before any
// use inside the body and referenced nowhere else in the unit) are renamed
// per copy from the unit's unused registers, giving the scheduler
// independent dependence chains to interleave.
func unrollLoops(u *prog.Unit, factor int) (int, []isa.Reg) {
	if factor < 2 {
		return 0, nil
	}
	unrolled := 0
	var scratch []isa.Reg
	for bi, b := range u.Blocks {
		if bi+1 >= len(u.Blocks) {
			continue
		}
		if !eligibleSelfLoop(b) {
			continue
		}
		exitLabel := u.Blocks[bi+1].Label
		if s := unrollOne(u, b, exitLabel, factor); s != nil {
			unrolled++
			scratch = append(scratch, s...)
		}
	}
	return unrolled, scratch
}

// eligibleSelfLoop reports whether b matches the canonical self-loop shape.
func eligibleSelfLoop(b *prog.Block) bool {
	n := len(b.Insts)
	if n < 2 {
		return false
	}
	last := &b.Insts[n-1]
	if last.Op != isa.OpBr || b.BranchLabels[n-1] != b.Label {
		return false
	}
	// Exactly one branch (the back edge).
	for i := 0; i < n-1; i++ {
		if b.Insts[i].Op.Info().Shape.Branch {
			return false
		}
	}
	return findLoopCompare(b) >= 0
}

// findLoopCompare locates the compare producing the back edge's predicate
// and its complement, with no later redefinition of either.
func findLoopCompare(b *prog.Block) int {
	n := len(b.Insts)
	qp := b.Insts[n-1].QP
	var regBuf [4]isa.Reg
	for i := n - 2; i >= 0; i-- {
		in := &b.Insts[i]
		writesQP := false
		for _, w := range in.Writes(regBuf[:0]) {
			if w == qp {
				writesQP = true
			}
		}
		if !writesQP {
			continue
		}
		// The last writer of the predicate must be a compare writing the
		// complement too (Dst = qp, Dst2 = complement).
		if in.Dst == qp && in.Dst2.Class == isa.RegClassPred && !in.Dst2.IsZeroReg() {
			return i
		}
		return -1
	}
	return -1
}

// unrollOne rewrites one eligible block, returning the scratch registers
// whose final values are no longer preserved (the renamed loop temporaries
// and their fresh names), or nil if the rewrite was abandoned. The returned
// slice is non-nil (possibly empty) on success.
func unrollOne(u *prog.Unit, b *prog.Block, exitLabel string, factor int) []isa.Reg {
	n := len(b.Insts)
	cmpIdx := findLoopCompare(b)
	if cmpIdx < 0 {
		return nil
	}
	body := b.Insts[:n-1] // without the back edge
	backEdge := b.Insts[n-1]
	exitQP := b.Insts[cmpIdx].Dst2

	renameable := renameableTemps(u, b, body)
	pools := freeRegisters(u)
	scratch := append([]isa.Reg{}, renameable...)

	var outInsts []isa.Inst
	var outLabels []string
	emit := func(in isa.Inst, label string) {
		outInsts = append(outInsts, in)
		outLabels = append(outLabels, label)
	}

	var regBuf [4]isa.Reg
	for copyIdx := 0; copyIdx < factor; copyIdx++ {
		// Per-copy renaming of block-local temps. The final copy also gets
		// fresh names (the temps are referenced nowhere else, so nothing
		// downstream observes them).
		rename := map[isa.Reg]isa.Reg{}
		if copyIdx > 0 {
			for _, r := range renameable {
				if fresh, ok := pools.take(r.Class); ok {
					rename[r] = fresh
					scratch = append(scratch, fresh)
				}
			}
		}
		apply := func(r isa.Reg) isa.Reg {
			if nr, ok := rename[r]; ok {
				return nr
			}
			return r
		}
		exitQPCopy := exitQP
		for i := range body {
			in := body[i]
			in.QP = apply(in.QP)
			in.Dst = apply(in.Dst)
			in.Dst2 = apply(in.Dst2)
			in.Src1 = apply(in.Src1)
			in.Src2 = apply(in.Src2)
			if i == cmpIdx {
				exitQPCopy = in.Dst2
			}
			emit(in, "")
			_ = regBuf
		}
		if copyIdx < factor-1 {
			// Early exit between copies: continue-condition false.
			emit(isa.Inst{Op: isa.OpBr, QP: exitQPCopy, Target: -1}, exitLabel)
		} else {
			// Final copy keeps the back edge (with any renamed predicate).
			be := backEdge
			be.QP = apply(be.QP)
			emit(be, b.Label)
		}
	}
	b.Insts = outInsts
	b.BranchLabels = outLabels
	return scratch
}

// renameableTemps returns the registers that are defined before any use
// within the body and referenced in no other block of the unit: pure
// block-local temporaries safe to rename per copy.
func renameableTemps(u *prog.Unit, home *prog.Block, body []isa.Inst) []isa.Reg {
	var regBuf [4]isa.Reg
	readFirst := map[isa.Reg]bool{}
	written := map[isa.Reg]bool{}
	for i := range body {
		in := &body[i]
		for _, r := range in.Reads(regBuf[:0]) {
			if !written[r] {
				readFirst[r] = true
			}
		}
		// A predicated write merges with the destination's prior value (the
		// write may be squashed), so it reads the register across the loop
		// back edge; only an unpredicated write fully defines it.
		predicated := in.QP != isa.P0
		for _, w := range in.Writes(regBuf[:0]) {
			if predicated {
				if !written[w] {
					readFirst[w] = true
				}
				continue
			}
			written[w] = true
		}
	}
	usedElsewhere := map[isa.Reg]bool{}
	for _, blk := range u.Blocks {
		if blk == home {
			continue
		}
		for i := range blk.Insts {
			in := &blk.Insts[i]
			for _, r := range in.Reads(regBuf[:0]) {
				usedElsewhere[r] = true
			}
			for _, w := range in.Writes(regBuf[:0]) {
				usedElsewhere[w] = true
			}
		}
	}
	var out []isa.Reg
	for r := range written {
		if r.IsZeroReg() || readFirst[r] || usedElsewhere[r] {
			continue
		}
		out = append(out, r)
	}
	// Deterministic order.
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j].Flat() < out[i].Flat() {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

// regPools hands out registers unused anywhere in the unit.
type regPools struct {
	free map[isa.RegClass][]isa.Reg
}

func freeRegisters(u *prog.Unit) *regPools {
	used := map[isa.Reg]bool{}
	var regBuf [4]isa.Reg
	for _, blk := range u.Blocks {
		for i := range blk.Insts {
			in := &blk.Insts[i]
			for _, r := range in.Reads(regBuf[:0]) {
				used[r] = true
			}
			for _, w := range in.Writes(regBuf[:0]) {
				used[w] = true
			}
		}
	}
	p := &regPools{free: map[isa.RegClass][]isa.Reg{}}
	for i := 1; i < isa.NumIntRegs; i++ {
		if r := isa.IntReg(i); !used[r] {
			p.free[isa.RegClassInt] = append(p.free[isa.RegClassInt], r)
		}
	}
	for i := 0; i < isa.NumFPRegs; i++ {
		if r := isa.FPReg(i); !used[r] {
			p.free[isa.RegClassFP] = append(p.free[isa.RegClassFP], r)
		}
	}
	for i := 1; i < isa.NumPredRegs; i++ {
		if r := isa.PredReg(i); !used[r] {
			p.free[isa.RegClassPred] = append(p.free[isa.RegClassPred], r)
		}
	}
	return p
}

// take pops a free register of the class, if any remain.
func (p *regPools) take(c isa.RegClass) (isa.Reg, bool) {
	pool := p.free[c]
	if len(pool) == 0 {
		return isa.None, false
	}
	r := pool[len(pool)-1]
	p.free[c] = pool[:len(pool)-1]
	return r, true
}
