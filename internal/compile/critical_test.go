package compile

import (
	"testing"

	"multipass/internal/isa"
	"multipass/internal/prog"
)

// pointerChaseUnit builds the canonical critical-SCC shape: a loop whose
// induction is itself a load (p = *p), feeding a body full of dependent
// loads and multi-cycle work.
func pointerChaseUnit(bodyLoads int) *prog.Unit {
	u := prog.NewUnit()
	ptr := isa.IntReg(1)
	e := u.NewBlock("entry")
	e.MovI(ptr, 0x1000)
	e.MovI(isa.IntReg(2), 0)
	loop := u.NewBlock("loop")
	// The SCC: ptr = load [ptr] (loop-carried through itself).
	loop.Load(isa.OpLd4, ptr, ptr, 0)
	// Downstream variable-latency work dependent on ptr.
	for i := 0; i < bodyLoads; i++ {
		r := isa.IntReg(3 + i)
		loop.Load(isa.OpLd4, r, ptr, int32(4+4*i))
		loop.Op3(isa.OpAdd, isa.IntReg(2), isa.IntReg(2), r)
	}
	loop.CmpI(isa.OpCmpNeI, isa.PredReg(1), isa.PredReg(2), ptr, 0)
	loop.Br(isa.PredReg(1), "loop")
	u.NewBlock("exit").Halt()
	return u
}

func TestCriticalLoadDetected(t *testing.T) {
	u := pointerChaseUnit(4)
	g := buildDFG(u)
	ca := findCriticalLoads(g, 2, 2)
	if ca.SCCs == 0 {
		t.Fatal("no SCC found in a loop-carried pointer chase")
	}
	if ca.LoadSCCs == 0 {
		t.Fatal("pointer-chase SCC does not contain the load")
	}
	if len(ca.CriticalLoads) == 0 {
		t.Fatal("pointer-chase load not marked critical")
	}
	// The critical load is the chase load (block "loop", index 0).
	found := false
	for _, r := range ca.CriticalLoads {
		if u.Blocks[r.Block].Label == "loop" && r.Index == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("critical loads = %v, expected the chase load", ca.CriticalLoads)
	}
}

func TestStreamingLoopNotCritical(t *testing.T) {
	// A streaming loop: induction is addi (no load in the SCC), loads are
	// not loop-carried.
	u := prog.NewUnit()
	idx := isa.IntReg(1)
	e := u.NewBlock("entry")
	e.MovI(idx, 0x1000)
	e.MovI(isa.IntReg(2), 0)
	loop := u.NewBlock("loop")
	loop.Load(isa.OpLd4, isa.IntReg(3), idx, 0)
	loop.Op3(isa.OpAdd, isa.IntReg(2), isa.IntReg(2), isa.IntReg(3))
	loop.OpI(isa.OpAddI, idx, idx, 4)
	loop.CmpI(isa.OpCmpLtUI, isa.PredReg(1), isa.PredReg(2), idx, 0x2000)
	loop.Br(isa.PredReg(1), "loop")
	u.NewBlock("exit").Halt()

	g := buildDFG(u)
	ca := findCriticalLoads(g, 2, 2)
	if len(ca.CriticalLoads) != 0 {
		t.Errorf("streaming loop loads marked critical: %v", ca.CriticalLoads)
	}
	// The accumulator and induction SCCs exist, but contain no loads.
	if ca.SCCs == 0 {
		t.Error("expected induction/accumulator SCCs")
	}
	if ca.LoadSCCs != 0 {
		t.Error("no load SCC expected in streaming loop")
	}
}

func TestRestartInsertion(t *testing.T) {
	u := pointerChaseUnit(4)
	p, info, err := Compile(u, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if info.Restarts == 0 {
		t.Fatal("no RESTART inserted for pointer chase")
	}
	// The RESTART must consume the chase pointer and come after the load.
	restartIdx, loadIdx := -1, -1
	for i := range p.Insts {
		in := &p.Insts[i]
		if in.Op == isa.OpRestart && in.Src1 == isa.IntReg(1) {
			restartIdx = i
		}
		if in.Op == isa.OpLd4 && in.Dst == isa.IntReg(1) {
			loadIdx = i
		}
	}
	if restartIdx < 0 {
		t.Fatalf("RESTART not found in program:\n%s", p)
	}
	if loadIdx < 0 || restartIdx < loadIdx {
		t.Fatalf("RESTART at %d precedes its load at %d:\n%s", restartIdx, loadIdx, p)
	}
}

func TestRestartDisabled(t *testing.T) {
	u := pointerChaseUnit(4)
	opts := DefaultOptions()
	opts.InsertRestarts = false
	p, info, err := Compile(u, opts)
	if err != nil {
		t.Fatal(err)
	}
	if info.Restarts != 0 {
		t.Error("restarts inserted despite being disabled")
	}
	for i := range p.Insts {
		if p.Insts[i].Op == isa.OpRestart {
			t.Fatal("RESTART present despite being disabled")
		}
	}
}

func TestTarjanSmallGraphs(t *testing.T) {
	// 0 -> 1 -> 2 -> 0 (one SCC), 3 isolated, 4 -> 4 self loop.
	succs := [][]int{{1}, {2}, {0}, {}, {4}}
	sccs := tarjanSCC(succs)
	sizes := map[int]int{}
	for _, c := range sccs {
		sizes[len(c)]++
	}
	if len(sccs) != 3 || sizes[3] != 1 || sizes[1] != 2 {
		t.Errorf("sccs = %v", sccs)
	}

	// DAG: all singletons.
	dag := [][]int{{1, 2}, {3}, {3}, {}}
	if got := tarjanSCC(dag); len(got) != 4 {
		t.Errorf("dag sccs = %v", got)
	}

	// Two separate cycles sharing no nodes.
	two := [][]int{{1}, {0}, {3}, {2}}
	if got := tarjanSCC(two); len(got) != 2 {
		t.Errorf("two-cycle sccs = %v", got)
	}

	// Empty graph.
	if got := tarjanSCC(nil); len(got) != 0 {
		t.Errorf("empty sccs = %v", got)
	}
}

func TestTarjanReverseTopologicalOrder(t *testing.T) {
	// 0 -> 1 -> 2; Tarjan emits callee components first.
	succs := [][]int{{1}, {2}, {}}
	sccs := tarjanSCC(succs)
	if len(sccs) != 3 {
		t.Fatalf("sccs = %v", sccs)
	}
	if sccs[0][0] != 2 || sccs[2][0] != 0 {
		t.Errorf("order not reverse topological: %v", sccs)
	}
}

func TestCompileInfoCounts(t *testing.T) {
	u := pointerChaseUnit(3)
	_, info, err := Compile(u, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if info.Insts == 0 || info.Groups == 0 {
		t.Error("empty compile info")
	}
	if info.CriticalLoads != info.Restarts {
		t.Errorf("critical loads %d != restarts %d", info.CriticalLoads, info.Restarts)
	}
}

func TestCompileDoesNotMutateInput(t *testing.T) {
	u := pointerChaseUnit(2)
	before := len(u.Blocks[1].Insts)
	if _, _, err := Compile(u, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if len(u.Blocks[1].Insts) != before {
		t.Error("Compile mutated the input unit")
	}
}
