package compile

// tarjanSCC returns the strongly connected components of a directed graph
// given by succs, in reverse topological order. Components are slices of
// node indices. The implementation is iterative so pathological programs
// cannot overflow the goroutine stack.
func tarjanSCC(succs [][]int) [][]int {
	n := len(succs)
	const undef = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = undef
	}
	var (
		stack   []int
		sccs    [][]int
		counter int
	)

	type frame struct {
		v    int
		next int // next successor offset to visit
	}
	for root := 0; root < n; root++ {
		if index[root] != undef {
			continue
		}
		work := []frame{{root, 0}}
		index[root] = counter
		low[root] = counter
		counter++
		stack = append(stack, root)
		onStack[root] = true

		for len(work) > 0 {
			f := &work[len(work)-1]
			v := f.v
			if f.next < len(succs[v]) {
				w := succs[v][f.next]
				f.next++
				if index[w] == undef {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					work = append(work, frame{w, 0})
				} else if onStack[w] {
					if index[w] < low[v] {
						low[v] = index[w]
					}
				}
				continue
			}
			// Done with v.
			work = work[:len(work)-1]
			if len(work) > 0 {
				parent := work[len(work)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				sccs = append(sccs, comp)
			}
		}
	}
	return sccs
}
