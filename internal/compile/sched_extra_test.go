package compile

import (
	"testing"

	"multipass/internal/isa"
	"multipass/internal/prog"
)

// TestRestartStaysNearProducer: the scheduler must anchor a RESTART close
// behind its producing load (paper §3.3 places it immediately after), not
// let it drift to the end of the segment.
func TestRestartStaysNearProducer(t *testing.T) {
	u := prog.NewUnit()
	b := u.NewBlock("entry")
	b.MovI(isa.IntReg(1), 0x1000)
	b.Load(isa.OpLd4, isa.IntReg(2), isa.IntReg(1), 0)
	b.Restart(isa.IntReg(2))
	// A pile of independent work that would otherwise fill the early
	// groups.
	for i := 3; i < 30; i++ {
		b.MovI(isa.IntReg(i), int32(i))
	}
	b.Halt()
	p, _, err := Compile(u, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	loadIdx, restartIdx := -1, -1
	for i := range p.Insts {
		if p.Insts[i].Op == isa.OpLd4 {
			loadIdx = i
		}
		if p.Insts[i].Op == isa.OpRestart {
			restartIdx = i
		}
	}
	if loadIdx < 0 || restartIdx < 0 {
		t.Fatal("load or restart missing")
	}
	if restartIdx < loadIdx {
		t.Fatalf("restart at %d before its load at %d", restartIdx, loadIdx)
	}
	// With 27 independent movis competing, an unanchored restart would sink
	// to the tail; anchored, it lands within a couple of groups of the load.
	if restartIdx-loadIdx > 12 {
		t.Errorf("restart drifted %d instructions past its load:\n%s", restartIdx-loadIdx, p)
	}
}

// TestLatencySpacing: a consumer of a multiply must land in a later issue
// group than the multiply. (Empty cycles between groups are not encoded in
// the stop-bit stream — the hardware scoreboard enforces the actual
// latency — so the observable contract is strictly-later group, never the
// same group.)
func TestLatencySpacing(t *testing.T) {
	u := prog.NewUnit()
	b := u.NewBlock("entry")
	b.MovI(isa.IntReg(1), 3)
	b.Op3(isa.OpMul, isa.IntReg(2), isa.IntReg(1), isa.IntReg(1))
	b.Op3(isa.OpAdd, isa.IntReg(3), isa.IntReg(2), isa.IntReg(2))
	b.Halt()
	p, _, err := Compile(u, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Count group boundaries between the mul and its consumer.
	mulIdx, addIdx := -1, -1
	for i := range p.Insts {
		if p.Insts[i].Op == isa.OpMul {
			mulIdx = i
		}
		if p.Insts[i].Op == isa.OpAdd {
			addIdx = i
		}
	}
	if mulIdx < 0 || addIdx < 0 || addIdx < mulIdx {
		t.Fatalf("mul/add order wrong: %d, %d", mulIdx, addIdx)
	}
	groups := 0
	for i := mulIdx; i < addIdx; i++ {
		if p.Insts[i].Stop {
			groups++
		}
	}
	if groups < 1 {
		t.Errorf("consumer shares the mul's issue group:\n%s", p)
	}
}

// TestStopBitsTerminateEveryGroup: the final instruction of the program and
// of every block must carry a stop bit.
func TestStopBitsTerminateEveryGroup(t *testing.T) {
	u := pointerChaseUnit(3)
	p, _, err := Compile(u, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !p.Insts[len(p.Insts)-1].Stop {
		t.Error("program does not end on a stop bit")
	}
	// Branches end their group.
	for i := range p.Insts {
		if p.Insts[i].Op.IsBranch() && !p.Insts[i].Stop {
			t.Errorf("branch at %d lacks a stop bit", i)
		}
	}
}

// TestSegmentationAroundMidBlockBranch: instructions after a mid-block
// branch must never be scheduled before it.
func TestSegmentationAroundMidBlockBranch(t *testing.T) {
	u := prog.NewUnit()
	b := u.NewBlock("entry")
	b.MovI(isa.IntReg(1), 5)
	b.CmpI(isa.OpCmpEqI, isa.PredReg(1), isa.PredReg(2), isa.IntReg(1), 5)
	b.Br(isa.PredReg(1), "out")
	b.MovI(isa.IntReg(2), 1) // fallthrough-only work
	b.MovI(isa.IntReg(3), 2)
	u.NewBlock("out").Halt()
	p, _, err := Compile(u, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	brIdx := -1
	for i := range p.Insts {
		if p.Insts[i].Op == isa.OpBr {
			brIdx = i
		}
	}
	for i := 0; i < brIdx; i++ {
		if p.Insts[i].Dst == isa.IntReg(2) || p.Insts[i].Dst == isa.IntReg(3) {
			t.Fatalf("post-branch work hoisted above the branch:\n%s", p)
		}
	}
}

// TestDFGSelfLoop: a single instruction that feeds itself through the loop
// (ld4 r1 = [r1] in a loop) forms an SCC by itself.
func TestDFGSelfLoop(t *testing.T) {
	u := prog.NewUnit()
	e := u.NewBlock("entry")
	e.MovI(isa.IntReg(1), 0x1000)
	e.MovI(isa.IntReg(2), 10)
	loop := u.NewBlock("loop")
	loop.Load(isa.OpLd4, isa.IntReg(1), isa.IntReg(1), 0) // r1 = [r1]
	loop.Load(isa.OpLd4, isa.IntReg(3), isa.IntReg(1), 4)
	loop.Load(isa.OpLd4, isa.IntReg(4), isa.IntReg(1), 8)
	loop.OpI(isa.OpSubI, isa.IntReg(2), isa.IntReg(2), 1)
	loop.CmpI(isa.OpCmpNeI, isa.PredReg(1), isa.PredReg(2), isa.IntReg(2), 0)
	loop.Br(isa.PredReg(1), "loop")
	u.NewBlock("exit").Halt()

	g := buildDFG(u)
	ca := findCriticalLoads(g, 2, 2)
	if len(ca.CriticalLoads) == 0 {
		t.Fatal("self-loop chase load not detected as critical")
	}
}

// TestReachingDefsAcrossBlocks: a use in a later block sees definitions
// from every predecessor path.
func TestReachingDefsAcrossBlocks(t *testing.T) {
	u := prog.NewUnit()
	e := u.NewBlock("entry")
	e.MovI(isa.IntReg(1), 1) // def A
	e.CmpI(isa.OpCmpEqI, isa.PredReg(1), isa.PredReg(2), isa.IntReg(1), 1)
	e.Br(isa.PredReg(1), "join")
	alt := u.NewBlock("alt")
	alt.MovI(isa.IntReg(1), 2) // def B
	j := u.NewBlock("join")
	j.Op3(isa.OpAdd, isa.IntReg(2), isa.IntReg(1), isa.IntReg(1)) // use
	j.Halt()

	g := buildDFG(u)
	// Find the global index of the use (the add) and check it has two
	// distinct producers.
	var useIdx = -1
	for gi, in := range g.insts {
		if in.Op == isa.OpAdd {
			useIdx = gi
		}
	}
	if useIdx < 0 {
		t.Fatal("use not found")
	}
	producers := map[int]bool{}
	for _, p := range g.preds[useIdx] {
		if g.insts[p].Op == isa.OpMovI {
			producers[p] = true
		}
	}
	if len(producers) != 2 {
		t.Errorf("use sees %d movi producers, want 2 (both paths)", len(producers))
	}
}
