package compile

import (
	"math/rand"
	"testing"

	"multipass/internal/arch"
	"multipass/internal/isa"
	"multipass/internal/prog"
)

// streamLoop builds a canonical eligible self-loop: load, FP-ish work
// through a pure temporary, accumulate, advance, test, branch.
func streamLoop(trip int32) *prog.Unit {
	u := prog.NewUnit()
	e := u.NewBlock("entry")
	e.MovI(isa.IntReg(1), 0x1000) // base
	e.MovI(isa.IntReg(2), trip)   // count
	e.MovI(isa.IntReg(3), 0)      // acc
	b := u.NewBlock("loop")
	b.Load(isa.OpLd4, isa.IntReg(4), isa.IntReg(1), 0) // temp (renameable)
	b.Op3(isa.OpMul, isa.IntReg(5), isa.IntReg(4), isa.IntReg(4))
	b.Op3(isa.OpAdd, isa.IntReg(3), isa.IntReg(3), isa.IntReg(5))
	b.OpI(isa.OpAddI, isa.IntReg(1), isa.IntReg(1), 4)
	b.OpI(isa.OpSubI, isa.IntReg(2), isa.IntReg(2), 1)
	b.CmpI(isa.OpCmpNeI, isa.PredReg(1), isa.PredReg(2), isa.IntReg(2), 0)
	b.Br(isa.PredReg(1), "loop")
	x := u.NewBlock("exit")
	x.MovI(isa.IntReg(9), 0x8000)
	x.Store(isa.OpSt4, isa.IntReg(9), 0, isa.IntReg(3))
	x.Halt()
	return u
}

// TestUnrollCorrectForAllTripCounts: unrolling must preserve the live-out
// accumulator for every trip count, including those not divisible by the
// unroll factor.
func TestUnrollCorrectForAllTripCounts(t *testing.T) {
	for _, factor := range []int{2, 3, 4} {
		for trip := int32(1); trip <= 9; trip++ {
			u := streamLoop(trip)
			ref, err := u.Link()
			if err != nil {
				t.Fatal(err)
			}
			opts := DefaultOptions()
			opts.Unroll = factor
			p, info, err := Compile(u, opts)
			if err != nil {
				t.Fatal(err)
			}
			if info.Unrolled != 1 {
				t.Fatalf("factor %d trip %d: unrolled %d loops, want 1", factor, trip, info.Unrolled)
			}
			mem := arch.NewMemory()
			for i := 0; i < 16; i++ {
				mem.Store(uint32(0x1000+4*i), 4, uint64(i+2))
			}
			r1, err := arch.Run(ref, mem.Clone(), 100000)
			if err != nil {
				t.Fatal(err)
			}
			r2, err := arch.Run(p, mem.Clone(), 100000)
			if err != nil {
				t.Fatal(err)
			}
			want := r1.State.RF.Read(isa.IntReg(3)).Uint32()
			got := r2.State.RF.Read(isa.IntReg(3)).Uint32()
			if got != want {
				t.Errorf("factor %d trip %d: acc = %d, want %d\n%s", factor, trip, got, want, p)
			}
		}
	}
}

// TestUnrollRenamesTemps: the pure temporary (r4/r5 above) must get fresh
// names in later copies so the chains are independent.
func TestUnrollRenamesTemps(t *testing.T) {
	u := streamLoop(10)
	opts := DefaultOptions()
	opts.Unroll = 2
	opts.Schedule = false // keep program order readable
	p, info, err := Compile(u, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Scratch) == 0 {
		t.Fatal("no scratch registers reported")
	}
	// The second copy's load must not target r4.
	loads := 0
	secondLoadDst := isa.None
	for i := range p.Insts {
		if p.Insts[i].Op == isa.OpLd4 {
			loads++
			if loads == 2 {
				secondLoadDst = p.Insts[i].Dst
			}
		}
	}
	if loads != 2 {
		t.Fatalf("loads = %d, want 2", loads)
	}
	if secondLoadDst == isa.IntReg(4) {
		t.Errorf("second copy's temp not renamed:\n%s", p)
	}
}

// TestUnrollSkipsIneligibleLoops: multi-block loops and loops whose branch
// predicate is not a complement-producing compare stay untouched.
func TestUnrollSkipsIneligibleLoops(t *testing.T) {
	// Multi-block loop.
	u := prog.NewUnit()
	e := u.NewBlock("entry")
	e.MovI(isa.IntReg(1), 5)
	h := u.NewBlock("head")
	h.OpI(isa.OpSubI, isa.IntReg(1), isa.IntReg(1), 1)
	h.CmpI(isa.OpCmpNeI, isa.PredReg(1), isa.PredReg(2), isa.IntReg(1), 3)
	h.Br(isa.PredReg(1), "tail")
	mid := u.NewBlock("mid")
	mid.MovI(isa.IntReg(2), 9)
	tl := u.NewBlock("tail")
	tl.CmpI(isa.OpCmpNeI, isa.PredReg(3), isa.PredReg(4), isa.IntReg(1), 0)
	tl.Br(isa.PredReg(3), "head")
	u.NewBlock("exit").Halt()
	_, info, err := Compile(u, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if info.Unrolled != 0 {
		t.Errorf("multi-block loop unrolled %d times", info.Unrolled)
	}
}

// TestUnrollImprovesStaticILP: the unrolled stream loop packs into fewer
// groups per iteration than 2x the rolled loop's groups.
func TestUnrollImprovesStaticILP(t *testing.T) {
	rolled := DefaultOptions()
	rolled.Unroll = 1
	_, rInfo, err := Compile(streamLoop(100), rolled)
	if err != nil {
		t.Fatal(err)
	}
	unrolled := DefaultOptions()
	unrolled.Unroll = 2
	_, uInfo, err := Compile(streamLoop(100), unrolled)
	if err != nil {
		t.Fatal(err)
	}
	if uInfo.Groups >= 2*rInfo.Groups {
		t.Errorf("unrolled static schedule has %d groups vs rolled %d: no compaction",
			uInfo.Groups, rInfo.Groups)
	}
}

// TestUnrollRandomLoopsAllFactors fuzzes the transformation against the
// reference across factors, masking scratch registers.
func TestUnrollRandomLoopsAllFactors(t *testing.T) {
	rng := rand.New(rand.NewSource(555))
	for trial := 0; trial < 40; trial++ {
		u := prog.NewUnit()
		e := u.NewBlock("entry")
		e.MovI(isa.IntReg(10), int32(1+rng.Intn(9)))
		e.MovI(isa.IntReg(1), 0x1000)
		loop := u.NewBlock("loop")
		body := randomStraightLine(rng, 18).Blocks[0]
		for i := 1; i < len(body.Insts)-1; i++ {
			loop.Emit(body.Insts[i], "")
		}
		loop.OpI(isa.OpSubI, isa.IntReg(10), isa.IntReg(10), 1)
		loop.CmpI(isa.OpCmpNeI, isa.PredReg(3), isa.PredReg(4), isa.IntReg(10), 0)
		loop.Br(isa.PredReg(3), "loop")
		u.NewBlock("exit").Halt()
		mem := arch.NewMemory()
		for i := 0; i < 16; i++ {
			mem.Store(uint32(0x1000+4*i), 4, uint64(rng.Uint32()))
		}
		opts := DefaultOptions()
		opts.Unroll = 2 + trial%3
		runBoth(t, u, opts, mem)
	}
}
