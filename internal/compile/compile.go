package compile

import (
	"multipass/internal/isa"
	"multipass/internal/prog"
)

// Options controls the compilation pipeline.
type Options struct {
	// Schedule enables list scheduling of each block into issue groups.
	// When false, every instruction gets its own issue group (stop bit),
	// modeling completely unscheduled code.
	Schedule bool
	// InsertRestarts enables the critical-load analysis and RESTART
	// insertion of paper §3.3.
	InsertRestarts bool
	// CriticalFactor is how many times more variable-latency instructions
	// an SCC must feed than it consumes for its loads to be critical
	// ("much larger" in the paper).
	CriticalFactor float64
	// MinDownstream is the minimum number of downstream variable-latency
	// instructions for criticality.
	MinDownstream int
	// Caps is the issue capacity the scheduler packs against.
	Caps isa.FUCaps
	// Unroll is the unrolling factor applied to eligible single-block
	// self-loops before scheduling (0 or 1 disables). It stands in for the
	// cross-iteration static ILP OpenIMPACT's unrolling and modulo
	// scheduling provide (paper §5.1).
	Unroll int
}

// DefaultOptions returns the configuration used for the paper reproduction.
func DefaultOptions() Options {
	return Options{
		Schedule:       true,
		InsertRestarts: true,
		CriticalFactor: 2,
		MinDownstream:  2,
		Caps:           isa.DefaultFUCaps(),
		Unroll:         2,
	}
}

// Info reports what the compiler did.
type Info struct {
	SCCs          int // non-trivial data-flow SCCs
	LoadSCCs      int // of which contain loads
	CriticalLoads int
	Restarts      int // RESTART instructions inserted
	Unrolled      int // self-loops unrolled
	Groups        int // issue groups after scheduling
	Insts         int // total instructions emitted
	// Scratch lists registers whose final values are not preserved by the
	// compilation (loop-local temporaries renamed by unrolling, plus the
	// fresh registers they were renamed to). Everything else — memory and
	// every other register — is bit-identical to the uncompiled program's
	// outcome.
	Scratch []isa.Reg
}

// Compile runs the compilation pipeline on a copy of the unit and links the
// result: critical-load RESTART insertion (optional), per-block list
// scheduling (optional), layout, and target resolution.
func Compile(u *prog.Unit, opts Options) (*isa.Program, Info, error) {
	var info Info
	work := cloneUnit(u)

	info.Unrolled, info.Scratch = unrollLoops(work, opts.Unroll)

	if opts.InsertRestarts {
		g := buildDFG(work)
		ca := findCriticalLoads(g, opts.CriticalFactor, opts.MinDownstream)
		info.SCCs = ca.SCCs
		info.LoadSCCs = ca.LoadSCCs
		info.CriticalLoads = len(ca.CriticalLoads)
		info.Restarts = insertRestarts(work, ca.CriticalLoads)
	}

	for _, b := range work.Blocks {
		if opts.Schedule {
			insts, labels, groups := scheduleBlock(b.Insts, b.BranchLabels, &opts.Caps)
			b.Insts, b.BranchLabels = insts, labels
			info.Groups += groups
		} else {
			for i := range b.Insts {
				b.Insts[i].Stop = true
			}
			info.Groups += len(b.Insts)
		}
		info.Insts += len(b.Insts)
	}

	p, err := work.Link()
	if err != nil {
		return nil, info, err
	}
	return p, info, nil
}

// MustCompile is Compile for known-good units; it panics on error.
func MustCompile(u *prog.Unit, opts Options) *isa.Program {
	p, _, err := Compile(u, opts)
	if err != nil {
		panic(err)
	}
	return p
}

// cloneUnit deep-copies a unit so compilation never mutates the caller's IR.
func cloneUnit(u *prog.Unit) *prog.Unit {
	c := prog.NewUnit()
	for _, b := range u.Blocks {
		nb := c.NewBlock(b.Label)
		nb.Insts = append([]isa.Inst(nil), b.Insts...)
		nb.BranchLabels = append([]string(nil), b.BranchLabels...)
	}
	return c
}
