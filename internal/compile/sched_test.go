package compile

import (
	"math/rand"
	"testing"

	"multipass/internal/arch"
	"multipass/internal/isa"
	"multipass/internal/prog"
)

// runBoth links the unit unscheduled and compiled with opts, runs both on
// clones of mem, and checks that the final architectural states agree.
func runBoth(t *testing.T, u *prog.Unit, opts Options, mem *arch.Memory) (*arch.RunResult, *arch.RunResult) {
	t.Helper()
	ref, err := u.Link()
	if err != nil {
		t.Fatal(err)
	}
	sched, info, err := Compile(u, opts)
	if err != nil {
		t.Fatal(err)
	}
	if mem == nil {
		mem = arch.NewMemory()
	}
	m1, m2 := mem.Clone(), mem.Clone()
	r1, err := arch.Run(ref, m1, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := arch.Run(sched, m2, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	scratch := map[isa.Reg]bool{}
	for _, r := range info.Scratch {
		scratch[r] = true
	}
	var diverged []isa.Reg
	for _, r := range r1.State.RF.Diff(r2.State.RF) {
		if !scratch[r] {
			diverged = append(diverged, r)
		}
	}
	if len(diverged) > 0 {
		t.Fatalf("register state diverged after scheduling: %v\nprogram:\n%s", diverged, sched)
	}
	if !m1.Equal(m2) {
		t.Fatalf("memory diverged after scheduling\nprogram:\n%s", sched)
	}
	return r1, r2
}

func TestSchedulePreservesCountdown(t *testing.T) {
	u := prog.NewUnit()
	r1, r2 := isa.IntReg(1), isa.IntReg(2)
	e := u.NewBlock("entry")
	e.MovI(r1, 20)
	e.MovI(r2, 0)
	loop := u.NewBlock("loop")
	loop.Op3(isa.OpAdd, r2, r2, r1)
	loop.OpI(isa.OpSubI, r1, r1, 1)
	loop.CmpI(isa.OpCmpNeI, isa.PredReg(1), isa.PredReg(2), r1, 0)
	loop.Br(isa.PredReg(1), "loop")
	u.NewBlock("exit").Halt()
	runBoth(t, u, DefaultOptions(), nil)
}

func TestSchedulePacksIndependentOps(t *testing.T) {
	u := prog.NewUnit()
	b := u.NewBlock("entry")
	for i := 1; i <= 6; i++ {
		b.MovI(isa.IntReg(i), int32(i))
	}
	b.Halt()
	p, info, err := Compile(u, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Six independent movi fit in one 6-wide group; halt needs a branch
	// unit in its own or the same group.
	if info.Groups > 2 {
		t.Errorf("independent ops scheduled into %d groups:\n%s", info.Groups, p)
	}
}

func TestScheduleSerializesDependentChain(t *testing.T) {
	u := prog.NewUnit()
	b := u.NewBlock("entry")
	b.MovI(isa.IntReg(1), 1)
	for i := 2; i <= 7; i++ {
		b.Op3(isa.OpAdd, isa.IntReg(i), isa.IntReg(i-1), isa.IntReg(i-1))
	}
	b.Halt()
	_, info, err := Compile(u, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if info.Groups < 7 {
		t.Errorf("dependent chain packed into %d groups, want >= 7", info.Groups)
	}
	runBoth(t, u, DefaultOptions(), nil)
}

func TestScheduleRespectsLoadPorts(t *testing.T) {
	u := prog.NewUnit()
	b := u.NewBlock("entry")
	b.MovI(isa.IntReg(1), 0x100)
	for i := 2; i <= 7; i++ {
		b.Load(isa.OpLd4, isa.IntReg(i), isa.IntReg(1), int32(4*i))
	}
	b.Halt()
	p, _, err := Compile(u, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Count loads per issue group; never more than MaxLoads.
	caps := isa.DefaultFUCaps()
	loads := 0
	for i := range p.Insts {
		if p.Insts[i].Op.IsLoad() {
			loads++
		}
		if p.Insts[i].Stop {
			if loads > caps.MaxLoads {
				t.Fatalf("group ending at %d has %d loads (max %d):\n%s", i, loads, caps.MaxLoads, p)
			}
			loads = 0
		}
	}
}

func TestScheduleKeepsBranchLast(t *testing.T) {
	u := prog.NewUnit()
	b := u.NewBlock("entry")
	b.MovI(isa.IntReg(1), 5)
	b.CmpI(isa.OpCmpEqI, isa.PredReg(1), isa.PredReg(2), isa.IntReg(1), 5)
	b.MovI(isa.IntReg(2), 9) // independent, could float anywhere
	b.MovI(isa.IntReg(3), 9)
	b.Br(isa.PredReg(1), "target")
	b.MovI(isa.IntReg(4), 1) // fallthrough path
	u.NewBlock("target").Halt()
	p, _, err := Compile(u, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Find the branch; every instruction after it must come from the
	// post-branch segment (here: the single movi r4 and halt).
	brIdx := -1
	for i := range p.Insts {
		if p.Insts[i].Op == isa.OpBr {
			brIdx = i
		}
	}
	if brIdx < 0 {
		t.Fatal("branch disappeared")
	}
	for i := 0; i < brIdx; i++ {
		if p.Insts[i].Dst == isa.IntReg(4) {
			t.Fatalf("post-branch instruction hoisted above branch:\n%s", p)
		}
	}
	runBoth(t, u, DefaultOptions(), nil)
}

func TestScheduleStoreLoadOrder(t *testing.T) {
	// st [r1]; ld r2=[r1] must not be reordered or co-issued such that the
	// load misses the stored value.
	u := prog.NewUnit()
	b := u.NewBlock("entry")
	b.MovI(isa.IntReg(1), 0x200)
	b.MovI(isa.IntReg(3), 77)
	b.Store(isa.OpSt4, isa.IntReg(1), 0, isa.IntReg(3))
	b.Load(isa.OpLd4, isa.IntReg(2), isa.IntReg(1), 0)
	b.Store(isa.OpSt4, isa.IntReg(1), 4, isa.IntReg(2))
	b.Halt()
	_, res := runBoth(t, u, DefaultOptions(), nil)
	if got := res.State.RF.Read(isa.IntReg(2)).Uint32(); got != 77 {
		t.Errorf("load after store read %d, want 77", got)
	}
}

func TestScheduleWithoutScheduling(t *testing.T) {
	u := prog.NewUnit()
	b := u.NewBlock("entry")
	b.MovI(isa.IntReg(1), 1)
	b.MovI(isa.IntReg(2), 2)
	b.Halt()
	opts := DefaultOptions()
	opts.Schedule = false
	p, info, err := Compile(u, opts)
	if err != nil {
		t.Fatal(err)
	}
	if info.Groups != 3 {
		t.Errorf("unscheduled groups = %d, want 3", info.Groups)
	}
	for i := range p.Insts {
		if !p.Insts[i].Stop {
			t.Errorf("inst %d missing stop bit in unscheduled mode", i)
		}
	}
}

// randomStraightLine generates a random branch-free program touching a small
// register and memory window, for the semantic-preservation property test.
func randomStraightLine(rng *rand.Rand, n int) *prog.Unit {
	u := prog.NewUnit()
	b := u.NewBlock("entry")
	b.MovI(isa.IntReg(1), 0x1000) // memory base
	regs := []isa.Reg{isa.IntReg(2), isa.IntReg(3), isa.IntReg(4), isa.IntReg(5), isa.IntReg(6)}
	anyReg := func() isa.Reg { return regs[rng.Intn(len(regs))] }
	for i := 0; i < n; i++ {
		switch rng.Intn(10) {
		case 0:
			b.Load(isa.OpLd4, anyReg(), isa.IntReg(1), int32(4*rng.Intn(16)))
		case 1:
			b.Store(isa.OpSt4, isa.IntReg(1), int32(4*rng.Intn(16)), anyReg())
		case 2:
			b.OpI(isa.OpAddI, anyReg(), anyReg(), int32(rng.Intn(100)))
		case 3:
			b.Op3(isa.OpMul, anyReg(), anyReg(), anyReg())
		case 4:
			b.CmpI(isa.OpCmpLtI, isa.PredReg(1), isa.PredReg(2), anyReg(), int32(rng.Intn(50)))
		case 5:
			in := b.OpI(isa.OpAddI, anyReg(), anyReg(), 1)
			if rng.Intn(2) == 0 {
				in.QP = isa.PredReg(1)
			} else {
				in.QP = isa.PredReg(2)
			}
		case 6:
			b.Op3(isa.OpXor, anyReg(), anyReg(), anyReg())
		case 7:
			b.Op3(isa.OpSub, anyReg(), anyReg(), anyReg())
		case 8:
			b.OpI(isa.OpShlI, anyReg(), anyReg(), int32(rng.Intn(5)))
		case 9:
			b.Op3(isa.OpAnd, anyReg(), anyReg(), anyReg())
		}
	}
	b.Halt()
	return u
}

func TestSchedulePreservesRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		u := randomStraightLine(rng, 60)
		mem := arch.NewMemory()
		for i := 0; i < 16; i++ {
			mem.Store(uint32(0x1000+4*i), 4, uint64(rng.Uint32()))
		}
		runBoth(t, u, DefaultOptions(), mem)
	}
}

func TestSchedulePreservesRandomLoops(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		u := prog.NewUnit()
		e := u.NewBlock("entry")
		e.MovI(isa.IntReg(10), int32(3+rng.Intn(8))) // trip count
		e.MovI(isa.IntReg(1), 0x1000)
		loop := u.NewBlock("loop")
		body := randomStraightLine(rng, 25).Blocks[0]
		// Copy the body (minus its own halt and base init).
		for i := 1; i < len(body.Insts)-1; i++ {
			loop.Emit(body.Insts[i], "")
		}
		loop.OpI(isa.OpSubI, isa.IntReg(10), isa.IntReg(10), 1)
		loop.CmpI(isa.OpCmpNeI, isa.PredReg(3), isa.PredReg(4), isa.IntReg(10), 0)
		loop.Br(isa.PredReg(3), "loop")
		u.NewBlock("exit").Halt()
		mem := arch.NewMemory()
		for i := 0; i < 16; i++ {
			mem.Store(uint32(0x1000+4*i), 4, uint64(rng.Uint32()))
		}
		runBoth(t, u, DefaultOptions(), mem)
	}
}
