package compile

import (
	"multipass/internal/isa"
	"multipass/internal/prog"
)

// criticalAnalysis is the result of the critical-load pass.
type criticalAnalysis struct {
	SCCs          int // non-trivial SCCs (size > 1 or self-loop)
	LoadSCCs      int // non-trivial SCCs containing at least one load
	CriticalLoads []globalRef
}

// globalRef names a static instruction by block and index within the block.
type globalRef struct {
	Block int
	Index int
}

// findCriticalLoads implements the paper's §3.3 heuristic: SCCs of the
// data-flow graph represent loop-carried flow; if an SCC precedes (feeds)
// many more variable-latency instructions than it succeeds, its loads are
// critical, and a RESTART should follow each one.
//
// "Variable latency" counts loads and any operation with latency > 1.
// The SCC's loads are critical when downstream > factor*upstream and
// downstream >= minDownstream.
func findCriticalLoads(g *dfg, factor float64, minDownstream int) criticalAnalysis {
	var res criticalAnalysis
	sccs := tarjanSCC(g.succs)

	selfLoop := func(v int) bool {
		for _, w := range g.succs[v] {
			if w == v {
				return true
			}
		}
		return false
	}

	variable := func(v int) bool {
		op := g.insts[v].Op
		return op.IsLoad() || op.Latency() > 1
	}

	for _, comp := range sccs {
		if len(comp) == 1 && !selfLoop(comp[0]) {
			continue
		}
		res.SCCs++
		hasLoad := false
		for _, v := range comp {
			if g.insts[v].Op.IsLoad() {
				hasLoad = true
				break
			}
		}
		if !hasLoad {
			continue
		}
		res.LoadSCCs++

		inComp := make(map[int]bool, len(comp))
		for _, v := range comp {
			inComp[v] = true
		}
		down := reachCount(g.succs, comp, inComp, variable)
		up := reachCount(g.preds, comp, inComp, variable)
		if down < minDownstream || float64(down) <= factor*float64(up) {
			continue
		}
		for _, v := range comp {
			in := g.insts[v]
			// RESTART consumes an integer register (the load's destination);
			// FP loads in an SCC cannot drive a restart directly.
			if in.Op.IsLoad() && in.Dst.Class == isa.RegClassInt {
				bi := g.home[v]
				for idx, gi := range g.blocks[bi] {
					if gi == v {
						res.CriticalLoads = append(res.CriticalLoads, globalRef{bi, idx})
						break
					}
				}
			}
		}
	}
	return res
}

// reachCount counts nodes satisfying pred reachable from the component via
// the given adjacency (excluding the component itself).
func reachCount(adj [][]int, comp []int, inComp map[int]bool, pred func(int) bool) int {
	seen := make(map[int]bool)
	var stack []int
	for _, v := range comp {
		stack = append(stack, v)
	}
	count := 0
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[v] {
			if seen[w] || inComp[w] {
				continue
			}
			seen[w] = true
			if pred(w) {
				count++
			}
			stack = append(stack, w)
		}
	}
	return count
}

// insertRestarts inserts a RESTART after each critical load, updating the
// unit in place. Refs must identify loads. Returns the number of RESTART
// instructions inserted.
func insertRestarts(u *prog.Unit, refs []globalRef) int {
	// Group by block, then insert from the highest index down so earlier
	// indices stay valid.
	byBlock := make(map[int][]int)
	for _, r := range refs {
		byBlock[r.Block] = append(byBlock[r.Block], r.Index)
	}
	inserted := 0
	for bi, idxs := range byBlock {
		b := u.Blocks[bi]
		// Sort descending.
		for i := 0; i < len(idxs); i++ {
			for j := i + 1; j < len(idxs); j++ {
				if idxs[j] > idxs[i] {
					idxs[i], idxs[j] = idxs[j], idxs[i]
				}
			}
		}
		for _, idx := range idxs {
			load := b.Insts[idx]
			if !load.Op.IsLoad() {
				continue
			}
			r := isa.Inst{Op: isa.OpRestart, QP: load.QP, Src1: load.Dst}
			b.Insts = append(b.Insts, isa.Inst{})
			copy(b.Insts[idx+2:], b.Insts[idx+1:])
			b.Insts[idx+1] = r
			b.BranchLabels = append(b.BranchLabels, "")
			copy(b.BranchLabels[idx+2:], b.BranchLabels[idx+1:])
			b.BranchLabels[idx+1] = ""
			inserted++
		}
	}
	return inserted
}
