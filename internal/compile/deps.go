// Package compile is the compiler substrate the paper's evaluation relies
// on. It provides:
//
//   - dependence analysis and list scheduling of each basic block into
//     compiler-specified issue groups (stop bits), standing in for
//     OpenIMPACT's acyclic intra-block scheduling;
//   - strongly-connected-component analysis of the program's data-flow
//     graph (via reaching definitions and Tarjan's algorithm) to identify
//     critical loads, and insertion of RESTART instructions after them,
//     implementing the advance-restart placement of paper §3.3.
//
// Compile is the top-level entry point.
package compile

import "multipass/internal/isa"

// edge is one scheduling dependence: the consumer may not be scheduled
// earlier than latency cycles after the producer.
type edge struct {
	to      int // index within segment
	latency int
}

// depGraph is the dependence DAG of one block segment.
type depGraph struct {
	n     int
	succs [][]edge
	preds []int // count of incoming edges, for list scheduling
}

// buildDeps constructs the dependence DAG for insts, a branch-free segment
// of a basic block (the final instruction may be a branch).
//
// Register dependences: RAW edges carry the producer's latency; WAR and WAW
// edges carry zero latency, which is safe because same-cycle instructions
// are always emitted (and architecturally committed) in original program
// order. Memory dependences are conservative: stores are ordered against
// every other memory operation; loads commute with loads. A RESTART is
// anchored to its producer (see schedule).
func buildDeps(insts []isa.Inst) *depGraph {
	n := len(insts)
	g := &depGraph{n: n, succs: make([][]edge, n), preds: make([]int, n)}
	addEdge := func(from, to, lat int) {
		if from == to {
			return
		}
		g.succs[from] = append(g.succs[from], edge{to, lat})
		g.preds[to]++
	}

	// lastWriter/lastReaders per flat register.
	lastWriter := make([]int, isa.NumFlatRegs)
	for i := range lastWriter {
		lastWriter[i] = -1
	}
	lastReaders := make([][]int, isa.NumFlatRegs)
	lastStore := -1
	var memSinceStore []int // memory ops after lastStore

	var regBuf [4]isa.Reg
	for i := range insts {
		in := &insts[i]
		// Register reads: RAW from the last writer.
		for _, r := range in.Reads(regBuf[:0]) {
			if r.IsZeroReg() {
				continue
			}
			f := r.Flat()
			if w := lastWriter[f]; w >= 0 {
				addEdge(w, i, insts[w].Op.Latency())
			}
			lastReaders[f] = append(lastReaders[f], i)
		}
		// Register writes: WAR from readers, WAW from the last writer.
		for _, r := range in.Writes(regBuf[:0]) {
			if r.IsZeroReg() {
				continue
			}
			f := r.Flat()
			for _, rd := range lastReaders[f] {
				addEdge(rd, i, 0)
			}
			if w := lastWriter[f]; w >= 0 {
				addEdge(w, i, 0)
			}
			lastWriter[f] = i
			lastReaders[f] = lastReaders[f][:0]
		}
		// Memory ordering.
		if in.Op.IsMem() {
			if lastStore >= 0 {
				lat := 0
				if insts[i].Op.IsLoad() {
					lat = 1 // no same-cycle store-to-load forwarding
				}
				addEdge(lastStore, i, lat)
			}
			if in.Op.IsStore() {
				for _, m := range memSinceStore {
					addEdge(m, i, 0)
				}
				lastStore = i
				memSinceStore = memSinceStore[:0]
			} else {
				memSinceStore = append(memSinceStore, i)
			}
		}
		// The final branch (if any) must come after everything else in
		// program order; order is preserved by same-cycle emission rules,
		// but the branch must not be scheduled before a producer of a
		// register live out of the block. Those are covered by RAW edges
		// above. Ordering of the branch itself is enforced in schedule.
	}
	return g
}

// criticalPathPriorities returns, for each node, the longest latency path
// from the node to any sink. Nodes are indexed in program order, so a
// reverse sweep visits successors first (the DAG's edges always point
// forward in program order).
func (g *depGraph) criticalPathPriorities(insts []isa.Inst) []int {
	prio := make([]int, g.n)
	for i := g.n - 1; i >= 0; i-- {
		best := insts[i].Op.Latency()
		for _, e := range g.succs[i] {
			if v := e.latency + prio[e.to]; v > best {
				best = v
			}
		}
		prio[i] = best
	}
	return prio
}
