package compile

import (
	"multipass/internal/isa"
	"multipass/internal/prog"
)

// dfg is the whole-program data-flow graph: one node per static instruction
// (global index across the unit's layout order), with a flow edge from every
// reaching definition to each of its uses. Loop-carried flow shows up as
// cycles, which is what the SCC pass looks for (paper §3.3).
type dfg struct {
	unit   *prog.Unit
	insts  []*isa.Inst // global index -> instruction
	home   []int       // global index -> block index
	succs  [][]int     // def -> uses
	preds  [][]int     // use -> defs
	inDeg  []int
	blocks [][]int // block index -> global indices
}

// bitset is a fixed-size bit vector used by the reaching-definitions solver.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (i % 64) }
func (b bitset) clear(i int)    { b[i/64] &^= 1 << (i % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }

// orInto ors src into b, reporting whether b changed.
func (b bitset) orInto(src bitset) bool {
	changed := false
	for i := range b {
		n := b[i] | src[i]
		if n != b[i] {
			b[i] = n
			changed = true
		}
	}
	return changed
}

func (b bitset) copyFrom(src bitset) { copy(b, src) }

func (b bitset) andNot(src bitset) {
	for i := range b {
		b[i] &^= src[i]
	}
}

// buildDFG computes reaching definitions over the unit's CFG and returns the
// def-use flow graph.
func buildDFG(u *prog.Unit) *dfg {
	g := &dfg{unit: u}

	// Global numbering.
	blockOf := make(map[string]int, len(u.Blocks))
	for bi, b := range u.Blocks {
		blockOf[b.Label] = bi
		row := make([]int, len(b.Insts))
		for ii := range b.Insts {
			row[ii] = len(g.insts)
			g.insts = append(g.insts, &b.Insts[ii])
			g.home = append(g.home, bi)
		}
		g.blocks = append(g.blocks, row)
	}
	n := len(g.insts)
	g.succs = make([][]int, n)
	g.preds = make([][]int, n)
	g.inDeg = make([]int, n)

	// Definition numbering: one def per (instruction, written register).
	type def struct {
		inst int
		reg  int // flat register
	}
	var defs []def
	defsOfReg := make([][]int, isa.NumFlatRegs)
	defAt := make([][]int, n) // inst -> its def IDs
	var regBuf [4]isa.Reg
	for gi, in := range g.insts {
		for _, r := range in.Writes(regBuf[:0]) {
			if r.IsZeroReg() {
				continue
			}
			d := len(defs)
			defs = append(defs, def{gi, r.Flat()})
			defsOfReg[r.Flat()] = append(defsOfReg[r.Flat()], d)
			defAt[gi] = append(defAt[gi], d)
		}
	}
	nd := len(defs)

	// Per-block gen/kill.
	nb := len(u.Blocks)
	gen := make([]bitset, nb)
	kill := make([]bitset, nb)
	for bi := range u.Blocks {
		gen[bi] = newBitset(nd)
		kill[bi] = newBitset(nd)
		lastDefOf := make(map[int]int) // flat reg -> def ID
		for _, gi := range g.blocks[bi] {
			for _, d := range defAt[gi] {
				lastDefOf[defs[d].reg] = d
			}
		}
		for reg, d := range lastDefOf {
			gen[bi].set(d)
			for _, other := range defsOfReg[reg] {
				if other != d {
					kill[bi].set(other)
				}
			}
		}
		// A def earlier in the block that is re-defined later in the same
		// block is killed as well; the map already keeps only the last.
	}

	// CFG successors.
	cfgSuccs := make([][]int, nb)
	for bi, b := range u.Blocks {
		next := ""
		if bi+1 < nb {
			next = u.Blocks[bi+1].Label
		}
		for _, lbl := range b.Succs(next) {
			cfgSuccs[bi] = append(cfgSuccs[bi], blockOf[lbl])
		}
	}

	// Iterate IN/OUT to fixpoint.
	in := make([]bitset, nb)
	out := make([]bitset, nb)
	for bi := 0; bi < nb; bi++ {
		in[bi] = newBitset(nd)
		out[bi] = newBitset(nd)
		out[bi].copyFrom(gen[bi])
	}
	changed := true
	tmp := newBitset(nd)
	for changed {
		changed = false
		for bi := 0; bi < nb; bi++ {
			for pi := 0; pi < nb; pi++ {
				for _, s := range cfgSuccs[pi] {
					if s == bi {
						if in[bi].orInto(out[pi]) {
							changed = true
						}
					}
				}
			}
			tmp.copyFrom(in[bi])
			tmp.andNot(kill[bi])
			if out[bi].orInto(tmp) {
				changed = true
			}
			if out[bi].orInto(gen[bi]) {
				changed = true
			}
		}
	}

	// Def-use edges: walk each block tracking the current reaching set per
	// register, seeded from IN.
	addEdge := func(from, to int) {
		g.succs[from] = append(g.succs[from], to)
		g.preds[to] = append(g.preds[to], from)
		g.inDeg[to]++
	}
	for bi := range u.Blocks {
		cur := make(map[int][]int) // flat reg -> producing instruction set
		for reg, ds := range defsOfReg {
			for _, d := range ds {
				if in[bi].has(d) {
					cur[reg] = append(cur[reg], defs[d].inst)
				}
			}
		}
		for _, gi := range g.blocks[bi] {
			inst := g.insts[gi]
			for _, r := range inst.Reads(regBuf[:0]) {
				if r.IsZeroReg() {
					continue
				}
				for _, producer := range cur[r.Flat()] {
					addEdge(producer, gi)
				}
			}
			for _, r := range inst.Writes(regBuf[:0]) {
				if r.IsZeroReg() {
					continue
				}
				cur[r.Flat()] = []int{gi}
			}
		}
	}
	return g
}
