package compile

import (
	"sort"

	"multipass/internal/isa"
)

// scheduleBlock list-schedules one basic block into issue groups under the
// machine's FU capacities, rewriting the block's instruction order and stop
// bits. Branches partition the block into independently scheduled segments;
// a branch is always the last instruction of its segment. Returns the number
// of issue groups produced.
func scheduleBlock(insts []isa.Inst, labels []string, caps *isa.FUCaps) ([]isa.Inst, []string, int) {
	outInsts := make([]isa.Inst, 0, len(insts))
	outLabels := make([]string, 0, len(labels))
	groups := 0
	start := 0
	for i := 0; i <= len(insts); i++ {
		atEnd := i == len(insts)
		if !atEnd && !isTerminator(insts[i].Op) {
			continue
		}
		segEnd := i
		if !atEnd {
			segEnd = i + 1 // include the branch in the segment
		}
		if segEnd > start {
			si, sl, g := scheduleSegment(insts[start:segEnd], labels[start:segEnd], caps)
			outInsts = append(outInsts, si...)
			outLabels = append(outLabels, sl...)
			groups += g
		}
		start = segEnd
	}
	return outInsts, outLabels, groups
}

// isTerminator reports whether op ends a scheduling segment: control
// transfers and halt must keep their position relative to every other
// instruction.
func isTerminator(op isa.Op) bool {
	return op.IsBranch() || op.Kind() == isa.KindHalt
}

// scheduleSegment schedules one branch-free segment (with at most a single
// trailing terminator).
func scheduleSegment(insts []isa.Inst, labels []string, caps *isa.FUCaps) ([]isa.Inst, []string, int) {
	n := len(insts)
	if n == 0 {
		return nil, nil, 0
	}
	hasBranch := isTerminator(insts[n-1].Op)

	g := buildDeps(insts)
	prio := g.criticalPathPriorities(insts)

	const unscheduled = -1
	cycleOf := make([]int, n)
	earliest := make([]int, n)
	remaining := make([]int, n)
	for i := range cycleOf {
		cycleOf[i] = unscheduled
		remaining[i] = g.preds[i]
	}

	// The branch is handled after everything else so that it lands in (or
	// after) the final group.
	nBody := n
	if hasBranch {
		nBody = n - 1
	}

	scheduled := 0
	cycle := 0
	var use isa.FUUse
	maxCycle := 0
	for scheduled < nBody {
		// Collect ready instructions for this cycle.
		var ready []int
		for i := 0; i < nBody; i++ {
			if cycleOf[i] == unscheduled && remaining[i] == 0 && earliest[i] <= cycle {
				ready = append(ready, i)
			}
		}
		// RESTART hints first (they must trail their producer as closely as
		// possible, paper §3.3), then longest critical path, then program
		// order.
		sort.Slice(ready, func(a, b int) bool {
			ia, ib := ready[a], ready[b]
			ra, rb := insts[ia].Op == isa.OpRestart, insts[ib].Op == isa.OpRestart
			if ra != rb {
				return ra
			}
			if prio[ia] != prio[ib] {
				return prio[ia] > prio[ib]
			}
			return ia < ib
		})
		for _, i := range ready {
			if !use.Fits(insts[i].Op, caps) {
				continue
			}
			use.Add(insts[i].Op)
			cycleOf[i] = cycle
			if cycle > maxCycle {
				maxCycle = cycle
			}
			scheduled++
			for _, e := range g.succs[i] {
				remaining[e.to]--
				if c := cycle + e.latency; c > earliest[e.to] {
					earliest[e.to] = c
				}
			}
		}
		cycle++
		use.Reset()
	}

	if hasBranch {
		br := n - 1
		c := earliest[br]
		if remaining[br] != 0 {
			// All producers are scheduled by now; remaining can only be
			// nonzero if the DAG is inconsistent.
			panic("compile: branch has unscheduled dependence")
		}
		if scheduled > 0 && c < maxCycle {
			c = maxCycle
		}
		// Check branch-unit availability in cycle c against body usage.
		var cu isa.FUUse
		for i := 0; i < nBody; i++ {
			if cycleOf[i] == c {
				cu.Add(insts[i].Op)
			}
		}
		if !cu.Fits(insts[br].Op, caps) {
			c++
		}
		cycleOf[br] = c
		if c > maxCycle {
			maxCycle = c
		}
	}

	// Emit in (cycle, original index) order; stop bit ends each group.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if cycleOf[ia] != cycleOf[ib] {
			return cycleOf[ia] < cycleOf[ib]
		}
		return ia < ib
	})
	outInsts := make([]isa.Inst, n)
	outLabels := make([]string, n)
	groups := 0
	for k, i := range order {
		outInsts[k] = insts[i]
		outLabels[k] = labels[i]
		last := k == n-1 || cycleOf[order[k+1]] != cycleOf[i]
		outInsts[k].Stop = last
		if last {
			groups++
		}
	}
	return outInsts, outLabels, groups
}
