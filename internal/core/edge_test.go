package core

import (
	"context"
	"math/rand"
	"testing"

	"multipass/internal/arch"
	"multipass/internal/isa"
	"multipass/internal/sim"
)

// TestWAWRuleMissingLoadDoesNotFeedSRF exercises the §3.5 rule: an advance
// load that misses L1 must not provide its value to same-pass consumers;
// those consumers defer to a later pass (or rally).
func TestWAWRuleMissingLoadDoesNotFeedSRF(t *testing.T) {
	// A: long miss (trigger). B: another long-missing load. C: consumer of
	// B. If B fed the SRF immediately, C would be "executed" in pass 1 with
	// AdvanceExecuted counting it; with the WAW rule it must be deferred.
	p := isa.MustAssemble(`
	movi r10 = 0x100000
	ld4 r1 = [r10]
	add r2 = r1, r1      # trigger
	ld4 r3 = [r10+8192]  # B: advance load, L1 miss
	add r4 = r3, r3      # C: must defer (B may not write the SRF)
	halt
`)
	res := runMP(t, DefaultConfig(), p, arch.NewMemory())
	mp := res.Stats.Multipass
	// B executes in advance (prefetch); C is deferred at least once.
	if mp.AdvanceExecuted == 0 {
		t.Fatal("B never pre-executed")
	}
	if mp.AdvanceDeferred == 0 {
		t.Fatal("C was not deferred despite the WAW rule")
	}
}

// TestPendingMergeTriggersChainedEpisode checks the Figure 1(d) E” case:
// a load pre-executed in a previous episode whose fill is still in flight
// merges as pending, and its consumer starts a new advance episode.
func TestPendingMergeTriggersChainedEpisode(t *testing.T) {
	p := isa.MustAssemble(`
	movi r10 = 0x100000
	ld4 r1 = [r10]        # miss 1 (trigger of episode 1)
	add r2 = r1, r1
	ld4 r3 = [r10+8192]   # miss 2: pre-executed during episode 1
	add r4 = r3, r3       # consumer: rally reaches it while miss 2 in flight
	ld4 r5 = [r10+16384]  # miss 3
	add r6 = r5, r5
	halt
`)
	res := runMP(t, DefaultConfig(), p, arch.NewMemory())
	if res.Stats.Multipass.AdvanceEntries < 2 {
		t.Errorf("advance entries = %d, expected chained episodes", res.Stats.Multipass.AdvanceEntries)
	}
}

// TestIQBoundLimitsPeek verifies that advance pre-execution cannot run
// farther ahead than the instruction queue allows.
func TestIQBoundLimitsPeek(t *testing.T) {
	// A loop with a fresh long miss each iteration followed by a large
	// amount of independent work; the loop shape keeps the I-cache warm
	// after the first iteration so the IQ (not fetch) is the bound.
	src := "	movi r10 = 0x100000\n	movi r20 = 4\nloop:\n	ld4 r1 = [r10]\n	add r2 = r1, r1\n"
	for i := 0; i < 300; i++ {
		src += "	addi r3 = r3, 1\n"
	}
	src += `
	addi r10 = r10, 8192
	subi r20 = r20, 1
	cmpi.ne p1, p2 = r20, 0 ;;
	(p1) br loop
	halt
`
	p := isa.MustAssemble(src)

	small := DefaultConfig()
	small.IQSize = 32
	small.BufferSize = 32
	resSmall := runMP(t, small, p, arch.NewMemory())
	resBig := runMP(t, DefaultConfig(), p, arch.NewMemory())

	if resSmall.Stats.Multipass.IQFullCycles == 0 {
		t.Error("small IQ never filled")
	}
	if resSmall.Stats.Multipass.AdvanceExecuted >= resBig.Stats.Multipass.AdvanceExecuted {
		t.Errorf("small IQ pre-executed %d >= big IQ %d",
			resSmall.Stats.Multipass.AdvanceExecuted, resBig.Stats.Multipass.AdvanceExecuted)
	}
}

// TestHardwareRestartRecoversChainedMiss re-runs the compiler-restart
// scenario with RESTART removed from the program and the hardware deferral
// heuristic enabled instead.
func TestHardwareRestartRecoversChainedMiss(t *testing.T) {
	src := `
	movi r10 = 0x100000
	movi r11 = 0x200000
	st4 [r11] = r0
	movi r20 = 60
spin:
	mul r21 = r20, r20
	subi r20 = r20, 1
	cmpi.ne p1, p2 = r20, 0 ;;
	(p1) br spin
	ld4 r1 = [r10]       # A: cold long miss
	add r2 = r1, r1      # B: trigger
	ld4 r3 = [r11+64]    # C: short miss
	ld4 r4 = [r3]        # D: dependent miss (no RESTART in this binary)
	add r5 = r4, r4
`
	// Pad with deferral fodder so the heuristic window fills.
	for i := 0; i < 24; i++ {
		src += "	add r6 = r4, r5\n"
	}
	src += "	halt\n"
	p := isa.MustAssemble(src)

	hw := DefaultConfig()
	hw.HardwareRestart = true
	hw.RestartDeferralWindow = 8
	withHW := runMP(t, hw, p, restartImage())

	none := DefaultConfig()
	none.DisableRestart = true
	without := runMP(t, none, p, restartImage())

	if withHW.Stats.Multipass.HWRestarts == 0 {
		t.Fatal("hardware restart never fired")
	}
	if withHW.Stats.Cycles+80 > without.Stats.Cycles {
		t.Errorf("hardware restart %d cycles vs none %d: expected chained-miss overlap",
			withHW.Stats.Cycles, without.Stats.Cycles)
	}
}

// TestSpecFlushDiscardsDependentResults verifies that a value-mismatch
// flush discards pre-executed results computed from the stale value (they
// must be re-executed, not merged).
func TestSpecFlushDiscardsDependentResults(t *testing.T) {
	image := arch.NewMemory()
	image.Store(0x100000, 4, 0x3000) // store target
	image.Store(0x3000, 4, 7)        // stale value
	// The stale location is warmed first so the data-speculative advance
	// load HITS L1 and feeds its (stale) value to dependents, which get
	// preserved in the RS — exactly what the flush must then discard.
	p := isa.MustAssemble(`
	movi r10 = 0x100000
	movi r11 = 0x3000
	movi r20 = 99
	ld4 r9 = [r11]       # warm the stale line
	movi r21 = 60
spin:
	mul r22 = r21, r21
	subi r21 = r21, 1
	cmpi.ne p1, p2 = r21, 0 ;;
	(p1) br spin
	ld4 r1 = [r10]
	st4 [r1] = r20
	ld4 r3 = [r11]       # S-bit load, stale 7 in advance (L1 hit)
	add r4 = r3, r3      # dependent: pre-executed with 14, must become 198
	xor r5 = r4, r3      # deeper dependent
	halt
`)
	res := runMP(t, DefaultConfig(), p, image)
	mp := res.Stats.Multipass
	if mp.SpecFlushes == 0 {
		t.Fatal("no flush")
	}
	if mp.Reexecuted == 0 {
		t.Error("flush did not discard any preserved results")
	}
	if got := res.RF.Read(isa.IntReg(5)).Uint32(); got != (198 ^ 99) {
		t.Errorf("r5 = %d, want %d", got, 198^99)
	}
}

// TestAdvanceStoreForwardsAcrossPasses: a store pre-executed in pass 1 must
// still forward to a load first reached in pass 2 (the ASC is cleared at
// the pass boundary; the RS merge re-inserts it).
func TestAdvanceStoreForwardsAcrossPasses(t *testing.T) {
	image := restartImage()
	image.Store(0x4000, 4, 1)
	p := isa.MustAssemble(`
	movi r10 = 0x100000
	movi r11 = 0x200000
	movi r12 = 0x4000
	movi r20 = 55
	st4 [r11] = r0       # warm C's L2 line
	movi r21 = 60
spin:
	mul r22 = r21, r21
	subi r21 = r21, 1
	cmpi.ne p1, p2 = r21, 0 ;;
	(p1) br spin
	ld4 r1 = [r10]       # long miss (trigger)
	add r2 = r1, r1
	st4 [r12] = r20      # pass-1 advance store
	ld4 r3 = [r11+64]    # short miss -> pass boundary via restart
	restart r3
	ld4 r4 = [r12]       # reached executable in pass 2: must see 55
	add r5 = r4, r4
	halt
`)
	res := runMP(t, DefaultConfig(), p, image)
	if got := res.RF.Read(isa.IntReg(5)).Uint32(); got != 110 {
		t.Errorf("r5 = %d, want 110", got)
	}
	if res.Stats.Multipass.Restarts == 0 {
		t.Error("restart never fired; the scenario did not cross a pass boundary")
	}
}

// TestDisableBothAblations: with regrouping and restart both off the
// machine still beats in-order via persistence alone, and still matches
// the reference architecturally.
func TestDisableBothAblations(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisableRegroup = true
	cfg.DisableRestart = true
	p := isa.MustAssemble(overlapProg)
	image := arch.NewMemory()
	image.Store(0x100000, 4, 11)
	res := runMP(t, cfg, p, image)
	base := runInorder(t, p, image)
	if res.Stats.Cycles >= base.Stats.Cycles {
		t.Errorf("fully ablated multipass (%d) no faster than inorder (%d)",
			res.Stats.Cycles, base.Stats.Cycles)
	}
}

// TestMachineNames covers the ablation naming.
func TestMachineNames(t *testing.T) {
	mk := func(rg, rs bool) string {
		cfg := DefaultConfig()
		cfg.DisableRegroup = rg
		cfg.DisableRestart = rs
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return m.Name()
	}
	if mk(false, false) != "multipass" ||
		mk(true, false) != "multipass-noregroup" ||
		mk(false, true) != "multipass-norestart" ||
		mk(true, true) != "multipass-noregroup-norestart" {
		t.Error("ablation names wrong")
	}
}

// TestRandomProgramsAcrossConfigs runs randomized looping programs through
// every ablation combination and checks architectural equivalence.
func TestRandomProgramsAcrossConfigs(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	cfgs := []Config{}
	for _, rg := range []bool{false, true} {
		for _, rs := range []bool{false, true} {
			c := DefaultConfig()
			c.DisableRegroup = rg
			c.DisableRestart = rs
			cfgs = append(cfgs, c)
		}
	}
	hw := DefaultConfig()
	hw.HardwareRestart = true
	hw.RestartDeferralWindow = 4
	cfgs = append(cfgs, hw)

	for trial := 0; trial < 10; trial++ {
		src := "	movi r1 = 0x1000\n	movi r10 = " + itoa(3+rng.Intn(5)) + "\nloop:\n"
		for i := 0; i < 12+rng.Intn(15); i++ {
			switch rng.Intn(7) {
			case 0:
				src += "	ld4 r" + itoa(3+rng.Intn(5)) + " = [r1+" + itoa(4*rng.Intn(12)) + "]\n"
			case 1:
				src += "	st4 [r1+" + itoa(4*rng.Intn(12)) + "] = r" + itoa(3+rng.Intn(5)) + "\n"
			case 2:
				src += "	mul r" + itoa(3+rng.Intn(5)) + " = r" + itoa(3+rng.Intn(5)) + ", r" + itoa(3+rng.Intn(5)) + "\n"
			case 3:
				src += "	cmpi.lt p1, p2 = r" + itoa(3+rng.Intn(5)) + ", 5000\n"
			case 4:
				src += "	(p1) addi r" + itoa(3+rng.Intn(5)) + " = r" + itoa(3+rng.Intn(5)) + ", 3\n"
			case 5:
				src += "	ld4 r8 = [r1]\n	andi r8 = r8, 0xffc\n	ori r8 = r8, 0x1000\n	ld4 r9 = [r8]\n	restart r9\n"
			case 6:
				src += "	xor r" + itoa(3+rng.Intn(5)) + " = r" + itoa(3+rng.Intn(5)) + ", r" + itoa(3+rng.Intn(5)) + "\n"
			}
		}
		src += `
	subi r10 = r10, 1
	cmpi.ne p3, p4 = r10, 0 ;;
	(p3) br loop
	halt
`
		p := isa.MustAssemble(src)
		image := arch.NewMemory()
		for i := 0; i < 64; i++ {
			image.Store(uint32(0x1000+4*i), 4, uint64(rng.Uint32()))
		}
		ref, err := arch.Run(p, image.Clone(), 10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		for ci, cfg := range cfgs {
			m, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := m.Run(context.Background(), p, image)
			if err != nil {
				t.Fatalf("trial %d cfg %d: %v\nprogram:\n%s", trial, ci, err, src)
			}
			if !res.RF.Equal(ref.State.RF) || !res.Mem.Equal(ref.State.Mem) {
				t.Fatalf("trial %d cfg %d: architectural divergence\nprogram:\n%s", trial, ci, src)
			}
		}
	}
}

// TestStatsConsistentOnAllPrograms double-checks cycle attribution adds up
// for a mix of programs.
func TestStatsConsistentOnAllPrograms(t *testing.T) {
	for _, src := range []string{overlapProg, restartProg, specProg} {
		res := runMP(t, DefaultConfig(), isa.MustAssemble(src), restartImage())
		if err := res.Stats.CheckConsistency(); err != nil {
			t.Error(err)
		}
		mp := res.Stats.Multipass
		if mp.ArchCycles+mp.AdvanceCycles+mp.RallyCycles != res.Stats.Cycles {
			t.Error("mode cycles do not sum")
		}
	}
	_ = sim.StallLoad
}
