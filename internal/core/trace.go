package core

import (
	"fmt"
	"io"
)

// Tracer emits a human-readable event stream of the multipass pipeline's
// operation: mode transitions, advance passes and restarts, merges, and
// value-misspeculation flushes. Attach one through Config.Trace to watch
// the mechanisms of paper §3 operate on a real program.
//
// The format is one event per line:
//
//	cyc 123 advance-enter trigger=45 until=268
//	cyc 130 restart pass=3 peek->45
//	cyc 268 rally
//	cyc 270 merge seq=47
//	cyc 280 spec-flush seq=52 discarded=9
//	cyc 290 architectural
type Tracer struct {
	w io.Writer
}

// NewTracer wraps a writer.
func NewTracer(w io.Writer) *Tracer { return &Tracer{w: w} }

// enabled reports whether events will be written. Every trace helper checks
// it before building its argument list: the variadic event call boxes its
// arguments into a []any at the call site, and that boxing must not run (or
// allocate) on the hot path when tracing is off.
func (t *Tracer) enabled() bool { return t != nil && t.w != nil }

func (t *Tracer) event(now uint64, format string, args ...any) {
	if !t.enabled() {
		return
	}
	fmt.Fprintf(t.w, "cyc %d %s\n", now, fmt.Sprintf(format, args...))
}

// traceAdvanceEnter records an architectural->advance transition.
func (r *run) traceAdvanceEnter() {
	if !r.cfg.Trace.enabled() {
		return
	}
	r.cfg.Trace.event(r.now, "advance-enter trigger=%d until=%d", r.trigger, r.stallUntil)
}

// traceRestart records an advance restart (compiler- or hardware-driven).
func (r *run) traceRestart(kind string) {
	if !r.cfg.Trace.enabled() {
		return
	}
	r.cfg.Trace.event(r.now, "restart(%s) pass=%d peek->%d", kind, r.st.Multipass.AdvancePasses, r.trigger)
}

// traceRally records an advance->rally transition.
func (r *run) traceRally() {
	if !r.cfg.Trace.enabled() {
		return
	}
	r.cfg.Trace.event(r.now, "rally next=%d maxPeek=%d rs=%d", r.next, r.maxPeek, r.rs.len())
}

// traceArch records a rally->architectural transition.
func (r *run) traceArch() {
	if !r.cfg.Trace.enabled() {
		return
	}
	r.cfg.Trace.event(r.now, "architectural next=%d", r.next)
}

// traceFlush records a §3.6 value-misspeculation flush.
func (r *run) traceFlush(seq uint64, discarded int) {
	if !r.cfg.Trace.enabled() {
		return
	}
	r.cfg.Trace.event(r.now, "spec-flush seq=%d discarded=%d", seq, discarded)
}

// traceMerge is sampled (it would otherwise dominate the stream): only
// merges of loads and stores are reported.
func (r *run) traceMerge(seq uint64, e *rsEntry) {
	if (e.hasAddr || e.isStore) && r.cfg.Trace.enabled() {
		r.cfg.Trace.event(r.now, "merge seq=%d addr=%#x spec=%v", seq, e.addr, e.spec)
	}
}
