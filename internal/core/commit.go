package core

import (
	"fmt"

	"multipass/internal/arch"
	"multipass/internal/isa"
	"multipass/internal/sim"
)

// commitCycle runs one cycle of the architectural stream (architectural or
// rally mode): instructions are dequeued in order, merging preserved RS
// results where possible (§3.2 regrouping), re-performing data-speculative
// loads through the SMAQ with value verification (§3.6), executing the rest
// normally, and entering advance mode on a stall-on-use of a load value.
func (r *run) commitCycle() error {
	if r.mode == modeRally {
		r.st.Multipass.RallyCycles++
	} else {
		r.st.Multipass.ArchCycles++
	}
	r.fe.SetLimit(r.next + uint64(r.cfg.IQSize))

	var use isa.FUUse
	var groupWrites sim.RegSet
	progress := 0
	blocker := sim.StallFrontEnd
	now := r.now
	wcut := r.wm.Cut(r.measure, r.end)

group:
	for progress < r.cfg.Caps.MaxIssue && !r.halted {
		if r.next >= wcut {
			// Window boundary: no group spans the measurement mark or the
			// interval end, and no advance episode may be entered past it.
			// Unreachable with progress == 0 (the outer loop and Mark run
			// first), so no idle cycle arises here.
			break
		}
		d, err := r.stream.At(r.next)
		if err != nil {
			return err
		}
		if d == nil {
			return fmt.Errorf("core: stream ended before halt committed")
		}
		fready, ok, err := r.fe.ReadyAt(r.next)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("core: fetch ended before halt committed")
		}
		if fready > now {
			blocker = sim.StallFrontEnd
			r.skip.Note(fready)
			break
		}
		in := d.Inst
		if r.ownPC != d.Index {
			return fmt.Errorf("core: machine PC %d diverged from stream index %d at seq %d", r.ownPC, d.Index, d.Seq)
		}
		e := r.rs.get(r.next)

		// Data-speculative load: re-perform the access via the SMAQ address
		// and verify the preserved value (§3.6).
		if e != nil && e.spec && in.Op.IsLoad() {
			done, err := r.commitSpecLoad(d, e, &use, &groupWrites, &progress, &blocker, now)
			if err != nil {
				return err
			}
			if !done {
				break
			}
			continue
		}

		// Merge a preserved result (§3.1.3, §3.2).
		if e != nil {
			done, redirect, err := r.commitMerge(d, e, &use, &groupWrites, &progress, &blocker, now)
			if err != nil {
				return err
			}
			if !done {
				break
			}
			if redirect {
				break
			}
			continue
		}

		// Normal in-order execution with advance-entry detection.

		// Qualifying predicate.
		if groupWrites.Has(in.QP) {
			break
		}
		if qf := in.QP.Flat(); r.readyAt[qf] > now {
			if r.prodKind[qf] == sim.ProducerLoad {
				r.enterAdvance(r.next, r.readyAt[qf])
				blocker = sim.StallLoad
				break
			}
			blocker = r.prodKind[qf].StallFor()
			r.skip.Note(r.readyAt[qf])
			break
		}
		qpTrue := r.ownRF.Read(in.QP).Bool()

		if qpTrue && !in.Op.IsBranch() {
			for _, reg := range in.Reads(r.regBuf[:0]) {
				if reg == in.QP {
					continue
				}
				if groupWrites.Has(reg) {
					break group
				}
				if f := reg.Flat(); r.readyAt[f] > now {
					if r.prodKind[f] == sim.ProducerLoad {
						r.enterAdvance(r.next, r.readyAt[f])
						blocker = sim.StallLoad
						break group
					}
					blocker = r.prodKind[f].StallFor()
					r.skip.Note(r.readyAt[f])
					break group
				}
			}
		}
		if qpTrue {
			lat := uint64(in.Op.Latency())
			for _, reg := range in.Writes(r.regBuf[:0]) {
				if groupWrites.Has(reg) {
					break group
				}
				if f := reg.Flat(); r.readyAt[f] > now+lat {
					blocker = sim.StallOther
					r.skip.Note(r.readyAt[f] - lat)
					break group
				}
			}
		}
		if !use.Fits(in.Op, &r.cfg.Caps) {
			blocker = sim.StallOther
			break
		}
		use.Add(in.Op)

		redirect, err := r.commitExec(d, qpTrue, &groupWrites, now)
		if err != nil {
			return err
		}
		progress++
		if redirect {
			break
		}
	}

	if progress > 0 {
		r.st.Cat[sim.StallExecution]++
		r.lastWork = now
	} else {
		r.st.Cat[blocker]++
		// A progress-free cycle mutated nothing (advance entry marks the
		// skip state dirty, so Jump refuses after enterAdvance). The rally
		// to arch flip below is harmless: repeats replay identically in the
		// new mode and the main loop credits mode counters post-flip.
		r.idle, r.idleCat = true, blocker
	}
	if r.mode == modeRally && r.next >= r.maxPeek {
		r.mode = modeArch
		r.traceArch()
	}
	return nil
}

// commitMerge merges one preserved RS entry into architectural state.
// Returns done=false when the group must end without consuming the
// instruction, redirect=true after a merged taken branch.
func (r *run) commitMerge(d *sim.DynInst, e *rsEntry, use *isa.FUUse, groupWrites *sim.RegSet, progress *int, blocker *sim.StallKind, now uint64) (done, redirect bool, err error) {
	in := d.Inst

	if r.cfg.DisableRegroup {
		// Without issue regrouping, group formation treats the merged
		// instruction like a normal one: dependences on group members split
		// the group and the instruction occupies its functional unit. The
		// preserved result still avoids re-execution (and converts long
		// latencies to availability at merge time).
		if groupWrites.Has(in.QP) {
			return false, false, nil
		}
		for _, reg := range in.Reads(r.regBuf[:0]) {
			if groupWrites.Has(reg) {
				return false, false, nil
			}
		}
		for _, reg := range in.Writes(r.regBuf[:0]) {
			if groupWrites.Has(reg) {
				return false, false, nil
			}
		}
		if !use.Fits(in.Op, &r.cfg.Caps) {
			*blocker = sim.StallOther
			return false, false, nil
		}
		use.Add(in.Op)
	}

	// Internal consistency: the preserved outcome must match the oracle
	// path. Rally's in-order verify-then-flush of data-speculative loads
	// guarantees this; a mismatch is a model bug.
	if e.squashed != d.Squashed {
		return false, false, fmt.Errorf("core: merged squash state diverged at seq %d", d.Seq)
	}
	if e.branchDone && e.branchTaken != d.Taken {
		return false, false, fmt.Errorf("core: merged branch direction diverged at seq %d", d.Seq)
	}

	if !e.squashed {
		if e.hasVal {
			r.commitWrite(in, e.val)
		}
		if e.isStore {
			r.ownMem.StoreWord(in.Op, e.addr, e.val)
			r.hier.AccessData(e.addr, now, true, false)
		}
	}
	kind := sim.ProducerOther
	if in.Op.IsLoad() {
		kind = sim.ProducerLoad
	}
	readyC := e.readyCycle
	if r.cfg.DisableRegroup && readyC < now+1 {
		readyC = now + 1
	} else if readyC < now {
		readyC = now
	}
	if !e.squashed {
		r.setReady(in, readyC, kind, groupWrites, r.cfg.DisableRegroup)
	}
	r.st.Multipass.Merged++
	r.traceMerge(d.Seq, e)
	r.st.Retired++
	*progress++

	if e.branchDone && e.branchTaken {
		r.ownPC = int(in.Target)
		redirect = true
	} else {
		r.ownPC = d.Index + 1
	}
	if in.Op.Kind() == isa.KindHalt {
		// Halt never receives an RS entry (advance stops before it).
		return false, false, fmt.Errorf("core: halt had an RS entry at seq %d", d.Seq)
	}
	r.rs.drop(r.next)
	r.next++
	return true, redirect, nil
}

// commitSpecLoad re-performs a data-speculative load in rally mode using its
// SMAQ address, verifying the preserved value and flushing on mismatch.
func (r *run) commitSpecLoad(d *sim.DynInst, e *rsEntry, use *isa.FUUse, groupWrites *sim.RegSet, progress *int, blocker *sim.StallKind, now uint64) (bool, error) {
	in := d.Inst
	if groupWrites.Has(in.QP) {
		return false, nil
	}
	if qf := in.QP.Flat(); r.readyAt[qf] > now {
		*blocker = r.prodKind[qf].StallFor()
		r.skip.Note(r.readyAt[qf])
		return false, nil
	}
	if !r.ownRF.Read(in.QP).Bool() {
		return false, fmt.Errorf("core: data-speculative load was pre-executed but predicate is false at seq %d", d.Seq)
	}
	for _, reg := range in.Writes(r.regBuf[:0]) {
		if groupWrites.Has(reg) {
			return false, nil
		}
	}
	if !use.Fits(in.Op, &r.cfg.Caps) {
		*blocker = sim.StallOther
		return false, nil
	}
	use.Add(in.Op)

	ready := r.hier.AccessData(e.addr, now, false, false)
	fresh := r.ownMem.LoadWord(in.Op, e.addr)
	r.commitWrite(in, fresh)
	r.setReady(in, ready, sim.ProducerLoad, groupWrites, true)
	r.st.Retired++
	*progress++
	r.ownPC = d.Index + 1
	r.rs.drop(r.next)
	r.next++

	if fresh != e.val {
		// Value misspeculation: flush everything younger (§3.6).
		r.st.Multipass.SpecFlushes++
		flushed := r.rs.flushFrom(r.next)
		r.traceFlush(d.Seq, flushed)
		r.st.Multipass.Reexecuted += uint64(flushed)
		r.fe.Flush(r.next, now+1+uint64(r.cfg.MispredictPenalty))
		if r.maxPeek > r.next {
			r.maxPeek = r.next
		}
		return false, nil // end the group; state beyond is gone
	}
	return true, nil
}

// commitExec executes one instruction architecturally (no RS entry).
// Returns redirect=true when issue must stop at a control transfer.
func (r *run) commitExec(d *sim.DynInst, qpTrue bool, groupWrites *sim.RegSet, now uint64) (bool, error) {
	in := d.Inst
	r.st.Retired++
	r.rs.drop(r.next)
	r.next++
	r.ownPC = d.Index + 1

	if in.Op.IsBranch() {
		taken := qpTrue
		if taken != d.Taken {
			return false, fmt.Errorf("core: branch direction diverged from oracle at seq %d", d.Seq)
		}
		if taken {
			r.ownPC = int(in.Target)
		}
		correct := r.pred.Update(d.Addr(), taken)
		if !correct {
			r.fe.Flush(r.next, now+1+uint64(r.cfg.MispredictPenalty))
		}
		return taken || !correct, nil
	}

	if !qpTrue {
		return false, nil // squashed
	}

	switch in.Op.Kind() {
	case isa.KindHalt:
		r.halted = true
		return true, nil
	case isa.KindNop, isa.KindRestart:
		return false, nil
	case isa.KindLoad:
		addr := arch.EffAddr(in, r.ownRF.Read(in.Src1))
		if addr != d.MemAddr {
			return false, fmt.Errorf("core: load address diverged from oracle at seq %d", d.Seq)
		}
		ready := r.hier.AccessData(addr, now, false, false)
		r.commitWrite(in, r.ownMem.LoadWord(in.Op, addr))
		r.setReady(in, ready, sim.ProducerLoad, groupWrites, true)
	case isa.KindStore:
		addr := arch.EffAddr(in, r.ownRF.Read(in.Src1))
		if addr != d.MemAddr {
			return false, fmt.Errorf("core: store address diverged from oracle at seq %d", d.Seq)
		}
		r.ownMem.StoreWord(in.Op, addr, r.ownRF.Read(in.Src2))
		r.hier.AccessData(addr, now, true, false)
	default:
		v := isa.Eval(in.Op, r.ownRF.Read(in.Src1), r.ownRF.Read(in.Src2), in.Imm)
		r.commitWrite(in, v)
		r.setReady(in, now+uint64(in.Op.Latency()), sim.ProducerOther, groupWrites, true)
	}
	return false, nil
}
