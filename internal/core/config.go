// Package core implements the paper's primary contribution: the multipass
// pipeline (§3). A single in-order physical pipeline operates in three
// modes:
//
//   - architectural: conventional scoreboarded in-order issue;
//   - advance: on a stall-on-use of a load value, the pipeline pre-executes
//     the subsequent instruction stream with a PEEK pointer, suppressing
//     instructions with invalid operands (I-bits), writing speculative
//     results to the speculative register file (SRF, redirected by A-bits),
//     preserving valid results in the result store (RS, E-bits), and
//     restarting the pass at the trigger when a compiler-inserted RESTART
//     consumes an unready value;
//   - rally: when the triggering value arrives, the architectural stream
//     resumes, merging preserved RS results instead of re-executing them and
//     regrouping issue groups around the eliminated dependences.
//
// Advance stores forward through the advance store cache (ASC); deferred
// stores and ASC replacement make later advance loads data-speculative
// (S-bits), which rally re-performs through the speculative memory address
// queue (SMAQ) and verifies by value, flushing on mismatch (§3.6). Advance
// loads that miss L1 do not write the SRF (the WAW rule of §3.5); their
// results land in the RS when the fill returns, enabling the next pass to
// proceed further.
//
// The model simulates its speculative and architectural values for real —
// the final register file and memory come from the machine's own commits,
// not from the reference interpreter — so the cross-model equivalence tests
// in this repository genuinely verify the multipass machinery.
package core

import "multipass/internal/sim"

// Config extends the common machine configuration with the multipass
// structures of Table 2 and the Figure 8 ablation switches.
type Config struct {
	sim.Config
	// IQSize is the multipass instruction queue capacity (Table 2: 256).
	IQSize int
	// ASCEntries and ASCWays shape the advance store cache (§4: 64-entry,
	// 2-way set associative).
	ASCEntries int
	ASCWays    int
	// DisableRegroup turns off issue regrouping (§3.2): preserved results
	// still merge without re-execution, but group formation keeps the
	// original dependences and functional-unit demands.
	DisableRegroup bool
	// DisableRestart turns off advance restart (§3.3): RESTART instructions
	// become no-ops and each advance episode is a single pass.
	DisableRestart bool
	// HardwareRestart enables the hardware alternative the paper's footnote
	// 1 (§3.3) sketches: instead of (or in addition to) compiler-inserted
	// RESTART instructions, the pipeline restarts an advance pass after
	// RestartDeferralWindow consecutive deferred instructions, on the
	// theory that a long deferral run means the speculative state is too
	// contaminated for further progress.
	HardwareRestart bool
	// RestartDeferralWindow is the consecutive-deferral threshold for
	// HardwareRestart (default 16).
	RestartDeferralWindow int
	// Trace, when non-nil, receives a line-oriented event stream of mode
	// transitions, restarts, merges and flushes (see Tracer).
	Trace *Tracer
}

// DefaultConfig returns the paper's multipass configuration. The multipass
// front end is two stages deeper than the baseline (ENQ and DEQ stages,
// Figure 2), reflected in the misprediction penalty.
func DefaultConfig() Config {
	c := Config{Config: sim.Default()}
	c.BufferSize = 256
	c.IQSize = 256
	c.ASCEntries = 64
	c.ASCWays = 2
	c.MispredictPenalty = 10
	c.RestartDeferralWindow = 16
	return c
}

// Validate checks the multipass-specific parameters.
func (c *Config) Validate() error {
	if err := c.Config.Validate(); err != nil {
		return err
	}
	if c.IQSize < c.Caps.MaxIssue {
		return errInvalid("IQSize smaller than issue width")
	}
	if c.ASCEntries < 1 || c.ASCWays < 1 || c.ASCEntries%c.ASCWays != 0 {
		return errInvalid("ASC geometry")
	}
	if s := c.ASCEntries / c.ASCWays; s&(s-1) != 0 {
		return errInvalid("ASC set count not a power of two")
	}
	if c.HardwareRestart && c.RestartDeferralWindow < 1 {
		return errInvalid("RestartDeferralWindow < 1")
	}
	return nil
}

type invalidError string

func errInvalid(msg string) error { return invalidError(msg) }

func (e invalidError) Error() string { return "core: invalid config: " + string(e) }
