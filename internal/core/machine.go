package core

import (
	"context"
	"fmt"

	"multipass/internal/arch"
	"multipass/internal/bpred"
	"multipass/internal/isa"
	"multipass/internal/mem"
	"multipass/internal/sim"
)

// Machine is the multipass pipeline model.
type Machine struct {
	cfg Config
	tr  *sim.Trace
}

// UseTrace implements sim.TraceUser: subsequent runs of the traced program
// read the pre-decoded stream instead of re-interpreting it.
func (m *Machine) UseTrace(tr *sim.Trace) { m.tr = tr }

// New validates the configuration and returns the model.
func New(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if _, err := mem.NewHierarchy(cfg.Hier); err != nil {
		return nil, err
	}
	return &Machine{cfg: cfg}, nil
}

// Name implements sim.Machine.
func (m *Machine) Name() string {
	switch {
	case m.cfg.DisableRegroup && m.cfg.DisableRestart:
		return "multipass-noregroup-norestart"
	case m.cfg.DisableRegroup:
		return "multipass-noregroup"
	case m.cfg.DisableRestart:
		return "multipass-norestart"
	}
	return "multipass"
}

// mode is the pipeline's operating mode (§3.1, Figure 3).
type mode int

const (
	modeArch mode = iota
	modeAdvance
	modeRally
)

// run is the per-run state of the multipass pipeline.
type run struct {
	cfg    *Config
	p      *isa.Program
	hier   *mem.Hierarchy
	pred   *bpred.Gshare
	stream *sim.Stream
	fe     *sim.FetchUnit

	// Architectural state owned by the machine (not the oracle).
	ownRF  *arch.RegFile
	ownMem *arch.Memory
	ownPC  int

	// Architectural scoreboard.
	readyAt  [isa.NumFlatRegs]uint64
	prodKind [isa.NumFlatRegs]sim.ProducerKind

	// Multipass structures.
	rs  *resultStore
	asc *asc
	// Speculative register file with A-bits (redirect) and I-bits (invalid).
	srf        [isa.NumFlatRegs]isa.Word
	aBit       [isa.NumFlatRegs]bool
	iBit       [isa.NumFlatRegs]bool
	advReadyAt [isa.NumFlatRegs]uint64

	st   sim.Stats
	now  uint64
	next uint64 // DEQ: next architectural sequence to process
	mode mode
	// maxPeek is one past the farthest pre-executed sequence; rally ends
	// when next catches up (§3.1.3).
	maxPeek uint64

	// Advance episode state.
	trigger       uint64
	stallUntil    uint64
	peek          uint64
	storeDeferred bool
	passBlocked   bool
	// blockAt is the episode-persistent wrong-path point: the IQ is
	// fetched once per episode along the predicted path, so a branch that
	// was guessed wrong stays wrong for every pass of the episode.
	blockAt uint64
	// deferRun counts consecutive deferrals in the current pass, for the
	// hardware restart heuristic.
	deferRun int

	halted   bool
	lastWork uint64
	regBuf   [4]isa.Reg

	// Interval window (sim.Checkpoint bounds). For a monolithic run these
	// degenerate to measure == 0, end == ^uint64(0) and every check below
	// is a no-op.
	measure uint64
	end     uint64
	wm      sim.WarmMark

	// Idle-cycle fast-forwarding (see sim.SkipState). The cycle functions
	// report whether the cycle was provably idle and which stall category
	// its repeats are charged to; mode counters are credited by the mode in
	// effect after the cycle (commitCycle may flip rally to arch at its end,
	// and repeats of that cycle run in the new mode).
	skip       sim.SkipState
	skipOn     bool
	idle       bool
	idleCat    sim.StallKind
	idleIQFull bool // repeats also charge Multipass.IQFullCycles
}

const progressWindow = 1 << 20

// Run implements sim.Machine.
func (m *Machine) Run(ctx context.Context, p *isa.Program, image *arch.Memory) (*sim.Result, error) {
	return m.runFrom(ctx, p, image, nil)
}

// CheckpointSpec implements sim.IntervalRunner.
func (m *Machine) CheckpointSpec() sim.CheckpointSpec {
	return sim.CheckpointSpec{Hier: m.cfg.Hier, PredictorEntries: m.cfg.PredictorEntries, MaxInsts: m.cfg.MaxInsts}
}

// RunInterval implements sim.IntervalRunner: it simulates one checkpointed
// interval of the dynamic stream. The machine carries only read-only state
// (config, trace), so concurrent interval calls are safe.
func (m *Machine) RunInterval(ctx context.Context, p *isa.Program, image *arch.Memory, ck *sim.Checkpoint) (*sim.Result, error) {
	return m.runFrom(ctx, p, image, ck)
}

// runFrom is the cycle loop, generalized over a starting checkpoint. With a
// nil checkpoint (a monolithic Run) the window bounds degenerate to
// [0, ^uint64(0)) with measurement from zero, and every added check is a
// no-op: the golden stats stay byte-identical.
func (m *Machine) runFrom(ctx context.Context, p *isa.Program, image *arch.Memory, ck *sim.Checkpoint) (*sim.Result, error) {
	cfg := m.cfg
	r := &run{
		cfg:  &cfg,
		p:    p,
		hier: mem.MustNewHierarchy(cfg.Hier),
		pred: bpred.New(cfg.PredictorEntries),
		rs:   newResultStore(cfg.IQSize),
		asc:  newASC(cfg.ASCEntries, cfg.ASCWays),
	}
	var start uint64
	start, r.measure, r.end = ck.Bounds()
	if ck == nil {
		r.ownRF = arch.NewRegFile()
		r.ownMem = image.Clone()
		r.stream = sim.StreamFor(p, image, cfg.MaxInsts, m.tr)
	} else {
		if err := r.hier.RestoreWarm(ck.Caches); err != nil {
			return nil, err
		}
		if err := r.pred.RestoreWarm(ck.Pred); err != nil {
			return nil, err
		}
		r.ownRF = ck.RF.Clone()
		r.ownMem = ck.Mem.Clone()
		r.ownPC = ck.PC
		r.stream = sim.StreamFrom(p, ck, cfg.MaxInsts, m.tr)
	}
	r.fe = sim.NewFetchUnit(r.stream, r.hier, cfg.FetchWidth)
	r.fe.StartAt(start)
	r.next = start
	r.maxPeek = start
	r.skipOn = !cfg.DisableSkip

	for !r.halted && r.next < r.end {
		if err := sim.PollContext(ctx, r.now); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		r.wm.Mark(r.next, r.measure, &r.st, r.pred, r.hier)
		if r.mode == modeAdvance && r.now >= r.stallUntil {
			r.exitAdvance()
		}
		r.skip.Begin()
		r.idle, r.idleIQFull = false, false
		var err error
		if r.mode == modeAdvance {
			err = r.advanceCycle()
		} else {
			err = r.commitCycle()
		}
		if err != nil {
			return nil, err
		}
		r.st.Cycles++
		r.now++
		r.fe.Release(r.next)
		if r.skipOn && r.idle {
			if d := r.skip.Jump(r.hier, r.now); d > 0 {
				r.st.Cat[r.idleCat] += d
				switch r.mode {
				case modeAdvance:
					r.st.Multipass.AdvanceCycles += d
					if r.idleIQFull {
						r.st.Multipass.IQFullCycles += d
					}
				case modeRally:
					r.st.Multipass.RallyCycles += d
				default:
					r.st.Multipass.ArchCycles += d
				}
				r.st.Cycles += d
				r.now += d
			}
		}
		if r.now-r.lastWork > progressWindow {
			return nil, fmt.Errorf("core: no progress for %d cycles at seq %d (mode %d)", progressWindow, r.next, r.mode)
		}
	}

	r.st.Branch = r.pred.Stats()
	r.st.Memory = r.hier.Stats()
	r.wm.Discard(&r.st)
	if err := r.st.CheckConsistency(); err != nil {
		return nil, err
	}
	return &sim.Result{Stats: r.st, RF: r.ownRF, Mem: r.ownMem}, nil
}

// exitAdvance switches to rally mode: latched architectural instructions
// displace the advance stream, and the A-bit vector is cleared, which
// effectively clears the SRF (§3.1.3). The RS survives.
func (r *run) exitAdvance() {
	r.mode = modeRally
	r.clearPassState()
	r.traceRally()
}

// clearPassState clears the per-pass speculative state: A-bits/I-bits (the
// SRF), the ASC, and the deferred-store poison flag.
func (r *run) clearPassState() {
	for i := range r.aBit {
		r.aBit[i] = false
		r.iBit[i] = false
	}
	r.asc.clear()
	r.storeDeferred = false
	r.passBlocked = false
	r.deferRun = 0
}

// enterAdvance begins an advance episode triggered by the instruction at
// seq stalling on reg (paper §3.1.2).
func (r *run) enterAdvance(seq uint64, until uint64) {
	r.skip.MarkDirty() // mode change: the next cycle is an advance cycle
	r.mode = modeAdvance
	r.trigger = seq
	r.stallUntil = until
	r.peek = seq
	r.blockAt = ^uint64(0)
	r.clearPassState()
	r.st.Multipass.AdvanceEntries++
	r.st.Multipass.AdvancePasses++
	r.traceAdvanceEnter()
}

// restartPass implements advance restart (§3.3): speculative per-pass state
// clears, the RS persists, and the PEEK pointer returns to the trigger.
func (r *run) restartPass() {
	r.skip.MarkDirty() // pass counters and PEEK change even when no slot was used
	r.clearPassState()
	r.peek = r.trigger
	r.st.Multipass.AdvancePasses++
}

// commitWrite commits a computed value to the machine's architectural
// register file, including the complement predicate for compares.
func (r *run) commitWrite(in *isa.Inst, v isa.Word) {
	if in.Dst.IsNone() {
		return
	}
	r.ownRF.Write(in.Dst, v)
	if !in.Dst2.IsNone() {
		r.ownRF.Write(in.Dst2, isa.BoolWord(!v.Bool()))
	}
}

// setReady updates the architectural scoreboard for the instruction's
// destinations.
func (r *run) setReady(in *isa.Inst, at uint64, kind sim.ProducerKind, groupWrites *sim.RegSet, trackGroup bool) {
	for _, reg := range in.Writes(r.regBuf[:0]) {
		if trackGroup {
			groupWrites.Add(reg)
		}
		if reg.IsZeroReg() {
			continue
		}
		f := reg.Flat()
		r.readyAt[f] = at
		r.prodKind[f] = kind
	}
}
