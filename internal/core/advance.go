package core

import (
	"multipass/internal/isa"
	"multipass/internal/sim"
)

// advOp is the result of reading an operand during advance execution:
// either invalid (unknown value; consumers must be deferred), or a value
// usable from cycle `ready`.
type advOp struct {
	valid bool
	ready uint64
	val   isa.Word
}

// readAdv reads a register for the advance stream: SRF when the A-bit is
// set (I-bit means invalid), otherwise the architectural file. An
// architectural register still owed by an in-flight load is invalid (this
// is the stall-on-use that advance execution bypasses); one owed by a
// short-latency operation is valid but not yet ready, stalling the in-order
// advance stream briefly.
func (r *run) readAdv(reg isa.Reg) advOp {
	if reg.IsNone() {
		return advOp{valid: true}
	}
	f := reg.Flat()
	if r.aBit[f] {
		if r.iBit[f] {
			return advOp{}
		}
		return advOp{valid: true, ready: r.advReadyAt[f], val: r.srf[f]}
	}
	if r.readyAt[f] > r.now {
		if r.prodKind[f] == sim.ProducerLoad {
			return advOp{}
		}
		return advOp{valid: true, ready: r.readyAt[f], val: r.ownRF.Read(reg)}
	}
	return advOp{valid: true, val: r.ownRF.Read(reg)}
}

// writeAdv writes a speculative value into the SRF, setting the A-bit and
// clearing the I-bit.
func (r *run) writeAdv(reg isa.Reg, v isa.Word, ready uint64) {
	if reg.IsNone() || reg.IsZeroReg() {
		return
	}
	f := reg.Flat()
	r.aBit[f] = true
	r.iBit[f] = false
	r.srf[f] = v
	r.advReadyAt[f] = ready
}

// suppressDests marks the instruction's destinations invalid (A-bit +
// I-bit), deferring all consumers (§3.1.2).
func (r *run) suppressDests(in *isa.Inst) {
	for _, reg := range in.Writes(r.regBuf[:0]) {
		if reg.IsZeroReg() {
			continue
		}
		f := reg.Flat()
		r.aBit[f] = true
		r.iBit[f] = true
	}
}

// bumpPeek consumes one advance slot.
func (r *run) bumpPeek() {
	r.peek++
	if r.peek > r.maxPeek {
		r.maxPeek = r.peek
	}
}

// noteDeferral updates the consecutive-deferral run and reports whether the
// hardware restart heuristic (footnote 1 of §3.3) wants to restart the
// pass: a long deferral run with some pass progress behind it.
func (r *run) noteDeferral() bool {
	r.deferRun++
	return r.cfg.HardwareRestart &&
		r.deferRun >= r.cfg.RestartDeferralWindow &&
		r.peek > r.trigger+1
}

// noteExecution resets the deferral run.
func (r *run) noteExecution() { r.deferRun = 0 }

// advanceCycle runs one cycle of advance pre-execution (§3.1.2).
func (r *run) advanceCycle() error {
	r.st.Multipass.AdvanceCycles++
	r.fe.SetLimit(r.next + uint64(r.cfg.IQSize))

	var use isa.FUUse
	slots := 0
	executed := 0
	mp := &r.st.Multipass
	wasBlocked := r.passBlocked
	iqFullIdle := false
	// The main loop exits advance mode once now reaches stallUntil, so that
	// is the latest cycle an idle advance cycle may replay to.
	r.skip.Note(r.stallUntil)

	for slots < r.cfg.Caps.MaxIssue && !r.passBlocked {
		if r.peek >= r.next+uint64(r.cfg.IQSize) {
			if slots == 0 {
				mp.IQFullCycles++
				iqFullIdle = true
			}
			break
		}
		if r.peek >= r.blockAt {
			// The fetched path beyond this point is wrong for the whole
			// episode; idle until rally.
			break
		}
		d, err := r.stream.At(r.peek)
		if err != nil {
			return err
		}
		if d == nil {
			r.passBlocked = true
			break
		}
		in := d.Inst
		if in.Op.Kind() == isa.KindHalt {
			// Never pre-execute past the end of the program.
			r.passBlocked = true
			break
		}
		fready, ok, err := r.fe.ReadyAt(r.peek)
		if err != nil {
			return err
		}
		if !ok {
			r.passBlocked = true
			break
		}
		if fready > r.now {
			r.skip.Note(fready)
			break // advance is fetch-limited this cycle
		}

		// Already processed in a previous pass: merge through the SRF
		// without re-execution (persistent results, §3.1.2).
		if e := r.rs.get(r.peek); e != nil {
			r.advanceMerge(in, e)
			slots++
			r.bumpPeek()
			continue
		}

		// Qualifying predicate.
		qp := r.readAdv(in.QP)
		if !qp.valid {
			if in.Op.IsBranch() {
				// Unresolvable branch: follow the predictor. If the
				// prediction is actually wrong, everything fetched beyond
				// is wrong-path for the rest of the episode.
				if r.pred.Predict(d.Addr()) != d.Taken {
					r.skip.MarkDirty() // blockAt changes without a slot used
					r.blockAt = r.peek
					break
				}
				slots++
				r.bumpPeek()
				continue
			}
			r.suppressDests(in)
			mp.AdvanceDeferred++
			slots++
			r.bumpPeek()
			if r.noteDeferral() {
				r.restartPass()
				mp.HWRestarts++
				r.traceRestart("hardware")
				break
			}
			continue
		}
		if qp.ready > r.now {
			r.skip.Note(qp.ready)
			break // in-order wait for a short-latency producer
		}
		qpTrue := qp.val.Bool()

		if in.Op.IsBranch() {
			if !use.Fits(in.Op, &r.cfg.Caps) {
				break
			}
			taken := qpTrue
			if taken != d.Taken {
				// The advance value chain disagrees with the true path
				// (possible only through data speculation): wrong-path
				// guard ends the episode's reach here.
				r.skip.MarkDirty() // blockAt changes without a slot used
				r.blockAt = r.peek
				break
			}
			use.Add(in.Op)
			correct := r.pred.Update(d.Addr(), taken)
			mp.EarlyResolved++
			if !correct {
				r.fe.Flush(r.peek+1, r.now+1+uint64(r.cfg.MispredictPenalty))
			}
			r.rs.put(r.peek, rsEntry{readyCycle: r.now, branchDone: true, branchTaken: taken})
			mp.AdvanceExecuted++
			executed++
			slots++
			r.bumpPeek()
			if taken {
				break // no pre-execution past a taken branch this cycle
			}
			continue
		}

		if !qpTrue {
			// Squashed by a (valid) false predicate: preserve that outcome.
			r.rs.put(r.peek, rsEntry{readyCycle: r.now, squashed: true})
			slots++
			r.bumpPeek()
			continue
		}

		if in.Op == isa.OpRestart {
			mp.RestartInstsSeen++
			src := r.readAdv(in.Src1)
			if !src.valid && !r.cfg.DisableRestart {
				r.restartPass()
				mp.Restarts++
				r.traceRestart("compiler")
				break // the restart consumes the rest of the cycle
			}
			slots++
			r.bumpPeek()
			continue
		}

		if in.Op.IsStore() {
			if !r.advanceStore(in, d, &use, &slots, &executed) {
				break
			}
			continue
		}

		// Generic operand read for loads and computation.
		var src1, src2 advOp
		src1 = r.readAdv(in.Src1)
		if !in.Op.IsLoad() {
			src2 = r.readAdv(in.Src2)
		} else {
			src2 = advOp{valid: true}
		}
		if !src1.valid || !src2.valid {
			r.suppressDests(in)
			mp.AdvanceDeferred++
			slots++
			r.bumpPeek()
			if r.noteDeferral() {
				r.restartPass()
				mp.HWRestarts++
				r.traceRestart("hardware")
				break
			}
			continue
		}
		if src1.ready > r.now || src2.ready > r.now {
			if src1.ready > r.now {
				r.skip.Note(src1.ready)
			}
			if src2.ready > r.now {
				r.skip.Note(src2.ready)
			}
			break // in-order wait
		}
		if !use.Fits(in.Op, &r.cfg.Caps) {
			break
		}

		if in.Op.IsLoad() {
			r.advanceLoad(in, &use, &slots, &executed, src1.val)
			continue
		}

		// Computation: execute speculatively, preserve the result.
		use.Add(in.Op)
		v := isa.Eval(in.Op, src1.val, src2.val, in.Imm)
		ready := r.now + uint64(in.Op.Latency())
		r.writeAdv(in.Dst, v, ready)
		if !in.Dst2.IsNone() {
			r.writeAdv(in.Dst2, isa.BoolWord(!v.Bool()), ready)
		}
		r.rs.put(r.peek, rsEntry{readyCycle: ready, val: v, hasVal: !in.Dst.IsNone()})
		mp.AdvanceExecuted++
		executed++
		slots++
		r.bumpPeek()
	}

	if executed > 0 {
		r.st.Cat[sim.StallExecution]++
		r.lastWork = r.now
	} else {
		// Cycles with only merges or deferrals are charged to the latency
		// that triggered advance mode (always a load).
		r.st.Cat[sim.StallLoad]++
		if slots == 0 && r.passBlocked == wasBlocked {
			// No slot consumed and the blocked flag did not flip: every
			// mutation path above passes through slots++, sets passBlocked,
			// or marked the skip state dirty (blockAt, restartPass), so the
			// cycle replays identically until the earliest noted deadline
			// (at the latest, the episode exit at stallUntil).
			r.idle, r.idleCat = true, sim.StallLoad
			r.idleIQFull = iqFullIdle
		}
	}
	return nil
}

// advanceMerge re-applies a previous pass's RS entry to the SRF.
func (r *run) advanceMerge(in *isa.Inst, e *rsEntry) {
	switch {
	case e.squashed || e.branchDone:
		// Nothing to propagate.
	case e.readyCycle > r.now:
		// The preserved result (typically a missing load) has not arrived
		// yet: consumers stay deferred this pass.
		r.suppressDests(in)
	default:
		if e.hasVal {
			ready := e.readyCycle
			if ready < r.now {
				ready = r.now
			}
			r.writeAdv(in.Dst, e.val, ready)
			if !in.Dst2.IsNone() {
				r.writeAdv(in.Dst2, isa.BoolWord(!e.val.Bool()), ready)
			}
		}
		if e.isStore {
			// Keep forwarding across passes: the ASC was cleared at the
			// pass boundary.
			r.asc.insert(e.addr, in.Op.MemBytes(), e.val, false)
		}
	}
}

// advanceStore processes a store in advance mode (§3.6). Returns false when
// the cycle's group must end.
func (r *run) advanceStore(in *isa.Inst, d *sim.DynInst, use *isa.FUUse, slots, executed *int) bool {
	mp := &r.st.Multipass
	addrOp := r.readAdv(in.Src1)
	if !addrOp.valid {
		// Unknown address: every later advance load is data-speculative.
		r.storeDeferred = true
		mp.DeferredStores++
		mp.AdvanceDeferred++
		*slots++
		r.bumpPeek()
		return true
	}
	if addrOp.ready > r.now {
		r.skip.Note(addrOp.ready)
		return false
	}
	addr := addrOp.val.Uint32() + uint32(in.Imm)
	if addr != d.MemAddr {
		// Data-speculation can produce a different address than the true
		// path; poison the true location conservatively as well.
		r.storeDeferred = true
	}
	dataOp := r.readAdv(in.Src2)
	if !dataOp.valid {
		if !use.Fits(in.Op, &r.cfg.Caps) {
			return false
		}
		use.Add(in.Op)
		// Address known, data unknown: poison the location so loads to it
		// are suppressed ("the result of a load to the same location is
		// also invalid").
		r.asc.insert(addr, in.Op.MemBytes(), 0, true)
		mp.AdvanceDeferred++
		*slots++
		r.bumpPeek()
		return true
	}
	if dataOp.ready > r.now {
		r.skip.Note(dataOp.ready)
		return false
	}
	if !use.Fits(in.Op, &r.cfg.Caps) {
		return false
	}
	use.Add(in.Op)
	r.asc.insert(addr, in.Op.MemBytes(), dataOp.val, false)
	r.rs.put(r.peek, rsEntry{readyCycle: r.now, val: dataOp.val, isStore: true, addr: addr, hasAddr: true})
	mp.AdvanceExecuted++
	*executed++
	*slots++
	r.bumpPeek()
	return true
}

// advanceLoad processes a load in advance mode: ASC forwarding, hierarchy
// access (the prefetching effect), the §3.5 WAW rule for L1 misses, and
// S-bit marking for data-speculative cases.
func (r *run) advanceLoad(in *isa.Inst, use *isa.FUUse, slots, executed *int, base isa.Word) {
	mp := &r.st.Multipass
	addr := base.Uint32() + uint32(in.Imm)
	size := in.Op.MemBytes()

	res, fwd := r.asc.lookup(addr, size)
	switch res {
	case ascConflict:
		r.suppressDests(in)
		mp.AdvanceDeferred++
		*slots++
		r.bumpPeek()
		return
	case ascHit:
		use.Add(in.Op)
		ready := r.now + uint64(in.Op.Latency())
		r.writeAdv(in.Dst, fwd, ready)
		r.rs.put(r.peek, rsEntry{readyCycle: ready, val: fwd, hasVal: true, addr: addr, hasAddr: true})
		mp.ASCHits++
		mp.AdvanceExecuted++
		*executed++
		*slots++
		r.bumpPeek()
		return
	}

	spec := r.storeDeferred || r.asc.setReplaced(addr)
	use.Add(in.Op)
	ready := r.hier.AccessData(addr, r.now, false, true)
	val := r.ownMem.LoadWord(in.Op, addr)
	r.rs.put(r.peek, rsEntry{readyCycle: ready, val: val, hasVal: true, spec: spec, addr: addr, hasAddr: true})
	if spec {
		mp.SpecLoads++
	}
	l1Lat := uint64(r.cfg.Hier.L1D.Latency)
	if ready <= r.now+l1Lat {
		r.writeAdv(in.Dst, val, ready)
	} else {
		// §3.5: advance loads that miss L1 do not write back to the SRF;
		// their consumers defer to a later pass.
		r.suppressDests(in)
	}
	mp.AdvanceExecuted++
	*executed++
	*slots++
	r.bumpPeek()
}
