package core_test

import (
	"context"
	"fmt"

	"multipass/internal/arch"
	"multipass/internal/core"
	"multipass/internal/isa"
)

// Run a kernel with a cache-missing load on the multipass pipeline and
// observe that independent work behind the stall was pre-executed and
// merged rather than re-executed.
func Example() {
	p := isa.MustAssemble(`
	movi r10 = 0x100000
	ld4  r1 = [r10]      # long cache miss
	add  r2 = r1, r1     # stall-on-use: advance mode begins here
	movi r3 = 40         # independent: pre-executed during the miss
	addi r4 = r3, 2
	halt
`)
	image := arch.NewMemory()
	image.Store(0x100000, 4, 21)

	m, err := core.New(core.DefaultConfig())
	if err != nil {
		panic(err)
	}
	res, err := m.Run(context.Background(), p, image)
	if err != nil {
		panic(err)
	}
	fmt.Println("r2 =", res.RF.Read(isa.IntReg(2)).Uint32())
	fmt.Println("r4 =", res.RF.Read(isa.IntReg(4)).Uint32())
	fmt.Println("advance episodes:", res.Stats.Multipass.AdvanceEntries)
	fmt.Println("results merged:", res.Stats.Multipass.Merged > 0)
	// Output:
	// r2 = 42
	// r4 = 42
	// advance episodes: 1
	// results merged: true
}
