package core

import "multipass/internal/isa"

// asc is the advance store cache (§3.6): a small, low-associativity cache
// that forwards advance-store data to later advance loads within one pass.
// It is cleared at the start of every pass. Replacement in a set makes
// subsequent advance-load misses in that set data-speculative.
type ascEntry struct {
	valid bool
	addr  uint32 // exact byte address of the store
	size  int
	data  isa.Word
	// dataInvalid marks a store whose address was known but whose data
	// operand was invalid: loads to the location must be suppressed.
	dataInvalid bool
	use         uint64
}

type asc struct {
	ways     int
	sets     int
	setMask  uint32
	entries  []ascEntry // sets*ways, row-major
	replaced []bool     // per set, since pass start
	useClock uint64

	hits         uint64
	replacements uint64
}

func newASC(entries, ways int) *asc {
	sets := entries / ways
	return &asc{
		ways:     ways,
		sets:     sets,
		setMask:  uint32(sets - 1),
		entries:  make([]ascEntry, entries),
		replaced: make([]bool, sets),
	}
}

func (a *asc) setIndex(addr uint32) uint32 {
	return (addr >> 3) & a.setMask
}

func (a *asc) set(addr uint32) []ascEntry {
	s := a.setIndex(addr)
	return a.entries[int(s)*a.ways : (int(s)+1)*a.ways]
}

// clear empties the ASC and its replacement flags (start of a pass).
func (a *asc) clear() {
	for i := range a.entries {
		a.entries[i] = ascEntry{}
	}
	for i := range a.replaced {
		a.replaced[i] = false
	}
}

// overlaps reports whether [addrA, addrA+sizeA) intersects [addrB, addrB+sizeB).
func overlaps(addrA uint32, sizeA int, addrB uint32, sizeB int) bool {
	return addrA < addrB+uint32(sizeB) && addrB < addrA+uint32(sizeA)
}

// ascLookupResult describes what an advance load found in the ASC.
type ascLookupResult int

const (
	ascMiss     ascLookupResult = iota
	ascHit                      // exact match: data forwarded
	ascConflict                 // overlapping but not exact, or invalid data
)

// lookup searches for a forwardable store. On ascHit the data is returned.
// A store with invalid data or a partial overlap yields ascConflict: the
// load's result is invalid (§3.6: "if a store has an invalid data operand,
// the result of a load to the same location is also invalid").
func (a *asc) lookup(addr uint32, size int) (ascLookupResult, isa.Word) {
	a.useClock++
	set := a.set(addr)
	for i := range set {
		e := &set[i]
		if !e.valid || !overlaps(addr, size, e.addr, e.size) {
			continue
		}
		if e.dataInvalid || e.addr != addr || e.size != size {
			return ascConflict, 0
		}
		e.use = a.useClock
		a.hits++
		return ascHit, e.data
	}
	return ascMiss, 0
}

// insert records an advance store; dataInvalid poisons the location. A full
// set evicts LRU and marks the set replaced.
func (a *asc) insert(addr uint32, size int, data isa.Word, dataInvalid bool) {
	a.useClock++
	set := a.set(addr)
	victim := 0
	for i := range set {
		if set[i].valid && set[i].addr == addr && set[i].size == size {
			victim = i
			break
		}
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].use < set[victim].use {
			victim = i
		}
	}
	if set[victim].valid && (set[victim].addr != addr || set[victim].size != size) {
		a.replaced[a.setIndex(addr)] = true
		a.replacements++
	}
	set[victim] = ascEntry{valid: true, addr: addr, size: size, data: data, dataInvalid: dataInvalid, use: a.useClock}
}

// setReplaced reports whether addr's set has suffered a replacement this
// pass (making load misses there data-speculative).
func (a *asc) setReplaced(addr uint32) bool {
	return a.replaced[a.setIndex(addr)]
}
