package core

import (
	"context"
	"strings"
	"testing"

	"multipass/internal/arch"
	"multipass/internal/isa"
)

func TestTracerEmitsLifecycle(t *testing.T) {
	var buf strings.Builder
	cfg := DefaultConfig()
	cfg.Trace = NewTracer(&buf)
	p := isa.MustAssemble(restartProg)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(context.Background(), p, restartImage()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"advance-enter", "restart(compiler)", "rally", "merge seq="} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
}

func TestTracerFlushEvent(t *testing.T) {
	var buf strings.Builder
	cfg := DefaultConfig()
	cfg.Trace = NewTracer(&buf)
	image := arch.NewMemory()
	image.Store(0x100000, 4, 0x3000)
	image.Store(0x3000, 4, 7)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(context.Background(), isa.MustAssemble(specProg), image); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "spec-flush") {
		t.Errorf("trace missing spec-flush:\n%s", buf.String())
	}
}

func TestNilTracerSafe(t *testing.T) {
	// A nil tracer (the default) must be a no-op, not a panic.
	var tr *Tracer
	tr.event(1, "x")
	cfg := DefaultConfig()
	if cfg.Trace != nil {
		t.Fatal("default config has a tracer")
	}
	p := isa.MustAssemble(overlapProg)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(context.Background(), p, arch.NewMemory()); err != nil {
		t.Fatal(err)
	}
}
