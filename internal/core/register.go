package core

import "multipass/internal/sim"

// The multipass variants of the evaluation: the full machine and the two
// Figure 8 ablations.
func init() {
	factory := func(noRegroup, noRestart bool) sim.Factory {
		return func(opts sim.ModelOptions) (sim.Machine, error) {
			cfg := DefaultConfig()
			cfg.Hier = opts.Hier
			if opts.MaxInsts != 0 {
				cfg.MaxInsts = opts.MaxInsts
			}
			cfg.DisableRegroup = noRegroup
			cfg.DisableRestart = noRestart
			cfg.DisableSkip = opts.DisableSkip
			return New(cfg)
		}
	}
	sim.Register("multipass", factory(false, false))
	sim.Register("multipass-noregroup", factory(true, false))
	sim.Register("multipass-norestart", factory(false, true))
}
