package core

import "multipass/internal/sim"

// The multipass variants of the evaluation: the full machine and the two
// Figure 8 ablations.
func init() {
	factory := func(noRegroup, noRestart bool) sim.Factory {
		return func(opts sim.ModelOptions) (sim.Machine, error) {
			cfg := DefaultConfig()
			cfg.Hier = opts.Hier
			if opts.MaxInsts != 0 {
				cfg.MaxInsts = opts.MaxInsts
			}
			cfg.DisableRegroup = noRegroup
			cfg.DisableRestart = noRestart
			cfg.DisableSkip = opts.DisableSkip
			return New(cfg)
		}
	}
	sim.Register("multipass", factory(false, false))
	sim.Describe("multipass", "flea-flicker multipass pipeline: advance passes under misses, rally pass commits (paper §3)")
	sim.Register("multipass-noregroup", factory(true, false))
	sim.Describe("multipass-noregroup", "multipass ablation without issue-group re-formation (Figure 8)")
	sim.Register("multipass-norestart", factory(false, true))
	sim.Describe("multipass-norestart", "multipass ablation without critical-load RESTART hints (Figure 8)")
}
