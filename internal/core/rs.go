package core

import "multipass/internal/isa"

// rsEntry is one result-store entry (plus its SMAQ fields). There is one
// entry per instruction-queue slot; the simulator keys entries by dynamic
// sequence number and discards them at dequeue. An absent entry is an
// E-bit=empty slot (the instruction was deferred or never pre-executed).
type rsEntry struct {
	// readyCycle is when the preserved result becomes usable; for advance
	// loads that missed, this is the fill completion time.
	readyCycle uint64
	// squashed records a pre-executed instruction whose qualifying
	// predicate was false: merging it writes nothing.
	squashed bool
	val      isa.Word
	val2     isa.Word // complement predicate for compares
	hasVal   bool     // the instruction writes a destination

	// spec is the S-bit: a data-speculative load that rally must re-perform
	// and verify by value (§3.6).
	spec bool

	// SMAQ: the resolved effective address of a pre-executed memory
	// instruction, reused in rally without re-reading address operands.
	addr    uint32
	hasAddr bool

	// isStore marks a pre-executed store; rally performs the memory write
	// using addr and val.
	isStore bool

	// branchDone marks a branch resolved during advance execution: the
	// predictor was already trained (and any misprediction penalty paid),
	// so rally does not charge it again.
	branchDone  bool
	branchTaken bool
}

// rsSlot is one ring slot: the entry plus the sequence number that owns it
// (the E-bit is the live flag).
type rsSlot struct {
	e    rsEntry
	seq  uint64
	live bool
}

// resultStore is the RS keyed by dynamic sequence number. Sequence numbers
// with a live entry are dense and bounded: they all lie in the current
// instruction-queue window [next, next+IQSize), so the store is a
// power-of-two ring indexed by seq&mask with at most one live owner per
// slot — no per-instruction allocation, O(window) flush.
type resultStore struct {
	slots []rsSlot
	mask  uint64
	n     int
	// maxSeq is one past the highest sequence ever stored (and not yet
	// flushed); flushFrom walks [seq, maxSeq) instead of scanning every slot.
	maxSeq uint64
}

// newResultStore sizes the ring for an instruction queue of iqSize entries.
func newResultStore(iqSize int) *resultStore {
	capSlots := 1
	for capSlots < iqSize {
		capSlots <<= 1
	}
	return &resultStore{
		slots: make([]rsSlot, capSlots),
		mask:  uint64(capSlots - 1),
	}
}

// get returns the entry preserved for seq, or nil (E-bit empty).
func (rs *resultStore) get(seq uint64) *rsEntry {
	s := &rs.slots[seq&rs.mask]
	if s.live && s.seq == seq {
		return &s.e
	}
	return nil
}

// put preserves an entry for seq. The caller guarantees seq lies within the
// current IQ window; two live sequences can therefore never collide on a
// slot, and a collision is a model bug.
func (rs *resultStore) put(seq uint64, e rsEntry) {
	s := &rs.slots[seq&rs.mask]
	if s.live {
		if s.seq != seq {
			panic("core: result-store ring collision (sequence outside IQ window)")
		}
	} else {
		s.live = true
		rs.n++
	}
	s.e = e
	s.seq = seq
	if seq+1 > rs.maxSeq {
		rs.maxSeq = seq + 1
	}
}

func (rs *resultStore) drop(seq uint64) {
	s := &rs.slots[seq&rs.mask]
	if s.live && s.seq == seq {
		s.live = false
		rs.n--
	}
}

// flushFrom discards all entries at or above seq (value-misspeculation
// pipeline flush). It walks only the occupied tail of the window, not the
// whole store.
func (rs *resultStore) flushFrom(seq uint64) int {
	n := 0
	for q := seq; q < rs.maxSeq; q++ {
		s := &rs.slots[q&rs.mask]
		if s.live && s.seq == q {
			s.live = false
			rs.n--
			n++
		}
	}
	if rs.maxSeq > seq {
		rs.maxSeq = seq
	}
	return n
}

func (rs *resultStore) len() int { return rs.n }
