package core

import "multipass/internal/isa"

// rsEntry is one result-store entry (plus its SMAQ fields). There is one
// entry per instruction-queue slot; the simulator keys entries by dynamic
// sequence number and discards them at dequeue. An absent entry is an
// E-bit=empty slot (the instruction was deferred or never pre-executed).
type rsEntry struct {
	// readyCycle is when the preserved result becomes usable; for advance
	// loads that missed, this is the fill completion time.
	readyCycle uint64
	// squashed records a pre-executed instruction whose qualifying
	// predicate was false: merging it writes nothing.
	squashed bool
	val      isa.Word
	val2     isa.Word // complement predicate for compares
	hasVal   bool     // the instruction writes a destination

	// spec is the S-bit: a data-speculative load that rally must re-perform
	// and verify by value (§3.6).
	spec bool

	// SMAQ: the resolved effective address of a pre-executed memory
	// instruction, reused in rally without re-reading address operands.
	addr    uint32
	hasAddr bool

	// isStore marks a pre-executed store; rally performs the memory write
	// using addr and val.
	isStore bool

	// branchDone marks a branch resolved during advance execution: the
	// predictor was already trained (and any misprediction penalty paid),
	// so rally does not charge it again.
	branchDone  bool
	branchTaken bool
}

// resultStore is the RS keyed by dynamic sequence number.
type resultStore struct {
	entries map[uint64]*rsEntry
}

func newResultStore() *resultStore {
	return &resultStore{entries: make(map[uint64]*rsEntry)}
}

func (rs *resultStore) get(seq uint64) *rsEntry { return rs.entries[seq] }

func (rs *resultStore) put(seq uint64, e *rsEntry) { rs.entries[seq] = e }

func (rs *resultStore) drop(seq uint64) { delete(rs.entries, seq) }

// flushFrom discards all entries at or above seq (value-misspeculation
// pipeline flush).
func (rs *resultStore) flushFrom(seq uint64) int {
	n := 0
	for s := range rs.entries {
		if s >= seq {
			delete(rs.entries, s)
			n++
		}
	}
	return n
}

func (rs *resultStore) len() int { return len(rs.entries) }
