package core

import "testing"

// TestResultStoreFullFlush fills a full 256-entry RS window at a sequence
// range that wraps the ring, flushes the tail, and checks the survivors: the
// exact scenario a value-misspeculation flush hits at steady state.
func TestResultStoreFullFlush(t *testing.T) {
	const iq = 256
	rs := newResultStore(iq)

	// A window that straddles a ring-wrap boundary: 256 live entries in
	// [base, base+256) with base not a multiple of the ring size.
	const base = uint64(1000)
	for seq := base; seq < base+iq; seq++ {
		rs.put(seq, rsEntry{readyCycle: seq, hasVal: true})
	}
	if rs.len() != iq {
		t.Fatalf("full RS len = %d, want %d", rs.len(), iq)
	}

	// Flush the younger half.
	cut := base + iq/2
	if n := rs.flushFrom(cut); n != iq/2 {
		t.Fatalf("flushFrom(%d) discarded %d, want %d", cut, n, iq/2)
	}
	if rs.len() != iq/2 {
		t.Fatalf("survivors = %d, want %d", rs.len(), iq/2)
	}
	for seq := base; seq < cut; seq++ {
		e := rs.get(seq)
		if e == nil || e.readyCycle != seq {
			t.Fatalf("survivor %d missing or corrupt", seq)
		}
	}
	for seq := cut; seq < base+iq; seq++ {
		if rs.get(seq) != nil {
			t.Fatalf("flushed seq %d still present", seq)
		}
	}

	// The freed slots are reusable by the next window without interference
	// from the survivors that share ring positions.
	for seq := cut; seq < base+iq; seq++ {
		rs.put(seq, rsEntry{readyCycle: seq + 1})
	}
	if rs.len() != iq {
		t.Fatalf("refilled len = %d, want %d", rs.len(), iq)
	}
	if e := rs.get(cut); e == nil || e.readyCycle != cut+1 {
		t.Fatal("refilled entry not the new generation")
	}

	// Flushing everything empties the store.
	if n := rs.flushFrom(base); n != iq {
		t.Fatalf("full flush discarded %d, want %d", n, iq)
	}
	if rs.len() != 0 {
		t.Fatalf("len after full flush = %d", rs.len())
	}
}

// TestResultStoreWindowAdvance drives the ring through several full window
// generations, as DEQ/PEEK do, checking that slot reuse never resurrects a
// stale sequence.
func TestResultStoreWindowAdvance(t *testing.T) {
	const iq = 256
	rs := newResultStore(iq)
	for gen := uint64(0); gen < 5; gen++ {
		lo := gen * iq
		for seq := lo; seq < lo+iq; seq++ {
			rs.put(seq, rsEntry{val: 0, readyCycle: seq})
		}
		for seq := lo; seq < lo+iq; seq++ {
			if rs.get(seq) == nil {
				t.Fatalf("gen %d: live seq %d not found", gen, seq)
			}
			rs.drop(seq)
			if rs.get(seq) != nil {
				t.Fatalf("gen %d: dropped seq %d still present", gen, seq)
			}
		}
		if rs.len() != 0 {
			t.Fatalf("gen %d: len = %d after drain", gen, rs.len())
		}
		// Stale probes from the drained generation must miss even though
		// their ring slots are about to be reused.
		if rs.get(lo) != nil || rs.get(lo+iq-1) != nil {
			t.Fatalf("gen %d: stale sequence resurrected", gen)
		}
	}
}

// TestResultStoreCollisionPanics documents the ownership invariant: a put
// outside the IQ window that lands on a live slot is a model bug and panics.
func TestResultStoreCollisionPanics(t *testing.T) {
	rs := newResultStore(256)
	rs.put(0, rsEntry{})
	defer func() {
		if recover() == nil {
			t.Fatal("colliding put did not panic")
		}
	}()
	rs.put(256, rsEntry{}) // same slot (0 & mask == 256 & mask), different seq
}
