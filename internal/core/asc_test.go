package core

import (
	"testing"

	"multipass/internal/isa"
)

func TestASCExactForwarding(t *testing.T) {
	a := newASC(64, 2)
	a.insert(0x1000, 4, isa.IntWord(42), false)
	res, v := a.lookup(0x1000, 4)
	if res != ascHit || v.Uint32() != 42 {
		t.Errorf("lookup = %v, %d", res, v.Uint32())
	}
	// Different address: miss.
	if res, _ := a.lookup(0x2000, 4); res != ascMiss {
		t.Errorf("unrelated lookup = %v", res)
	}
}

func TestASCPartialOverlapConflicts(t *testing.T) {
	a := newASC(64, 2)
	a.insert(0x1000, 4, isa.IntWord(42), false)
	// Narrower load inside the stored word: cannot forward, must conflict.
	if res, _ := a.lookup(0x1001, 1); res != ascConflict {
		t.Errorf("partial overlap = %v, want conflict", res)
	}
	// Wider load covering the stored word: conflict.
	if res, _ := a.lookup(0x1000, 8); res != ascConflict {
		t.Errorf("wider overlap = %v, want conflict", res)
	}
	// Same address, different size: conflict.
	if res, _ := a.lookup(0x1000, 2); res != ascConflict {
		t.Errorf("size mismatch = %v, want conflict", res)
	}
}

func TestASCInvalidDataPoisons(t *testing.T) {
	a := newASC(64, 2)
	a.insert(0x3000, 4, 0, true) // store with invalid data operand
	if res, _ := a.lookup(0x3000, 4); res != ascConflict {
		t.Errorf("poisoned lookup = %v, want conflict", res)
	}
}

func TestASCOverwriteSameLocation(t *testing.T) {
	a := newASC(64, 2)
	a.insert(0x4000, 4, isa.IntWord(1), false)
	a.insert(0x4000, 4, isa.IntWord(2), false)
	res, v := a.lookup(0x4000, 4)
	if res != ascHit || v.Uint32() != 2 {
		t.Errorf("overwrite lookup = %v, %d", res, v.Uint32())
	}
	// Overwriting the same location is not a replacement.
	if a.setReplaced(0x4000) {
		t.Error("same-location overwrite marked the set replaced")
	}
}

func TestASCReplacementMarksSet(t *testing.T) {
	a := newASC(8, 2) // 4 sets x 2 ways; set = (addr>>3) & 3
	// Three distinct addresses in the same set (stride 4*8 = 32 bytes).
	a.insert(0x0000, 4, isa.IntWord(1), false)
	a.insert(0x0020, 4, isa.IntWord(2), false)
	if a.setReplaced(0x0000) {
		t.Fatal("set marked replaced before eviction")
	}
	a.insert(0x0040, 4, isa.IntWord(3), false) // evicts LRU (0x0000)
	if !a.setReplaced(0x0000) {
		t.Fatal("eviction did not mark the set replaced")
	}
	// The victim was the LRU entry.
	if res, _ := a.lookup(0x0000, 4); res != ascMiss {
		t.Error("LRU entry survived eviction")
	}
	if res, _ := a.lookup(0x0020, 4); res != ascHit {
		t.Error("MRU entry evicted")
	}
	// Other sets unaffected.
	if a.setReplaced(0x0008) {
		t.Error("unrelated set marked replaced")
	}
}

func TestASCClear(t *testing.T) {
	a := newASC(8, 2)
	a.insert(0x0000, 4, isa.IntWord(1), false)
	a.insert(0x0020, 4, isa.IntWord(2), false)
	a.insert(0x0040, 4, isa.IntWord(3), false)
	a.clear()
	if res, _ := a.lookup(0x0040, 4); res != ascMiss {
		t.Error("entry survived clear")
	}
	if a.setReplaced(0x0000) {
		t.Error("replaced flag survived clear")
	}
}

func TestASCLRUOrdering(t *testing.T) {
	a := newASC(8, 2)
	a.insert(0x0000, 4, isa.IntWord(1), false)
	a.insert(0x0020, 4, isa.IntWord(2), false)
	a.lookup(0x0000, 4) // refresh the older entry
	a.insert(0x0040, 4, isa.IntWord(3), false)
	if res, _ := a.lookup(0x0000, 4); res != ascHit {
		t.Error("recently used entry evicted")
	}
	if res, _ := a.lookup(0x0020, 4); res != ascMiss {
		t.Error("LRU entry survived")
	}
}

func TestOverlapsPredicate(t *testing.T) {
	cases := []struct {
		a    uint32
		an   int
		b    uint32
		bn   int
		want bool
	}{
		{0x100, 4, 0x100, 4, true},
		{0x100, 4, 0x104, 4, false},
		{0x100, 4, 0x103, 1, true},
		{0x100, 4, 0x0fc, 4, false},
		{0x100, 8, 0x104, 2, true},
		{0x100, 1, 0x100, 1, true},
		{0x100, 1, 0x101, 1, false},
	}
	for _, c := range cases {
		if got := overlaps(c.a, c.an, c.b, c.bn); got != c.want {
			t.Errorf("overlaps(%#x/%d, %#x/%d) = %v", c.a, c.an, c.b, c.bn, got)
		}
	}
}

func TestResultStoreFlushFrom(t *testing.T) {
	rs := newResultStore(256)
	for seq := uint64(0); seq < 10; seq++ {
		rs.put(seq, rsEntry{readyCycle: seq})
	}
	if rs.len() != 10 {
		t.Fatalf("len = %d", rs.len())
	}
	n := rs.flushFrom(4)
	if n != 6 {
		t.Errorf("flushed %d, want 6", n)
	}
	if rs.get(3) == nil || rs.get(4) != nil {
		t.Error("flush boundary wrong")
	}
	rs.drop(3)
	if rs.get(3) != nil {
		t.Error("drop failed")
	}
	if rs.len() != 3 {
		t.Errorf("len after ops = %d", rs.len())
	}
}
