package core

import (
	"context"
	"math/rand"
	"testing"

	"multipass/internal/arch"
	"multipass/internal/isa"
	"multipass/internal/pipe/inorder"
	"multipass/internal/sim"
)

// runMP runs the multipass machine and checks its final architectural state
// against the reference interpreter.
func runMP(t *testing.T, cfg Config, p *isa.Program, image *arch.Memory) *sim.Result {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(context.Background(), p, image)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := arch.Run(p, image.Clone(), 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.RF.Equal(ref.State.RF) {
		t.Fatalf("multipass final registers diverged: %v", res.RF.Diff(ref.State.RF))
	}
	if !res.Mem.Equal(ref.State.Mem) {
		t.Fatal("multipass final memory diverged from reference")
	}
	if res.Stats.Retired != ref.State.Retired {
		t.Fatalf("retired %d, reference %d", res.Stats.Retired, ref.State.Retired)
	}
	return res
}

// runInorder runs the baseline for cycle comparisons.
func runInorder(t *testing.T, p *isa.Program, image *arch.Memory) *sim.Result {
	t.Helper()
	m, err := inorder.New(sim.Default())
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(context.Background(), p, image)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSimpleProgramsMatchReference(t *testing.T) {
	progs := map[string]string{
		"sum": `
	movi r1 = 0
	movi r2 = 0x1000
	movi r3 = 50
loop:
	ld4 r4 = [r2]
	add r1 = r1, r4
	addi r2 = r2, 4
	subi r3 = r3, 1
	cmpi.ne p1, p2 = r3, 0 ;;
	(p1) br loop
	halt`,
		"predication": `
	movi r1 = 7
	cmpi.lt p1, p2 = r1, 10 ;;
	(p1) movi r2 = 1
	(p2) movi r2 = 2
	(p1) st4 [r1+0x100] = r2
	halt`,
		"fp": `
	movi r1 = 5
	cvt.if f1 = r1
	fmul f2 = f1, f1
	movi r2 = 0x400
	stf [r2] = f2
	ldf f3 = [r2]
	fadd f4 = f3, f1
	halt`,
	}
	for name, src := range progs {
		t.Run(name, func(t *testing.T) {
			image := arch.NewMemory()
			for i := 0; i < 64; i++ {
				image.Store(uint32(0x1000+4*i), 4, uint64(3*i+1))
			}
			runMP(t, DefaultConfig(), isa.MustAssemble(src), image)
		})
	}
}

// overlapProg has one long miss followed by independent long misses: the
// multipass pipeline should overlap them during advance mode.
const overlapProg = `
	movi r10 = 0x100000
	ld4 r1 = [r10]
	add r2 = r1, r1
	ld4 r3 = [r10+8192]
	add r4 = r3, r3
	ld4 r5 = [r10+16384]
	add r6 = r5, r5
	halt
`

func TestAdvanceOverlapsIndependentMisses(t *testing.T) {
	p := isa.MustAssemble(overlapProg)
	image := arch.NewMemory()
	image.Store(0x100000, 4, 11)
	image.Store(0x100000+8192, 4, 22)
	image.Store(0x100000+16384, 4, 33)

	mp := runMP(t, DefaultConfig(), p, image)
	base := runInorder(t, p, image)

	if mp.Stats.Multipass.AdvanceEntries == 0 {
		t.Fatal("no advance episodes on a missing load")
	}
	if mp.Stats.Multipass.AdvanceExecuted == 0 {
		t.Fatal("advance mode executed nothing")
	}
	// The baseline serializes three ~145-cycle misses; multipass overlaps
	// the last two with the first.
	if mp.Stats.Cycles+100 > base.Stats.Cycles {
		t.Errorf("multipass %d cycles vs inorder %d: expected large overlap win",
			mp.Stats.Cycles, base.Stats.Cycles)
	}
	if mp.Stats.Memory.L1D.AdvanceAccesses == 0 {
		t.Error("no advance-mode cache accesses recorded")
	}
}

func TestResultStoreAvoidsReexecution(t *testing.T) {
	// Work that is pre-executed during the miss shadow merges at rally: the
	// merged count must be substantial.
	p := isa.MustAssemble(`
	movi r10 = 0x100000
	ld4 r1 = [r10]
	add r2 = r1, r1
	movi r3 = 1
	addi r4 = r3, 1
	addi r5 = r4, 1
	addi r6 = r5, 1
	mul r7 = r6, r6
	addi r8 = r7, 3
	halt
`)
	image := arch.NewMemory()
	res := runMP(t, DefaultConfig(), p, image)
	if res.Stats.Multipass.Merged < 4 {
		t.Errorf("merged = %d, expected most of the independent tail to merge", res.Stats.Multipass.Merged)
	}
}

// restartProg: a long miss (A), then a shorter independent miss (C) whose
// dependent load (E) can only be pre-executed on a second pass after C
// returns. The compiler-style RESTART after C drives the second pass.
const restartProg = `
	movi r10 = 0x100000
	movi r11 = 0x200000
	st4 [r11] = r0       # warm C's L2 line without a load stall
	movi r20 = 60        # ALU-only spin while the warm-up fill lands
spin:
	mul r21 = r20, r20
	subi r20 = r20, 1
	cmpi.ne p1, p2 = r20, 0 ;;
	(p1) br spin
	ld4 r1 = [r10]       # A: cold long miss
	add r2 = r1, r1      # B: trigger
	ld4 r3 = [r11+64]    # C: L1 miss, L2 hit (same 128B line as warm-up)
	restart r3           # D: restart when C is unready
	ld4 r4 = [r3]        # E: dependent miss, overlappable only via restart
	add r5 = r4, r4      # F
	halt
`

func restartImage() *arch.Memory {
	image := arch.NewMemory()
	image.Store(0x100000, 4, 5)
	image.Store(0x200000+64, 4, 0x300000) // C's value: pointer to E's data
	image.Store(0x300000, 4, 77)
	return image
}

func TestAdvanceRestartOverlapsChainedMiss(t *testing.T) {
	p := isa.MustAssemble(restartProg)

	withRestart := runMP(t, DefaultConfig(), p, restartImage())
	noRestartCfg := DefaultConfig()
	noRestartCfg.DisableRestart = true
	withoutRestart := runMP(t, noRestartCfg, p, restartImage())

	if withRestart.Stats.Multipass.Restarts == 0 {
		t.Fatal("RESTART never fired")
	}
	if withRestart.Stats.Multipass.AdvancePasses < 2 {
		t.Fatal("restart did not create a second pass")
	}
	if withoutRestart.Stats.Multipass.Restarts != 0 {
		t.Fatal("restarts occurred despite DisableRestart")
	}
	// E's ~145-cycle miss overlaps A's only with restart.
	if withRestart.Stats.Cycles+80 > withoutRestart.Stats.Cycles {
		t.Errorf("restart %d cycles vs no-restart %d: expected chained-miss overlap",
			withRestart.Stats.Cycles, withoutRestart.Stats.Cycles)
	}
}

func TestASCForwardsAdvanceStores(t *testing.T) {
	p := isa.MustAssemble(`
	movi r10 = 0x100000
	movi r11 = 0x2000
	ld4 r1 = [r10]       # miss -> trigger
	add r2 = r1, r1
	movi r5 = 42
	st4 [r11] = r5       # advance store, address known
	ld4 r6 = [r11]       # must forward 42 from the ASC
	add r7 = r6, r6
	halt
`)
	image := arch.NewMemory()
	image.Store(0x100000, 4, 9)
	res := runMP(t, DefaultConfig(), p, image)
	if res.Stats.Multipass.ASCHits == 0 {
		t.Error("advance load did not forward from the ASC")
	}
	if got := res.RF.Read(isa.IntReg(7)).Uint32(); got != 84 {
		t.Errorf("r7 = %d, want 84", got)
	}
}

// specProg: the advance store's address depends on the missing load, so it
// defers; the following load to the same location is data-speculative and
// reads a stale value, forcing a rally value-mismatch flush.
const specProg = `
	movi r10 = 0x100000
	movi r11 = 0x3000
	movi r20 = 99
	ld4 r1 = [r10]       # miss; loads the store's target address (0x3000)
	st4 [r1] = r20       # address unknown during advance -> deferred
	ld4 r3 = [r11]       # same location: stale in advance, S-bit set
	add r4 = r3, r3
	halt
`

func TestSpecLoadFlushPreservesCorrectness(t *testing.T) {
	image := arch.NewMemory()
	image.Store(0x100000, 4, 0x3000) // store target
	image.Store(0x3000, 4, 7)        // stale value seen in advance

	res := runMP(t, DefaultConfig(), isa.MustAssemble(specProg), image)
	mp := res.Stats.Multipass
	if mp.DeferredStores == 0 {
		t.Error("store with unknown address was not deferred")
	}
	if mp.SpecLoads == 0 {
		t.Error("load after deferred store not marked data-speculative")
	}
	if mp.SpecFlushes == 0 {
		t.Error("stale speculative value did not trigger a flush")
	}
	if got := res.RF.Read(isa.IntReg(4)).Uint32(); got != 198 {
		t.Errorf("r4 = %d, want 198 (99*2)", got)
	}
}

func TestSpecLoadVerifiesWithoutFlushWhenValueMatches(t *testing.T) {
	image := arch.NewMemory()
	image.Store(0x100000, 4, 0x3000)
	image.Store(0x3000, 4, 99) // store writes the same value: verify passes

	res := runMP(t, DefaultConfig(), isa.MustAssemble(specProg), image)
	mp := res.Stats.Multipass
	if mp.SpecLoads == 0 {
		t.Error("expected a data-speculative load")
	}
	if mp.SpecFlushes != 0 {
		t.Error("matching value should not flush")
	}
}

func TestRegroupingAblation(t *testing.T) {
	// A long dependent chain pre-executed during a miss shadow: with
	// regrouping the merges collapse into wide groups; without, they pay
	// one group per dependence.
	src := `
	movi r10 = 0x100000
	ld4 r1 = [r10]
	add r2 = r1, r1
	movi r3 = 1
`
	for i := 4; i < 40; i++ {
		src += "	addi r" + itoa(i) + " = r" + itoa(i-1) + ", 1\n"
	}
	src += "	halt\n"
	p := isa.MustAssemble(src)
	image := arch.NewMemory()

	full := runMP(t, DefaultConfig(), p, image)
	noRegroup := DefaultConfig()
	noRegroup.DisableRegroup = true
	ablated := runMP(t, noRegroup, p, image)

	if full.Stats.Cycles >= ablated.Stats.Cycles {
		t.Errorf("regrouping did not help: full %d vs ablated %d cycles",
			full.Stats.Cycles, ablated.Stats.Cycles)
	}
}

func TestModeCyclesSumToTotal(t *testing.T) {
	p := isa.MustAssemble(overlapProg)
	image := arch.NewMemory()
	res := runMP(t, DefaultConfig(), p, image)
	mp := res.Stats.Multipass
	if mp.ArchCycles+mp.AdvanceCycles+mp.RallyCycles != res.Stats.Cycles {
		t.Errorf("mode cycles %d+%d+%d != total %d",
			mp.ArchCycles, mp.AdvanceCycles, mp.RallyCycles, res.Stats.Cycles)
	}
	if mp.AdvanceCycles == 0 {
		t.Error("no advance cycles on a missing-load program")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.IQSize = 2
	if _, err := New(bad); err == nil {
		t.Error("tiny IQ accepted")
	}
	bad2 := DefaultConfig()
	bad2.ASCWays = 3
	if _, err := New(bad2); err == nil {
		t.Error("non-dividing ASC ways accepted")
	}
	bad3 := DefaultConfig()
	bad3.ASCEntries = 48 // 24 sets: not a power of two
	if _, err := New(bad3); err == nil {
		t.Error("non-pow2 ASC sets accepted")
	}
}

// Randomized cross-check: looping programs with loads, stores, predication
// and pointer-dependent addresses must retire identical state on multipass.
func TestRandomLoopsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		src := "	movi r1 = 0x1000\n	movi r10 = " + itoa(3+rng.Intn(6)) + "\n	movi r2 = 0\nloop:\n"
		n := 10 + rng.Intn(25)
		for i := 0; i < n; i++ {
			switch rng.Intn(8) {
			case 0:
				src += "	ld4 r" + itoa(3+rng.Intn(5)) + " = [r1+" + itoa(4*rng.Intn(12)) + "]\n"
			case 1:
				src += "	st4 [r1+" + itoa(4*rng.Intn(12)) + "] = r" + itoa(3+rng.Intn(5)) + "\n"
			case 2:
				src += "	add r" + itoa(3+rng.Intn(5)) + " = r" + itoa(3+rng.Intn(5)) + ", r" + itoa(3+rng.Intn(5)) + "\n"
			case 3:
				src += "	mul r" + itoa(3+rng.Intn(5)) + " = r" + itoa(3+rng.Intn(5)) + ", r" + itoa(3+rng.Intn(5)) + "\n"
			case 4:
				src += "	cmpi.lt p1, p2 = r" + itoa(3+rng.Intn(5)) + ", 1000\n"
			case 5:
				src += "	(p1) addi r" + itoa(3+rng.Intn(5)) + " = r" + itoa(3+rng.Intn(5)) + ", 7\n"
			case 6:
				src += "	xor r" + itoa(3+rng.Intn(5)) + " = r" + itoa(3+rng.Intn(5)) + ", r" + itoa(3+rng.Intn(5)) + "\n"
			case 7:
				// Occasionally chase into a pointer field.
				src += "	ld4 r8 = [r1]\n	andi r8 = r8, 0xffc\n	ori r8 = r8, 0x1000\n	ld4 r9 = [r8]\n"
			}
		}
		src += `
	addi r2 = r2, 1
	subi r10 = r10, 1
	cmpi.ne p3, p4 = r10, 0 ;;
	(p3) br loop
	halt
`
		image := arch.NewMemory()
		for i := 0; i < 64; i++ {
			image.Store(uint32(0x1000+4*i), 4, uint64(rng.Uint32()))
		}
		runMP(t, DefaultConfig(), isa.MustAssemble(src), image)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	neg := i < 0
	if neg {
		i = -i
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	if neg {
		return "-" + string(b)
	}
	return string(b)
}
