package workload

import (
	"context"
	"testing"

	"multipass/internal/compile"
	"multipass/internal/mem"
	"multipass/internal/pipe/inorder"
	"multipass/internal/sim"
)

// runBaseline runs a kernel on the in-order machine for behavioural checks.
func runBaseline(t *testing.T, name string) *sim.Result {
	t.Helper()
	w, ok := ByName(name)
	if !ok {
		t.Fatalf("no workload %q", name)
	}
	p, image, err := Program(w, 1, compile.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	m, err := inorder.New(sim.Default())
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(context.Background(), p, image)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestMissProfilesMatchIntent: the kernels' cache behaviour must line up
// with their namesakes' characters — mcf misses hard, crafty and mesa are
// cache-resident, the rest sit in between.
func TestMissProfilesMatchIntent(t *testing.T) {
	missRate := map[string]float64{}
	loadShare := map[string]float64{}
	for _, name := range []string{"mcf", "crafty", "mesa", "art", "gzip"} {
		res := runBaseline(t, name)
		missRate[name] = res.Stats.Memory.L1D.MissRate()
		loadShare[name] = float64(res.Stats.Cat[sim.StallLoad]) / float64(res.Stats.Cycles)
	}
	if missRate["mcf"] <= missRate["crafty"] {
		t.Errorf("mcf miss rate (%.3f) not above crafty (%.3f)", missRate["mcf"], missRate["crafty"])
	}
	if missRate["crafty"] > 0.05 {
		t.Errorf("crafty miss rate %.3f; should be cache-resident", missRate["crafty"])
	}
	if loadShare["mcf"] < 0.5 {
		t.Errorf("mcf load-stall share %.2f; should dominate its runtime", loadShare["mcf"])
	}
	if loadShare["crafty"] > 0.15 {
		t.Errorf("crafty load-stall share %.2f; should be compute-bound", loadShare["crafty"])
	}
}

// TestBranchProfilesMatchIntent: vpr/twolf carry data-dependent branches
// that mispredict; art is a straight stream.
func TestBranchProfilesMatchIntent(t *testing.T) {
	vpr := runBaseline(t, "vpr")
	art := runBaseline(t, "art")
	if vpr.Stats.Branch.Accuracy() > 0.95 {
		t.Errorf("vpr branch accuracy %.3f; its accept branches should mispredict", vpr.Stats.Branch.Accuracy())
	}
	if art.Stats.Branch.Accuracy() < 0.95 {
		t.Errorf("art branch accuracy %.3f; a streaming loop should predict nearly perfectly", art.Stats.Branch.Accuracy())
	}
}

// TestFPKernelsUseFPUnits: the CFP2000 stand-ins must actually exercise
// floating point (visible as "other" stalls or FP instruction mix).
func TestFPKernelsUseFPUnits(t *testing.T) {
	for _, name := range []string{"art", "equake", "ammp"} {
		res := runBaseline(t, name)
		if res.Stats.Cat[sim.StallOther] == 0 {
			t.Errorf("%s: no non-unit-latency stalls; FP content too thin", name)
		}
	}
}

// TestHierarchiesChangeBehaviour: config2 (smaller caches) must cost the
// parser kernel (L2/L3-resident tables) more cycles than the base config.
func TestHierarchiesChangeBehaviour(t *testing.T) {
	w, _ := ByName("parser")
	p, image, err := Program(w, 1, compile.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	runHier := func(h mem.HierConfig) uint64 {
		cfg := sim.Default()
		cfg.Hier = h
		m, err := inorder.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run(context.Background(), p, image)
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.Cycles
	}
	base := runHier(mem.BaseConfig())
	small := runHier(mem.Config2())
	if small <= base {
		t.Errorf("config2 (%d cycles) not slower than base (%d) for a cache-resident kernel", small, base)
	}
}
