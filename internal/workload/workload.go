// Package workload provides the twelve synthetic benchmark kernels standing
// in for the paper's SPEC CPU2000 selection (§5.1). Each kernel is a real
// program in the simulator's ISA, built through the prog/compile pipeline
// and run over an initialized memory image, written to reproduce the
// dominant loop and memory behaviour of its namesake:
//
//	mcf     dependent pointer chasing over an out-of-cache network (worst
//	        miss behaviour; chase load sits in a dataflow SCC -> RESTART)
//	gzip    byte scanning with hash-table probes (moderate misses)
//	vpr     random grid probes with data-dependent accept branches
//	crafty  cache-resident bitboard computation (high ILP, few misses)
//	parser  hash chains: short dependent-load chains in a mid-size table
//	gap     bag traversal (pointer SCC) with indirect element gathers
//	bzip2   rank/suffix comparisons with multiplies and mispredicts
//	twolf   small-struct random access, branchy cost evaluation
//	art     streaming FP dot products over out-of-cache arrays
//	equake  sparse matrix-vector product (indirect FP gather)
//	ammp    neighbor-list chase with FP distance computation
//	mesa    span rasterization: compute-bound FP/integer mix
//
// The kernels are parameterized by a scale factor so tests can run them
// small and the experiment harness can run them long.
package workload

import (
	"fmt"
	"math/rand"

	"multipass/internal/arch"
	"multipass/internal/compile"
	"multipass/internal/isa"
	"multipass/internal/prog"
)

// Workload is one benchmark kernel.
type Workload struct {
	Name        string
	Class       string // "int" or "fp"
	Description string
	// Build returns the un-scheduled kernel and its initialized memory
	// image. scale >= 1 multiplies the dynamic instruction count.
	Build func(scale int) (*prog.Unit, *arch.Memory)
}

// All returns the twelve kernels in the paper's presentation order
// (integer, then floating point).
func All() []Workload {
	return []Workload{
		{"gzip", "int", "byte scan + hash probes", buildGzip},
		{"vpr", "int", "random grid probes, accept branches", buildVPR},
		{"mcf", "int", "pointer chase over out-of-cache network", buildMCF},
		{"crafty", "int", "cache-resident bitboard compute", buildCrafty},
		{"parser", "int", "hash chains with short dependent loads", buildParser},
		{"gap", "int", "bag traversal with indirect gathers", buildGap},
		{"bzip2", "int", "rank comparisons, multiplies, mispredicts", buildBzip2},
		{"twolf", "int", "small-struct random access, branchy", buildTwolf},
		{"art", "fp", "streaming FP dot products", buildArt},
		{"equake", "fp", "sparse matrix-vector product", buildEquake},
		{"ammp", "fp", "neighbor chase + FP distance", buildAmmp},
		{"mesa", "fp", "compute-bound span rasterization", buildMesa},
	}
}

// ByName returns the named kernel.
func ByName(name string) (Workload, bool) {
	for _, w := range All() {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// Program builds and compiles a kernel with the given compiler options.
func Program(w Workload, scale int, opts compile.Options) (*isa.Program, *arch.Memory, error) {
	if scale < 1 {
		return nil, nil, fmt.Errorf("workload: scale %d < 1", scale)
	}
	u, image := w.Build(scale)
	p, _, err := compile.Compile(u, opts)
	if err != nil {
		return nil, nil, fmt.Errorf("workload %s: %w", w.Name, err)
	}
	return p, image, nil
}

// Memory region bases, spaced far apart so kernels' regions never overlap.
const (
	region1 = 0x0100_0000
	region2 = 0x0200_0000
	region3 = 0x0300_0000
	region4 = 0x0400_0000
)

// fillWords initializes n 4-byte words starting at base.
func fillWords(m *arch.Memory, base uint32, n int, f func(i int) uint32) {
	for i := 0; i < n; i++ {
		m.Store(base+uint32(4*i), 4, uint64(f(i)))
	}
}

// fillF64 initializes n 8-byte floats starting at base.
func fillF64(m *arch.Memory, base uint32, n int, f func(i int) float64) {
	for i := 0; i < n; i++ {
		m.Store(base+uint32(8*i), 8, uint64(isa.FPWord(f(i))))
	}
}

// buildChain lays out a shuffled singly linked list of nodes with the given
// record size (bytes) across count records starting at base, writing each
// node's successor pointer at offset 0. It returns the address of the first
// node. The shuffle spreads successive nodes across the whole region so
// every hop misses.
func buildChain(m *arch.Memory, rng *rand.Rand, base uint32, count, recBytes int) uint32 {
	perm := rng.Perm(count)
	addr := func(i int) uint32 { return base + uint32(i*recBytes) }
	for k := 0; k < count; k++ {
		next := perm[(k+1)%count]
		m.Store(addr(perm[k]), 4, uint64(addr(next)))
	}
	return addr(perm[0])
}

// Register naming helpers to keep kernels readable.
var (
	rPtr  = isa.IntReg(1)
	rCnt  = isa.IntReg(2)
	rAcc  = isa.IntReg(3)
	rT1   = isa.IntReg(4)
	rT2   = isa.IntReg(5)
	rT3   = isa.IntReg(6)
	rT4   = isa.IntReg(7)
	rT5   = isa.IntReg(8)
	rBase = isa.IntReg(9)
	rIdx  = isa.IntReg(10)
	rRng  = isa.IntReg(11)
	rT6   = isa.IntReg(12)
	rT7   = isa.IntReg(13)
	rT8   = isa.IntReg(14)
	rC1   = isa.IntReg(15)
	rC2   = isa.IntReg(16)
	fC1   = isa.FPReg(14)
	fC2   = isa.FPReg(15)
	pT    = isa.PredReg(1)
	pF    = isa.PredReg(2)
	pT2   = isa.PredReg(3)
	pF2   = isa.PredReg(4)
)

// emitXorshift appends an xorshift PRNG step on reg into the block, using
// scratch as a temporary.
func emitXorshift(b *prog.Block, reg, scratch isa.Reg) {
	b.OpI(isa.OpShlI, scratch, reg, 13)
	b.Op3(isa.OpXor, reg, reg, scratch)
	b.OpI(isa.OpShrI, scratch, reg, 17)
	b.Op3(isa.OpXor, reg, reg, scratch)
	b.OpI(isa.OpShlI, scratch, reg, 5)
	b.Op3(isa.OpXor, reg, reg, scratch)
}

// emitCompute appends n ALU operations forming two interleaved dependence
// chains (about n/2 critical-path cycles), standing in for the surrounding
// computation real programs carry between memory accesses. It uses rC1/rC2
// and folds the result into acc so the work is never dead.
func emitCompute(b *prog.Block, acc isa.Reg, n int) {
	for i := 0; i < n; i++ {
		switch i % 4 {
		case 0:
			b.Op3(isa.OpAdd, rC1, rC1, acc)
		case 1:
			b.OpI(isa.OpXorI, rC2, rC2, int32(0x55+i))
		case 2:
			b.OpI(isa.OpShlI, rC1, rC1, 1)
		case 3:
			b.Op3(isa.OpXor, rC2, rC2, rC1)
		}
	}
	b.Op3(isa.OpAdd, acc, acc, rC2)
}

// emitFPCompute appends n floating-point operations on a dependence chain
// through facc, modeling per-element scientific computation.
func emitFPCompute(b *prog.Block, facc isa.Reg, n int) {
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			b.Op3(isa.OpFAdd, fC1, fC1, facc)
		} else {
			b.Op3(isa.OpFMul, fC1, fC1, fC2)
		}
	}
	b.Op3(isa.OpFAdd, facc, facc, fC1)
}

// loopTail appends the canonical loop control: decrement rCnt and branch to
// label while non-zero.
func loopTail(b *prog.Block, label string) {
	b.OpI(isa.OpSubI, rCnt, rCnt, 1)
	b.CmpI(isa.OpCmpNeI, pT, pF, rCnt, 0)
	b.Br(pT, label)
}
