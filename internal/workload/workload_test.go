package workload

import (
	"math/rand"
	"testing"

	"multipass/internal/arch"
	"multipass/internal/compile"
	"multipass/internal/isa"
)

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 12 {
		t.Fatalf("expected 12 workloads, got %d", len(all))
	}
	ints, fps := 0, 0
	seen := map[string]bool{}
	for _, w := range all {
		if seen[w.Name] {
			t.Errorf("duplicate workload %q", w.Name)
		}
		seen[w.Name] = true
		switch w.Class {
		case "int":
			ints++
		case "fp":
			fps++
		default:
			t.Errorf("workload %q has class %q", w.Name, w.Class)
		}
		if w.Description == "" || w.Build == nil {
			t.Errorf("workload %q incomplete", w.Name)
		}
	}
	if ints != 8 || fps != 4 {
		t.Errorf("class split = %d int / %d fp, want 8/4", ints, fps)
	}
	if _, ok := ByName("mcf"); !ok {
		t.Error("ByName(mcf) failed")
	}
	if _, ok := ByName("nonesuch"); ok {
		t.Error("ByName accepted a bogus name")
	}
}

func TestAllKernelsBuildCompileAndRun(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			p, image, err := Program(w, 1, compile.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Validate(); err != nil {
				t.Fatal(err)
			}
			res, err := arch.Run(p, image.Clone(), 10_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if res.State.Retired < 5000 {
				t.Errorf("only %d dynamic instructions; kernel too small", res.State.Retired)
			}
			if res.Loads == 0 {
				t.Error("kernel performs no loads")
			}
			// Every kernel writes a result to region4 so dead-code concerns
			// never arise.
			if image.FootprintBytes() == 0 {
				t.Error("kernel has no data footprint")
			}
		})
	}
}

func TestKernelsDeterministic(t *testing.T) {
	w, _ := ByName("vpr")
	p1, m1, err := Program(w, 1, compile.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	p2, m2, err := Program(w, 1, compile.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(p1.Insts) != len(p2.Insts) {
		t.Fatal("program differs between builds")
	}
	r1, err := arch.Run(p1, m1, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := arch.Run(p2, m2, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.State.RF.Equal(r2.State.RF) {
		t.Error("nondeterministic result")
	}
}

func TestChaseKernelsGetRestarts(t *testing.T) {
	chasers := map[string]bool{"mcf": true, "gap": true, "ammp": true}
	for _, w := range All() {
		u, _ := w.Build(1)
		_, info, err := compile.Compile(u, compile.DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if chasers[w.Name] && info.Restarts == 0 {
			t.Errorf("%s: pointer-chase kernel got no RESTART", w.Name)
		}
		if !chasers[w.Name] && info.Restarts > 0 && (w.Name == "art" || w.Name == "mesa") {
			t.Errorf("%s: streaming/compute kernel got unexpected RESTART", w.Name)
		}
	}
}

func TestScaleGrowsWork(t *testing.T) {
	w, _ := ByName("crafty")
	p1, m1, err := Program(w, 1, compile.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	p3, m3, err := Program(w, 3, compile.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r1, err := arch.Run(p1, m1, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	r3, err := arch.Run(p3, m3, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if r3.State.Retired < 2*r1.State.Retired {
		t.Errorf("scale 3 retired %d, scale 1 retired %d", r3.State.Retired, r1.State.Retired)
	}
}

func TestProgramRejectsBadScale(t *testing.T) {
	w, _ := ByName("mcf")
	if _, _, err := Program(w, 0, compile.DefaultOptions()); err == nil {
		t.Error("scale 0 accepted")
	}
}

func TestChainBuilder(t *testing.T) {
	m := arch.NewMemory()
	rng := randSource()
	first := buildChain(m, rng, 0x1000, 64, 16)
	// Walking the chain visits all 64 nodes and returns to the start.
	seen := map[uint32]bool{}
	p := first
	for i := 0; i < 64; i++ {
		if seen[p] {
			t.Fatalf("chain revisits %#x after %d hops", p, i)
		}
		seen[p] = true
		p = uint32(m.Load(p, 4))
	}
	if p != first {
		t.Error("chain is not circular")
	}
	if len(seen) != 64 {
		t.Errorf("chain visited %d nodes", len(seen))
	}
}

func TestMCFResultStored(t *testing.T) {
	w, _ := ByName("mcf")
	p, image, err := Program(w, 1, compile.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := arch.Run(p, image, 10_000_000); err != nil {
		t.Fatal(err)
	}
	if image.Load(region4, 4) == 0 {
		t.Error("mcf accumulated nothing")
	}
	_ = isa.OpNop
}

func randSource() *rand.Rand { return rand.New(rand.NewSource(7)) }
