package workload

import (
	"math/rand"

	"multipass/internal/arch"
	"multipass/internal/isa"
	"multipass/internal/prog"
)

// buildArt models art's neural-network inner products: a single streaming
// pass over two 2MB float64 arrays with multiply-accumulate work. Misses
// are regular and independent (one new line per eight elements per array),
// the pattern advance pre-execution prefetches almost perfectly.
func buildArt(scale int) (*prog.Unit, *arch.Memory) {
	const elems = 256 << 10 // 2MB per array
	rng := rand.New(rand.NewSource(2001))
	m := arch.NewMemory()
	fillF64(m, region1, elems, func(i int) float64 { return rng.Float64() })
	fillF64(m, region2, elems, func(i int) float64 { return rng.Float64() - 0.5 })

	iters := 6000 * scale
	if iters > elems {
		iters = elems
	}
	u := prog.NewUnit()
	e := u.NewBlock("entry")
	e.MovI(rCnt, int32(iters))
	e.MovI(rBase, region1)
	e.MovI(rIdx, region2)
	b := u.NewBlock("loop")
	f1, f2, f3, facc, fw := isa.FPReg(1), isa.FPReg(2), isa.FPReg(3), isa.FPReg(4), isa.FPReg(5)
	b.Load(isa.OpLdF, f1, rBase, 0)
	b.Load(isa.OpLdF, f2, rIdx, 0)
	b.Op3(isa.OpFMul, f3, f1, f2)
	b.Op3(isa.OpFAdd, facc, facc, f3)
	b.Op3(isa.OpFAdd, fw, fw, f1) // weight accumulation chain
	emitFPCompute(b, facc, 2)
	b.OpI(isa.OpAddI, rBase, rBase, 8)
	b.OpI(isa.OpAddI, rIdx, rIdx, 8)
	loopTail(b, "loop")
	x := u.NewBlock("exit")
	x.MovI(rBase, region4)
	x.Store(isa.OpStF, rBase, 0, facc)
	x.Store(isa.OpStF, rBase, 8, fw)
	x.Halt()
	return u, m
}

// buildEquake models equake's sparse matrix-vector product: streaming
// column-index and value arrays drive an indirect gather from a 2MB vector.
// The loop processes two nonzeros per iteration on independent register
// sets (static ILP the EPIC compiler would expose).
func buildEquake(scale int) (*prog.Unit, *arch.Memory) {
	const (
		nnz      = 512 << 10
		vecElems = 256 << 10 // 2MB
	)
	rng := rand.New(rand.NewSource(2002))
	m := arch.NewMemory()
	fillWords(m, region1, nnz, func(i int) uint32 { return rng.Uint32() % vecElems }) // col[]
	fillF64(m, region2, vecElems, func(i int) float64 { return rng.Float64() })       // X[]
	fillF64(m, region3, 64<<10, func(i int) float64 { return rng.Float64() })         // val[] (reused)

	iters := 2500 * scale
	if iters > nnz/2 {
		iters = nnz / 2
	}
	u := prog.NewUnit()
	e := u.NewBlock("entry")
	e.MovI(rCnt, int32(iters))
	e.MovI(rBase, region1)
	e.MovI(rIdx, region2)
	e.MovI(rT7, region3)
	e.MovI(rT6, 0)
	b := u.NewBlock("loop")
	for k := 0; k < 2; k++ {
		col := isa.IntReg(20 + k)
		adr := isa.IntReg(22 + k)
		vof := isa.IntReg(24 + k)
		fx := isa.FPReg(1 + 4*k)
		fv := isa.FPReg(2 + 4*k)
		fp := isa.FPReg(3 + 4*k)
		facc := isa.FPReg(4 + 4*k)
		b.Load(isa.OpLd4, col, rBase, int32(4*k)) // col[j+k] (streaming)
		b.OpI(isa.OpShlI, adr, col, 3)
		b.Op3(isa.OpAdd, adr, adr, rIdx)
		b.Load(isa.OpLdF, fx, adr, 0) // X[col[j+k]] (irregular gather)
		b.OpI(isa.OpAddI, vof, rT6, int32(k))
		b.OpI(isa.OpAndI, vof, vof, (64<<10)-1)
		b.OpI(isa.OpShlI, vof, vof, 3)
		b.Op3(isa.OpAdd, vof, vof, rT7)
		b.Load(isa.OpLdF, fv, vof, 0) // val[j+k] (streaming, reused region)
		b.Op3(isa.OpFMul, fp, fx, fv)
		b.Op3(isa.OpFAdd, facc, facc, fp)
	}
	b.OpI(isa.OpAddI, rBase, rBase, 8)
	b.OpI(isa.OpAddI, rT6, rT6, 2)
	loopTail(b, "loop")
	x := u.NewBlock("exit")
	x.Op3(isa.OpFAdd, isa.FPReg(4), isa.FPReg(4), isa.FPReg(8))
	x.MovI(rBase, region4)
	x.Store(isa.OpStF, rBase, 0, isa.FPReg(4))
	x.Halt()
	return u, m
}

// buildAmmp models ammp's neighbor-list walk: a pointer chase through a 1MB
// atom list (SCC -> RESTART) with coordinate gathers from a 3MB table and a
// short FP distance computation per neighbor.
func buildAmmp(scale int) (*prog.Unit, *arch.Memory) {
	const (
		recBytes = 32
		atoms    = 1 << 20 / recBytes
		coords   = 128 << 10 // x,y,z triples of f64: 3MB
	)
	rng := rand.New(rand.NewSource(2003))
	m := arch.NewMemory()
	first := buildChain(m, rng, region1, atoms, recBytes)
	for i := 0; i < atoms; i++ {
		m.Store(region1+uint32(i*recBytes)+4, 4, uint64(rng.Intn(coords)))
	}
	fillF64(m, region2, 3*coords, func(i int) float64 { return rng.Float64() * 10 })

	u := prog.NewUnit()
	e := u.NewBlock("entry")
	e.MovI(rPtr, int32(first))
	e.MovI(rCnt, int32(1500*scale))
	e.MovI(rBase, region2)
	e.MovI(rT8, 150)
	e.Emit(isa.Inst{Op: isa.OpCvtIF, Dst: isa.FPReg(6), Src1: rT8}, "") // cutoff
	b := u.NewBlock("loop")
	fx, fy, fz, fd, facc := isa.FPReg(1), isa.FPReg(2), isa.FPReg(3), isa.FPReg(4), isa.FPReg(5)
	b.Load(isa.OpLd4, rT1, rPtr, 0) // next atom (critical chase)
	b.Load(isa.OpLd4, rT2, rPtr, 4) // coordinate index (same line)
	b.OpI(isa.OpShlI, rT3, rT2, 3)
	b.Op3(isa.OpAdd, rT3, rT3, rBase)
	b.Load(isa.OpLdF, fx, rT3, 0)
	b.Load(isa.OpLdF, fy, rT3, 8)
	b.Load(isa.OpLdF, fz, rT3, 16)
	b.Op3(isa.OpFMul, fx, fx, fx)
	b.Op3(isa.OpFMul, fy, fy, fy)
	b.Op3(isa.OpFMul, fz, fz, fz)
	b.Op3(isa.OpFAdd, fd, fx, fy)
	b.Op3(isa.OpFAdd, fd, fd, fz)
	// Distance cutoff: the branch depends on the gathered coordinates, so
	// advance execution cannot resolve it while they are in flight.
	fcut := isa.FPReg(6)
	b.Emit(isa.Inst{Op: isa.OpFCmpLt, Dst: pT2, Dst2: pF2, Src1: fd, Src2: fcut}, "")
	b.Br(pF2, "acut")
	in := u.NewBlock("ain")
	in.Op3(isa.OpFAdd, facc, facc, fd)
	in.Jmp("ajoin")
	cut := u.NewBlock("acut")
	cut.Op3(isa.OpFAdd, facc, facc, fC2)
	j := u.NewBlock("ajoin")
	emitFPCompute(j, facc, 6)
	j.Mov(rPtr, rT1)
	loopTail(j, "loop")
	x := u.NewBlock("exit")
	x.MovI(rBase, region4)
	x.Store(isa.OpStF, rBase, 0, facc)
	x.Halt()
	return u, m
}

// buildMesa models mesa's span rasterization: compute-bound texturing with
// a cache-resident 64KB texture, abundant ILP, and sequential framebuffer
// stores. The loop is unrolled three-wide with independent register sets —
// the static ILP an EPIC compiler would expose — so the in-order machines
// are not artificially serialized. Memory stalls are rare; this kernel
// bounds the models' behaviour when there is little latency to tolerate.
func buildMesa(scale int) (*prog.Unit, *arch.Memory) {
	const texWords = 16 << 10 // 64KB
	rng := rand.New(rand.NewSource(2004))
	m := arch.NewMemory()
	fillWords(m, region1, texWords, func(i int) uint32 { return rng.Uint32() })

	u := prog.NewUnit()
	e := u.NewBlock("entry")
	e.MovI(rCnt, int32(1200*scale))
	e.MovI(rBase, region1)
	e.MovI(rIdx, region3) // framebuffer
	e.MovI(rAcc, 0)
	seeds := []int32{0x00BEEF01, 0x00BEEF47, 0x00BEEF93}
	for k := 0; k < 3; k++ {
		e.MovI(isa.IntReg(20+k), seeds[k])
	}
	b := u.NewBlock("loop")
	for k := 0; k < 3; k++ {
		prng := isa.IntReg(20 + k)
		t1 := isa.IntReg(24 + k)
		t2 := isa.IntReg(28 + k)
		t3 := isa.IntReg(32 + k)
		t4 := isa.IntReg(36 + k)
		t5 := isa.IntReg(40 + k)
		scratch := isa.IntReg(44 + k)
		fs := isa.FPReg(1 + 3*k)
		ft := isa.FPReg(2 + 3*k)
		fr := isa.FPReg(3 + 3*k)
		emitXorshift(b, prng, scratch)
		b.OpI(isa.OpAndI, t1, prng, (texWords-1)<<2&^3)
		b.Op3(isa.OpAdd, t1, t1, rBase)
		b.Load(isa.OpLd4, t2, t1, 0) // texel (cache resident)
		b.OpI(isa.OpAndI, t3, t2, 0xff)
		b.OpI(isa.OpShrI, t4, t2, 8)
		b.OpI(isa.OpAndI, t4, t4, 0xff)
		b.Emit(isa.Inst{Op: isa.OpCvtIF, Dst: fs, Src1: t3}, "")
		b.Emit(isa.Inst{Op: isa.OpCvtIF, Dst: ft, Src1: t4}, "")
		b.Op3(isa.OpFMul, fs, fs, ft)
		b.Op3(isa.OpFAdd, fr, fr, fs) // shade accumulator (converted at exit)
		// Integer-only pixel pack: the FP accumulation chain is kept off
		// the per-pixel critical path, as a software-pipelining compiler
		// would arrange.
		b.OpI(isa.OpShlI, t5, t4, 8)
		b.Op3(isa.OpOr, t5, t5, t3)
		b.Op3(isa.OpAdd, rAcc, rAcc, t5)
		b.Store(isa.OpSt4, rIdx, int32(4*k), t5) // framebuffer write
	}
	b.OpI(isa.OpAddI, rIdx, rIdx, 12)
	loopTail(b, "loop")
	x := u.NewBlock("exit")
	x.Op3(isa.OpFAdd, isa.FPReg(3), isa.FPReg(3), isa.FPReg(6))
	x.Op3(isa.OpFAdd, isa.FPReg(3), isa.FPReg(3), isa.FPReg(9))
	x.Emit(isa.Inst{Op: isa.OpCvtFI, Dst: rT5, Src1: isa.FPReg(3)}, "")
	x.Op3(isa.OpAdd, rAcc, rAcc, rT5)
	x.MovI(rBase, region4)
	x.Store(isa.OpSt4, rBase, 0, rAcc)
	x.Halt()
	return u, m
}
