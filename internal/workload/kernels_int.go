package workload

import (
	"math/rand"

	"multipass/internal/arch"
	"multipass/internal/isa"
	"multipass/internal/prog"
)

// buildMCF models mcf's network simplex inner loop: a pointer chase around
// a 128KB node ring (L2/L3-resident after the first lap, so each hop is a
// short miss) where every node references an arc record in a cold 8MB
// region through a rotating offset (so arc accesses miss to memory on every
// lap). The chase load forms a dataflow SCC, so the compiler places a
// RESTART after it: each short chase return unlocks the next iteration's
// long arc miss during the same stall, which is exactly the chained-miss
// overlap the paper credits advance restart for on mcf.
func buildMCF(scale int) (*prog.Unit, *arch.Memory) {
	const (
		nodeBytes = 32
		nodes     = 4096 // 128KB ring: L2/L3 resident
		arcBytes  = 16
		arcRegion = 8 << 20 // cold arena, far beyond the 3MB L3
	)
	rng := rand.New(rand.NewSource(1001))
	m := arch.NewMemory()
	first := buildChain(m, rng, region1, nodes, nodeBytes)
	for i := 0; i < nodes; i++ {
		node := region1 + uint32(i*nodeBytes)
		m.Store(node+4, 4, uint64(rng.Uint32()))     // arc index seed
		m.Store(node+8, 4, uint64(rng.Uint32()%997)) // node cost
	}
	// Initialize the cold arc arena so arc-value-dependent control is
	// genuinely unpredictable.
	for off := 0; off < arcRegion; off += arcBytes {
		m.Store(region2+uint32(off), 4, uint64(rng.Uint32()%2048))
	}

	u := prog.NewUnit()
	e := u.NewBlock("entry")
	e.MovI(rPtr, int32(first))
	e.MovI(rCnt, int32(9000*scale))
	e.MovI(rAcc, 0)
	e.MovI(rIdx, 0)      // rotating arc offset
	e.MovI(rT7, region2) // arc arena base
	b := u.NewBlock("loop")
	b.Load(isa.OpLd4, rT1, rPtr, 0) // next hop (critical chase, short miss)
	b.Load(isa.OpLd4, rT2, rPtr, 4) // arc index seed (same line)
	b.Load(isa.OpLd4, rT3, rPtr, 8) // node cost (same line)
	b.Op3(isa.OpAdd, rT6, rT2, rIdx)
	b.OpI(isa.OpAndI, rT6, rT6, (arcRegion-1)&^(arcBytes-1))
	b.Op3(isa.OpAdd, rT6, rT6, rT7)
	b.Load(isa.OpLd4, rT4, rT6, 0) // arc cost (cold, long miss)
	b.Load(isa.OpLd4, rT5, rT6, 4) // arc flow (same line)
	b.Op3(isa.OpAdd, rAcc, rAcc, rT4)
	b.Op3(isa.OpAdd, rAcc, rAcc, rT3) // node cost keeps the sum nonzero
	b.Op3(isa.OpAdd, rT5, rT3, rT5)
	// Pivot test on the (missing) arc value: a real data-dependent branch,
	// unresolvable during advance execution until the arc returns. This is
	// what bounds multipass lookahead on mcf, as in the original program.
	b.Cmp(isa.OpCmpLtU, pT2, pF2, rT4, rT5)
	b.Br(pT2, "mcfskip")
	upd := u.NewBlock("mcfupd")
	upd.Store(isa.OpSt4, rT6, 8, rAcc)
	upd.OpI(isa.OpAddI, rAcc, rAcc, 3)
	sk := u.NewBlock("mcfskip")
	sk.OpI(isa.OpAddI, rIdx, rIdx, 0x10030) // decorrelate laps
	emitCompute(sk, rAcc, 6)
	sk.Mov(rPtr, rT1)
	loopTail(sk, "loop")
	x := u.NewBlock("exit")
	x.MovI(rBase, region4)
	x.Store(isa.OpSt4, rBase, 0, rAcc)
	x.Halt()
	return u, m
}

// buildGzip models gzip's scan loop: position-indexed byte reads from a
// 128KB window plus probes and updates of a 128KB hash table, two positions
// per iteration on independent register sets (the static ILP gzip's
// unrolled scan exposes). The combined footprint lives mostly in L2/L3.
func buildGzip(scale int) (*prog.Unit, *arch.Memory) {
	const (
		windowBytes = 128 << 10
		hashEntries = 32 << 10
	)
	rng := rand.New(rand.NewSource(1002))
	m := arch.NewMemory()
	for i := 0; i < windowBytes; i++ {
		m.StoreByte(region1+uint32(i), byte(rng.Intn(256)))
	}
	fillWords(m, region2, hashEntries, func(i int) uint32 { return rng.Uint32() % windowBytes })

	u := prog.NewUnit()
	e := u.NewBlock("entry")
	e.MovI(rCnt, int32(1500*scale))
	e.MovI(rBase, region1)
	e.MovI(rIdx, region2)
	e.MovI(rAcc, 0)
	e.MovI(isa.IntReg(20), 0x2545F491)
	e.MovI(isa.IntReg(21), 0x11223347)
	b := u.NewBlock("loop")
	for k := 0; k < 2; k++ {
		prng := isa.IntReg(20 + k)
		pos := isa.IntReg(22 + k)
		b0 := isa.IntReg(24 + k)
		b1 := isa.IntReg(26 + k)
		b2 := isa.IntReg(28 + k)
		h := isa.IntReg(30 + k)
		t := isa.IntReg(32 + k)
		prev := isa.IntReg(34 + k)
		pd := isa.PredReg(3 + k)
		pdn := isa.PredReg(5 + k)
		emitXorshift(b, prng, t)
		b.OpI(isa.OpAndI, pos, prng, windowBytes-4)
		b.Op3(isa.OpAdd, pos, pos, rBase)
		b.Load(isa.OpLd1, b0, pos, 0)
		b.Load(isa.OpLd1, b1, pos, 1)
		b.Load(isa.OpLd1, b2, pos, 2)
		// h = ((b0*33 + b1)*33 + b2) & (hashEntries-1)
		b.OpI(isa.OpShlI, h, b0, 5)
		b.Op3(isa.OpAdd, h, h, b0)
		b.Op3(isa.OpAdd, h, h, b1)
		b.OpI(isa.OpShlI, t, h, 5)
		b.Op3(isa.OpAdd, t, t, h)
		b.Op3(isa.OpAdd, t, t, b2)
		b.OpI(isa.OpAndI, t, t, hashEntries-1)
		b.OpI(isa.OpShlI, t, t, 2)
		b.Op3(isa.OpAdd, t, t, rIdx)
		b.Load(isa.OpLd4, prev, t, 0) // hash probe
		b.Op3(isa.OpAdd, prev, prev, rBase)
		b.Load(isa.OpLd1, prev, prev, 0)
		b.Cmp(isa.OpCmpEq, pd, pdn, prev, b0)
		b.OpI(isa.OpAddI, rAcc, rAcc, 1).QP = pd
		b.Op3(isa.OpSub, h, pos, rBase)
		b.Store(isa.OpSt4, t, 0, h) // update hash head
	}
	emitCompute(b, rAcc, 8)
	loopTail(b, "loop")
	x := u.NewBlock("exit")
	x.MovI(rBase, region4)
	x.Store(isa.OpSt4, rBase, 0, rAcc)
	x.Halt()
	return u, m
}

// buildVPR models vpr's simulated-annealing move evaluation: two random
// probes into a 1MB placement grid, a cost comparison, and a predicated
// swap, with an accept branch that follows pseudo-random data (frequent
// mispredictions).
func buildVPR(scale int) (*prog.Unit, *arch.Memory) {
	const gridWords = 128 << 10 // 512KB
	rng := rand.New(rand.NewSource(1003))
	m := arch.NewMemory()
	fillWords(m, region1, gridWords, func(i int) uint32 { return rng.Uint32() % 4096 })

	u := prog.NewUnit()
	e := u.NewBlock("entry")
	e.MovI(rCnt, int32(2500*scale))
	e.MovI(rRng, 0x00C0FFEE)
	e.MovI(rBase, region1)
	e.MovI(rAcc, 0)
	b := u.NewBlock("loop")
	emitXorshift(b, rRng, rT8)
	b.OpI(isa.OpAndI, rT1, rRng, (gridWords-1)&^3) // cell a index (word aligned)
	b.OpI(isa.OpShrI, rT2, rRng, 12)
	b.OpI(isa.OpAndI, rT2, rT2, (gridWords-1)&^3) // cell b index
	b.OpI(isa.OpShlI, rT1, rT1, 2)
	b.OpI(isa.OpShlI, rT2, rT2, 2)
	b.Op3(isa.OpAdd, rT1, rT1, rBase)
	b.Op3(isa.OpAdd, rT2, rT2, rBase)
	b.Load(isa.OpLd4, rT3, rT1, 0)
	b.Load(isa.OpLd4, rT4, rT2, 0)
	b.Op3(isa.OpSub, rT5, rT3, rT4) // delta cost
	b.Cmp(isa.OpCmpLt, pT2, pF2, rT5, isa.R0)
	// Accept the move (swap) when the delta improves: data-dependent.
	b.Store(isa.OpSt4, rT1, 0, rT4).QP = pT2
	b.Store(isa.OpSt4, rT2, 0, rT3).QP = pT2
	b.OpI(isa.OpAddI, rAcc, rAcc, 1).QP = pT2
	// Data-dependent control: branch taken roughly half the time.
	b.OpI(isa.OpAndI, rT8, rT5, 1)
	b.CmpI(isa.OpCmpEqI, pT2, pF2, rT8, 1)
	b.Br(pT2, "tail")
	jb := u.NewBlock("bump")
	jb.Op3(isa.OpAdd, rAcc, rAcc, rT3)
	t := u.NewBlock("tail")
	emitCompute(t, rAcc, 12)
	loopTail(t, "loop")
	x := u.NewBlock("exit")
	x.MovI(rBase, region4)
	x.Store(isa.OpSt4, rBase, 0, rAcc)
	x.Halt()
	return u, m
}

// buildCrafty models crafty's bitboard evaluation: cache-resident table
// lookups feeding long chains of shifts and logical operations with high
// instruction-level parallelism and almost no cache misses.
func buildCrafty(scale int) (*prog.Unit, *arch.Memory) {
	const tableWords = 256
	rng := rand.New(rand.NewSource(1004))
	m := arch.NewMemory()
	fillWords(m, region1, tableWords, func(i int) uint32 { return rng.Uint32() })

	u := prog.NewUnit()
	e := u.NewBlock("entry")
	e.MovI(rCnt, int32(3000*scale))
	e.MovI(rRng, -1640531527) // 0x9E3779B9
	e.MovI(rBase, region1)
	e.MovI(rAcc, 0)
	b := u.NewBlock("loop")
	emitXorshift(b, rRng, rT8)
	b.OpI(isa.OpAndI, rT1, rRng, (tableWords-1)<<2&^3)
	b.Op3(isa.OpAdd, rT1, rT1, rBase)
	b.Load(isa.OpLd4, rT2, rT1, 0)
	b.Load(isa.OpLd4, rT3, rT1, 4)
	// Two independent bit-twiddling chains (attack set evaluation).
	b.OpI(isa.OpShlI, rT4, rT2, 7)
	b.Op3(isa.OpXor, rT4, rT4, rT2)
	b.OpI(isa.OpShrI, rT5, rT3, 9)
	b.Op3(isa.OpXor, rT5, rT5, rT3)
	b.Op3(isa.OpAnd, rT6, rT4, rT5)
	b.Op3(isa.OpOr, rT7, rT4, rT5)
	b.OpI(isa.OpShrI, rT6, rT6, 3)
	b.OpI(isa.OpShlI, rT7, rT7, 2)
	b.Op3(isa.OpXor, rT6, rT6, rT7)
	b.Op3(isa.OpAdd, rAcc, rAcc, rT6)
	// Evaluation branch on a data-dependent bit.
	b.OpI(isa.OpAndI, rT7, rT6, 1)
	b.CmpI(isa.OpCmpEqI, pT2, pF2, rT7, 1)
	b.Br(pT2, "tail")
	sb := u.NewBlock("side")
	sb.OpI(isa.OpXorI, rAcc, rAcc, 0x5A5A)
	t := u.NewBlock("tail")
	loopTail(t, "loop")
	x := u.NewBlock("exit")
	x.MovI(rBase, region4)
	x.Store(isa.OpSt4, rBase, 0, rAcc)
	x.Halt()
	return u, m
}

// buildParser models parser's dictionary lookups: a hashed bucket probe
// followed by a short chain of dependent node loads in a table that mostly
// fits in L3 (short dependent-miss chains).
func buildParser(scale int) (*prog.Unit, *arch.Memory) {
	const (
		buckets   = 64 << 10
		nodeBytes = 16
		nodes     = 16 << 10 // 256KB node pool: mostly L2/L3 resident
	)
	rng := rand.New(rand.NewSource(1005))
	m := arch.NewMemory()
	nodeAddr := func(i int) uint32 { return region2 + uint32(i*nodeBytes) }
	// Chains of length ~3: node -> node -> node -> 0.
	for i := 0; i < nodes; i++ {
		next := uint32(0)
		if rng.Intn(3) > 0 {
			next = nodeAddr(rng.Intn(nodes))
		}
		m.Store(nodeAddr(i), 4, uint64(next))
		m.Store(nodeAddr(i)+4, 4, uint64(rng.Uint32()%977)) // key
	}
	fillWords(m, region1, buckets, func(i int) uint32 { return nodeAddr(rng.Intn(nodes)) })

	u := prog.NewUnit()
	e := u.NewBlock("entry")
	e.MovI(rCnt, int32(2500*scale))
	e.MovI(rRng, 0x13572468)
	e.MovI(rBase, region1)
	e.MovI(rAcc, 0)
	b := u.NewBlock("loop")
	emitXorshift(b, rRng, rT8)
	b.OpI(isa.OpAndI, rT1, rRng, (buckets-1)<<2&^3)
	b.Op3(isa.OpAdd, rT1, rT1, rBase)
	b.Load(isa.OpLd4, rT2, rT1, 0) // bucket head
	b.Load(isa.OpLd4, rT3, rT2, 4) // key 1
	b.Load(isa.OpLd4, rT4, rT2, 0) // next 1
	b.Op3(isa.OpAdd, rAcc, rAcc, rT3)
	// Key comparison on the loaded key: branch, data-dependent.
	b.OpI(isa.OpAndI, rT5, rT3, 1)
	b.CmpI(isa.OpCmpEqI, pT2, pF2, rT5, 0)
	b.Br(pT2, "pskip")
	hop := u.NewBlock("phop")
	// Second hop, guarded by a null check.
	hop.CmpI(isa.OpCmpNeI, pT2, pF2, rT4, 0)
	hop.Load(isa.OpLd4, rT5, rT4, 4).QP = pT2
	hop.Op3(isa.OpAdd, rAcc, rAcc, rT5).QP = pT2
	sk := u.NewBlock("pskip")
	emitCompute(sk, rAcc, 12)
	loopTail(sk, "loop")
	x := u.NewBlock("exit")
	x.MovI(rBase, region4)
	x.Store(isa.OpSt4, rBase, 0, rAcc)
	x.Halt()
	return u, m
}

// buildGap models gap's bag traversal: a pointer chase around a 64KB
// element ring (short misses once warm; the SCC drives RESTART insertion)
// where each element gathers a payload from a cold 4MB vector through a
// rotating offset, giving restart the chained short-then-long miss pattern
// the paper reports for gap.
func buildGap(scale int) (*prog.Unit, *arch.Memory) {
	const (
		recBytes  = 32
		elems     = 2048 // 64KB ring
		vecRegion = 4 << 20
	)
	rng := rand.New(rand.NewSource(1006))
	m := arch.NewMemory()
	first := buildChain(m, rng, region1, elems, recBytes)
	for i := 0; i < elems; i++ {
		m.Store(region1+uint32(i*recBytes)+4, 4, uint64(rng.Uint32()))
	}
	for off := 0; off < vecRegion; off += 4 {
		m.Store(region2+uint32(off), 4, uint64(rng.Uint32()))
	}

	u := prog.NewUnit()
	e := u.NewBlock("entry")
	e.MovI(rPtr, int32(first))
	e.MovI(rCnt, int32(7000*scale))
	e.MovI(rBase, region2)
	e.MovI(rIdx, 0)
	e.MovI(rAcc, 0)
	b := u.NewBlock("loop")
	b.Load(isa.OpLd4, rT1, rPtr, 0) // next element (critical chase)
	b.Load(isa.OpLd4, rT2, rPtr, 4) // payload index seed (same line)
	b.Op3(isa.OpAdd, rT3, rT2, rIdx)
	b.OpI(isa.OpAndI, rT3, rT3, (vecRegion-1)&^3)
	b.Op3(isa.OpAdd, rT3, rT3, rBase)
	b.Load(isa.OpLd4, rT4, rT3, 0) // gather (cold region)
	// Filter on the gathered value: unresolvable during advance until the
	// gather returns, bounding lookahead as in the original.
	b.OpI(isa.OpAndI, rT5, rT4, 1)
	b.CmpI(isa.OpCmpEqI, pT2, pF2, rT5, 0)
	b.Br(pT2, "gapskip")
	acc := u.NewBlock("gapacc")
	acc.Op3(isa.OpAdd, rAcc, rAcc, rT4)
	sk := u.NewBlock("gapskip")
	sk.OpI(isa.OpAddI, rIdx, rIdx, 0x8050)
	emitCompute(sk, rAcc, 10)
	sk.Mov(rPtr, rT1)
	loopTail(sk, "loop")
	x := u.NewBlock("exit")
	x.MovI(rBase, region4)
	x.Store(isa.OpSt4, rBase, 0, rAcc)
	x.Halt()
	return u, m
}

// buildBzip2 models bzip2's rank walk: the next position is loaded from a
// 128KB index ring (a loop-carried load, so the compiler inserts RESTART),
// each position probes the cold 4MB block, and the rank computation
// multiplies (exposing non-unit-latency stalls once memory stalls are
// tolerated, as the paper notes for bzip2).
func buildBzip2(scale int) (*prog.Unit, *arch.Memory) {
	const (
		ringWords  = 32 << 10 // 128KB index ring
		blockBytes = 4 << 20
	)
	rng := rand.New(rand.NewSource(1007))
	m := arch.NewMemory()
	// The ring holds byte offsets of the next ring slot (a shuffled cycle).
	perm := rng.Perm(ringWords)
	for k := 0; k < ringWords; k++ {
		m.Store(region1+uint32(4*perm[k]), 4, uint64(4*perm[(k+1)%ringWords]))
	}
	for off := 0; off < blockBytes; off += 4 {
		m.Store(region2+uint32(off), 4, uint64(rng.Uint32()))
	}

	u := prog.NewUnit()
	e := u.NewBlock("entry")
	e.MovI(rPtr, int32(region1)) // current ring slot
	e.MovI(rCnt, int32(7000*scale))
	e.MovI(rBase, region1)
	e.MovI(rT7, region2) // block base
	e.MovI(rIdx, 0)
	e.MovI(rAcc, 0)
	e.MovI(rRng, 0x0BADF00D)
	b := u.NewBlock("loop")
	b.Load(isa.OpLd4, rT1, rPtr, 0) // next ring offset (critical chase)
	emitXorshift(b, rRng, rT8)
	b.Op3(isa.OpAdd, rT2, rT1, rIdx)
	b.OpI(isa.OpAndI, rT2, rT2, (blockBytes-1)&^3)
	b.Op3(isa.OpAdd, rT2, rT2, rT7)
	b.Load(isa.OpLd4, rT3, rT2, 0)   // cold block probe
	b.Op3(isa.OpMul, rT4, rT3, rRng) // rank hash: multi-cycle
	b.OpI(isa.OpShrI, rT4, rT4, 16)
	b.Op3(isa.OpAdd, rAcc, rAcc, rT4)
	// Rank comparison on the probed value: a real branch the predictor
	// cannot learn, unresolvable while the probe is in flight.
	b.Cmp(isa.OpCmpLtU, pT2, pF2, rT4, rT3)
	b.Br(pT2, "bzskip")
	sw := u.NewBlock("bzswap")
	sw.Store(isa.OpSt4, rT2, 4, rAcc)
	sk := u.NewBlock("bzskip")
	sk.OpI(isa.OpAddI, rIdx, rIdx, 0x20110)
	emitCompute(sk, rAcc, 8)
	sk.Op3(isa.OpAdd, rPtr, rT1, rBase) // follow the ring
	loopTail(sk, "loop")
	x := u.NewBlock("exit")
	x.MovI(rBase, region4)
	x.Store(isa.OpSt4, rBase, 0, rAcc)
	x.Halt()
	return u, m
}

// buildTwolf models twolf's cost evaluation: random small-struct reads from
// a 2MB cell array, an indirect net lookup, and branchy accept/reject logic
// whose pre-execution in advance mode shortens front-end stalls.
func buildTwolf(scale int) (*prog.Unit, *arch.Memory) {
	const (
		cellBytes = 16
		cells     = 32 << 10 // 512KB
		netWords  = 64 << 10 // 256KB
	)
	rng := rand.New(rand.NewSource(1008))
	m := arch.NewMemory()
	for i := 0; i < cells; i++ {
		base := region1 + uint32(i*cellBytes)
		m.Store(base, 4, uint64(rng.Uint32()%netWords))
		m.Store(base+4, 4, uint64(rng.Uint32()%4096))
	}
	fillWords(m, region2, netWords, func(i int) uint32 { return rng.Uint32() % 1024 })

	u := prog.NewUnit()
	e := u.NewBlock("entry")
	e.MovI(rCnt, int32(2500*scale))
	e.MovI(rRng, 0x7715A5A5)
	e.MovI(rBase, region1)
	e.MovI(rIdx, region2)
	e.MovI(rAcc, 0)
	b := u.NewBlock("loop")
	emitXorshift(b, rRng, rT8)
	b.OpI(isa.OpAndI, rT1, rRng, (cells-1)*cellBytes&^(cellBytes-1))
	b.Op3(isa.OpAdd, rT1, rT1, rBase)
	b.Load(isa.OpLd4, rT2, rT1, 0) // net index
	b.Load(isa.OpLd4, rT3, rT1, 4) // cell cost (same line)
	b.OpI(isa.OpShlI, rT4, rT2, 2)
	b.Op3(isa.OpAdd, rT4, rT4, rIdx)
	b.Load(isa.OpLd4, rT5, rT4, 0) // net weight (dependent indirect)
	b.Op3(isa.OpAdd, rT6, rT5, rT3)
	// Two layers of data-dependent branching.
	b.CmpI(isa.OpCmpLtUI, pT2, pF2, rT6, 2048)
	b.Br(pT2, "cheap")
	exp := u.NewBlock("expensive")
	exp.Op3(isa.OpAdd, rAcc, rAcc, rT6)
	exp.OpI(isa.OpShrI, rT6, rT6, 1)
	exp.Jmp("join")
	ch := u.NewBlock("cheap")
	ch.Op3(isa.OpSub, rAcc, rAcc, rT6)
	j := u.NewBlock("join")
	j.CmpI(isa.OpCmpLtUI, pT2, pF2, rT5, 512)
	j.Store(isa.OpSt4, rT1, 8, rAcc).QP = pT2
	emitCompute(j, rAcc, 10)
	loopTail(j, "loop")
	x := u.NewBlock("exit")
	x.MovI(rBase, region4)
	x.Store(isa.OpSt4, rBase, 0, rAcc)
	x.Halt()
	return u, m
}
