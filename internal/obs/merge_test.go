package obs

import (
	"strings"
	"testing"
)

const workerExposition = `# HELP mpsimd_jobs_total Simulations executed.
# TYPE mpsimd_jobs_total counter
mpsimd_jobs_total{model="inorder",workload="mcf",status="ok"} 3
mpsimd_jobs_total{model="ooo",workload="gzip",status="ok"} 1
# HELP mpsimd_cache_entries Current result-cache entries.
# TYPE mpsimd_cache_entries gauge
mpsimd_cache_entries 4
# HELP mpsimd_job_duration_seconds Wall time of jobs.
# TYPE mpsimd_job_duration_seconds histogram
mpsimd_job_duration_seconds_bucket{le="0.1"} 2
mpsimd_job_duration_seconds_bucket{le="+Inf"} 4
mpsimd_job_duration_seconds_sum 0.5
mpsimd_job_duration_seconds_count 4
# HELP go_goroutines Number of goroutines.
# TYPE go_goroutines gauge
go_goroutines 12
`

func TestParseTextRoundTrip(t *testing.T) {
	fams, err := ParseText(strings.NewReader(workerExposition))
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 4 {
		t.Fatalf("parsed %d families, want 4", len(fams))
	}
	byName := map[string]TextFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}

	jobs := byName["mpsimd_jobs_total"]
	if jobs.Kind != "counter" || len(jobs.Samples) != 2 {
		t.Fatalf("jobs family = %+v", jobs)
	}
	if jobs.Samples[0].Labels != `{model="inorder",workload="mcf",status="ok"}` || jobs.Samples[0].Value != "3" {
		t.Errorf("sample = %+v", jobs.Samples[0])
	}

	hist := byName["mpsimd_job_duration_seconds"]
	if hist.Kind != "histogram" || len(hist.Samples) != 4 {
		t.Fatalf("histogram family = %+v", hist)
	}
	suffixes := map[string]bool{}
	for _, s := range hist.Samples {
		suffixes[s.Suffix] = true
	}
	for _, want := range []string{"_bucket", "_sum", "_count"} {
		if !suffixes[want] {
			t.Errorf("histogram missing %s sample", want)
		}
	}

	gauge := byName["mpsimd_cache_entries"]
	if len(gauge.Samples) != 1 || gauge.Samples[0].Labels != "" || gauge.Samples[0].Value != "4" {
		t.Errorf("gauge family = %+v", gauge)
	}
}

func TestParseTextRejectsUndeclaredSample(t *testing.T) {
	if _, err := ParseText(strings.NewReader("orphan_metric 1\n")); err == nil {
		t.Error("sample without TYPE parsed without error")
	}
	if _, err := ParseText(strings.NewReader("# BOGUS x y\n")); err == nil {
		t.Error("malformed comment parsed without error")
	}
}

func TestAddLabel(t *testing.T) {
	cases := []struct{ block, want string }{
		{"", `{worker="http://w:1"}`},
		{"{}", `{worker="http://w:1"}`},
		{`{model="mcf"}`, `{worker="http://w:1",model="mcf"}`},
	}
	for _, tc := range cases {
		if got := AddLabel(tc.block, "worker", "http://w:1"); got != tc.want {
			t.Errorf("AddLabel(%q) = %q, want %q", tc.block, got, tc.want)
		}
	}
	if got := AddLabel("", "worker", `a"b\c`); got != `{worker="a\"b\\c"}` {
		t.Errorf("escaping: got %q", got)
	}
}

// TestRelabelAndMerge covers the federation path end to end: two worker
// expositions are parsed, relabeled under mpsimd_worker_* with a worker
// label (dropping go_* runtime families), merged into one family list, and
// the re-rendered exposition passes the linter.
func TestRelabelAndMerge(t *testing.T) {
	parse := func() []TextFamily {
		fams, err := ParseText(strings.NewReader(workerExposition))
		if err != nil {
			t.Fatal(err)
		}
		return fams
	}
	a := RelabelFamilies(parse(), "mpsimd_", "mpsimd_worker_", "worker", "http://a:1")
	b := RelabelFamilies(parse(), "mpsimd_", "mpsimd_worker_", "worker", "http://b:1")
	for _, fams := range [][]TextFamily{a, b} {
		if len(fams) != 3 {
			t.Fatalf("relabel kept %d families, want 3 (go_* dropped)", len(fams))
		}
		for _, f := range fams {
			if !strings.HasPrefix(f.Name, "mpsimd_worker_") {
				t.Errorf("family %s not renamed", f.Name)
			}
		}
	}

	merged := MergeFamilies(a, b)
	if len(merged) != 3 {
		t.Fatalf("merged %d families, want 3", len(merged))
	}
	for _, f := range merged {
		if f.Name == "mpsimd_worker_jobs_total" && len(f.Samples) != 4 {
			t.Errorf("merged jobs family has %d samples, want 4", len(f.Samples))
		}
	}

	// Render through a registry collector and lint: federation must never
	// produce an exposition the linter would reject.
	reg := NewRegistry()
	reg.CounterVec("mpsimd_fabric_dispatched_total", "Jobs dispatched.", "worker").
		With("http://a:1").Inc()
	reg.CollectorFunc(func() []TextFamily { return merged })
	var buf strings.Builder
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if _, err := Lint(strings.NewReader(text)); err != nil {
		t.Fatalf("federated exposition fails lint: %v\n%s", err, text)
	}
	for _, want := range []string{
		`mpsimd_worker_jobs_total{worker="http://a:1",model="inorder",workload="mcf",status="ok"} 3`,
		`mpsimd_worker_jobs_total{worker="http://b:1",model="inorder",workload="mcf",status="ok"} 3`,
		`mpsimd_worker_cache_entries{worker="http://a:1"} 4`,
		"# TYPE mpsimd_worker_job_duration_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered exposition missing %q\n%s", want, text)
		}
	}
	if strings.Contains(text, "go_goroutines{worker=") {
		t.Error("runtime family leaked through relabeling")
	}
}

// TestCollectorFuncDedup: a collector family whose name collides with a
// registered family is dropped, not double-declared.
func TestCollectorFuncDedup(t *testing.T) {
	reg := NewRegistry()
	reg.CounterVec("mpsimd_things_total", "Things.", "kind").With("a").Inc()
	reg.CollectorFunc(func() []TextFamily {
		return []TextFamily{
			{Name: "mpsimd_things_total", Kind: "counter",
				Samples: []TextSample{{Labels: `{kind="dup"}`, Value: "9"}}},
			{Name: "mpsimd_extra_total", Help: "Extra.", Kind: "counter",
				Samples: []TextSample{{Value: "1"}}},
		}
	})
	var buf strings.Builder
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if _, err := Lint(strings.NewReader(text)); err != nil {
		t.Fatalf("lint: %v\n%s", err, text)
	}
	if strings.Count(text, "# TYPE mpsimd_things_total counter") != 1 {
		t.Errorf("duplicate TYPE for colliding family:\n%s", text)
	}
	if strings.Contains(text, `kind="dup"`) {
		t.Errorf("colliding collector family not dropped:\n%s", text)
	}
	if !strings.Contains(text, "mpsimd_extra_total 1") {
		t.Errorf("collector family missing:\n%s", text)
	}
}
