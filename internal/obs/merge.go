package obs

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// This file is the label-aware merge layer for federating expositions: a
// parser from Prometheus text format back into structured families, helpers
// to relabel and rename them, and (with Registry.CollectorFunc) the way a
// coordinator re-exports its workers' /metrics under a `worker` label.

// TextSample is one parsed sample line of a family. Values are kept as the
// raw exposition text so re-emission is byte-faithful (no float round trip).
type TextSample struct {
	// Suffix distinguishes histogram/summary series: "", "_bucket", "_sum",
	// or "_count".
	Suffix string
	// Labels is the raw label block including braces, or "" when the
	// sample has no labels.
	Labels string
	// Value is the raw value text.
	Value string
}

// TextFamily is one parsed metric family: declaration plus samples.
type TextFamily struct {
	Name    string
	Help    string
	Kind    string // "counter", "gauge", "histogram", "summary", "untyped"
	Samples []TextSample
}

// ParseText parses a Prometheus text exposition into families. It accepts
// what Lint accepts: every sample must belong to a family declared by a
// preceding # TYPE line. Families are returned in declaration order.
func ParseText(r io.Reader) ([]TextFamily, error) {
	var fams []TextFamily
	index := make(map[string]int) // family name -> fams index
	help := make(map[string]string)
	types := make(map[string]string)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.SplitN(text, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return nil, fmt.Errorf("line %d: malformed comment %q", line, text)
			}
			name := fields[2]
			rest := ""
			if len(fields) == 4 {
				rest = strings.TrimSpace(fields[3])
			}
			if fields[1] == "HELP" {
				help[name] = rest
				continue
			}
			if _, dup := types[name]; dup {
				return nil, fmt.Errorf("line %d: duplicate TYPE for %q", line, name)
			}
			types[name] = rest
			index[name] = len(fams)
			fams = append(fams, TextFamily{Name: name, Help: help[name], Kind: rest})
			continue
		}

		name, labels, value, err := splitSample(text)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", line, err)
		}
		fam, ok := lookupFamily(types, name)
		if !ok {
			return nil, fmt.Errorf("line %d: sample %q has no preceding TYPE declaration", line, name)
		}
		i := index[fam]
		fams[i].Samples = append(fams[i].Samples, TextSample{
			Suffix: strings.TrimPrefix(name, fam),
			Labels: labels,
			Value:  value,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return fams, nil
}

// AddLabel returns the label block with name="value" prepended, escaping
// the value. block is either empty or a raw `{...}` block.
func AddLabel(block, name, value string) string {
	pair := name + `="` + escapeLabel(value) + `"`
	if block == "" {
		return "{" + pair + "}"
	}
	inner := block[1 : len(block)-1]
	if inner == "" {
		return "{" + pair + "}"
	}
	return "{" + pair + "," + inner + "}"
}

// RelabelFamilies selects the families whose name starts with oldPrefix,
// renames them to newPrefix+rest, and stamps labelName=labelValue onto every
// sample. It returns new values; the input is not mutated.
func RelabelFamilies(fams []TextFamily, oldPrefix, newPrefix, labelName, labelValue string) []TextFamily {
	var out []TextFamily
	for _, f := range fams {
		rest, ok := strings.CutPrefix(f.Name, oldPrefix)
		if !ok {
			continue
		}
		nf := TextFamily{Name: newPrefix + rest, Help: f.Help, Kind: f.Kind}
		nf.Samples = make([]TextSample, len(f.Samples))
		for i, s := range f.Samples {
			s.Labels = AddLabel(s.Labels, labelName, labelValue)
			nf.Samples[i] = s
		}
		out = append(out, nf)
	}
	return out
}

// MergeFamilies coalesces families with the same name (appending samples in
// argument order), preserving first-seen declaration order, help, and kind.
// This is how per-worker expositions with identical schemas collapse into
// one family per name with a `worker` label distinguishing series.
func MergeFamilies(groups ...[]TextFamily) []TextFamily {
	var out []TextFamily
	index := make(map[string]int)
	for _, fams := range groups {
		for _, f := range fams {
			if i, ok := index[f.Name]; ok {
				out[i].Samples = append(out[i].Samples, f.Samples...)
				continue
			}
			index[f.Name] = len(out)
			out = append(out, f)
		}
	}
	return out
}
