package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// LintStats summarizes what Lint saw in a well-formed exposition.
type LintStats struct {
	Families int
	Samples  int
}

// Lint validates a Prometheus text-format exposition: every sample belongs
// to a family declared by a preceding # TYPE line, no family or series is
// emitted twice, histogram suffixes match their family, and every value
// parses. It is intentionally stricter than the format itself (which
// permits untyped, undeclared samples): this server declares everything it
// exports, so an undeclared sample is a wiring bug.
func Lint(r io.Reader) (LintStats, error) {
	var st LintStats
	types := make(map[string]string) // family -> kind
	seen := make(map[string]bool)    // name+labels -> emitted
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.SplitN(text, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return st, fmt.Errorf("line %d: malformed comment %q", line, text)
			}
			if fields[1] == "TYPE" {
				name := fields[2]
				if len(fields) < 4 {
					return st, fmt.Errorf("line %d: TYPE without a kind", line)
				}
				kind := strings.TrimSpace(fields[3])
				switch kind {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return st, fmt.Errorf("line %d: unknown type %q", line, kind)
				}
				if _, dup := types[name]; dup {
					return st, fmt.Errorf("line %d: duplicate TYPE for %q", line, name)
				}
				types[name] = kind
				st.Families++
			}
			continue
		}

		name, labels, value, err := splitSample(text)
		if err != nil {
			return st, fmt.Errorf("line %d: %v", line, err)
		}
		if !validMetricName(name) {
			return st, fmt.Errorf("line %d: invalid metric name %q", line, name)
		}
		fam, ok := lookupFamily(types, name)
		if !ok {
			return st, fmt.Errorf("line %d: sample %q has no preceding TYPE declaration", line, name)
		}
		if kind := types[fam]; kind == "histogram" && fam == name {
			return st, fmt.Errorf("line %d: histogram %q emitted a bare sample", line, name)
		}
		series := name + labels
		if seen[series] {
			return st, fmt.Errorf("line %d: duplicate series %s", line, series)
		}
		seen[series] = true
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			return st, fmt.Errorf("line %d: bad value %q: %v", line, value, err)
		}
		st.Samples++
	}
	if err := sc.Err(); err != nil {
		return st, err
	}
	if st.Samples == 0 {
		return st, fmt.Errorf("no samples in exposition")
	}
	return st, nil
}

// lookupFamily resolves a sample name to its declared family, accepting
// the histogram/summary suffixes.
func lookupFamily(types map[string]string, name string) (string, bool) {
	if _, ok := types[name]; ok {
		return name, true
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(name, suffix)
		if !ok {
			continue
		}
		if kind := types[base]; kind == "histogram" || kind == "summary" {
			return base, true
		}
	}
	return "", false
}

// splitSample parses `name{labels} value [timestamp]` into parts, keeping
// the raw label block (including braces) as the series discriminator.
func splitSample(text string) (name, labels, value string, err error) {
	rest := text
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		end := labelBlockEnd(rest[i:])
		if end < 0 {
			return "", "", "", fmt.Errorf("unterminated label block in %q", text)
		}
		labels = rest[i : i+end+1]
		if err := validateLabels(labels); err != nil {
			return "", "", "", err
		}
		rest = strings.TrimSpace(rest[i+end+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return "", "", "", fmt.Errorf("sample %q has no value", text)
		}
		name = fields[0]
		rest = strings.Join(fields[1:], " ")
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", "", "", fmt.Errorf("sample %q has %d trailing fields, want value [timestamp]", text, len(fields))
	}
	return name, labels, fields[0], nil
}

// labelBlockEnd returns the index of the closing brace of a label block
// starting at s[0]=='{', honoring escapes inside quoted values, or -1.
func labelBlockEnd(s string) int {
	inQuote := false
	for i := 1; i < len(s); i++ {
		switch {
		case inQuote && s[i] == '\\':
			i++ // skip escaped char
		case s[i] == '"':
			inQuote = !inQuote
		case !inQuote && s[i] == '}':
			return i
		}
	}
	return -1
}

// validateLabels checks `{k="v",k2="v2"}` shape.
func validateLabels(block string) error {
	inner := block[1 : len(block)-1]
	if inner == "" {
		return nil
	}
	for len(inner) > 0 {
		eq := strings.IndexByte(inner, '=')
		if eq <= 0 || !validLabelName(inner[:eq]) {
			return fmt.Errorf("bad label name in %q", block)
		}
		rest := inner[eq+1:]
		if len(rest) < 2 || rest[0] != '"' {
			return fmt.Errorf("unquoted label value in %q", block)
		}
		i := 1
		for i < len(rest) {
			if rest[i] == '\\' {
				i += 2
				continue
			}
			if rest[i] == '"' {
				break
			}
			i++
		}
		if i >= len(rest) {
			return fmt.Errorf("unterminated label value in %q", block)
		}
		inner = rest[i+1:]
		if strings.HasPrefix(inner, ",") {
			inner = inner[1:]
			if inner == "" {
				return fmt.Errorf("trailing comma in %q", block)
			}
		} else if inner != "" {
			return fmt.Errorf("missing comma in %q", block)
		}
	}
	return nil
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
