package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one named, timed segment of a request: queue wait, compile,
// simulate, marshal, and so on.
type Span struct {
	Name  string
	Start time.Time
	Dur   time.Duration
}

// Trace accumulates the spans of one request. All methods are safe for
// concurrent use (sweep jobs record into their request's trace from many
// goroutines) and safe on a nil receiver, so call sites need no guards.
type Trace struct {
	ID    string
	start time.Time

	mu    sync.Mutex
	spans []Span
}

// NewTrace returns a Trace with the given request ID, generating one when
// id is empty.
func NewTrace(id string) *Trace {
	if id == "" {
		id = NewRequestID()
	}
	return &Trace{ID: id, start: time.Now()}
}

// reqFallback feeds request IDs if the system randomness source fails.
var reqFallback atomic.Uint64

// NewRequestID returns a 16-hex-character random request ID.
func NewRequestID() string {
	var buf [8]byte
	if _, err := rand.Read(buf[:]); err != nil {
		return fmt.Sprintf("req-%012x", reqFallback.Add(1))
	}
	return hex.EncodeToString(buf[:])
}

// StartSpan begins a span; the returned func ends it and records the
// duration.
func (t *Trace) StartSpan(name string) func() {
	if t == nil {
		return func() {}
	}
	start := time.Now()
	return func() {
		t.mu.Lock()
		t.spans = append(t.spans, Span{Name: name, Start: start, Dur: time.Since(start)})
		t.mu.Unlock()
	}
}

// Observe records a span whose duration was measured externally.
func (t *Trace) Observe(name string, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{Name: name, Start: time.Now().Add(-d), Dur: d})
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans in recording order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Elapsed is the wall time since the trace began.
func (t *Trace) Elapsed() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.start)
}

// HeaderValue renders the trace for a response header:
//
//	id=4f1c9e02a77b3d10;queue_wait=0.012ms;compile=1.204ms;simulate=48.310ms;total=49.821ms
func (t *Trace) HeaderValue() string {
	if t == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "id=%s", t.ID)
	for _, sp := range t.Spans() {
		fmt.Fprintf(&b, ";%s=%.3fms", sp.Name, float64(sp.Dur)/float64(time.Millisecond))
	}
	fmt.Fprintf(&b, ";total=%.3fms", float64(t.Elapsed())/float64(time.Millisecond))
	return b.String()
}

// SpanJSON is one span in the debug=true response section.
type SpanJSON struct {
	Name string  `json:"name"`
	MS   float64 `json:"ms"`
}

// TraceJSON is the debug=true response section.
type TraceJSON struct {
	RequestID string     `json:"request_id"`
	TotalMS   float64    `json:"total_ms"`
	Spans     []SpanJSON `json:"spans"`
}

// JSON renders the trace for embedding in a response body.
func (t *Trace) JSON() TraceJSON {
	if t == nil {
		return TraceJSON{}
	}
	spans := t.Spans()
	out := TraceJSON{
		RequestID: t.ID,
		TotalMS:   float64(t.Elapsed()) / float64(time.Millisecond),
		Spans:     make([]SpanJSON, len(spans)),
	}
	for i, sp := range spans {
		out.Spans[i] = SpanJSON{Name: sp.Name, MS: float64(sp.Dur) / float64(time.Millisecond)}
	}
	return out
}

// ctxKey keys the Trace in a context.
type ctxKey struct{}

// WithTrace returns ctx carrying t.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the Trace carried by ctx, or nil. The nil result is
// usable: every Trace method no-ops on a nil receiver.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}

// SanitizeRequestID constrains a client-supplied request ID to at most 64
// characters drawn from [A-Za-z0-9._-]; anything else is dropped. Returns
// "" when nothing survives, signaling the caller to generate a fresh ID.
func SanitizeRequestID(id string) string {
	var b strings.Builder
	for _, r := range id {
		if b.Len() >= 64 {
			break
		}
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			b.WriteRune(r)
		}
	}
	return b.String()
}
