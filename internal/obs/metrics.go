// Package obs is the stdlib-only observability layer: a Prometheus
// text-format metrics registry (counters, gauges, fixed-bucket histograms,
// plus a bridge to runtime/metrics), per-request traces with named spans,
// and a linter for the exposition format used both in tests and by
// cmd/promcheck against a live server.
//
// The package deliberately has no dependencies outside the standard
// library: the simulator serves scientific workloads and must stay
// self-contained, and the exposition format is simple enough that a full
// client library buys nothing but surface area.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime/metrics"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// metricKind is the Prometheus family type.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// family is one registered metric family: a name, help text, a type, and
// exactly one backing implementation.
type family struct {
	name, help string
	kind       metricKind

	counter   *Counter
	counterFn func() uint64
	gaugeFn   func() float64
	vec       *CounterVec
	hist      *Histogram
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. Registration is not concurrency-safe (do it at
// construction time); collection and rendering are.
type Registry struct {
	mu         sync.Mutex
	fams       []*family
	names      map[string]bool
	runtime    bool
	collectors []func() []TextFamily
}

// NewRegistry returns an empty Registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

func (r *Registry) add(f *family) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[f.name] {
		panic(fmt.Sprintf("obs: duplicate metric registration %q", f.name))
	}
	r.names[f.name] = true
	r.fams = append(r.fams, f)
}

// Counter registers and returns a monotonically increasing counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.add(&family{name: name, help: help, kind: kindCounter, counter: c})
	return c
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time. fn must be monotonic (e.g. it loads an atomic that is only ever
// incremented).
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.add(&family{name: name, help: help, kind: kindCounter, counterFn: fn})
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.add(&family{name: name, help: help, kind: kindGauge, gaugeFn: fn})
}

// CounterVec registers a counter family with a fixed label set. Children
// are created on first use and live forever; keep label cardinality small.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	v := &CounterVec{labels: labels, children: make(map[string]*Counter)}
	r.add(&family{name: name, help: help, kind: kindCounter, vec: v})
	return v
}

// Histogram registers a fixed-bucket histogram. buckets are the finite
// upper bounds, strictly ascending; an implicit +Inf bucket is appended.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not ascending", name))
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), buckets...),
		counts: make([]atomic.Uint64, len(buckets)+1),
	}
	r.add(&family{name: name, help: help, kind: kindHistogram, hist: h})
	return h
}

// CollectorFunc registers a scrape-time source of pre-rendered families —
// the federation hook: a coordinator collects its workers' expositions,
// relabels them, and re-exports them here. fn runs on every WriteText; a
// collected family whose name collides with a registered family (or an
// earlier collector's) is skipped so the exposition never declares a
// duplicate TYPE.
func (r *Registry) CollectorFunc(fn func() []TextFamily) {
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

// EnableRuntimeMetrics appends a curated set of Go runtime statistics
// (sampled from runtime/metrics at scrape time) to every exposition.
func (r *Registry) EnableRuntimeMetrics() {
	r.mu.Lock()
	r.runtime = true
	r.mu.Unlock()
}

// Counter is a monotonically increasing uint64.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// CounterVec is a set of Counters distinguished by label values.
type CounterVec struct {
	labels   []string
	mu       sync.Mutex
	children map[string]*Counter
}

// With returns the child counter for the given label values (one per
// registered label name, in registration order), creating it on first use.
func (v *CounterVec) With(values ...string) *Counter {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: CounterVec.With got %d values for %d labels", len(values), len(v.labels)))
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, name := range v.labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	key := b.String()

	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.children[key]
	if !ok {
		c = &Counter{}
		v.children[key] = c
	}
	return c
}

// Histogram is a fixed-bucket histogram with cumulative Prometheus
// semantics (bucket counts rendered as `le` upper bounds).
type Histogram struct {
	bounds []float64       // finite upper bounds, ascending
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    atomicFloat
	total  atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v: `le` semantics
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.total.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// Quantile estimates the q-quantile (0 < q <= 1) from the bucket counts,
// interpolating linearly within the containing bucket. Observations in the
// +Inf bucket clamp to the largest finite bound. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.total.Load()
	if total == 0 || len(h.bounds) == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	if target > total {
		target = total
	}
	var cum uint64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			cum += n
			continue
		}
		if cum+n >= target {
			if i >= len(h.bounds) {
				// +Inf bucket: clamp to the largest finite bound.
				return h.bounds[len(h.bounds)-1]
			}
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			upper := h.bounds[i]
			frac := float64(target-cum) / float64(n)
			return lower + frac*(upper-lower)
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// atomicFloat is a float64 accumulated with CAS on its bit pattern.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, new) {
			return
		}
	}
}

func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// escapeLabel escapes a label value per the exposition format.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(v string) string { return labelEscaper.Replace(v) }

func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteText renders every family (and, if enabled, the runtime bridge) in
// Prometheus text exposition format.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	withRuntime := r.runtime
	collectors := append([]func() []TextFamily(nil), r.collectors...)
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		writeFamilyHeader(&b, f.name, f.help, f.kind)
		switch {
		case f.counter != nil:
			fmt.Fprintf(&b, "%s %d\n", f.name, f.counter.Value())
		case f.counterFn != nil:
			fmt.Fprintf(&b, "%s %d\n", f.name, f.counterFn())
		case f.gaugeFn != nil:
			fmt.Fprintf(&b, "%s %s\n", f.name, formatFloat(f.gaugeFn()))
		case f.vec != nil:
			f.vec.mu.Lock()
			keys := make([]string, 0, len(f.vec.children))
			for k := range f.vec.children {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(&b, "%s%s %d\n", f.name, k, f.vec.children[k].Value())
			}
			f.vec.mu.Unlock()
		case f.hist != nil:
			h := f.hist
			var cum uint64
			for i, bound := range h.bounds {
				cum += h.counts[i].Load()
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", f.name, formatFloat(bound), cum)
			}
			cum += h.counts[len(h.bounds)].Load()
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", f.name, cum)
			fmt.Fprintf(&b, "%s_sum %s\n", f.name, formatFloat(h.Sum()))
			fmt.Fprintf(&b, "%s_count %d\n", f.name, cum)
		}
	}
	emitted := make(map[string]bool, len(fams))
	for _, f := range fams {
		emitted[f.name] = true
	}
	for _, collect := range collectors {
		for _, cf := range collect() {
			if emitted[cf.Name] {
				continue
			}
			emitted[cf.Name] = true
			if cf.Help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", cf.Name, strings.ReplaceAll(cf.Help, "\n", " "))
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", cf.Name, cf.Kind)
			for _, s := range cf.Samples {
				fmt.Fprintf(&b, "%s%s%s %s\n", cf.Name, s.Suffix, s.Labels, s.Value)
			}
		}
	}
	if withRuntime {
		writeRuntimeMetrics(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeFamilyHeader(b *strings.Builder, name, help string, kind metricKind) {
	if help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", name, strings.ReplaceAll(help, "\n", " "))
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", name, kind)
}

// Handler returns an http.Handler serving the registry as a /metrics
// endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w)
	})
}

// runtimeDefs maps a curated subset of runtime/metrics onto stable
// Prometheus names. Entries missing from the running Go version are
// skipped silently, so the set is safe across toolchains.
var runtimeDefs = []struct {
	src, name, help string
	counter         bool
}{
	{"/sched/goroutines:goroutines", "go_goroutines", "Number of live goroutines.", false},
	{"/sched/gomaxprocs:threads", "go_gomaxprocs", "Current GOMAXPROCS.", false},
	{"/memory/classes/heap/objects:bytes", "go_heap_objects_bytes", "Bytes of allocated heap objects.", false},
	{"/memory/classes/total:bytes", "go_memory_total_bytes", "All memory mapped by the Go runtime.", false},
	{"/gc/cycles/total:gc-cycles", "go_gc_cycles_total", "Completed GC cycles.", true},
	{"/gc/heap/allocs:bytes", "go_heap_allocs_bytes_total", "Cumulative bytes allocated on the heap.", true},
}

func writeRuntimeMetrics(b *strings.Builder) {
	samples := make([]metrics.Sample, len(runtimeDefs))
	for i, d := range runtimeDefs {
		samples[i].Name = d.src
	}
	metrics.Read(samples)
	for i, d := range runtimeDefs {
		var v float64
		switch samples[i].Value.Kind() {
		case metrics.KindUint64:
			v = float64(samples[i].Value.Uint64())
		case metrics.KindFloat64:
			v = samples[i].Value.Float64()
		default:
			continue // metric not present in this runtime
		}
		kind := kindGauge
		if d.counter {
			kind = kindCounter
		}
		writeFamilyHeader(b, d.name, d.help, kind)
		if d.counter {
			fmt.Fprintf(b, "%s %d\n", d.name, uint64(v))
		} else {
			fmt.Fprintf(b, "%s %s\n", d.name, formatFloat(v))
		}
	}
}
