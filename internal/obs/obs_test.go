package obs

import (
	"context"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestCounterAndVecRendering: counters and labeled counters render with one
// TYPE line per family and sorted, escaped children.
func TestCounterAndVecRendering(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "Ops.")
	c.Add(3)
	v := r.CounterVec("test_jobs_total", "Jobs.", "model", "status")
	v.With("inorder", "ok").Add(2)
	v.With("multipass", "error").Inc()
	v.With(`we"ird`, "ok").Inc()
	r.GaugeFunc("test_depth", "Depth.", func() float64 { return 1.5 })
	r.CounterFunc("test_reads_total", "Reads.", func() uint64 { return 7 })

	out := render(t, r)
	for _, want := range []string{
		"# TYPE test_ops_total counter\ntest_ops_total 3\n",
		"# TYPE test_jobs_total counter\n",
		`test_jobs_total{model="inorder",status="ok"} 2`,
		`test_jobs_total{model="multipass",status="error"} 1`,
		`test_jobs_total{model="we\"ird",status="ok"} 1`,
		"# TYPE test_depth gauge\ntest_depth 1.5\n",
		"test_reads_total 7\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if _, err := Lint(strings.NewReader(out)); err != nil {
		t.Errorf("Lint rejects own exposition: %v", err)
	}
}

// TestHistogramRendering: cumulative buckets, sum, count, and +Inf.
func TestHistogramRendering(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_dur_seconds", "Durations.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 100} {
		h.Observe(v)
	}
	out := render(t, r)
	for _, want := range []string{
		"# TYPE test_dur_seconds histogram",
		`test_dur_seconds_bucket{le="0.1"} 1`,
		`test_dur_seconds_bucket{le="1"} 3`,
		`test_dur_seconds_bucket{le="10"} 4`,
		`test_dur_seconds_bucket{le="+Inf"} 5`,
		"test_dur_seconds_sum 106.05",
		"test_dur_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if _, err := Lint(strings.NewReader(out)); err != nil {
		t.Errorf("Lint rejects histogram exposition: %v", err)
	}
}

// oldRingPercentile reimplements the estimator this histogram replaced: a
// 1024-sample sliding window with nearest-rank selection.
func oldRingPercentile(window []float64, p float64) float64 {
	n := len(window)
	if n > 1024 {
		window = window[n-1024:]
		n = 1024
	}
	buf := append([]float64(nil), window...)
	sort.Float64s(buf)
	i := int(p*float64(n)+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return buf[i]
}

// TestHistogramQuantileAccuracy: the bucket-interpolated quantile tracks
// both the exact percentile and the old ring estimate to within the width
// of the containing bucket, across a skewed latency-like distribution.
func TestHistogramQuantileAccuracy(t *testing.T) {
	buckets := []float64{0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}
	r := NewRegistry()
	h := r.Histogram("test_lat_ms", "Latency.", buckets)

	rng := rand.New(rand.NewSource(42))
	var samples []float64
	for i := 0; i < 20000; i++ {
		// Log-normal-ish: most mass near 1-20ms with a long tail.
		v := 2 * (1 + rng.ExpFloat64()*5)
		samples = append(samples, v)
		h.Observe(v)
	}

	bucketWidth := func(v float64) float64 {
		lower := 0.0
		for _, b := range buckets {
			if v <= b {
				return b - lower
			}
			lower = b
		}
		return buckets[len(buckets)-1]
	}

	exactQ := func(p float64) float64 {
		buf := append([]float64(nil), samples...)
		sort.Float64s(buf)
		i := int(p*float64(len(buf))+0.5) - 1
		if i < 0 {
			i = 0
		}
		return buf[i]
	}

	for _, p := range []float64{0.50, 0.90, 0.99} {
		got := h.Quantile(p)
		exact := exactQ(p)
		ring := oldRingPercentile(samples, p)
		if tol := bucketWidth(exact); got < exact-tol || got > exact+tol {
			t.Errorf("p%.0f: histogram %.3f, exact %.3f (tolerance %.3f)", p*100, got, exact, tol)
		}
		if tol := bucketWidth(ring) + bucketWidth(exact); got < ring-tol || got > ring+tol {
			t.Errorf("p%.0f: histogram %.3f diverges from ring estimate %.3f beyond %.3f", p*100, got, ring, tol)
		}
	}

	if h.Quantile(0.99) < h.Quantile(0.50) {
		t.Error("quantile not monotonic: p99 < p50")
	}
}

// TestHistogramEmpty: quantiles of an empty histogram are 0.
func TestHistogramEmpty(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_empty", "Empty.", []float64{1, 2})
	if q := h.Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %v, want 0", q)
	}
}

// TestRuntimeMetrics: the runtime bridge emits at least goroutines and
// lints cleanly alongside app families.
func TestRuntimeMetrics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_x_total", "X.").Inc()
	r.EnableRuntimeMetrics()
	out := render(t, r)
	if !strings.Contains(out, "go_goroutines ") {
		t.Errorf("runtime bridge missing go_goroutines:\n%s", out)
	}
	if _, err := Lint(strings.NewReader(out)); err != nil {
		t.Errorf("Lint rejects runtime exposition: %v", err)
	}
}

// TestLintRejections: the linter catches the malformations the CI scrape
// check exists to catch.
func TestLintRejections(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{
			"duplicate series",
			"# TYPE a counter\na 1\na 2\n",
			"duplicate series",
		},
		{
			"duplicate TYPE",
			"# TYPE a counter\na 1\n# TYPE a counter\n",
			"duplicate TYPE",
		},
		{
			"undeclared sample",
			"# TYPE a counter\nb 1\n",
			"no preceding TYPE",
		},
		{
			"bad value",
			"# TYPE a counter\na one\n",
			"bad value",
		},
		{
			"unterminated labels",
			"# TYPE a counter\na{x=\"1\" 1\n",
			"unterminated",
		},
		{
			"empty exposition",
			"",
			"no samples",
		},
	}
	for _, tc := range cases {
		_, err := Lint(strings.NewReader(tc.in))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

// TestTraceSpansAndHeader: spans record durations, the header carries the
// ID and every span, and concurrent recording is safe.
func TestTraceSpansAndHeader(t *testing.T) {
	tr := NewTrace("abc123")
	end := tr.StartSpan("compile")
	time.Sleep(time.Millisecond)
	end()
	tr.Observe("simulate", 5*time.Millisecond)

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr.Observe("job", time.Millisecond)
		}()
	}
	wg.Wait()

	spans := tr.Spans()
	if len(spans) != 10 {
		t.Fatalf("got %d spans, want 10", len(spans))
	}
	if spans[0].Name != "compile" || spans[0].Dur <= 0 {
		t.Errorf("first span = %+v", spans[0])
	}
	hv := tr.HeaderValue()
	for _, want := range []string{"id=abc123", "compile=", "simulate=5.000ms", "total="} {
		if !strings.Contains(hv, want) {
			t.Errorf("header %q missing %q", hv, want)
		}
	}
	j := tr.JSON()
	if j.RequestID != "abc123" || len(j.Spans) != 10 || j.TotalMS <= 0 {
		t.Errorf("JSON = %+v", j)
	}
}

// TestTraceNilSafety: every method no-ops on a nil Trace.
func TestTraceNilSafety(t *testing.T) {
	var tr *Trace
	tr.StartSpan("x")()
	tr.Observe("y", time.Second)
	if tr.Spans() != nil || tr.HeaderValue() != "" || tr.Elapsed() != 0 {
		t.Error("nil trace leaked data")
	}
	ctx := context.Background()
	if FromContext(ctx) != nil {
		t.Error("FromContext on empty ctx != nil")
	}
	ctx = WithTrace(ctx, NewTrace(""))
	if got := FromContext(ctx); got == nil || len(got.ID) != 16 {
		t.Errorf("roundtrip trace = %+v", got)
	}
}

// TestSanitizeRequestID: hostile inbound IDs are constrained.
func TestSanitizeRequestID(t *testing.T) {
	cases := map[string]string{
		"abc-123.X_y":            "abc-123.X_y",
		"a b\nc":                 "abc",
		"":                       "",
		"<script>":               "script",
		strings.Repeat("a", 100): strings.Repeat("a", 64),
	}
	for in, want := range cases {
		if got := SanitizeRequestID(in); got != want {
			t.Errorf("SanitizeRequestID(%q) = %q, want %q", in, got, want)
		}
	}
}
