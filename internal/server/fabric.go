// Fabric-facing surface of the server: the coordinator-only endpoints
// (/v1/fabric/join, /v1/fabric/leave, /v1/fabric/program), the optional
// interfaces a Dispatcher may implement to light them up, and the shared
// program-bundle wire format workers fetch pre-built programs in. The
// server still never imports internal/fabric — new fabric capabilities
// arrive through type assertions on Config.Dispatcher, so the core
// Dispatcher interface (and every existing implementation) stays stable.

package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"multipass/internal/arch"
	"multipass/internal/isa"
	"multipass/internal/obs"
)

// Membership is the optional Dispatcher extension for dynamic fleets. The
// join handler validates the worker URL before calling Join, so
// implementations treat the URL as well-formed.
type Membership interface {
	// Join adds url to the fleet or renews its lease, returning the lease
	// TTL and the member list after the join.
	Join(url string) (ttl time.Duration, members []string)
	// Leave removes url from the fleet; false if it was not a member.
	Leave(url string) bool
	// Members lists the current fleet.
	Members() []string
}

// ProgramProvider is the optional Dispatcher extension that serves shared
// program bundles to workers by program key.
type ProgramProvider interface {
	ProgramBundle(key string) (data []byte, ok bool)
}

// FleetReporter is the optional Dispatcher extension for fleet-level
// metric families (membership churn, memo activity), merged into the
// coordinator's /metrics exposition.
type FleetReporter interface {
	FleetFamilies() []obs.TextFamily
}

// ProgramKey is the content address of a job's compiled program: the hex
// SHA-256 over exactly the JobSpec fields that determine the binary
// (workload, scale, compile options). Model, hierarchy, and sampling are
// deliberately absent — every cell of a model sweep shares one program.
func ProgramKey(j JobSpec) string {
	id := fmt.Sprintf("program|%s|%d|%t|%t|%d",
		j.Workload, j.Scale, j.Schedule, j.InsertRestarts, j.Unroll)
	sum := sha256.Sum256([]byte(id))
	return hex.EncodeToString(sum[:])
}

// Program-bundle wire format: a fixed 8-byte magic, then two
// length-prefixed sections — the isa.Program binary encoding and the
// arch.Memory image encoding. Both inner encodings are deterministic, so
// one program identity always yields one bundle hash. All integers
// little-endian; versioned through the magic.

var bundleMagic = [8]byte{'M', 'P', 'B', 'N', 'D', 'L', '1', '\n'}

// EncodeProgramBundle serializes a compiled program and its initial memory
// image into one fetchable blob.
func EncodeProgramBundle(p *isa.Program, image *arch.Memory) ([]byte, error) {
	progBytes, err := p.MarshalBinary()
	if err != nil {
		return nil, err
	}
	memBytes, err := image.MarshalBinary()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	buf.Grow(len(bundleMagic) + 8 + len(progBytes) + len(memBytes))
	buf.Write(bundleMagic[:])
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(progBytes)))
	buf.Write(u32[:])
	buf.Write(progBytes)
	binary.LittleEndian.PutUint32(u32[:], uint32(len(memBytes)))
	buf.Write(u32[:])
	buf.Write(memBytes)
	return buf.Bytes(), nil
}

// DecodeProgramBundle parses a bundle written by EncodeProgramBundle.
func DecodeProgramBundle(data []byte) (*isa.Program, *arch.Memory, error) {
	r := bytes.NewReader(data)
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil || magic != bundleMagic {
		return nil, nil, fmt.Errorf("server: bad program bundle magic")
	}
	section := func() ([]byte, error) {
		var u32 [4]byte
		if _, err := io.ReadFull(r, u32[:]); err != nil {
			return nil, fmt.Errorf("server: truncated program bundle: %w", err)
		}
		n := binary.LittleEndian.Uint32(u32[:])
		if uint32(r.Len()) < n {
			return nil, fmt.Errorf("server: truncated program bundle section (%d > %d left)", n, r.Len())
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, err
		}
		return b, nil
	}
	progBytes, err := section()
	if err != nil {
		return nil, nil, err
	}
	memBytes, err := section()
	if err != nil {
		return nil, nil, err
	}
	if r.Len() != 0 {
		return nil, nil, fmt.Errorf("server: %d trailing bytes in program bundle", r.Len())
	}
	p := new(isa.Program)
	if err := p.UnmarshalBinary(progBytes); err != nil {
		return nil, nil, err
	}
	image := arch.NewMemory()
	if err := image.UnmarshalBinary(memBytes); err != nil {
		return nil, nil, err
	}
	return p, image, nil
}

// fetchProgram retrieves and verifies the bundle ref points at. The sum
// check makes the fetch self-validating: a stale or corrupted bundle is
// rejected and the caller falls back to a local build. The fetch runs
// under the triggering request's context, so a dead requester never keeps
// a fetch to a dead coordinator hanging.
func (s *Server) fetchProgram(ctx context.Context, ref *ProgramRef) (*isa.Program, *arch.Memory, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		ref.Source+"/v1/fabric/program?key="+url.QueryEscape(ref.Key), nil)
	if err != nil {
		return nil, nil, err
	}
	resp, err := s.fabricClient.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, nil, fmt.Errorf("bundle fetch: status %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	sum := sha256.Sum256(data)
	if got := hex.EncodeToString(sum[:]); got != ref.Sum {
		return nil, nil, fmt.Errorf("bundle sum mismatch: got %s, want %s", got, ref.Sum)
	}
	return DecodeProgramBundle(data)
}

// errNotCoordinator rejects a fabric endpoint on a daemon whose dispatcher
// does not support it (or that has no dispatcher at all).
func errNotCoordinator(capability string) error {
	return apiErrorf(http.StatusNotFound, CodeNotCoordinator,
		"this endpoint requires a coordinator started with -coordinator",
		"daemon is not a coordinator with %s support", capability)
}

// parseJoinURL validates a join/leave worker URL: absolute http(s) with a
// host, no query or fragment, normalized without a trailing slash.
func parseJoinURL(raw string) (string, error) {
	u, err := url.Parse(raw)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" ||
		u.RawQuery != "" || u.Fragment != "" {
		return "", apiErrorf(http.StatusBadRequest, CodeBadJoin,
			"url must be the worker's absolute http(s) base URL, e.g. http://host:9190",
			"bad worker url %q", raw)
	}
	u.Path = ""
	return u.String(), nil
}

func (s *Server) handleFabricJoin(w http.ResponseWriter, r *http.Request) {
	s.handleMembership(w, r, true)
}

func (s *Server) handleFabricLeave(w http.ResponseWriter, r *http.Request) {
	s.handleMembership(w, r, false)
}

// handleMembership serves join (lease create/renew) and leave. Leave is
// idempotent: leaving twice answers 200 both times with the current
// member list.
func (s *Server) handleMembership(w http.ResponseWriter, r *http.Request, join bool) {
	if r.Method != http.MethodPost {
		writeError(w, errMethodNotAllowed(http.MethodPost))
		return
	}
	m, ok := s.cfg.Dispatcher.(Membership)
	if !ok {
		writeError(w, errNotCoordinator("membership"))
		return
	}
	var req JoinRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, errBadBody(err))
		return
	}
	workerURL, err := parseJoinURL(req.URL)
	if err != nil {
		writeError(w, err)
		return
	}
	resp := JoinResponse{SchemaVersion: APISchemaVersion}
	if join {
		ttl, members := m.Join(workerURL)
		resp.TTLMS = ttl.Milliseconds()
		resp.Members = members
	} else {
		m.Leave(workerURL)
		resp.Members = m.Members()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleFabricProgram(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, errMethodNotAllowed(http.MethodGet))
		return
	}
	p, ok := s.cfg.Dispatcher.(ProgramProvider)
	if !ok {
		writeError(w, errNotCoordinator("program sharing"))
		return
	}
	key := r.URL.Query().Get("key")
	data, ok := p.ProgramBundle(key)
	if !ok {
		writeError(w, apiErrorf(http.StatusNotFound, CodeUnknownProgram,
			"the coordinator only serves bundles it has built or restored",
			"no program bundle for key %q", key))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data)
}
