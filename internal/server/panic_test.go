package server

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"

	"multipass/internal/arch"
	"multipass/internal/isa"
	"multipass/internal/sim"
)

// panicModelName is a deliberately broken model registered only by these
// tests: it panics mid-Run, the way an internal consistency guard (for
// example the result-store collision check) would.
const panicModelName = "test-panic-model"

var registerPanicModel = sync.OnceFunc(func() {
	sim.Register(panicModelName, func(opts sim.ModelOptions) (sim.Machine, error) {
		return panicMachine{}, nil
	})
})

type panicMachine struct{}

func (panicMachine) Name() string { return panicModelName }

func (panicMachine) Run(ctx context.Context, p *isa.Program, image *arch.Memory) (*sim.Result, error) {
	panic("resultStore: collision guard tripped (injected)")
}

// TestRunModelPanicFailsJob: a panicking model fails the /v1/run job with
// the panic message; the server keeps serving and counts the failure.
func TestRunModelPanicFailsJob(t *testing.T) {
	registerPanicModel()
	_, ts := newTestServer(t, Config{Workers: 2})

	resp := postJSON(t, ts.URL+"/v1/run", RunRequest{Workload: "crafty", Model: panicModelName})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want %d", resp.StatusCode, http.StatusInternalServerError)
	}
	body := string(readBody(t, resp))
	if !strings.Contains(body, "panicked") || !strings.Contains(body, "collision guard") {
		t.Errorf("error body %q does not report the panic", body)
	}

	st := getStats(t, ts.URL)
	if st.JobsFailed == 0 {
		t.Errorf("jobs_failed = 0 after a panicked job")
	}

	// The worker slot must have been released: a healthy job still runs.
	resp2 := postJSON(t, ts.URL+"/v1/run", RunRequest{Workload: "crafty", Model: "inorder"})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("healthy job after panic: status %d", resp2.StatusCode)
	}
	readBody(t, resp2)
}

// TestSweepModelPanicFailsOnlyThatJob: in a sweep, the panicking model's
// cells report failed while the healthy model's cells complete — the panic
// does not kill the sweep goroutines or the process.
func TestSweepModelPanicFailsOnlyThatJob(t *testing.T) {
	registerPanicModel()
	_, ts := newTestServer(t, Config{Workers: 4})

	resp := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{
		Workloads: []string{"crafty"},
		Models:    []string{"inorder", panicModelName},
		Hiers:     []string{"base"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d", resp.StatusCode)
	}
	var sr SweepResponse
	if err := json.Unmarshal(readBody(t, resp), &sr); err != nil {
		t.Fatal(err)
	}

	if sr.Summary.Total != 2 || sr.Summary.Failed != 1 {
		t.Fatalf("summary %+v, want total 2 with 1 failed", sr.Summary)
	}
	for _, job := range sr.Jobs {
		switch job.Job.Model {
		case panicModelName:
			if job.Status != JobFailed || !strings.Contains(job.Error, "panicked") {
				t.Errorf("panic job = %+v, want failed with panic message", job)
			}
		case "inorder":
			if job.Status != JobDone && job.Status != JobCached {
				t.Errorf("healthy job status = %q", job.Status)
			}
		}
	}
}
