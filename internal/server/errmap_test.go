package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// TestRunErrorMapping pins how /v1/run maps registry lookup failures into
// the v1 error envelope: unknown models and hierarchies are rejected at
// normalization with 400 and a stable machine-readable code, and the
// message names the bad value while the hint points at where the valid
// ones are listed — so a client never has to guess which field was wrong
// or what the legal values are.
func TestRunErrorMapping(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		name string
		req  RunRequest
		code string
		// every substring must appear in the error message
		want []string
	}{
		{
			"unknown model quotes name and hints /v1/models",
			RunRequest{Workload: "mcf", Model: "oooo"},
			CodeUnknownModel,
			[]string{`unknown model "oooo"`, "/v1/models"},
		},
		{
			"model name is case sensitive",
			RunRequest{Workload: "mcf", Model: "Inorder"},
			CodeUnknownModel,
			[]string{`unknown model "Inorder"`, "/v1/models"},
		},
		{
			"unknown hierarchy quotes name and lists valid ones",
			RunRequest{Workload: "mcf", Model: "inorder", Hier: "config9"},
			CodeUnknownHier,
			[]string{`unknown hierarchy "config9"`, "base", "config1", "config2"},
		},
		{
			"hierarchy name is case sensitive",
			RunRequest{Workload: "mcf", Model: "inorder", Hier: "Base"},
			CodeUnknownHier,
			[]string{`unknown hierarchy "Base"`, "base", "config1", "config2"},
		},
		{
			"model checked before hierarchy",
			RunRequest{Workload: "mcf", Model: "nope", Hier: "also-nope"},
			CodeUnknownModel,
			[]string{`unknown model "nope"`},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postJSON(t, ts.URL+"/v1/run", tc.req)
			body := readBody(t, resp)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, body %s, want 400", resp.StatusCode, body)
			}
			var er ErrorResponse
			if err := json.Unmarshal(body, &er); err != nil {
				t.Fatalf("error body %s is not an ErrorResponse: %v", body, err)
			}
			if er.Error.Code != tc.code {
				t.Errorf("error code %q, want %q", er.Error.Code, tc.code)
			}
			for _, want := range tc.want {
				if !strings.Contains(er.Error.Message, want) && !strings.Contains(er.Error.Hint, want) {
					t.Errorf("error %+v missing %q", er.Error, want)
				}
			}
		})
	}
}

// TestErrorEnvelopeCodes pins the stable code for each distinct failure
// mode across the /v1/* endpoints. Codes are API: clients branch on them,
// so a rename here is a breaking change and must bump the schema version.
func TestErrorEnvelopeCodes(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxSweepJobs: 2})

	post := func(t *testing.T, path string, body any) (int, ErrorResponse) {
		t.Helper()
		resp := postJSON(t, ts.URL+path, body)
		data := readBody(t, resp)
		var er ErrorResponse
		if err := json.Unmarshal(data, &er); err != nil {
			t.Fatalf("error body %s is not an ErrorResponse: %v", data, err)
		}
		return resp.StatusCode, er
	}

	cases := []struct {
		name   string
		path   string
		body   any
		status int
		code   string
	}{
		{"missing workload", "/v1/run", RunRequest{Model: "inorder"},
			http.StatusBadRequest, CodeMissingWorkload},
		{"missing model", "/v1/run", RunRequest{Workload: "mcf"},
			http.StatusBadRequest, CodeMissingModel},
		{"unknown workload", "/v1/run", RunRequest{Workload: "nope", Model: "inorder"},
			http.StatusBadRequest, CodeUnknownWorkload},
		{"unknown model", "/v1/run", RunRequest{Workload: "mcf", Model: "nope"},
			http.StatusBadRequest, CodeUnknownModel},
		{"unknown hierarchy", "/v1/run", RunRequest{Workload: "mcf", Model: "inorder", Hier: "nope"},
			http.StatusBadRequest, CodeUnknownHier},
		{"bad scale", "/v1/run", RunRequest{Workload: "mcf", Model: "inorder", Scale: -1},
			http.StatusBadRequest, CodeBadScale},
		{"bad timeout run", "/v1/run", RunRequest{Workload: "mcf", Model: "inorder", TimeoutMS: -1},
			http.StatusBadRequest, CodeBadTimeout},
		{"bad timeout sweep", "/v1/sweep", SweepRequest{Workloads: []string{"mcf"}, Models: []string{"inorder"}, TimeoutMS: -1},
			http.StatusBadRequest, CodeBadTimeout},
		{"sweep axis typo", "/v1/sweep", SweepRequest{Workloads: []string{"mcf"}, Models: []string{"bogus"}},
			http.StatusBadRequest, CodeUnknownModel},
		{"sweep grid too large", "/v1/sweep", SweepRequest{Workloads: []string{"mcf"}, Models: []string{"inorder", "multipass", "ooo"}, Hiers: []string{"base"}},
			http.StatusBadRequest, CodeQueueFull},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, er := post(t, tc.path, tc.body)
			if status != tc.status {
				t.Errorf("status %d, want %d", status, tc.status)
			}
			if er.Error.Code != tc.code {
				t.Errorf("code %q, want %q", er.Error.Code, tc.code)
			}
			if er.Error.Message == "" {
				t.Error("empty error message")
			}
			if er.SchemaVersion != APISchemaVersion {
				t.Errorf("schema_version %d, want %d", er.SchemaVersion, APISchemaVersion)
			}
		})
	}

	// Wrong method and undecodable body share the envelope too.
	resp, err := http.Get(ts.URL + "/v1/run")
	if err != nil {
		t.Fatal(err)
	}
	var er ErrorResponse
	if err := json.Unmarshal(readBody(t, resp), &er); err != nil {
		t.Fatalf("405 body not an ErrorResponse: %v", err)
	}
	if resp.StatusCode != http.StatusMethodNotAllowed || er.Error.Code != CodeMethodNotAllowed {
		t.Errorf("GET /v1/run: status %d code %q", resp.StatusCode, er.Error.Code)
	}

	resp, err = http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(readBody(t, resp), &er); err != nil {
		t.Fatalf("bad-body response not an ErrorResponse: %v", err)
	}
	if resp.StatusCode != http.StatusBadRequest || er.Error.Code != CodeBadBody {
		t.Errorf("malformed body: status %d code %q", resp.StatusCode, er.Error.Code)
	}

	// Every rejection above must have happened before any simulation ran:
	// sweeps validate their full grid up front, so a typo in one axis value
	// never burns the rest of the grid.
	if st := getStats(t, ts.URL); st.JobsExecuted != 0 {
		t.Errorf("jobs_executed = %d after rejected requests, want 0", st.JobsExecuted)
	}
}
