package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// TestRunErrorMapping pins how /v1/run maps registry lookup failures into
// HTTP errors: unknown models and hierarchies are rejected at normalization
// with 400, and the error body names the bad value and points at where the
// valid ones are listed — so a client never has to guess which field was
// wrong or what the legal values are.
func TestRunErrorMapping(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		name string
		req  RunRequest
		// every substring must appear in the error body
		want []string
	}{
		{
			"unknown model quotes name and hints /v1/models",
			RunRequest{Workload: "mcf", Model: "oooo"},
			[]string{`unknown model "oooo"`, "/v1/models"},
		},
		{
			"model name is case sensitive",
			RunRequest{Workload: "mcf", Model: "Inorder"},
			[]string{`unknown model "Inorder"`, "/v1/models"},
		},
		{
			"unknown hierarchy quotes name and lists valid ones",
			RunRequest{Workload: "mcf", Model: "inorder", Hier: "config9"},
			[]string{`unknown hierarchy "config9"`, "base", "config1", "config2"},
		},
		{
			"hierarchy name is case sensitive",
			RunRequest{Workload: "mcf", Model: "inorder", Hier: "Base"},
			[]string{`unknown hierarchy "Base"`, "base", "config1", "config2"},
		},
		{
			"model checked before hierarchy",
			RunRequest{Workload: "mcf", Model: "nope", Hier: "also-nope"},
			[]string{`unknown model "nope"`},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postJSON(t, ts.URL+"/v1/run", tc.req)
			body := readBody(t, resp)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, body %s, want 400", resp.StatusCode, body)
			}
			var er ErrorResponse
			if err := json.Unmarshal(body, &er); err != nil {
				t.Fatalf("error body %s is not an ErrorResponse: %v", body, err)
			}
			for _, want := range tc.want {
				if !strings.Contains(er.Error, want) {
					t.Errorf("error %q missing %q", er.Error, want)
				}
			}
		})
	}
}

// TestNegativeTimeoutRejected pins the timeout contract on both job
// endpoints: a negative timeout_ms is a 400 naming the field, never a
// silent fall-through to the server default. The sweep variant used to
// slip past deadline's `> 0` check — the regression this guards.
func TestNegativeTimeoutRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	for _, tc := range []struct {
		name, path string
		body       any
	}{
		{"run", "/v1/run", RunRequest{Workload: "mcf", Model: "inorder", TimeoutMS: -1}},
		{"sweep", "/v1/sweep", SweepRequest{Workloads: []string{"mcf"}, Models: []string{"inorder"}, TimeoutMS: -250}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp := postJSON(t, ts.URL+tc.path, tc.body)
			body := readBody(t, resp)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, body %s, want 400", resp.StatusCode, body)
			}
			var er ErrorResponse
			if err := json.Unmarshal(body, &er); err != nil {
				t.Fatalf("error body %s is not an ErrorResponse: %v", body, err)
			}
			if !strings.Contains(er.Error, "timeout_ms") || !strings.Contains(er.Error, "< 0") {
				t.Errorf("error %q does not name timeout_ms", er.Error)
			}
		})
	}
	if st := getStats(t, ts.URL); st.JobsExecuted != 0 {
		t.Errorf("jobs_executed = %d after rejected requests, want 0", st.JobsExecuted)
	}
}
