package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
)

// Stable machine-readable error codes: every non-2xx response from a /v1/*
// endpoint carries exactly one of these in error.code. Codes are API —
// clients branch on them, so renaming one is a breaking change.
const (
	CodeBadBody          = "bad_body"           // request body is not valid JSON for the endpoint
	CodeMethodNotAllowed = "method_not_allowed" // wrong HTTP method
	CodeMissingWorkload  = "missing_workload"   // workload field absent
	CodeMissingModel     = "missing_model"      // model field absent
	CodeUnknownWorkload  = "unknown_workload"   // workload not in the registry
	CodeUnknownModel     = "unknown_model"      // model not in the registry
	CodeUnknownHier      = "unknown_hierarchy"  // hierarchy not in the registry
	CodeBadScale         = "bad_scale"          // scale < 1
	CodeBadUnroll        = "bad_unroll"         // unroll < 0
	CodeBadSample        = "bad_sample"         // sample.interval below MinSampleInterval
	CodeBadTimeout       = "bad_timeout"        // timeout_ms < 0
	CodeQueueFull        = "queue_full"         // sweep grid exceeds MaxSweepJobs
	CodeDeadlineExceeded = "deadline_exceeded"  // the job hit its deadline
	CodeCanceled         = "canceled"           // the client went away mid-job
	CodeWorkerFailed     = "worker_failed"      // no fabric worker could run the job
	CodeJobFailed        = "job_failed"         // the simulation itself reported an error
	CodeBadJoin          = "bad_join"           // join/leave request with a malformed worker URL
	CodeNotCoordinator   = "not_coordinator"    // fabric endpoint on a non-coordinator daemon
	CodeUnknownProgram   = "unknown_program"    // program bundle key not in the coordinator's memo
)

// apiError is the internal carrier of one error envelope: an HTTP status,
// a stable code, a human-readable message, and an optional hint pointing at
// how to fix the request.
type apiError struct {
	status  int
	code    string
	message string
	hint    string
}

func (e *apiError) Error() string { return e.message }

// NewAPIError builds an error that the HTTP layer renders verbatim as the
// v1 error envelope. Exported for the fabric dispatcher, which propagates a
// worker's envelope (status, code, message) through the coordinator
// unchanged.
func NewAPIError(status int, code, message, hint string) error {
	return &apiError{status: status, code: code, message: message, hint: hint}
}

// apiErrorf builds an apiError with a formatted message.
func apiErrorf(status int, code, hint, format string, args ...any) *apiError {
	return &apiError{status: status, code: code, hint: hint, message: fmt.Sprintf(format, args...)}
}

// errMethodNotAllowed rejects a request made with the wrong HTTP method.
func errMethodNotAllowed(want string) error {
	return apiErrorf(http.StatusMethodNotAllowed, CodeMethodNotAllowed, "", "%s required", want)
}

// errBadBody rejects a request whose body failed to decode.
func errBadBody(err error) error {
	return apiErrorf(http.StatusBadRequest, CodeBadBody, "", "bad request body: %v", err)
}

// asAPIError normalizes any job error into an apiError: typed errors pass
// through, context errors map to their dedicated codes, and everything else
// is a failed job.
func asAPIError(err error) *apiError {
	var ae *apiError
	switch {
	case errors.As(err, &ae):
		return ae
	case errors.Is(err, context.DeadlineExceeded):
		return apiErrorf(http.StatusGatewayTimeout, CodeDeadlineExceeded,
			"raise timeout_ms or shrink the job", "%v", err)
	case errors.Is(err, context.Canceled):
		// The client went away; the status is moot but 499-style semantics
		// map best onto 503 in net/http terms.
		return apiErrorf(http.StatusServiceUnavailable, CodeCanceled, "", "%v", err)
	}
	return apiErrorf(http.StatusInternalServerError, CodeJobFailed, "", "%v", err)
}

// writeError renders err as the uniform v1 error envelope:
// {"schema_version":N,"error":{"code":...,"message":...,"hint":...}}.
func writeError(w http.ResponseWriter, err error) {
	ae := asAPIError(err)
	writeJSON(w, ae.status, ErrorResponse{
		SchemaVersion: APISchemaVersion,
		Error: ErrorDetail{
			Code:    ae.code,
			Message: ae.message,
			Hint:    ae.hint,
		},
	})
}

// jobError prefixes a job error's message with the job identity while
// preserving its status, code, and hint.
func jobError(spec JobSpec, err error) error {
	ae := asAPIError(err)
	wrapped := *ae
	wrapped.message = fmt.Sprintf("%s/%s/%s: %s", spec.Workload, spec.Model, spec.Hier, ae.message)
	return &wrapped
}
