// Package server implements mpsimd: an HTTP/JSON simulation service over
// the timing models and workload suite. It executes jobs on a bounded
// worker pool, memoizes results in a sharded content-addressed cache keyed
// by the canonical job tuple (a cache hit replays byte-identical JSON), and
// honors per-request deadlines by threading context cancellation into the
// models' cycle loops.
//
// Endpoints:
//
//	POST /v1/run            one simulation job (?debug=true adds a trace section)
//	POST /v1/sweep          a (workloads x models x hierarchies) batch;
//	                        ?stream=true streams NDJSON results as they land
//	GET  /v1/models         registered timing models and named hierarchies
//	GET  /v1/workloads      the benchmark kernels
//	GET  /v1/stats          server metrics (jobs, cache, latency percentiles)
//	GET  /v1/worker/health  liveness + role, probed by fabric coordinators
//	GET  /metrics           Prometheus text-format exposition
//
// Every response carries X-Mpsimd-Request-Id and (on /v1/*) the
// Mpsimd-Api-Version header; /v1/run adds X-Mpsimd-Cache
// (hit|miss|coalesced) and X-Mpsimd-Trace (per-phase spans). Errors share
// one envelope: {"error":{"code":...,"message":...,"hint":...}} with
// stable codes. Request logs go through the configured slog.Logger.
//
// With Config.Dispatcher set the server runs as a fabric coordinator: jobs
// are routed to remote workers (consistent-hashed on the job key) instead
// of the local pool, while the result cache, coalescing, and replay
// guarantees stay local — see internal/fabric.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"multipass/internal/arch"
	"multipass/internal/isa"
	"multipass/internal/mem"
	"multipass/internal/obs"
	"multipass/internal/sim"
	"multipass/internal/workload"

	// Link the standard timing models into the sim registry so a bare
	// server binary serves them all.
	_ "multipass/internal/core"
	_ "multipass/internal/pipe/cgooo"
	_ "multipass/internal/pipe/inorder"
	_ "multipass/internal/pipe/ooo"
	_ "multipass/internal/pipe/runahead"
)

// Config shapes a Server.
type Config struct {
	// Workers bounds concurrently executing simulations; 0 means
	// GOMAXPROCS.
	Workers int
	// DefaultTimeout applies to requests that do not set timeout_ms; 0
	// means no server-imposed deadline.
	DefaultTimeout time.Duration
	// MaxSweepJobs rejects sweeps whose grid exceeds it; 0 means the
	// default of 4096.
	MaxSweepJobs int
	// MaxCacheBytes bounds the result cache's byte footprint; 0 means the
	// default of 256 MiB. Entries beyond the budget are evicted
	// clock-style (second chance).
	MaxCacheBytes int64
	// PersistDir, when non-empty, persists the result cache under
	// PersistDir/results so a restarted server (most importantly a sweep
	// coordinator) serves previously computed cells from disk and
	// re-dispatches only what it is missing.
	PersistDir string
	// Logger receives structured request and job logs; nil discards them.
	Logger *slog.Logger
	// Role names this daemon's place in a sweep fabric ("standalone",
	// "worker", "coordinator"); it is reported by /v1/worker/health.
	// Empty means "standalone".
	Role string
	// Dispatcher, when non-nil, routes job execution to remote fabric
	// workers instead of the local pool. The result cache and flight
	// coalescing still run locally, so cached replay stays byte-identical
	// and duplicate cells dispatch once.
	Dispatcher Dispatcher
}

// Dispatcher is the fabric hook: the coordinator-side transport that runs a
// job on a remote worker and reports per-worker accounting. Implemented by
// internal/fabric; defined here so the server does not depend on it.
type Dispatcher interface {
	// Dispatch runs one job remotely and returns the worker's canonical
	// RunResponse bytes, which are byte-identical to a local execution.
	Dispatch(ctx context.Context, spec JobSpec) ([]byte, error)
	// Dispositions snapshots cumulative per-worker job accounting, keyed
	// by worker base URL.
	Dispositions() map[string]WorkerDisposition
	// WorkerFamilies scrapes the workers' /metrics and returns their
	// mpsimd_* families relabeled under mpsimd_worker_* with a `worker`
	// label, for merging into the coordinator's exposition.
	WorkerFamilies() []obs.TextFamily
}

// Cache dispositions: how runCached satisfied a request. Exactly one is
// counted per request, so hits + misses + coalesced equals the number of
// /v1/run requests plus sweep cells that reached the cache layer.
const (
	dispHit       = "hit"       // served from the result cache
	dispMiss      = "miss"      // executed (or attempted) a simulation
	dispCoalesced = "coalesced" // joined another request's in-flight execution
)

// Server is the mpsimd HTTP service.
type Server struct {
	cfg     Config
	cache   *resultCache
	log     *slog.Logger
	metrics *serverMetrics
	// sem is the worker pool: one token per concurrently executing
	// simulation.
	sem chan struct{}

	jobsExecuted atomic.Uint64
	jobsFailed   atomic.Uint64
	inFlight     atomic.Int64

	// programsBuilt counts local workload compilations; programsFetched
	// counts program bundles fetched pre-built from a coordinator instead.
	programsBuilt   atomic.Uint64
	programsFetched atomic.Uint64
	// fabricClient performs program-bundle fetches (worker side).
	fabricClient *http.Client

	// flights coalesces concurrent executions of the same job: followers
	// wait for the leader's bytes instead of re-simulating.
	flightMu sync.Mutex
	flights  map[string]*flight

	// progs memoizes compiled programs and their pre-decoded traces, keyed
	// by the job fields that determine the binary (workload, scale, compile
	// options). A sweep then decodes each workload once and every model in
	// the grid reads the same trace.
	progMu sync.Mutex
	progs  map[string]*builtProgram

	start time.Time
}

// flight is one in-progress execution; done is closed once data/err are set.
type flight struct {
	done chan struct{}
	data []byte
	err  error
}

// builtProgram is one memoized compilation: the binary, its initial image,
// and the pre-decoded oracle trace (nil when the workload is too long to
// trace, in which case runs fall back to the lazy interpreter). The build
// runs in its own goroutine and done is closed when the fields are set, so
// waiters can give up when their deadline expires without abandoning the
// build. The phase durations are kept so the triggering request can report
// them as spans.
type builtProgram struct {
	done       chan struct{}
	p          *isa.Program
	image      *arch.Memory
	tr         *sim.Trace
	err        error
	compileDur time.Duration
	traceDur   time.Duration
}

// progCacheCap bounds the program memo; the whole map is dropped when full
// (compilations are cheap relative to simulation, the memo exists to share
// traces within a sweep).
const progCacheCap = 64

// traceLimit caps pre-decoded traces; longer workloads use the lazy path.
const traceLimit = 1 << 22

// program returns the memoized compilation for the spec's binary-identity
// fields, compiling and tracing on first use. The build itself runs
// detached: a waiter whose ctx expires returns ctx.Err() immediately while
// the compilation finishes for later requests. The request that triggered
// the build reports compile and trace_decode spans on otr; memo hits
// report only their wait. A non-nil ref lets the build fetch the
// coordinator's pre-built bundle instead of compiling.
func (s *Server) program(ctx context.Context, spec JobSpec, ref *ProgramRef, otr *obs.Trace) (*isa.Program, *arch.Memory, *sim.Trace, error) {
	key := ProgramKey(spec)
	for {
		s.progMu.Lock()
		if s.progs == nil || len(s.progs) >= progCacheCap {
			s.progs = make(map[string]*builtProgram)
		}
		b, ok := s.progs[key]
		triggered := !ok
		if !ok {
			b = &builtProgram{done: make(chan struct{})}
			s.progs[key] = b
			go s.buildProgram(ctx, b, key, spec, ref)
		}
		s.progMu.Unlock()

		wait := time.Now()
		select {
		case <-b.done:
		case <-ctx.Done():
			otr.Observe("compile", time.Since(wait))
			return nil, nil, nil, ctx.Err()
		}
		if b.err == errProgramBuildAborted {
			// The entry died with its triggering request (see buildProgram).
			// This waiter is still live, so re-trigger with its own ref.
			if err := ctx.Err(); err != nil {
				return nil, nil, nil, err
			}
			continue
		}
		if triggered {
			otr.Observe("compile", b.compileDur)
			otr.Observe("trace_decode", b.traceDur)
		} else {
			otr.Observe("compile", time.Since(wait))
		}
		return b.p, b.image, b.tr, b.err
	}
}

// errProgramBuildAborted marks a memo entry whose triggering request died
// before its bundle fetch resolved. The entry is dropped from the memo;
// live waiters observe the sentinel and re-trigger with their own ref.
var errProgramBuildAborted = errors.New("server: program build aborted: requester gone")

// buildProgram compiles (or fetches) and traces one memo entry, then
// publishes it by closing done. It never holds progMu: a slow compilation
// must not block memo lookups for other programs. With a ProgramRef the
// pre-built bundle is fetched and sum-verified first; a fetch failure
// falls back to a local build, so the memo protocol is purely an
// optimization — unless the triggering request itself is already dead
// (its coordinator restarted mid-job, say), in which case compiling on a
// dead job's behalf would just defeat the fleet-wide build-once memo: the
// entry is dropped so the next live request re-resolves against a live
// source. The trace always decodes locally — it is derived data, far
// larger than the program, and cheap relative to shipping it.
func (s *Server) buildProgram(ctx context.Context, b *builtProgram, key string, spec JobSpec, ref *ProgramRef) {
	defer close(b.done)
	compileStart := time.Now()
	if ref != nil && ref.Source != "" && ref.Key != "" {
		if p, image, err := s.fetchProgram(ctx, ref); err == nil {
			s.programsFetched.Add(1)
			b.p, b.image = p, image
			b.compileDur = time.Since(compileStart)
		} else if ctx.Err() != nil {
			s.progMu.Lock()
			if s.progs[key] == b {
				delete(s.progs, key)
			}
			s.progMu.Unlock()
			b.err = errProgramBuildAborted
			return
		} else {
			s.log.Warn("program bundle fetch failed, building locally",
				"key", ref.Key, "source", ref.Source, "err", err)
		}
	}
	if b.p == nil {
		w, ok := workload.ByName(spec.Workload)
		if !ok {
			b.err = fmt.Errorf("unknown workload %q", spec.Workload)
			return
		}
		b.p, b.image, b.err = workload.Program(w, spec.Scale, spec.CompileOptions())
		b.compileDur = time.Since(compileStart)
		if b.err != nil {
			return
		}
		s.programsBuilt.Add(1)
	}
	// A failed trace is not an error: the run interprets lazily and
	// reports the real fault, if any.
	traceStart := time.Now()
	if tr, err := sim.BuildTrace(b.p, b.image, traceLimit); err == nil {
		b.tr = tr
	}
	b.traceDur = time.Since(traceStart)
}

// New builds a Server.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxSweepJobs <= 0 {
		cfg.MaxSweepJobs = 4096
	}
	if cfg.Role == "" {
		cfg.Role = "standalone"
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	resultsDir := ""
	if cfg.PersistDir != "" {
		resultsDir = filepath.Join(cfg.PersistDir, "results")
		if err := os.MkdirAll(resultsDir, 0o755); err != nil {
			log.Warn("persist dir unavailable, running without persistence",
				"dir", resultsDir, "err", err)
			resultsDir = ""
		}
	}
	s := &Server{
		cfg:          cfg,
		cache:        newResultCache(cfg.MaxCacheBytes, resultsDir),
		log:          log,
		sem:          make(chan struct{}, cfg.Workers),
		flights:      make(map[string]*flight),
		fabricClient: &http.Client{Timeout: 30 * time.Second},
		start:        time.Now(),
	}
	s.metrics = newServerMetrics(s)
	return s
}

// Handler returns the service's routed handler, wrapped in the
// observability envelope (request IDs, request logs, HTTP metrics).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/run", s.handleRun)
	mux.HandleFunc("/v1/sweep", s.handleSweep)
	mux.HandleFunc("/v1/models", s.handleModels)
	mux.HandleFunc("/v1/workloads", s.handleWorkloads)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/worker/health", s.handleWorkerHealth)
	mux.HandleFunc("/v1/fabric/join", s.handleFabricJoin)
	mux.HandleFunc("/v1/fabric/leave", s.handleFabricLeave)
	mux.HandleFunc("/v1/fabric/program", s.handleFabricProgram)
	mux.Handle("/metrics", s.metrics.reg.Handler())
	return s.withObs(mux)
}

// writeJSON emits v with the canonical JSON encoder.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// deadline derives the effective job context from the request timeout.
func (s *Server) deadline(ctx context.Context, timeoutMS int64) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	if d <= 0 {
		return context.WithCancel(ctx)
	}
	return context.WithTimeout(ctx, d)
}

// execute runs one job under the worker pool and returns the marshaled
// canonical RunResponse. The caller has already missed the cache. key is
// the job's content address, used to label CPU profiles so pprof
// attributes simulation time to jobs. ref, when non-nil, points at a
// coordinator's pre-built program bundle.
func (s *Server) execute(ctx context.Context, spec JobSpec, key string, ref *ProgramRef) ([]byte, error) {
	tr := obs.FromContext(ctx)
	endQueue := tr.StartSpan("queue_wait")
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		endQueue()
		return nil, ctx.Err()
	}
	endQueue()
	defer func() { <-s.sem }()

	// The deadline may have expired while queued; don't start compiling
	// for a request that is already dead.
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	s.inFlight.Add(1)
	start := time.Now()
	defer func() {
		s.inFlight.Add(-1)
		s.metrics.jobDuration.Observe(time.Since(start).Seconds())
	}()

	hier, ok := mem.ConfigByName(spec.Hier)
	if !ok {
		return nil, fmt.Errorf("unknown hierarchy %q", spec.Hier)
	}
	p, image, simTrace, err := s.program(ctx, spec, ref, tr)
	if err != nil {
		return nil, err
	}
	m, err := sim.NewMachine(spec.Model, sim.ModelOptions{Hier: hier, MaxInsts: spec.MaxInsts})
	if err != nil {
		return nil, err
	}
	if tu, ok := m.(sim.TraceUser); ok {
		tu.UseTrace(simTrace)
	}
	s.jobsExecuted.Add(1)

	// Label the simulation for CPU profiles: `go tool pprof -tagfocus` can
	// then attribute time per job, model, or workload.
	simStart := time.Now()
	var res *sim.Result
	pprof.Do(ctx, pprof.Labels("job", key, "model", spec.Model, "workload", spec.Workload),
		func(ctx context.Context) {
			res, err = s.runModel(ctx, m, spec, p, image)
		})
	simDur := time.Since(simStart)
	if err != nil {
		s.jobsFailed.Add(1)
		s.metrics.jobs.With(spec.Model, spec.Workload, "error").Inc()
		tr.Observe("simulate", simDur)
		return nil, err
	}
	s.metrics.jobs.With(spec.Model, spec.Workload, "ok").Inc()
	res.AddPhase("simulate", simDur)
	for _, ph := range res.Phases {
		tr.Observe(ph.Name, ph.Dur)
	}

	endMarshal := tr.StartSpan("marshal")
	data, err := json.Marshal(RunResponse{SchemaVersion: APISchemaVersion, Job: spec, Stats: res.Stats})
	endMarshal()
	return data, err
}

// runModel executes the model under a panic guard: a model bug (for example
// an internal consistency check firing mid-run) fails the one job with a
// descriptive error instead of killing the process. This matters doubly for
// sweeps, whose jobs run on bare goroutines — an unrecovered panic there
// would take down the whole server.
func (s *Server) runModel(ctx context.Context, m sim.Machine, spec JobSpec, p *isa.Program, image *arch.Memory) (res *sim.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = fmt.Errorf("model %s panicked: %v", m.Name(), r)
			reqID := ""
			if tr := obs.FromContext(ctx); tr != nil {
				reqID = tr.ID
			}
			s.log.Error("model panicked",
				"request_id", reqID,
				"model", m.Name(),
				"panic", fmt.Sprint(r))
		}
	}()
	if spec.SampleInterval > 0 {
		// Worker count stays the library default (GOMAXPROCS); it changes
		// only wall-clock time, never the result, so it is not in the spec.
		return sim.RunSampled(ctx, m, p, image, sim.SampleConfig{
			Interval: spec.SampleInterval,
			Warmup:   spec.SampleWarmup,
			Period:   spec.SamplePeriod,
		})
	}
	return m.Run(ctx, p, image)
}

// runCached returns the canonical response bytes for spec: from the result
// cache when the job already ran, from a concurrent in-flight execution when
// one exists, by executing otherwise. disp reports how the request was
// satisfied (dispHit, dispMiss, or dispCoalesced) and is counted exactly
// once per call, so the three counters always balance against request
// totals — a coalesced follower is no longer misaccounted as a miss.
func (s *Server) runCached(ctx context.Context, spec JobSpec, ref *ProgramRef) (data []byte, disp string, err error) {
	defer func() {
		switch disp {
		case dispHit:
			s.cache.hits.Add(1)
		case dispMiss:
			s.cache.misses.Add(1)
		case dispCoalesced:
			s.cache.coalesced.Add(1)
		}
	}()
	key := spec.Key()
	for {
		if data, ok := s.cache.get(key); ok {
			return data, dispHit, nil
		}

		s.flightMu.Lock()
		if f, ok := s.flights[key]; ok {
			// Follow the in-flight leader.
			s.flightMu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, dispCoalesced, ctx.Err()
			}
			if f.err == nil {
				return f.data, dispCoalesced, nil
			}
			// The leader failed — possibly on its own (shorter) deadline.
			// Retry from the top; this caller becomes a leader unless its
			// own context is also done.
			if err := ctx.Err(); err != nil {
				return nil, dispCoalesced, err
			}
			continue
		}
		// Re-check the cache before claiming leadership: a leader publishes
		// its bytes before removing its flight, so a request that missed
		// the first lookup but finds no flight here may already have a
		// result waiting — re-executing it would double-count a miss and
		// waste a worker.
		if data, ok := s.cache.get(key); ok {
			s.flightMu.Unlock()
			return data, dispHit, nil
		}
		f := &flight{done: make(chan struct{})}
		s.flights[key] = f
		s.flightMu.Unlock()

		if d := s.cfg.Dispatcher; d != nil {
			// Coordinator mode: the job runs on a fabric worker; the local
			// cache stores the worker's canonical bytes, so replay stays
			// byte-identical to a single-node run.
			end := obs.FromContext(ctx).StartSpan("dispatch")
			data, err = d.Dispatch(ctx, spec)
			end()
		} else {
			data, err = s.execute(ctx, spec, key, ref)
		}
		if err == nil {
			s.cache.put(key, data)
		}
		f.data, f.err = data, err
		s.flightMu.Lock()
		delete(s.flights, key)
		s.flightMu.Unlock()
		close(f.done)
		return data, dispMiss, err
	}
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, errMethodNotAllowed(http.MethodPost))
		return
	}
	var req RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, errBadBody(err))
		return
	}
	spec, err := normalize(&req)
	if err != nil {
		writeError(w, err)
		return
	}
	tr := obs.FromContext(r.Context())
	if tr == nil {
		tr = obs.NewTrace("")
	}
	ctx, cancel := s.deadline(obs.WithTrace(r.Context(), tr), req.TimeoutMS)
	defer cancel()

	data, disp, err := s.runCached(ctx, spec, req.ProgramRef)
	status := http.StatusOK
	if err != nil {
		status = asAPIError(err).status
	}
	s.log.Info("run",
		"request_id", tr.ID,
		"workload", spec.Workload, "model", spec.Model, "hier", spec.Hier,
		"scale", spec.Scale, "max_insts", spec.MaxInsts,
		"status", status, "cache", disp,
		"dur_ms", float64(tr.Elapsed())/float64(time.Millisecond),
	)
	if err != nil {
		writeError(w, jobError(spec, err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(headerCache, disp)
	w.Header().Set(headerTrace, tr.HeaderValue())
	if debugRequested(r) {
		data = withTraceSection(data, tr)
	}
	w.Write(data)
}

// handleSweep lives in sweep.go: grid planning, the buffered response, and
// the ?stream=true NDJSON writer.

// compatNames reports whether the request asked for the pre-v2 bare-name
// response shape (?compat=names).
func compatNames(r *http.Request) bool {
	return r.URL.Query().Get("compat") == "names"
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, errMethodNotAllowed(http.MethodGet))
		return
	}
	if compatNames(r) {
		writeJSON(w, http.StatusOK, ModelNamesResponse{
			SchemaVersion: APISchemaVersion,
			Models:        sim.Names(),
			Hierarchies:   mem.ConfigNames(),
		})
		return
	}
	resp := ModelsResponse{SchemaVersion: APISchemaVersion}
	for _, name := range sim.Names() {
		resp.Models = append(resp.Models, ModelInfo{Name: name, Description: sim.Description(name)})
	}
	for _, name := range mem.ConfigNames() {
		resp.Hierarchies = append(resp.Hierarchies, HierarchyInfo{Name: name, Description: mem.ConfigDescription(name)})
	}
	writeJSON(w, http.StatusOK, &resp)
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, errMethodNotAllowed(http.MethodGet))
		return
	}
	if compatNames(r) {
		resp := WorkloadNamesResponse{SchemaVersion: APISchemaVersion}
		for _, wl := range workload.All() {
			resp.Workloads = append(resp.Workloads, wl.Name)
		}
		writeJSON(w, http.StatusOK, &resp)
		return
	}
	resp := WorkloadsResponse{SchemaVersion: APISchemaVersion}
	for _, wl := range workload.All() {
		resp.Workloads = append(resp.Workloads, WorkloadInfo{
			Name: wl.Name, Class: wl.Class, Description: wl.Description,
		})
	}
	writeJSON(w, http.StatusOK, &resp)
}

func (s *Server) handleWorkerHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, errMethodNotAllowed(http.MethodGet))
		return
	}
	writeJSON(w, http.StatusOK, WorkerHealthResponse{
		SchemaVersion: APISchemaVersion,
		Status:        "ok",
		Role:          s.cfg.Role,
		Workers:       s.cfg.Workers,
		InFlight:      s.inFlight.Load(),
		JobsExecuted:  s.jobsExecuted.Load(),
		CacheEntries:  s.cache.len(),
		UptimeSeconds: time.Since(s.start).Seconds(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, errMethodNotAllowed(http.MethodGet))
		return
	}
	// The percentile estimate reads the same fixed-bucket histogram that
	// /metrics exposes, replacing the old 1024-sample ring.
	const msPerSecond = 1000
	p50 := s.metrics.jobDuration.Quantile(0.50) * msPerSecond
	p99 := s.metrics.jobDuration.Quantile(0.99) * msPerSecond
	writeJSON(w, http.StatusOK, StatsResponse{
		SchemaVersion:   APISchemaVersion,
		Workers:         s.cfg.Workers,
		JobsExecuted:    s.jobsExecuted.Load(),
		JobsFailed:      s.jobsFailed.Load(),
		CacheHits:       s.cache.hits.Load(),
		CacheMisses:     s.cache.misses.Load(),
		CacheCoalesced:  s.cache.coalesced.Load(),
		CacheEvictions:  s.cache.evictions.Load(),
		CacheEntries:    s.cache.len(),
		CacheBytes:      s.cache.bytes(),
		InFlight:        s.inFlight.Load(),
		ProgramsBuilt:   s.programsBuilt.Load(),
		ProgramsFetched: s.programsFetched.Load(),
		LatencyP50MS:    p50,
		LatencyP99MS:    p99,
		UptimeSeconds:   time.Since(s.start).Seconds(),
	})
}
