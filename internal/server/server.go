// Package server implements mpsimd: an HTTP/JSON simulation service over
// the timing models and workload suite. It executes jobs on a bounded
// worker pool, memoizes results in a sharded content-addressed cache keyed
// by the canonical job tuple (a cache hit replays byte-identical JSON), and
// honors per-request deadlines by threading context cancellation into the
// models' cycle loops.
//
// Endpoints:
//
//	POST /v1/run        one simulation job
//	POST /v1/sweep      a (workloads x models x hierarchies) batch
//	GET  /v1/models     registered timing models and named hierarchies
//	GET  /v1/workloads  the benchmark kernels
//	GET  /v1/stats      server metrics (jobs, cache, latency percentiles)
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"multipass/internal/arch"
	"multipass/internal/isa"
	"multipass/internal/mem"
	"multipass/internal/sim"
	"multipass/internal/workload"

	// Link the standard timing models into the sim registry so a bare
	// server binary serves them all.
	_ "multipass/internal/core"
	_ "multipass/internal/pipe/inorder"
	_ "multipass/internal/pipe/ooo"
	_ "multipass/internal/pipe/runahead"
)

// Config shapes a Server.
type Config struct {
	// Workers bounds concurrently executing simulations; 0 means
	// GOMAXPROCS.
	Workers int
	// DefaultTimeout applies to requests that do not set timeout_ms; 0
	// means no server-imposed deadline.
	DefaultTimeout time.Duration
	// MaxSweepJobs rejects sweeps whose grid exceeds it; 0 means the
	// default of 4096.
	MaxSweepJobs int
}

// latencyWindow is the number of recent executed-job latencies kept for the
// p50/p99 estimate.
const latencyWindow = 1024

// Server is the mpsimd HTTP service.
type Server struct {
	cfg   Config
	cache *resultCache
	// sem is the worker pool: one token per concurrently executing
	// simulation.
	sem chan struct{}

	jobsExecuted atomic.Uint64
	jobsFailed   atomic.Uint64
	inFlight     atomic.Int64

	// flights coalesces concurrent executions of the same job: followers
	// wait for the leader's bytes instead of re-simulating.
	flightMu sync.Mutex
	flights  map[string]*flight

	// progs memoizes compiled programs and their pre-decoded traces, keyed
	// by the job fields that determine the binary (workload, scale, compile
	// options). A sweep then decodes each workload once and every model in
	// the grid reads the same trace.
	progMu sync.Mutex
	progs  map[string]*builtProgram

	latMu  sync.Mutex
	lats   [latencyWindow]float64 // milliseconds, ring buffer
	latLen int
	latPos int

	start time.Time
}

// flight is one in-progress execution; done is closed once data/err are set.
type flight struct {
	done chan struct{}
	data []byte
	err  error
}

// builtProgram is one memoized compilation: the binary, its initial image,
// and the pre-decoded oracle trace (nil when the workload is too long to
// trace, in which case runs fall back to the lazy interpreter).
type builtProgram struct {
	once  sync.Once
	p     *isa.Program
	image *arch.Memory
	tr    *sim.Trace
	err   error
}

// progCacheCap bounds the program memo; the whole map is dropped when full
// (compilations are cheap relative to simulation, the memo exists to share
// traces within a sweep).
const progCacheCap = 64

// traceLimit caps pre-decoded traces; longer workloads use the lazy path.
const traceLimit = 1 << 22

// program returns the memoized compilation for the spec's binary-identity
// fields, compiling and tracing on first use.
func (s *Server) program(spec JobSpec) (*isa.Program, *arch.Memory, *sim.Trace, error) {
	key := fmt.Sprintf("%s|%d|%t|%t|%d", spec.Workload, spec.Scale, spec.Schedule, spec.InsertRestarts, spec.Unroll)
	s.progMu.Lock()
	if s.progs == nil || len(s.progs) >= progCacheCap {
		s.progs = make(map[string]*builtProgram)
	}
	b, ok := s.progs[key]
	if !ok {
		b = &builtProgram{}
		s.progs[key] = b
	}
	s.progMu.Unlock()

	b.once.Do(func() {
		w, ok := workload.ByName(spec.Workload)
		if !ok {
			b.err = fmt.Errorf("unknown workload %q", spec.Workload)
			return
		}
		b.p, b.image, b.err = workload.Program(w, spec.Scale, spec.CompileOptions())
		if b.err != nil {
			return
		}
		// A failed trace is not an error: the run interprets lazily and
		// reports the real fault, if any.
		if tr, err := sim.BuildTrace(b.p, b.image, traceLimit); err == nil {
			b.tr = tr
		}
	})
	return b.p, b.image, b.tr, b.err
}

// New builds a Server.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxSweepJobs <= 0 {
		cfg.MaxSweepJobs = 4096
	}
	return &Server{
		cfg:     cfg,
		cache:   newResultCache(),
		sem:     make(chan struct{}, cfg.Workers),
		flights: make(map[string]*flight),
		start:   time.Now(),
	}
}

// Handler returns the service's routed handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/run", s.handleRun)
	mux.HandleFunc("/v1/sweep", s.handleSweep)
	mux.HandleFunc("/v1/models", s.handleModels)
	mux.HandleFunc("/v1/workloads", s.handleWorkloads)
	mux.HandleFunc("/v1/stats", s.handleStats)
	return mux
}

// writeJSON emits v with the canonical JSON encoder.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{SchemaVersion: APISchemaVersion, Error: fmt.Sprintf(format, args...)})
}

// statusFor maps a job error to an HTTP status.
func statusFor(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// The client went away; the status is moot but 499-style semantics
		// map best onto 503 in net/http terms.
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// deadline derives the effective job context from the request timeout.
func (s *Server) deadline(ctx context.Context, timeoutMS int64) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	if d <= 0 {
		return context.WithCancel(ctx)
	}
	return context.WithTimeout(ctx, d)
}

// execute runs one job under the worker pool and returns the marshaled
// canonical RunResponse. The caller has already missed the cache.
func (s *Server) execute(ctx context.Context, spec JobSpec) ([]byte, error) {
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-s.sem }()

	s.inFlight.Add(1)
	start := time.Now()
	defer func() {
		s.inFlight.Add(-1)
		s.observeLatency(time.Since(start))
	}()

	hier, ok := mem.ConfigByName(spec.Hier)
	if !ok {
		return nil, fmt.Errorf("unknown hierarchy %q", spec.Hier)
	}
	p, image, tr, err := s.program(spec)
	if err != nil {
		return nil, err
	}
	m, err := sim.NewMachine(spec.Model, sim.ModelOptions{Hier: hier, MaxInsts: spec.MaxInsts})
	if err != nil {
		return nil, err
	}
	if tu, ok := m.(sim.TraceUser); ok {
		tu.UseTrace(tr)
	}
	s.jobsExecuted.Add(1)
	res, err := runModel(ctx, m, p, image)
	if err != nil {
		s.jobsFailed.Add(1)
		return nil, err
	}
	return json.Marshal(RunResponse{SchemaVersion: APISchemaVersion, Job: spec, Stats: res.Stats})
}

// runModel executes the model under a panic guard: a model bug (for example
// an internal consistency check firing mid-run) fails the one job with a
// descriptive error instead of killing the process. This matters doubly for
// sweeps, whose jobs run on bare goroutines — an unrecovered panic there
// would take down the whole server.
func runModel(ctx context.Context, m sim.Machine, p *isa.Program, image *arch.Memory) (res *sim.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = fmt.Errorf("model %s panicked: %v", m.Name(), r)
		}
	}()
	return m.Run(ctx, p, image)
}

// runCached returns the canonical response bytes for spec: from the result
// cache when the job already ran, from a concurrent in-flight execution when
// one exists, by executing otherwise. cached reports whether the bytes came
// from memory rather than this call's own simulation.
func (s *Server) runCached(ctx context.Context, spec JobSpec) (data []byte, cached bool, err error) {
	key := spec.Key()
	for {
		if data, ok := s.cache.get(key); ok {
			return data, true, nil
		}

		s.flightMu.Lock()
		if f, ok := s.flights[key]; ok {
			// Follow the in-flight leader.
			s.flightMu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
			if f.err == nil {
				return f.data, true, nil
			}
			// The leader failed — possibly on its own (shorter) deadline.
			// Retry from the top; this caller becomes a leader unless its
			// own context is also done.
			if err := ctx.Err(); err != nil {
				return nil, false, err
			}
			continue
		}
		f := &flight{done: make(chan struct{})}
		s.flights[key] = f
		s.flightMu.Unlock()

		data, err = s.execute(ctx, spec)
		if err == nil {
			s.cache.put(key, data)
		}
		f.data, f.err = data, err
		s.flightMu.Lock()
		delete(s.flights, key)
		s.flightMu.Unlock()
		close(f.done)
		return data, false, err
	}
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	spec, err := normalize(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel := s.deadline(r.Context(), req.TimeoutMS)
	defer cancel()

	data, cached, err := s.runCached(ctx, spec)
	if err != nil {
		writeError(w, statusFor(err), "%s/%s/%s: %v", spec.Workload, spec.Model, spec.Hier, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if cached {
		w.Header().Set("X-Mpsimd-Cache", "hit")
	} else {
		w.Header().Set("X-Mpsimd-Cache", "miss")
	}
	w.Write(data)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req SweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Workloads) == 0 {
		for _, wl := range workload.All() {
			req.Workloads = append(req.Workloads, wl.Name)
		}
	}
	if len(req.Models) == 0 {
		req.Models = sim.Names()
	}
	if len(req.Hiers) == 0 {
		req.Hiers = mem.ConfigNames()
	}

	// Normalize the whole grid up front: an invalid axis value fails the
	// sweep before any simulation runs.
	var specs []JobSpec
	for _, wl := range req.Workloads {
		for _, hier := range req.Hiers {
			for _, model := range req.Models {
				rr := RunRequest{
					Workload: wl, Model: model, Hier: hier,
					Scale: req.Scale, Compile: req.Compile, MaxInsts: req.MaxInsts,
				}
				spec, err := normalize(&rr)
				if err != nil {
					writeError(w, http.StatusBadRequest, "%v", err)
					return
				}
				specs = append(specs, spec)
			}
		}
	}
	if len(specs) > s.cfg.MaxSweepJobs {
		writeError(w, http.StatusBadRequest, "sweep grid has %d jobs, limit %d", len(specs), s.cfg.MaxSweepJobs)
		return
	}

	ctx, cancel := s.deadline(r.Context(), req.TimeoutMS)
	defer cancel()

	// Fan out; the worker pool inside execute bounds real concurrency.
	// Every job is accounted for: done, cached, or failed.
	resp := SweepResponse{SchemaVersion: APISchemaVersion, Jobs: make([]SweepJob, len(specs))}
	var wg sync.WaitGroup
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec JobSpec) {
			defer wg.Done()
			job := SweepJob{Job: spec}
			data, cached, err := s.runCached(ctx, spec)
			switch {
			case err != nil:
				job.Status = JobFailed
				job.Error = err.Error()
			default:
				var rr RunResponse
				if err := json.Unmarshal(data, &rr); err != nil {
					job.Status = JobFailed
					job.Error = fmt.Sprintf("decode cached result: %v", err)
					break
				}
				job.Stats = &rr.Stats
				if cached {
					job.Status = JobCached
				} else {
					job.Status = JobDone
				}
			}
			resp.Jobs[i] = job
		}(i, spec)
	}
	wg.Wait()

	for _, job := range resp.Jobs {
		resp.Summary.Total++
		switch job.Status {
		case JobDone:
			resp.Summary.Done++
		case JobCached:
			resp.Summary.Cached++
		default:
			resp.Summary.Failed++
		}
	}
	writeJSON(w, http.StatusOK, &resp)
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, http.StatusOK, ModelsResponse{
		SchemaVersion: APISchemaVersion,
		Models:        sim.Names(),
		Hierarchies:   mem.ConfigNames(),
	})
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	resp := WorkloadsResponse{SchemaVersion: APISchemaVersion}
	for _, wl := range workload.All() {
		resp.Workloads = append(resp.Workloads, WorkloadInfo{
			Name: wl.Name, Class: wl.Class, Description: wl.Description,
		})
	}
	writeJSON(w, http.StatusOK, &resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	p50, p99 := s.latencyPercentiles()
	writeJSON(w, http.StatusOK, StatsResponse{
		SchemaVersion: APISchemaVersion,
		Workers:       s.cfg.Workers,
		JobsExecuted:  s.jobsExecuted.Load(),
		JobsFailed:    s.jobsFailed.Load(),
		CacheHits:     s.cache.hits.Load(),
		CacheMisses:   s.cache.misses.Load(),
		CacheEntries:  s.cache.len(),
		InFlight:      s.inFlight.Load(),
		LatencyP50MS:  p50,
		LatencyP99MS:  p99,
		UptimeSeconds: time.Since(s.start).Seconds(),
	})
}

// observeLatency records one executed-job wall time in the sliding window.
func (s *Server) observeLatency(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	s.latMu.Lock()
	s.lats[s.latPos] = ms
	s.latPos = (s.latPos + 1) % latencyWindow
	if s.latLen < latencyWindow {
		s.latLen++
	}
	s.latMu.Unlock()
}

// latencyPercentiles estimates p50/p99 over the window (nearest-rank).
func (s *Server) latencyPercentiles() (p50, p99 float64) {
	s.latMu.Lock()
	n := s.latLen
	buf := make([]float64, n)
	copy(buf, s.lats[:n])
	s.latMu.Unlock()
	if n == 0 {
		return 0, 0
	}
	sort.Float64s(buf)
	rank := func(p float64) float64 {
		i := int(p*float64(n)+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		return buf[i]
	}
	return rank(0.50), rank(0.99)
}
